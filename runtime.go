package twoldag

import (
	"context"
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/cluster"
	"github.com/twoldag/twoldag/internal/par"
	"github.com/twoldag/twoldag/internal/topology"
)

// Runtime is a running 2LDAG deployment, live or simulated. Both
// drivers speak the same verbs:
//
//   - Submit seals one node's next data block and announces its header
//     digest to the node's radio neighbors; SubmitBatch seals a whole
//     slot's blocks first and flushes every announcement at once.
//   - Audit runs Proof-of-Path from a validator against a block ref;
//     AuditMany fans a batch of audits out over a bounded worker pool.
//   - Join and Silence change membership while the network runs
//     (Sec. VII): joiners are placed in radio range of a live device,
//     silenced nodes stop answering and audits route around them.
//
// Methods are safe for the documented concurrency only: audits may run
// concurrently with each other, but membership changes and submissions
// must not race audits or each other.
type Runtime interface {
	// Nodes returns the device IDs in ascending order, including
	// silenced devices (they remain part of the radio topology).
	Nodes() []NodeID
	// Topology returns the shared physical radio graph.
	Topology() *Topology
	// Slot returns the current logical time.
	Slot() uint32
	// AdvanceSlot increments logical time; blocks submitted afterwards
	// carry the new slot in their Time field.
	AdvanceSlot()
	// Submit seals data into id's next block and announces it. The
	// call returns once every live neighbor acknowledged the digest
	// (event-driven; the context deadline bounds the wait, falling
	// back to the configured request timeout when the context has
	// none).
	Submit(ctx context.Context, id NodeID, data []byte) (Ref, error)
	// SubmitBatch seals one block per submission, then flushes all
	// announcements in one receiver-centric round — each sender's
	// digests coalesce into one frame per neighbor, and each receiver
	// ingests its whole batch in one pass — and waits for the
	// acknowledgements together: one announcement flush per slot
	// instead of per block, one frame per (sender, neighbor) pair
	// instead of per edge. On error the already-sealed prefix of refs
	// is returned.
	SubmitBatch(ctx context.Context, batch []Submission) ([]Ref, error)
	// Audit runs PoP from validator against ref and reports whether
	// γ+1 distinct nodes vouch for the block.
	Audit(ctx context.Context, validator NodeID, ref Ref) (*AuditResult, error)
	// AuditMany runs the requested audits concurrently over a bounded
	// worker pool (WithWorkers) and returns one outcome per request,
	// in request order.
	AuditMany(ctx context.Context, reqs []AuditRequest) []AuditOutcome
	// Block fetches a block from its origin's local store (display,
	// sample proofs). The result is shared sealed state — read-only.
	Block(ref Ref) (*Block, error)
	// Join adds a new device in radio range of a live device and
	// returns its ID.
	Join() (NodeID, error)
	// Silence takes a device offline; subsequent audits route around
	// it.
	Silence(id NodeID) error
	// Close stops the deployment and releases its resources.
	Close() error
}

// Submission is one SubmitBatch entry.
type Submission struct {
	Node NodeID
	Data []byte
}

// AuditRequest names one AuditMany verification.
type AuditRequest struct {
	Validator NodeID
	Ref       Ref
}

// AuditOutcome is one AuditMany result. Err carries the terminal
// error (e.g. ErrNoConsensus) when the audit did not succeed; Result
// is non-nil whenever the verification ran, successful or not, so
// cost counters remain available either way.
type AuditOutcome struct {
	Request AuditRequest
	Result  *AuditResult
	Err     error
}

// New builds a Runtime from functional options:
//
//	rt, err := twoldag.New(
//	    twoldag.WithNodes(50),
//	    twoldag.WithGamma(4),
//	    twoldag.WithTransport(twoldag.TCP),
//	    twoldag.WithWorkers(8),
//	)
//
// The default driver is the live cluster over the in-memory fabric;
// WithSimulator selects the deterministic slot simulator. Identical
// options (and seed) build deployments with identical topologies and
// identities on either driver, and audits reach identical consensus
// outcomes — the drivers differ in transport realism and cost
// accounting, not protocol behavior.
func New(opts ...Option) (Runtime, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("twoldag: nil Option")
		}
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	g, err := cfg.resolveTopology()
	if err != nil {
		return nil, err
	}
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	switch cfg.driver {
	case DriverSim:
		return newSimDriver(cfg, g)
	default:
		return newCluster(cfg, g)
	}
}

// fanOut runs fn(0..n-1) on at most workers goroutines (0 =
// GOMAXPROCS); with one worker it degrades to a plain loop.
func fanOut(n, workers int, fn func(i int)) {
	par.ForEach(n, workers, fn)
}

// placeJoiner allocates an unused device ID and wires it into the
// radio graph within communication range of the newest live device
// (the paper's Sec. VII dynamic-membership extension). The rule lives
// in internal/cluster so the in-process drivers and cross-host Hosts
// place joiners identically.
func placeJoiner(topo *topology.Graph, ids []NodeID, isLive func(NodeID) bool) (NodeID, error) {
	id, err := cluster.PlaceJoiner(topo, ids, isLive)
	if err != nil {
		return 0, fmt.Errorf("twoldag: %w", err)
	}
	return id, nil
}
