package twoldag

import (
	"context"

	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

// SimDriver is the deterministic Runtime driver: the same engines and
// PoP validators as the live cluster, but protocol requests resolve
// in-process against the simulation state, with the paper's analytic
// cost accounting and injectable attack behaviors (WithMalicious).
// Identical options build identical deployments every run, which makes
// it the driver of choice for reproducible experiments, CI and
// scenario sweeps; cmd/experiments regenerates every figure of the
// paper on the same machinery.
type SimDriver struct {
	s       *sim.Sim
	topo    *topology.Graph
	ids     []NodeID
	seed    int64
	workers int
}

var _ Runtime = (*SimDriver)(nil)

// newSimDriver builds the simulator driver from resolved options.
func newSimDriver(cfg *config, g *topology.Graph) (*SimDriver, error) {
	s, err := sim.New(sim.Config{
		Graph:     g,
		Seed:      cfg.seed,
		BodyBytes: cfg.bodyBytes,
		Gamma:     cfg.gamma,
		Malicious: cfg.malicious,
		// The live driver's PoW and Merkle parameters apply verbatim, so
		// identical options yield identical blocks on either driver.
		Difficulty:    cfg.params.Difficulty,
		TrustCap:      cfg.trustCap,
		Workers:       cfg.workers,
		PipelineDepth: cfg.pipeline,
		ChunkSize:     cfg.chunk,
		Observer:      events.Multi(cfg.observers...),
	})
	if err != nil {
		return nil, err
	}
	return &SimDriver{s: s, topo: g, ids: g.Nodes(), seed: cfg.seed, workers: cfg.workers}, nil
}

// Nodes implements Runtime.
func (d *SimDriver) Nodes() []NodeID {
	return append([]NodeID(nil), d.ids...)
}

// Topology implements Runtime.
func (d *SimDriver) Topology() *Topology { return d.topo }

// Slot implements Runtime.
func (d *SimDriver) Slot() uint32 { return uint32(d.s.Slot()) }

// AdvanceSlot implements Runtime.
func (d *SimDriver) AdvanceSlot() { d.s.AdvanceSlot() }

// Submit implements Runtime. Announcements resolve synchronously
// in-process, so the call returns with every live neighbor's cache
// already updated — the simulator's equivalent of the live driver's
// acknowledgement wait.
func (d *SimDriver) Submit(ctx context.Context, id NodeID, data []byte) (Ref, error) {
	if err := ctx.Err(); err != nil {
		return Ref{}, err
	}
	return d.s.SubmitAs(id, data)
}

// SubmitBatch implements Runtime, mirroring the slotted scheduler's
// phase split: every block is sealed from the start-of-batch digest
// caches first, then the whole batch flushes through the
// receiver-centric delivery path (sim.AnnounceBatch) — the slot's
// digests grouped by receiving neighbor and ingested as one batch per
// receiver on the worker pool, the same semantics the live driver's
// coalesced frames and batched acknowledgement wait produce.
func (d *SimDriver) SubmitBatch(ctx context.Context, batch []Submission) ([]Ref, error) {
	refs := make([]Ref, 0, len(batch))
	froms := make([]NodeID, 0, len(batch))
	digs := make([]Digest, 0, len(batch))
	for _, sub := range batch {
		if err := ctx.Err(); err != nil {
			return refs, err
		}
		ref, dig, err := d.s.GenerateAs(sub.Node, sub.Data)
		if err != nil {
			return refs, err
		}
		refs = append(refs, ref)
		froms = append(froms, sub.Node)
		digs = append(digs, dig)
	}
	if err := d.s.AnnounceBatch(froms, digs); err != nil {
		return refs, err
	}
	return refs, nil
}

// Audit implements Runtime. The validator's trust store H_i and
// verification cache persist between audits, exactly as on a live
// node.
func (d *SimDriver) Audit(ctx context.Context, validator NodeID, ref Ref) (*AuditResult, error) {
	return d.s.AuditFrom(ctx, validator, ref)
}

// AuditMany implements Runtime: audits fan out over a worker pool
// bounded by WithWorkers. Audits from the same validator serialize
// internally (its random stream is single-threaded); distinct
// validators run fully in parallel.
func (d *SimDriver) AuditMany(ctx context.Context, reqs []AuditRequest) []AuditOutcome {
	out := make([]AuditOutcome, len(reqs))
	fanOut(len(reqs), d.workers, func(i int) {
		r := reqs[i]
		res, err := d.s.AuditFrom(ctx, r.Validator, r.Ref)
		out[i] = AuditOutcome{Request: r, Result: res, Err: err}
	})
	return out
}

// Block implements Runtime.
func (d *SimDriver) Block(ref Ref) (*Block, error) {
	return d.s.BlockOf(ref)
}

// Join implements Runtime.
func (d *SimDriver) Join() (NodeID, error) {
	id, err := placeJoiner(d.topo, d.ids, func(id NodeID) bool {
		return !d.s.Silenced(id)
	})
	if err != nil {
		return 0, err
	}
	if err := d.s.JoinNode(id); err != nil {
		return 0, err
	}
	d.ids = append(d.ids, id)
	return id, nil
}

// Silence implements Runtime: the node's engine and validator leave
// the simulation, so PoP requests to it time out and audits route
// around it.
func (d *SimDriver) Silence(id NodeID) error {
	return d.s.Silence(id)
}

// Close implements Runtime: it drains any in-flight pipelined audit
// slots and releases the simulator's persistent scheduler goroutines
// (worker pools and the audit stage). Report stays readable after
// Close; the drive verbs do not.
func (d *SimDriver) Close() error {
	d.s.Close()
	return nil
}

// MaliciousNodes returns the IDs assigned a malicious behavior via
// WithMalicious, in arbitrary order.
func (d *SimDriver) MaliciousNodes() []NodeID { return d.s.MaliciousNodes() }

// SimReport is the simulator's per-slot cost series and audit totals
// (the figure-generation data model).
type SimReport = sim.Report

// Report finalizes and returns the simulation report accumulated so
// far: per-slot average storage and communication under the paper's
// size model, final per-node samples, and audit totals.
func (d *SimDriver) Report() *SimReport { return d.s.Finalize() }

// RunSlots drives the simulator's slotted scheduler for n slots —
// per-slot generation, receiver-batched announcement and audit duty,
// exactly the schedule behind the paper's figures — and leaves the
// report open for Report. With WithPipelineDepth(d ≥ 2) the slots
// execute as a bounded pipeline (slot t audits overlap slot t+1
// generation) and settle before RunSlots returns; the report is
// byte-identical to the barriered schedule either way. It is the
// figure-regeneration entry point on the public API: experiments that
// used to reach into internal/sim build the driver with
// New(WithSimulator(), ...) and read SimDriver.Report instead. Do not
// mix RunSlots with the Submit/AdvanceSlot external drive on the same
// driver.
func (d *SimDriver) RunSlots(n int) error { return d.s.RunSlots(n) }
