package twoldag

import (
	"context"
	"testing"

	"github.com/twoldag/twoldag/internal/topology"
)

// Dynamic-membership coverage through the Runtime API (the paper's
// Sec. VII extension): joining after churn, audits routing around
// silenced devices, and ID allocation safety on hand-built graphs.

// TestJoinAfterAnchorSilence silences the newest device — the one a
// joiner would historically anchor to — and verifies Join re-anchors
// at a live device so the joiner is not stranded behind a dead radio.
func TestJoinAfterAnchorSilence(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"live", baseOptions(8, 1)},
		{"sim", append(baseOptions(8, 1), WithSimulator())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRuntime(t, tc.opts...)
			refs := fillBatch(t, rt, 2)
			ids := rt.Nodes()
			anchor := ids[len(ids)-1]
			if err := rt.Silence(anchor); err != nil {
				t.Fatalf("silencing anchor: %v", err)
			}
			joiner, err := rt.Join()
			if err != nil {
				t.Fatalf("Join after anchor silence: %v", err)
			}
			topo := rt.Topology()
			if !topo.Has(joiner) || topo.Degree(joiner) == 0 {
				t.Fatal("joiner not wired into the radio graph")
			}
			// The joiner must reach at least one live device, not only
			// the silenced anchor.
			liveLink := false
			for _, nb := range topo.Neighbors(joiner) {
				if nb == anchor {
					continue
				}
				if _, err := rt.Block(Ref{Node: nb, Seq: 0}); err == nil {
					liveLink = true
					break
				}
			}
			if !liveLink {
				t.Fatalf("joiner %v anchored only to silenced devices (neighbors %v)",
					joiner, topo.Neighbors(joiner))
			}
			// And it participates: submits and audits old data.
			ctx := context.Background()
			rt.AdvanceSlot()
			if _, err := rt.Submit(ctx, joiner, []byte("post-join")); err != nil {
				t.Fatalf("joiner submit: %v", err)
			}
			res, err := rt.Audit(ctx, joiner, refs[0])
			if err != nil {
				t.Fatalf("joiner audit: %v", err)
			}
			if !res.Consensus {
				t.Fatal("joiner failed to audit pre-join data")
			}
		})
	}
}

// TestAuditsRouteAroundSilenced fans audits out after churn on both
// drivers: consensus must hold and no silenced device may vouch.
func TestAuditsRouteAroundSilenced(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"live", baseOptions(10, 2)},
		{"sim", append(baseOptions(10, 2), WithSimulator())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRuntime(t, append(tc.opts, WithWorkers(4))...)
			refs := fillBatch(t, rt, 3)
			ids := rt.Nodes()
			validator := ids[len(ids)-1]
			target := refs[0]
			var victim NodeID
			for _, id := range ids {
				if id != target.Node && id != validator {
					victim = id
					break
				}
			}
			if err := rt.Silence(victim); err != nil {
				t.Fatal(err)
			}
			if err := rt.Silence(victim); err == nil {
				t.Fatal("double silence accepted")
			}
			// Audit first-slot blocks of devices that are still online
			// (a silenced origin cannot serve its own block at all).
			var reqs []AuditRequest
			for _, ref := range refs[:len(refs)/3] {
				if ref.Node == victim || ref.Node == validator {
					continue
				}
				reqs = append(reqs, AuditRequest{Validator: validator, Ref: ref})
				if len(reqs) == 4 {
					break
				}
			}
			for _, out := range rt.AuditMany(context.Background(), reqs) {
				if out.Err != nil {
					t.Fatalf("audit %v after silencing %v: %v", out.Request.Ref, victim, out.Err)
				}
				if !out.Result.Consensus {
					t.Fatalf("no consensus on %v after one node silenced", out.Request.Ref)
				}
				for _, v := range out.Result.Vouchers {
					if v == victim {
						t.Fatalf("silenced node %v vouched for %v", victim, out.Request.Ref)
					}
				}
			}
		})
	}
}

// manualGraph links devices with arbitrary, non-contiguous IDs by
// hand, the shape Join's ID allocation must stay collision-free on.
func manualGraph(t *testing.T, ids ...NodeID) *topology.Graph {
	t.Helper()
	g := topology.New(0) // no radio range: all links are manual
	for i, id := range ids {
		if err := g.AddNode(id, topology.Point{X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ids); i++ {
		if err := g.Link(ids[i-1], ids[i]); err != nil {
			t.Fatal(err)
		}
		if err := g.Link(ids[0], ids[i]); err != nil && i > 1 {
			t.Fatal(err)
		}
	}
	return g
}

// TestJoinIDCollisionSafetyOnManualGraph pins Join's allocation rule
// on hand-linked graphs: new IDs never collide with existing graph
// nodes (contiguous or not), never resurrect silenced IDs, and each
// joiner registers exactly once in the key ring.
func TestJoinIDCollisionSafetyOnManualGraph(t *testing.T) {
	g := manualGraph(t, 0, 5, 9)
	rt := newRuntime(t, WithTopology(g), WithGamma(1), WithSeed(3), WithDifficulty(2))

	seen := map[NodeID]bool{0: true, 5: true, 9: true}
	var joiners []NodeID
	for k := 0; k < 3; k++ {
		id, err := rt.Join()
		if err != nil {
			t.Fatalf("join %d: %v", k, err)
		}
		if seen[id] {
			t.Fatalf("join %d: ID %v collides", k, id)
		}
		seen[id] = true
		joiners = append(joiners, id)
		if !rt.Topology().Has(id) || rt.Topology().Degree(id) == 0 {
			t.Fatalf("joiner %v not linked", id)
		}
	}
	// Silencing a joiner must not free its ID for reuse.
	if err := rt.Silence(joiners[len(joiners)-1]); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Join()
	if err != nil {
		t.Fatalf("join after silence: %v", err)
	}
	if seen[id] {
		t.Fatalf("silenced ID %v resurrected", id)
	}
	// The surviving joiners work: submissions announce and land.
	ctx := context.Background()
	rt.AdvanceSlot()
	for _, j := range append(joiners[:len(joiners)-1], id) {
		if _, err := rt.Submit(ctx, j, []byte("manual graph")); err != nil {
			t.Fatalf("joiner %v submit: %v", j, err)
		}
	}
}
