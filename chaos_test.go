package twoldag

import (
	"context"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/metrics"
)

// The chaos equivalence suite: seeded fault plans within the
// protocol's tolerance — recoverable drops, delays and duplicates
// during submission slots; partitions and crash windows confined to
// audit-only slots — must leave sealed-header hashes and audit
// consensus outcomes identical to the fault-free run, on both the
// in-memory and TCP fabrics. The retry layer is what closes the gap:
// announcement acknowledgements drive targeted re-transmission, so
// every digest still lands before the next slot seals against it.

const chaosNodes = 8

// chaosVictim is the node the partition and crash plans take off the
// air during the audit-only slot. It is none of the audit validators
// or targets, so consensus must route around it.
const chaosVictim = NodeID(5)

// chaosRetry is the retry policy every chaos run uses: enough
// attempts that a seeded drop of an announcement frame and its first
// retries never exhausts the budget, with backoffs that fit inside
// the 250ms acknowledgement deadline.
func chaosRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Jitter: 0.5, Seed: 7}
}

// chaosPlans are the seeded fault schedules under test. Slots 1–3 and
// 5 submit; slots 4 and 6 are audit-only, which is where the
// partition and the crash are scheduled (a node dark during a submit
// slot would stall that slot's acknowledgement barrier by design).
func chaosPlans() map[string]FaultPlan {
	return map[string]FaultPlan{
		"drops+delays+dups": {
			Seed:          101,
			DropRate:      0.08,
			DuplicateRate: 0.10,
			MaxDelay:      2 * time.Millisecond,
		},
		"healed partition": {
			Seed:     102,
			DropRate: 0.03,
			MaxDelay: time.Millisecond,
			Partitions: []FaultPartition{{
				From: 4, Until: 5,
				SideA: []NodeID{chaosVictim},
				SideB: []NodeID{0, 1, 2, 3, 4, 6, 7},
			}},
		},
		"crash+restart": {
			Seed:     103,
			DropRate: 0.03,
			MaxDelay: time.Millisecond,
			Crashes:  []CrashWindow{{Node: chaosVictim, From: 4, Until: 5}},
		},
	}
}

// chaosRun is one scenario's observable outcome: every sealed header
// hash in submission order, and every audit's consensus verdict.
type chaosRun struct {
	hashes   []Digest
	outcomes []bool
}

// runChaosScenario drives the fixed workload — three submit slots, an
// audit-only slot, a post-heal submit slot, a final audit-only slot —
// against a live cluster on the given fabric under the given plan.
func runChaosScenario(t *testing.T, kind TransportKind, plan FaultPlan, retry RetryPolicy, extra ...Option) chaosRun {
	t.Helper()
	opts := []Option{
		WithNodes(chaosNodes),
		WithSeed(7),
		WithGamma(1),
		WithDifficulty(2),
		WithTransport(kind),
		WithRequestTimeout(250 * time.Millisecond),
	}
	if plan.Active() {
		opts = append(opts, WithFaults(plan))
	}
	if retry.Enabled() {
		opts = append(opts, WithRetryPolicy(retry))
	}
	opts = append(opts, extra...)
	rt, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	ids := rt.Nodes()
	if len(ids) != chaosNodes || ids[0] != 0 || ids[len(ids)-1] != chaosNodes-1 {
		t.Fatalf("generated IDs %v, plans assume 0..%d", ids, chaosNodes-1)
	}
	ctx := context.Background()
	var run chaosRun

	submitAll := func(tag byte) {
		t.Helper()
		rt.AdvanceSlot()
		batch := make([]Submission, len(ids))
		for i, id := range ids {
			batch[i] = Submission{Node: id, Data: []byte{tag, byte(id)}}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			t.Fatalf("SubmitBatch at slot %d: %v", rt.Slot(), err)
		}
		for _, ref := range refs {
			b, err := rt.Block(ref)
			if err != nil {
				t.Fatalf("Block(%v): %v", ref, err)
			}
			run.hashes = append(run.hashes, b.Header.Hash())
		}
	}
	auditAll := func() {
		t.Helper()
		for _, req := range []AuditRequest{
			{Validator: 7, Ref: Ref{Node: 0, Seq: 1}},
			{Validator: 1, Ref: Ref{Node: 4, Seq: 1}},
		} {
			res, err := rt.Audit(ctx, req.Validator, req.Ref)
			run.outcomes = append(run.outcomes, err == nil && res != nil && res.Consensus)
		}
	}

	submitAll(1) // slot 1: genesis
	submitAll(2) // slot 2
	submitAll(3) // slot 3
	rt.AdvanceSlot()
	auditAll() // slot 4: audit-only — partitions/crashes strike here
	submitAll(5)
	rt.AdvanceSlot()
	auditAll() // slot 6: after the heal, the victim serves again
	return run
}

// assertChaosEquivalent fails unless the chaos run matches the
// fault-free run observation for observation.
func assertChaosEquivalent(t *testing.T, name string, faultFree, chaos chaosRun) {
	t.Helper()
	if len(chaos.hashes) != len(faultFree.hashes) {
		t.Fatalf("%s: sealed %d blocks, fault-free sealed %d", name, len(chaos.hashes), len(faultFree.hashes))
	}
	for i := range faultFree.hashes {
		if chaos.hashes[i] != faultFree.hashes[i] {
			t.Errorf("%s: sealed header %d diverged from the fault-free run", name, i)
		}
	}
	if len(chaos.outcomes) != len(faultFree.outcomes) {
		t.Fatalf("%s: %d audits ran, fault-free ran %d", name, len(chaos.outcomes), len(faultFree.outcomes))
	}
	for i := range faultFree.outcomes {
		if chaos.outcomes[i] != faultFree.outcomes[i] {
			t.Errorf("%s: audit %d consensus %v, fault-free %v", name, i, chaos.outcomes[i], faultFree.outcomes[i])
		}
	}
}

// TestChaosEquivalence proves the headline robustness property on both
// fabrics: every in-tolerance fault plan yields the exact sealed
// headers and audit verdicts of the fault-free run.
func TestChaosEquivalence(t *testing.T) {
	for _, kind := range []TransportKind{InMemory, TCP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			faultFree := runChaosScenario(t, kind, FaultPlan{}, RetryPolicy{})
			for i, ok := range faultFree.outcomes {
				if !ok {
					t.Fatalf("fault-free audit %d reached no consensus — scenario is not a usable baseline", i)
				}
			}
			for name, plan := range chaosPlans() {
				chaos := runChaosScenario(t, kind, plan, chaosRetry())
				assertChaosEquivalent(t, name, faultFree, chaos)
			}
		})
	}
}

// TestChaosCountersAreDeterministic: the same plan and seed produce
// the same event counters run after run. The plan is zero-delay —
// injected delays trade determinism of *when* for determinism of
// *what*, and counter equality is a statement about the what.
func TestChaosCountersAreDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 105, DropRate: 0.2}
	run := func() *metrics.EventCounters {
		var ec metrics.EventCounters
		rt, err := New(
			WithNodes(chaosNodes),
			WithSeed(7),
			WithGamma(1),
			WithDifficulty(2),
			WithWorkers(1),
			WithRequestTimeout(250*time.Millisecond),
			WithFaults(plan),
			WithRetryPolicy(chaosRetry()),
			WithObserver(&ec),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		ctx := context.Background()
		for tag := byte(1); tag <= 3; tag++ {
			rt.AdvanceSlot()
			batch := make([]Submission, 0, chaosNodes)
			for _, id := range rt.Nodes() {
				batch = append(batch, Submission{Node: id, Data: []byte{tag, byte(id)}})
			}
			if _, err := rt.SubmitBatch(ctx, batch); err != nil {
				t.Fatalf("SubmitBatch: %v", err)
			}
		}
		return &ec
	}
	a, b := run(), run()
	if a.MessagesDropped() == 0 || a.RetriesAttempted() == 0 {
		t.Fatalf("plan injected nothing: drops %d, retries %d", a.MessagesDropped(), a.RetriesAttempted())
	}
	if a.MessagesDropped() != b.MessagesDropped() ||
		a.RetriesAttempted() != b.RetriesAttempted() ||
		a.PeersSuspected() != b.PeersSuspected() ||
		a.PeersRecovered() != b.PeersRecovered() {
		t.Fatalf("counters diverged across identical runs:\nrun 1: drops %d retries %d suspected %d recovered %d\nrun 2: drops %d retries %d suspected %d recovered %d",
			a.MessagesDropped(), a.RetriesAttempted(), a.PeersSuspected(), a.PeersRecovered(),
			b.MessagesDropped(), b.RetriesAttempted(), b.PeersSuspected(), b.PeersRecovered())
	}
}
