module github.com/twoldag/twoldag

go 1.24
