package twoldag

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The facade recovery suite: with WithDataDir every device's ledger is
// durable, and a device killed and restarted from its data dir must be
// byte-identical to one that never went down. The probe is
// Cluster.StateDigest — a digest over the snapshot-v2 serialization of
// (S_i, H_i, A_i, trust cap) — so "equivalent" means every block,
// trust header (in insertion order), cache entry and the cap itself.

// recoveryRun is one scenario's observable outcome, mirroring the
// chaos suite plus the per-node ledger state digests.
type recoveryRun struct {
	hashes   []Digest
	outcomes []bool
	states   map[NodeID]Digest
}

// runRecoveryScenario drives the fixed workload — three submit slots,
// an idle slot under a seeded crash window on chaosVictim, a post-heal
// submit slot, then audits — against a durable live cluster rooted at
// dataDir. When kill is set, the victim is silenced (backend flushed
// and closed) and restarted from its data dir inside the crash window,
// with its recovery byte-checked against its pre-kill state. extra
// options (e.g. WithSyncPolicy) ride on top of the fixed world.
func runRecoveryScenario(t *testing.T, dataDir string, kill bool, extra ...Option) recoveryRun {
	t.Helper()
	plan := FaultPlan{
		Seed:    104,
		Crashes: []CrashWindow{{Node: chaosVictim, From: 4, Until: 5}},
	}
	rt, err := New(append([]Option{
		WithNodes(chaosNodes),
		WithSeed(7),
		WithGamma(1),
		WithDifficulty(2),
		WithRequestTimeout(250*time.Millisecond),
		WithFaults(plan),
		WithRetryPolicy(chaosRetry()),
		WithDataDir(dataDir),
		WithTrustCap(4),
	}, extra...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	c := rt.(*Cluster)

	ctx := context.Background()
	ids := rt.Nodes()
	var run recoveryRun
	submitAll := func(tag byte) {
		t.Helper()
		rt.AdvanceSlot()
		batch := make([]Submission, len(ids))
		for i, id := range ids {
			batch[i] = Submission{Node: id, Data: []byte{tag, byte(id)}}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			t.Fatalf("SubmitBatch at slot %d: %v", rt.Slot(), err)
		}
		for _, ref := range refs {
			b, err := rt.Block(ref)
			if err != nil {
				t.Fatalf("Block(%v): %v", ref, err)
			}
			run.hashes = append(run.hashes, b.Header.Hash())
		}
	}

	submitAll(1)
	submitAll(2)
	submitAll(3)

	rt.AdvanceSlot() // slot 4: the victim's crash window, no traffic
	if kill {
		before, err := c.StateDigest(chaosVictim)
		if err != nil {
			t.Fatalf("StateDigest before kill: %v", err)
		}
		if err := rt.Silence(chaosVictim); err != nil {
			t.Fatalf("Silence: %v", err)
		}
		if err := c.Restart(chaosVictim); err != nil {
			t.Fatalf("Restart: %v", err)
		}
		after, err := c.StateDigest(chaosVictim)
		if err != nil {
			t.Fatalf("StateDigest after restart: %v", err)
		}
		if after != before {
			t.Fatal("victim's ledger state changed across kill + recovery")
		}
	}

	submitAll(5) // the recovered victim seals and flushes like everyone

	rt.AdvanceSlot() // slot 6: audits, including one of the victim's blocks
	for _, req := range []AuditRequest{
		{Validator: 7, Ref: Ref{Node: 0, Seq: 1}},
		{Validator: 1, Ref: Ref{Node: chaosVictim, Seq: 1}},
	} {
		res, err := rt.Audit(ctx, req.Validator, req.Ref)
		run.outcomes = append(run.outcomes, err == nil && res != nil && res.Consensus)
	}

	run.states = make(map[NodeID]Digest, len(ids))
	for _, id := range ids {
		d, err := c.StateDigest(id)
		if err != nil {
			t.Fatalf("StateDigest(%v): %v", id, err)
		}
		run.states[id] = d
	}
	return run
}

// TestRecoveryFacadeKillRestartEquivalence is the in-process headline
// proof: an uninterrupted durable run and a run whose victim is killed
// and recovered mid-window end with identical sealed headers, audit
// verdicts, and per-node ledger state digests.
func TestRecoveryFacadeKillRestartEquivalence(t *testing.T) {
	base := t.TempDir()
	oracle := runRecoveryScenario(t, filepath.Join(base, "oracle"), false)
	for i, ok := range oracle.outcomes {
		if !ok {
			t.Fatalf("uninterrupted audit %d reached no consensus — not a usable baseline", i)
		}
	}
	crash := runRecoveryScenario(t, filepath.Join(base, "crash"), true)

	if len(crash.hashes) != len(oracle.hashes) {
		t.Fatalf("sealed %d blocks, oracle sealed %d", len(crash.hashes), len(oracle.hashes))
	}
	for i := range oracle.hashes {
		if crash.hashes[i] != oracle.hashes[i] {
			t.Errorf("sealed header %d diverged from the uninterrupted run", i)
		}
	}
	for i := range oracle.outcomes {
		if crash.outcomes[i] != oracle.outcomes[i] {
			t.Errorf("audit %d verdict %v, oracle %v", i, crash.outcomes[i], oracle.outcomes[i])
		}
	}
	for id, want := range oracle.states {
		if crash.states[id] != want {
			t.Errorf("node %v ledger state diverged from the uninterrupted run", id)
		}
	}
}

// TestRecoveryFacadeSyncPolicies runs the kill/restart scenario under
// every commit-window discipline and compares each against one
// uninterrupted SyncAlways oracle. Sealing is deterministic, so the
// final ledger states are policy-independent: whatever a policy defers,
// the flush boundary (SyncBatch), the ticker (SyncInterval) or the
// backend's shutdown commit makes durable before the kill — group
// commit changes when records are acknowledged, never what the cluster
// converges to.
func TestRecoveryFacadeSyncPolicies(t *testing.T) {
	base := t.TempDir()
	oracle := runRecoveryScenario(t, filepath.Join(base, "oracle"), false)
	for i, ok := range oracle.outcomes {
		if !ok {
			t.Fatalf("uninterrupted audit %d reached no consensus — not a usable baseline", i)
		}
	}
	for _, tc := range []struct {
		name   string
		policy SyncPolicy
	}{
		{"always", SyncAlways()},
		{"batch", SyncBatch()},
		{"interval", SyncInterval(10 * time.Millisecond)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			crash := runRecoveryScenario(t, filepath.Join(base, tc.name), true, WithSyncPolicy(tc.policy))
			if len(crash.hashes) != len(oracle.hashes) {
				t.Fatalf("sealed %d blocks, oracle sealed %d", len(crash.hashes), len(oracle.hashes))
			}
			for i := range oracle.hashes {
				if crash.hashes[i] != oracle.hashes[i] {
					t.Errorf("sealed header %d diverged from the uninterrupted run", i)
				}
			}
			for i := range oracle.outcomes {
				if crash.outcomes[i] != oracle.outcomes[i] {
					t.Errorf("audit %d verdict %v, oracle %v", i, crash.outcomes[i], oracle.outcomes[i])
				}
			}
			for id, want := range oracle.states {
				if crash.states[id] != want {
					t.Errorf("node %v ledger state diverged from the uninterrupted run", id)
				}
			}
		})
	}
}

// TestRecoveryRestartRequiresDataDir: without WithDataDir, Restart is
// meaningless and must say so.
func TestRecoveryRestartRequiresDataDir(t *testing.T) {
	rt, err := New(WithNodes(3), WithSeed(7), WithGamma(1), WithDifficulty(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	c := rt.(*Cluster)
	if err := rt.Silence(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(1); err == nil {
		t.Fatal("Restart without a data dir succeeded")
	}
}

// TestRecoveryOptionValidation pins the new options' contracts.
func TestRecoveryOptionValidation(t *testing.T) {
	if _, err := New(WithNodes(3), WithSimulator(), WithDataDir(t.TempDir())); err == nil {
		t.Fatal("WithDataDir accepted on the simulator driver")
	}
	if _, err := New(WithNodes(3), WithTrustCap(-1)); err == nil {
		t.Fatal("negative trust cap accepted")
	}
	if _, err := New(WithNodes(3), WithDataDir("")); err == nil {
		t.Fatal("empty data dir accepted")
	}
	// WithTrustCap is valid on both drivers.
	rt, err := New(WithNodes(4), WithSeed(7), WithSimulator(), WithTrustCap(2))
	if err != nil {
		t.Fatalf("WithTrustCap on simulator: %v", err)
	}
	rt.Close()
	// Sync policies: a malformed interval fails at the option, a
	// non-default policy needs a durable dir, and the simulator (which
	// has no WAL) rejects anything but the default.
	if _, err := New(WithNodes(3), WithDataDir(t.TempDir()), WithSyncPolicy(SyncInterval(-time.Second))); err == nil {
		t.Fatal("negative sync interval accepted")
	}
	if _, err := New(WithNodes(3), WithSyncPolicy(SyncBatch())); err == nil {
		t.Fatal("WithSyncPolicy(batch) accepted without WithDataDir")
	}
	if _, err := New(WithNodes(3), WithSimulator(), WithSyncPolicy(SyncBatch())); err == nil {
		t.Fatal("WithSyncPolicy accepted on the simulator driver")
	}
}

// TestRecoveryTrustCapSurvivesRestart: the cap is recorded in the
// snapshot, so a restart without reconfiguration keeps the bound.
func TestRecoveryTrustCapSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(
		WithNodes(3), WithSeed(7), WithGamma(1), WithDifficulty(2),
		WithDataDir(dir), WithTrustCap(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	c := rt.(*Cluster)

	ctx := context.Background()
	for tag := byte(1); tag <= 3; tag++ {
		rt.AdvanceSlot()
		batch := make([]Submission, 0, 3)
		for _, id := range rt.Nodes() {
			batch = append(batch, Submission{Node: id, Data: []byte{tag, byte(id)}})
		}
		if _, err := rt.SubmitBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	// Audits populate H_i on the validator; the cap bounds it.
	if _, err := rt.Audit(ctx, 2, Ref{Node: 0, Seq: 1}); err != nil {
		t.Fatalf("audit: %v", err)
	}
	before, err := c.StateDigest(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Silence(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	after, err := c.StateDigest(2)
	if err != nil {
		t.Fatal(err)
	}
	// The state digest covers the recorded cap, so equality here means
	// the bound itself survived, not just the headers.
	if after != before {
		t.Fatal("trust cap or trust store drifted across restart")
	}
	if err := c.Restart(2); err == nil {
		t.Fatal("Restart of a running node succeeded")
	}
}

// TestRecoveryFacadeCompaction: the facade driver compacts each
// node's WAL at the configured threshold, so wal.log (and the replay
// tail a restart pays) stays bounded for the life of a run.
func TestRecoveryFacadeCompaction(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(
		WithNodes(3), WithSeed(7), WithGamma(1), WithDifficulty(2),
		WithDataDir(dir), WithCompactEvery(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	c := rt.(*Cluster)

	ctx := context.Background()
	for tag := byte(1); tag <= 3; tag++ {
		rt.AdvanceSlot()
		for _, id := range rt.Nodes() {
			if _, err := rt.Submit(ctx, id, []byte{tag, byte(id)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Three blocks sealed per node with a threshold of two: each WAL
	// rotated at least once, so pending sits below the threshold and a
	// snapshot exists.
	for _, id := range rt.Nodes() {
		fb := c.backends[id]
		if p := fb.PendingBlocks(); p >= 2 {
			t.Errorf("node %v: %d pending WAL blocks, threshold 2 never compacted", id, p)
		}
		snap := filepath.Join(dir, fmt.Sprintf("node-%d", id), "snapshot.2ldg")
		if _, err := os.Stat(snap); err != nil {
			t.Errorf("node %v: no snapshot after compaction: %v", id, err)
		}
	}
	// The compacted state restarts byte-identical.
	before, err := c.StateDigest(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Silence(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	after, err := c.StateDigest(1)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatal("ledger state drifted across a compacted restart")
	}
}

// TestRecoveryCompactEveryValidation pins WithCompactEvery's contract.
func TestRecoveryCompactEveryValidation(t *testing.T) {
	if _, err := New(WithNodes(3), WithCompactEvery(0)); err == nil {
		t.Fatal("WithCompactEvery(0) accepted")
	}
	if _, err := New(WithNodes(3), WithCompactEvery(4)); err == nil {
		t.Fatal("WithCompactEvery accepted without WithDataDir")
	}
	if _, err := New(WithNodes(3), WithSimulator(), WithCompactEvery(4)); err == nil {
		t.Fatal("WithCompactEvery accepted on the simulator driver")
	}
}
