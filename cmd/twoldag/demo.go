package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"

	"github.com/twoldag/twoldag"
)

// eventTally counts the runtime's typed event stream — the sample
// consumer for twoldag.WithObserver.
type eventTally struct {
	twoldag.NopObserver
	sealed, announced, hops atomic.Int64
}

func (t *eventTally) OnBlockSealed(twoldag.BlockSealed)         { t.sealed.Add(1) }
func (t *eventTally) OnDigestAnnounced(twoldag.DigestAnnounced) { t.announced.Add(1) }
func (t *eventTally) OnDigestBatchDelivered(e twoldag.DigestBatchDelivered) {
	// A coalesced flush counts one delivery per carried digest, so the
	// tally agrees between the batched and singleton paths.
	t.announced.Add(int64(len(e.Digests)))
}
func (t *eventTally) OnAuditHop(twoldag.AuditHop) { t.hops.Add(1) }

// runDemo is the original single-process demo: the whole cluster lives
// in this process, whichever fabric carries its frames.
func runDemo(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	nodes := fs.Int("nodes", 20, "number of IoT nodes")
	slots := fs.Int("slots", 12, "data-generation slots to run")
	gamma := fs.Int("gamma", 4, "PoP consensus threshold γ")
	audits := fs.Int("audits", 5, "number of random audits to run")
	seed := fs.Int64("seed", 1, "random seed")
	transport := fs.String("transport", "mem", "message fabric: mem or tcp (tcp = one loopback listener per node, still a single process; use serve/join for cross-host)")
	workers := fs.Int("workers", 0, "audit worker pool size (0 = GOMAXPROCS)")
	topoOnly := fs.Bool("topo", false, "print topology statistics and exit")
	fs.Parse(args)

	kind := twoldag.InMemory
	if *transport == "tcp" {
		kind = twoldag.TCP
	}
	tally := &eventTally{}
	rt, err := twoldag.New(
		twoldag.WithNodes(*nodes),
		twoldag.WithGamma(*gamma),
		twoldag.WithSeed(*seed),
		twoldag.WithTransport(kind),
		twoldag.WithWorkers(*workers),
		twoldag.WithObserver(tally),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building runtime: %v\n", err)
		return 1
	}
	defer rt.Close()

	stats := rt.Topology().Summary()
	fmt.Printf("topology: %d nodes, %d edges, degree %.1f avg [%d..%d], diameter %d (%s transport)\n",
		stats.Nodes, stats.Edges, stats.AvgDegree, stats.MinDegree, stats.MaxDegree, stats.Diameter, kind)
	if *topoOnly {
		return 0
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(*seed))
	ids := rt.Nodes()
	var refs []twoldag.Ref
	for s := 0; s < *slots; s++ {
		rt.AdvanceSlot()
		batch := make([]twoldag.Submission, len(ids))
		for i, id := range ids {
			batch[i] = twoldag.Submission{
				Node: id,
				Data: []byte(fmt.Sprintf("sensor %v reading @slot %d", id, s)),
			}
		}
		got, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "submit batch slot %d: %v\n", s, err)
			return 1
		}
		refs = append(refs, got...)
	}
	fmt.Printf("generated %d blocks over %d slots (one announcement flush per slot)\n", len(refs), *slots)

	reqs := make([]twoldag.AuditRequest, *audits)
	for k := range reqs {
		target := refs[rng.Intn(len(refs)/2)] // audit the older half
		validator := ids[rng.Intn(len(ids))]
		for validator == target.Node {
			validator = ids[rng.Intn(len(ids))]
		}
		reqs[k] = twoldag.AuditRequest{Validator: validator, Ref: target}
	}
	for _, out := range rt.AuditMany(ctx, reqs) {
		if out.Err != nil {
			fmt.Printf("audit %v by %v: FAILED: %v\n", out.Request.Ref, out.Request.Validator, out.Err)
			continue
		}
		res := out.Result
		fmt.Printf("audit %v by %v: consensus=%v vouchers=%v path=%d msgs=%d trustHits=%d\n",
			out.Request.Ref, out.Request.Validator, res.Consensus, len(res.Vouchers), len(res.Path),
			res.MessagesSent+res.MessagesReceived, res.TrustHits)
	}
	fmt.Printf("events: %d blocks sealed, %d digests delivered, %d audit hops\n",
		tally.sealed.Load(), tally.announced.Load(), tally.hops.Load())
	return 0
}
