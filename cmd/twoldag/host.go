package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/twoldag/twoldag/internal/cluster"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
)

// runHost is the shared serve/join entry point: both host exactly one
// device in this process and speak the JSON-lines control protocol on
// stdin/stdout; they differ only in how the device gets its identity —
// serve takes a planned -id, join derives one from the placement rule
// after discovering the cluster through -addr.
func runHost(args []string, join bool) int {
	name := "serve"
	if join {
		name = "join"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)

	// The shared world: every process of one cluster must agree on
	// these four, or topologies, identities and block hashes diverge.
	nodes := fs.Int("nodes", 3, "planned cluster size (must match every peer)")
	seed := fs.Int64("seed", 1, "world seed: placement and identities (must match every peer)")
	gamma := fs.Int("gamma", 1, "PoP consensus threshold γ (must match every peer)")
	difficulty := fs.Uint("difficulty", 8, "proof-of-work bits ρ (must match every peer)")

	listen := fs.String("listen", "127.0.0.1:0", "TCP bind address")
	advertise := fs.String("advertise", "", "address announced to peers (default: the bound address)")
	timeout := fs.Duration("timeout", 2*time.Second, "PoP request timeout τ and acknowledgement deadline")

	// Durability: with -data the ledger persists (WAL + snapshots) and a
	// killed process restarted on the same directory resumes exactly
	// where its last fsync'd block left off.
	dataDir := fs.String("data", "", "ledger data directory (empty: in-memory only)")
	trustCap := fs.Int("trust-cap", 0, "bound on retained trust headers H_i, oldest evicted first (0: unbounded)")
	compactEvery := fs.Int("compact-every", 0, "WAL compaction threshold in block records (0: default 256)")
	syncFlag := fs.String("sync", "always", "WAL sync policy: always (fsync per block), batch (one fsync per slot flush), or interval=<dur> (bounded staleness)")

	var id *uint
	var addr *string
	if join {
		addr = fs.String("addr", "", "advertised address of a running member (required)")
	} else {
		id = fs.Uint("id", 0, "this process's planned node ID in [0, nodes)")
		addr = fs.String("bootstrap", "", "advertised address of a running member to discover the directory from (empty for the first process)")
	}

	// Optional chaos: a seeded fault plan plus the retry budget that
	// rides it out. Every process must install the same plan for the
	// injected schedule to be coherent cluster-wide.
	drop := fs.Float64("drop", 0, "per-frame loss probability in [0, 1]")
	crashNode := fs.Int("crash-node", -1, "node taken off the air for the crash window (-1: none)")
	crashFrom := fs.Uint("crash-from", 0, "crash window start slot (inclusive)")
	crashUntil := fs.Uint("crash-until", 0, "crash window end slot (exclusive)")
	retries := fs.Int("retry", 0, "announcement/PoP attempts including the first (<2 disables retries)")
	retryBase := fs.Duration("retry-base", 20*time.Millisecond, "backoff before the second attempt")
	retryMax := fs.Duration("retry-max", 200*time.Millisecond, "backoff cap")
	retryJitter := fs.Float64("retry-jitter", 0.5, "jitter fraction in [0, 1]")
	fs.Parse(args)

	cfg := cluster.Config{
		Join:           join,
		JoinAddr:       *addr,
		Nodes:          *nodes,
		Seed:           *seed,
		Gamma:          *gamma,
		Difficulty:     uint8(*difficulty),
		Listen:         *listen,
		Advertise:      *advertise,
		RequestTimeout: *timeout,
		DataDir:        *dataDir,
		TrustCap:       *trustCap,
		CompactEvery:   *compactEvery,
	}
	if pol, err := ledger.ParseSyncPolicy(*syncFlag); err != nil {
		fmt.Fprintf(os.Stderr, "twoldag %s: %v\n", name, err)
		return 2
	} else {
		cfg.Sync = pol
	}
	if !join {
		cfg.ID = identity.NodeID(*id)
	} else if *addr == "" {
		fmt.Fprintln(os.Stderr, "twoldag join: -addr is required")
		return 2
	}
	if *drop > 0 || *crashNode >= 0 {
		cfg.Plan = faults.Plan{Seed: *seed, DropRate: *drop}
		if *crashNode >= 0 {
			cfg.Plan.Crashes = []faults.CrashWindow{{
				Node: identity.NodeID(*crashNode),
				From: uint32(*crashFrom), Until: uint32(*crashUntil),
			}}
		}
	}
	if *retries >= 2 {
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Jitter:      *retryJitter,
			Seed:        *seed,
		}
	}

	h, err := cluster.Start(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twoldag %s: %v\n", name, err)
		return 1
	}
	if rep, ok := h.RecoveryReport(); ok {
		rate := ""
		if blocks := rep.SnapshotBlocks + rep.WALBlocks; blocks > 0 && rep.Duration > 0 {
			rate = fmt.Sprintf(" in %s (%.0f blocks/s)",
				rep.Duration.Round(time.Microsecond), float64(blocks)/rep.Duration.Seconds())
		}
		fmt.Fprintf(os.Stderr, "twoldag %s: recovered %d snapshot + %d WAL blocks from %s%s\n",
			name, rep.SnapshotBlocks, rep.WALBlocks, *dataDir, rate)
		if rep.TornTail {
			fmt.Fprintf(os.Stderr, "twoldag %s: discarded a %d-byte torn WAL tail (unacknowledged final record)\n",
				name, rep.TornBytes)
		}
	}

	// SIGINT/SIGTERM take the same graceful path as a leave op: cancel
	// in-flight verbs and unblock the stdin read so ServeControl runs
	// the host's ordered shutdown (drain, Leave broadcast, close).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case <-sigs:
			cancel()
			os.Stdin.Close()
		case <-ctx.Done():
		}
	}()

	if err := cluster.ServeControl(ctx, h, os.Stdin, os.Stdout); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "twoldag %s: %v\n", name, err)
		return 1
	}
	return 0
}
