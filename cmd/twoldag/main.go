// Command twoldag runs a live in-process 2LDAG cluster: it generates a
// connected IoT topology, starts one node runtime per device over the
// in-memory transport, produces data blocks for a number of slots and
// then audits random blocks via Proof-of-Path, printing consensus
// results and cost counters.
//
// Usage:
//
//	twoldag [-nodes N] [-slots S] [-gamma G] [-audits K] [-seed X] [-topo]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/twoldag/twoldag"
)

func main() {
	os.Exit(run())
}

func run() int {
	nodes := flag.Int("nodes", 20, "number of IoT nodes")
	slots := flag.Int("slots", 12, "data-generation slots to run")
	gamma := flag.Int("gamma", 4, "PoP consensus threshold γ")
	audits := flag.Int("audits", 5, "number of random audits to run")
	seed := flag.Int64("seed", 1, "random seed")
	topoOnly := flag.Bool("topo", false, "print topology statistics and exit")
	flag.Parse()

	cluster, err := twoldag.NewCluster(twoldag.ClusterConfig{
		Nodes: *nodes,
		Gamma: *gamma,
		Seed:  *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building cluster: %v\n", err)
		return 1
	}
	defer cluster.Close()

	stats := cluster.Topology().Summary()
	fmt.Printf("topology: %d nodes, %d edges, degree %.1f avg [%d..%d], diameter %d\n",
		stats.Nodes, stats.Edges, stats.AvgDegree, stats.MinDegree, stats.MaxDegree, stats.Diameter)
	if *topoOnly {
		return 0
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(*seed))
	var refs []twoldag.Ref
	for s := 0; s < *slots; s++ {
		cluster.AdvanceSlot()
		for _, id := range cluster.Nodes() {
			ref, err := cluster.Submit(ctx, id, []byte(fmt.Sprintf("sensor %v reading @slot %d", id, s)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "submit %v: %v\n", id, err)
				return 1
			}
			refs = append(refs, ref)
		}
	}
	fmt.Printf("generated %d blocks over %d slots\n", len(refs), *slots)

	ids := cluster.Nodes()
	for k := 0; k < *audits; k++ {
		target := refs[rng.Intn(len(refs)/2)] // audit the older half
		validator := ids[rng.Intn(len(ids))]
		for validator == target.Node {
			validator = ids[rng.Intn(len(ids))]
		}
		res, err := cluster.Audit(ctx, validator, target)
		if err != nil {
			fmt.Printf("audit %v by %v: FAILED: %v\n", target, validator, err)
			continue
		}
		fmt.Printf("audit %v by %v: consensus=%v vouchers=%v path=%d msgs=%d trustHits=%d\n",
			target, validator, res.Consensus, len(res.Vouchers), len(res.Path),
			res.MessagesSent+res.MessagesReceived, res.TrustHits)
	}
	return 0
}
