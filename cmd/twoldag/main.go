// Command twoldag drives 2LDAG deployments in three modes:
//
//	twoldag run   [flags]   one whole cluster inside this process
//	twoldag serve [flags]   one planned node of a cross-host cluster
//	twoldag join  [flags]   a dynamic joiner dialing a running cluster
//
// run is the original demo: it generates a connected IoT topology,
// starts one node runtime per device, submits data blocks in per-slot
// batches and fans random Proof-of-Path audits out over a worker pool.
// Note that run's -transport tcp still keeps every node in this one
// process — each device gets its own loopback TCP listener, but nothing
// crosses a host boundary. For a real cross-host cluster start one
// `twoldag serve` per device (pointing later ones at the first with
// -bootstrap), and grow it at runtime with `twoldag join -addr`.
//
// serve and join host exactly one device each and speak a JSON-lines
// control protocol on stdin/stdout (see internal/cluster.ServeControl):
// the process prints a `ready` event carrying its ID and advertised
// address, then answers slot/seal/flush/submit/audit/silence/info/leave
// requests until stdin closes or a leave arrives. SIGINT and SIGTERM
// trigger the same graceful shutdown: drain in-flight verbs, broadcast
// Leave so peers mark the node dead, close the listener.
//
// For compatibility, bare flags without a subcommand run the demo:
// `twoldag -nodes 20` behaves exactly as `twoldag run -nodes 20`.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cmd, rest := "run", args
	if len(args) > 0 {
		switch args[0] {
		case "run", "serve", "join":
			cmd, rest = args[0], args[1:]
		case "help", "-h", "-help", "--help":
			usage(os.Stdout)
			return 0
		default:
			if args[0][0] != '-' {
				fmt.Fprintf(os.Stderr, "twoldag: unknown command %q\n\n", args[0])
				usage(os.Stderr)
				return 2
			}
			// Bare flags: the original single-command interface.
		}
	}
	switch cmd {
	case "serve":
		return runHost(rest, false)
	case "join":
		return runHost(rest, true)
	default:
		return runDemo(rest)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: twoldag <command> [flags]

commands:
  run     run a whole cluster inside this process (default; -transport
          tcp gives every node a loopback listener but still stays in
          one process — use serve/join for real cross-host clusters)
  serve   host one planned node of a cross-host cluster and speak the
          JSON-lines control protocol on stdin/stdout
  join    dial a running cluster as a dynamic joiner, re-anchor to the
          newest live device, then speak the same control protocol

run 'twoldag <command> -h' for the command's flags.
`)
}
