// Command experiments regenerates every figure of the 2LDAG paper's
// evaluation (Sec. VI). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	experiments [-quick] [-csv] [fig7|fig8|fig9|ablation|scaling|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/twoldag/twoldag/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "run the minutes-fast scaled-down configuration")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	trials := flag.Int("trials", 0, "override Fig. 9 trial count")
	flag.Parse()

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *trials > 0 {
		scale.Trials = *trials
	}
	which := flag.Arg(0)
	if which == "" {
		which = "all"
	}

	type runner func(experiments.Scale) ([]*experiments.FigResult, error)
	plan := map[string][]runner{
		"fig7":     {experiments.Fig7},
		"fig8":     {experiments.Fig8},
		"fig9":     {experiments.Fig9},
		"ablation": {experiments.Ablations},
		// The scaling curve is not a paper figure, so "all" (the figure
		// regeneration set) leaves it out; ask for it by name.
		"scaling": {experiments.ScalingCurve},
		"all":     {experiments.Fig7, experiments.Fig8, experiments.Fig9, experiments.Ablations},
	}
	runners, ok := plan[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig7|fig8|fig9|ablation|scaling|all)\n", which)
		return 2
	}
	for _, r := range runners {
		figs, err := r(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
			return 1
		}
		for _, fig := range figs {
			if *csv {
				fmt.Printf("# %s\n%s\n", fig.Name, fig.CSV())
				continue
			}
			if err := fig.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "rendering: %v\n", err)
				return 1
			}
		}
	}
	return 0
}
