// Command benchguard compares `go test -bench` output against the
// checked-in hot-path baseline (BENCH_hotpath.json) and fails when a
// benchmark regressed beyond the tolerance. CI pipes the benchmark
// smoke through it so hot-path regressions surface as red builds
// instead of silent drift.
//
// Usage:
//
//	go test -run '^$' -bench Hotpath -benchtime 100x ./... | \
//	    go run ./cmd/benchguard -baseline BENCH_hotpath.json -tolerance 0.20
//
// Only benchmarks present in the baseline's "micro" list are checked;
// new benchmarks pass freely until a baseline entry is recorded.
// Comparisons are ns/op ratios on the same machine class — refresh the
// baseline (see its "regenerate" field) when hardware changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baseline mirrors the relevant slice of BENCH_hotpath.json.
type baseline struct {
	Micro []struct {
		Benchmark string  `json:"benchmark"`
		NsPerOp   float64 `json:"ns_per_op"`
	} `json:"micro"`
}

func main() {
	os.Exit(run())
}

func run() int {
	path := flag.String("baseline", "BENCH_hotpath.json", "baseline JSON file")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression")
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading baseline: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parsing baseline: %v\n", err)
		return 2
	}
	want := make(map[string]float64, len(base.Micro))
	for _, m := range base.Micro {
		want[m.Benchmark] = m.NsPerOp
	}

	checked, regressed := 0, 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the CI log
		name, ns, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		ref, tracked := want[name]
		if !tracked || ref <= 0 {
			continue
		}
		checked++
		ratio := ns/ref - 1
		if ratio > *tolerance {
			regressed++
			fmt.Fprintf(os.Stderr, "benchguard: REGRESSION %s: %.4g ns/op vs baseline %.4g (%+.1f%%, tolerance %.0f%%)\n",
				name, ns, ref, 100*ratio, 100**tolerance)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading input: %v\n", err)
		return 2
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d of %d tracked benchmarks regressed >%.0f%%\n",
			regressed, checked, 100**tolerance)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchguard: %d tracked benchmarks within %.0f%% of baseline\n",
		checked, 100**tolerance)
	return 0
}

// parseBenchLine extracts (name, ns/op) from a testing benchmark
// result line like:
//
//	BenchmarkHotpathRoot-4   100   583548 ns/op   17544 B/op   3 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so names match the
// baseline regardless of the runner's core count.
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, false
	}
	nsIdx := -1
	for i, f := range fields {
		if f == "ns/op" {
			nsIdx = i - 1
			break
		}
	}
	if nsIdx < 1 {
		return "", 0, false
	}
	ns, err := strconv.ParseFloat(fields[nsIdx], 64)
	if err != nil {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, ns, true
}
