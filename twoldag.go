// Package twoldag is the public API of the 2LDAG reproduction: a
// two-layer DAG architecture with a reactive Proof-of-Path (PoP)
// consensus protocol for IoT data reliability (Yang et al., ICDCS
// 2023).
//
// # Runtime drivers
//
// New builds a Runtime from functional options. Two drivers implement
// the same interface:
//
//   - The live cluster (default): one node runtime per IoT device
//     exchanging real wire messages — over the in-process fabric or,
//     with WithTransport(TCP), over loopback TCP listeners.
//   - The deterministic simulator (WithSimulator): the same engines
//     and validators resolving requests in-process, with the paper's
//     analytic cost accounting and injectable attack behaviors
//     (WithMalicious). Identical options reproduce identical runs.
//
// A typical deployment:
//
//	rt, err := twoldag.New(
//	    twoldag.WithNodes(50),
//	    twoldag.WithGamma(4),
//	    twoldag.WithSeed(1),
//	    twoldag.WithTransport(twoldag.TCP),
//	    twoldag.WithWorkers(8),
//	)
//	...
//	rt.AdvanceSlot()
//	refs, err := rt.SubmitBatch(ctx, batch)  // one flush per slot
//	...
//	outs := rt.AuditMany(ctx, reqs)          // bounded worker pool
//	if outs[0].Result.Consensus { /* γ+1 nodes vouch */ }
//
// Each node stores only its own data blocks plus neighbor header
// digests (the 2LDAG storage model); audits run the full PoP protocol
// — on demand, reactively — collecting γ+1 distinct vouchers before
// declaring a block trustworthy.
//
// # Observing a deployment
//
// WithObserver attaches a typed event observer streaming BlockSealed,
// DigestAnnounced, AuditHop, ConsensusReached and AuditFailed —
// identically on both drivers. The experiments harness (package
// experiments, regenerating every figure of the paper) and the
// bundled commands consume the same stream.
//
// # Migrating from NewCluster
//
// The flat ClusterConfig constructor survives as a deprecated shim:
//
//	NewCluster(ClusterConfig{Nodes: 50, Gamma: 4, Seed: 1})
//	    ≡ New(WithNodes(50), WithGamma(4), WithSeed(1))
//
// with field-for-option equivalents Topology → WithTopology,
// Difficulty → WithDifficulty, RequestTimeout → WithRequestTimeout.
package twoldag

import (
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// Re-exported core types.
type (
	// NodeID identifies a device.
	NodeID = identity.NodeID
	// Ref identifies a data block by origin and sequence.
	Ref = block.Ref
	// Block is a 2LDAG data block.
	Block = block.Block
	// AuditResult reports a PoP verification outcome and its costs.
	AuditResult = core.Result
	// Topology is the physical radio graph.
	Topology = topology.Graph
	// SampleProof binds one sensor sample (body chunk) to a block's
	// Merkle root, so it can be checked against an audited header
	// without re-fetching the body.
	SampleProof = block.SampleProof
	// SmallWorldConfig / GeoClusteredConfig size the sparse topology
	// generators below.
	SmallWorldConfig   = topology.SmallWorldConfig
	GeoClusteredConfig = topology.GeoClusteredConfig
)

// SmallWorld generates a seeded ring-lattice graph with probabilistic
// rewiring (Watts–Strogatz style): low degree, short paths, always
// connected. The sparse shape that lets the simulator scale to 10k+
// nodes; pass the result to WithTopology.
func SmallWorld(cfg SmallWorldConfig) (*Topology, error) { return topology.SmallWorld(cfg) }

// GeoClustered generates a seeded cluster-of-clusters graph: dense
// local clusters on a grid joined by gateway links, the shape of
// real-world IoT site deployments. Pass the result to WithTopology.
func GeoClustered(cfg GeoClusteredConfig) (*Topology, error) { return topology.GeoClustered(cfg) }

// Sentinel errors re-exported for errors.Is checks.
var (
	// ErrNoConsensus: PoP exhausted every path without γ+1 vouchers.
	ErrNoConsensus = core.ErrNoConsensus
	// ErrTampered: the audited block failed its Merkle root check.
	ErrTampered = core.ErrRootMismatch
)

// ClusterConfig sizes a live in-process deployment.
//
// Deprecated: use New with functional options; see the package
// overview for the field-for-option mapping.
type ClusterConfig struct {
	// Nodes is the device count (ignored when Topology is set).
	Nodes int
	// Gamma is the PoP consensus threshold γ (≥ γ+1 vouchers needed).
	Gamma int
	// Seed drives placement and identities; same seed, same cluster.
	Seed int64
	// Topology overrides the generated radio graph.
	Topology *topology.Graph
	// Difficulty is the proof-of-work level ρ (default 8 bits).
	Difficulty uint8
	// RequestTimeout is the PoP request timeout τ (default 2s).
	RequestTimeout time.Duration
}

// NewCluster builds and starts a live cluster: topology, keys,
// transports and one node runtime per device.
//
// Deprecated: use New, which also offers the TCP transport, the
// deterministic simulator, batch submission and audit fan-out, and
// typed observers.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	opts := []Option{WithGamma(cfg.Gamma), WithSeed(cfg.Seed)}
	if cfg.Topology != nil {
		opts = append(opts, WithTopology(cfg.Topology))
	} else if cfg.Nodes > 0 {
		opts = append(opts, WithNodes(cfg.Nodes))
	}
	if cfg.Difficulty > 0 {
		opts = append(opts, WithDifficulty(cfg.Difficulty))
	}
	if cfg.RequestTimeout > 0 {
		opts = append(opts, WithRequestTimeout(cfg.RequestTimeout))
	}
	rt, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return rt.(*Cluster), nil
}
