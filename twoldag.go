// Package twoldag is the public API of the 2LDAG reproduction: a
// two-layer DAG architecture with a reactive Proof-of-Path (PoP)
// consensus protocol for IoT data reliability (Yang et al., ICDCS
// 2023).
//
// The package offers a batteries-included Cluster running one node
// runtime per IoT device over an in-memory transport. Each node stores
// only its own data blocks plus neighbor header digests (the 2LDAG
// storage model); audits run the full PoP protocol — on demand,
// reactively — collecting γ+1 distinct vouchers before declaring a
// block trustworthy.
//
//	cluster, err := twoldag.NewCluster(twoldag.ClusterConfig{Nodes: 20, Gamma: 4})
//	...
//	cluster.AdvanceSlot()
//	ref, err := cluster.Submit(ctx, sensorID, reading)
//	...
//	res, err := cluster.Audit(ctx, operatorID, ref)
//	if res.Consensus { /* γ+1 nodes vouch for the reading */ }
//
// Lower layers (deterministic slot simulator, TCP transport, attack
// library, baselines) live under internal/ and power cmd/experiments,
// which regenerates every figure of the paper.
package twoldag

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/node"
	"github.com/twoldag/twoldag/internal/pow"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
)

// Re-exported core types.
type (
	// NodeID identifies a device.
	NodeID = identity.NodeID
	// Ref identifies a data block by origin and sequence.
	Ref = block.Ref
	// Block is a 2LDAG data block.
	Block = block.Block
	// AuditResult reports a PoP verification outcome and its costs.
	AuditResult = core.Result
	// Topology is the physical radio graph.
	Topology = topology.Graph
)

// Sentinel errors re-exported for errors.Is checks.
var (
	// ErrNoConsensus: PoP exhausted every path without γ+1 vouchers.
	ErrNoConsensus = core.ErrNoConsensus
	// ErrTampered: the audited block failed its Merkle root check.
	ErrTampered = core.ErrRootMismatch
)

// ClusterConfig sizes a live in-process deployment.
type ClusterConfig struct {
	// Nodes is the device count (ignored when Topology is set).
	Nodes int
	// Gamma is the PoP consensus threshold γ (≥ γ+1 vouchers needed).
	Gamma int
	// Seed drives placement and identities; same seed, same cluster.
	Seed int64
	// Topology overrides the generated radio graph.
	Topology *topology.Graph
	// Difficulty is the proof-of-work level ρ (default 8 bits).
	Difficulty uint8
	// RequestTimeout is the PoP request timeout τ (default 2s).
	RequestTimeout time.Duration
}

// Cluster is a running 2LDAG network.
type Cluster struct {
	topo   *topology.Graph
	ring   *identity.Ring
	net    *transport.Network
	nodes  map[NodeID]*node.Node
	ids    []NodeID
	slot   atomic.Uint32
	params block.Params
	seed   int64
	gamma  int
	rto    time.Duration
}

// NewCluster builds and starts a cluster: topology, keys, transports
// and one node runtime per device.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	g := cfg.Topology
	if g == nil {
		if cfg.Nodes <= 0 {
			return nil, errors.New("twoldag: ClusterConfig.Nodes must be positive")
		}
		// Scale the paper's deployment density down to the requested
		// size so small clusters stay multi-hop but connected.
		side := math.Max(200, 1000*float64(cfg.Nodes)/50)
		tc := topology.Config{
			Nodes: cfg.Nodes, Width: side, Height: side,
			Range: math.Max(60, side/5), Seed: cfg.Seed,
		}
		var err error
		g, err = topology.Generate(tc)
		if err != nil {
			return nil, fmt.Errorf("twoldag: generating topology: %w", err)
		}
	}
	if cfg.Gamma < 0 || cfg.Gamma >= g.Len() {
		return nil, fmt.Errorf("twoldag: gamma %d out of range for %d nodes", cfg.Gamma, g.Len())
	}
	params := block.DefaultParams()
	if cfg.Difficulty > 0 {
		params.Difficulty = pow.Difficulty(cfg.Difficulty)
	}

	c := &Cluster{
		topo:   g,
		net:    transport.NewNetwork(),
		nodes:  make(map[NodeID]*node.Node, g.Len()),
		ids:    g.Nodes(),
		params: params,
		seed:   cfg.Seed,
		gamma:  cfg.Gamma,
		rto:    cfg.RequestTimeout,
	}
	var pairs []identity.KeyPair
	for _, id := range c.ids {
		pairs = append(pairs, identity.Deterministic(id, cfg.Seed))
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		return nil, fmt.Errorf("twoldag: %w", err)
	}
	c.ring = ring
	for _, kp := range pairs {
		ep, err := c.net.Endpoint(kp.ID)
		if err != nil {
			return nil, fmt.Errorf("twoldag: %w", err)
		}
		n, err := node.New(node.Config{
			Key:            kp,
			Params:         params,
			Topo:           g,
			Ring:           ring,
			Transport:      ep,
			Gamma:          cfg.Gamma,
			RequestTimeout: cfg.RequestTimeout,
		})
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("twoldag: starting node %v: %w", kp.ID, err)
		}
		slot := &c.slot
		n.SetClock(func() uint32 { return slot.Load() })
		c.nodes[kp.ID] = n
	}
	return c, nil
}

// Nodes returns the device IDs in ascending order.
func (c *Cluster) Nodes() []NodeID {
	return append([]NodeID(nil), c.ids...)
}

// Topology returns the physical radio graph.
func (c *Cluster) Topology() *Topology { return c.topo }

// AdvanceSlot increments the cluster's logical time; blocks submitted
// afterwards carry the new slot in their Time field.
func (c *Cluster) AdvanceSlot() { c.slot.Add(1) }

// Slot returns the current logical time.
func (c *Cluster) Slot() uint32 { return c.slot.Load() }

// Submit makes device id seal data into its next block, announce the
// header digest to its radio neighbors, and waits until every neighbor
// has cached it.
func (c *Cluster) Submit(ctx context.Context, id NodeID, data []byte) (Ref, error) {
	n, ok := c.nodes[id]
	if !ok {
		return Ref{}, fmt.Errorf("twoldag: unknown node %v", id)
	}
	b, err := n.Generate(ctx, data)
	if err != nil {
		return Ref{}, err
	}
	if err := c.waitForDigest(ctx, id, b.Header.Hash()); err != nil {
		return b.Header.Ref(), err
	}
	return b.Header.Ref(), nil
}

// waitForDigest polls neighbor caches until the announcement landed
// (the in-memory fabric is fast; this bounds test flakiness).
func (c *Cluster) waitForDigest(ctx context.Context, id NodeID, d digest.Digest) error {
	deadline := time.Now().Add(2 * time.Second)
	for _, nb := range c.topo.Neighbors(id) {
		n, ok := c.nodes[nb]
		if !ok {
			continue // departed node
		}
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			got, ok := n.Engine().Cache().Get(id)
			if ok && got == d {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("twoldag: digest %s from %v never reached %v", d, id, nb)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	return nil
}

// Audit runs Proof-of-Path from the given validator against ref. The
// result reports whether γ+1 distinct nodes vouch for the block,
// the verification path and the message costs.
func (c *Cluster) Audit(ctx context.Context, validator NodeID, ref Ref) (*AuditResult, error) {
	n, ok := c.nodes[validator]
	if !ok {
		return nil, fmt.Errorf("twoldag: unknown validator %v", validator)
	}
	return n.Audit(ctx, ref)
}

// Block fetches a block from its origin's local store (for display).
// The returned block is shared, sealed store state — treat it as
// read-only and Clone it before mutating.
func (c *Cluster) Block(ref Ref) (*Block, error) {
	n, ok := c.nodes[ref.Node]
	if !ok {
		return nil, fmt.Errorf("twoldag: unknown node %v", ref.Node)
	}
	return n.Engine().Store().Get(ref.Seq)
}

// SampleProof binds one sensor sample (body chunk) to a block's Merkle
// root, so it can be checked against an audited header without
// re-fetching the body.
type SampleProof = block.SampleProof

// ProveSample builds an inclusion proof for the i-th body chunk of the
// given block.
func (c *Cluster) ProveSample(ref Ref, leafIndex int) (*SampleProof, error) {
	b, err := c.Block(ref)
	if err != nil {
		return nil, err
	}
	return c.params.ProveSample(b, leafIndex)
}

// VerifySample checks a sample proof against the header established by
// a successful audit of the same block.
func (c *Cluster) VerifySample(res *AuditResult, sp *SampleProof) error {
	if !res.Consensus || len(res.Path) == 0 {
		return fmt.Errorf("twoldag: audit of %v did not reach consensus", res.Target)
	}
	return c.params.VerifySample(res.Path[0].Header, sp)
}

// Join adds a new device to the running cluster (the paper's Sec. VII
// dynamic-membership extension): it is placed within radio range of an
// existing device, registered in the key ring, and starts serving
// immediately. Returns the new device's ID.
func (c *Cluster) Join() (NodeID, error) {
	if len(c.ids) == 0 {
		return 0, errors.New("twoldag: cannot join an empty cluster")
	}
	id := c.ids[len(c.ids)-1] + 1
	for c.topo.Has(id) {
		id++
	}
	anchor := c.ids[len(c.ids)-1]
	ap, _ := c.topo.Position(anchor)
	r := c.topo.CommRange()
	if r <= 0 {
		r = 2 // manually linked graphs: link to the anchor below
	}
	if err := c.topo.AddNode(id, topology.Point{X: ap.X + r/2, Y: ap.Y}); err != nil {
		return 0, fmt.Errorf("twoldag: joining: %w", err)
	}
	if c.topo.Degree(id) == 0 {
		if err := c.topo.Link(anchor, id); err != nil {
			return 0, fmt.Errorf("twoldag: linking joiner: %w", err)
		}
	}
	kp := identity.Deterministic(id, c.seed)
	if err := c.ring.Register(kp.ID, kp.Public); err != nil {
		return 0, fmt.Errorf("twoldag: registering joiner: %w", err)
	}
	ep, err := c.net.Endpoint(id)
	if err != nil {
		return 0, fmt.Errorf("twoldag: joiner endpoint: %w", err)
	}
	n, err := node.New(node.Config{
		Key:            kp,
		Params:         c.params,
		Topo:           c.topo,
		Ring:           c.ring,
		Transport:      ep,
		Gamma:          c.gamma,
		RequestTimeout: c.rto,
	})
	if err != nil {
		return 0, fmt.Errorf("twoldag: starting joiner: %w", err)
	}
	slot := &c.slot
	n.SetClock(func() uint32 { return slot.Load() })
	c.nodes[id] = n
	c.ids = append(c.ids, id)
	return id, nil
}

// Silence takes a device offline (its transport closes); subsequent
// audits must route around it, as in the paper's malicious-node
// experiments.
func (c *Cluster) Silence(id NodeID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("twoldag: unknown node %v", id)
	}
	delete(c.nodes, id)
	err := n.Close()
	if rerr := c.net.Remove(id); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// Close stops every node and the network fabric.
func (c *Cluster) Close() error {
	var first error
	for id, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.nodes, id)
	}
	if err := c.net.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
