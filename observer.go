package twoldag

import (
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
)

// Typed observer API. Both Runtime drivers emit the same structured
// event stream at the same protocol moments, so instrumentation is
// written once and works against a live cluster and the deterministic
// simulator alike. Attach observers with WithObserver; embed
// NopObserver to handle only the event kinds you care about.
//
// Observers are invoked from transport and worker-pool goroutines:
// implementations must be safe for concurrent use and cheap (count,
// sample or enqueue — never block or do I/O inline).
type (
	// Digest is a 2LDAG content hash (header identity, Δ entries).
	Digest = digest.Digest

	// Observer receives the runtime's typed event stream.
	Observer = events.Observer
	// NopObserver ignores every event; embed it to implement Observer
	// partially.
	NopObserver = events.Nop

	// BlockSealed reports a node sealing its next data block.
	BlockSealed = events.BlockSealed
	// DigestAnnounced reports a neighbor ingesting a digest
	// announcement into its A_i cache (receiver side — a delivery
	// acknowledgement).
	DigestAnnounced = events.DigestAnnounced
	// DigestBatchDelivered reports a neighbor ingesting a whole
	// coalesced announcement flush in one pass (one event per receiver
	// per flush; the slices are only valid during the call).
	DigestBatchDelivered = events.DigestBatchDelivered
	// AuditHop reports one REQ_CHILD probe of a PoP verification.
	AuditHop = events.AuditHop
	// ConsensusReached reports an audit that collected γ+1 vouchers.
	ConsensusReached = events.ConsensusReached
	// AuditFailed reports an audit that ended without consensus.
	AuditFailed = events.AuditFailed

	// MessageDropped reports one lost frame: inbox backpressure, an
	// unreachable peer, or a fault injected by WithFaults.
	MessageDropped = events.MessageDropped
	// DropReason classifies a MessageDropped event.
	DropReason = events.DropReason
	// RetryAttempted reports a re-issued announcement frame or PoP
	// request (WithRetryPolicy; Attempt counts from 2).
	RetryAttempted = events.RetryAttempted
	// PeerSuspected reports a node's circuit breaker opening on a peer
	// after consecutive transport failures; audits route around it.
	PeerSuspected = events.PeerSuspected
	// PeerRecovered reports a suspected peer being re-admitted after a
	// successful probe.
	PeerRecovered = events.PeerRecovered

	// FaultPlan is a seeded fault-injection schedule for WithFaults:
	// drop/duplicate rates, a delay bound, per-slot partitions and peer
	// crash windows, all replayed deterministically from the seed.
	FaultPlan = faults.Plan
	// FaultPartition cuts every link between its two sides for a range
	// of logical slots, healing when the range ends.
	FaultPartition = faults.Partition
	// CrashWindow takes one node off the air for a range of logical
	// slots; its state survives the outage.
	CrashWindow = faults.CrashWindow
	// RetryPolicy bounds re-transmission for WithRetryPolicy:
	// exponential backoff with deterministic jitter and a total-attempt
	// cap. The zero value disables retries.
	RetryPolicy = faults.RetryPolicy
)

// Drop reasons carried by MessageDropped events.
const (
	DropBackpressure = events.DropBackpressure
	DropUnreachable  = events.DropUnreachable
	DropInjected     = events.DropInjected
	DropPartition    = events.DropPartition
	DropCrash        = events.DropCrash
)

// DefaultRetryPolicy is a sane retry configuration for lossy
// deployments: four attempts backing off 20ms → 40ms → 80ms with
// half-width jitter.
func DefaultRetryPolicy() RetryPolicy { return faults.DefaultRetryPolicy() }
