package twoldag

import (
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
)

// Typed observer API. Both Runtime drivers emit the same structured
// event stream at the same protocol moments, so instrumentation is
// written once and works against a live cluster and the deterministic
// simulator alike. Attach observers with WithObserver; embed
// NopObserver to handle only the event kinds you care about.
//
// Observers are invoked from transport and worker-pool goroutines:
// implementations must be safe for concurrent use and cheap (count,
// sample or enqueue — never block or do I/O inline).
type (
	// Digest is a 2LDAG content hash (header identity, Δ entries).
	Digest = digest.Digest

	// Observer receives the runtime's typed event stream.
	Observer = events.Observer
	// NopObserver ignores every event; embed it to implement Observer
	// partially.
	NopObserver = events.Nop

	// BlockSealed reports a node sealing its next data block.
	BlockSealed = events.BlockSealed
	// DigestAnnounced reports a neighbor ingesting a digest
	// announcement into its A_i cache (receiver side — a delivery
	// acknowledgement).
	DigestAnnounced = events.DigestAnnounced
	// DigestBatchDelivered reports a neighbor ingesting a whole
	// coalesced announcement flush in one pass (one event per receiver
	// per flush; the slices are only valid during the call).
	DigestBatchDelivered = events.DigestBatchDelivered
	// AuditHop reports one REQ_CHILD probe of a PoP verification.
	AuditHop = events.AuditHop
	// ConsensusReached reports an audit that collected γ+1 vouchers.
	ConsensusReached = events.ConsensusReached
	// AuditFailed reports an audit that ended without consensus.
	AuditFailed = events.AuditFailed
)
