// Health-data provenance: wearable devices feed a patient's digital
// twin (the paper's Sec. I health example). Devices drop offline —
// batteries die, radios fade — yet an auditor can still establish the
// provenance of historical readings by routing Proof-of-Path around
// the missing devices.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/twoldag/twoldag"
)

func main() {
	rt, err := twoldag.New(
		twoldag.WithNodes(14), // body-area + home sensors
		twoldag.WithGamma(3),
		twoldag.WithSeed(11),
	)
	if err != nil {
		log.Fatalf("health network: %v", err)
	}
	defer rt.Close()

	ctx := context.Background()
	devices := rt.Nodes()
	kinds := []string{"heart-rate", "spo2", "temperature", "steps", "sleep", "bp"}

	// A day of periodic measurements, one batch per hour.
	var morning twoldag.Ref
	for hour := 0; hour < 8; hour++ {
		rt.AdvanceSlot()
		batch := make([]twoldag.Submission, len(devices))
		for i, dev := range devices {
			kind := kinds[i%len(kinds)]
			batch[i] = twoldag.Submission{
				Node: dev,
				Data: []byte(fmt.Sprintf("%s sample dev=%v hour=%d", kind, dev, hour)),
			}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			log.Fatalf("sample: %v", err)
		}
		if hour == 0 {
			morning = refs[0]
		}
	}

	// Two wearables go offline before the evening audit.
	offline := []twoldag.NodeID{devices[2], devices[5]}
	for _, dev := range offline {
		if err := rt.Silence(dev); err != nil {
			log.Fatalf("silence: %v", err)
		}
	}
	fmt.Printf("devices %v went offline\n", offline)

	// The clinician's audit still succeeds: PoP constructs a voucher
	// path through the devices that remain reachable.
	clinician := devices[len(devices)-1]
	res, err := rt.Audit(ctx, clinician, morning)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("morning reading %v: consensus=%v\n", morning, res.Consensus)
	fmt.Printf("  vouchers: %v\n", res.Vouchers)
	for _, off := range offline {
		for _, v := range res.Vouchers {
			if v == off {
				log.Fatalf("offline device %v cannot vouch", off)
			}
		}
	}
	fmt.Printf("  timeouts while routing around offline devices: %d\n", res.Timeouts)
	fmt.Printf("  rollbacks: %d, messages: %d\n", res.Rollbacks, res.MessagesSent+res.MessagesReceived)
	fmt.Println("provenance established without any offline device")
}
