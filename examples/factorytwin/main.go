// Factory digital twin: the motivating scenario of the paper's
// introduction. Machines on a factory floor stream vibration readings;
// the factory's digital twin audits readings before trusting them for
// maintenance decisions, and detects when a reading's provenance cannot
// be established. The compliance sweep at the end fans its audits out
// over the runtime's bounded worker pool in one AuditMany call.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"github.com/twoldag/twoldag"
)

func main() {
	const (
		machines = 18
		gamma    = 4
		shifts   = 8
	)
	rt, err := twoldag.New(
		twoldag.WithNodes(machines),
		twoldag.WithGamma(gamma),
		twoldag.WithSeed(7),
		twoldag.WithWorkers(4),
	)
	if err != nil {
		log.Fatalf("factory network: %v", err)
	}
	defer rt.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	devices := rt.Nodes()
	type reading struct {
		ref   twoldag.Ref
		shift int
		mm    float64
	}
	var lake []reading

	// Eight shifts of vibration telemetry, one batch per shift.
	for shift := 1; shift <= shifts; shift++ {
		rt.AdvanceSlot()
		batch := make([]twoldag.Submission, len(devices))
		mms := make([]float64, len(devices))
		for i, m := range devices {
			mm := 0.2 + rng.Float64()*0.3
			if shift == 3 && m == devices[3] {
				mm = 2.9 // anomalous spike on machine 3, shift 3
			}
			mms[i] = mm
			batch[i] = twoldag.Submission{
				Node: m,
				Data: []byte(fmt.Sprintf("vibration=%.2fmm machine=%v shift=%d", mm, m, shift)),
			}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		for i, ref := range refs {
			lake = append(lake, reading{ref: ref, shift: shift, mm: mms[i]})
		}
	}

	// The digital twin spots the spike and audits its provenance before
	// scheduling maintenance.
	twin := devices[machines-1]
	var spike reading
	for _, r := range lake {
		if r.mm > 2 {
			spike = r
			break
		}
	}
	fmt.Printf("digital twin: anomalous reading %.2f mm at %v (shift %d) — auditing\n", spike.mm, spike.ref, spike.shift)
	res, err := rt.Audit(ctx, twin, spike.ref)
	switch {
	case errors.Is(err, twoldag.ErrTampered):
		fmt.Println("  VERDICT: reading tampered — maintenance order rejected")
	case errors.Is(err, twoldag.ErrNoConsensus):
		fmt.Println("  VERDICT: provenance unverifiable — holding decision")
	case err != nil:
		log.Fatalf("audit: %v", err)
	default:
		fmt.Printf("  VERDICT: genuine (vouched by %d machines: %v)\n", len(res.Vouchers), res.Vouchers)
		fmt.Printf("  evidence path spans %d blocks, cost %d messages\n", len(res.Path), res.MessagesSent+res.MessagesReceived)
		fmt.Println("  maintenance scheduled for machine", spike.ref.Node)
	}

	// Periodic compliance sweep: one reading per shift from the older
	// half of the lake — readings become auditable once the DAG has
	// grown past them — audited concurrently over the worker pool.
	reqs := make([]twoldag.AuditRequest, 0, shifts/2)
	for shift := 1; shift <= shifts/2; shift++ {
		r := lake[(shift-1)*machines+rng.Intn(machines)]
		if r.ref.Node == twin {
			r = lake[(shift-1)*machines]
		}
		reqs = append(reqs, twoldag.AuditRequest{Validator: twin, Ref: r.ref})
	}
	okCount := 0
	for _, out := range rt.AuditMany(ctx, reqs) {
		if out.Err == nil && out.Result.Consensus {
			okCount++
		}
	}
	fmt.Printf("compliance sweep: %d/%d sampled readings verified\n", okCount, len(reqs))
}
