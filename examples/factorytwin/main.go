// Factory digital twin: the motivating scenario of the paper's
// introduction. Machines on a factory floor stream vibration readings;
// the factory's digital twin audits readings before trusting them for
// maintenance decisions, and detects when a reading's provenance cannot
// be established.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"github.com/twoldag/twoldag"
)

func main() {
	const (
		machines = 18
		gamma    = 5
		shifts   = 6
	)
	cluster, err := twoldag.NewCluster(twoldag.ClusterConfig{
		Nodes: machines,
		Gamma: gamma,
		Seed:  7,
	})
	if err != nil {
		log.Fatalf("factory network: %v", err)
	}
	defer cluster.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	type reading struct {
		ref   twoldag.Ref
		shift int
		mm    float64
	}
	var lake []reading

	// Six shifts of vibration telemetry.
	for shift := 1; shift <= shifts; shift++ {
		cluster.AdvanceSlot()
		for _, m := range cluster.Nodes() {
			mm := 0.2 + rng.Float64()*0.3
			if shift == 4 && m == cluster.Nodes()[3] {
				mm = 2.9 // anomalous spike on machine 3, shift 4
			}
			ref, err := cluster.Submit(ctx, m, []byte(fmt.Sprintf("vibration=%.2fmm machine=%v shift=%d", mm, m, shift)))
			if err != nil {
				log.Fatalf("telemetry: %v", err)
			}
			lake = append(lake, reading{ref: ref, shift: shift, mm: mm})
		}
	}

	// The digital twin spots the spike and audits its provenance before
	// scheduling maintenance.
	twin := cluster.Nodes()[machines-1]
	var spike reading
	for _, r := range lake {
		if r.mm > 2 {
			spike = r
			break
		}
	}
	fmt.Printf("digital twin: anomalous reading %.2f mm at %v (shift %d) — auditing\n", spike.mm, spike.ref, spike.shift)
	res, err := cluster.Audit(ctx, twin, spike.ref)
	switch {
	case errors.Is(err, twoldag.ErrTampered):
		fmt.Println("  VERDICT: reading tampered — maintenance order rejected")
	case errors.Is(err, twoldag.ErrNoConsensus):
		fmt.Println("  VERDICT: provenance unverifiable — holding decision")
	case err != nil:
		log.Fatalf("audit: %v", err)
	default:
		fmt.Printf("  VERDICT: genuine (vouched by %d machines: %v)\n", len(res.Vouchers), res.Vouchers)
		fmt.Printf("  evidence path spans %d blocks, cost %d messages\n", len(res.Path), res.MessagesSent+res.MessagesReceived)
		fmt.Println("  maintenance scheduled for machine", spike.ref.Node)
	}

	// Periodic compliance sweep: audit one reading per shift.
	okCount := 0
	for shift := 1; shift <= shifts; shift++ {
		r := lake[(shift-1)*machines+rng.Intn(machines)]
		if r.ref.Node == twin {
			r = lake[(shift-1)*machines]
		}
		res, err := cluster.Audit(ctx, twin, r.ref)
		if err == nil && res.Consensus {
			okCount++
		}
	}
	fmt.Printf("compliance sweep: %d/%d sampled readings verified\n", okCount, shifts)
}
