// Quickstart: stand up a small 2LDAG network, submit sensor data and
// audit it via Proof-of-Path.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/twoldag/twoldag"
)

func main() {
	// A 12-device IoT network tolerating γ=3 malicious nodes.
	cluster, err := twoldag.NewCluster(twoldag.ClusterConfig{
		Nodes: 12,
		Gamma: 3,
		Seed:  42,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	defer cluster.Close()

	ctx := context.Background()
	devices := cluster.Nodes()

	// Every device seals one reading per slot; headers digest-link into
	// the logical DAG as announcements propagate.
	var first twoldag.Ref
	for slot := 1; slot <= 4; slot++ {
		cluster.AdvanceSlot()
		for _, dev := range devices {
			ref, err := cluster.Submit(ctx, dev, []byte(fmt.Sprintf("temp=%d.%dC dev=%v slot=%d", 20+slot, int(dev), dev, slot)))
			if err != nil {
				log.Fatalf("submit: %v", err)
			}
			if slot == 1 && dev == devices[0] {
				first = ref
			}
		}
	}

	// An operator audits the very first reading: PoP walks the DAG
	// until γ+1 = 4 distinct devices vouch for it.
	operator := devices[len(devices)-1]
	res, err := cluster.Audit(ctx, operator, first)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("block %v audited by %v\n", first, operator)
	fmt.Printf("  consensus: %v\n", res.Consensus)
	fmt.Printf("  vouchers (%d): %v\n", len(res.Vouchers), res.Vouchers)
	fmt.Printf("  path length: %d blocks, messages: %d\n", len(res.Path), res.MessagesSent+res.MessagesReceived)

	// A second audit of the same block is nearly free: the trusted
	// header cache H_i answers without network traffic (TPS).
	res2, err := cluster.Audit(ctx, operator, first)
	if err != nil {
		log.Fatalf("re-audit: %v", err)
	}
	fmt.Printf("re-audit: messages=%d (trust-cache hits: %d)\n",
		res2.MessagesSent+res2.MessagesReceived, res2.TrustHits)
}
