// Quickstart: stand up a small 2LDAG network through the Runtime API,
// submit sensor data and audit it via Proof-of-Path.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/twoldag/twoldag"
)

func main() {
	// A 12-device IoT network tolerating γ=3 malicious nodes. New
	// defaults to the live driver over the in-memory fabric; swap in
	// twoldag.WithTransport(twoldag.TCP) for real sockets, or
	// twoldag.WithSimulator() for the deterministic simulator — same
	// verbs either way.
	rt, err := twoldag.New(
		twoldag.WithNodes(12),
		twoldag.WithGamma(3),
		twoldag.WithSeed(42),
	)
	if err != nil {
		log.Fatalf("building runtime: %v", err)
	}
	defer rt.Close()

	ctx := context.Background()
	devices := rt.Nodes()

	// Every device seals one reading per slot; headers digest-link into
	// the logical DAG as announcements propagate. SubmitBatch seals the
	// whole slot first and flushes every announcement at once.
	var first twoldag.Ref
	for slot := 1; slot <= 4; slot++ {
		rt.AdvanceSlot()
		batch := make([]twoldag.Submission, len(devices))
		for i, dev := range devices {
			batch[i] = twoldag.Submission{
				Node: dev,
				Data: []byte(fmt.Sprintf("temp=%d.%dC dev=%v slot=%d", 20+slot, int(dev), dev, slot)),
			}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		if slot == 1 {
			first = refs[0]
		}
	}

	// An operator audits the very first reading: PoP walks the DAG
	// until γ+1 = 4 distinct devices vouch for it.
	operator := devices[len(devices)-1]
	res, err := rt.Audit(ctx, operator, first)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("block %v audited by %v\n", first, operator)
	fmt.Printf("  consensus: %v\n", res.Consensus)
	fmt.Printf("  vouchers (%d): %v\n", len(res.Vouchers), res.Vouchers)
	fmt.Printf("  path length: %d blocks, messages: %d\n", len(res.Path), res.MessagesSent+res.MessagesReceived)

	// A second audit of the same block is nearly free: the trusted
	// header cache H_i answers without network traffic (TPS).
	res2, err := rt.Audit(ctx, operator, first)
	if err != nil {
		log.Fatalf("re-audit: %v", err)
	}
	fmt.Printf("re-audit: messages=%d (trust-cache hits: %d)\n",
		res2.MessagesSent+res2.MessagesReceived, res2.TrustHits)
}
