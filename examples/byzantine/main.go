// Byzantine stress: the paper's headline robustness claim — 2LDAG
// reaches consensus even when 49% of nodes are malicious (silent) —
// demonstrated on the deterministic slot simulator with the paper's
// 50-node deployment.
package main

import (
	"fmt"
	"log"

	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

func main() {
	const nodes = 50
	gammas := []int{10, 24} // 20% and the paper's maximum 49% tolerance

	for _, gamma := range gammas {
		malicious := gamma // worst tolerated case: γ actually-silent nodes
		rep, err := sim.RunProbe(sim.ProbeConfig{
			Base: sim.Config{
				Topo:            topology.DefaultConfig(3),
				Seed:            3,
				BodyBytes:       500_000,
				Gamma:           gamma,
				Malicious:       malicious,
				Behavior:        attack.KindSilent,
				RandomPeriodMax: 2, // one block per {1,2} slots, per Sec. VI-C
			},
			MaxSlots: 150,
			Trials:   5,
			Stride:   5,
		})
		if err != nil {
			log.Fatalf("probe γ=%d: %v", gamma, err)
		}
		fmt.Printf("γ=%d with %d/%d silent malicious nodes:\n", gamma, malicious, nodes)
		for i, slot := range rep.Slots {
			if i%3 == 0 || rep.FailureProb[i] == 0 {
				fmt.Printf("  slot %3d: consensus failure probability %.2f\n", slot, rep.FailureProb[i])
			}
			if rep.FailureProb[i] == 0 {
				break
			}
		}
		if rep.SlotsToConsensus >= 0 {
			fmt.Printf("  => consensus achieved from slot %d onward\n\n", rep.SlotsToConsensus)
		} else {
			fmt.Printf("  => consensus not yet achieved within %d slots\n\n", 150)
		}
	}
	fmt.Println("matches Fig. 9: consensus survives up to 49% malicious nodes,")
	fmt.Println("with time-to-consensus growing sharply at the tolerance limit.")
}
