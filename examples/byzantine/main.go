// Byzantine stress: the paper's headline robustness claim — 2LDAG
// reaches consensus even when 49% of nodes are malicious (silent) —
// demonstrated on the deterministic simulator driver of the public
// Runtime API with the paper's 50-node deployment. The same program
// runs against a live cluster by dropping WithSimulator/WithMalicious
// and silencing devices instead.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"github.com/twoldag/twoldag"
)

func main() {
	const (
		nodes    = 50
		maxSlots = 120
	)
	gammas := []int{10, 24} // 20% and the paper's maximum 49% tolerance

	for _, gamma := range gammas {
		malicious := gamma // worst tolerated case: γ actually-silent nodes
		rt, err := twoldag.New(
			twoldag.WithSimulator(),
			twoldag.WithNodes(nodes),
			twoldag.WithGamma(gamma),
			twoldag.WithMalicious(malicious),
			twoldag.WithSeed(3),
			twoldag.WithDifficulty(0), // cost accounting never depends on ρ
			twoldag.WithBodyBytes(500_000),
		)
		if err != nil {
			log.Fatalf("probe γ=%d: %v", gamma, err)
		}
		sd := rt.(*twoldag.SimDriver)
		bad := make(map[twoldag.NodeID]bool)
		for _, id := range sd.MaliciousNodes() {
			bad[id] = true
		}

		ctx := context.Background()
		ids := rt.Nodes()
		// An honest validator for the probes, and an early honest block
		// as the audit target once the first slot lands.
		var validator twoldag.NodeID
		for i := len(ids) - 1; i >= 0; i-- {
			if !bad[ids[i]] {
				validator = ids[i]
				break
			}
		}
		var target twoldag.Ref
		haveTarget := false

		fmt.Printf("γ=%d with %d/%d silent malicious nodes:\n", gamma, malicious, nodes)
		consensusAt := -1
		for slot := 1; slot <= maxSlots; slot++ {
			rt.AdvanceSlot()
			// One reading per {1,2} slots per device, per Sec. VI-C.
			var batch []twoldag.Submission
			var origins []twoldag.NodeID
			for _, id := range ids {
				if slot%(1+int(id)%2) != 0 {
					continue
				}
				batch = append(batch, twoldag.Submission{
					Node: id,
					Data: []byte(fmt.Sprintf("reading dev=%v slot=%d", id, slot)),
				})
				origins = append(origins, id)
			}
			refs, err := rt.SubmitBatch(ctx, batch)
			if err != nil {
				log.Fatalf("slot %d: %v", slot, err)
			}
			if !haveTarget {
				for i, ref := range refs {
					if !bad[origins[i]] && origins[i] != validator {
						target, haveTarget = ref, true
						break
					}
				}
				continue // let the DAG grow past the target first
			}
			res, err := rt.Audit(ctx, validator, target)
			switch {
			case err == nil && res.Consensus:
				fmt.Printf("  slot %3d: consensus — %d distinct vouchers for %v\n",
					slot, len(res.Vouchers), target)
				consensusAt = slot
			case errors.Is(err, twoldag.ErrNoConsensus):
				fmt.Printf("  slot %3d: no consensus yet (DAG too shallow past the silent nodes)\n", slot)
			case err != nil:
				fmt.Printf("  slot %3d: audit error: %v\n", slot, err)
			}
			if consensusAt >= 0 {
				break
			}
		}
		if consensusAt >= 0 {
			fmt.Printf("  => consensus achieved from slot %d onward\n\n", consensusAt)
		} else {
			fmt.Printf("  => consensus not yet achieved within %d slots\n\n", maxSlots)
		}
		rt.Close()
	}
	fmt.Println("matches Fig. 9: consensus survives up to 49% malicious nodes,")
	fmt.Println("with time-to-consensus growing sharply at the tolerance limit.")
}
