package twoldag

import (
	"context"
	"testing"
)

// TestSparseTopologyFacade drives a short simulated run over each
// re-exported sparse generator, pinning that the facade path (generate
// → WithTopology → RunSlots) works end to end.
func TestSparseTopologyFacade(t *testing.T) {
	sw, err := SmallWorld(SmallWorldConfig{Nodes: 24, K: 2, Beta: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := GeoClustered(GeoClusteredConfig{Nodes: 24, ClusterSize: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*Topology{"smallworld": sw, "geoclustered": gc} {
		rt, err := New(
			WithSimulator(), WithTopology(g), WithSeed(9),
			WithGamma(3), WithDifficulty(0), WithChunkSize(4),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sd := rt.(*SimDriver)
		if err := sd.RunSlots(30); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := sd.Report()
		if rep.Blocks != 24*30 {
			t.Fatalf("%s: blocks = %d, want %d", name, rep.Blocks, 24*30)
		}
		if rep.Audits == 0 {
			t.Fatalf("%s: no audits ran", name)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSampleProofEndToEnd(t *testing.T) {
	c := testCluster(t, 10, 3)
	ctx := context.Background()
	c.AdvanceSlot()
	// A body spanning several Merkle leaves.
	body := make([]byte, 4096)
	for i := range body {
		body[i] = byte(i)
	}
	var ref Ref
	for _, id := range c.Nodes() {
		r, err := c.Submit(ctx, id, body)
		if err != nil {
			t.Fatal(err)
		}
		if id == c.Nodes()[0] {
			ref = r
		}
	}
	for s := 0; s < 3; s++ {
		c.AdvanceSlot()
		for _, id := range c.Nodes() {
			if _, err := c.Submit(ctx, id, body); err != nil {
				t.Fatal(err)
			}
		}
	}

	validator := c.Nodes()[9]
	res, err := c.Audit(ctx, validator, ref)
	if err != nil || !res.Consensus {
		t.Fatalf("audit: %v", err)
	}
	sp, err := c.ProveSample(ref, 2)
	if err != nil {
		t.Fatalf("ProveSample: %v", err)
	}
	if err := c.VerifySample(res, sp); err != nil {
		t.Fatalf("VerifySample: %v", err)
	}
	// Tampered sample must fail against the audited header.
	sp.Leaf[0] ^= 0xFF
	if err := c.VerifySample(res, sp); err == nil {
		t.Fatal("tampered sample verified")
	}
}

func TestSampleProofRequiresConsensus(t *testing.T) {
	c := testCluster(t, 6, 1)
	refs := fill(t, c, 2)
	sp, err := c.ProveSample(refs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	bogus := &AuditResult{Target: refs[0]}
	if err := c.VerifySample(bogus, sp); err == nil {
		t.Fatal("sample verified against a non-consensus audit")
	}
}

func TestDynamicJoin(t *testing.T) {
	c := testCluster(t, 8, 2)
	fill(t, c, 2)
	joiner, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !c.Topology().Has(joiner) || c.Topology().Degree(joiner) == 0 {
		t.Fatal("joiner not wired into the radio graph")
	}
	ctx := context.Background()
	// The joiner participates: submits blocks and vouches in audits.
	c.AdvanceSlot()
	var refs []Ref
	for _, id := range c.Nodes() {
		r, err := c.Submit(ctx, id, []byte("post-join"))
		if err != nil {
			t.Fatalf("submit after join (%v): %v", id, err)
		}
		refs = append(refs, r)
	}
	c.AdvanceSlot()
	for _, id := range c.Nodes() {
		if _, err := c.Submit(ctx, id, []byte("post-join-2")); err != nil {
			t.Fatal(err)
		}
	}
	// The joiner can itself audit.
	res, err := c.Audit(ctx, joiner, refs[0])
	if err != nil {
		t.Fatalf("joiner audit: %v", err)
	}
	if !res.Consensus {
		t.Fatal("joiner failed to audit")
	}
	// And the joiner's own data can be audited by others.
	var joinerRef Ref
	for _, r := range refs {
		if r.Node == joiner {
			joinerRef = r
		}
	}
	res2, err := c.Audit(ctx, c.Nodes()[0], joinerRef)
	if err != nil {
		t.Fatalf("auditing joiner data: %v", err)
	}
	if !res2.Consensus {
		t.Fatal("joiner's data unverifiable")
	}
}

func TestJoinThenSilenceLifecycle(t *testing.T) {
	c := testCluster(t, 8, 1)
	fill(t, c, 2)
	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Silence(id); err != nil {
		t.Fatalf("silencing joiner: %v", err)
	}
	// Cluster still functions.
	c.AdvanceSlot()
	anchor := c.Nodes()[0]
	if _, err := c.Submit(context.Background(), anchor, []byte("after churn")); err != nil {
		t.Fatalf("submit after churn: %v", err)
	}
}
