package twoldag

import (
	"errors"
	"fmt"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/pow"
	"github.com/twoldag/twoldag/internal/topology"
)

// Driver selects which Runtime implementation New builds.
type Driver int

const (
	// DriverLive runs one node runtime per device exchanging real wire
	// messages over the selected transport. This is the default.
	DriverLive Driver = iota
	// DriverSim runs the deterministic slot simulator: the same
	// engines and PoP validators, but requests resolve in-process with
	// the paper's analytic cost accounting and injectable attack
	// behaviors. Same options, same Runtime verbs, reproducible runs.
	DriverSim
)

// String names the driver.
func (d Driver) String() string {
	switch d {
	case DriverLive:
		return "live"
	case DriverSim:
		return "sim"
	default:
		return fmt.Sprintf("driver(%d)", int(d))
	}
}

// TransportKind selects the live driver's message fabric.
type TransportKind int

const (
	// InMemory is the zero-configuration in-process fabric (default).
	InMemory TransportKind = iota
	// TCP runs every node on its own loopback TCP listener with
	// length-prefixed frames — the same code path a real distributed
	// deployment uses.
	TCP
)

// String names the transport kind.
func (t TransportKind) String() string {
	switch t {
	case InMemory:
		return "inmem"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// Option configures New.
type Option func(*config) error

// config is the resolved runtime configuration.
type config struct {
	driver    Driver
	nodes     int
	gamma     int
	seed      int64
	topo      *topology.Graph
	params    block.Params
	rto       time.Duration
	transport TransportKind
	workers   int
	observers []Observer
	malicious int
	bodyBytes int
	pipeline  int
	chunk     int
	faultPlan faults.Plan
	retry     faults.RetryPolicy
	dataDir      string
	trustCap     int
	compactEvery int
	syncPolicy   SyncPolicy
}

func defaultConfig() *config {
	return &config{
		params:    block.DefaultParams(),
		rto:       2 * time.Second,
		bodyBytes: 100_000,
		pipeline:  1,
	}
}

// WithNodes sets the device count; the radio topology is generated
// from the seed at the paper's deployment density. Ignored when
// WithTopology supplies an explicit graph.
func WithNodes(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("twoldag: WithNodes(%d): node count must be positive", n)
		}
		c.nodes = n
		return nil
	}
}

// WithGamma sets the PoP consensus threshold γ: audits need γ+1
// distinct vouchers (tolerating γ malicious nodes).
func WithGamma(g int) Option {
	return func(c *config) error {
		if g < 0 {
			return fmt.Errorf("twoldag: WithGamma(%d): gamma must be non-negative", g)
		}
		c.gamma = g
		return nil
	}
}

// WithSeed anchors every random choice — placement, identities, the
// simulator's behavior assignment. Same seed, same deployment.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithTopology supplies an explicit radio graph instead of generating
// one (e.g. the paper's Fig. 4 fixture, or a hand-linked testbed).
func WithTopology(g *Topology) Option {
	return func(c *config) error {
		if g == nil {
			return errors.New("twoldag: WithTopology(nil)")
		}
		c.topo = g
		return nil
	}
}

// WithDifficulty sets the proof-of-work level ρ in bits (default: the
// paper's 8 bits, on both drivers, so identical options build
// identical blocks). Cost accounting never depends on ρ, so large
// simulator sweeps may set 0 to skip mining entirely.
func WithDifficulty(bits uint8) Option {
	return func(c *config) error {
		c.params.Difficulty = pow.Difficulty(bits)
		return nil
	}
}

// WithRequestTimeout sets the PoP request timeout τ and the fallback
// deadline for announcement acknowledgements when the submit context
// carries none (default 2s).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("twoldag: WithRequestTimeout(%v): timeout must be positive", d)
		}
		c.rto = d
		return nil
	}
}

// WithTransport selects the live driver's fabric: InMemory (default)
// or TCP. The simulator resolves requests in-process and rejects this
// option.
func WithTransport(k TransportKind) Option {
	return func(c *config) error {
		if k != InMemory && k != TCP {
			return fmt.Errorf("twoldag: WithTransport(%v): unknown transport", k)
		}
		c.transport = k
		return nil
	}
}

// WithWorkers bounds the worker pool AuditMany fans audits out over
// (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("twoldag: WithWorkers(%d): worker count must be non-negative", n)
		}
		c.workers = n
		return nil
	}
}

// WithPipelineDepth bounds how many slots of audit duty the
// simulator's slotted scheduler (SimDriver.RunSlots) may keep in
// flight behind generation. The default d = 1 runs the fully
// barriered schedule; d ≥ 2 overlaps slot t's audits with slot t+1's
// generation under the immutable-prefix contract — audits read every
// store through a view fenced at their slot boundary, and a node's
// next generation waits for its own outstanding audit so per-node
// random streams keep their barriered order. The Report is
// byte-identical for every depth and worker count on the same seed;
// the depth only trades memory (in-flight slots) for wall-clock
// overlap. Simulator only: the live driver's audits are already
// caller-paced.
func WithPipelineDepth(d int) Option {
	return func(c *config) error {
		if d < 1 {
			return fmt.Errorf("twoldag: WithPipelineDepth(%d): depth must be at least 1", d)
		}
		c.pipeline = d
		return nil
	}
}

// WithChunkSize sets how many nodes each worker-pool task covers in
// the simulator's slot phases (generation, announcement delivery,
// audit fan-out). The default 0 auto-sizes chunks from the worker
// count; at 10k+ nodes an explicit chunk in the hundreds amortizes
// dispatch overhead without hurting balance. Purely a scheduling knob:
// the Report is byte-identical for every chunk size on the same seed.
// Simulator only.
func WithChunkSize(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("twoldag: WithChunkSize(%d): chunk size must be non-negative", n)
		}
		c.chunk = n
		return nil
	}
}

// WithObserver attaches a typed event observer; repeat the option to
// attach several. Observers must be safe for concurrent use.
func WithObserver(o Observer) Option {
	return func(c *config) error {
		if o == nil {
			return errors.New("twoldag: WithObserver(nil)")
		}
		c.observers = append(c.observers, o)
		return nil
	}
}

// WithFaults installs a seeded fault-injection plan on the live
// driver: every node's transport is wrapped so frames suffer the
// plan's drops, delays, duplicates, partitions and crash windows —
// deterministically, keyed on (seed, sender, receiver, send ordinal),
// so the same plan replays identically over the in-memory fabric and
// TCP. The zero plan injects nothing and leaves transports unwrapped.
// Live driver only: the simulator has no wire to disturb.
func WithFaults(plan FaultPlan) Option {
	return func(c *config) error {
		if err := plan.Validate(); err != nil {
			return fmt.Errorf("twoldag: WithFaults: %w", err)
		}
		c.faultPlan = plan
		return nil
	}
}

// WithRetryPolicy enables bounded re-transmission on the live driver:
// announcement frames re-send to neighbors whose acknowledgement is
// missing, and PoP requests re-issue after timeouts, both backing off
// exponentially with deterministic jitter. The zero policy (default)
// disables retries — the protocol's baseline best-effort behavior.
// Safe at any setting because receive paths are idempotent (see
// node.AnnounceBatch). Live driver only.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) error {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("twoldag: WithRetryPolicy: %w", err)
		}
		c.retry = p
		return nil
	}
}

// WithDataDir makes the live driver's ledgers durable: each node gets
// a file-backed WAL + snapshot backend under dir/node-<id>
// (ledger.FileBackend), recovers its whole prior state (S_i, H_i, A_i)
// on start, and fsyncs every sealed block before acknowledging it. A
// silenced node can then be brought back with Cluster.Restart, resuming
// exactly from its last durable record — the crash/recovery scenario
// of the robustness suite. Live driver only: the simulator's world is
// rebuilt deterministically from its seed.
func WithDataDir(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return errors.New("twoldag: WithDataDir(\"\")")
		}
		c.dataDir = dir
		return nil
	}
}

// WithCompactEvery sets the WAL compaction threshold in block records
// (default 256): once a node's current WAL generation holds that many
// blocks, the next seal folds it into a fresh snapshot, bounding both
// wal.log growth and the recovery replay tail. Requires WithDataDir;
// live driver only.
func WithCompactEvery(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("twoldag: WithCompactEvery(%d): threshold must be positive", n)
		}
		c.compactEvery = n
		return nil
	}
}

// SyncPolicy selects when durable nodes fsync WAL block records —
// what closes a commit window (see ledger.SyncPolicy). Construct with
// SyncAlways, SyncBatch, or SyncInterval.
type SyncPolicy = ledger.SyncPolicy

// SyncAlways fsyncs every sealed block before acknowledging it (the
// default): nothing sealed is ever lost; concurrent seals share one
// flush via group commit.
func SyncAlways() SyncPolicy { return ledger.SyncAlways() }

// SyncBatch defers the fsync to the slot flush: one commit window per
// Submit/SubmitBatch, closed before any digest is announced. A crash
// can only lose blocks no neighbor was ever told about.
func SyncBatch() SyncPolicy { return ledger.SyncBatch() }

// SyncInterval fsyncs staged records at most every d — bounded
// staleness: a crash loses at most the last d of sealed traffic.
func SyncInterval(d time.Duration) SyncPolicy { return ledger.SyncInterval(d) }

// WithSyncPolicy sets the WAL commit-window policy for every durable
// node (default SyncAlways). Requires WithDataDir; live driver only.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) error {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("twoldag: WithSyncPolicy: %w", err)
		}
		c.syncPolicy = p
		return nil
	}
}

// WithTrustCap bounds every node's trust store H_i to n headers,
// evicting oldest-inserted first (ledger.TrustStore.SetCap) — the knob
// that keeps long-lived deployments' memory bounded, on both drivers.
// With WithDataDir the cap is persisted in the snapshot and survives
// restarts. 0 (default) is unbounded.
func WithTrustCap(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("twoldag: WithTrustCap(%d): cap must be non-negative", n)
		}
		c.trustCap = n
		return nil
	}
}

// WithDriver selects the Runtime implementation (default DriverLive).
func WithDriver(d Driver) Option {
	return func(c *config) error {
		if d != DriverLive && d != DriverSim {
			return fmt.Errorf("twoldag: WithDriver(%v): unknown driver", d)
		}
		c.driver = d
		return nil
	}
}

// WithSimulator is shorthand for WithDriver(DriverSim).
func WithSimulator() Option { return WithDriver(DriverSim) }

// WithMalicious makes n nodes behave maliciously (silent to PoP
// requests, the paper's headline attack). Simulator only: the live
// driver expresses the same condition with Silence.
func WithMalicious(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("twoldag: WithMalicious(%d): count must be non-negative", n)
		}
		c.malicious = n
		return nil
	}
}

// WithBodyBytes sets C, the simulator's accounted body size in bytes
// (default 100 kB; the paper evaluates 0.1/0.5/1 MB). The live driver
// stores real bodies and ignores the analytic size.
func WithBodyBytes(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("twoldag: WithBodyBytes(%d): body size must be positive", n)
		}
		c.bodyBytes = n
		return nil
	}
}

// resolveTopology returns the configured graph or generates one from
// (nodes, seed), scaling the paper's deployment density down so small
// clusters stay multi-hop but connected.
func (c *config) resolveTopology() (*topology.Graph, error) {
	if c.topo != nil {
		return c.topo, nil
	}
	if c.nodes <= 0 {
		return nil, errors.New("twoldag: node count must be positive (use WithNodes or WithTopology)")
	}
	g, err := topology.Deployment(c.nodes, c.seed)
	if err != nil {
		return nil, fmt.Errorf("twoldag: generating topology: %w", err)
	}
	return g, nil
}

// validate runs the cross-field checks once the topology is known.
func (c *config) validate(g *topology.Graph) error {
	if c.gamma < 0 || c.gamma >= g.Len() {
		return fmt.Errorf("twoldag: gamma %d out of range for %d nodes", c.gamma, g.Len())
	}
	if c.driver == DriverLive {
		if c.malicious > 0 {
			return errors.New("twoldag: WithMalicious requires the simulator driver (use Silence on a live cluster)")
		}
		if c.compactEvery > 0 && c.dataDir == "" {
			return errors.New("twoldag: WithCompactEvery requires WithDataDir")
		}
		if !c.syncPolicy.PerBlock() && c.dataDir == "" {
			return errors.New("twoldag: WithSyncPolicy requires WithDataDir")
		}
		if c.pipeline > 1 {
			return errors.New("twoldag: WithPipelineDepth applies to the simulator driver only")
		}
		if c.chunk > 0 {
			return errors.New("twoldag: WithChunkSize applies to the simulator driver only")
		}
	}
	if c.driver == DriverSim {
		if c.transport != InMemory {
			return errors.New("twoldag: WithTransport applies to the live driver only")
		}
		if c.dataDir != "" {
			return errors.New("twoldag: WithDataDir applies to the live driver only")
		}
		if c.compactEvery > 0 {
			return errors.New("twoldag: WithCompactEvery applies to the live driver only")
		}
		if !c.syncPolicy.PerBlock() {
			return errors.New("twoldag: WithSyncPolicy applies to the live driver only")
		}
		if c.faultPlan.Active() {
			return errors.New("twoldag: WithFaults applies to the live driver only")
		}
		if c.retry.Enabled() {
			return errors.New("twoldag: WithRetryPolicy applies to the live driver only")
		}
		if c.malicious >= g.Len() {
			return fmt.Errorf("twoldag: %d malicious nodes out of range for %d nodes", c.malicious, g.Len())
		}
	}
	return nil
}
