// Package experiments regenerates every figure of the paper's
// evaluation (Sec. VI). Each function runs the relevant simulations —
// 2LDAG against the PBFT and IOTA baselines — and returns labeled
// series matching the paper's axes. Standard figure flows ride the
// public Runtime API: the 2LDAG runs build a deterministic simulator
// with twoldag.New(WithSimulator(), ...), drive the slotted schedule
// with SimDriver.RunSlots and read SimDriver.Report. Only the
// figure-only knobs the facade deliberately does not expose —
// RandomPeriodMax and the consensus probes (Fig. 9),
// RetainVerifiedBlocks (Fig. 7's storage calibration), and the
// ablation switches (Strategy, DisableTrust) — still reach into
// internal/sim. Audit activity is aggregated from the runtime's typed
// event stream (metrics.EventCounters over internal/events) rather
// than bespoke counters. cmd/experiments renders the results as
// tables/CSV; the root bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/twoldag/twoldag"
	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/baseline/iota"
	"github.com/twoldag/twoldag/internal/baseline/pbft"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/metrics"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

// runPublic builds the deterministic simulator through the public
// Runtime facade, drives the paper's slotted schedule for slots
// slots, and returns the finalized report — the figure-regeneration
// path for every flow that needs no internal-only knob. Extra options
// (observers, gamma) stack on top of the scale's topology and seed.
func runPublic(graph *topology.Graph, seed int64, slots, bodyBytes int, opts ...twoldag.Option) (*twoldag.SimReport, error) {
	base := []twoldag.Option{
		twoldag.WithSimulator(),
		twoldag.WithTopology(graph),
		twoldag.WithSeed(seed),
		twoldag.WithBodyBytes(bodyBytes),
		// The figures never mine (cost accounting is independent of ρ);
		// the facade's default difficulty would only slow the sweep.
		twoldag.WithDifficulty(0),
		// Overlap slot t audits with slot t+1 generation; the report is
		// byte-identical to the barriered schedule, so figures are
		// unaffected while multi-core sweeps finish sooner.
		twoldag.WithPipelineDepth(2),
	}
	rt, err := twoldag.New(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	sd := rt.(*twoldag.SimDriver)
	if err := sd.RunSlots(slots); err != nil {
		return nil, err
	}
	return sd.Report(), nil
}

// Scale sizes an experiment run.
type Scale struct {
	// Nodes is |V| and Slots the time horizon.
	Nodes, Slots int
	// Trials is the Fig. 9 averaging count.
	Trials int
	// Fig9MaxSlots is the Fig. 9 probing horizon.
	Fig9MaxSlots int
	// Stride probes every Stride slots in Fig. 9.
	Stride int
	// Seed anchors all randomness.
	Seed int64
}

// FullScale reproduces the paper's setup: 50 nodes, 200 slots.
func FullScale() Scale {
	return Scale{Nodes: 50, Slots: 200, Trials: 10, Fig9MaxSlots: 150, Stride: 5, Seed: 1}
}

// QuickScale is a minutes-fast configuration preserving every
// qualitative shape.
func QuickScale() Scale {
	return Scale{Nodes: 16, Slots: 60, Trials: 4, Fig9MaxSlots: 40, Stride: 4, Seed: 1}
}

// topoConfig places Scale.Nodes with the paper's density (50 m range in
// a square scaled so average degree stays comparable to the 50-node
// deployment).
func (s Scale) topoConfig() topology.Config {
	cfg := topology.DefaultConfig(s.Seed)
	cfg.Nodes = s.Nodes
	if s.Nodes != 50 {
		// Keep the node density of the reference deployment.
		side := 1000.0 * float64(s.Nodes) / 50.0
		cfg.Width, cfg.Height = side, side
		cfg.Range = 50 * 4 // denser links for small graphs
		if s.Nodes >= 40 {
			cfg.Range = 50
		}
	}
	return cfg
}

// gammaFor mirrors the paper's tolerance settings: fraction of |V|.
func (s Scale) gammaFor(fraction float64) int {
	g := int(fraction * float64(s.Nodes))
	if g < 1 {
		g = 1
	}
	return g
}

// FigResult is one figure's regenerated data.
type FigResult struct {
	Name   string
	Series []*metrics.Series
	// CDFs maps a label to final per-node samples.
	CDFs map[string][]float64
	// Notes carries headline comparisons (orders of magnitude etc.).
	Notes []string
}

// Render writes the result as aligned tables plus notes.
func (f *FigResult) Render(w io.Writer) error {
	if _, err := fmt.Fprint(w, metrics.Table("== "+f.Name+" ==", f.Series...)); err != nil {
		return err
	}
	for label, samples := range f.CDFs {
		cdf, err := metrics.NewCDF(samples)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "CDF %s: min=%.3f p50=%.3f p90=%.3f max=%.3f mean=%.3f\n",
			label, cdf.Min(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Max(), cdf.Mean())
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "NOTE: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the series as CSV.
func (f *FigResult) CSV() string { return metrics.CSV(f.Series...) }

// Fig7 regenerates Fig. 7(a)-(d): average node storage vs. time for
// C ∈ {0.1, 0.5, 1} MB, PBFT vs IOTA vs 2LDAG, plus the storage CDF at
// the final slot for C = 0.5 MB.
func Fig7(scale Scale) ([]*FigResult, error) {
	bodySizes := []struct {
		label string
		bytes int
	}{
		{"C=0.1MB", 100_000},
		{"C=0.5MB", 500_000},
		{"C=1MB", 1_000_000},
	}
	graph, err := topology.Generate(scale.topoConfig())
	if err != nil {
		return nil, err
	}
	var out []*FigResult
	for _, bs := range bodySizes {
		fig := &FigResult{Name: "Fig7 storage (MB/node) " + bs.label, CDFs: map[string][]float64{}}

		pr, err := pbft.Run(pbft.Config{Nodes: scale.Nodes, Slots: scale.Slots, BodyBytes: bs.bytes})
		if err != nil {
			return nil, err
		}
		ir, err := iota.Run(iota.Config{Graph: graph, Slots: scale.Slots, BodyBytes: bs.bytes, Seed: scale.Seed})
		if err != nil {
			return nil, err
		}
		// Audit totals ride the typed event stream: the same observer
		// machinery a live cluster exposes via twoldag.WithObserver.
		// This flow needs RetainVerifiedBlocks (the Fig. 7 storage
		// calibration), a figure-only knob the public facade does not
		// expose, so it stays on the internal config.
		counters := &metrics.EventCounters{}
		s2, err := sim.New(sim.Config{
			Graph:                graph,
			Seed:                 scale.Seed,
			Slots:                scale.Slots,
			BodyBytes:            bs.bytes,
			Gamma:                scale.gammaFor(0.33),
			RetainVerifiedBlocks: true,
			// Same pipelined slot schedule as the public-API flows;
			// reports are depth-independent, so the figure is unchanged.
			PipelineDepth: 2,
			Observer:      counters,
		})
		if err != nil {
			return nil, err
		}
		r2, err := s2.Run()
		s2.Close()
		if err != nil {
			return nil, err
		}
		if a := counters.Audits(); a > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%d audits (%d reached consensus) over %d REQ_CHILD hops — %.1f hops/audit",
				a, counters.ConsensusReached(), counters.AuditHops(),
				float64(counters.AuditHops())/float64(a)))
		}
		fig.Series = []*metrics.Series{
			pr.StorageSeries("PBFT"),
			ir.StorageSeries("IOTA"),
			r2.StorageSeries("2LDAG"),
		}
		pLast, _ := fig.Series[0].Last()
		dLast, _ := fig.Series[2].Last()
		if dLast > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"PBFT/2LDAG storage ratio at final slot: %.1fx (paper: ~2 orders of magnitude)", pLast/dLast))
		}
		if bs.bytes == 500_000 {
			samples := make([]float64, len(r2.NodeStorageBits))
			for i, b := range r2.NodeStorageBits {
				samples[i] = metrics.BitsToMB(b)
			}
			fig.CDFs["2LDAG node storage MB (Fig 7d)"] = samples
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig8 regenerates Fig. 8(a)-(d): communication overhead vs. time —
// total, DAG-construction and consensus splits for γ = 33%|V| and
// 49%|V|, against PBFT and IOTA, plus the per-node comm CDF.
func Fig8(scale Scale) ([]*FigResult, error) {
	const bodyBytes = 500_000
	graph, err := topology.Generate(scale.topoConfig())
	if err != nil {
		return nil, err
	}
	pr, err := pbft.Run(pbft.Config{Nodes: scale.Nodes, Slots: scale.Slots, BodyBytes: bodyBytes})
	if err != nil {
		return nil, err
	}
	ir, err := iota.Run(iota.Config{Graph: graph, Slots: scale.Slots, BodyBytes: bodyBytes, Seed: scale.Seed})
	if err != nil {
		return nil, err
	}

	type variant struct {
		label string
		gamma int
	}
	variants := []variant{
		{"2LDAG-33%", scale.gammaFor(0.33)},
		{"2LDAG-49%", scale.gammaFor(0.49)},
	}
	total := &FigResult{Name: "Fig8a total comm (Mb/node)", CDFs: map[string][]float64{}}
	constr := &FigResult{Name: "Fig8b DAG-construction comm (Mb/node)", CDFs: map[string][]float64{}}
	consensus := &FigResult{Name: "Fig8c consensus comm (Mb/node)", CDFs: map[string][]float64{}}
	total.Series = append(total.Series, pr.CommSeries("PBFT"), ir.CommSeries("IOTA"))

	for _, v := range variants {
		// The standard comm sweep needs no figure-only knob, so it
		// rides the public Runtime API end to end.
		r2, err := runPublic(graph, scale.Seed, scale.Slots, bodyBytes, twoldag.WithGamma(v.gamma))
		if err != nil {
			return nil, err
		}
		total.Series = append(total.Series, r2.CommSeries(v.label))
		constr.Series = append(constr.Series, r2.ConstructionSeries(v.label))
		consensus.Series = append(consensus.Series, r2.ConsensusSeries(v.label))
		if v.gamma == scale.gammaFor(0.49) {
			samples := make([]float64, len(r2.NodeCommBits))
			for i, b := range r2.NodeCommBits {
				samples[i] = metrics.BitsToMB(b)
			}
			total.CDFs["2LDAG-49% node comm MB (Fig 8d)"] = samples
		}
	}
	pLast, _ := total.Series[0].Last()
	dLast, _ := total.Series[2].Last()
	if dLast > 0 {
		total.Notes = append(total.Notes, fmt.Sprintf(
			"PBFT/2LDAG comm ratio at final slot: %.0fx (paper: ~3 orders of magnitude)", pLast/dLast))
	}
	return []*FigResult{total, constr, consensus}, nil
}

// Fig9 regenerates Fig. 9(a)-(d): consensus failure probability vs.
// elapsed slots for γ ∈ {10,15,20,24} (scaled for non-50-node runs)
// and the paper's malicious counts.
func Fig9(scale Scale) ([]*FigResult, error) {
	type panel struct {
		gamma     int
		malicious []int
	}
	var panels []panel
	if scale.Nodes >= 50 {
		panels = []panel{
			{10, []int{0, 5, 8, 10}},
			{15, []int{0, 5, 10, 15}},
			{20, []int{0, 5, 18, 20}},
			{24, []int{0, 5, 10, 20, 22, 24}},
		}
	} else {
		// Scaled-down panels preserving the γ/|V| fractions.
		g1 := scale.gammaFor(0.2)
		g2 := scale.gammaFor(0.3)
		g3 := scale.gammaFor(0.4)
		g4 := scale.gammaFor(0.48)
		panels = []panel{
			{g1, []int{0, g1 / 2, g1}},
			{g2, []int{0, g2 / 2, g2}},
			{g3, []int{0, g3 / 2, g3}},
			{g4, []int{0, g4 / 2, g4}},
		}
	}
	var out []*FigResult
	for _, p := range panels {
		fig := &FigResult{
			Name: fmt.Sprintf("Fig9 consensus failure probability, gamma=%d", p.gamma),
			CDFs: map[string][]float64{},
		}
		for _, mal := range p.malicious {
			rep, err := sim.RunProbe(sim.ProbeConfig{
				Base: sim.Config{
					Topo:            scale.topoConfig(),
					Seed:            scale.Seed,
					BodyBytes:       500_000,
					Gamma:           p.gamma,
					Malicious:       mal,
					Behavior:        attack.KindSilent,
					RandomPeriodMax: 2, // paper: one block per {1,2} slots
				},
				MaxSlots: scale.Fig9MaxSlots,
				Trials:   scale.Trials,
				Stride:   scale.Stride,
			})
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d malicious", mal)
			fig.Series = append(fig.Series, rep.Series(label))
			if rep.SlotsToConsensus >= 0 {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s: consensus at slot %d", label, rep.SlotsToConsensus))
			} else {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s: no consensus within %d slots", label, scale.Fig9MaxSlots))
			}
		}
		out = append(out, fig)
	}
	return out, nil
}

// Ablations regenerates the design-choice studies DESIGN.md calls out:
// WPS vs random vs shortest-path-first selection (ABL-WPS), and H_i
// caching on/off (ABL-TPS). Both switches (Strategy, DisableTrust)
// are figure-only knobs the public facade does not expose, so the
// ablation runs stay on the internal config.
func Ablations(scale Scale) ([]*FigResult, error) {
	const bodyBytes = 100_000
	graph, err := topology.Generate(scale.topoConfig())
	if err != nil {
		return nil, err
	}
	gamma := scale.gammaFor(0.33)

	strategies := []struct {
		label    string
		strategy core.SelectionStrategy
	}{
		{"WPS", core.WPS{}},
		{"random", core.RandomSelection{}},
		{"shortest-path-first", core.ShortestPathFirst{}},
	}
	strat := &FigResult{Name: "ABL-WPS consensus comm by path strategy (Mb/node)", CDFs: map[string][]float64{}}
	for _, st := range strategies {
		s2, err := sim.New(sim.Config{
			Graph: graph, Seed: scale.Seed, Slots: scale.Slots,
			BodyBytes: bodyBytes, Gamma: gamma, Strategy: st.strategy,
		})
		if err != nil {
			return nil, err
		}
		r2, err := s2.Run()
		s2.Close()
		if err != nil {
			return nil, err
		}
		strat.Series = append(strat.Series, r2.ConsensusSeries(st.label))
	}

	tps := &FigResult{Name: "ABL-TPS consensus comm with/without H_i cache (Mb/node)", CDFs: map[string][]float64{}}
	for _, v := range []struct {
		label   string
		disable bool
	}{{"TPS on", false}, {"TPS off", true}} {
		s2, err := sim.New(sim.Config{
			Graph: graph, Seed: scale.Seed, Slots: scale.Slots,
			BodyBytes: bodyBytes, Gamma: gamma, DisableTrust: v.disable,
		})
		if err != nil {
			return nil, err
		}
		r2, err := s2.Run()
		s2.Close()
		if err != nil {
			return nil, err
		}
		tps.Series = append(tps.Series, r2.ConsensusSeries(v.label))
	}
	on, _ := tps.Series[0].Last()
	off, _ := tps.Series[1].Last()
	if on > 0 {
		tps.Notes = append(tps.Notes, fmt.Sprintf("H_i cache saves %.1fx consensus traffic", off/on))
	}
	return []*FigResult{strat, tps}, nil
}

// ScalingCurve is the scale-validation run behind ROADMAP item 5: it
// sweeps network size over a seeded small-world topology and reports
// per-node storage, communication, heap footprint and wall-clock at
// each size. Everything but heap/wall-clock is deterministic on the
// seed; the curve's headline claim is that per-node cost stays flat
// while n grows 50x, which is what the arena-backed compact stores
// buy. Not part of the "all" figure set — the paper has no such
// figure; run it with `experiments scaling`.
func ScalingCurve(scale Scale) ([]*FigResult, error) {
	sizes := []int{200, 1_000, 5_000, 10_000}
	slots := 50
	if scale.Nodes < 50 {
		// Quick mode: a seconds-fast shape check.
		sizes = []int{100, 400}
		slots = 20
	}
	storage := &metrics.Series{Name: "storage MB/node"}
	comm := &metrics.Series{Name: "comm Mb/node"}
	heap := &metrics.Series{Name: "heap KB/node"}
	wall := &metrics.Series{Name: "wall-clock s"}
	res := &FigResult{Name: "SCALE per-node cost vs network size (small-world)"}
	for _, n := range sizes {
		g, err := topology.SmallWorld(topology.SmallWorldConfig{
			Nodes: n, K: 3, Beta: 0.2, Seed: scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		s2, err := sim.New(sim.Config{
			Graph: g, Seed: scale.Seed, Slots: slots,
			BodyBytes: 100_000, Gamma: 8,
			// A fixed small lag keeps audit duty running at every size
			// (the default lag of |V| would silence audits for n > slots).
			VerifyLag:     8,
			PipelineDepth: 2,
			ChunkSize:     256,
			// With every node auditing every slot, unbounded H_i retention
			// is the dominant memory term at 10k+ nodes; cap it so the
			// sweep measures steady-state per-node cost.
			TrustCap:       1024,
			SampleMemStats: true,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		r2, err := s2.Run()
		elapsed := time.Since(start)
		s2.Close()
		if err != nil {
			return nil, err
		}
		x := float64(n)
		storage.Append(x, metrics.BitsToMB(r2.AvgStorageBits[len(r2.AvgStorageBits)-1]))
		comm.Append(x, metrics.BitsToMb(r2.AvgCommBits[len(r2.AvgCommBits)-1]))
		heap.Append(x, float64(r2.Mem.BytesPerNode)/1024)
		wall.Append(x, elapsed.Seconds())
		res.Notes = append(res.Notes, fmt.Sprintf(
			"n=%d: %d blocks, %d audits, %.1fs wall, %.0f KB heap/node",
			n, r2.Blocks, r2.Audits, elapsed.Seconds(), float64(r2.Mem.BytesPerNode)/1024))
	}
	res.Series = []*metrics.Series{storage, comm, heap, wall}
	return []*FigResult{res}, nil
}
