package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/twoldag/twoldag"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

// tinyScale keeps the smoke tests fast while exercising every code
// path.
func tinyScale() Scale {
	return Scale{Nodes: 12, Slots: 24, Trials: 2, Fig9MaxSlots: 24, Stride: 6, Seed: 2}
}

func TestFig7ShapesAndOrdering(t *testing.T) {
	figs, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want 3 panels, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 3 {
			t.Fatalf("%s: want 3 series", fig.Name)
		}
		pbftLast, err := fig.Series[0].Last()
		if err != nil {
			t.Fatal(err)
		}
		iotaLast, err := fig.Series[1].Last()
		if err != nil {
			t.Fatal(err)
		}
		dagLast, err := fig.Series[2].Last()
		if err != nil {
			t.Fatal(err)
		}
		// The paper's headline: 2LDAG storage sits far below both
		// baselines (full replication vs store-your-own).
		if dagLast*3 > pbftLast || dagLast*3 > iotaLast {
			t.Fatalf("%s: 2LDAG %.1f MB not clearly below PBFT %.1f / IOTA %.1f",
				fig.Name, dagLast, pbftLast, iotaLast)
		}
	}
	// The C=0.5MB panel carries the Fig. 7(d) CDF.
	found := false
	for _, fig := range figs {
		for label := range fig.CDFs {
			if strings.Contains(label, "7d") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Fig. 7(d) CDF missing")
	}
}

func TestFig8SplitsAndOrdering(t *testing.T) {
	figs, err := Fig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want total/construction/consensus panels, got %d", len(figs))
	}
	total := figs[0]
	if len(total.Series) != 4 { // PBFT, IOTA, 2LDAG-33%, 2LDAG-49%
		t.Fatalf("total panel series = %d, want 4", len(total.Series))
	}
	pbftLast, _ := total.Series[0].Last()
	dag33, _ := total.Series[2].Last()
	dag49, _ := total.Series[3].Last()
	if dag33*10 > pbftLast {
		t.Fatalf("2LDAG comm %.2f Mb not orders below PBFT %.2f Mb", dag33, pbftLast)
	}
	// Higher tolerance must not be cheaper (longer paths).
	if dag49 < dag33*0.8 {
		t.Fatalf("49%% tolerance cheaper than 33%%: %.2f vs %.2f", dag49, dag33)
	}
	// Construction traffic is digests only: tiny compared to consensus.
	constrLast, _ := figs[1].Series[0].Last()
	consLast, _ := figs[2].Series[0].Last()
	if constrLast > consLast {
		t.Fatalf("construction %.3f Mb above consensus %.3f Mb", constrLast, consLast)
	}
}

func TestFig9Panels(t *testing.T) {
	figs, err := Fig9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("want 4 gamma panels, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) < 3 {
			t.Fatalf("%s: want ≥3 malicious-count curves", fig.Name)
		}
		for _, s := range fig.Series {
			if s.Len() == 0 {
				t.Fatalf("%s: empty curve %s", fig.Name, s.Name)
			}
			// Failure probabilities live in [0, 1].
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Fatalf("%s/%s: probability %v out of range", fig.Name, s.Name, y)
				}
			}
		}
	}
}

func TestAblationsOrdering(t *testing.T) {
	figs, err := Ablations(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want strategy + TPS panels, got %d", len(figs))
	}
	tps := figs[1]
	on, _ := tps.Series[0].Last()
	off, _ := tps.Series[1].Last()
	if off <= on {
		t.Fatalf("disabling H_i must cost more traffic: on=%.3f off=%.3f", on, off)
	}
}

// TestPublicRuntimeMatchesInternalSim pins the figure-rebase
// contract: driving the slotted schedule through the public Runtime
// facade (twoldag.New + SimDriver.RunSlots + Report) yields a report
// byte-identical to the internal sim.New path the figures used
// before, so no figure moved in the migration.
func TestPublicRuntimeMatchesInternalSim(t *testing.T) {
	scale := tinyScale()
	graph, err := topology.Generate(scale.topoConfig())
	if err != nil {
		t.Fatal(err)
	}
	gamma := scale.gammaFor(0.33)
	s2, err := sim.New(sim.Config{
		Graph: graph, Seed: scale.Seed, Slots: scale.Slots,
		BodyBytes: 500_000, Gamma: gamma,
	})
	if err != nil {
		t.Fatal(err)
	}
	internal, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	public, err := runPublic(graph, scale.Seed, scale.Slots, 500_000, twoldag.WithGamma(gamma))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(internal, public) {
		t.Fatalf("public Runtime path diverged from internal sim:\ninternal: %+v\npublic:   %+v", internal, public)
	}
}

func TestRenderAndCSV(t *testing.T) {
	figs, err := Ablations(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := figs[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ABL-WPS") {
		t.Fatal("render missing title")
	}
	csv := figs[0].CSV()
	if !strings.HasPrefix(csv, "x,") {
		t.Fatalf("csv header wrong: %q", csv[:10])
	}
}

func TestScales(t *testing.T) {
	full := FullScale()
	if full.Nodes != 50 || full.Slots != 200 {
		t.Fatal("full scale must match the paper's deployment")
	}
	quick := QuickScale()
	if quick.Nodes >= full.Nodes || quick.Slots >= full.Slots {
		t.Fatal("quick scale must be smaller than full scale")
	}
	if full.gammaFor(0.49) != 24 {
		t.Fatalf("49%% of 50 nodes = %d, want 24", full.gammaFor(0.49))
	}
	if full.gammaFor(0.33) != 16 {
		t.Fatalf("33%% of 50 nodes = %d, want 16", full.gammaFor(0.33))
	}
}
