package twoldag

import (
	"reflect"
	"testing"
)

// TestWithPipelineDepthValidation pins the option's contract: depths
// below 1 are rejected, and the live driver (whose audits are
// caller-paced) refuses the option outright.
func TestWithPipelineDepthValidation(t *testing.T) {
	if _, err := New(WithNodes(8), WithSimulator(), WithPipelineDepth(0)); err == nil {
		t.Fatal("WithPipelineDepth(0) accepted")
	}
	if _, err := New(WithNodes(8), WithDifficulty(0), WithPipelineDepth(2)); err == nil {
		t.Fatal("live driver accepted WithPipelineDepth")
	}
	rt, err := New(WithNodes(8), WithSimulator(), WithDifficulty(0), WithPipelineDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWithChunkSizeValidation pins the chunking knob's contract:
// negative chunks are rejected, the live driver refuses the option,
// and the simulator's report is byte-identical across chunk sizes.
func TestWithChunkSizeValidation(t *testing.T) {
	if _, err := New(WithNodes(8), WithSimulator(), WithChunkSize(-1)); err == nil {
		t.Fatal("WithChunkSize(-1) accepted")
	}
	if _, err := New(WithNodes(8), WithDifficulty(0), WithChunkSize(4)); err == nil {
		t.Fatal("live driver accepted WithChunkSize")
	}
	run := func(chunk int) *SimReport {
		t.Helper()
		rt, err := New(
			WithSimulator(), WithNodes(12), WithGamma(3), WithSeed(7),
			WithDifficulty(0), WithWorkers(4), WithChunkSize(chunk),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		sd := rt.(*SimDriver)
		if err := sd.RunSlots(15); err != nil {
			t.Fatal(err)
		}
		return sd.Report()
	}
	auto, tiny := run(0), run(1)
	if auto.Audits == 0 {
		t.Fatal("no audits ran")
	}
	if !reflect.DeepEqual(auto, tiny) {
		t.Fatalf("chunked report diverged:\nauto: %+v\nchunk=1: %+v", auto, tiny)
	}
}

// TestPipelinedRunSlotsReportMatchesBarriered drives the paper's
// slotted schedule through the public facade at pipeline depths 1 and
// 3 and asserts byte-identical reports — the public-API face of
// TestPipelinedSchedulerIsDeterministic.
func TestPipelinedRunSlotsReportMatchesBarriered(t *testing.T) {
	run := func(depth int) *SimReport {
		t.Helper()
		rt, err := New(
			WithSimulator(), WithNodes(12), WithGamma(3), WithSeed(7),
			WithDifficulty(0), WithBodyBytes(100_000), WithMalicious(2),
			WithWorkers(4), WithPipelineDepth(depth),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		sd := rt.(*SimDriver)
		if err := sd.RunSlots(25); err != nil {
			t.Fatal(err)
		}
		return sd.Report()
	}
	barriered, pipelined := run(1), run(3)
	if barriered.Audits == 0 {
		t.Fatal("no audits ran")
	}
	if !reflect.DeepEqual(barriered, pipelined) {
		t.Fatalf("pipelined report diverged:\nbarriered: %+v\npipelined: %+v", barriered, pipelined)
	}
}
