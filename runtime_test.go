package twoldag

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// baseOptions are shared by both drivers in the equivalence tests:
// identical options must build identical deployments.
func baseOptions(nodes, gamma int) []Option {
	return []Option{
		WithNodes(nodes),
		WithGamma(gamma),
		WithSeed(7),
		WithDifficulty(2),
		WithRequestTimeout(2 * time.Second),
	}
}

func newRuntime(t *testing.T, opts ...Option) Runtime {
	t.Helper()
	rt, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// fillBatch drives identical per-slot batches into a runtime and
// returns every ref.
func fillBatch(t *testing.T, rt Runtime, slots int) []Ref {
	t.Helper()
	ctx := context.Background()
	var refs []Ref
	for s := 0; s < slots; s++ {
		rt.AdvanceSlot()
		ids := rt.Nodes()
		batch := make([]Submission, len(ids))
		for i, id := range ids {
			batch[i] = Submission{Node: id, Data: []byte(fmt.Sprintf("reading %v@%d", id, s))}
		}
		got, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			t.Fatalf("SubmitBatch slot %d: %v", s, err)
		}
		refs = append(refs, got...)
	}
	return refs
}

// TestDriverEquivalence is the tentpole acceptance test: the same seed
// and options, driven with the same submissions and audits, yield the
// same refs, the same sealed headers, and the same audit consensus
// outcomes through the live driver and the simulator.
func TestDriverEquivalence(t *testing.T) {
	const nodes, gamma, slots = 10, 2, 4
	live := newRuntime(t, baseOptions(nodes, gamma)...)
	simr := newRuntime(t, append(baseOptions(nodes, gamma), WithSimulator())...)

	if lt, st := live.Topology().Summary(), simr.Topology().Summary(); lt != st {
		t.Fatalf("topologies diverge: live %+v sim %+v", lt, st)
	}

	liveRefs := fillBatch(t, live, slots)
	simRefs := fillBatch(t, simr, slots)
	if len(liveRefs) != len(simRefs) {
		t.Fatalf("ref counts diverge: %d vs %d", len(liveRefs), len(simRefs))
	}
	for i := range liveRefs {
		if liveRefs[i] != simRefs[i] {
			t.Fatalf("ref %d diverges: %v vs %v", i, liveRefs[i], simRefs[i])
		}
		lb, err := live.Block(liveRefs[i])
		if err != nil {
			t.Fatalf("live block %v: %v", liveRefs[i], err)
		}
		sb, err := simr.Block(simRefs[i])
		if err != nil {
			t.Fatalf("sim block %v: %v", simRefs[i], err)
		}
		if lb.Header.Hash() != sb.Header.Hash() {
			t.Fatalf("block %v sealed differently across drivers", liveRefs[i])
		}
	}

	// Audit a spread of old blocks from several validators: consensus
	// outcomes (and their sentinel errors) must agree pairwise.
	ctx := context.Background()
	ids := live.Nodes()
	consensuses := 0
	for k := 0; k < 6; k++ {
		target := liveRefs[(k*3)%(len(liveRefs)/2)]
		validator := ids[(k*5)%len(ids)]
		if validator == target.Node {
			validator = ids[(k*5+1)%len(ids)]
		}
		lres, lerr := live.Audit(ctx, validator, target)
		sres, serr := simr.Audit(ctx, validator, target)
		if (lerr == nil) != (serr == nil) || errors.Is(lerr, ErrNoConsensus) != errors.Is(serr, ErrNoConsensus) {
			t.Fatalf("audit %v by %v: errors diverge: live %v, sim %v", target, validator, lerr, serr)
		}
		if lerr != nil {
			continue
		}
		if lres.Consensus != sres.Consensus {
			t.Fatalf("audit %v by %v: consensus diverges: live %v, sim %v", target, validator, lres.Consensus, sres.Consensus)
		}
		if lres.Consensus {
			consensuses++
		}
	}
	if consensuses == 0 {
		t.Fatal("no audit reached consensus on either driver; test has no power")
	}

	// A block with no descendants is unverifiable on both drivers, with
	// the same sentinel.
	live.AdvanceSlot()
	simr.AdvanceSlot()
	fresh, err := live.Submit(ctx, ids[0], []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	sfresh, err := simr.Submit(ctx, ids[0], []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh != sfresh {
		t.Fatalf("fresh refs diverge: %v vs %v", fresh, sfresh)
	}
	if _, err := live.Audit(ctx, ids[1], fresh); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("live: want ErrNoConsensus, got %v", err)
	}
	if _, err := simr.Audit(ctx, ids[1], sfresh); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("sim: want ErrNoConsensus, got %v", err)
	}
}

// fillSingleton drives the same per-slot submissions as fillBatch but
// one Submit at a time — the singleton delivery path.
func fillSingleton(t *testing.T, rt Runtime, slots int) []Ref {
	t.Helper()
	ctx := context.Background()
	var refs []Ref
	for s := 0; s < slots; s++ {
		rt.AdvanceSlot()
		for _, id := range rt.Nodes() {
			ref, err := rt.Submit(ctx, id, []byte(fmt.Sprintf("reading %v@%d", id, s)))
			if err != nil {
				t.Fatalf("Submit %v slot %d: %v", id, s, err)
			}
			refs = append(refs, ref)
		}
	}
	return refs
}

// TestBatchedAndSingletonDeliveryEquivalent extends the
// driver-equivalence guarantee to the batched announcement pipeline:
// on each driver, a deployment driven with per-slot SubmitBatch
// (coalesced frames, per-receiver batch ingest) and an identical
// deployment driven with one Submit per block (singleton path) must
// seal the same refs and reach the same audit consensus outcomes.
func TestBatchedAndSingletonDeliveryEquivalent(t *testing.T) {
	const nodes, gamma, slots = 10, 2, 4
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"live", baseOptions(nodes, gamma)},
		{"sim", append(baseOptions(nodes, gamma), WithSimulator())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched := newRuntime(t, tc.opts...)
			singleton := newRuntime(t, tc.opts...)
			bRefs := fillBatch(t, batched, slots)
			sRefs := fillSingleton(t, singleton, slots)
			if len(bRefs) != len(sRefs) {
				t.Fatalf("ref counts diverge: batched %d, singleton %d", len(bRefs), len(sRefs))
			}
			for i := range bRefs {
				if bRefs[i] != sRefs[i] {
					t.Fatalf("ref %d diverges: batched %v, singleton %v", i, bRefs[i], sRefs[i])
				}
			}
			ctx := context.Background()
			ids := batched.Nodes()
			consensuses := 0
			for k := 0; k < 6; k++ {
				target := bRefs[(k*3)%(len(bRefs)/2)]
				validator := ids[(k*5)%len(ids)]
				if validator == target.Node {
					validator = ids[(k*5+1)%len(ids)]
				}
				bres, berr := batched.Audit(ctx, validator, target)
				sres, serr := singleton.Audit(ctx, validator, target)
				if (berr == nil) != (serr == nil) || errors.Is(berr, ErrNoConsensus) != errors.Is(serr, ErrNoConsensus) {
					t.Fatalf("audit %v by %v: errors diverge: batched %v, singleton %v", target, validator, berr, serr)
				}
				if berr != nil {
					continue
				}
				if bres.Consensus != sres.Consensus {
					t.Fatalf("audit %v by %v: consensus diverges: batched %v, singleton %v",
						target, validator, bres.Consensus, sres.Consensus)
				}
				if bres.Consensus {
					consensuses++
				}
			}
			if consensuses == 0 {
				t.Fatal("no audit reached consensus on either path; test has no power")
			}
		})
	}
}

// TestSubmitBatchCoalescesPerSender pins the wire-level batching on
// the live driver: several blocks from the same sender in one
// SubmitBatch arrive at each neighbor as one DigestBatch frame (one
// receiver-side batch delivery), not one frame per block.
func TestSubmitBatchCoalescesPerSender(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"inmem", baseOptions(8, 1)},
		{"tcp", append(baseOptions(8, 1), WithTransport(TCP))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs := &countingObserver{}
			rt := newRuntime(t, append(tc.opts, WithObserver(obs))...)
			ids := rt.Nodes()
			rt.AdvanceSlot()
			const perSender = 3
			var batch []Submission
			for i := 0; i < perSender; i++ {
				batch = append(batch, Submission{Node: ids[0], Data: []byte(fmt.Sprintf("run %d", i))})
			}
			refs, err := rt.SubmitBatch(context.Background(), batch)
			if err != nil {
				t.Fatalf("SubmitBatch: %v", err)
			}
			if len(refs) != perSender {
				t.Fatalf("got %d refs, want %d", len(refs), perSender)
			}
			neighbors := len(rt.Topology().Neighbors(ids[0]))
			if neighbors == 0 {
				t.Fatal("sender has no neighbors; test has no power")
			}
			if got := obs.batches.Load(); got != int64(neighbors) {
				t.Fatalf("batch deliveries: got %d, want one per neighbor (%d)", got, neighbors)
			}
			if got := obs.announced.Load(); got != int64(neighbors*perSender) {
				t.Fatalf("accepted deliveries: got %d, want %d", got, neighbors*perSender)
			}
		})
	}
}

// TestAuditManyBothDrivers exercises the worker-pool fan-out on each
// driver: outcomes arrive in request order, carry their request, and
// agree with one-at-a-time audits.
func TestAuditManyBothDrivers(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"live", baseOptions(10, 2)},
		{"sim", append(baseOptions(10, 2), WithSimulator())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRuntime(t, append(tc.opts, WithWorkers(4))...)
			refs := fillBatch(t, rt, 4)
			ids := rt.Nodes()
			var reqs []AuditRequest
			for k := 0; k < 8; k++ {
				target := refs[k%(len(refs)/2)]
				validator := ids[(k*3)%len(ids)]
				if validator == target.Node {
					validator = ids[((k*3)+1)%len(ids)]
				}
				reqs = append(reqs, AuditRequest{Validator: validator, Ref: target})
			}
			outs := rt.AuditMany(context.Background(), reqs)
			if len(outs) != len(reqs) {
				t.Fatalf("got %d outcomes for %d requests", len(outs), len(reqs))
			}
			okCount := 0
			for i, out := range outs {
				if out.Request != reqs[i] {
					t.Fatalf("outcome %d out of order: %+v", i, out.Request)
				}
				if out.Err == nil && out.Result.Consensus {
					okCount++
				}
			}
			if okCount == 0 {
				t.Fatal("no audit in the batch reached consensus")
			}
		})
	}
}

// TestSubmitBatchPartialFailure pins the documented contract: on a
// failing submission the already-sealed prefix of refs is returned
// alongside the error.
func TestSubmitBatchPartialFailure(t *testing.T) {
	rt := newRuntime(t, baseOptions(6, 1)...)
	rt.AdvanceSlot()
	ids := rt.Nodes()
	batch := []Submission{
		{Node: ids[0], Data: []byte("ok")},
		{Node: 999, Data: []byte("unknown node")},
		{Node: ids[1], Data: []byte("never sealed")},
	}
	refs, err := rt.SubmitBatch(context.Background(), batch)
	if err == nil {
		t.Fatal("batch with unknown node succeeded")
	}
	if len(refs) != 1 || refs[0].Node != ids[0] {
		t.Fatalf("want the sealed prefix [1 ref], got %v", refs)
	}
}

// TestSubmitRespectsContextDeadline pins the satellite fix: the submit
// acknowledgement wait honors the caller's context instead of a
// hardcoded wall clock.
func TestSubmitRespectsContextDeadline(t *testing.T) {
	rt := newRuntime(t, baseOptions(6, 1)...)
	rt.AdvanceSlot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	if _, err := rt.Submit(ctx, rt.Nodes()[0], []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// countingObserver tallies the typed event stream. announced counts
// accepted digest deliveries on either path — singly announced or
// carried by a coalesced batch — matching EventCounters semantics.
type countingObserver struct {
	NopObserver
	sealed, announced, batches, hops, ok, failed atomic.Int64
}

func (o *countingObserver) OnBlockSealed(BlockSealed)         { o.sealed.Add(1) }
func (o *countingObserver) OnDigestAnnounced(DigestAnnounced) { o.announced.Add(1) }
func (o *countingObserver) OnDigestBatchDelivered(e DigestBatchDelivered) {
	o.batches.Add(1)
	o.announced.Add(int64(len(e.Digests)))
}
func (o *countingObserver) OnAuditHop(AuditHop)                 { o.hops.Add(1) }
func (o *countingObserver) OnConsensusReached(ConsensusReached) { o.ok.Add(1) }
func (o *countingObserver) OnAuditFailed(AuditFailed)           { o.failed.Add(1) }

// TestObserverStreamsBothDrivers checks that both drivers emit the
// same kinds of events at the same protocol moments.
func TestObserverStreamsBothDrivers(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"live", baseOptions(8, 1)},
		{"sim", append(baseOptions(8, 1), WithSimulator())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs := &countingObserver{}
			rt := newRuntime(t, append(tc.opts, WithObserver(obs))...)
			refs := fillBatch(t, rt, 3)
			if got := obs.sealed.Load(); got != int64(len(refs)) {
				t.Fatalf("BlockSealed events: got %d, want %d", got, len(refs))
			}
			if obs.announced.Load() == 0 {
				t.Fatal("no DigestAnnounced events")
			}
			ids := rt.Nodes()
			res, err := rt.Audit(context.Background(), ids[len(ids)-1], refs[0])
			if err != nil || !res.Consensus {
				t.Fatalf("audit: %v", err)
			}
			if obs.ok.Load() != 1 {
				t.Fatalf("ConsensusReached events: got %d, want 1", obs.ok.Load())
			}
			if obs.hops.Load() == 0 {
				t.Fatal("no AuditHop events")
			}
			// A fresh, descendant-less block fails: AuditFailed must fire.
			rt.AdvanceSlot()
			fresh, err := rt.Submit(context.Background(), ids[0], []byte("fresh"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Audit(context.Background(), ids[1], fresh); !errors.Is(err, ErrNoConsensus) {
				t.Fatalf("want ErrNoConsensus, got %v", err)
			}
			if obs.failed.Load() != 1 {
				t.Fatalf("AuditFailed events: got %d, want 1", obs.failed.Load())
			}
		})
	}
}

// TestTCPTransportRuntime smoke-tests the publicly selectable TCP
// fabric end to end: submissions acknowledge and audits reach
// consensus over real sockets.
func TestTCPTransportRuntime(t *testing.T) {
	rt := newRuntime(t, append(baseOptions(8, 1), WithTransport(TCP))...)
	refs := fillBatch(t, rt, 3)
	ids := rt.Nodes()
	res, err := rt.Audit(context.Background(), ids[len(ids)-1], refs[0])
	if err != nil {
		t.Fatalf("audit over TCP: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus over TCP")
	}
}

// TestSimDriverReportCoversEverySlot pins the externally driven
// report series: driving N slots through the Runtime verbs must yield
// N per-slot samples, including the final slot that no AdvanceSlot
// follows.
func TestSimDriverReportCoversEverySlot(t *testing.T) {
	const slots = 4
	rt := newRuntime(t, append(baseOptions(8, 1), WithSimulator())...)
	refs := fillBatch(t, rt, slots)
	rep := rt.(*SimDriver).Report()
	if got := len(rep.AvgStorageBits); got != slots {
		t.Fatalf("storage series has %d samples, want %d", got, slots)
	}
	if rep.Blocks != len(refs) {
		t.Fatalf("report counts %d blocks, want %d", rep.Blocks, len(refs))
	}
	// The final slot's submissions must be in the last sample: storage
	// strictly grows while every node keeps appending blocks.
	last, prev := rep.AvgStorageBits[slots-1], rep.AvgStorageBits[slots-2]
	if last <= prev {
		t.Fatalf("final-slot sample %d not ahead of previous %d", last, prev)
	}
	// Finalize is idempotent: a second Report must not append samples.
	if again := rt.(*SimDriver).Report(); len(again.AvgStorageBits) != slots {
		t.Fatalf("second Report grew the series to %d samples", len(again.AvgStorageBits))
	}
}

// TestOptionValidation covers the cross-field checks New enforces.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"no nodes", []Option{WithGamma(1)}},
		{"negative nodes", []Option{WithNodes(-1)}},
		{"gamma too high", []Option{WithNodes(5), WithGamma(5)}},
		{"negative gamma", []Option{WithNodes(5), WithGamma(-1)}},
		{"malicious on live driver", []Option{WithNodes(5), WithGamma(1), WithMalicious(2)}},
		{"tcp on simulator", []Option{WithNodes(5), WithGamma(1), WithSimulator(), WithTransport(TCP)}},
		{"nil observer", []Option{WithNodes(5), WithObserver(nil)}},
		{"zero timeout", []Option{WithNodes(5), WithRequestTimeout(0)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDeprecatedNewClusterShim keeps the old constructor working on
// top of the options path.
func TestDeprecatedNewClusterShim(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 6, Gamma: 1, Seed: 3, Difficulty: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	var rt Runtime = c // the shim result is a Runtime driver
	rt.AdvanceSlot()
	if _, err := rt.Submit(context.Background(), rt.Nodes()[0], []byte("compat")); err != nil {
		t.Fatalf("Submit via shim: %v", err)
	}
}
