package twoldag

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/cluster"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/node"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
)

// fabric abstracts the live driver's transport management so the
// cluster logic is identical over the in-memory network and TCP.
type fabric interface {
	// endpoint creates the transport for a (possibly joining) node.
	endpoint(id NodeID) (transport.Transport, error)
	// remove forgets a node after its transport closed.
	remove(id NodeID) error
	// close releases fabric-wide resources.
	close() error
}

// memFabric is the in-process message network.
type memFabric struct {
	net *transport.Network
}

func (f *memFabric) endpoint(id NodeID) (transport.Transport, error) { return f.net.Endpoint(id) }
func (f *memFabric) remove(id NodeID) error                          { return f.net.Remove(id) }
func (f *memFabric) close() error                                    { return f.net.Close() }

// tcpFabric runs each node on its own loopback TCP listener and keeps
// every directory up to date as nodes join.
type tcpFabric struct {
	mu    sync.Mutex
	nodes map[NodeID]*transport.TCPNode
}

func (f *tcpFabric) endpoint(id NodeID) (transport.Transport, error) {
	t, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.nodes[id]; dup {
		t.Close()
		return nil, fmt.Errorf("%w: %v", transport.ErrDuplicatePeer, id)
	}
	for peer, pt := range f.nodes {
		t.SetPeer(peer, pt.Addr())
		pt.SetPeer(id, t.Addr())
	}
	f.nodes[id] = t
	return t, nil
}

func (f *tcpFabric) remove(id NodeID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id]; !ok {
		return fmt.Errorf("%w: %v", transport.ErrUnknownPeer, id)
	}
	// The node closed its own transport (listener and connections);
	// peers' stale dial entries fail on use, like a dead radio.
	delete(f.nodes, id)
	return nil
}

func (f *tcpFabric) close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for id, t := range f.nodes {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
		delete(f.nodes, id)
	}
	return first
}

// Cluster is the live Runtime driver: one node runtime per IoT device
// exchanging real wire messages over the in-memory fabric or TCP.
type Cluster struct {
	topo    *topology.Graph
	ring    *identity.Ring
	fab     fabric
	nodes   map[NodeID]*node.Node
	ids     []NodeID
	slot    atomic.Uint32
	params  block.Params
	seed    int64
	gamma   int
	rto     time.Duration
	workers int
	tracker *cluster.AckTracker
	obs     Observer // user observers (may be nil); tracker added per node
	plan    faults.Plan
	retry   faults.RetryPolicy

	// Durability (WithDataDir): one FileBackend per node under
	// dataDir/node-<id>, kept so Silence can flush + close it and
	// Restart can recover from it. Each node's WAL is folded into a
	// snapshot every compactEvery sealed blocks (see maybeCompact).
	dataDir      string
	trustCap     int
	compactEvery int
	sync         SyncPolicy
	commitObs    ledger.CommitObserver // user observers that watch WAL commits
	backends     map[NodeID]*ledger.FileBackend
}

var _ Runtime = (*Cluster)(nil)

// newCluster builds and starts the live driver: keys, transports and
// one node runtime per device of the resolved topology.
func newCluster(cfg *config, g *topology.Graph) (*Cluster, error) {
	c := &Cluster{
		topo:    g,
		nodes:   make(map[NodeID]*node.Node, g.Len()),
		ids:     g.Nodes(),
		params:  cfg.params,
		seed:    cfg.seed,
		gamma:   cfg.gamma,
		rto:     cfg.rto,
		workers: cfg.workers,
		tracker: cluster.NewAckTracker(),
		obs:     events.Multi(cfg.observers...),
		plan:    cfg.faultPlan,
		retry:   cfg.retry,

		dataDir:      cfg.dataDir,
		trustCap:     cfg.trustCap,
		compactEvery: cfg.compactEvery,
		sync:         cfg.syncPolicy,
		commitObs:    commitObservers(cfg.observers),
		backends:     make(map[NodeID]*ledger.FileBackend),
	}
	switch cfg.transport {
	case TCP:
		c.fab = &tcpFabric{nodes: make(map[NodeID]*transport.TCPNode)}
	default:
		c.fab = &memFabric{net: transport.NewNetwork()}
	}
	var pairs []identity.KeyPair
	for _, id := range c.ids {
		pairs = append(pairs, identity.Deterministic(id, cfg.seed))
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		return nil, fmt.Errorf("twoldag: %w", err)
	}
	c.ring = ring
	for _, kp := range pairs {
		if err := c.startNode(kp); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// startNode creates the transport and runtime for one device.
func (c *Cluster) startNode(kp identity.KeyPair) error {
	ep, err := c.fab.endpoint(kp.ID)
	if err != nil {
		return fmt.Errorf("twoldag: %w", err)
	}
	// User observers run before the tracker: the tracker's ack is
	// what unblocks a waiting Submit/SubmitBatch, so ordering it
	// last guarantees every user observer has already seen a
	// delivery by the time the submitter returns.
	obs := events.Multi(c.obs, c.tracker)
	if tn, ok := ep.(*transport.TCPNode); ok {
		// TCP cannot report receiver-side backpressure to the sender;
		// surface each inbound inbox-full loss as a MessageDropped.
		self := kp.ID
		tn.SetDropHandler(func(env transport.Envelope) {
			if obs != nil {
				obs.OnMessageDropped(events.MessageDropped{
					From: env.From, To: self, Kind: uint8(env.Msg.Kind),
					Reason: events.DropBackpressure,
				})
			}
		})
	}
	tr := transport.Transport(ep)
	if c.plan.Active() {
		slot := &c.slot
		tr = faults.Wrap(ep, c.plan, func() uint32 { return slot.Load() }, obs)
	}
	var state *ledger.NodeState
	var backend ledger.Backend
	if c.dataDir != "" {
		bopts := []ledger.BackendOption{ledger.WithSyncPolicy(c.sync)}
		if c.commitObs != nil {
			bopts = append(bopts, ledger.WithCommitObserver(c.commitObs))
		}
		fb, err := ledger.OpenFileBackend(filepath.Join(c.dataDir, fmt.Sprintf("node-%d", kp.ID)), bopts...)
		if err != nil {
			return fmt.Errorf("twoldag: node %v: %w", kp.ID, err)
		}
		state, err = fb.Recover(ledger.RecoverOptions{
			Owner:    kp.ID,
			Params:   c.params,
			Ring:     c.ring,
			TrustCap: c.trustCap,
		})
		if err != nil {
			_ = fb.Close()
			return fmt.Errorf("twoldag: recovering node %v: %w", kp.ID, err)
		}
		c.backends[kp.ID] = fb
		backend = fb
	}
	n, err := node.New(node.Config{
		Key:            kp,
		Params:         c.params,
		Topo:           c.topo,
		Ring:           c.ring,
		Transport:      tr,
		Gamma:          c.gamma,
		RequestTimeout: c.rto,
		Retry:          c.retry,
		Health:         faults.NewHealth(kp.ID, 0, obs),
		Observer:       obs,
		State:          state,
		TrustCap:       c.trustCap,
		Backend:        backend,
	})
	if err != nil {
		if fb := c.backends[kp.ID]; fb != nil {
			_ = fb.Close()
			delete(c.backends, kp.ID)
		}
		return fmt.Errorf("twoldag: starting node %v: %w", kp.ID, err)
	}
	slot := &c.slot
	n.SetClock(func() uint32 { return slot.Load() })
	c.nodes[kp.ID] = n
	return nil
}

// Nodes implements Runtime.
func (c *Cluster) Nodes() []NodeID {
	return append([]NodeID(nil), c.ids...)
}

// Topology implements Runtime.
func (c *Cluster) Topology() *Topology { return c.topo }

// AdvanceSlot implements Runtime.
func (c *Cluster) AdvanceSlot() { c.slot.Add(1) }

// Slot implements Runtime.
func (c *Cluster) Slot() uint32 { return c.slot.Load() }

// liveNeighbors returns id's radio neighbors that still run a node.
func (c *Cluster) liveNeighbors(id NodeID) []NodeID {
	nbs := c.topo.Neighbors(id)
	out := nbs[:0]
	for _, nb := range nbs {
		if _, ok := c.nodes[nb]; ok {
			out = append(out, nb)
		}
	}
	return out
}

// maybeCompact folds a node's WAL into a fresh snapshot once the
// block-record threshold is reached — mirroring cluster.Host's seal
// path, so a long-lived facade run bounds wal.log growth and the
// recovery replay tail instead of accumulating every block since
// start. Runs on the submitter's goroutine right after a seal;
// concurrent compactions coalesce inside the backend.
func (c *Cluster) maybeCompact(id NodeID) {
	fb, ok := c.backends[id]
	if !ok {
		return
	}
	every := c.compactEvery
	if every <= 0 {
		every = cluster.DefaultCompactEvery
	}
	if fb.PendingBlocks() < every {
		return
	}
	n := c.nodes[id]
	_ = fb.Compact(func() (*ledger.NodeState, error) {
		return n.Engine().State(), nil
	})
}

// ackCtx bounds an acknowledgement wait: the caller's deadline rules
// when present; otherwise the configured request timeout applies.
func (c *Cluster) ackCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.rto)
}

// awaitAck blocks until every expected neighbor acknowledged d.
func (c *Cluster) awaitAck(ctx context.Context, origin NodeID, d Digest, w *cluster.Waiter) error {
	return c.tracker.Await(ctx, origin, d, w)
}

// awaitAckRetry is awaitAck with the configured retry policy: each
// missing acknowledgement re-sends the digest — only to the neighbors
// still pending, as a singleton frame — after an exponential backoff,
// up to MaxAttempts total announcement rounds. Retries are ack-driven,
// never blind: a loss-free run sends exactly one frame per link and
// takes the plain awaitAck path.
func (c *Cluster) awaitAckRetry(ctx context.Context, n *node.Node, d Digest, w *cluster.Waiter) error {
	return c.tracker.AwaitRetry(ctx, n.ID(), d, w, c.retry, c.obs, func(ctx context.Context, nb NodeID, d Digest) {
		n.AnnounceTo(ctx, nb, d)
	})
}

// commitWindow closes a durable node's open WAL commit window before
// its digests go on the wire. Only the batched policy commits at the
// flush boundary: SyncAlways already committed per block at seal time
// (an extra fsync here would tax the default path), and SyncInterval
// is deliberately decoupled from flushes.
func (c *Cluster) commitWindow(n *node.Node) error {
	if !c.sync.Batched() {
		return nil
	}
	return n.CommitJournal()
}

// commitObservers collects the user observers that also implement
// ledger.CommitObserver (e.g. *metrics.EventCounters), so WAL commit
// windows surface on the same scrape as the event counters.
func commitObservers(obs []Observer) ledger.CommitObserver {
	var cos multiCommitObserver
	for _, o := range obs {
		if co, ok := o.(ledger.CommitObserver); ok {
			cos = append(cos, co)
		}
	}
	switch len(cos) {
	case 0:
		return nil
	case 1:
		return cos[0]
	default:
		return cos
	}
}

type multiCommitObserver []ledger.CommitObserver

func (m multiCommitObserver) OnWALCommit(blocks int, bytes int64) {
	for _, o := range m {
		o.OnWALCommit(blocks, bytes)
	}
}

// Submit implements Runtime: seal, announce, and wait for every live
// neighbor's acknowledgement (event-driven — see cluster.AckTracker).
func (c *Cluster) Submit(ctx context.Context, id NodeID, data []byte) (Ref, error) {
	n, ok := c.nodes[id]
	if !ok {
		return Ref{}, fmt.Errorf("twoldag: unknown node %v", id)
	}
	b, d, err := n.GenerateLocal(data)
	if err != nil {
		return Ref{}, err
	}
	c.maybeCompact(id)
	if err := c.commitWindow(n); err != nil {
		return b.Header.Ref(), err
	}
	w := c.tracker.Expect(d, c.liveNeighbors(id))
	actx, cancel := c.ackCtx(ctx)
	defer cancel()
	n.Announce(actx, d)
	if err := c.awaitAckRetry(actx, n, d, w); err != nil {
		return b.Header.Ref(), err
	}
	return b.Header.Ref(), nil
}

// SubmitBatch implements Runtime: all blocks are sealed first, then
// the announcements flush receiver-centrically — every sender
// coalesces its digests into one DigestBatch frame per neighbor, so
// the fabric carries one frame per (sender, receiver) pair per batch
// instead of one per sealed block — and the acknowledgements are
// awaited together, amortizing the wait over the whole slot.
func (c *Cluster) SubmitBatch(ctx context.Context, batch []Submission) ([]Ref, error) {
	type flush struct {
		n *node.Node
		d Digest
		w *cluster.Waiter
	}
	refs := make([]Ref, 0, len(batch))
	flushes := make([]flush, 0, len(batch))
	fail := func(err error) ([]Ref, error) {
		for _, f := range flushes {
			c.tracker.Cancel(f.d)
		}
		return refs, err
	}
	for _, sub := range batch {
		n, ok := c.nodes[sub.Node]
		if !ok {
			return fail(fmt.Errorf("twoldag: unknown node %v", sub.Node))
		}
		b, d, err := n.GenerateLocal(sub.Data)
		if err != nil {
			return fail(err)
		}
		c.maybeCompact(sub.Node)
		refs = append(refs, b.Header.Ref())
		flushes = append(flushes, flush{n: n, d: d, w: c.tracker.Expect(d, c.liveNeighbors(sub.Node))})
	}
	// Coalesce outbound announcements per sender, preserving seal
	// order within each sender's run so the receiver's A_i ends on the
	// newest digest.
	bySender := make(map[NodeID][]Digest, len(flushes))
	senders := make([]*node.Node, 0, len(flushes))
	for _, f := range flushes {
		id := f.n.ID()
		if _, seen := bySender[id]; !seen {
			senders = append(senders, f.n)
		}
		bySender[id] = append(bySender[id], f.d)
	}
	actx, cancel := c.ackCtx(ctx)
	defer cancel()
	for _, n := range senders {
		if err := c.commitWindow(n); err != nil {
			return fail(err)
		}
		n.AnnounceBatch(actx, bySender[n.ID()])
	}
	if c.retry.Enabled() {
		// Await concurrently so every flush's retry clock runs at once;
		// sequential waits would serialize the backoffs.
		errs := make([]error, len(flushes))
		var wg sync.WaitGroup
		for i, f := range flushes {
			wg.Add(1)
			go func(i int, f flush) {
				defer wg.Done()
				errs[i] = c.awaitAckRetry(actx, f.n, f.d, f.w)
			}(i, f)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
		return refs, nil
	}
	for _, f := range flushes {
		if err := c.awaitAck(actx, f.n.ID(), f.d, f.w); err != nil {
			return fail(err)
		}
	}
	return refs, nil
}

// Audit implements Runtime.
func (c *Cluster) Audit(ctx context.Context, validator NodeID, ref Ref) (*AuditResult, error) {
	n, ok := c.nodes[validator]
	if !ok {
		return nil, fmt.Errorf("twoldag: unknown validator %v", validator)
	}
	return n.Audit(ctx, ref)
}

// AuditMany implements Runtime: audits fan out over a worker pool
// bounded by WithWorkers. Node runtimes build a fresh PoP validator
// per audit over shared, locked state, so any mix of validators may
// run concurrently.
func (c *Cluster) AuditMany(ctx context.Context, reqs []AuditRequest) []AuditOutcome {
	out := make([]AuditOutcome, len(reqs))
	fanOut(len(reqs), c.workers, func(i int) {
		r := reqs[i]
		res, err := c.Audit(ctx, r.Validator, r.Ref)
		out[i] = AuditOutcome{Request: r, Result: res, Err: err}
	})
	return out
}

// Block implements Runtime. The returned block is shared, sealed
// store state — treat it as read-only and Clone it before mutating.
func (c *Cluster) Block(ref Ref) (*Block, error) {
	n, ok := c.nodes[ref.Node]
	if !ok {
		return nil, fmt.Errorf("twoldag: unknown node %v", ref.Node)
	}
	return n.Engine().Store().Get(ref.Seq)
}

// ProveSample builds an inclusion proof for the i-th body chunk of the
// given block.
func (c *Cluster) ProveSample(ref Ref, leafIndex int) (*SampleProof, error) {
	b, err := c.Block(ref)
	if err != nil {
		return nil, err
	}
	return c.params.ProveSample(b, leafIndex)
}

// VerifySample checks a sample proof against the header established by
// a successful audit of the same block.
func (c *Cluster) VerifySample(res *AuditResult, sp *SampleProof) error {
	if !res.Consensus || len(res.Path) == 0 {
		return fmt.Errorf("twoldag: audit of %v did not reach consensus", res.Target)
	}
	return c.params.VerifySample(res.Path[0].Header, sp)
}

// Join implements Runtime (the paper's Sec. VII dynamic-membership
// extension): the new device is placed within radio range of the
// newest live device, registered in the key ring, and starts serving
// immediately.
func (c *Cluster) Join() (NodeID, error) {
	id, err := placeJoiner(c.topo, c.ids, func(id NodeID) bool {
		_, ok := c.nodes[id]
		return ok
	})
	if err != nil {
		return 0, err
	}
	kp := identity.Deterministic(id, c.seed)
	if err := c.ring.Register(kp.ID, kp.Public); err != nil {
		return 0, fmt.Errorf("twoldag: registering joiner: %w", err)
	}
	if err := c.startNode(kp); err != nil {
		return 0, fmt.Errorf("twoldag: joiner: %w", err)
	}
	c.ids = append(c.ids, id)
	return id, nil
}

// Silence implements Runtime: the device's transport closes, and
// subsequent audits must route around it, as in the paper's
// malicious-node experiments. With WithDataDir, the node's backend is
// flushed and closed too — everything the node accepted before going
// silent is on disk, and Restart can bring it back from exactly that
// state.
func (c *Cluster) Silence(id NodeID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("twoldag: unknown node %v", id)
	}
	delete(c.nodes, id)
	err := n.Close()
	if fb, ok := c.backends[id]; ok {
		delete(c.backends, id)
		if cerr := fb.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if rerr := c.fab.remove(id); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// Restart brings a silenced (or crashed) device back from its data
// dir: the backend reopens, the whole ledger state recovers from
// snapshot + WAL, and the node serves again under the same identity.
// Requires WithDataDir; the device must not be running. The restarted
// node's A_i, H_i and S_i are exactly what was durable at silence
// time — the caller re-flushes its latest digest if neighbors were
// ahead of the crash point.
func (c *Cluster) Restart(id NodeID) error {
	if c.dataDir == "" {
		return fmt.Errorf("twoldag: Restart(%v) requires WithDataDir", id)
	}
	if _, running := c.nodes[id]; running {
		return fmt.Errorf("twoldag: node %v is still running", id)
	}
	known := false
	for _, kid := range c.ids {
		if kid == id {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("twoldag: unknown node %v", id)
	}
	return c.startNode(identity.Deterministic(id, c.seed))
}

// StateDigest returns a canonical digest over a node's whole ledger
// state — the snapshot-v2 serialization of (S_i, H_i, A_i, trust cap)
// — for byte-identity checks across crash/recovery boundaries.
func (c *Cluster) StateDigest(id NodeID) (Digest, error) {
	n, ok := c.nodes[id]
	if !ok {
		return Digest{}, fmt.Errorf("twoldag: unknown node %v", id)
	}
	var buf bytes.Buffer
	if err := n.Engine().State().WriteSnapshot(&buf); err != nil {
		return Digest{}, err
	}
	return digest.Sum(buf.Bytes()), nil
}

// Close implements Runtime: every node stops, backends flush and
// close, then the fabric.
func (c *Cluster) Close() error {
	var first error
	for id, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.nodes, id)
	}
	for id, fb := range c.backends {
		if err := fb.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.backends, id)
	}
	if err := c.fab.close(); err != nil && first == nil {
		first = err
	}
	return first
}
