package twoldag

// Benchmark harness: one benchmark per figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus ablations and
// protocol micro-benchmarks. Benchmarks run a scaled-down (but
// shape-preserving) configuration so `go test -bench=.` completes in
// minutes; cmd/experiments regenerates the full-scale figures.
//
// Custom metrics reported:
//
//	MB/node       final average per-node storage (Fig. 7 y-axis)
//	Mb/node       final average per-node transmission (Fig. 8 y-axis)
//	slots         slots-to-consensus (Fig. 9 headline)
//	msgs/audit    PoP message cost per audit

import (
	"context"
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/analysis"
	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/baseline/iota"
	"github.com/twoldag/twoldag/internal/baseline/pbft"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/metrics"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

// benchTopo is the shared scaled-down deployment.
func benchTopo(b *testing.B) topology.Config {
	b.Helper()
	return topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1}
}

const benchSlots = 40

// BenchmarkFig7Storage regenerates Fig. 7(a)-(c): per-node storage of
// 2LDAG vs PBFT vs IOTA for each body size.
func BenchmarkFig7Storage(b *testing.B) {
	for _, bodyBytes := range []int{100_000, 500_000, 1_000_000} {
		b.Run(fmt.Sprintf("C=%.1fMB", float64(bodyBytes)/1e6), func(b *testing.B) {
			var last2ldag, lastPBFT, lastIOTA float64
			for i := 0; i < b.N; i++ {
				g, err := topology.Generate(benchTopo(b))
				if err != nil {
					b.Fatal(err)
				}
				pr, err := pbft.Run(pbft.Config{Nodes: 16, Slots: benchSlots, BodyBytes: bodyBytes})
				if err != nil {
					b.Fatal(err)
				}
				ir, err := iota.Run(iota.Config{Graph: g, Slots: benchSlots, BodyBytes: bodyBytes, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(sim.Config{
					Graph: g, Seed: 1, Slots: benchSlots, BodyBytes: bodyBytes,
					Gamma: 5, RetainVerifiedBlocks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				r2, err := s.Run()
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
				last2ldag = metrics.BitsToMB(r2.AvgStorageBits[benchSlots-1])
				lastPBFT = metrics.BitsToMB(pr.AvgStorageBits[benchSlots-1])
				lastIOTA = metrics.BitsToMB(ir.AvgStorageBits[benchSlots-1])
			}
			b.ReportMetric(last2ldag, "2LDAG-MB/node")
			b.ReportMetric(lastPBFT, "PBFT-MB/node")
			b.ReportMetric(lastIOTA, "IOTA-MB/node")
			if last2ldag > 0 {
				b.ReportMetric(lastPBFT/last2ldag, "PBFT/2LDAG-ratio")
			}
		})
	}
}

// BenchmarkFig7StorageCDF regenerates Fig. 7(d): the storage CDF across
// nodes at the final slot.
func BenchmarkFig7StorageCDF(b *testing.B) {
	var p50, p90 float64
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			Topo: benchTopo(b), Seed: 1, Slots: benchSlots, BodyBytes: 500_000,
			Gamma: 5, RetainVerifiedBlocks: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run()
		s.Close()
		if err != nil {
			b.Fatal(err)
		}
		samples := make([]float64, len(rep.NodeStorageBits))
		for j, bits := range rep.NodeStorageBits {
			samples[j] = metrics.BitsToMB(bits)
		}
		cdf, err := metrics.NewCDF(samples)
		if err != nil {
			b.Fatal(err)
		}
		p50, p90 = cdf.Quantile(0.5), cdf.Quantile(0.9)
	}
	b.ReportMetric(p50, "p50-MB")
	b.ReportMetric(p90, "p90-MB")
}

// BenchmarkFig8Comm regenerates Fig. 8(a)-(c): communication overhead
// split into DAG-construction and consensus traffic, at the paper's
// two tolerance settings.
func BenchmarkFig8Comm(b *testing.B) {
	for _, tc := range []struct {
		name  string
		gamma int
	}{{"gamma=33pct", 5}, {"gamma=49pct", 7}} {
		b.Run(tc.name, func(b *testing.B) {
			var total, constr, cons float64
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sim.Config{
					Topo: benchTopo(b), Seed: 1, Slots: benchSlots,
					BodyBytes: 500_000, Gamma: tc.gamma,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := s.Run()
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
				total = metrics.BitsToMb(rep.AvgCommBits[benchSlots-1])
				constr = metrics.BitsToMb(rep.AvgConstructionBits[benchSlots-1])
				cons = metrics.BitsToMb(rep.AvgConsensusBits[benchSlots-1])
			}
			b.ReportMetric(total, "total-Mb/node")
			b.ReportMetric(constr, "construction-Mb/node")
			b.ReportMetric(cons, "consensus-Mb/node")
		})
	}
}

// BenchmarkFig8CommBaselines reports the PBFT and IOTA comparison lines
// of Fig. 8(a).
func BenchmarkFig8CommBaselines(b *testing.B) {
	var pbftMb, iotaMb float64
	for i := 0; i < b.N; i++ {
		g, err := topology.Generate(benchTopo(b))
		if err != nil {
			b.Fatal(err)
		}
		pr, err := pbft.Run(pbft.Config{Nodes: 16, Slots: benchSlots, BodyBytes: 500_000})
		if err != nil {
			b.Fatal(err)
		}
		ir, err := iota.Run(iota.Config{Graph: g, Slots: benchSlots, BodyBytes: 500_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		pbftMb = metrics.BitsToMb(pr.AvgCommBits[benchSlots-1])
		iotaMb = metrics.BitsToMb(ir.AvgCommBits[benchSlots-1])
	}
	b.ReportMetric(pbftMb, "PBFT-Mb/node")
	b.ReportMetric(iotaMb, "IOTA-Mb/node")
}

// BenchmarkFig9Consensus regenerates Fig. 9: slots until consensus for
// increasing γ with γ actually-malicious (silent) nodes.
func BenchmarkFig9Consensus(b *testing.B) {
	for _, tc := range []struct {
		name      string
		gamma     int
		malicious int
	}{
		{"gamma=3", 3, 3},
		{"gamma=5", 5, 5},
		{"gamma=7", 7, 7},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var slots float64
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunProbe(sim.ProbeConfig{
					Base: sim.Config{
						Topo: benchTopo(b), Seed: int64(i), BodyBytes: 500_000,
						Gamma: tc.gamma, Malicious: tc.malicious,
						Behavior: attack.KindSilent, RandomPeriodMax: 2,
					},
					MaxSlots: 60, Trials: 2, Stride: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.SlotsToConsensus >= 0 {
					slots = float64(rep.SlotsToConsensus)
				} else {
					slots = 60
				}
			}
			b.ReportMetric(slots, "slots-to-consensus")
		})
	}
}

// BenchmarkAblationPathStrategy compares WPS against random and
// shortest-path-first selection (ABL-WPS).
func BenchmarkAblationPathStrategy(b *testing.B) {
	for _, tc := range []struct {
		name     string
		strategy core.SelectionStrategy
	}{
		{"WPS", core.WPS{}},
		{"random", core.RandomSelection{}},
		{"shortest-path-first", core.ShortestPathFirst{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var consMb, msgs float64
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sim.Config{
					Topo: benchTopo(b), Seed: 1, Slots: benchSlots,
					BodyBytes: 100_000, Gamma: 5, Strategy: tc.strategy,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := s.Run()
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
				consMb = metrics.BitsToMb(rep.AvgConsensusBits[benchSlots-1])
				if rep.Audits > 0 {
					msgs = float64(rep.AvgConsensusBits[benchSlots-1]*16) / float64(rep.Audits)
				}
			}
			b.ReportMetric(consMb, "consensus-Mb/node")
			b.ReportMetric(msgs, "bits/audit")
		})
	}
}

// BenchmarkAblationTPS compares repeat-audit cost with and without the
// H_i trusted-header cache (ABL-TPS).
func BenchmarkAblationTPS(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"TPS-on", false}, {"TPS-off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var consMb float64
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sim.Config{
					Topo: benchTopo(b), Seed: 1, Slots: benchSlots,
					BodyBytes: 100_000, Gamma: 5, DisableTrust: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := s.Run()
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
				consMb = metrics.BitsToMb(rep.AvgConsensusBits[benchSlots-1])
			}
			b.ReportMetric(consMb, "consensus-Mb/node")
		})
	}
}

// BenchmarkPropositionBounds micro-benchmarks the Sec. V analytic
// formulas (they run inside every experiment loop).
func BenchmarkPropositionBounds(b *testing.B) {
	rates := make([]float64, 50)
	for i := range rates {
		rates[i] = float64(50 - i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.TotalBlocks(200, rates, 4e6); err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.MessageUpperBound(rates, 24); err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.MicroLoopBound(rates[:10], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoPAuditLive measures one live PoP audit on the public API.
func BenchmarkPoPAuditLive(b *testing.B) {
	cluster, err := NewCluster(ClusterConfig{Nodes: 12, Gamma: 3, Seed: 5, Difficulty: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	var refs []Ref
	for s := 0; s < 4; s++ {
		cluster.AdvanceSlot()
		for _, id := range cluster.Nodes() {
			ref, err := cluster.Submit(ctx, id, []byte{byte(s)})
			if err != nil {
				b.Fatal(err)
			}
			refs = append(refs, ref)
		}
	}
	validator := cluster.Nodes()[11]
	target := refs[0]
	var msgs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Audit(ctx, validator, target)
		if err != nil {
			b.Fatal(err)
		}
		msgs = float64(res.MessagesSent + res.MessagesReceived)
	}
	b.ReportMetric(msgs, "msgs/audit")
}

// BenchmarkBlockGeneration measures end-to-end block production
// (Merkle root + PoW + signature) at the default difficulty.
func BenchmarkBlockGeneration(b *testing.B) {
	cluster, err := NewCluster(ClusterConfig{Nodes: 6, Gamma: 1, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	id := cluster.Nodes()[0]
	body := make([]byte, 4096)
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.AdvanceSlot()
		if _, err := cluster.Submit(ctx, id, body); err != nil {
			b.Fatal(err)
		}
	}
}
