package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		const n = 100
		hits := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

// TestPoolCoversAllIndexes checks exactly-once execution across batch
// sizes, including batches smaller than the pool.
func TestPoolCoversAllIndexes(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 5, 64, 1000} {
		hits := make([]atomic.Int32, n)
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, got)
			}
		}
	}
}

// TestPoolReuseAcrossBatches dispatches many consecutive batches —
// the per-slot phase pattern — and checks the running total.
func TestPoolReuseAcrossBatches(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum atomic.Int64
	for batch := 0; batch < 200; batch++ {
		p.Run(17, func(i int) { sum.Add(int64(i)) })
	}
	want := int64(200 * 17 * 16 / 2)
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestPoolRunChunkedCoversAllIndexes checks exactly-once coverage of
// the range form across pool widths, chunk sizes (including auto and
// non-divisible), and batch sizes.
func TestPoolRunChunkedCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, chunk := range []int{0, 1, 3, 64, 5000} {
				hits := make([]atomic.Int32, n)
				p.RunChunked(n, chunk, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
						return
					}
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("workers=%d n=%d chunk=%d: index %d hit %d times",
							workers, n, chunk, i, got)
					}
				}
			}
		}
		p.Close()
	}

	// Nil pool: one inline chunk.
	var nilPool *Pool
	calls := 0
	nilPool.RunChunked(10, 3, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
}

// TestPoolSerialFallbacks pins the inline paths: nil pools, width-1
// pools and single-item batches run on the caller.
func TestPoolSerialFallbacks(t *testing.T) {
	var nilPool *Pool
	ran := 0
	nilPool.Run(3, func(i int) { ran++ })
	if ran != 3 {
		t.Fatalf("nil pool ran %d of 3", ran)
	}
	nilPool.Close() // must not panic

	p1 := NewPool(1)
	ran = 0
	p1.Run(4, func(i int) { ran++ })
	if ran != 4 {
		t.Fatalf("width-1 pool ran %d of 4", ran)
	}
	p1.Close()
	p1.Close() // idempotent

	p := NewPool(8)
	ran = 0
	p.Run(1, func(i int) { ran++ }) // single item stays inline
	if ran != 1 {
		t.Fatalf("single-item batch ran %d of 1", ran)
	}
	p.Close()
	p.Close()
}
