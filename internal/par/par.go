// Package par holds the concurrency primitives the runtime drivers
// and the slot simulator share: a bounded fan-out over an indexed work
// list (ForEach) and a persistent worker pool (Pool) for callers that
// dispatch many batches and should not pay a goroutine spawn per
// phase.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) on at most workers goroutines (0 =
// GOMAXPROCS); with one worker (or one item) it degrades to a plain
// loop. It returns when every call has completed. fn must be safe for
// concurrent invocation across distinct indexes.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Pool is a persistent worker pool over indexed batches: NewPool
// starts workers-1 long-lived goroutines once, and each Run dispatches
// fn(0..n-1) across them plus the calling goroutine — no goroutine
// spawn and no allocation per batch, unlike ForEach. A Pool sized 1
// (or nil) runs every batch inline.
//
// Run must not be called concurrently with itself on the same Pool:
// the pool is a phase engine for a single dispatching goroutine, not a
// shared executor. Call Close when done with the pool to release its
// goroutines; Run after Close is invalid.
type Pool struct {
	workers int
	closed  bool
	work    chan struct{} // one token wakes one worker for the current batch

	// Current batch; written by Run before the wake tokens are sent and
	// read by workers after receiving one (the channel send provides the
	// happens-before edge).
	fn   func(int)
	n    int
	next atomic.Int64
	wg   sync.WaitGroup
}

// NewPool builds a pool of the given width (0 = GOMAXPROCS) and starts
// its workers. A width of 1 starts no goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.work = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			// The channel is passed by value: Close may nil the field
			// (for idempotency) while a freshly spawned worker starts up.
			go p.worker(p.work)
		}
	}
	return p
}

func (p *Pool) worker(work <-chan struct{}) {
	for range work {
		p.drainBatch()
		p.wg.Done()
	}
}

// drainBatch claims and runs indexes of the current batch until none
// remain.
func (p *Pool) drainBatch() {
	n, fn := p.n, p.fn
	for {
		i := int(p.next.Add(1)) - 1
		if i >= n {
			return
		}
		fn(i)
	}
}

// Run executes fn(0..n-1) across the pool and the calling goroutine,
// returning when every call has completed. fn must be safe for
// concurrent invocation across distinct indexes. Nil pools, width-1
// pools and single-item batches run inline.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.work <- struct{}{}
	}
	p.drainBatch() // the dispatcher participates instead of idling
	p.wg.Wait()
	p.fn = nil
}

// RunChunked executes fn over [0, n) split into contiguous ranges of
// at most chunk indexes: fn(lo, hi) covers lo <= i < hi. Workers claim
// ranges atomically, so at 100k-node scale the per-index dispatch cost
// (one atomic increment each) amortizes to one per chunk, and fn can
// hoist per-worker scratch out of its inner loop. chunk <= 0 picks a
// size that gives each worker ~4 ranges — small enough to balance,
// large enough to amortize.
//
// Like Run, fn must be safe for concurrent invocation across disjoint
// ranges and RunChunked must not be called concurrently with itself or
// Run on the same Pool. Nil and width-1 pools run the whole range
// inline as one chunk.
func (p *Pool) RunChunked(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 {
		fn(0, n)
		return
	}
	if chunk <= 0 {
		chunk = (n + p.workers*4 - 1) / (p.workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	chunks := (n + chunk - 1) / chunk
	if chunks == 1 {
		fn(0, n)
		return
	}
	p.Run(chunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Close releases the pool's goroutines. Safe on nil pools and
// idempotent; Run must not be in flight or called afterwards. The
// work channel is kept (closed) so a buggy post-Close Run panics with
// "send on closed channel" instead of blocking forever.
func (p *Pool) Close() {
	if p == nil || p.closed || p.work == nil {
		return
	}
	p.closed = true
	close(p.work)
}
