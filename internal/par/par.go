// Package par holds the one concurrency primitive the runtime drivers
// and the slot simulator share: a bounded worker pool over an indexed
// work list.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) on at most workers goroutines (0 =
// GOMAXPROCS); with one worker (or one item) it degrades to a plain
// loop. It returns when every call has completed. fn must be safe for
// concurrent invocation across distinct indexes.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
