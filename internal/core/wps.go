package core

import (
	"math/rand"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// SelectionState is the information available when choosing the next
// responder for the current verifying block b_v,t.
type SelectionState struct {
	// Validator is node i running PoP.
	Validator identity.NodeID
	// Verifier is the origin of the target block.
	Verifier identity.NodeID
	// Current is the origin v of the current verifying block.
	Current identity.NodeID
	// Candidates is N' — the not-yet-tried neighbors of Current.
	Candidates []identity.NodeID
	// InVouchers reports membership in R_i.
	InVouchers func(identity.NodeID) bool
	// Topo is the shared physical topology.
	Topo *topology.Graph
	// RNG breaks ties; nil means "lowest node ID", keeping selection
	// fully deterministic.
	RNG *rand.Rand

	// Strategy scratch, reused when the caller keeps one SelectionState
	// across probes (the validator does): neighbor fetches and tie sets
	// then cost zero allocations per step.
	nbScratch []identity.NodeID
	zScratch  []identity.NodeID
}

// weight is Eq. 7 through the state's neighbor scratch — the
// allocation-free form of Weight for selection hot loops.
func (st *SelectionState) weight(cand identity.NodeID) float64 {
	st.nbScratch = st.Topo.AppendNeighbors(st.nbScratch[:0], cand)
	return weightOf(st.nbScratch, st.InVouchers, cand)
}

// SelectionStrategy picks the next responder from st.Candidates (which
// is always non-empty).
type SelectionStrategy interface {
	Next(st *SelectionState) identity.NodeID
}

// Weight computes Eq. 7 for candidate v̂: the fraction of v̂'s closed
// neighborhood {N(v̂) ∪ {v̂}} already present in R_i. Lower weight means
// more potential fresh vouchers behind that candidate.
func Weight(topo *topology.Graph, inVouchers func(identity.NodeID) bool, cand identity.NodeID) float64 {
	return weightOf(topo.Neighbors(cand), inVouchers, cand)
}

func weightOf(nbs []identity.NodeID, inVouchers func(identity.NodeID) bool, cand identity.NodeID) float64 {
	in := 0
	for _, nb := range nbs {
		if inVouchers(nb) {
			in++
		}
	}
	if inVouchers(cand) {
		in++
	}
	return float64(in) / float64(len(nbs)+1)
}

// WPS is Algorithm 1: Weighted Path Selection. The zero value is ready
// to use.
type WPS struct{}

// Next selects argmin-weight candidates (line 4), then applies the
// paper's tie rules: a single minimum wins (lines 5–7); if the tie set
// is disjoint from R_i or entirely inside it, any member may be chosen
// (lines 8–10); otherwise choose among members not in R_i (lines
// 11–13).
func (WPS) Next(st *SelectionState) identity.NodeID {
	z := st.zScratch[:0]
	best := 2.0 // weights are ≤ 1
	for _, cand := range st.Candidates {
		w := st.weight(cand)
		switch {
		case w < best:
			best = w
			z = z[:0]
			z = append(z, cand)
		case w == best:
			z = append(z, cand)
		}
	}
	st.zScratch = z[:0]
	if len(z) == 1 {
		return z[0]
	}
	fresh := z[:0:0]
	for _, cand := range z {
		if !st.InVouchers(cand) {
			fresh = append(fresh, cand)
		}
	}
	pool := z
	if len(fresh) > 0 && len(fresh) < len(z) {
		// Z ∩ R_i ≠ ∅ and Z ⊄ R_i: prefer the members outside R_i.
		pool = fresh
	}
	return pick(pool, st.RNG)
}

// RandomSelection ignores weights entirely — the ablation baseline for
// WPS. The zero value is ready to use.
type RandomSelection struct{}

// Next picks a uniformly random candidate (or the lowest ID without an
// RNG).
func (RandomSelection) Next(st *SelectionState) identity.NodeID {
	return pick(st.Candidates, st.RNG)
}

// ShortestPathFirst implements the paper's Sec. VII future-work idea:
// prefer the candidate physically closest to the validator so header
// transfers traverse fewer radio hops, breaking ties by WPS weight.
// The zero value is ready to use.
type ShortestPathFirst struct{}

// Next selects the candidate minimizing (hops-to-validator, Eq. 7
// weight).
func (ShortestPathFirst) Next(st *SelectionState) identity.NodeID {
	dist, err := st.Topo.BFSDistances(st.Validator)
	if err != nil {
		return WPS{}.Next(st)
	}
	bestHops := int(^uint(0) >> 1)
	bestWeight := 2.0
	var best []identity.NodeID
	for _, cand := range st.Candidates {
		h, ok := dist[cand]
		if !ok {
			h = bestHops // unreachable sorts last
		}
		w := st.weight(cand)
		switch {
		case h < bestHops || (h == bestHops && w < bestWeight):
			bestHops, bestWeight = h, w
			best = best[:0]
			best = append(best, cand)
		case h == bestHops && w == bestWeight:
			best = append(best, cand)
		}
	}
	return pick(best, st.RNG)
}

// pick chooses deterministically (lowest ID) without an RNG, uniformly
// with one.
func pick(pool []identity.NodeID, rng *rand.Rand) identity.NodeID {
	if len(pool) == 1 {
		return pool[0]
	}
	if rng != nil {
		return pool[rng.Intn(len(pool))]
	}
	best := pool[0]
	for _, c := range pool[1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// Compile-time strategy conformance checks.
var (
	_ SelectionStrategy = WPS{}
	_ SelectionStrategy = RandomSelection{}
	_ SelectionStrategy = ShortestPathFirst{}
)
