// Package core implements the Proof-of-Path (PoP) protocol — the primary
// contribution of the 2LDAG paper (Sec. IV).
//
// PoP is a *reactive* consensus protocol: nothing happens until a
// validator needs to verify the block of some verifier node. The
// validator then walks the logical DAG child-by-child across distinct
// physical nodes, collecting vouchers into the set R_i, until
// |R_i| ≥ γ+1 distinct nodes (directly or transitively) attest to the
// target block's integrity.
//
// The package contains faithful implementations of the paper's four
// algorithms:
//
//   - Weighted Path Selection, WPS (Algorithm 1) — picks the next
//     responder by the closed-neighborhood weight of Eq. 7;
//   - Trust Path Selection, TPS (Algorithm 2) — extends the path for
//     free using the validator's cache H_i of previously verified
//     headers;
//   - Validator (Algorithm 3) — the full path construction loop with
//     timeout handling and rollback around unresponsive or malicious
//     nodes;
//   - Responder (Algorithm 4) — answers REQ_CHILD with the oldest local
//     block whose Δ field contains the requested digest (Eq. 10–11).
package core

import (
	"context"
	"errors"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Sentinel errors surfaced by PoP.
var (
	// ErrNoConsensus is returned when path construction exhausts every
	// alternative without collecting γ+1 vouchers (Algorithm 3 line 33).
	ErrNoConsensus = errors.New("core: consensus unreachable")
	// ErrRootMismatch is returned when the verifier's block body does
	// not hash to its header root (Algorithm 3 line 4).
	ErrRootMismatch = errors.New("core: verifier block failed root check")
	// ErrInvalidBlock is returned when the verifier's block fails
	// header validation (PoW or signature).
	ErrInvalidBlock = errors.New("core: verifier block invalid")
	// ErrNoChild is returned by responders that hold no child of the
	// requested digest.
	ErrNoChild = errors.New("core: no child block for digest")
	// ErrTimeout stands for an expired REQ_CHILD timeout τ.
	ErrTimeout = errors.New("core: request timed out")
	// ErrStepBudget is returned when path construction exceeds the
	// configured safety budget.
	ErrStepBudget = errors.New("core: step budget exhausted")
)

// Fetcher is the validator's view of the network. Implementations exist
// over the in-memory simulator (deterministic, cost-accounted) and over
// real transports (RPC with timeouts); malicious behaviors are injected
// behind this interface.
//
// Ownership contract: returned headers and blocks must not be mutated
// by the fetcher after they are returned, and the validator treats them
// as read-only. In-process fetchers may therefore hand out sealed
// store references without copying; an implementation that needs to
// rewrite a reply (e.g. the attack library) must clone first.
type Fetcher interface {
	// RequestChild sends REQ_CHILD(target) to node j and returns the
	// header from the matching RPY_CHILD. Errors represent timeouts,
	// refusals or unparseable replies.
	RequestChild(ctx context.Context, j identity.NodeID, target digest.Digest) (*block.Header, error)
	// FetchBlock retrieves the full block identified by ref from its
	// origin node.
	FetchBlock(ctx context.Context, ref block.Ref) (*block.Block, error)
}

// PathStep is one entry of the constructed path P_i.
type PathStep struct {
	// Node is the physical node owning the block (the j' that answered,
	// or the verifier itself for the first step).
	Node identity.NodeID
	// Header is the block's header, possibly shared with a store —
	// treat it as read-only (see Fetcher's ownership contract).
	Header *block.Header
	// HeaderHash caches Header.Hash().
	HeaderHash digest.Digest
	// ViaTrust marks steps satisfied from H_i (TPS) without traffic.
	ViaTrust bool
}

// Result reports the outcome and cost of one PoP verification.
type Result struct {
	// Target identifies the verified block.
	Target block.Ref
	// Consensus is true when |R_i| ≥ γ+1 was reached.
	Consensus bool
	// Path is P_i in construction order, starting at the target block.
	Path []PathStep
	// Vouchers is R_i in join order (distinct physical nodes).
	Vouchers []identity.NodeID

	// MessagesSent counts REQ_CHILD and GET_BLOCK messages emitted.
	MessagesSent int
	// MessagesReceived counts replies received (valid or not).
	MessagesReceived int
	// HeadersFetched counts headers obtained over the network.
	HeadersFetched int
	// TrustHits counts path steps satisfied from H_i (TPS).
	TrustHits int
	// Rollbacks counts Algorithm 3 line 26-31 events.
	Rollbacks int
	// Timeouts counts requests that produced no valid reply.
	Timeouts int
	// UnionFallback reports that strict path construction exhausted and
	// the union-semantics retry ran (see ValidatorConfig.StrictPath).
	UnionFallback bool
}

// PathNodes returns the distinct physical nodes on the path, in first-
// appearance order. With micro-loops (paper Fig. 6) the path may be
// longer than this set.
func (r *Result) PathNodes() []identity.NodeID {
	seen := make(map[identity.NodeID]bool, len(r.Path))
	var out []identity.NodeID
	for _, s := range r.Path {
		if !seen[s.Node] {
			seen[s.Node] = true
			out = append(out, s.Node)
		}
	}
	return out
}

// MicroLoopBlocks counts path steps that did not add a new node to R_i —
// the micro-loop blocks analyzed in Prop. 5.
func (r *Result) MicroLoopBlocks() int {
	seen := make(map[identity.NodeID]bool, len(r.Path))
	loops := 0
	for _, s := range r.Path {
		if seen[s.Node] {
			loops++
			continue
		}
		seen[s.Node] = true
	}
	return loops
}
