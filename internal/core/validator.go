package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
)

// DefaultStepBudget bounds the number of candidate probes per
// verification; Prop. 6 bounds honest executions far below this.
const DefaultStepBudget = 65536

// ValidatorConfig configures a PoP validator.
type ValidatorConfig struct {
	// Self is the validator's node ID (node i of Algorithm 3).
	Self identity.NodeID
	// Gamma is the number of tolerable malicious nodes γ; consensus
	// requires γ+1 distinct vouchers.
	Gamma int
	// Params are the shared consensus constants.
	Params block.Params
	// Ring is the shared public-key registry.
	Ring *identity.Ring
	// Topo is the shared physical topology (all nodes know G(V,E)).
	Topo *topology.Graph
	// Trust is H_i. Nil disables TPS caching (the ablation baseline).
	Trust *ledger.TrustStore
	// Blacklist, when non-nil, records unresponsive peers and skips
	// banned ones (Sec. IV-D6).
	Blacklist *ledger.Blacklist
	// Avoid, when non-nil, reports peers to route around — e.g. a
	// health tracker's suspects. Unlike a blacklist ban the filter is
	// advisory: avoided peers are skipped only while a non-avoided
	// candidate remains, so they stay reachable as a last resort (which
	// doubles as the recovery probe that re-admits them). Called from
	// the audit loop — must be cheap and safe for concurrent use.
	Avoid func(identity.NodeID) bool
	// Strategy selects the next responder; nil means WPS (Alg. 1).
	Strategy SelectionStrategy
	// RNG breaks selection ties; nil keeps runs deterministic.
	RNG *rand.Rand
	// StepBudget caps candidate probes; 0 means DefaultStepBudget.
	StepBudget int
	// VerifyCache remembers headers that already passed PoW + signature
	// checks, so each distinct header is cryptographically verified once
	// per node rather than once per audit hop. Nil allocates a fresh
	// private cache; share one (e.g. the engine's) across a node's
	// validators to carry hits between audits. Must not be shared across
	// different Params or Ring values.
	VerifyCache *block.VerifyCache
	// StrictPath disables the union-semantics fallback: consensus then
	// requires a single path of γ+1 distinct nodes, exactly as the
	// paper's Algorithm 3 defines it. By default, when strict path
	// construction exhausts (Algorithm 3's backtracking search is
	// incomplete — rolled-back subtrees may be viable under other
	// prefixes), Verify retries counting every node that ever produced
	// a valid child along the exploration. That is security-equivalent:
	// each such node owns a block that verifiably descends from the
	// target, so it vouches transitively (Sec. III-C), and the retry is
	// a complete decision procedure for γ+1-voucher reachability.
	StrictPath bool
}

// Validator runs Proof-of-Path verifications (Algorithm 3).
type Validator struct {
	cfg      ValidatorConfig
	strategy SelectionStrategy
}

// NewValidator validates the configuration and builds a validator.
func NewValidator(cfg ValidatorConfig) (*Validator, error) {
	if cfg.Ring == nil {
		return nil, errors.New("core: ValidatorConfig.Ring is required")
	}
	if cfg.Topo == nil {
		return nil, errors.New("core: ValidatorConfig.Topo is required")
	}
	if cfg.Gamma < 0 {
		return nil, fmt.Errorf("core: negative gamma %d", cfg.Gamma)
	}
	if cfg.StepBudget == 0 {
		cfg.StepBudget = DefaultStepBudget
	}
	if cfg.VerifyCache == nil {
		cfg.VerifyCache = block.NewVerifyCache()
	}
	v := &Validator{cfg: cfg, strategy: cfg.Strategy}
	if v.strategy == nil {
		v.strategy = WPS{}
	}
	return v, nil
}

// voucherSet is R_i: an insertion-ordered set of distinct node IDs.
// Membership maps each node to the sequence number of its latest add,
// making add/remove O(1) — rollback on deep paths used to pay an O(n)
// scan per removal — while snapshot reconstructs insertion order.
type voucherSet struct {
	in  map[identity.NodeID]int
	seq int
}

func newVoucherSet() *voucherSet {
	return &voucherSet{in: make(map[identity.NodeID]int)}
}

func (s *voucherSet) add(id identity.NodeID) {
	if _, ok := s.in[id]; !ok {
		s.in[id] = s.seq
		s.seq++
	}
}

func (s *voucherSet) remove(id identity.NodeID) {
	delete(s.in, id)
}

func (s *voucherSet) has(id identity.NodeID) bool {
	_, ok := s.in[id]
	return ok
}

func (s *voucherSet) len() int { return len(s.in) }

// snapshot returns the members in insertion order (of each member's
// latest add).
func (s *voucherSet) snapshot() []identity.NodeID {
	out := make([]identity.NodeID, 0, len(s.in))
	for id := range s.in {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return s.in[out[i]] < s.in[out[j]] })
	return out
}

// Verify runs Algorithm 3 against the block identified by ref,
// retrieving data through f. On success the returned Result has
// Consensus == true and, when H_i is configured, every header on the
// path has been cached for future TPS hits (line 39).
func (v *Validator) Verify(ctx context.Context, ref block.Ref, f Fetcher) (*Result, error) {
	res := &Result{Target: ref}

	// Lines 1–5: retrieve the verifier's block and check the Merkle
	// root (plus PoW and signature, which the paper folds into header
	// validity).
	res.MessagesSent++
	blk, err := f.FetchBlock(ctx, ref)
	if err != nil {
		return res, fmt.Errorf("core: retrieving target %v: %w", ref, err)
	}
	res.MessagesReceived++
	root, err := v.cfg.Params.BlockBodyRoot(blk)
	if err != nil {
		return res, fmt.Errorf("core: hashing target body: %w", err)
	}
	if root != blk.Header.Root {
		return res, fmt.Errorf("%w: %v", ErrRootMismatch, ref)
	}
	if err := v.cfg.Params.ValidateHeaderCached(&blk.Header, v.cfg.Ring, v.cfg.VerifyCache); err != nil {
		return res, fmt.Errorf("%w: %v: %v", ErrInvalidBlock, ref, err)
	}

	err = v.construct(ctx, ref, blk, f, res, false)
	if errors.Is(err, ErrNoConsensus) && !v.cfg.StrictPath {
		// Strict path construction exhausted; retry with union
		// semantics (see ValidatorConfig.StrictPath).
		res.UnionFallback = true
		err = v.construct(ctx, ref, blk, f, res, true)
	}
	return res, err
}

// construct runs one path-construction attempt (Algorithm 3 lines
// 6–39). With union == true, vouchers survive rollbacks. Message
// counters accumulate into res across attempts.
func (v *Validator) construct(ctx context.Context, ref block.Ref, blk *block.Block, f Fetcher, res *Result, union bool) error {
	// Line 6: R_i = {j}, P_i = {b_j,t}, verifying block = target.
	// Fetched headers are owned by the validator (or shared sealed store
	// state) and never mutated here, so path steps reference them
	// directly — no per-hop clone, and Hash() is memoized.
	vouchers := newVoucherSet()
	vouchers.add(ref.Node)
	hdr := &blk.Header
	path := []PathStep{{Node: ref.Node, Header: hdr, HeaderHash: hdr.Hash()}}

	budget := v.cfg.StepBudget

	// dead records blocks whose subtrees were exhausted by a rollback.
	// The paper's pseudocode resets V' = V each outer iteration (line
	// 14), which livelocks between two dead-end branches when consensus
	// is unsatisfiable; memoizing exhausted blocks preserves Algorithm
	// 3's behavior on satisfiable instances while guaranteeing
	// termination (stores are immutable during one verification).
	dead := make(map[digest.Digest]bool)

	// One SelectionState and one neighbor buffer serve every probe of
	// this attempt: strategies and candidate filtering run through their
	// scratch fields, so a probe costs no per-step allocations.
	st := SelectionState{
		Validator:  v.cfg.Self,
		Verifier:   ref.Node,
		InVouchers: vouchers.has,
		Topo:       v.cfg.Topo,
		RNG:        v.cfg.RNG,
	}
	var nbBuf []identity.NodeID

	// Lines 8–38: construct the path.
	for {
		// Line 9: extend for free from H_i (Algorithm 2).
		path = v.runTPS(path, vouchers, dead, res)

		// Lines 10–12: consensus check.
		if vouchers.len() >= v.cfg.Gamma+1 {
			res.Consensus = true
			res.Path = path
			res.Vouchers = vouchers.snapshot()
			v.cacheVerifiedPath(path)
			return nil
		}

		// Lines 13–35: probe neighbors of the verifying block's origin,
		// rolling back when a node's neighborhood is exhausted. V' (the
		// exclusion set) resets at each outer iteration, per line 14.
		excluded := make(map[identity.NodeID]bool)
		tried := make(map[identity.NodeID]bool)
		advanced := false

		for !advanced {
			if err := ctx.Err(); err != nil {
				res.Path = path
				return fmt.Errorf("core: verification canceled: %w", err)
			}
			cur := path[len(path)-1]
			cands := v.candidates(cur.Node, tried, excluded, nbBuf)
			nbBuf = cands[:0]
			if len(cands) == 0 {
				// Lines 26–31: roll back past the exhausted node.
				res.Rollbacks++
				excluded[cur.Node] = true
				dead[cur.HeaderHash] = true
				if !union {
					// Line 27; with union semantics the voucher
					// stays (its block provably descends from the
					// target).
					vouchers.remove(cur.Node)
				}
				path = path[:len(path)-1]
				if len(path) == 0 || vouchers.len() == 0 {
					// Lines 32–34.
					res.Path = path
					return fmt.Errorf("%w: %v: every path exhausted", ErrNoConsensus, ref)
				}
				tried = make(map[identity.NodeID]bool)
				continue
			}

			if budget--; budget < 0 {
				res.Path = path
				return fmt.Errorf("%w: %v", ErrStepBudget, ref)
			}

			st.Current = cur.Node
			st.Candidates = cands
			jPrime := v.strategy.Next(&st)
			tried[jPrime] = true

			// Lines 17–24: REQ_CHILD / RPY_CHILD exchange.
			res.MessagesSent++
			child, err := f.RequestChild(ctx, jPrime, cur.HeaderHash)
			if err != nil {
				res.Timeouts++
				v.reportFailure(jPrime)
				continue
			}
			res.MessagesReceived++
			if !v.replyValid(child, jPrime, cur) {
				res.Timeouts++
				v.reportFailure(jPrime)
				continue
			}
			v.reportSuccess(jPrime)
			res.HeadersFetched++
			hh := child.Hash()
			if dead[hh] {
				// This child's subtree is already known to dead-end;
				// probing it again would livelock.
				continue
			}

			// Lines 36–37: extend R_i and P_i, advance the verifying
			// block.
			path = append(path, PathStep{Node: jPrime, Header: child, HeaderHash: hh})
			vouchers.add(jPrime)
			advanced = true
		}
	}
}

// runTPS is Algorithm 2: follow child links already present in H_i,
// stopping early once consensus is in hand and never stepping into a
// block whose subtree already dead-ended.
func (v *Validator) runTPS(path []PathStep, vouchers *voucherSet, dead map[digest.Digest]bool, res *Result) []PathStep {
	if v.cfg.Trust == nil {
		return path
	}
	for vouchers.len() < v.cfg.Gamma+1 {
		cur := path[len(path)-1]
		child, ok := v.cfg.Trust.ChildOf(cur.HeaderHash)
		if !ok {
			break
		}
		hh := child.Hash()
		if dead[hh] {
			break
		}
		res.TrustHits++
		path = append(path, PathStep{
			Node: child.Origin, Header: child, HeaderHash: hh, ViaTrust: true,
		})
		vouchers.add(child.Origin)
	}
	return path
}

// candidates computes N' for the current verifying node: its physical
// neighbors minus already-tried, rolled-back and blacklisted nodes.
// Avoided peers (ValidatorConfig.Avoid) are then filtered out only
// when at least one non-avoided candidate remains — suspicion routes
// around a peer but never makes consensus unreachable. The neighbor
// fetch and the filtering share buf's backing array; the result aliases
// it, so callers reuse it only after consuming the previous result.
func (v *Validator) candidates(cur identity.NodeID, tried, excluded map[identity.NodeID]bool, buf []identity.NodeID) []identity.NodeID {
	nbs := v.cfg.Topo.AppendNeighbors(buf[:0], cur)
	eligible := nbs[:0]
	nonAvoided := 0
	for _, nb := range nbs {
		if tried[nb] || excluded[nb] {
			continue
		}
		if v.cfg.Blacklist != nil && v.cfg.Blacklist.Banned(nb) {
			continue
		}
		if v.cfg.Avoid == nil || !v.cfg.Avoid(nb) {
			nonAvoided++
		}
		eligible = append(eligible, nb)
	}
	if nonAvoided == 0 || nonAvoided == len(eligible) {
		return eligible
	}
	out := eligible[:0]
	for _, nb := range eligible {
		if !v.cfg.Avoid(nb) {
			out = append(out, nb)
		}
	}
	return out
}

// replyValid applies line 21 — H(b^h_v) == GetDigest(b^h_j', v) — plus
// authenticity: the reply must be j”s own block and carry a valid PoW
// and signature.
func (v *Validator) replyValid(child *block.Header, jPrime identity.NodeID, cur PathStep) bool {
	if child.Origin != jPrime {
		return false
	}
	d, ok := child.DigestOf(cur.Node)
	if !ok || d != cur.HeaderHash {
		return false
	}
	return v.cfg.Params.ValidateHeaderCached(child, v.cfg.Ring, v.cfg.VerifyCache) == nil
}

// cacheVerifiedPath is line 39: store every header on the successful
// path into H_i.
func (v *Validator) cacheVerifiedPath(path []PathStep) {
	if v.cfg.Trust == nil {
		return
	}
	for _, step := range path {
		v.cfg.Trust.Add(step.Header)
	}
}

func (v *Validator) reportFailure(id identity.NodeID) {
	if v.cfg.Blacklist != nil {
		v.cfg.Blacklist.ReportFailure(id)
	}
}

func (v *Validator) reportSuccess(id identity.NodeID) {
	if v.cfg.Blacklist != nil {
		v.cfg.Blacklist.ReportSuccess(id)
	}
}

// Source is the read-only store surface a Responder serves from.
// *ledger.Store implements it directly; ledger.View implements it over
// an immutable store prefix, which is how pipelined audits keep a
// responder's answers fenced at a slot boundary while the owner keeps
// appending (audit target eligibility and child selection are frozen
// at the fence).
type Source interface {
	Owner() identity.NodeID
	Get(seq uint32) (*block.Block, error)
	OldestContaining(d digest.Digest) (*block.Block, bool)
}

var (
	_ Source = (*ledger.Store)(nil)
	_ Source = ledger.View{}
)

// Responder implements Algorithm 4: serve the oldest local block whose
// Δ contains a requested digest, and serve full blocks to validators.
type Responder struct {
	store Source
}

// NewResponder wraps a node's block store (or a slot-fenced view of
// it).
func NewResponder(store Source) *Responder {
	return &Responder{store: store}
}

// ChildFor returns the header of the oldest local block containing
// target in its Δ (Eq. 10–11), or ErrNoChild.
func (r *Responder) ChildFor(target digest.Digest) (*block.Header, error) {
	b, ok := r.store.OldestContaining(target)
	if !ok {
		return nil, fmt.Errorf("%w: %s at %v", ErrNoChild, target, r.store.Owner())
	}
	return &b.Header, nil
}

// Block returns the full local block for ref, used to answer a
// validator's initial retrieval (Algorithm 3 line 2).
func (r *Responder) Block(ref block.Ref) (*block.Block, error) {
	if ref.Node != r.store.Owner() {
		return nil, fmt.Errorf("%w: %v not owned by %v", ledger.ErrNotFound, ref, r.store.Owner())
	}
	return r.store.Get(ref.Seq)
}
