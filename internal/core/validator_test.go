package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
)

// TestPoPPaperFig4GreenPath replays Fig. 4: verifying B1 with γ=2 must
// construct the short green path {B1, D1, E2} via WPS.
func TestPoPPaperFig4GreenPath(t *testing.T) {
	l := newLab(t, topology.PaperFig4()) // A=0,B=1,C=2,D=3,E=4
	l.genesisAll()
	// Slot 1: B generates B1, then D (captures B1's digest), then E
	// (captures D1's digest).
	l.runSlot(1, 3, 4)

	v := l.validator(0, 2) // validator A, γ=2
	res, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Consensus {
		t.Fatal("consensus not reached")
	}
	wantNodes := []identity.NodeID{1, 3, 4} // B, D, E
	if len(res.Vouchers) != 3 {
		t.Fatalf("vouchers = %v, want 3 nodes", res.Vouchers)
	}
	for i, id := range wantNodes {
		if res.Vouchers[i] != id {
			t.Fatalf("vouchers = %v, want %v", res.Vouchers, wantNodes)
		}
	}
	if len(res.Path) != 3 {
		t.Fatalf("path length %d, want 3 (green path)", len(res.Path))
	}
	// Prop. 4 floor: at least 2(γ+1) messages with empty H_i.
	if got := res.MessagesSent + res.MessagesReceived; got < 2*(2+1) {
		t.Fatalf("messages = %d, below Prop. 4 bound %d", got, 2*3)
	}
}

// TestPoPMicroLoopPaperFig6 reproduces Fig. 6: with r_B >> r_C, the path
// from B1 to C1 traverses the micro-loop {B2, A2, B3, A3, B4}.
func TestPoPMicroLoopPaperFig6(t *testing.T) {
	l := newLab(t, topology.PaperFig6()) // A=0, B=1, C=2; chain A-B-C
	l.genesisAll()
	// Slots 1..4: B then A generate each slot; C stays silent.
	for s := 0; s < 4; s++ {
		l.runSlot(1, 0)
	}
	// Slot 5: C finally generates C1, holding B4's digest.
	l.runSlot(2)

	v := l.validator(0, 2)
	res, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Consensus {
		t.Fatal("consensus not reached")
	}
	// Expected path: B1 A1 B2 A2 B3 A3 B4 C1 (8 blocks, Fig. 6).
	if len(res.Path) != 8 {
		for _, s := range res.Path {
			t.Logf("path step: %v seq=%d viaTrust=%v", s.Node, s.Header.Seq, s.ViaTrust)
		}
		t.Fatalf("path length %d, want 8", len(res.Path))
	}
	if res.MicroLoopBlocks() != 5 {
		t.Fatalf("micro-loop blocks = %d, want 5 ({B2,A2,B3,A3,B4})", res.MicroLoopBlocks())
	}
	last := res.Path[len(res.Path)-1]
	if last.Node != 2 {
		t.Fatalf("path must terminate at C, got %v", last.Node)
	}
}

// TestPoPDetectsTamperedBody: any mutation of the verifier's stored body
// must fail the Merkle root check (Algorithm 3 lines 3-5).
func TestPoPDetectsTamperedBody(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	l.runSlot(1, 3, 4)

	l.fetcher.InterceptBlock = func(ref block.Ref, b *block.Block, err error) (*block.Block, error) {
		if err == nil && ref.Node == 1 {
			b = b.Clone()     // fetched blocks are shared store state
			b.Body[0] ^= 0xFF // verifier lies about its data
		}
		return b, err
	}
	v := l.validator(0, 2)
	_, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("want ErrRootMismatch, got %v", err)
	}
}

// TestPoPDetectsForgedHeader: a verifier re-signing a block under a key
// not in the ring (or with broken PoW) must be rejected.
func TestPoPDetectsForgedHeader(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	l.runSlot(1, 3, 4)
	l.fetcher.InterceptBlock = func(ref block.Ref, b *block.Block, err error) (*block.Block, error) {
		if err == nil {
			b = b.Clone() // fetched blocks are shared store state
			b.Header.Signature[0] ^= 0x01
		}
		return b, err
	}
	v := l.validator(0, 2)
	_, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("want ErrInvalidBlock, got %v", err)
	}
}

// TestPoPRoutesAroundSilentNode: a malicious node that never answers
// REQ_CHILD is bypassed via other branches (the Fig. 5 behavior).
func TestPoPRoutesAroundSilentNode(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	for s := 0; s < 3; s++ {
		l.runSlot(1, 2, 3, 4, 0) // everyone generates for a rich DAG
	}
	silent := identity.NodeID(3) // D goes silent
	l.fetcher.InterceptChild = func(j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error) {
		if j == silent {
			return nil, ErrTimeout
		}
		return h, err
	}
	v := l.validator(0, 2)
	res, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if err != nil {
		t.Fatalf("Verify despite silent node: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus despite available honest path")
	}
	for _, id := range res.Vouchers {
		if id == silent {
			t.Fatal("silent node ended up vouching")
		}
	}
	if res.Timeouts == 0 {
		t.Fatal("expected at least one timeout against the silent node")
	}
}

// TestPoPRejectsCorruptedReplies: a responder forging RPY_CHILD headers
// (wrong digest or broken signature) is treated as failed and bypassed.
func TestPoPRejectsCorruptedReplies(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	for s := 0; s < 3; s++ {
		l.runSlot(1, 2, 3, 4, 0)
	}
	evil := identity.NodeID(3)
	l.fetcher.InterceptChild = func(j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error) {
		if j == evil && err == nil {
			forged := h.Clone()
			forged.Digests[0].Digest = digest.Sum([]byte("lie"))
			return forged, nil
		}
		return h, err
	}
	v := l.validator(0, 2)
	res, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for _, id := range res.Vouchers {
		if id == evil {
			t.Fatal("corrupting node accepted as voucher")
		}
	}
}

// rollbackTopology builds the scenario forcing a rollback: A(0)-B(1),
// A-C(2), C-D(3), plus leaves X(4), Y(5) attached to B so WPS prefers B
// first. B's branch dead-ends, forcing a rollback to A and success via
// C then D.
func rollbackTopology(t *testing.T) *topology.Graph {
	g, err := topology.FromEdges(6, [][2]identity.NodeID{
		{0, 1}, {0, 2}, {2, 3}, {1, 4}, {1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPoPRollbackThenSucceed(t *testing.T) {
	l := newLab(t, rollbackTopology(t))
	l.genesisAll()
	// Slot 1: A then B, C, D generate. X, Y never generate again, so
	// B's subtree cannot extend the path past B.
	l.runSlot(0, 1, 2, 3)

	v := l.validator(3, 2) // validator D, γ=2, target A#1
	res, err := v.Verify(context.Background(), block.Ref{Node: 0, Seq: 1}, l.fetcher)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Consensus {
		t.Fatal("consensus not reached after rollback")
	}
	if res.Rollbacks == 0 {
		t.Fatal("expected at least one rollback")
	}
	// Final path must run A -> C -> D.
	nodes := res.PathNodes()
	want := []identity.NodeID{0, 2, 3}
	if len(nodes) != len(want) {
		t.Fatalf("path nodes %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("path nodes %v, want %v", nodes, want)
		}
	}
}

// TestPoPNoConsensusWhenGammaTooLarge: γ+1 beyond the reachable voucher
// count must fail with ErrNoConsensus after exhausting every branch.
func TestPoPNoConsensusWhenGammaTooLarge(t *testing.T) {
	l := newLab(t, topology.PaperFig6()) // 3 nodes only
	l.genesisAll()
	l.runSlot(1, 0)
	l.runSlot(2)

	v := l.validator(0, 3) // needs 4 vouchers, only 3 nodes exist
	_, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
	if !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("want ErrNoConsensus, got %v", err)
	}
}

// TestPoPTrustPathSelection: a second verification of the same block
// must be satisfied from H_i with zero REQ_CHILD traffic (Alg. 2).
func TestPoPTrustPathSelection(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	l.runSlot(1, 3, 4)

	v := l.validator(0, 2)
	ref := block.Ref{Node: 1, Seq: 1}
	first, err := v.Verify(context.Background(), ref, l.fetcher)
	if err != nil || !first.Consensus {
		t.Fatalf("first verify: %v / %+v", err, first)
	}
	second, err := v.Verify(context.Background(), ref, l.fetcher)
	if err != nil || !second.Consensus {
		t.Fatalf("second verify: %v", err)
	}
	if second.MessagesSent != 1 {
		// Only the initial block retrieval is allowed.
		t.Fatalf("second verify sent %d messages, want 1 (TPS should serve the rest)", second.MessagesSent)
	}
	if second.TrustHits == 0 {
		t.Fatal("second verify had no trust hits")
	}
	if second.HeadersFetched != 0 {
		t.Fatalf("second verify fetched %d headers over the network", second.HeadersFetched)
	}
}

// TestPoPTrustStoreDisabled: without H_i every verification pays full
// network cost (the ABL-TPS ablation baseline).
func TestPoPTrustStoreDisabled(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	l.runSlot(1, 3, 4)

	noTrust := func(cfg *ValidatorConfig) { cfg.Trust = nil }
	v := l.validator(0, 2, noTrust)
	ref := block.Ref{Node: 1, Seq: 1}
	first, err := v.Verify(context.Background(), ref, l.fetcher)
	if err != nil {
		t.Fatal(err)
	}
	second, err := v.Verify(context.Background(), ref, l.fetcher)
	if err != nil {
		t.Fatal(err)
	}
	if second.TrustHits != 0 {
		t.Fatal("trust hits without a trust store")
	}
	if second.MessagesSent != first.MessagesSent {
		t.Fatalf("without H_i repeat cost %d != first cost %d", second.MessagesSent, first.MessagesSent)
	}
}

// TestPoPProp4MessageFloor checks Prop. 4: with empty H_i a validator
// exchanges at least 2(γ+1) messages to reach consensus.
func TestPoPProp4MessageFloor(t *testing.T) {
	for gamma := 0; gamma <= 3; gamma++ {
		g, err := topology.Line(6)
		if err != nil {
			t.Fatal(err)
		}
		l := newLab(t, g)
		l.genesisAll()
		for s := 0; s < 6; s++ {
			l.runSlot(0, 1, 2, 3, 4, 5)
		}
		v := l.validator(5, gamma, func(cfg *ValidatorConfig) { cfg.Trust = nil })
		res, err := v.Verify(context.Background(), block.Ref{Node: 0, Seq: 1}, l.fetcher)
		if err != nil {
			t.Fatalf("gamma=%d: %v", gamma, err)
		}
		if got := res.MessagesSent + res.MessagesReceived; got < 2*(gamma+1) {
			t.Fatalf("gamma=%d: %d messages, below Prop. 4 floor %d", gamma, got, 2*(gamma+1))
		}
	}
}

// TestPoPAlternativeStrategies: RandomSelection and ShortestPathFirst
// must also reach consensus on a healthy network.
func TestPoPAlternativeStrategies(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy SelectionStrategy
	}{
		{"random", RandomSelection{}},
		{"shortest-path-first", ShortestPathFirst{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := newLab(t, topology.PaperFig4())
			l.genesisAll()
			for s := 0; s < 3; s++ {
				l.runSlot(1, 2, 3, 4, 0)
			}
			v := l.validator(0, 2, func(cfg *ValidatorConfig) { cfg.Strategy = tc.strategy })
			res, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: 1}, l.fetcher)
			if err != nil || !res.Consensus {
				t.Fatalf("strategy %s failed: %v", tc.name, err)
			}
		})
	}
}

// TestPoPBlacklistSkipsBannedNodes: after enough failures the silent
// node is banned and no longer probed at all.
func TestPoPBlacklistSkipsBannedNodes(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	for s := 0; s < 5; s++ {
		l.runSlot(1, 2, 3, 4, 0)
	}
	silent := identity.NodeID(3)
	l.fetcher.InterceptChild = func(j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error) {
		if j == silent {
			return nil, ErrTimeout
		}
		return h, err
	}
	eng := l.engines[0]
	bl := ledger.NewBlacklist(2, 100)
	v, err := eng.Validator(2, l.ring, func(cfg *ValidatorConfig) { cfg.Blacklist = bl })
	if err != nil {
		t.Fatal(err)
	}
	// Run several verifications; the silent node accumulates strikes.
	for seq := uint32(1); seq <= 3; seq++ {
		if _, err := v.Verify(context.Background(), block.Ref{Node: 1, Seq: seq}, l.fetcher); err != nil {
			t.Fatalf("verify #%d: %v", seq, err)
		}
	}
	if !bl.Banned(silent) {
		t.Fatal("silent node never banned")
	}
	// Once banned, a fresh verification must not probe it at all.
	probed := false
	l.fetcher.InterceptChild = func(j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error) {
		if j == silent {
			probed = true
		}
		return h, err
	}
	if _, err := v.Verify(context.Background(), block.Ref{Node: 2, Seq: 1}, l.fetcher); err != nil {
		t.Fatal(err)
	}
	if probed {
		t.Fatal("banned node was still probed")
	}
}

// TestPoPContextCancellation: a canceled context aborts verification.
func TestPoPContextCancellation(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	l.runSlot(1, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := l.validator(0, 2)
	if _, err := v.Verify(ctx, block.Ref{Node: 1, Seq: 1}, l.fetcher); err == nil {
		t.Fatal("canceled context did not abort")
	}
}

// TestPoPUnreachableVerifier: fetching the target from an unknown node
// fails cleanly.
func TestPoPUnreachableVerifier(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	v := l.validator(0, 1)
	if _, err := v.Verify(context.Background(), block.Ref{Node: 99, Seq: 0}, l.fetcher); err == nil {
		t.Fatal("verification against unknown node succeeded")
	}
}

// TestValidatorConfigValidation covers constructor errors.
func TestValidatorConfigValidation(t *testing.T) {
	g := topology.PaperFig3()
	ring := identity.NewRing()
	if _, err := NewValidator(ValidatorConfig{Topo: g}); err == nil {
		t.Fatal("missing ring accepted")
	}
	if _, err := NewValidator(ValidatorConfig{Ring: ring}); err == nil {
		t.Fatal("missing topology accepted")
	}
	if _, err := NewValidator(ValidatorConfig{Ring: ring, Topo: g, Gamma: -1}); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

// TestResponderAlgorithm4 covers the responder in isolation.
func TestResponderAlgorithm4(t *testing.T) {
	l := newLab(t, topology.PaperFig6())
	l.genesisAll()
	for s := 0; s < 3; s++ {
		l.runSlot(1, 0) // B then A each slot
	}
	b1, err := l.engines[1].Store().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	// A's oldest child of B1 must be A1 (seq 1), not a later block.
	resp := l.engines[0].Responder()
	child, err := resp.ChildFor(b1.Header.Hash())
	if err != nil {
		t.Fatalf("ChildFor: %v", err)
	}
	if child.Origin != 0 || child.Seq != 1 {
		t.Fatalf("oldest child = %v#%d, want n0#1", child.Origin, child.Seq)
	}
	if _, err := resp.ChildFor(digest.Sum([]byte("unknown"))); !errors.Is(err, ErrNoChild) {
		t.Fatalf("want ErrNoChild, got %v", err)
	}
	if _, err := resp.Block(block.Ref{Node: 0, Seq: 0}); err != nil {
		t.Fatalf("Block: %v", err)
	}
	if _, err := resp.Block(block.Ref{Node: 1, Seq: 0}); err == nil {
		t.Fatal("responder served a foreign block")
	}
}

// TestEngineRejectsNonNeighborDigest enforces Sec. IV-D5 filtering.
func TestEngineRejectsNonNeighborDigest(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	err := l.engines[0].OnDigest(4, digest.Sum([]byte("x"))) // E is not A's neighbor
	if !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("want ErrNotNeighbor, got %v", err)
	}
}

// TestEngineChaining: consecutive blocks link via PrevDigest and carry
// fresh neighbor digests.
func TestEngineChaining(t *testing.T) {
	l := newLab(t, topology.PaperFig3())
	l.genesisAll()
	l.runSlot(3, 2, 1, 0) // D, C, B, A — the Fig. 3 generation order
	bStore := l.engines[1].Store()
	b1, err := bStore.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := bStore.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Header.PrevDigest() != b0.Header.Hash() {
		t.Fatal("chain link broken")
	}
	// Fig. 3: B1 must contain the digests of A0?, C1 and D1 — in our
	// slot order D and C generated before B in slot 1, so B1 holds
	// D1's and C1's digests; A generates after B, so B1 holds A0's.
	d1, err := l.engines[3].Store().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := b1.Header.DigestOf(3); !ok || got != d1.Header.Hash() {
		t.Fatal("B1 does not reference D1")
	}
	a0, err := l.engines[0].Store().Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := b1.Header.DigestOf(0); !ok || got != a0.Header.Hash() {
		t.Fatal("B1 does not reference A0")
	}
}

// TestEngineConstructorValidation covers engine construction errors.
func TestEngineConstructorValidation(t *testing.T) {
	g := topology.PaperFig3()
	key := identity.Deterministic(99, 1) // not in topology
	if _, err := NewEngine(key, block.DefaultParams(), g); err == nil {
		t.Fatal("engine accepted node outside topology")
	}
	if _, err := NewEngine(key, block.DefaultParams(), nil); err == nil {
		t.Fatal("engine accepted nil topology")
	}
}

// TestStoreFetcherDynamicMembership: removing a store makes the node
// unreachable; re-registering restores it.
func TestStoreFetcherDynamicMembership(t *testing.T) {
	l := newLab(t, topology.PaperFig4())
	l.genesisAll()
	ctx := context.Background()
	ref := block.Ref{Node: 2, Seq: 0}
	if _, err := l.fetcher.FetchBlock(ctx, ref); err != nil {
		t.Fatalf("fetch before removal: %v", err)
	}
	l.fetcher.Remove(2)
	if _, err := l.fetcher.FetchBlock(ctx, ref); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout after removal, got %v", err)
	}
	l.fetcher.Register(2, l.engines[2].Store())
	if _, err := l.fetcher.FetchBlock(ctx, ref); err != nil {
		t.Fatalf("fetch after re-register: %v", err)
	}
}

func fmtPath(res *Result) string {
	s := ""
	for _, st := range res.Path {
		s += fmt.Sprintf("%v#%d ", st.Node, st.Header.Seq)
	}
	return s
}
