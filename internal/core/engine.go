package core

import (
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
)

// ErrNotNeighbor reports a digest announcement from a node that is not a
// physical neighbor; 2LDAG nodes only accept digests over existing radio
// links (Sec. III-A, IV-D5).
var ErrNotNeighbor = errors.New("core: digest from non-neighbor")

// Engine is the node-side 2LDAG state machine of Sec. III: it owns the
// node's block log S_i, the neighbor digest cache A_i and the trusted
// header store H_i, and implements block generation (Sec. III-D) and
// digest ingestion. Transport-agnostic: callers deliver incoming
// digests via OnDigest and broadcast the digests Generate returns.
type Engine struct {
	key    identity.KeyPair
	params block.Params
	topo   *topology.Graph

	store   *ledger.Store
	cache   *ledger.DigestCache
	trust   *ledger.TrustStore
	vcache  *block.VerifyCache
	backend ledger.Backend // nil when the node is in-memory only

	// Generate scratch: neighbor list and Δ refs are assembled here
	// instead of fresh slices per block. Generate is not safe for
	// concurrent use with itself (it never was — seq assignment demands
	// a single generator), so unsynchronized scratch is fine.
	nbScratch  []identity.NodeID
	refScratch []block.DigestRef
}

// EngineOptions overrides the state an engine would otherwise build for
// itself. The simulator uses it to back thousands of engines with
// per-node compact stores over one shared content-addressed arena and
// one process-wide verification cache.
type EngineOptions struct {
	// Store replaces the default sharded ledger.NewStore. Must be owned
	// by the engine's node ID.
	Store *ledger.Store
	// Trust replaces the default empty ledger.NewTrustStore — how a
	// recovered node resumes with its persisted H_i.
	Trust *ledger.TrustStore
	// Cache replaces the default empty ledger.NewDigestCache — how a
	// recovered node resumes with its persisted A_i.
	Cache *ledger.DigestCache
	// TrustCap, when > 0, bounds H_i to that many headers (FIFO
	// eviction; ledger.TrustStore.SetCap). Applied to the injected
	// Trust store too, so config and recovered state agree.
	TrustCap int
	// Backend, when non-nil, is attached as the durability journal on
	// the engine's store, trust store and digest cache — after any
	// injected (recovered) state, so recovery itself is never
	// re-journaled. The engine does not manage the backend's
	// lifecycle; whoever opened it closes it.
	Backend ledger.Backend
	// VerifyCache replaces the engine-private cache. Verification
	// results are objective facts about sealed headers (the cache keys
	// on header hash and records only successes), so sharing one across
	// engines is sound and deduplicates the cached state n-fold.
	VerifyCache *block.VerifyCache
}

// NewEngine builds the state machine for one node.
func NewEngine(key identity.KeyPair, params block.Params, topo *topology.Graph) (*Engine, error) {
	return NewEngineWith(key, params, topo, EngineOptions{})
}

// NewEngineWith builds the state machine for one node with explicit
// storage backing (see EngineOptions).
func NewEngineWith(key identity.KeyPair, params block.Params, topo *topology.Graph, opts EngineOptions) (*Engine, error) {
	if topo == nil {
		return nil, errors.New("core: Engine requires a topology")
	}
	if !topo.Has(key.ID) {
		return nil, fmt.Errorf("core: node %v not in topology", key.ID)
	}
	store := opts.Store
	if store == nil {
		store = ledger.NewStore(key.ID)
	} else if store.Owner() != key.ID {
		return nil, fmt.Errorf("core: injected store owned by %v, engine is %v", store.Owner(), key.ID)
	}
	vcache := opts.VerifyCache
	if vcache == nil {
		vcache = block.NewVerifyCache()
	}
	trust := opts.Trust
	if trust == nil {
		trust = ledger.NewTrustStore()
	}
	if opts.TrustCap > 0 {
		trust.SetCap(opts.TrustCap)
	}
	cache := opts.Cache
	if cache == nil {
		cache = ledger.NewDigestCache()
	}
	if opts.Backend != nil {
		store.SetJournal(opts.Backend)
		trust.SetJournal(opts.Backend)
		cache.SetJournal(opts.Backend)
	}
	return &Engine{
		key:     key,
		params:  params,
		topo:    topo,
		store:   store,
		cache:   cache,
		trust:   trust,
		vcache:  vcache,
		backend: opts.Backend,
	}, nil
}

// CommitJournal closes the backend's open WAL commit window, fsyncing
// every block record staged since the last commit. Drivers running a
// batched sync policy call it at their flush boundary — after sealing
// a slot's blocks, before announcing any of them — so durability is
// acknowledged once per slot instead of once per block. A no-op for
// in-memory engines.
func (e *Engine) CommitJournal() error {
	if e.backend == nil {
		return nil
	}
	return e.backend.Commit()
}

// ID returns the node's identity.
func (e *Engine) ID() identity.NodeID { return e.key.ID }

// Store exposes S_i (shared with responders and fetchers).
func (e *Engine) Store() *ledger.Store { return e.store }

// Trust exposes H_i (shared with this node's validator).
func (e *Engine) Trust() *ledger.TrustStore { return e.trust }

// Cache exposes A_i.
func (e *Engine) Cache() *ledger.DigestCache { return e.cache }

// State bundles the engine's ledger structures as a ledger.NodeState —
// the view snapshot-v2 compaction serializes. The structures are the
// live ones, not copies; the serializer takes each structure's read
// lock itself.
func (e *Engine) State() *ledger.NodeState {
	return &ledger.NodeState{
		Store:    e.store,
		Trust:    e.trust,
		Cache:    e.cache,
		TrustCap: e.trust.Cap(),
	}
}

// VerifyCache exposes the node's header-validation cache, shared by
// every validator built from this engine so cryptographic checks carry
// over between audits.
func (e *Engine) VerifyCache() *block.VerifyCache { return e.vcache }

// OnDigest ingests a digest announcement from a neighbor, replacing
// that neighbor's entry in A_i (Sec. III-D). Announcements from
// non-neighbors are rejected. It is the singleton shim over
// OnDigestBatch; transports and schedulers that collect a whole slot's
// announcements deliver them in one OnDigestBatch call instead.
func (e *Engine) OnDigest(from identity.NodeID, d digest.Digest) error {
	if !e.topo.IsNeighbor(e.key.ID, from) {
		return fmt.Errorf("%w: %v -> %v", ErrNotNeighbor, from, e.key.ID)
	}
	e.cache.Update(from, d)
	return nil
}

// OnDigestBatch ingests a batch of digest announcements — from[i]
// announced ds[i] — in one pass: every sender is checked against the
// radio topology first, then A_i is updated under a single lock
// acquisition (ledger.DigestCache.UpdateBatch). Entries apply in slice
// order, so a later digest from the same sender wins, exactly as the
// equivalent sequence of OnDigest calls. The batch is all-or-nothing:
// a non-neighbor sender (or mismatched slice lengths) rejects the
// whole batch before any entry lands in A_i. The engine never retains
// the slices, so callers may reuse them across batches.
//
// Safe for concurrent use with OnDigest; per-receiver batch delivery
// (one goroutine per receiving engine) needs no locking beyond the
// cache's own.
func (e *Engine) OnDigestBatch(from []identity.NodeID, ds []digest.Digest) error {
	if len(from) != len(ds) {
		return fmt.Errorf("core: digest batch length mismatch: %d senders, %d digests", len(from), len(ds))
	}
	for _, j := range from {
		if !e.topo.IsNeighbor(e.key.ID, j) {
			return fmt.Errorf("%w: %v -> %v", ErrNotNeighbor, j, e.key.ID)
		}
	}
	e.cache.UpdateBatch(from, ds)
	return nil
}

// OnDigestsFrom ingests one neighbor's run of announcements in seal
// order — the shape a wire DigestBatch frame carries. Because A_i
// keeps only the sender's newest digest, the whole run costs one
// neighbor check and one cache update regardless of length; the
// all-or-nothing and ordering contracts match OnDigestBatch with a
// repeated sender column.
func (e *Engine) OnDigestsFrom(from identity.NodeID, ds []digest.Digest) error {
	if len(ds) == 0 {
		return nil
	}
	if !e.topo.IsNeighbor(e.key.ID, from) {
		return fmt.Errorf("%w: %v -> %v", ErrNotNeighbor, from, e.key.ID)
	}
	e.cache.Update(from, ds[len(ds)-1])
	return nil
}

// Generate assembles, mines, signs and appends the node's next block
// over the given body. It returns the block together with the digest
// H(b^h) that must be announced to every neighbor.
//
// Generate must not be called concurrently with itself on the same
// engine (sequence numbers are assigned from the store tail); other
// engine methods may run concurrently with it.
func (e *Engine) Generate(t uint32, body []byte) (*block.Block, digest.Digest, error) {
	var prev digest.Digest
	seq := uint32(e.store.Len())
	if latest := e.store.Latest(); latest != nil {
		prev = latest.Header.Hash()
	}
	// Neighbor set and Δ refs go through engine scratch: Build copies
	// both out, so the scratch is free for the next Generate. This keeps
	// block generation allocation-flat for the simulator's hot loop.
	e.nbScratch = e.topo.AppendNeighbors(e.nbScratch[:0], e.key.ID)
	e.refScratch = e.cache.AppendSnapshot(e.refScratch[:0], e.key.ID, prev, e.nbScratch)
	b, err := e.params.Build(e.key, t, seq, body, e.refScratch)
	if err != nil {
		return nil, digest.Digest{}, fmt.Errorf("core: generating block %v#%d: %w", e.key.ID, seq, err)
	}
	if err := e.store.Append(b); err != nil {
		return nil, digest.Digest{}, fmt.Errorf("core: appending block: %w", err)
	}
	return b, b.Header.Hash(), nil
}

// Validator constructs a PoP validator bound to this node's trust store.
func (e *Engine) Validator(gamma int, ring *identity.Ring, opts ...func(*ValidatorConfig)) (*Validator, error) {
	cfg := ValidatorConfig{
		Self:        e.key.ID,
		Gamma:       gamma,
		Params:      e.params,
		Ring:        ring,
		Topo:        e.topo,
		Trust:       e.trust,
		VerifyCache: e.vcache,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewValidator(cfg)
}

// Responder constructs this node's Algorithm 4 responder.
func (e *Engine) Responder() *Responder {
	return NewResponder(e.store)
}
