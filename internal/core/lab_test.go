package core

import (
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
)

// lab is an in-process 2LDAG network used throughout the core tests:
// one Engine per topology node, a shared key ring and a StoreFetcher.
type lab struct {
	t       *testing.T
	topo    *topology.Graph
	params  block.Params
	ring    *identity.Ring
	engines map[identity.NodeID]*Engine
	fetcher *StoreFetcher
	slot    uint32
}

func newLab(t *testing.T, topo *topology.Graph) *lab {
	t.Helper()
	params := block.DefaultParams()
	params.Difficulty = 2 // fast unit tests
	l := &lab{
		t:       t,
		topo:    topo,
		params:  params,
		engines: make(map[identity.NodeID]*Engine),
	}
	var pairs []identity.KeyPair
	stores := make(map[identity.NodeID]*ledger.Store)
	for _, id := range topo.Nodes() {
		key := identity.Deterministic(id, 1000)
		pairs = append(pairs, key)
		eng, err := NewEngine(key, params, topo)
		if err != nil {
			t.Fatalf("NewEngine(%v): %v", id, err)
		}
		l.engines[id] = eng
		stores[id] = eng.Store()
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		t.Fatal(err)
	}
	l.ring = ring
	l.fetcher = NewStoreFetcher(stores)
	return l
}

// generate makes node id produce its next block and announces the digest
// to every neighbor.
func (l *lab) generate(id identity.NodeID) *block.Block {
	l.t.Helper()
	eng := l.engines[id]
	body := []byte(fmt.Sprintf("body %v slot %d", id, l.slot))
	b, d, err := eng.Generate(l.slot, body)
	if err != nil {
		l.t.Fatalf("Generate(%v): %v", id, err)
	}
	for _, nb := range l.topo.Neighbors(id) {
		if err := l.engines[nb].OnDigest(id, d); err != nil {
			l.t.Fatalf("OnDigest(%v <- %v): %v", nb, id, err)
		}
	}
	return b
}

// runSlot advances one time slot, generating blocks in the given order
// (order matters: later generators see earlier announcements).
func (l *lab) runSlot(order ...identity.NodeID) {
	l.t.Helper()
	l.slot++
	for _, id := range order {
		l.generate(id)
	}
}

// genesisAll generates a genesis block per node, in ID order.
func (l *lab) genesisAll() {
	l.t.Helper()
	for _, id := range l.topo.Nodes() {
		l.generate(id)
	}
}

// validator builds a PoP validator owned by node id.
func (l *lab) validator(id identity.NodeID, gamma int, opts ...func(*ValidatorConfig)) *Validator {
	l.t.Helper()
	v, err := l.engines[id].Validator(gamma, l.ring, opts...)
	if err != nil {
		l.t.Fatalf("Validator(%v): %v", id, err)
	}
	return v
}
