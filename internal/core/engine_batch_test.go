package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// TestOnDigestBatchMatchesSingletons pins the batching contract: one
// OnDigestBatch call leaves A_i exactly as the equivalent sequence of
// OnDigest calls, including last-wins ordering for repeated senders.
func TestOnDigestBatchMatchesSingletons(t *testing.T) {
	g := topology.PaperFig4()
	batched := newLab(t, g)
	single := newLab(t, g)

	// Node 1's neighbors announce twice each; the second announcement
	// must win on both paths.
	recv := identity.NodeID(1)
	var from []identity.NodeID
	var ds []digest.Digest
	for round := 0; round < 2; round++ {
		for _, nb := range g.Neighbors(recv) {
			from = append(from, nb)
			ds = append(ds, digest.Sum([]byte(fmt.Sprintf("d %v #%d", nb, round))))
		}
	}
	if err := batched.engines[recv].OnDigestBatch(from, ds); err != nil {
		t.Fatalf("OnDigestBatch: %v", err)
	}
	for i := range from {
		if err := single.engines[recv].OnDigest(from[i], ds[i]); err != nil {
			t.Fatalf("OnDigest: %v", err)
		}
	}
	for _, nb := range g.Neighbors(recv) {
		bd, bok := batched.engines[recv].Cache().Get(nb)
		sd, sok := single.engines[recv].Cache().Get(nb)
		if !bok || !sok || bd != sd {
			t.Fatalf("cache for %v diverges: batched (%v,%v) singleton (%v,%v)", nb, bd, bok, sd, sok)
		}
		if want := digest.Sum([]byte(fmt.Sprintf("d %v #1", nb))); bd != want {
			t.Fatalf("cache for %v = %v, want the later round's digest", nb, bd)
		}
	}
}

// TestOnDigestsFromMatchesRepeatedSenderBatch pins the single-sender
// fast path (one neighbor check, one cache update): it must leave A_i
// exactly as OnDigestBatch with a repeated sender column, and reject
// non-neighbors identically.
func TestOnDigestsFromMatchesRepeatedSenderBatch(t *testing.T) {
	g := topology.PaperFig4()
	fast := newLab(t, g)
	slow := newLab(t, g)
	recv := identity.NodeID(1)
	from := g.Neighbors(recv)[0]
	ds := []digest.Digest{
		digest.Sum([]byte("one")),
		digest.Sum([]byte("two")),
		digest.Sum([]byte("three")),
	}
	if err := fast.engines[recv].OnDigestsFrom(from, ds); err != nil {
		t.Fatalf("OnDigestsFrom: %v", err)
	}
	col := []identity.NodeID{from, from, from}
	if err := slow.engines[recv].OnDigestBatch(col, ds); err != nil {
		t.Fatalf("OnDigestBatch: %v", err)
	}
	fd, fok := fast.engines[recv].Cache().Get(from)
	sd, sok := slow.engines[recv].Cache().Get(from)
	if !fok || !sok || fd != sd || fd != ds[len(ds)-1] {
		t.Fatalf("paths diverge: fast (%v,%v) batch (%v,%v), want newest digest", fd, fok, sd, sok)
	}
	var stranger identity.NodeID
	for _, id := range g.Nodes() {
		if id != recv && !g.IsNeighbor(recv, id) {
			stranger = id
			break
		}
	}
	if err := fast.engines[recv].OnDigestsFrom(stranger, ds); !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("want ErrNotNeighbor, got %v", err)
	}
	if err := fast.engines[recv].OnDigestsFrom(from, nil); err != nil {
		t.Fatalf("empty run must be a no-op, got %v", err)
	}
}

// TestOnDigestBatchRejections pins the all-or-nothing contract: a
// non-neighbor sender or mismatched slice lengths reject the whole
// batch before any entry lands.
func TestOnDigestBatchRejections(t *testing.T) {
	g := topology.PaperFig4()
	l := newLab(t, g)
	recv := identity.NodeID(1)
	nb := g.Neighbors(recv)[0]

	var stranger identity.NodeID
	for _, id := range g.Nodes() {
		if id != recv && !g.IsNeighbor(recv, id) {
			stranger = id
			break
		}
	}
	good := digest.Sum([]byte("good"))
	err := l.engines[recv].OnDigestBatch(
		[]identity.NodeID{nb, stranger},
		[]digest.Digest{good, digest.Sum([]byte("bad"))},
	)
	if !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("want ErrNotNeighbor, got %v", err)
	}
	if _, ok := l.engines[recv].Cache().Get(nb); ok {
		t.Fatal("rejected batch leaked a cache entry (must be all-or-nothing)")
	}
	if err := l.engines[recv].OnDigestBatch([]identity.NodeID{nb}, nil); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
}

// TestConcurrentBatchIngest exercises the batched delivery path the
// way the parallel simulator drives it — one goroutine per receiving
// engine, plus concurrent singleton announcements racing a batch on
// the same engine — and relies on -race to flag unsynchronized cache
// access.
func TestConcurrentBatchIngest(t *testing.T) {
	g := topology.PaperFig4()
	l := newLab(t, g)
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, recv := range g.Nodes() {
			nbs := g.Neighbors(recv)
			from := make([]identity.NodeID, len(nbs))
			ds := make([]digest.Digest, len(nbs))
			for i, nb := range nbs {
				from[i] = nb
				ds[i] = digest.Sum([]byte(fmt.Sprintf("r%d %v->%v", round, nb, recv)))
			}
			wg.Add(2)
			go func(recv identity.NodeID, from []identity.NodeID, ds []digest.Digest) {
				defer wg.Done()
				if err := l.engines[recv].OnDigestBatch(from, ds); err != nil {
					t.Errorf("OnDigestBatch(%v): %v", recv, err)
				}
			}(recv, from, ds)
			go func(recv, nb identity.NodeID, d digest.Digest) {
				defer wg.Done()
				if err := l.engines[recv].OnDigest(nb, d); err != nil {
					t.Errorf("OnDigest(%v): %v", recv, err)
				}
			}(recv, nbs[0], ds[0])
		}
	}
	wg.Wait()
	for _, recv := range g.Nodes() {
		if got, want := l.engines[recv].Cache().Len(), len(g.Neighbors(recv)); got != want {
			t.Fatalf("node %v cache holds %d entries, want %d", recv, got, want)
		}
	}
}
