package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
)

// StoreFetcher is an in-process Fetcher resolving requests directly
// against a set of node stores. It is the honest transport used by
// single-process deployments, tests and the simulator; malicious
// behaviors and cost accounting are layered on via the Intercept hooks.
type StoreFetcher struct {
	mu     sync.RWMutex
	stores map[identity.NodeID]*ledger.Store

	// InterceptChild, when non-nil, may rewrite or suppress a child
	// reply before the validator sees it. It receives the responder,
	// the target digest and the honest answer; returning an error
	// simulates a timeout or refusal.
	InterceptChild func(j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error)
	// InterceptBlock is the analogous hook for full-block retrievals.
	InterceptBlock func(ref block.Ref, b *block.Block, err error) (*block.Block, error)
}

var _ Fetcher = (*StoreFetcher)(nil)

// NewStoreFetcher builds a fetcher over the given stores.
func NewStoreFetcher(stores map[identity.NodeID]*ledger.Store) *StoreFetcher {
	cp := make(map[identity.NodeID]*ledger.Store, len(stores))
	for id, s := range stores {
		cp[id] = s
	}
	return &StoreFetcher{stores: cp}
}

// Register adds or replaces a node's store (dynamic membership).
func (f *StoreFetcher) Register(id identity.NodeID, s *ledger.Store) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores[id] = s
}

// Remove drops a node's store.
func (f *StoreFetcher) Remove(id identity.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.stores, id)
}

func (f *StoreFetcher) store(id identity.NodeID) (*ledger.Store, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.stores[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %v unreachable", ErrTimeout, id)
	}
	return s, nil
}

// RequestChild implements Fetcher by running Algorithm 4 in-process.
func (f *StoreFetcher) RequestChild(ctx context.Context, j identity.NodeID, target digest.Digest) (*block.Header, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var h *block.Header
	s, err := f.store(j)
	if err == nil {
		h, err = NewResponder(s).ChildFor(target)
	}
	if f.InterceptChild != nil {
		return f.InterceptChild(j, target, h, err)
	}
	return h, err
}

// FetchBlock implements Fetcher.
func (f *StoreFetcher) FetchBlock(ctx context.Context, ref block.Ref) (*block.Block, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var b *block.Block
	s, err := f.store(ref.Node)
	if err == nil {
		b, err = NewResponder(s).Block(ref)
	}
	if f.InterceptBlock != nil {
		return f.InterceptBlock(ref, b, err)
	}
	return b, err
}
