package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// inSet builds an R_i membership predicate.
func inSet(ids ...identity.NodeID) func(identity.NodeID) bool {
	m := make(map[identity.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return func(id identity.NodeID) bool { return m[id] }
}

// TestWeightPaperFig4FirstStep replays the worked example of Sec. IV-A:
// verifying B1 with R = {B}, the weights of B's neighbors must be
// w_A = 1/2, w_C = 1/3, w_D = 1/4.
func TestWeightPaperFig4FirstStep(t *testing.T) {
	g := topology.PaperFig4() // A=0, B=1, C=2, D=3, E=4
	r := inSet(1)
	cases := []struct {
		node identity.NodeID
		want float64
	}{
		{0, 0.5},
		{2, 1.0 / 3.0},
		{3, 0.25},
	}
	for _, c := range cases {
		if got := Weight(g, r, c.node); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Weight(%v) = %v, want %v", c.node, got, c.want)
		}
	}
	st := &SelectionState{Current: 1, Candidates: []identity.NodeID{0, 2, 3}, InVouchers: r, Topo: g}
	if got := (WPS{}).Next(st); got != 3 {
		t.Fatalf("WPS first step selected %v, want D (3)", got)
	}
}

// TestWeightPaperFig4SecondStep continues the example: after adding D,
// R = {B, D}; among D's neighbors, w_B = 1/2, w_C = 2/3, w_E = 1/2, and
// E must win the tie because B is already in R_i.
func TestWeightPaperFig4SecondStep(t *testing.T) {
	g := topology.PaperFig4()
	r := inSet(1, 3)
	if got := Weight(g, r, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("w_B = %v, want 0.5", got)
	}
	if got := Weight(g, r, 2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("w_C = %v, want 2/3", got)
	}
	if got := Weight(g, r, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("w_E = %v, want 0.5", got)
	}
	st := &SelectionState{Current: 3, Candidates: []identity.NodeID{1, 2, 4}, InVouchers: r, Topo: g}
	if got := (WPS{}).Next(st); got != 4 {
		t.Fatalf("WPS second step selected %v, want E (4)", got)
	}
}

func TestWPSSingleCandidate(t *testing.T) {
	g := topology.PaperFig4()
	st := &SelectionState{Candidates: []identity.NodeID{2}, InVouchers: inSet(), Topo: g}
	if got := (WPS{}).Next(st); got != 2 {
		t.Fatalf("single candidate not returned: %v", got)
	}
}

func TestWPSTieAllOutsideR(t *testing.T) {
	// Ring: every node has degree 2; with empty R all weights are 0, so
	// any candidate is legal (lines 8-10). Deterministic pick = lowest.
	g, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	st := &SelectionState{Candidates: []identity.NodeID{5, 1}, InVouchers: inSet(), Topo: g}
	if got := (WPS{}).Next(st); got != 1 {
		t.Fatalf("deterministic tie-break = %v, want 1", got)
	}
	// With an RNG the result must still come from the tie set.
	st.RNG = rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		got := (WPS{}).Next(st)
		if got != 1 && got != 5 {
			t.Fatalf("RNG pick %v outside tie set", got)
		}
	}
}

func TestWPSTiePrefersNonVoucher(t *testing.T) {
	// Line topology 0-1-2-3-4-5. Candidates 1 and 4 for current node
	// with R = {1, 2}: w_1 = |{0,1,2} ∩ R|/3 = 2/3 ... craft instead a
	// symmetric case: complete graph K4, R = {0}. All candidates have
	// closed neighborhood = V, weight 1/4... all equal; candidates
	// {0-excluded}; include one candidate in R to check preference.
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	r := inSet(1)
	st := &SelectionState{Candidates: []identity.NodeID{1, 2, 3}, InVouchers: r, Topo: g}
	// Weights all equal (closed neighborhoods identical in K4), so the
	// tie-break must avoid node 1 ∈ R.
	got := (WPS{}).Next(st)
	if got == 1 {
		t.Fatal("WPS tie-break picked a node already in R_i")
	}
}

func TestRandomSelectionStaysInCandidates(t *testing.T) {
	g := topology.PaperFig4()
	st := &SelectionState{
		Candidates: []identity.NodeID{0, 2, 3},
		InVouchers: inSet(),
		Topo:       g,
		RNG:        rand.New(rand.NewSource(9)),
	}
	seen := make(map[identity.NodeID]bool)
	for i := 0; i < 50; i++ {
		got := (RandomSelection{}).Next(st)
		if got != 0 && got != 2 && got != 3 {
			t.Fatalf("pick %v outside candidates", got)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatal("RandomSelection never varied across 50 draws")
	}
}

func TestShortestPathFirstPrefersCloserNode(t *testing.T) {
	// Line 0-1-2-3-4; validator is node 0. Candidates 1 and 3: node 1
	// is closer to the validator and must win regardless of weights.
	g, err := topology.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	st := &SelectionState{
		Validator:  0,
		Current:    2,
		Candidates: []identity.NodeID{3, 1},
		InVouchers: inSet(),
		Topo:       g,
	}
	if got := (ShortestPathFirst{}).Next(st); got != 1 {
		t.Fatalf("ShortestPathFirst = %v, want 1", got)
	}
}

func TestWeightCountsSelfInclusion(t *testing.T) {
	// Candidate already in R contributes itself to the numerator.
	g := topology.PaperFig4()
	w := Weight(g, inSet(0), 0) // A in R; N(A)={B}; |{A}|/2
	if math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("self-inclusion weight = %v, want 0.5", w)
	}
}
