package block

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/pow"
)

func testParams() Params {
	p := DefaultParams()
	p.Difficulty = 4 // keep unit tests fast
	return p
}

func buildTestBlock(t *testing.T, key identity.KeyPair, seq uint32, body []byte, digests []DigestRef) *Block {
	t.Helper()
	b, err := testParams().Build(key, seq, seq, body, digests)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return b
}

func TestBuildAndValidate(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	b := buildTestBlock(t, key, 0, []byte("genesis sensor data"), []DigestRef{{Node: 1}})
	if err := testParams().Validate(b, ring); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateDetectsBodyTamper(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	b := buildTestBlock(t, key, 0, []byte("original data"), []DigestRef{{Node: 1}})
	// Sealed blocks are immutable; a tamperer works on a copy, which
	// carries no body-root memo and is re-hashed from scratch.
	tampered := b.Clone()
	tampered.Body[0] ^= 0xFF
	if err := testParams().Validate(tampered, ring); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("want ErrRootMismatch, got %v", err)
	}
}

func TestValidateDetectsHeaderTamper(t *testing.T) {
	key := identity.Deterministic(1, 7)
	other := identity.Deterministic(2, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key, other})
	b := buildTestBlock(t, key, 3, []byte("data"), []DigestRef{
		{Node: 1, Digest: digest.Sum([]byte("prev"))},
		{Node: 2, Digest: digest.Sum([]byte("neighbor"))},
	})

	// A man-in-the-middle flips one digest in Δ. The PoW preimage
	// changes, so either the PoW or the signature check must fail.
	tampered := b.Clone()
	tampered.Header.Digests[1].Digest = digest.Sum([]byte("forged"))
	if err := testParams().Validate(tampered, ring); err == nil {
		t.Fatal("tampered Δ accepted")
	}

	// Changing the claimed time must break the signature.
	tampered = b.Clone()
	tampered.Header.Time++
	if err := testParams().ValidateHeader(&tampered.Header, ring); err == nil {
		t.Fatal("tampered time accepted")
	}
}

func TestValidateRejectsWrongSigner(t *testing.T) {
	key := identity.Deterministic(1, 7)
	imposter := identity.Deterministic(2, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key, imposter})
	b := buildTestBlock(t, key, 1, []byte("data"), []DigestRef{{Node: 1}})
	b.Header.Origin = 2 // claim another origin
	if err := testParams().ValidateHeader(&b.Header, ring); err == nil {
		t.Fatal("origin spoofing accepted")
	}
}

func TestValidateVersion(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	b := buildTestBlock(t, key, 0, []byte("d"), []DigestRef{{Node: 1}})
	p := testParams()
	p.Version = 2
	if err := p.Validate(b, ring); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestValidatePow(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	b := buildTestBlock(t, key, 0, []byte("d"), []DigestRef{{Node: 1}})
	p.Difficulty = 30 // require far more work than was done
	if err := p.ValidateHeader(&b.Header, ring); !errors.Is(err, ErrPowUnsatisfied) {
		t.Fatalf("want ErrPowUnsatisfied, got %v", err)
	}
}

func TestBuildBodyTooLarge(t *testing.T) {
	key := identity.Deterministic(1, 7)
	p := testParams()
	p.MaxBodyBytes = 4
	if _, err := p.Build(key, 0, 0, []byte("too large"), nil); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("want ErrBodyTooLarge, got %v", err)
	}
}

func TestDigestOfAndContains(t *testing.T) {
	key := identity.Deterministic(1, 7)
	prev := digest.Sum([]byte("prev"))
	nb := digest.Sum([]byte("neighbor 5"))
	b := buildTestBlock(t, key, 2, []byte("d"), []DigestRef{
		{Node: 1, Digest: prev},
		{Node: 5, Digest: nb},
	})
	h := &b.Header
	if got, ok := h.DigestOf(5); !ok || got != nb {
		t.Fatal("DigestOf(5) wrong")
	}
	if _, ok := h.DigestOf(9); ok {
		t.Fatal("DigestOf(9) should be absent")
	}
	if !h.Contains(prev) || !h.Contains(nb) {
		t.Fatal("Contains misses stored digests")
	}
	if h.Contains(digest.Sum([]byte("other"))) {
		t.Fatal("Contains reports absent digest")
	}
	if h.Contains(digest.Digest{}) {
		t.Fatal("Contains must never match the zero digest")
	}
	if h.PrevDigest() != prev {
		t.Fatal("PrevDigest wrong")
	}
}

func TestGenesisDigestOfSkipsZero(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 0, []byte("genesis"), []DigestRef{{Node: 1}})
	if _, ok := b.Header.DigestOf(1); ok {
		t.Fatal("genesis zero placeholder must not be reported")
	}
	if !b.Header.PrevDigest().IsZero() {
		t.Fatal("genesis PrevDigest should be zero")
	}
}

func TestHashCoversSignature(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 1, []byte("d"), []DigestRef{{Node: 1}})
	h1 := b.Header.Hash()
	mut := b.Header.Clone()
	mut.Signature[0] ^= 0x01
	if mut.Hash() == h1 {
		t.Fatal("header hash must cover the signature")
	}
}

func TestCloneIsDeep(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 1, []byte("body"), []DigestRef{{Node: 1, Digest: digest.Sum([]byte("p"))}})
	c := b.Clone()
	c.Body[0] ^= 0xFF
	c.Header.Digests[0].Digest = digest.Digest{}
	c.Header.Signature[0] ^= 0xFF
	if b.Body[0] == c.Body[0] || b.Header.Digests[0].Digest.IsZero() || b.Header.Signature[0] == c.Header.Signature[0] {
		t.Fatal("Clone shares memory with original")
	}
}

func TestBuildDifferentNoncesForDifferentContent(t *testing.T) {
	// Mining must actually depend on Δ: two blocks with different Δ
	// almost surely mine different digests.
	key := identity.Deterministic(1, 7)
	a := buildTestBlock(t, key, 1, []byte("d"), []DigestRef{{Node: 1, Digest: digest.Sum([]byte("x"))}})
	b := buildTestBlock(t, key, 1, []byte("d"), []DigestRef{{Node: 1, Digest: digest.Sum([]byte("y"))}})
	if a.Header.Hash() == b.Header.Hash() {
		t.Fatal("distinct Δ produced identical headers")
	}
}

func TestQuickTamperAnyHeaderFieldDetected(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	base := buildTestBlock(t, key, 5, []byte("quick body"), []DigestRef{
		{Node: 1, Digest: digest.Sum([]byte("prev"))},
		{Node: 2, Digest: digest.Sum([]byte("n2"))},
	})
	f := func(field uint8, delta uint32) bool {
		if delta == 0 {
			delta = 1
		}
		h := base.Header.Clone()
		switch field % 5 {
		case 0:
			h.Time += delta
		case 1:
			h.Seq += delta
		case 2:
			h.Root[delta%digest.Size] ^= byte(delta | 1)
		case 3:
			h.Digests[delta%2].Digest[0] ^= byte(delta | 1)
		case 4:
			h.Nonce += delta
		}
		return p.ValidateHeader(h, ring) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Node: 3, Seq: 7}
	if r.String() != "n3#7" {
		t.Fatalf("Ref.String = %q", r.String())
	}
	key := identity.Deterministic(3, 1)
	b := buildTestBlock(t, key, 7, []byte("d"), []DigestRef{{Node: 3}})
	if b.Header.Ref() != r {
		t.Fatal("Header.Ref mismatch")
	}
}

func TestPowDifficultyZeroStillBuilds(t *testing.T) {
	p := testParams()
	p.Difficulty = 0
	key := identity.Deterministic(1, 7)
	b, err := p.Build(key, 0, 0, []byte("d"), []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !pow.VerifyPrefix(b.Header.powPrefix(), b.Header.Nonce, 0) {
		t.Fatal("zero-difficulty block should trivially verify")
	}
}
