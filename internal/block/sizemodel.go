package block

// SizeModel is the paper's analytic cost model (Sec. III-B, Eq. 2–3 and
// the Sec. VI settings). All fields are in bits. The simulator accounts
// storage and communication with this model so reproduced curves follow
// the paper's arithmetic; the live runtime's real wire sizes are close
// but carry Ed25519's 512-bit signatures and bookkeeping fields.
type SizeModel struct {
	FV int // Version field (f_v)
	FT int // Time field (f_t)
	FH int // hash/digest size (f_H), also Root and each Δ entry
	FN int // Nonce field (f_n)
	FS int // Signature field (f_s)
	C  int // body payload size (C), bits
}

// DefaultSizeModel returns the Sec. VI settings: f_v=f_t=f_n=32,
// f_H=f_s=256 bits, with the given body size in bytes.
func DefaultSizeModel(bodyBytes int) SizeModel {
	return SizeModel{FV: 32, FT: 32, FH: 256, FN: 32, FS: 256, C: bodyBytes * 8}
}

// ConstantBits is f_c = f_v + f_t + f_H + f_n + f_s (Eq. 3).
func (m SizeModel) ConstantBits() int {
	return m.FV + m.FT + m.FH + m.FN + m.FS
}

// HeaderBits is the header size for a node with n neighbors:
// f_c + f_H·(n+1), per Fig. 2.
func (m SizeModel) HeaderBits(neighbors int) int {
	return m.ConstantBits() + m.FH*(neighbors+1)
}

// BlockBits is the full block size f_i = f_c + f_H·(n+1) + C (Eq. 2).
func (m SizeModel) BlockBits(neighbors int) int {
	return m.HeaderBits(neighbors) + m.C
}

// DigestBits is the size of one transmitted digest (f_H).
func (m SizeModel) DigestBits() int {
	return m.FH
}

// BodyBits returns C.
func (m SizeModel) BodyBits() int {
	return m.C
}
