package block

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func randomHeader(r *rand.Rand) *Header {
	nRefs := r.Intn(6)
	h := &Header{
		Version: r.Uint32(),
		Time:    r.Uint32(),
		Origin:  identity.NodeID(r.Uint32()),
		Seq:     r.Uint32(),
		Nonce:   r.Uint32(),
	}
	r.Read(h.Root[:])
	for i := 0; i < nRefs; i++ {
		var ref DigestRef
		ref.Node = identity.NodeID(r.Uint32())
		r.Read(ref.Digest[:])
		h.Digests = append(h.Digests, ref)
	}
	h.Signature = make([]byte, identity.SignatureSize)
	r.Read(h.Signature)
	return h
}

func headersEqual(a, b *Header) bool {
	if a.Version != b.Version || a.Time != b.Time || a.Origin != b.Origin ||
		a.Seq != b.Seq || a.Root != b.Root || a.Nonce != b.Nonce ||
		len(a.Digests) != len(b.Digests) || string(a.Signature) != string(b.Signature) {
		return false
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			return false
		}
	}
	return true
}

func TestHeaderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		h := randomHeader(r)
		enc := EncodeHeader(h)
		if len(enc) != h.WireSize() {
			t.Fatalf("WireSize %d != encoded %d", h.WireSize(), len(enc))
		}
		got, err := DecodeHeader(enc)
		if err != nil {
			t.Fatalf("DecodeHeader: %v", err)
		}
		if !headersEqual(h, got) {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		b := &Block{Header: *randomHeader(r), Body: make([]byte, r.Intn(500))}
		r.Read(b.Body)
		enc := Encode(b)
		if len(enc) != b.WireSize() {
			t.Fatalf("WireSize %d != encoded %d", b.WireSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !headersEqual(&b.Header, &got.Header) || string(b.Body) != string(got.Body) {
			t.Fatal("block round trip mismatch")
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := randomHeader(r)
	enc := EncodeHeader(h)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeHeader(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	h := randomHeader(r)
	enc := append(EncodeHeader(h), 0xAA)
	if _, err := DecodeHeader(enc); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
	b := &Block{Header: *h, Body: []byte("abc")}
	enc2 := append(Encode(b), 0x01)
	if _, err := Decode(enc2); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing for block, got %v", err)
	}
}

func TestDecodeHostileCounts(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := randomHeader(r)
	h.Digests = nil
	enc := EncodeHeader(h)
	// Digest-ref count lives after version/time/origin/seq/root.
	off := 4*4 + digest.Size
	for _, hostile := range []uint32{MaxDigestRefs + 1, 1 << 30, 0xFFFFFFFF} {
		mut := append([]byte(nil), enc...)
		mut[off] = byte(hostile)
		mut[off+1] = byte(hostile >> 8)
		mut[off+2] = byte(hostile >> 16)
		mut[off+3] = byte(hostile >> 24)
		if _, err := DecodeHeader(mut); err == nil {
			t.Fatalf("hostile digest count %d accepted", hostile)
		}
	}
}

func TestDecodeEmptyInput(t *testing.T) {
	if _, err := DecodeHeader(nil); err == nil {
		t.Fatal("empty header accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty block accepted")
	}
}

func TestDecodedHeaderHashStable(t *testing.T) {
	// Hash must be computable identically before and after a round trip.
	r := rand.New(rand.NewSource(6))
	h := randomHeader(r)
	got, err := DecodeHeader(EncodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != h.Hash() {
		t.Fatal("hash changed across codec round trip")
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHeader(r)
		got, err := DecodeHeader(EncodeHeader(h))
		return err == nil && headersEqual(h, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		// Hostile input may fail, but must never panic.
		_, _ = DecodeHeader(raw)
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeHeader(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	h := randomHeader(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeHeader(h)
	}
}

func BenchmarkDecodeHeader(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	enc := EncodeHeader(randomHeader(r))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeHeader(enc); err != nil {
			b.Fatal(err)
		}
	}
}
