package block

import (
	"bytes"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
)

func TestSampleProofRoundTrip(t *testing.T) {
	p := testParams()
	p.LeafSize = 64
	key := identity.Deterministic(1, 9)
	body := bytes.Repeat([]byte("sensor-frame-"), 40) // several leaves
	b, err := p.Build(key, 1, 1, body, []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	leaves := (len(body) + p.LeafSize - 1) / p.LeafSize
	for i := 0; i < leaves; i++ {
		sp, err := p.ProveSample(b, i)
		if err != nil {
			t.Fatalf("ProveSample(%d): %v", i, err)
		}
		if err := p.VerifySample(&b.Header, sp); err != nil {
			t.Fatalf("VerifySample(%d): %v", i, err)
		}
	}
}

func TestSampleProofRejectsTamperedLeaf(t *testing.T) {
	p := testParams()
	p.LeafSize = 32
	key := identity.Deterministic(1, 9)
	b, err := p.Build(key, 1, 1, bytes.Repeat([]byte{0xAB}, 100), []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.ProveSample(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp.Leaf[0] ^= 0xFF
	if err := p.VerifySample(&b.Header, sp); err == nil {
		t.Fatal("tampered leaf verified")
	}
}

func TestSampleProofRejectsWrongHeader(t *testing.T) {
	p := testParams()
	p.LeafSize = 32
	key := identity.Deterministic(1, 9)
	b1, err := p.Build(key, 1, 1, bytes.Repeat([]byte{1}, 64), []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Build(key, 2, 2, bytes.Repeat([]byte{2}, 64), []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.ProveSample(b1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifySample(&b2.Header, sp); err == nil {
		t.Fatal("proof verified against the wrong header")
	}
}

func TestSampleProofBadIndex(t *testing.T) {
	p := testParams()
	key := identity.Deterministic(1, 9)
	b, err := p.Build(key, 1, 1, []byte("tiny"), []DigestRef{{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProveSample(b, 5); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	empty := &Block{Header: b.Header}
	if _, err := p.ProveSample(empty, 0); err == nil {
		t.Fatal("empty body accepted")
	}
}
