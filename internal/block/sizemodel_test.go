package block

import (
	"testing"
	"testing/quick"
)

func TestDefaultSizeModelPaperConstants(t *testing.T) {
	m := DefaultSizeModel(500_000) // C = 0.5 MB
	if m.FV != 32 || m.FT != 32 || m.FN != 32 {
		t.Fatal("f_v, f_t, f_n must be 32 bits")
	}
	if m.FH != 256 || m.FS != 256 {
		t.Fatal("f_H and f_s must be 256 bits")
	}
	// f_c = 32+32+256+32+256 = 608 bits (Eq. 3).
	if m.ConstantBits() != 608 {
		t.Fatalf("f_c = %d, want 608", m.ConstantBits())
	}
	if m.C != 4_000_000 {
		t.Fatalf("C = %d bits, want 4e6", m.C)
	}
}

func TestHeaderAndBlockBits(t *testing.T) {
	m := DefaultSizeModel(100)
	// Fig. 2: header = f_c + 256*(n+1).
	for n := 0; n < 10; n++ {
		wantHeader := 608 + 256*(n+1)
		if got := m.HeaderBits(n); got != wantHeader {
			t.Fatalf("HeaderBits(%d) = %d, want %d", n, got, wantHeader)
		}
		if got := m.BlockBits(n); got != wantHeader+800 {
			t.Fatalf("BlockBits(%d) = %d, want %d", n, got, wantHeader+800)
		}
	}
}

func TestDigestAndBodyBits(t *testing.T) {
	m := DefaultSizeModel(10)
	if m.DigestBits() != 256 {
		t.Fatal("digest must be 256 bits")
	}
	if m.BodyBits() != 80 {
		t.Fatal("BodyBits must equal C")
	}
}

func TestQuickBlockBitsDecomposition(t *testing.T) {
	// Eq. 2: f_i - C - f_H*(n+1) must always equal f_c.
	f := func(bodyBytes uint16, n uint8) bool {
		m := DefaultSizeModel(int(bodyBytes))
		nn := int(n % 64)
		return m.BlockBits(nn)-m.C-m.FH*(nn+1) == m.ConstantBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
