package block

import (
	"testing"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Hot-path micro-benchmarks (see BENCH_hotpath.json at the repo root
// for tracked results). Regenerate with:
//
//	go test -run '^$' -bench 'Hotpath' -benchmem ./internal/...

func benchHeader(b *testing.B, neighbors int) *Block {
	b.Helper()
	key := identity.Deterministic(1, 7)
	refs := []DigestRef{{Node: 1}}
	for v := 2; v <= neighbors+1; v++ {
		refs = append(refs, DigestRef{Node: identity.NodeID(v), Digest: digest.Sum([]byte{byte(v)})})
	}
	p := testParams()
	p.Difficulty = 0
	blk, err := p.Build(key, 1, 1, []byte("bench body"), refs)
	if err != nil {
		b.Fatal(err)
	}
	return blk
}

// BenchmarkHotpathHeaderHashSealed measures H(b^h) on a sealed header —
// the per-audit-hop cost after memoization.
func BenchmarkHotpathHeaderHashSealed(b *testing.B) {
	blk := benchHeader(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blk.Header.Hash()
	}
}

// BenchmarkHotpathHeaderHashCold measures the unmemoized serialize+hash
// (the old per-call cost), by re-hashing a fresh clone each iteration.
func BenchmarkHotpathHeaderHashCold(b *testing.B) {
	blk := benchHeader(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blk.Header.Clone().Hash()
	}
}

// BenchmarkHotpathValidateHeaderCacheHit measures the digest-keyed
// validation cache on the hit path — the steady-state audit-hop cost.
func BenchmarkHotpathValidateHeaderCacheHit(b *testing.B) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	p.Difficulty = 0
	blk := benchHeader(b, 8)
	cache := NewVerifyCache()
	if err := p.ValidateHeaderCached(&blk.Header, ring, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ValidateHeaderCached(&blk.Header, ring, cache); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathValidateHeaderCacheMiss measures the full PoW +
// ed25519 check (the old per-hop cost, and the first-sight cost now).
func BenchmarkHotpathValidateHeaderCacheMiss(b *testing.B) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	p.Difficulty = 0
	blk := benchHeader(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ValidateHeader(&blk.Header, ring); err != nil {
			b.Fatal(err)
		}
	}
}
