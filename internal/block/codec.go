package block

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Codec limits protecting decoders from hostile inputs.
const (
	// MaxDigestRefs bounds the Δ field; a node has at most |V|-1
	// neighbors plus its own previous digest, and 2LDAG networks are
	// IoT-scale.
	MaxDigestRefs = 4096
	// MaxSignatureLen bounds the signature field.
	MaxSignatureLen = 512
	// MaxBodyLen bounds decoded body sizes (16 MiB).
	MaxBodyLen = 16 << 20
)

// Decoding errors.
var (
	ErrTruncated  = errors.New("block: truncated encoding")
	ErrOversized  = errors.New("block: field exceeds decoder limit")
	ErrTrailing   = errors.New("block: trailing bytes after encoding")
	ErrBadEncoded = errors.New("block: malformed encoding")
)

func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendDigestRefs(b []byte, refs []DigestRef) []byte {
	for _, r := range refs {
		b = appendUint32(b, uint32(r.Node))
		b = append(b, r.Digest[:]...)
	}
	return b
}

// appendHeader serializes h in full (including signature).
func appendHeader(b []byte, h *Header) []byte {
	b = appendUint32(b, h.Version)
	b = appendUint32(b, h.Time)
	b = appendUint32(b, uint32(h.Origin))
	b = appendUint32(b, h.Seq)
	b = append(b, h.Root[:]...)
	b = appendUint32(b, uint32(len(h.Digests)))
	b = appendDigestRefs(b, h.Digests)
	b = appendUint32(b, h.Nonce)
	b = appendUint32(b, uint32(len(h.Signature)))
	b = append(b, h.Signature...)
	return b
}

// EncodeHeader serializes a header to its wire form.
func EncodeHeader(h *Header) []byte {
	return appendHeader(make([]byte, 0, headerWireSize(h)), h)
}

func headerWireSize(h *Header) int {
	return 4*6 + digest.Size + len(h.Digests)*(4+digest.Size) + 4 + len(h.Signature)
}

// WireSize returns the exact number of bytes EncodeHeader produces.
func (h *Header) WireSize() int {
	return headerWireSize(h)
}

// Encode serializes a full block (header then length-prefixed body).
func Encode(b *Block) []byte {
	out := make([]byte, 0, headerWireSize(&b.Header)+4+len(b.Body))
	out = appendHeader(out, &b.Header)
	out = appendUint32(out, uint32(len(b.Body)))
	out = append(out, b.Body...)
	return out
}

// WireSize returns the exact number of bytes Encode produces.
func (b *Block) WireSize() int {
	return headerWireSize(&b.Header) + 4 + len(b.Body)
}

// reader is a bounds-checked cursor over an encoding.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uint32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) digest() (digest.Digest, error) {
	raw, err := r.bytes(digest.Size)
	if err != nil {
		return digest.Digest{}, err
	}
	var d digest.Digest
	copy(d[:], raw)
	return d, nil
}

func decodeHeader(r *reader) (*Header, error) {
	var h Header
	var err error
	if h.Version, err = r.uint32(); err != nil {
		return nil, err
	}
	if h.Time, err = r.uint32(); err != nil {
		return nil, err
	}
	origin, err := r.uint32()
	if err != nil {
		return nil, err
	}
	h.Origin = identity.NodeID(origin)
	if h.Seq, err = r.uint32(); err != nil {
		return nil, err
	}
	if h.Root, err = r.digest(); err != nil {
		return nil, err
	}
	nRefs, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if nRefs > MaxDigestRefs {
		return nil, fmt.Errorf("%w: %d digest refs", ErrOversized, nRefs)
	}
	h.Digests = make([]DigestRef, nRefs)
	for i := range h.Digests {
		node, err := r.uint32()
		if err != nil {
			return nil, err
		}
		d, err := r.digest()
		if err != nil {
			return nil, err
		}
		h.Digests[i] = DigestRef{Node: identity.NodeID(node), Digest: d}
	}
	if h.Nonce, err = r.uint32(); err != nil {
		return nil, err
	}
	sigLen, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if sigLen > MaxSignatureLen {
		return nil, fmt.Errorf("%w: signature %d bytes", ErrOversized, sigLen)
	}
	sig, err := r.bytes(int(sigLen))
	if err != nil {
		return nil, err
	}
	h.Signature = append([]byte(nil), sig...)
	return &h, nil
}

// DecodeHeader parses a header and rejects trailing bytes.
func DecodeHeader(buf []byte) (*Header, error) {
	r := &reader{buf: buf}
	h, err := decodeHeader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoded, err)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(buf)-r.off)
	}
	return h, nil
}

// Decode parses a full block and rejects trailing bytes.
func Decode(buf []byte) (*Block, error) {
	r := &reader{buf: buf}
	h, err := decodeHeader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoded, err)
	}
	bodyLen, err := r.uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoded, err)
	}
	if bodyLen > MaxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrOversized, bodyLen)
	}
	body, err := r.bytes(int(bodyLen))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoded, err)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(buf)-r.off)
	}
	return &Block{Header: *h, Body: append([]byte(nil), body...)}, nil
}
