package block

import (
	"sync"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
)

func TestBuildReturnsSealedBlock(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 0, []byte("data"), []DigestRef{{Node: 1}})
	if !b.Sealed() || !b.Header.Sealed() {
		t.Fatal("Build must return a sealed block")
	}
	root, ok := b.CachedBodyRoot(testParams().LeafSize)
	if !ok {
		t.Fatal("body root not memoized at seal time")
	}
	if root != b.Header.Root {
		t.Fatalf("memoized root %s disagrees with header root %s", root, b.Header.Root)
	}
	if _, ok := b.CachedBodyRoot(testParams().LeafSize + 1); ok {
		t.Fatal("memo must be keyed by leaf size")
	}
}

func TestHashMemoizationSurvivesCloneSealed(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 0, []byte("data"), []DigestRef{{Node: 1}})
	h1 := b.Header.Hash()

	// Clone: memo dropped, mutation re-hashes honestly.
	mut := b.Header.Clone()
	if mut.Sealed() {
		t.Fatal("Clone must drop the memoized hash")
	}
	mut.Time++
	if mut.Hash() == h1 {
		t.Fatal("mutated clone kept the stale identity")
	}

	// CloneSealed: memo carried over, still correct.
	cp := b.Header.CloneSealed()
	if !cp.Sealed() {
		t.Fatal("CloneSealed must return a sealed header")
	}
	if cp.Hash() != h1 {
		t.Fatal("CloneSealed changed the header identity")
	}
}

func TestHashMatchesUnmemoizedEncoding(t *testing.T) {
	key := identity.Deterministic(1, 7)
	b := buildTestBlock(t, key, 3, []byte("data"), []DigestRef{{Node: 1}})
	// A wire round-trip strips every memo; the freshly computed hash of
	// the decoded header must agree with the sealed original.
	decoded, err := DecodeHeader(EncodeHeader(&b.Header))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Sealed() {
		t.Fatal("decoded header must start unsealed")
	}
	if decoded.Hash() != b.Header.Hash() {
		t.Fatal("memoized hash disagrees with recomputed hash")
	}
}

func TestVerifyCacheHitSkipsRevalidation(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	b := buildTestBlock(t, key, 0, []byte("data"), []DigestRef{{Node: 1}})

	cache := NewVerifyCache()
	if err := p.ValidateHeaderCached(&b.Header, ring, cache); err != nil {
		t.Fatalf("first validation: %v", err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", cache.Len())
	}
	// Hit path must accept without touching crypto; verify by checking
	// it still accepts (and stays size-1) on repeats.
	for i := 0; i < 3; i++ {
		if err := p.ValidateHeaderCached(&b.Header, ring, cache); err != nil {
			t.Fatalf("cache hit rejected: %v", err)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d after hits, want 1", cache.Len())
	}
}

func TestVerifyCacheDoesNotCacheFailures(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	b := buildTestBlock(t, key, 0, []byte("data"), []DigestRef{{Node: 1}})

	forged := b.Header.Clone()
	forged.Signature[0] ^= 0xFF
	cache := NewVerifyCache()
	if err := p.ValidateHeaderCached(forged, ring, cache); err == nil {
		t.Fatal("forged header accepted")
	}
	if cache.Len() != 0 {
		t.Fatal("failed validation must not be cached")
	}
	// A forged header must not poison the honest header's entry: the
	// digests differ, so the honest one still validates and caches.
	if err := p.ValidateHeaderCached(&b.Header, ring, cache); err != nil {
		t.Fatalf("honest header rejected after forgery attempt: %v", err)
	}
}

func TestVerifyCacheNilDegradesGracefully(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	b := buildTestBlock(t, key, 0, []byte("data"), []DigestRef{{Node: 1}})
	if err := p.ValidateHeaderCached(&b.Header, ring, nil); err != nil {
		t.Fatalf("nil cache: %v", err)
	}
}

// TestVerifyCacheConcurrent pins -race safety of the validation cache
// under the parallel-audit pattern: many goroutines validating an
// overlapping header population against one shared cache.
func TestVerifyCacheConcurrent(t *testing.T) {
	key := identity.Deterministic(1, 7)
	ring, _ := identity.RingFor([]identity.KeyPair{key})
	p := testParams()
	var headers []*Header
	for i := 0; i < 8; i++ {
		b := buildTestBlock(t, key, uint32(i), []byte{byte(i)}, []DigestRef{{Node: 1}})
		headers = append(headers, &b.Header)
	}
	cache := NewVerifyCache()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				for _, h := range headers {
					if err := p.ValidateHeaderCached(h, ring, cache); err != nil {
						t.Errorf("validation failed: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if cache.Len() != len(headers) {
		t.Fatalf("cache len = %d, want %d", cache.Len(), len(headers))
	}
}
