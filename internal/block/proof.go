package block

import (
	"fmt"

	"github.com/twoldag/twoldag/internal/merkle"
)

// Sample proofs let a digital twin check one sensor sample against an
// already-audited header without re-downloading the block body — the
// Root field of Fig. 2 is a Merkle commitment precisely to enable this.

// SampleProof binds one body chunk to a block's Merkle root.
type SampleProof struct {
	Ref   Ref
	Leaf  []byte
	Proof merkle.Proof
}

// ProveSample builds an inclusion proof for the leafIndex-th body chunk
// of b under p's leaf size.
func (p Params) ProveSample(b *Block, leafIndex int) (*SampleProof, error) {
	tree, err := merkle.NewTreeFromBody(b.Body, p.LeafSize)
	if err != nil {
		return nil, fmt.Errorf("block: building body tree: %w", err)
	}
	proof, err := tree.Proof(leafIndex)
	if err != nil {
		return nil, fmt.Errorf("block: proving leaf %d: %w", leafIndex, err)
	}
	start := leafIndex * p.LeafSize
	end := start + p.LeafSize
	if end > len(b.Body) {
		end = len(b.Body)
	}
	return &SampleProof{
		Ref:   b.Header.Ref(),
		Leaf:  append([]byte(nil), b.Body[start:end]...),
		Proof: proof,
	}, nil
}

// VerifySample checks the proof against a (previously audited) header.
func (p Params) VerifySample(h *Header, sp *SampleProof) error {
	if h.Ref() != sp.Ref {
		return fmt.Errorf("%w: proof for %v checked against %v", ErrNoDigest, sp.Ref, h.Ref())
	}
	if err := sp.Proof.Verify(h.Root, sp.Leaf); err != nil {
		return fmt.Errorf("block: sample proof: %w", err)
	}
	return nil
}
