package merkle

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/digest"
)

func leavesOf(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestRootEmpty(t *testing.T) {
	if !Root(nil).IsZero() {
		t.Fatal("empty root should be zero digest")
	}
}

func TestRootSingleLeaf(t *testing.T) {
	got := Root(leavesOf("only"))
	want := LeafHash([]byte("only"))
	if got != want {
		t.Fatalf("single-leaf root = %s, want leaf hash %s", got, want)
	}
}

func TestRootTwoLeaves(t *testing.T) {
	l := leavesOf("a", "b")
	want := NodeHash(LeafHash([]byte("a")), LeafHash([]byte("b")))
	if got := Root(l); got != want {
		t.Fatalf("two-leaf root mismatch: %s vs %s", got, want)
	}
}

func TestRootOddPromotion(t *testing.T) {
	// Three leaves: root = H(H(a,b), c-leaf) because c is promoted.
	a, b, c := LeafHash([]byte("a")), LeafHash([]byte("b")), LeafHash([]byte("c"))
	want := NodeHash(NodeHash(a, b), c)
	if got := Root(leavesOf("a", "b", "c")); got != want {
		t.Fatalf("odd promotion root mismatch")
	}
}

func TestRootDeterministicAndOrderSensitive(t *testing.T) {
	r1 := Root(leavesOf("a", "b", "c", "d"))
	r2 := Root(leavesOf("a", "b", "c", "d"))
	r3 := Root(leavesOf("b", "a", "c", "d"))
	if r1 != r2 {
		t.Fatal("root not deterministic")
	}
	if r1 == r3 {
		t.Fatal("root insensitive to leaf order")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A leaf equal to the encoding of an interior node must not collide.
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	interior := NodeHash(a, b)
	fakeLeaf := append(append([]byte{}, a[:]...), b[:]...)
	if LeafHash(fakeLeaf) == interior {
		t.Fatal("leaf/interior domain separation broken")
	}
}

func TestRootOfBodyChunking(t *testing.T) {
	body := bytes.Repeat([]byte{0xAB}, 2500)
	r1, err := RootOfBody(body, 1000)
	if err != nil {
		t.Fatalf("RootOfBody: %v", err)
	}
	want := Root([][]byte{body[:1000], body[1000:2000], body[2000:]})
	if r1 != want {
		t.Fatal("RootOfBody chunking mismatch")
	}
	if _, err := RootOfBody(body, 0); err == nil {
		t.Fatal("expected error on zero leaf size")
	}
}

func TestRootOfBodyEmpty(t *testing.T) {
	r, err := RootOfBody(nil, 1024)
	if err != nil {
		t.Fatalf("RootOfBody(nil): %v", err)
	}
	if !r.IsZero() {
		t.Fatal("empty body should yield zero root")
	}
}

func TestNewTreeErrors(t *testing.T) {
	if _, err := NewTree(nil); err == nil {
		t.Fatal("NewTree(nil) should fail")
	}
	if _, err := NewTreeFromBody(nil, 64); err == nil {
		t.Fatal("NewTreeFromBody(nil) should fail")
	}
	if _, err := NewTreeFromBody([]byte("x"), -1); err == nil {
		t.Fatal("NewTreeFromBody with bad leaf size should fail")
	}
}

func TestTreeRootMatchesRoot(t *testing.T) {
	for n := 1; n <= 17; n++ {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte{byte(i), byte(n)}
		}
		tr, err := NewTree(leaves)
		if err != nil {
			t.Fatalf("NewTree(%d): %v", n, err)
		}
		if tr.Root() != Root(leaves) {
			t.Fatalf("Tree root disagrees with Root for %d leaves", n)
		}
		if tr.NumLeaves() != n {
			t.Fatalf("NumLeaves = %d, want %d", tr.NumLeaves(), n)
		}
	}
}

func TestProofAllLeavesAllSizes(t *testing.T) {
	for n := 1; n <= 16; n++ {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte{byte(i * 3)}
		}
		tr, err := NewTree(leaves)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Proof(i)
			if err != nil {
				t.Fatalf("Proof(%d/%d): %v", i, n, err)
			}
			if err := p.Verify(tr.Root(), leaves[i]); err != nil {
				t.Fatalf("Verify(%d/%d): %v", i, n, err)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	leaves := leavesOf("a", "b", "c", "d", "e")
	tr, _ := NewTree(leaves)
	p, _ := tr.Proof(2)
	if err := p.Verify(tr.Root(), []byte("not-c")); err == nil {
		t.Fatal("proof verified against wrong leaf")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	leaves := leavesOf("a", "b", "c")
	tr, _ := NewTree(leaves)
	p, _ := tr.Proof(0)
	bad := digest.Sum([]byte("bad root"))
	if err := p.Verify(bad, []byte("a")); err == nil {
		t.Fatal("proof verified against wrong root")
	}
}

func TestProofIndexOutOfRange(t *testing.T) {
	tr, _ := NewTree(leavesOf("a"))
	if _, err := tr.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tr.Proof(1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestQuickProofRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		leaves := make([][]byte, n)
		r := rand.New(rand.NewSource(seed))
		for i := range leaves {
			leaves[i] = make([]byte, 1+r.Intn(40))
			r.Read(leaves[i])
		}
		tr, err := NewTree(leaves)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		p, err := tr.Proof(i)
		if err != nil {
			return false
		}
		return p.Verify(tr.Root(), leaves[i]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBodyMutationChangesRoot(t *testing.T) {
	f := func(body []byte, flip uint16) bool {
		if len(body) == 0 {
			return true
		}
		r1, err := RootOfBody(body, 64)
		if err != nil {
			return false
		}
		mut := append([]byte{}, body...)
		mut[int(flip)%len(mut)] ^= 0xFF
		r2, err := RootOfBody(mut, 64)
		if err != nil {
			return false
		}
		return r1 != r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
