package merkle

import (
	"math/rand"
	"testing"
)

// BenchmarkHotpathRootOfBody measures M(b^d) over a 0.5 MB body with
// the default 1 KiB leaves — the body-hash cost on every block build
// and on every uncached full-block validation.
func BenchmarkHotpathRootOfBody(b *testing.B) {
	body := make([]byte, 500_000)
	rand.New(rand.NewSource(1)).Read(body)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RootOfBody(body, DefaultLeafSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathRoot measures the leaf-slice entry point used by
// tests and proofs.
func BenchmarkHotpathRoot(b *testing.B) {
	leaves := make([][]byte, 512)
	rng := rand.New(rand.NewSource(2))
	for i := range leaves {
		leaves[i] = make([]byte, DefaultLeafSize)
		rng.Read(leaves[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Root(leaves)
	}
}
