// Package merkle implements the Merkle tree root function M(.) used by
// 2LDAG block headers (paper Sec. III-B, "Root" field) together with
// inclusion proofs, so a validator can check a single sensor sample
// against a header without retrieving the full block body.
//
// Leaves and interior nodes are hashed with distinct domain-separation
// prefixes, which defends against second-preimage attacks that splice an
// interior node in as a leaf. Odd nodes at any level are promoted to the
// next level unchanged (no duplication), which avoids the classic
// duplicate-leaf malleability.
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/digest"
)

// DefaultLeafSize is the chunk size, in bytes, used when computing the
// root of a flat block body.
const DefaultLeafSize = 1024

// Domain-separation prefixes for leaf and interior hashes.
var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// Sentinel errors returned by tree operations.
var (
	ErrEmptyTree    = errors.New("merkle: tree has no leaves")
	ErrLeafIndex    = errors.New("merkle: leaf index out of range")
	ErrBadLeafSize  = errors.New("merkle: leaf size must be positive")
	ErrProofInvalid = errors.New("merkle: proof does not reproduce root")
)

// LeafHash hashes a single leaf with the leaf domain prefix.
func LeafHash(data []byte) digest.Digest {
	return digest.Sum(leafPrefix, data)
}

// NodeHash hashes an interior node from its two children. The preimage
// fits a fixed-size stack buffer, so no memory is allocated.
func NodeHash(left, right digest.Digest) digest.Digest {
	var buf [1 + 2*digest.Size]byte
	buf[0] = nodePrefix[0]
	copy(buf[1:], left[:])
	copy(buf[1+digest.Size:], right[:])
	return sha256.Sum256(buf[:])
}

// leafSum hashes one domain-separated leaf preimage into the reused
// scratch buffer, returning the digest and the (possibly grown)
// scratch. Semantically identical to LeafHash, minus the per-call
// hasher allocation.
func leafSum(scratch, data []byte) (digest.Digest, []byte) {
	scratch = append(scratch[:0], leafPrefix...)
	scratch = append(scratch, data...)
	return sha256.Sum256(scratch), scratch
}

// hashLeaves fills level with the domain-separated leaf hashes, reusing
// one scratch buffer for every leaf preimage instead of allocating a
// hasher per leaf.
func hashLeaves(level []digest.Digest, leaves [][]byte) {
	var scratch []byte
	for i, l := range leaves {
		level[i], scratch = leafSum(scratch, l)
	}
}

// Root computes the Merkle root over the given leaves. An empty leaf set
// yields the zero digest, matching a block with an empty body.
//
// The computation runs in a single reused level slice (each reduction
// writes over the previous level in place), so a root over N leaves
// costs one digest slice plus one scratch buffer regardless of depth.
func Root(leaves [][]byte) digest.Digest {
	if len(leaves) == 0 {
		return digest.Digest{}
	}
	level := make([]digest.Digest, len(leaves))
	hashLeaves(level, leaves)
	return reduceInPlace(level)
}

// reduceInPlace collapses a leaf-hash level to the root, overwriting the
// slice level by level (promoting an odd trailing node unchanged, like
// reduce).
func reduceInPlace(level []digest.Digest) digest.Digest {
	for n := len(level); n > 1; {
		m := 0
		for i := 0; i+1 < n; i += 2 {
			level[m] = NodeHash(level[i], level[i+1])
			m++
		}
		if n%2 == 1 {
			level[m] = level[n-1]
			m++
		}
		n = m
	}
	return level[0]
}

// RootOfBody splits a flat body into leafSize chunks and computes the
// root. This is the form used for block bodies: the paper's M(b^d). The
// body is hashed chunk by chunk without materializing a chunk slice.
func RootOfBody(body []byte, leafSize int) (digest.Digest, error) {
	if leafSize <= 0 {
		return digest.Digest{}, fmt.Errorf("%w: %d", ErrBadLeafSize, leafSize)
	}
	if len(body) == 0 {
		return digest.Digest{}, nil
	}
	n := (len(body) + leafSize - 1) / leafSize
	level := make([]digest.Digest, n)
	scratch := make([]byte, 0, 1+leafSize)
	for i := 0; i < n; i++ {
		lo := i * leafSize
		hi := min(lo+leafSize, len(body))
		level[i], scratch = leafSum(scratch, body[lo:hi])
	}
	return reduceInPlace(level), nil
}

// split cuts body into chunks of at most leafSize bytes. A nil body
// produces no chunks.
func split(body []byte, leafSize int) [][]byte {
	if len(body) == 0 {
		return nil
	}
	chunks := make([][]byte, 0, (len(body)+leafSize-1)/leafSize)
	for len(body) > leafSize {
		chunks = append(chunks, body[:leafSize])
		body = body[leafSize:]
	}
	return append(chunks, body)
}

// reduce combines one tree level into the next, promoting an odd trailing
// node unchanged.
func reduce(level []digest.Digest) []digest.Digest {
	next := make([]digest.Digest, 0, (len(level)+1)/2)
	for i := 0; i+1 < len(level); i += 2 {
		next = append(next, NodeHash(level[i], level[i+1]))
	}
	if len(level)%2 == 1 {
		next = append(next, level[len(level)-1])
	}
	return next
}

// Tree is a fully materialized Merkle tree supporting proof generation.
// Build one with NewTree; the zero value is unusable.
type Tree struct {
	levels [][]digest.Digest // levels[0] = leaf hashes, last = [root]
}

// NewTree builds a tree over the given leaves.
func NewTree(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	base := make([]digest.Digest, len(leaves))
	hashLeaves(base, leaves)
	levels := [][]digest.Digest{base}
	for cur := base; len(cur) > 1; {
		cur = reduce(cur)
		levels = append(levels, cur)
	}
	return &Tree{levels: levels}, nil
}

// NewTreeFromBody builds a tree over a flat body split into leafSize
// chunks.
func NewTreeFromBody(body []byte, leafSize int) (*Tree, error) {
	if leafSize <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLeafSize, leafSize)
	}
	chunks := split(body, leafSize)
	if len(chunks) == 0 {
		return nil, ErrEmptyTree
	}
	return NewTree(chunks)
}

// Root returns the tree root.
func (t *Tree) Root() digest.Digest {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int {
	return len(t.levels[0])
}

// ProofStep is one sibling hash on the path from a leaf to the root.
type ProofStep struct {
	Sibling digest.Digest
	// Left reports whether the sibling sits to the left of the running
	// hash at this level.
	Left bool
}

// Proof is an inclusion proof for a single leaf.
type Proof struct {
	LeafIndex int
	Steps     []ProofStep
}

// Proof generates an inclusion proof for leaf i.
func (t *Tree) Proof(i int) (Proof, error) {
	if i < 0 || i >= t.NumLeaves() {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrLeafIndex, i, t.NumLeaves())
	}
	p := Proof{LeafIndex: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		if idx%2 == 0 {
			if idx+1 < len(level) {
				p.Steps = append(p.Steps, ProofStep{Sibling: level[idx+1], Left: false})
			}
			// Odd trailing node: promoted, no sibling at this level.
		} else {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[idx-1], Left: true})
		}
		idx /= 2
	}
	return p, nil
}

// Verify checks that leaf data at the proof's position hashes up to root.
func (p Proof) Verify(root digest.Digest, leaf []byte) error {
	h := LeafHash(leaf)
	for _, s := range p.Steps {
		if s.Left {
			h = NodeHash(s.Sibling, h)
		} else {
			h = NodeHash(h, s.Sibling)
		}
	}
	if h != root {
		return fmt.Errorf("%w: computed %s, want %s", ErrProofInvalid, h, root)
	}
	return nil
}
