package pbft

import "testing"

// BenchmarkBaselinePBFT tracks the PBFT baseline at the paper's full
// scale (50 nodes, 200 slots). It runs inside every Fig. 7/8
// comparison loop, so it shares the hot-path benchmark guard with the
// main-path benches (see BENCH_hotpath.json).
func BenchmarkBaselinePBFT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Nodes: 50, Slots: 200, BodyBytes: 500_000})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Blocks != 200 {
			b.Fatal("wrong chain length")
		}
	}
}
