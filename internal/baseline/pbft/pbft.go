// Package pbft is the PBFT-blockchain baseline of the paper's
// evaluation (Sec. VI, comparing against Castro-Liskov PBFT [29]).
//
// The model executes the protocol's message flow rather than a closed-
// form formula: per slot every node submits its C-bit transaction to a
// rotating primary, the primary assembles a block of all transactions
// and broadcasts it in PRE-PREPARE, then every replica broadcasts
// PREPARE and COMMIT control messages (each a digest plus signature) to
// every other replica — the O(n²) three-phase exchange whose cost the
// paper contrasts with 2LDAG. Every node appends the full block, so
// storage is fully replicated.
package pbft

import (
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/metrics"
)

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("pbft: invalid config")

// Config parameterizes the baseline run.
type Config struct {
	// Nodes is the replica count n.
	Nodes int
	// Slots is the number of consensus rounds (one block each).
	Slots int
	// BodyBytes is C: each node's per-slot transaction payload.
	BodyBytes int
	// Model overrides the analytic size model; zero value means
	// DefaultSizeModel(BodyBytes).
	Model block.SizeModel
}

func (c Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("%w: %d nodes", ErrBadConfig, c.Nodes)
	}
	if c.Slots < 0 {
		return fmt.Errorf("%w: %d slots", ErrBadConfig, c.Slots)
	}
	if c.BodyBytes <= 0 {
		return fmt.Errorf("%w: body %d bytes", ErrBadConfig, c.BodyBytes)
	}
	return nil
}

// Report carries per-slot averages and final per-node samples.
type Report struct {
	// AvgStorageBits[s] is the average per-node chain size after slot
	// s+1.
	AvgStorageBits []int64
	// AvgCommBits[s] is the average cumulative per-node transmission
	// after slot s+1.
	AvgCommBits []int64
	// NodeStorageBits and NodeCommBits are final per-node samples (CDF
	// inputs).
	NodeStorageBits []int64
	NodeCommBits    []int64
	// Blocks is the chain length.
	Blocks int
}

// controlBits is the size of one PREPARE or COMMIT message: a block
// digest plus a signature.
func controlBits(m block.SizeModel) int64 {
	return int64(m.FH + m.FS)
}

// blockBits is the size of one PBFT block: n transactions of C bits
// plus a chain header (previous hash, Merkle root, metadata — the
// paper's f_c constant is reused for comparability).
func blockBits(m block.SizeModel, n int) int64 {
	return int64(m.ConstantBits()) + int64(n)*int64(m.C)
}

// Run executes the baseline and returns its cost report. Per-slot
// traffic follows the protocol's message flow — every node submits
// its C-bit transaction to the rotating primary, the primary
// broadcasts the assembled block in PRE-PREPARE, and every replica
// broadcasts PREPARE and COMMIT — but the accounting is accumulated
// incrementally (running network totals per slot, the rotation's
// closed form for the final per-node samples), so a run is O(slots+n)
// with all report slices preallocated: the baselines share the main
// path's allocation diet instead of dominating the Fig. 7 comparison
// loop.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	if m == (block.SizeModel{}) {
		m = block.DefaultSizeModel(cfg.BodyBytes)
	}
	n := cfg.Nodes
	rep := &Report{
		AvgStorageBits:  make([]int64, 0, cfg.Slots),
		AvgCommBits:     make([]int64, 0, cfg.Slots),
		NodeStorageBits: make([]int64, n),
		NodeCommBits:    make([]int64, n),
	}
	bb := blockBits(m, n)
	cb := controlBits(m)
	txBits := int64(m.C) + int64(m.FS) // signed submission to the primary
	// Every slot moves the same network-wide volume, whoever is
	// primary: n nodes broadcast PREPARE and COMMIT to n-1 peers, the
	// n-1 replicas submit their transaction, and the primary
	// broadcasts the block. REPLY/checkpointing traffic is omitted,
	// matching the paper's three-phase accounting.
	slotComm := int64(n)*2*int64(n-1)*cb + int64(n-1)*txBits + int64(n-1)*bb
	var totStorage, totComm int64
	for slot := 0; slot < cfg.Slots; slot++ {
		totStorage += int64(n) * bb // full replication
		totComm += slotComm
		rep.Blocks++
		rep.AvgStorageBits = append(rep.AvgStorageBits, totStorage/int64(n))
		rep.AvgCommBits = append(rep.AvgCommBits, totComm/int64(n))
	}
	// Final per-node samples: primary = slot mod n, so node i led
	// ceil((Slots - i) / n) rounds.
	full, rem := cfg.Slots/n, cfg.Slots%n
	for i := 0; i < n; i++ {
		led := int64(full)
		if i < rem {
			led++
		}
		rep.NodeStorageBits[i] = int64(cfg.Slots) * bb
		rep.NodeCommBits[i] = int64(cfg.Slots)*2*int64(n-1)*cb +
			(int64(cfg.Slots)-led)*txBits + led*int64(n-1)*bb
	}
	return rep, nil
}

// StorageSeries renders the per-slot average storage in MB.
func (r *Report) StorageSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgStorageBits {
		s.Append(float64(i+1), metrics.BitsToMB(bits))
	}
	return s
}

// CommSeries renders the per-slot average cumulative transmission in
// Mb.
func (r *Report) CommSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgCommBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}
