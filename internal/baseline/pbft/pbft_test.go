package pbft

import (
	"errors"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
)

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Slots: 1, BodyBytes: 10},
		{Nodes: 4, Slots: -1, BodyBytes: 10},
		{Nodes: 4, Slots: 1, BodyBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestFullReplicationStorage(t *testing.T) {
	cfg := Config{Nodes: 10, Slots: 20, BodyBytes: 1000}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := block.DefaultSizeModel(cfg.BodyBytes)
	// Every node stores every block: slots × (f_c + n·C).
	want := int64(cfg.Slots) * (int64(m.ConstantBits()) + int64(cfg.Nodes)*int64(m.C))
	for i, got := range rep.NodeStorageBits {
		if got != want {
			t.Fatalf("node %d storage = %d, want %d", i, got, want)
		}
	}
	if rep.Blocks != cfg.Slots {
		t.Fatalf("chain length %d, want %d", rep.Blocks, cfg.Slots)
	}
}

func TestStorageSeriesMonotone(t *testing.T) {
	rep, err := Run(Config{Nodes: 5, Slots: 10, BodyBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.StorageSeries("pbft")
	if s.Len() != 10 {
		t.Fatalf("series length %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatal("storage must grow monotonically")
		}
	}
}

func TestCommIncludesQuadraticControlTraffic(t *testing.T) {
	// Doubling n should much more than double the per-node control
	// traffic (O(n) prepare/commit per node, O(n·C) for the primary).
	small, err := Run(Config{Nodes: 5, Slots: 10, BodyBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Config{Nodes: 10, Slots: 10, BodyBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := small.CommSeries("s").Last()
	lc, _ := large.CommSeries("l").Last()
	if lc <= sc*2 {
		t.Fatalf("comm scaling too weak: n=5 → %.2f Mb, n=10 → %.2f Mb", sc, lc)
	}
}

func TestPrimaryRotationSpreadsLoad(t *testing.T) {
	// With slots == nodes each node is primary exactly once, so comm
	// must be identical across nodes.
	cfg := Config{Nodes: 7, Slots: 7, BodyBytes: 500}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < cfg.Nodes; i++ {
		if rep.NodeCommBits[i] != rep.NodeCommBits[0] {
			t.Fatalf("asymmetric comm despite full rotation: %v", rep.NodeCommBits)
		}
	}
}

func TestZeroSlots(t *testing.T) {
	rep, err := Run(Config{Nodes: 3, Slots: 0, BodyBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AvgStorageBits) != 0 || rep.Blocks != 0 {
		t.Fatal("zero-slot run must be empty")
	}
}
