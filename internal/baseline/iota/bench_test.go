package iota

import (
	"testing"

	"github.com/twoldag/twoldag/internal/topology"
)

// BenchmarkBaselineIOTA tracks the IOTA baseline at the paper's full
// scale (50 nodes, 200 slots). It runs inside every Fig. 7/8
// comparison loop, so it shares the hot-path benchmark guard with the
// main-path benches (see BENCH_hotpath.json).
func BenchmarkBaselineIOTA(b *testing.B) {
	cfg := topology.DefaultConfig(1)
	cfg.Nodes = 50
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Graph: g, Slots: 200, BodyBytes: 500_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Transactions != 50*200+1 {
			b.Fatal("wrong tangle size")
		}
	}
}
