package iota

import (
	"errors"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/topology"
)

func ringGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := ringGraph(t, 5)
	bad := []Config{
		{Graph: nil, Slots: 1, BodyBytes: 10},
		{Graph: g, Slots: -1, BodyBytes: 10},
		{Graph: g, Slots: 1, BodyBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestFullReplicationStorage(t *testing.T) {
	g := ringGraph(t, 6)
	cfg := Config{Graph: g, Slots: 10, BodyBytes: 1000, Seed: 1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := block.DefaultSizeModel(cfg.BodyBytes)
	perTx := int64(m.ConstantBits()) + 2*int64(m.FH) + int64(m.C)
	want := int64(cfg.Slots) * int64(g.Len()) * perTx
	for i, got := range rep.NodeStorageBits {
		if got != want {
			t.Fatalf("node %d storage = %d, want %d (full tangle)", i, got, want)
		}
	}
	if rep.Transactions != cfg.Slots*g.Len()+1 {
		t.Fatalf("tangle size %d, want %d", rep.Transactions, cfg.Slots*g.Len()+1)
	}
}

func TestTipCountStaysBounded(t *testing.T) {
	// Under uniform two-tip selection the expected tip count is small
	// and stable; a runaway tip count indicates broken approval logic.
	g := ringGraph(t, 8)
	rep, err := Run(Config{Graph: g, Slots: 50, BodyBytes: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tips <= 0 || rep.Tips > rep.Transactions/4 {
		t.Fatalf("tip count %d of %d transactions looks wrong", rep.Tips, rep.Transactions)
	}
}

func TestGossipCostScalesWithDegree(t *testing.T) {
	// A complete graph forwards less per node (everyone hears the
	// origin directly... but degree is higher). Instead compare against
	// a line: total flood traffic must still deliver every tx to every
	// node; per-node cost is degree-driven.
	line, err := topology.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Graph: line, Slots: 5, BodyBytes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints (degree 1) forward nothing on receipt: their comm is
	// only their own origination (degree × size per tx).
	if rep.NodeCommBits[0] >= rep.NodeCommBits[1] {
		t.Fatalf("leaf node transmits more than interior node: %v", rep.NodeCommBits)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := ringGraph(t, 5)
	a, err := Run(Config{Graph: g, Slots: 10, BodyBytes: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Graph: g, Slots: 10, BodyBytes: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tips != b.Tips || a.Transactions != b.Transactions {
		t.Fatal("same seed, different tangles")
	}
	for i := range a.NodeCommBits {
		if a.NodeCommBits[i] != b.NodeCommBits[i] {
			t.Fatal("same seed, different comm")
		}
	}
}

func TestSeriesShapes(t *testing.T) {
	g := ringGraph(t, 5)
	rep, err := Run(Config{Graph: g, Slots: 12, BodyBytes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.StorageSeries("iota")
	cm := rep.CommSeries("iota")
	if st.Len() != 12 || cm.Len() != 12 {
		t.Fatal("series lengths wrong")
	}
	for i := 1; i < st.Len(); i++ {
		if st.Y[i] <= st.Y[i-1] || cm.Y[i] <= cm.Y[i-1] {
			t.Fatal("cumulative series must be strictly increasing")
		}
	}
}
