// Package iota is the tokenless-IOTA (Tangle [19]) baseline of the
// paper's evaluation. Every node issues one transaction per slot; each
// transaction approves two tips chosen uniformly at random (the
// reference tip-selection of the Tangle paper); transactions are
// flooded over the physical radio topology so that every node stores
// the entire tangle — the full-replication property the paper contrasts
// with 2LDAG's store-your-own design.
package iota

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/metrics"
	"github.com/twoldag/twoldag/internal/topology"
)

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("iota: invalid config")

// Config parameterizes the baseline run.
type Config struct {
	// Graph is the physical topology used for gossip flooding.
	Graph *topology.Graph
	// Slots is the number of time slots.
	Slots int
	// BodyBytes is C, each transaction's payload.
	BodyBytes int
	// Seed drives tip selection.
	Seed int64
	// Model overrides the analytic size model.
	Model block.SizeModel
}

func (c Config) validate() error {
	if c.Graph == nil || c.Graph.Len() == 0 {
		return fmt.Errorf("%w: empty topology", ErrBadConfig)
	}
	if c.Slots < 0 {
		return fmt.Errorf("%w: %d slots", ErrBadConfig, c.Slots)
	}
	if c.BodyBytes <= 0 {
		return fmt.Errorf("%w: body %d bytes", ErrBadConfig, c.BodyBytes)
	}
	return nil
}

// Report carries the same shape as the PBFT baseline report.
type Report struct {
	AvgStorageBits  []int64
	AvgCommBits     []int64
	NodeStorageBits []int64
	NodeCommBits    []int64
	// Transactions is the final tangle size.
	Transactions int
	// Tips is the final tip count (a liveness indicator of the
	// tangle; stays small and stable under uniform selection).
	Tips int
}

// txBits is the size of one tangle transaction: payload plus a header
// carrying two parent digests (f_H each) and the f_c constant fields.
func txBits(m block.SizeModel) int64 {
	return int64(m.ConstantBits()) + 2*int64(m.FH) + int64(m.C)
}

// Run executes the baseline. The tip set is simulated transaction by
// transaction (it drives the Tips liveness indicator), but the flood
// accounting is accumulated incrementally: every node originates
// exactly once per slot and forwards every other transaction on first
// receipt, so each node's per-slot traffic is a constant of its
// degree, precomputed once. A run is therefore O(n + slots·n) with no
// per-transaction slice or map churn — the same allocation diet as
// the main path, so the Fig. 7 comparison loop no longer spends its
// wall clock inside the baselines.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	if m == (block.SizeModel{}) {
		m = block.DefaultSizeModel(cfg.BodyBytes)
	}
	g := cfg.Graph
	ids := g.Nodes()
	n := len(ids)
	rng := rand.New(rand.NewSource(cfg.Seed))
	size := txBits(m)

	rep := &Report{
		AvgStorageBits:  make([]int64, 0, cfg.Slots),
		AvgCommBits:     make([]int64, 0, cfg.Slots),
		NodeStorageBits: make([]int64, n),
		NodeCommBits:    make([]int64, n),
	}

	// Per-slot traffic per node: the origin transmits its transaction
	// to every neighbor, and every other node, on first receipt of
	// each of the slot's n-1 foreign transactions, forwards to all
	// neighbors but the sender. Every node stores every transaction.
	var slotCommTotal int64
	for i, id := range ids {
		d := int64(g.Degree(id))
		delta := d * size
		if d > 1 {
			delta += int64(n-1) * (d - 1) * size
		}
		rep.NodeCommBits[i] = delta // reused as the per-slot delta below
		slotCommTotal += delta
	}

	// The tangle's tip set, maintained with O(1) uniform picks: a
	// slice for selection plus an index map for swap-removal, so tip
	// selection is deterministic for a seed (the previous map-iteration
	// pick leaked Go's randomized map order into the result).
	// Transaction 0 is the genesis, pre-shared with no traffic.
	tips := []int{0}
	tipPos := map[int]int{0: 0}
	removeTip := func(t int) {
		p, ok := tipPos[t]
		if !ok {
			return
		}
		last := len(tips) - 1
		tips[p] = tips[last]
		tipPos[tips[p]] = p
		tips = tips[:last]
		delete(tipPos, t)
	}
	txCount := 1

	var totStorage, totComm int64
	for slot := 0; slot < cfg.Slots; slot++ {
		for range ids {
			// Two-tip approval (may pick the same tip twice, as in the
			// reference design).
			a, b := tips[rng.Intn(len(tips))], tips[rng.Intn(len(tips))]
			id := txCount
			txCount++
			removeTip(a)
			removeTip(b)
			tipPos[id] = len(tips)
			tips = append(tips, id)
		}
		// n new transactions, each stored by all n nodes.
		totStorage += int64(n) * int64(n) * size
		totComm += slotCommTotal
		rep.AvgStorageBits = append(rep.AvgStorageBits, totStorage/int64(n))
		rep.AvgCommBits = append(rep.AvgCommBits, totComm/int64(n))
	}
	for i := range ids {
		rep.NodeStorageBits[i] = int64(cfg.Slots) * int64(n) * size
		rep.NodeCommBits[i] *= int64(cfg.Slots) // per-slot delta × slots
	}
	rep.Transactions = txCount
	rep.Tips = len(tips)
	return rep, nil
}

// StorageSeries renders per-slot average storage in MB.
func (r *Report) StorageSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgStorageBits {
		s.Append(float64(i+1), metrics.BitsToMB(bits))
	}
	return s
}

// CommSeries renders per-slot average cumulative transmission in Mb.
func (r *Report) CommSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgCommBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}
