// Package iota is the tokenless-IOTA (Tangle [19]) baseline of the
// paper's evaluation. Every node issues one transaction per slot; each
// transaction approves two tips chosen uniformly at random (the
// reference tip-selection of the Tangle paper); transactions are
// flooded over the physical radio topology so that every node stores
// the entire tangle — the full-replication property the paper contrasts
// with 2LDAG's store-your-own design.
package iota

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/metrics"
	"github.com/twoldag/twoldag/internal/topology"
)

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("iota: invalid config")

// Config parameterizes the baseline run.
type Config struct {
	// Graph is the physical topology used for gossip flooding.
	Graph *topology.Graph
	// Slots is the number of time slots.
	Slots int
	// BodyBytes is C, each transaction's payload.
	BodyBytes int
	// Seed drives tip selection.
	Seed int64
	// Model overrides the analytic size model.
	Model block.SizeModel
}

func (c Config) validate() error {
	if c.Graph == nil || c.Graph.Len() == 0 {
		return fmt.Errorf("%w: empty topology", ErrBadConfig)
	}
	if c.Slots < 0 {
		return fmt.Errorf("%w: %d slots", ErrBadConfig, c.Slots)
	}
	if c.BodyBytes <= 0 {
		return fmt.Errorf("%w: body %d bytes", ErrBadConfig, c.BodyBytes)
	}
	return nil
}

// Report carries the same shape as the PBFT baseline report.
type Report struct {
	AvgStorageBits  []int64
	AvgCommBits     []int64
	NodeStorageBits []int64
	NodeCommBits    []int64
	// Transactions is the final tangle size.
	Transactions int
	// Tips is the final tip count (a liveness indicator of the
	// tangle; stays small and stable under uniform selection).
	Tips int
}

// txBits is the size of one tangle transaction: payload plus a header
// carrying two parent digests (f_H each) and the f_c constant fields.
func txBits(m block.SizeModel) int64 {
	return int64(m.ConstantBits()) + 2*int64(m.FH) + int64(m.C)
}

// Run executes the baseline.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	if m == (block.SizeModel{}) {
		m = block.DefaultSizeModel(cfg.BodyBytes)
	}
	g := cfg.Graph
	ids := g.Nodes()
	n := len(ids)
	idx := make(map[identity.NodeID]int, n)
	for i, id := range ids {
		idx[id] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	size := txBits(m)

	rep := &Report{
		AvgStorageBits:  make([]int64, 0, cfg.Slots),
		AvgCommBits:     make([]int64, 0, cfg.Slots),
		NodeStorageBits: make([]int64, n),
		NodeCommBits:    make([]int64, n),
	}

	// The tangle: approvals[t] lists the two parents of transaction t;
	// tip set maintained incrementally. Transaction 0 is the genesis.
	type tx struct{ parents [2]int }
	tangle := []tx{{parents: [2]int{-1, -1}}}
	tips := map[int]bool{0: true}
	// Genesis is pre-shared; no traffic accounted.

	pickTip := func() int {
		// Uniform tip selection over the current tip set.
		k := rng.Intn(len(tips))
		for t := range tips {
			if k == 0 {
				return t
			}
			k--
		}
		return 0 // unreachable; tips is never empty
	}

	for slot := 0; slot < cfg.Slots; slot++ {
		for _, origin := range ids {
			// Two-tip approval (may pick the same tip twice, as in the
			// reference design).
			a, b := pickTip(), pickTip()
			id := len(tangle)
			tangle = append(tangle, tx{parents: [2]int{a, b}})
			delete(tips, a)
			delete(tips, b)
			tips[id] = true

			// Gossip flood over the radio graph: the origin transmits
			// to every neighbor; every other node, on first receipt,
			// forwards to all neighbors but the sender. Every node
			// stores the transaction.
			rep.NodeCommBits[idx[origin]] += int64(g.Degree(origin)) * size
			for _, v := range ids {
				rep.NodeStorageBits[idx[v]] += size
				if v == origin {
					continue
				}
				if d := g.Degree(v); d > 1 {
					rep.NodeCommBits[idx[v]] += int64(d-1) * size
				}
			}
		}
		rep.AvgStorageBits = append(rep.AvgStorageBits, avg(rep.NodeStorageBits))
		rep.AvgCommBits = append(rep.AvgCommBits, avg(rep.NodeCommBits))
	}
	rep.Transactions = len(tangle)
	rep.Tips = len(tips)
	return rep, nil
}

func avg(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	total := int64(0)
	for _, x := range v {
		total += x
	}
	return total / int64(len(v))
}

// StorageSeries renders per-slot average storage in MB.
func (r *Report) StorageSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgStorageBits {
		s.Append(float64(i+1), metrics.BitsToMB(bits))
	}
	return s
}

// CommSeries renders per-slot average cumulative transmission in Mb.
func (r *Report) CommSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgCommBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}
