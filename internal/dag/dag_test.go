package dag

import (
	"errors"
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
)

// buildNetwork generates a small 2LDAG network over the Fig. 3 topology
// and returns the stores keyed by node.
func buildNetwork(t *testing.T, slots int) map[identity.NodeID]*ledger.Store {
	t.Helper()
	g := topology.PaperFig3()
	params := block.DefaultParams()
	params.Difficulty = 2
	engines := make(map[identity.NodeID]*core.Engine)
	stores := make(map[identity.NodeID]*ledger.Store)
	for _, id := range g.Nodes() {
		eng, err := core.NewEngine(identity.Deterministic(id, 7), params, g)
		if err != nil {
			t.Fatal(err)
		}
		engines[id] = eng
		stores[id] = eng.Store()
	}
	for s := 0; s <= slots; s++ {
		for _, id := range g.Nodes() {
			body := []byte(fmt.Sprintf("%v@%d", id, s))
			_, d, err := engines[id].Generate(uint32(s), body)
			if err != nil {
				t.Fatal(err)
			}
			for _, nb := range g.Neighbors(id) {
				if err := engines[nb].OnDigest(id, d); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return stores
}

func TestFromStoresCountsAndProp1(t *testing.T) {
	slots := 4
	stores := buildNetwork(t, slots)
	g := FromStores(stores)
	// Prop. 1: every node generated slots+1 blocks (incl. genesis).
	want := 4 * (slots + 1)
	if g.Len() != want {
		t.Fatalf("|B| = %d, want %d", g.Len(), want)
	}
	per := g.BlocksPerNode()
	for id, n := range per {
		if n != slots+1 {
			t.Fatalf("node %v has %d blocks, want %d", id, n, slots+1)
		}
	}
}

func TestAcyclicity(t *testing.T) {
	g := FromStores(buildNetwork(t, 5))
	if !g.IsAcyclic() {
		t.Fatal("2LDAG logical layer must be acyclic")
	}
}

func TestChildrenParentsConsistency(t *testing.T) {
	stores := buildNetwork(t, 3)
	g := FromStores(stores)
	// For every indexed block, each parent must list it as a child.
	for _, s := range stores {
		for _, h := range s.Headers() {
			hh := h.Hash()
			for _, p := range g.Parents(hh) {
				found := false
				for _, ch := range g.Children(p) {
					if ch == hh {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("parent %s does not list child %s", p, hh)
				}
			}
		}
	}
}

func TestReachableAlongChain(t *testing.T) {
	stores := buildNetwork(t, 4)
	g := FromStores(stores)
	s := stores[1] // node B
	first, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Latest()
	if !g.Reachable(first.Header.Hash(), last.Header.Hash()) {
		t.Fatal("genesis must reach the latest block of the same node")
	}
	if g.Reachable(last.Header.Hash(), first.Header.Hash()) {
		t.Fatal("DAG edges must not run backwards")
	}
	if !g.Reachable(first.Header.Hash(), first.Header.Hash()) {
		t.Fatal("a block must reach itself")
	}
}

func TestReachableCrossNode(t *testing.T) {
	stores := buildNetwork(t, 4)
	g := FromStores(stores)
	// D0 must be reachable from... D0's digest is included in C's or
	// B's later blocks, which are in turn referenced onward: check that
	// an early block reaches some block of every other node
	// (connectivity of the logical layer on a connected radio graph).
	d0, err := stores[3].Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.VoucherReach(d0.Header.Hash()); got != 4 {
		t.Fatalf("voucher reach of D0 = %d, want 4", got)
	}
}

func TestDescendantCountMonotone(t *testing.T) {
	stores := buildNetwork(t, 4)
	g := FromStores(stores)
	s := stores[0]
	early, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.DescendantCount(early.Header.Hash()) <= g.DescendantCount(late.Header.Hash()) {
		t.Fatal("earlier blocks must have at least as many descendants")
	}
}

func TestHeaderLookupErrors(t *testing.T) {
	g := New()
	if _, err := g.Header(digest.Sum([]byte("missing"))); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("want ErrUnknownBlock, got %v", err)
	}
	if g.VoucherReach(digest.Sum([]byte("missing"))) != 0 {
		t.Fatal("voucher reach of unknown block must be 0")
	}
	if g.Reachable(digest.Sum([]byte("a")), digest.Sum([]byte("b"))) {
		t.Fatal("reachability between unknown blocks")
	}
}

func TestAddIdempotent(t *testing.T) {
	stores := buildNetwork(t, 1)
	g := FromStores(stores)
	n := g.Len()
	e := g.EdgeCount()
	h, err := stores[0].Get(0)
	if err != nil {
		t.Fatal(err)
	}
	g.Add(&h.Header)
	if g.Len() != n || g.EdgeCount() != e {
		t.Fatal("re-adding a header changed the graph")
	}
}

func TestEdgeCountMatchesDigestRefs(t *testing.T) {
	stores := buildNetwork(t, 2)
	g := FromStores(stores)
	// Every non-zero Δ entry whose parent is indexed is one edge.
	want := 0
	for _, s := range stores {
		for _, h := range s.Headers() {
			for _, ref := range h.Digests {
				if ref.Digest.IsZero() {
					continue
				}
				if _, err := g.Header(ref.Digest); err == nil {
					want++
				}
			}
		}
	}
	if got := g.EdgeCount(); got != want {
		t.Fatalf("EdgeCount = %d, want %d", got, want)
	}
}
