// Package dag materializes the logical layer of 2LDAG (paper Sec.
// III-C): the global graph Ḡ(B, L) whose vertices are all data blocks
// and whose directed edges connect a block to every block whose header
// digest it contains. Individual nodes never hold this graph — it is an
// analysis artifact used by tests, the simulator and the experiment
// harness to check structural invariants (acyclicity, reachability,
// Prop. 1 block counts) and to inspect micro-loops (Prop. 5).
package dag

import (
	"errors"
	"fmt"
	"sort"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
)

// ErrUnknownBlock reports a lookup for an unindexed block.
var ErrUnknownBlock = errors.New("dag: unknown block")

// Graph is the logical DAG. Not safe for concurrent mutation; build it
// once from a snapshot of node stores.
type Graph struct {
	headers map[digest.Digest]*block.Header
	// children[d] lists header hashes whose Δ contains d.
	children map[digest.Digest][]digest.Digest
	// parents[h] lists the non-zero digests in h's Δ that resolve to
	// indexed headers.
	parents map[digest.Digest][]digest.Digest
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		headers:  make(map[digest.Digest]*block.Header),
		children: make(map[digest.Digest][]digest.Digest),
		parents:  make(map[digest.Digest][]digest.Digest),
	}
}

// FromStores builds the logical DAG over every block in the given
// stores.
func FromStores(stores map[identity.NodeID]*ledger.Store) *Graph {
	g := New()
	ids := make([]identity.NodeID, 0, len(stores))
	for id := range stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, h := range stores[id].Headers() {
			g.Add(h)
		}
	}
	return g
}

// Add indexes a header.
func (g *Graph) Add(h *block.Header) {
	hh := h.Hash()
	if _, ok := g.headers[hh]; ok {
		return
	}
	g.headers[hh] = h.Clone()
	for _, ref := range h.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		g.children[ref.Digest] = append(g.children[ref.Digest], hh)
		g.parents[hh] = append(g.parents[hh], ref.Digest)
	}
}

// Len returns the number of indexed blocks |B|.
func (g *Graph) Len() int { return len(g.headers) }

// Header returns the indexed header with the given hash.
func (g *Graph) Header(h digest.Digest) (*block.Header, error) {
	hdr, ok := g.headers[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBlock, h)
	}
	return hdr.Clone(), nil
}

// Children returns the hashes of blocks whose Δ contains h.
func (g *Graph) Children(h digest.Digest) []digest.Digest {
	return append([]digest.Digest(nil), g.children[h]...)
}

// Parents returns the digests h's Δ points at (restricted to indexed
// blocks).
func (g *Graph) Parents(h digest.Digest) []digest.Digest {
	var out []digest.Digest
	for _, p := range g.parents[h] {
		if _, ok := g.headers[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// EdgeCount returns |L| restricted to indexed endpoints.
func (g *Graph) EdgeCount() int {
	total := 0
	for hh := range g.headers {
		total += len(g.Parents(hh))
	}
	return total
}

// IsAcyclic verifies the defining DAG property via Kahn's algorithm
// over the indexed subgraph. The construction (children are generated
// strictly later than their parents) guarantees it; this check guards
// against implementation regressions.
func (g *Graph) IsAcyclic() bool {
	indeg := make(map[digest.Digest]int, len(g.headers))
	for hh := range g.headers {
		indeg[hh] = len(g.Parents(hh))
	}
	var queue []digest.Digest
	for hh, d := range indeg {
		if d == 0 {
			queue = append(queue, hh)
		}
	}
	removed := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		removed++
		for _, ch := range g.children[cur] {
			if _, ok := g.headers[ch]; !ok {
				continue
			}
			indeg[ch]--
			if indeg[ch] == 0 {
				queue = append(queue, ch)
			}
		}
	}
	return removed == len(g.headers)
}

// Reachable reports whether to is a descendant of from (paper Sec.
// III-C: a directed path exists in Ḡ).
func (g *Graph) Reachable(from, to digest.Digest) bool {
	if _, ok := g.headers[from]; !ok {
		return false
	}
	if from == to {
		return true
	}
	seen := map[digest.Digest]bool{from: true}
	queue := []digest.Digest{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range g.children[cur] {
			if _, ok := g.headers[ch]; !ok || seen[ch] {
				continue
			}
			if ch == to {
				return true
			}
			seen[ch] = true
			queue = append(queue, ch)
		}
	}
	return false
}

// DescendantCount returns the number of blocks reachable from h
// (excluding h itself) — the pool of potential PoP vouching blocks.
func (g *Graph) DescendantCount(h digest.Digest) int {
	seen := map[digest.Digest]bool{h: true}
	queue := []digest.Digest{h}
	count := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range g.children[cur] {
			if _, ok := g.headers[ch]; !ok || seen[ch] {
				continue
			}
			seen[ch] = true
			count++
			queue = append(queue, ch)
		}
	}
	return count
}

// VoucherReach returns the number of distinct physical nodes owning at
// least one descendant of h, plus one for h's own origin — an upper
// bound on the vouchers PoP can ever collect for h, hence a
// satisfiability oracle for γ.
func (g *Graph) VoucherReach(h digest.Digest) int {
	hdr, ok := g.headers[h]
	if !ok {
		return 0
	}
	owners := map[identity.NodeID]bool{hdr.Origin: true}
	seen := map[digest.Digest]bool{h: true}
	queue := []digest.Digest{h}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range g.children[cur] {
			chh, ok := g.headers[ch]
			if !ok || seen[ch] {
				continue
			}
			seen[ch] = true
			owners[chh.Origin] = true
			queue = append(queue, ch)
		}
	}
	return len(owners)
}

// BlocksPerNode returns how many indexed blocks each origin owns
// (Prop. 1's per-node term).
func (g *Graph) BlocksPerNode() map[identity.NodeID]int {
	out := make(map[identity.NodeID]int)
	for _, h := range g.headers {
		out[h.Origin]++
	}
	return out
}
