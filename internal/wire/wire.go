// Package wire defines the 2LDAG message vocabulary and its binary
// encoding. The protocol has exactly the message families the paper
// names (Sec. IV-D5): digest announcements (block generation,
// Sec. III-D) — singly (DigestAnnounce) or coalesced into one frame
// per neighbor per flush (DigestBatch) — REQ_CHILD / RPY_CHILD (PoP,
// Sec. IV), plus the block retrieval pair a validator uses to fetch
// the verifier's full block (Algorithm 3 line 2). Every message
// carries an anti-replay nonce and a correlation ID for
// request/response matching.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Kind discriminates message payloads. Enums start at 1 so the zero
// value is detectably invalid.
type Kind uint8

const (
	// KindDigestAnnounce carries H(b^h) from a block's origin to one
	// neighbor.
	KindDigestAnnounce Kind = iota + 1
	// KindReqChild asks a node for the oldest of its blocks whose Δ
	// contains Target.
	KindReqChild
	// KindRpyChild answers a ReqChild with an encoded header.
	KindRpyChild
	// KindGetBlock asks a block's origin for the full block.
	KindGetBlock
	// KindBlockResp answers a GetBlock with an encoded block.
	KindBlockResp
	// KindNotFound is a negative response to ReqChild or GetBlock.
	KindNotFound
	// KindDigestBatch carries every digest a node announces to one
	// neighbor in a single frame — one frame per (sender, receiver)
	// pair per flush instead of one per digest. The payload is the
	// concatenation of the digests in seal order (the length prefix of
	// the payload field frames the batch; the digest count is
	// len(Payload)/digest.Size).
	KindDigestBatch
	// KindDigestAck acknowledges an announcement frame back to its
	// sender: the Digest field (and, for batch acks, the echoed digest
	// concatenation in the payload) names what the receiver ingested.
	// Cross-process clusters use it to complete the submitter's
	// event-driven acknowledgement wait — in-process fabrics observe
	// the receiver's delivery events directly and never send it.
	KindDigestAck
	// KindHello announces a node's identity to a peer: its advertised
	// listen address, public key and — for dynamically joined nodes —
	// placement (anchor and position) so every peer replays the same
	// topology mutation. Sent as a request; the reply is a PeerList.
	KindHello
	// KindPeerList carries a membership snapshot: one entry per known
	// peer with liveness, address, key and placement. It answers Hello
	// (and the bootstrap discovery exchange); unsolicited pushes carry
	// correlation 0.
	KindPeerList
	// KindLeave is a graceful departure broadcast: peers mark the
	// sender dead immediately instead of waiting for the health
	// tracker to suspect it.
	KindLeave

	kindMax
)

// BootstrapID is the sentinel From a not-yet-placed joiner uses for
// the raw discovery exchange: it dials a member's listener, sends a
// Hello with From=BootstrapID, and the member replies with a PeerList
// on the same connection instead of routing the frame inbox-ward.
const BootstrapID identity.NodeID = 1<<32 - 1

// NoAnchor marks a Hello or PeerList entry whose node was part of the
// planned deployment (its placement comes from the shared topology
// generator, not a dynamic join).
const NoAnchor identity.NodeID = 1<<32 - 1

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindDigestAnnounce:
		return "DIGEST"
	case KindReqChild:
		return "REQ_CHILD"
	case KindRpyChild:
		return "RPY_CHILD"
	case KindGetBlock:
		return "GET_BLOCK"
	case KindBlockResp:
		return "BLOCK_RESP"
	case KindNotFound:
		return "NOT_FOUND"
	case KindDigestBatch:
		return "DIGEST_BATCH"
	case KindDigestAck:
		return "DIGEST_ACK"
	case KindHello:
		return "HELLO"
	case KindPeerList:
		return "PEER_LIST"
	case KindLeave:
		return "LEAVE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k >= KindDigestAnnounce && k < kindMax }

// IsResponse reports whether the kind answers a prior request.
// DigestAck is deliberately not a response: it acknowledges an
// unsolicited announcement (correlation 0) and is handled by the
// node's message loop, not the RPC pending map.
func (k Kind) IsResponse() bool {
	return k == KindRpyChild || k == KindBlockResp || k == KindNotFound || k == KindPeerList
}

// Codec errors.
var (
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTruncated  = errors.New("wire: truncated message")
	ErrOversized  = errors.New("wire: payload exceeds limit")
	ErrTrailing   = errors.New("wire: trailing bytes")
	ErrBadPayload = errors.New("wire: malformed payload")
)

// MaxPayload bounds encoded header/block payload sizes (matches the
// block codec limit plus framing slack).
const MaxPayload = block.MaxBodyLen + 1<<16

// Message is a single 2LDAG protocol message.
type Message struct {
	Kind Kind
	From identity.NodeID
	To   identity.NodeID
	// Corr correlates responses with requests (0 = unsolicited).
	Corr uint64
	// Nonce is the anti-replay nonce of Sec. IV-D5.
	Nonce uint64

	// Digest is the announced digest (DigestAnnounce) or the PoP target
	// H(b^h_v,t) (ReqChild).
	Digest digest.Digest
	// Ref identifies the requested block (GetBlock).
	Ref block.Ref
	// Payload carries an encoded header (RpyChild) or block (BlockResp).
	Payload []byte
}

// NewDigestAnnounce builds the digest broadcast of Sec. III-D.
func NewDigestAnnounce(from, to identity.NodeID, d digest.Digest, nonce uint64) *Message {
	return &Message{Kind: KindDigestAnnounce, From: from, To: to, Digest: d, Nonce: nonce}
}

// NewDigestBatch builds one coalesced announcement frame carrying
// every digest from sealed for neighbor to, in seal order. The Digest
// field holds the newest digest (the one that ends up in A_i), so a
// batch of one is wire-equivalent to a DigestAnnounce plus the batch
// framing.
func NewDigestBatch(from, to identity.NodeID, ds []digest.Digest, nonce uint64) *Message {
	payload := make([]byte, 0, len(ds)*digest.Size)
	for i := range ds {
		payload = append(payload, ds[i][:]...)
	}
	m := &Message{Kind: KindDigestBatch, From: from, To: to, Nonce: nonce, Payload: payload}
	if len(ds) > 0 {
		m.Digest = ds[len(ds)-1]
	}
	return m
}

// NewReqChild builds a REQ_CHILD for the PoP target digest.
func NewReqChild(from, to identity.NodeID, target digest.Digest, corr, nonce uint64) *Message {
	return &Message{Kind: KindReqChild, From: from, To: to, Digest: target, Corr: corr, Nonce: nonce}
}

// NewRpyChild answers req with an encoded header.
func NewRpyChild(req *Message, h *block.Header) *Message {
	return &Message{
		Kind: KindRpyChild, From: req.To, To: req.From,
		Corr: req.Corr, Nonce: req.Nonce, Payload: block.EncodeHeader(h),
	}
}

// NewGetBlock builds a full-block retrieval request.
func NewGetBlock(from, to identity.NodeID, ref block.Ref, corr, nonce uint64) *Message {
	return &Message{Kind: KindGetBlock, From: from, To: to, Ref: ref, Corr: corr, Nonce: nonce}
}

// NewBlockResp answers req with an encoded block.
func NewBlockResp(req *Message, b *block.Block) *Message {
	return &Message{
		Kind: KindBlockResp, From: req.To, To: req.From,
		Corr: req.Corr, Nonce: req.Nonce, Payload: block.Encode(b),
	}
}

// NewNotFound answers req negatively.
func NewNotFound(req *Message) *Message {
	return &Message{Kind: KindNotFound, From: req.To, To: req.From, Corr: req.Corr, Nonce: req.Nonce}
}

// NewDigestAck acknowledges an ingested announcement frame back to its
// sender, echoing the Digest field and — for DigestBatch frames — the
// digest concatenation, so the sender can resolve its acknowledgement
// wait per carried digest. Receivers ack duplicates too: a lost ack
// followed by a retried announcement must still converge.
func NewDigestAck(req *Message) *Message {
	m := &Message{Kind: KindDigestAck, From: req.To, To: req.From, Nonce: req.Nonce, Digest: req.Digest}
	if req.Kind == KindDigestBatch && len(req.Payload) > 0 {
		m.Payload = append([]byte(nil), req.Payload...)
	}
	return m
}

// DecodeDigestAckPayload parses the digests a batch ack echoes, in
// seal order. A singleton ack (empty payload) returns nil — the Digest
// field alone names the acknowledged digest.
func (m *Message) DecodeDigestAckPayload() ([]digest.Digest, error) {
	if m.Kind != KindDigestAck {
		return nil, fmt.Errorf("%w: %v carries no digest ack", ErrBadPayload, m.Kind)
	}
	if len(m.Payload) == 0 {
		return nil, nil
	}
	return decodeDigestRun(m.Payload)
}

// decodeDigestRun parses a digest concatenation.
func decodeDigestRun(payload []byte) ([]digest.Digest, error) {
	if len(payload)%digest.Size != 0 {
		return nil, fmt.Errorf("%w: digest run of %d bytes", ErrBadPayload, len(payload))
	}
	ds := make([]digest.Digest, len(payload)/digest.Size)
	for i := range ds {
		copy(ds[i][:], payload[i*digest.Size:])
	}
	return ds, nil
}

// Directory payload limits: a dial address is a host:port string, a
// public key is an Ed25519 key today (the length byte leaves room for
// other schemes).
const (
	maxAddrLen = 512
	maxKeyLen  = 255
)

// HelloInfo is the payload of a Hello: who the sender is and, when it
// joined dynamically, where the shared topology must place it.
type HelloInfo struct {
	// Addr is the sender's advertised dial address.
	Addr string
	// PubKey is the sender's public signing key.
	PubKey []byte
	// Anchor is the live node the sender re-anchored to when it joined
	// dynamically; NoAnchor for planned members.
	Anchor identity.NodeID
	// X, Y is the sender's position in the radio plane (meaningful for
	// dynamic joiners; planned members echo their generated position).
	X, Y float64
}

// PeerEntry is one PeerList membership record.
type PeerEntry struct {
	ID   identity.NodeID
	Live bool
	// Anchor and X, Y mirror HelloInfo: NoAnchor marks a planned
	// member whose placement the generator dictates.
	Anchor identity.NodeID
	X, Y   float64
	Addr   string
	PubKey []byte
}

// appendHelloInfo encodes one directory record. Hello payloads and
// PeerList entries share the layout; PeerList entries prefix it with
// the peer ID and liveness.
func appendHelloInfo(buf []byte, h *HelloInfo) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Anchor))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Y))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Addr)))
	buf = append(buf, h.Addr...)
	buf = append(buf, byte(len(h.PubKey)))
	buf = append(buf, h.PubKey...)
	return buf
}

// readHelloInfo decodes one directory record at *off, advancing it.
func readHelloInfo(buf []byte, off *int, h *HelloInfo) error {
	if len(buf)-*off < 4+8+8+2 {
		return fmt.Errorf("%w: directory record", ErrTruncated)
	}
	h.Anchor = identity.NodeID(binary.LittleEndian.Uint32(buf[*off:]))
	*off += 4
	h.X = math.Float64frombits(binary.LittleEndian.Uint64(buf[*off:]))
	*off += 8
	h.Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[*off:]))
	*off += 8
	alen := int(binary.LittleEndian.Uint16(buf[*off:]))
	*off += 2
	if alen > maxAddrLen {
		return fmt.Errorf("%w: address of %d bytes", ErrBadPayload, alen)
	}
	if len(buf)-*off < alen+1 {
		return fmt.Errorf("%w: directory record", ErrTruncated)
	}
	h.Addr = string(buf[*off : *off+alen])
	*off += alen
	klen := int(buf[*off])
	*off++
	if len(buf)-*off < klen {
		return fmt.Errorf("%w: directory record", ErrTruncated)
	}
	h.PubKey = append([]byte(nil), buf[*off:*off+klen]...)
	*off += klen
	return nil
}

// NewHello builds the identity announcement of the peer-directory
// exchange. As a request it expects a PeerList reply; the bootstrap
// discovery variant uses From=BootstrapID over a raw connection.
func NewHello(from, to identity.NodeID, info HelloInfo, corr, nonce uint64) *Message {
	return &Message{
		Kind: KindHello, From: from, To: to, Corr: corr, Nonce: nonce,
		Payload: appendHelloInfo(make([]byte, 0, 4+8+8+2+len(info.Addr)+1+len(info.PubKey)), &info),
	}
}

// DecodeHelloPayload parses a Hello's identity record.
func (m *Message) DecodeHelloPayload() (HelloInfo, error) {
	if m.Kind != KindHello {
		return HelloInfo{}, fmt.Errorf("%w: %v carries no hello", ErrBadPayload, m.Kind)
	}
	var h HelloInfo
	off := 0
	if err := readHelloInfo(m.Payload, &off, &h); err != nil {
		return HelloInfo{}, err
	}
	if off != len(m.Payload) {
		return HelloInfo{}, fmt.Errorf("%w: %d bytes after hello", ErrTrailing, len(m.Payload)-off)
	}
	return h, nil
}

// NewPeerList answers req (a Hello) with a membership snapshot.
func NewPeerList(req *Message, entries []PeerEntry) *Message {
	return &Message{
		Kind: KindPeerList, From: req.To, To: req.From,
		Corr: req.Corr, Nonce: req.Nonce, Payload: encodePeerEntries(entries),
	}
}

// NewPeerListPush builds an unsolicited membership snapshot
// (correlation 0), for gossiping directory changes to peers that did
// not ask.
func NewPeerListPush(from, to identity.NodeID, entries []PeerEntry, nonce uint64) *Message {
	return &Message{Kind: KindPeerList, From: from, To: to, Nonce: nonce, Payload: encodePeerEntries(entries)}
}

func encodePeerEntries(entries []PeerEntry) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ID))
		if e.Live {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendHelloInfo(buf, &HelloInfo{Addr: e.Addr, PubKey: e.PubKey, Anchor: e.Anchor, X: e.X, Y: e.Y})
	}
	return buf
}

// DecodePeerListPayload parses a PeerList's membership entries, in the
// order the sender encoded them. Everything is copied out of the
// payload, so the result outlives the message buffer.
func (m *Message) DecodePeerListPayload() ([]PeerEntry, error) {
	if m.Kind != KindPeerList {
		return nil, fmt.Errorf("%w: %v carries no peer list", ErrBadPayload, m.Kind)
	}
	if len(m.Payload) < 4 {
		return nil, fmt.Errorf("%w: peer list", ErrTruncated)
	}
	count := int(binary.LittleEndian.Uint32(m.Payload))
	// Each entry is at least ID + live + the fixed record prefix; an
	// absurd count is rejected before any allocation.
	const minEntry = 4 + 1 + 4 + 8 + 8 + 2 + 1
	if count < 0 || count > (len(m.Payload)-4)/minEntry {
		return nil, fmt.Errorf("%w: peer list claims %d entries in %d bytes", ErrBadPayload, count, len(m.Payload))
	}
	entries := make([]PeerEntry, count)
	off := 4
	for i := range entries {
		if len(m.Payload)-off < 5 {
			return nil, fmt.Errorf("%w: peer list entry %d", ErrTruncated, i)
		}
		entries[i].ID = identity.NodeID(binary.LittleEndian.Uint32(m.Payload[off:]))
		off += 4
		switch m.Payload[off] {
		case 0:
		case 1:
			entries[i].Live = true
		default:
			return nil, fmt.Errorf("%w: peer list liveness %d", ErrBadPayload, m.Payload[off])
		}
		off++
		var h HelloInfo
		if err := readHelloInfo(m.Payload, &off, &h); err != nil {
			return nil, err
		}
		entries[i].Anchor, entries[i].X, entries[i].Y = h.Anchor, h.X, h.Y
		entries[i].Addr, entries[i].PubKey = h.Addr, h.PubKey
	}
	if off != len(m.Payload) {
		return nil, fmt.Errorf("%w: %d bytes after peer list", ErrTrailing, len(m.Payload)-off)
	}
	return entries, nil
}

// NewLeave builds the graceful departure broadcast.
func NewLeave(from, to identity.NodeID, nonce uint64) *Message {
	return &Message{Kind: KindLeave, From: from, To: to, Nonce: nonce}
}

// DecodeDigestBatchPayload parses the digests carried by a
// DigestBatch, in seal order. The digests are copied out of the
// payload, so the returned slice outlives the message buffer.
func (m *Message) DecodeDigestBatchPayload() ([]digest.Digest, error) {
	if m.Kind != KindDigestBatch {
		return nil, fmt.Errorf("%w: %v carries no digest batch", ErrBadPayload, m.Kind)
	}
	return decodeDigestRun(m.Payload)
}

// DecodeHeaderPayload parses the header carried by a RpyChild.
func (m *Message) DecodeHeaderPayload() (*block.Header, error) {
	if m.Kind != KindRpyChild {
		return nil, fmt.Errorf("%w: %v carries no header", ErrBadPayload, m.Kind)
	}
	return block.DecodeHeader(m.Payload)
}

// DecodeBlockPayload parses the block carried by a BlockResp.
func (m *Message) DecodeBlockPayload() (*block.Block, error) {
	if m.Kind != KindBlockResp {
		return nil, fmt.Errorf("%w: %v carries no block", ErrBadPayload, m.Kind)
	}
	return block.Decode(m.Payload)
}

// Encode serializes the message into a fresh buffer.
func (m *Message) Encode() []byte {
	return m.AppendEncode(make([]byte, 0, m.WireSize()))
}

// AppendEncode serializes the message onto buf and returns the
// extended slice, letting transports reuse one encode buffer per
// connection instead of allocating per message.
func (m *Message) AppendEncode(buf []byte) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.To))
	buf = binary.LittleEndian.AppendUint64(buf, m.Corr)
	buf = binary.LittleEndian.AppendUint64(buf, m.Nonce)
	buf = append(buf, m.Digest[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Ref.Node))
	buf = binary.LittleEndian.AppendUint32(buf, m.Ref.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// WireSize is the exact encoded size in bytes.
func (m *Message) WireSize() int {
	return 1 + 4 + 4 + 8 + 8 + digest.Size + 4 + 4 + 4 + len(m.Payload)
}

// Decode parses an encoded message, rejecting trailing bytes.
func Decode(buf []byte) (*Message, error) {
	const fixed = 1 + 4 + 4 + 8 + 8 + digest.Size + 4 + 4 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	var m Message
	m.Kind = Kind(buf[0])
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, buf[0])
	}
	off := 1
	m.From = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.To = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.Corr = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	m.Nonce = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	copy(m.Digest[:], buf[off:])
	off += digest.Size
	m.Ref.Node = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.Ref.Seq = binary.LittleEndian.Uint32(buf[off:])
	off += 4
	plen := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d", ErrOversized, plen)
	}
	if off+int(plen) > len(buf) {
		return nil, fmt.Errorf("%w: payload", ErrTruncated)
	}
	m.Payload = append([]byte(nil), buf[off:off+int(plen)]...)
	off += int(plen)
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(buf)-off)
	}
	return &m, nil
}
