// Package wire defines the 2LDAG message vocabulary and its binary
// encoding. The protocol has exactly the message families the paper
// names (Sec. IV-D5): digest announcements (block generation,
// Sec. III-D) — singly (DigestAnnounce) or coalesced into one frame
// per neighbor per flush (DigestBatch) — REQ_CHILD / RPY_CHILD (PoP,
// Sec. IV), plus the block retrieval pair a validator uses to fetch
// the verifier's full block (Algorithm 3 line 2). Every message
// carries an anti-replay nonce and a correlation ID for
// request/response matching.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Kind discriminates message payloads. Enums start at 1 so the zero
// value is detectably invalid.
type Kind uint8

const (
	// KindDigestAnnounce carries H(b^h) from a block's origin to one
	// neighbor.
	KindDigestAnnounce Kind = iota + 1
	// KindReqChild asks a node for the oldest of its blocks whose Δ
	// contains Target.
	KindReqChild
	// KindRpyChild answers a ReqChild with an encoded header.
	KindRpyChild
	// KindGetBlock asks a block's origin for the full block.
	KindGetBlock
	// KindBlockResp answers a GetBlock with an encoded block.
	KindBlockResp
	// KindNotFound is a negative response to ReqChild or GetBlock.
	KindNotFound
	// KindDigestBatch carries every digest a node announces to one
	// neighbor in a single frame — one frame per (sender, receiver)
	// pair per flush instead of one per digest. The payload is the
	// concatenation of the digests in seal order (the length prefix of
	// the payload field frames the batch; the digest count is
	// len(Payload)/digest.Size).
	KindDigestBatch

	kindMax
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindDigestAnnounce:
		return "DIGEST"
	case KindReqChild:
		return "REQ_CHILD"
	case KindRpyChild:
		return "RPY_CHILD"
	case KindGetBlock:
		return "GET_BLOCK"
	case KindBlockResp:
		return "BLOCK_RESP"
	case KindNotFound:
		return "NOT_FOUND"
	case KindDigestBatch:
		return "DIGEST_BATCH"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k >= KindDigestAnnounce && k < kindMax }

// IsResponse reports whether the kind answers a prior request.
func (k Kind) IsResponse() bool {
	return k == KindRpyChild || k == KindBlockResp || k == KindNotFound
}

// Codec errors.
var (
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTruncated  = errors.New("wire: truncated message")
	ErrOversized  = errors.New("wire: payload exceeds limit")
	ErrTrailing   = errors.New("wire: trailing bytes")
	ErrBadPayload = errors.New("wire: malformed payload")
)

// MaxPayload bounds encoded header/block payload sizes (matches the
// block codec limit plus framing slack).
const MaxPayload = block.MaxBodyLen + 1<<16

// Message is a single 2LDAG protocol message.
type Message struct {
	Kind Kind
	From identity.NodeID
	To   identity.NodeID
	// Corr correlates responses with requests (0 = unsolicited).
	Corr uint64
	// Nonce is the anti-replay nonce of Sec. IV-D5.
	Nonce uint64

	// Digest is the announced digest (DigestAnnounce) or the PoP target
	// H(b^h_v,t) (ReqChild).
	Digest digest.Digest
	// Ref identifies the requested block (GetBlock).
	Ref block.Ref
	// Payload carries an encoded header (RpyChild) or block (BlockResp).
	Payload []byte
}

// NewDigestAnnounce builds the digest broadcast of Sec. III-D.
func NewDigestAnnounce(from, to identity.NodeID, d digest.Digest, nonce uint64) *Message {
	return &Message{Kind: KindDigestAnnounce, From: from, To: to, Digest: d, Nonce: nonce}
}

// NewDigestBatch builds one coalesced announcement frame carrying
// every digest from sealed for neighbor to, in seal order. The Digest
// field holds the newest digest (the one that ends up in A_i), so a
// batch of one is wire-equivalent to a DigestAnnounce plus the batch
// framing.
func NewDigestBatch(from, to identity.NodeID, ds []digest.Digest, nonce uint64) *Message {
	payload := make([]byte, 0, len(ds)*digest.Size)
	for i := range ds {
		payload = append(payload, ds[i][:]...)
	}
	m := &Message{Kind: KindDigestBatch, From: from, To: to, Nonce: nonce, Payload: payload}
	if len(ds) > 0 {
		m.Digest = ds[len(ds)-1]
	}
	return m
}

// NewReqChild builds a REQ_CHILD for the PoP target digest.
func NewReqChild(from, to identity.NodeID, target digest.Digest, corr, nonce uint64) *Message {
	return &Message{Kind: KindReqChild, From: from, To: to, Digest: target, Corr: corr, Nonce: nonce}
}

// NewRpyChild answers req with an encoded header.
func NewRpyChild(req *Message, h *block.Header) *Message {
	return &Message{
		Kind: KindRpyChild, From: req.To, To: req.From,
		Corr: req.Corr, Nonce: req.Nonce, Payload: block.EncodeHeader(h),
	}
}

// NewGetBlock builds a full-block retrieval request.
func NewGetBlock(from, to identity.NodeID, ref block.Ref, corr, nonce uint64) *Message {
	return &Message{Kind: KindGetBlock, From: from, To: to, Ref: ref, Corr: corr, Nonce: nonce}
}

// NewBlockResp answers req with an encoded block.
func NewBlockResp(req *Message, b *block.Block) *Message {
	return &Message{
		Kind: KindBlockResp, From: req.To, To: req.From,
		Corr: req.Corr, Nonce: req.Nonce, Payload: block.Encode(b),
	}
}

// NewNotFound answers req negatively.
func NewNotFound(req *Message) *Message {
	return &Message{Kind: KindNotFound, From: req.To, To: req.From, Corr: req.Corr, Nonce: req.Nonce}
}

// DecodeDigestBatchPayload parses the digests carried by a
// DigestBatch, in seal order. The digests are copied out of the
// payload, so the returned slice outlives the message buffer.
func (m *Message) DecodeDigestBatchPayload() ([]digest.Digest, error) {
	if m.Kind != KindDigestBatch {
		return nil, fmt.Errorf("%w: %v carries no digest batch", ErrBadPayload, m.Kind)
	}
	if len(m.Payload)%digest.Size != 0 {
		return nil, fmt.Errorf("%w: digest batch payload of %d bytes", ErrBadPayload, len(m.Payload))
	}
	ds := make([]digest.Digest, len(m.Payload)/digest.Size)
	for i := range ds {
		copy(ds[i][:], m.Payload[i*digest.Size:])
	}
	return ds, nil
}

// DecodeHeaderPayload parses the header carried by a RpyChild.
func (m *Message) DecodeHeaderPayload() (*block.Header, error) {
	if m.Kind != KindRpyChild {
		return nil, fmt.Errorf("%w: %v carries no header", ErrBadPayload, m.Kind)
	}
	return block.DecodeHeader(m.Payload)
}

// DecodeBlockPayload parses the block carried by a BlockResp.
func (m *Message) DecodeBlockPayload() (*block.Block, error) {
	if m.Kind != KindBlockResp {
		return nil, fmt.Errorf("%w: %v carries no block", ErrBadPayload, m.Kind)
	}
	return block.Decode(m.Payload)
}

// Encode serializes the message into a fresh buffer.
func (m *Message) Encode() []byte {
	return m.AppendEncode(make([]byte, 0, m.WireSize()))
}

// AppendEncode serializes the message onto buf and returns the
// extended slice, letting transports reuse one encode buffer per
// connection instead of allocating per message.
func (m *Message) AppendEncode(buf []byte) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.To))
	buf = binary.LittleEndian.AppendUint64(buf, m.Corr)
	buf = binary.LittleEndian.AppendUint64(buf, m.Nonce)
	buf = append(buf, m.Digest[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Ref.Node))
	buf = binary.LittleEndian.AppendUint32(buf, m.Ref.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// WireSize is the exact encoded size in bytes.
func (m *Message) WireSize() int {
	return 1 + 4 + 4 + 8 + 8 + digest.Size + 4 + 4 + 4 + len(m.Payload)
}

// Decode parses an encoded message, rejecting trailing bytes.
func Decode(buf []byte) (*Message, error) {
	const fixed = 1 + 4 + 4 + 8 + 8 + digest.Size + 4 + 4 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	var m Message
	m.Kind = Kind(buf[0])
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, buf[0])
	}
	off := 1
	m.From = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.To = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.Corr = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	m.Nonce = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	copy(m.Digest[:], buf[off:])
	off += digest.Size
	m.Ref.Node = identity.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	m.Ref.Seq = binary.LittleEndian.Uint32(buf[off:])
	off += 4
	plen := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d", ErrOversized, plen)
	}
	if off+int(plen) > len(buf) {
		return nil, fmt.Errorf("%w: payload", ErrTruncated)
	}
	m.Payload = append([]byte(nil), buf[off:off+int(plen)]...)
	off += int(plen)
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(buf)-off)
	}
	return &m, nil
}
