package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func sampleHeader() *block.Header {
	key := identity.Deterministic(3, 3)
	p := block.DefaultParams()
	p.Difficulty = 2
	b, err := p.Build(key, 1, 1, []byte("payload"), []block.DigestRef{
		{Node: 3, Digest: digest.Sum([]byte("prev"))},
		{Node: 4, Digest: digest.Sum([]byte("nb"))},
	})
	if err != nil {
		panic(err)
	}
	return &b.Header
}

func messagesEqual(a, b *Message) bool {
	return a.Kind == b.Kind && a.From == b.From && a.To == b.To &&
		a.Corr == b.Corr && a.Nonce == b.Nonce && a.Digest == b.Digest &&
		a.Ref == b.Ref && string(a.Payload) == string(b.Payload)
}

func TestRoundTripAllKinds(t *testing.T) {
	h := sampleHeader()
	blk := &block.Block{Header: *h, Body: []byte("payload")}
	req := NewReqChild(1, 2, digest.Sum([]byte("t")), 7, 9)
	get := NewGetBlock(1, 2, block.Ref{Node: 2, Seq: 5}, 8, 10)
	hello := NewHello(9, 1, HelloInfo{Addr: "127.0.0.1:0", PubKey: []byte{1, 2, 3}, Anchor: 4, X: 1.5, Y: -2.5}, 12, 13)
	msgs := []*Message{
		NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 3),
		NewDigestBatch(1, 2, []digest.Digest{digest.Sum([]byte("a")), digest.Sum([]byte("b"))}, 4),
		req,
		NewRpyChild(req, h),
		get,
		NewBlockResp(get, blk),
		NewNotFound(req),
		NewDigestAck(NewDigestBatch(1, 2, []digest.Digest{digest.Sum([]byte("a"))}, 4)),
		hello,
		NewPeerList(hello, []PeerEntry{{ID: 1, Live: true, Anchor: NoAnchor, Addr: "h:1", PubKey: []byte{9}}}),
		NewPeerListPush(1, 2, nil, 5),
		NewLeave(1, 2, 6),
	}
	for _, m := range msgs {
		enc := m.Encode()
		if len(enc) != m.WireSize() {
			t.Fatalf("%v: WireSize %d != %d", m.Kind, m.WireSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Kind, err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("%v: round trip mismatch", m.Kind)
		}
	}
}

func TestResponseConstructorsSwapEndpoints(t *testing.T) {
	req := NewReqChild(10, 20, digest.Sum([]byte("x")), 55, 66)
	rpy := NewRpyChild(req, sampleHeader())
	if rpy.From != 20 || rpy.To != 10 || rpy.Corr != 55 || rpy.Nonce != 66 {
		t.Fatal("RpyChild endpoints/corr wrong")
	}
	nf := NewNotFound(req)
	if nf.From != 20 || nf.To != 10 || nf.Corr != 55 {
		t.Fatal("NotFound endpoints wrong")
	}
}

func TestDecodePayloads(t *testing.T) {
	h := sampleHeader()
	req := NewReqChild(1, 2, digest.Sum([]byte("t")), 1, 1)
	rpy := NewRpyChild(req, h)
	back, err := rpy.DecodeHeaderPayload()
	if err != nil {
		t.Fatalf("DecodeHeaderPayload: %v", err)
	}
	if back.Hash() != h.Hash() {
		t.Fatal("header payload mismatch")
	}
	if _, err := req.DecodeHeaderPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("header decode on REQ should fail: %v", err)
	}

	blk := &block.Block{Header: *h, Body: []byte("body bytes")}
	get := NewGetBlock(1, 2, h.Ref(), 2, 2)
	resp := NewBlockResp(get, blk)
	backBlk, err := resp.DecodeBlockPayload()
	if err != nil {
		t.Fatalf("DecodeBlockPayload: %v", err)
	}
	if string(backBlk.Body) != string(blk.Body) {
		t.Fatal("block payload mismatch")
	}
	if _, err := get.DecodeBlockPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("block decode on GET should fail: %v", err)
	}
}

func TestDigestBatchPayload(t *testing.T) {
	ds := []digest.Digest{
		digest.Sum([]byte("first")),
		digest.Sum([]byte("second")),
		digest.Sum([]byte("third")),
	}
	m := NewDigestBatch(7, 8, ds, 11)
	if m.Digest != ds[len(ds)-1] {
		t.Fatal("batch Digest field must hold the newest digest")
	}
	back, err := m.DecodeDigestBatchPayload()
	if err != nil {
		t.Fatalf("DecodeDigestBatchPayload: %v", err)
	}
	if len(back) != len(ds) {
		t.Fatalf("got %d digests, want %d", len(back), len(ds))
	}
	for i := range ds {
		if back[i] != ds[i] {
			t.Fatalf("digest %d mismatch (seal order must survive the wire)", i)
		}
	}
	// The wrong kind and a payload not a multiple of digest.Size are
	// both rejected.
	ann := NewDigestAnnounce(1, 2, ds[0], 1)
	if _, err := ann.DecodeDigestBatchPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("batch decode on DIGEST should fail: %v", err)
	}
	m.Payload = m.Payload[:len(m.Payload)-1]
	if _, err := m.DecodeDigestBatchPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ragged payload should fail: %v", err)
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	m := NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 0)
	enc := m.Encode()
	enc[0] = 0
	if _, err := Decode(enc); !errors.Is(err, ErrBadKind) {
		t.Fatalf("want ErrBadKind, got %v", err)
	}
	enc[0] = 99
	if _, err := Decode(enc); !errors.Is(err, ErrBadKind) {
		t.Fatalf("want ErrBadKind, got %v", err)
	}
}

func TestDecodeTruncatedAndTrailing(t *testing.T) {
	m := NewReqChild(1, 2, digest.Sum([]byte("t")), 1, 1)
	enc := m.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(enc, 0x00)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if KindReqChild.String() != "REQ_CHILD" || KindRpyChild.String() != "RPY_CHILD" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Fatal("invalid kinds accepted")
	}
	if !KindRpyChild.IsResponse() || !KindNotFound.IsResponse() || KindReqChild.IsResponse() {
		t.Fatal("IsResponse wrong")
	}
	// PeerList answers Hello through the RPC correlation map; DigestAck
	// is unsolicited by design (it acknowledges corr-0 announcements).
	if !KindPeerList.IsResponse() || KindHello.IsResponse() || KindDigestAck.IsResponse() || KindLeave.IsResponse() {
		t.Fatal("directory IsResponse wrong")
	}
	if Kind(250).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

// TestKindStringExhaustive pins that every defined kind has a name:
// adding a kind without extending String (or the Valid range) fails
// here, not in a log line reading "KIND(11)".
func TestKindStringExhaustive(t *testing.T) {
	for k := KindDigestAnnounce; k < kindMax; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d inside the enum range reports invalid", k)
		}
		if s := k.String(); len(s) >= 5 && s[:5] == "KIND(" {
			t.Fatalf("kind %d has no String case: %q", k, s)
		}
	}
	if s := kindMax.String(); len(s) < 5 || s[:5] != "KIND(" {
		t.Fatalf("kindMax must render as unknown, got %q", s)
	}
	if kindMax.Valid() {
		t.Fatal("kindMax must be invalid")
	}
}

// Golden frames: the exact bytes of a Hello and a PeerList, pinned so
// the directory protocol's encoding never drifts silently (cross-host
// processes of different builds must interoperate).
const (
	goldenHelloHex    = "09030000000000000007000000000000000900000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000002800000001000000000000000040604000000000000059400d0031302e302e302e333a3930303004aabbccdd"
	goldenPeerListHex = "0a0000000003000000070000000000000009000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000077000000030000000000000001ffffffff000000000000594000000000000059400d0031302e302e302e313a3930303001010200000000ffffffff0000000000004e400000000000005940000000030000000101000000000000000040604000000000000059400d0031302e302e302e333a3930303004aabbccdd"
)

func goldenHello() *Message {
	return NewHello(3, 0, HelloInfo{
		Addr:   "10.0.0.3:9000",
		PubKey: []byte{0xAA, 0xBB, 0xCC, 0xDD},
		Anchor: 1,
		X:      130, Y: 100,
	}, 7, 9)
}

func goldenPeerList() *Message {
	req := &Message{Kind: KindHello, From: 3, To: 0, Corr: 7, Nonce: 9}
	return NewPeerList(req, []PeerEntry{
		{ID: 0, Live: true, Anchor: NoAnchor, X: 100, Y: 100, Addr: "10.0.0.1:9000", PubKey: []byte{0x01}},
		{ID: 2, Live: false, Anchor: NoAnchor, X: 60, Y: 100},
		{ID: 3, Live: true, Anchor: 1, X: 130, Y: 100, Addr: "10.0.0.3:9000", PubKey: []byte{0xAA, 0xBB, 0xCC, 0xDD}},
	})
}

func TestGoldenHelloFrame(t *testing.T) {
	m := goldenHello()
	if got := hex.EncodeToString(m.Encode()); got != goldenHelloHex {
		t.Fatalf("hello encoding drifted:\ngot  %s\nwant %s", got, goldenHelloHex)
	}
	raw, _ := hex.DecodeString(goldenHelloHex)
	back, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode golden hello: %v", err)
	}
	info, err := back.DecodeHelloPayload()
	if err != nil {
		t.Fatalf("DecodeHelloPayload: %v", err)
	}
	if info.Addr != "10.0.0.3:9000" || string(info.PubKey) != "\xaa\xbb\xcc\xdd" ||
		info.Anchor != 1 || info.X != 130 || info.Y != 100 {
		t.Fatalf("golden hello fields wrong: %+v", info)
	}
}

func TestGoldenPeerListFrame(t *testing.T) {
	m := goldenPeerList()
	if got := hex.EncodeToString(m.Encode()); got != goldenPeerListHex {
		t.Fatalf("peer list encoding drifted:\ngot  %s\nwant %s", got, goldenPeerListHex)
	}
	raw, _ := hex.DecodeString(goldenPeerListHex)
	back, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode golden peer list: %v", err)
	}
	entries, err := back.DecodePeerListPayload()
	if err != nil {
		t.Fatalf("DecodePeerListPayload: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if !entries[0].Live || entries[0].Anchor != NoAnchor || entries[0].Addr != "10.0.0.1:9000" {
		t.Fatalf("entry 0 wrong: %+v", entries[0])
	}
	if entries[1].Live || entries[1].ID != 2 || entries[1].Addr != "" || len(entries[1].PubKey) != 0 {
		t.Fatalf("entry 1 wrong: %+v", entries[1])
	}
	if entries[2].Anchor != 1 || entries[2].X != 130 {
		t.Fatalf("entry 2 wrong: %+v", entries[2])
	}
}

func TestHelloPayloadHardening(t *testing.T) {
	m := goldenHello()
	// Truncation anywhere in the payload is rejected.
	for cut := 0; cut < len(m.Payload); cut++ {
		bad := &Message{Kind: KindHello, Payload: m.Payload[:cut]}
		if _, err := bad.DecodeHelloPayload(); err == nil {
			t.Fatalf("hello payload truncated at %d accepted", cut)
		}
	}
	// Trailing bytes are rejected.
	bad := &Message{Kind: KindHello, Payload: append(append([]byte(nil), m.Payload...), 0)}
	if _, err := bad.DecodeHelloPayload(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
	// An address length past the limit is rejected before any read.
	over := append([]byte(nil), m.Payload...)
	binary.LittleEndian.PutUint16(over[4+8+8:], maxAddrLen+1)
	bad = &Message{Kind: KindHello, Payload: over}
	if _, err := bad.DecodeHelloPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("want ErrBadPayload for oversized addr, got %v", err)
	}
	// The wrong kind is rejected.
	if _, err := NewLeave(1, 2, 3).DecodeHelloPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("hello decode on LEAVE should fail: %v", err)
	}
}

func TestPeerListPayloadHardening(t *testing.T) {
	m := goldenPeerList()
	for cut := 0; cut < len(m.Payload); cut++ {
		bad := &Message{Kind: KindPeerList, Payload: m.Payload[:cut]}
		if _, err := bad.DecodePeerListPayload(); err == nil {
			t.Fatalf("peer list truncated at %d accepted", cut)
		}
	}
	// An absurd entry count is rejected before allocation.
	count := append([]byte(nil), m.Payload...)
	binary.LittleEndian.PutUint32(count, 1<<30)
	bad := &Message{Kind: KindPeerList, Payload: count}
	if _, err := bad.DecodePeerListPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("want ErrBadPayload for absurd count, got %v", err)
	}
	// A liveness byte other than 0/1 is rejected.
	live := append([]byte(nil), m.Payload...)
	live[4+4] = 7
	bad = &Message{Kind: KindPeerList, Payload: live}
	if _, err := bad.DecodePeerListPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("want ErrBadPayload for bad liveness, got %v", err)
	}
	// Trailing bytes are rejected.
	bad = &Message{Kind: KindPeerList, Payload: append(append([]byte(nil), m.Payload...), 0)}
	if _, err := bad.DecodePeerListPayload(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
	if _, err := NewLeave(1, 2, 3).DecodePeerListPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("peer list decode on LEAVE should fail: %v", err)
	}
}

func TestDigestAckEchoesAnnouncement(t *testing.T) {
	// Singleton: the ack swaps endpoints and echoes the digest, with no
	// payload.
	ann := NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 3)
	ack := NewDigestAck(ann)
	if ack.From != 2 || ack.To != 1 || ack.Digest != ann.Digest || ack.Nonce != 3 || len(ack.Payload) != 0 {
		t.Fatalf("singleton ack wrong: %+v", ack)
	}
	if ds, err := ack.DecodeDigestAckPayload(); err != nil || ds != nil {
		t.Fatalf("singleton ack payload: ds=%v err=%v", ds, err)
	}
	// Batch: the ack echoes the digest run so the sender resolves every
	// carried digest.
	ds := []digest.Digest{digest.Sum([]byte("a")), digest.Sum([]byte("b"))}
	back, err := NewDigestAck(NewDigestBatch(1, 2, ds, 4)).DecodeDigestAckPayload()
	if err != nil {
		t.Fatalf("DecodeDigestAckPayload: %v", err)
	}
	if len(back) != 2 || back[0] != ds[0] || back[1] != ds[1] {
		t.Fatalf("batch ack digests wrong: %v", back)
	}
	// A ragged echo and the wrong kind are rejected.
	bad := &Message{Kind: KindDigestAck, Payload: make([]byte, digest.Size+1)}
	if _, err := bad.DecodeDigestAckPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ragged ack should fail: %v", err)
	}
	if _, err := ann.DecodeDigestAckPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ack decode on DIGEST should fail: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Kind:  Kind(r.Intn(int(kindMax)-1) + 1),
			From:  identity.NodeID(r.Uint32()),
			To:    identity.NodeID(r.Uint32()),
			Corr:  r.Uint64(),
			Nonce: r.Uint64(),
			Ref:   block.Ref{Node: identity.NodeID(r.Uint32()), Seq: r.Uint32()},
		}
		r.Read(m.Digest[:])
		m.Payload = make([]byte, r.Intn(100))
		r.Read(m.Payload)
		got, err := Decode(m.Encode())
		return err == nil && messagesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeMessage hardens the frame decoder (and the directory
// payload decoders behind it) against hostile input: no panic, and
// anything Decode accepts must re-encode to the identical bytes.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: every constructor's valid frame, truncations of a
	// representative frame, an unknown kind, and ragged directory
	// payloads.
	req := NewReqChild(1, 2, digest.Sum([]byte("t")), 7, 9)
	hello := goldenHello()
	seeds := [][]byte{
		NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 3).Encode(),
		NewDigestBatch(1, 2, []digest.Digest{digest.Sum([]byte("a")), digest.Sum([]byte("b"))}, 4).Encode(),
		NewDigestAck(NewDigestBatch(1, 2, []digest.Digest{digest.Sum([]byte("a"))}, 4)).Encode(),
		req.Encode(),
		NewNotFound(req).Encode(),
		hello.Encode(),
		goldenPeerList().Encode(),
		NewLeave(1, 2, 6).Encode(),
	}
	full := hello.Encode()
	for _, cut := range []int{0, 1, 8, 20, len(full) / 2, len(full) - 1} {
		seeds = append(seeds, full[:cut])
	}
	unknown := append([]byte(nil), full...)
	unknown[0] = byte(kindMax)
	seeds = append(seeds, unknown)
	ragged := goldenPeerList()
	ragged.Payload = ragged.Payload[:len(ragged.Payload)-3]
	seeds = append(seeds, ragged.Encode())
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), raw) {
			t.Fatalf("accepted frame does not re-encode identically")
		}
		// The payload decoders must never panic on accepted frames.
		switch m.Kind {
		case KindHello:
			_, _ = m.DecodeHelloPayload()
		case KindPeerList:
			_, _ = m.DecodePeerListPayload()
		case KindDigestAck:
			_, _ = m.DecodeDigestAckPayload()
		case KindDigestBatch:
			_, _ = m.DecodeDigestBatchPayload()
		}
	})
}
