package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func sampleHeader() *block.Header {
	key := identity.Deterministic(3, 3)
	p := block.DefaultParams()
	p.Difficulty = 2
	b, err := p.Build(key, 1, 1, []byte("payload"), []block.DigestRef{
		{Node: 3, Digest: digest.Sum([]byte("prev"))},
		{Node: 4, Digest: digest.Sum([]byte("nb"))},
	})
	if err != nil {
		panic(err)
	}
	return &b.Header
}

func messagesEqual(a, b *Message) bool {
	return a.Kind == b.Kind && a.From == b.From && a.To == b.To &&
		a.Corr == b.Corr && a.Nonce == b.Nonce && a.Digest == b.Digest &&
		a.Ref == b.Ref && string(a.Payload) == string(b.Payload)
}

func TestRoundTripAllKinds(t *testing.T) {
	h := sampleHeader()
	blk := &block.Block{Header: *h, Body: []byte("payload")}
	req := NewReqChild(1, 2, digest.Sum([]byte("t")), 7, 9)
	get := NewGetBlock(1, 2, block.Ref{Node: 2, Seq: 5}, 8, 10)
	msgs := []*Message{
		NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 3),
		NewDigestBatch(1, 2, []digest.Digest{digest.Sum([]byte("a")), digest.Sum([]byte("b"))}, 4),
		req,
		NewRpyChild(req, h),
		get,
		NewBlockResp(get, blk),
		NewNotFound(req),
	}
	for _, m := range msgs {
		enc := m.Encode()
		if len(enc) != m.WireSize() {
			t.Fatalf("%v: WireSize %d != %d", m.Kind, m.WireSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Kind, err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("%v: round trip mismatch", m.Kind)
		}
	}
}

func TestResponseConstructorsSwapEndpoints(t *testing.T) {
	req := NewReqChild(10, 20, digest.Sum([]byte("x")), 55, 66)
	rpy := NewRpyChild(req, sampleHeader())
	if rpy.From != 20 || rpy.To != 10 || rpy.Corr != 55 || rpy.Nonce != 66 {
		t.Fatal("RpyChild endpoints/corr wrong")
	}
	nf := NewNotFound(req)
	if nf.From != 20 || nf.To != 10 || nf.Corr != 55 {
		t.Fatal("NotFound endpoints wrong")
	}
}

func TestDecodePayloads(t *testing.T) {
	h := sampleHeader()
	req := NewReqChild(1, 2, digest.Sum([]byte("t")), 1, 1)
	rpy := NewRpyChild(req, h)
	back, err := rpy.DecodeHeaderPayload()
	if err != nil {
		t.Fatalf("DecodeHeaderPayload: %v", err)
	}
	if back.Hash() != h.Hash() {
		t.Fatal("header payload mismatch")
	}
	if _, err := req.DecodeHeaderPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("header decode on REQ should fail: %v", err)
	}

	blk := &block.Block{Header: *h, Body: []byte("body bytes")}
	get := NewGetBlock(1, 2, h.Ref(), 2, 2)
	resp := NewBlockResp(get, blk)
	backBlk, err := resp.DecodeBlockPayload()
	if err != nil {
		t.Fatalf("DecodeBlockPayload: %v", err)
	}
	if string(backBlk.Body) != string(blk.Body) {
		t.Fatal("block payload mismatch")
	}
	if _, err := get.DecodeBlockPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("block decode on GET should fail: %v", err)
	}
}

func TestDigestBatchPayload(t *testing.T) {
	ds := []digest.Digest{
		digest.Sum([]byte("first")),
		digest.Sum([]byte("second")),
		digest.Sum([]byte("third")),
	}
	m := NewDigestBatch(7, 8, ds, 11)
	if m.Digest != ds[len(ds)-1] {
		t.Fatal("batch Digest field must hold the newest digest")
	}
	back, err := m.DecodeDigestBatchPayload()
	if err != nil {
		t.Fatalf("DecodeDigestBatchPayload: %v", err)
	}
	if len(back) != len(ds) {
		t.Fatalf("got %d digests, want %d", len(back), len(ds))
	}
	for i := range ds {
		if back[i] != ds[i] {
			t.Fatalf("digest %d mismatch (seal order must survive the wire)", i)
		}
	}
	// The wrong kind and a payload not a multiple of digest.Size are
	// both rejected.
	ann := NewDigestAnnounce(1, 2, ds[0], 1)
	if _, err := ann.DecodeDigestBatchPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("batch decode on DIGEST should fail: %v", err)
	}
	m.Payload = m.Payload[:len(m.Payload)-1]
	if _, err := m.DecodeDigestBatchPayload(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ragged payload should fail: %v", err)
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	m := NewDigestAnnounce(1, 2, digest.Sum([]byte("d")), 0)
	enc := m.Encode()
	enc[0] = 0
	if _, err := Decode(enc); !errors.Is(err, ErrBadKind) {
		t.Fatalf("want ErrBadKind, got %v", err)
	}
	enc[0] = 99
	if _, err := Decode(enc); !errors.Is(err, ErrBadKind) {
		t.Fatalf("want ErrBadKind, got %v", err)
	}
}

func TestDecodeTruncatedAndTrailing(t *testing.T) {
	m := NewReqChild(1, 2, digest.Sum([]byte("t")), 1, 1)
	enc := m.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(enc, 0x00)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if KindReqChild.String() != "REQ_CHILD" || KindRpyChild.String() != "RPY_CHILD" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Fatal("invalid kinds accepted")
	}
	if !KindRpyChild.IsResponse() || !KindNotFound.IsResponse() || KindReqChild.IsResponse() {
		t.Fatal("IsResponse wrong")
	}
	if Kind(250).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Kind:  Kind(r.Intn(int(kindMax)-1) + 1),
			From:  identity.NodeID(r.Uint32()),
			To:    identity.NodeID(r.Uint32()),
			Corr:  r.Uint64(),
			Nonce: r.Uint64(),
			Ref:   block.Ref{Node: identity.NodeID(r.Uint32()), Seq: r.Uint32()},
		}
		r.Read(m.Digest[:])
		m.Payload = make([]byte, r.Intn(100))
		r.Read(m.Payload)
		got, err := Decode(m.Encode())
		return err == nil && messagesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
