package identity

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGenerateSignVerify(t *testing.T) {
	kp, err := Generate(7, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !kp.Valid() {
		t.Fatal("generated key pair invalid")
	}
	ring := NewRing()
	if err := ring.Register(kp.ID, kp.Public); err != nil {
		t.Fatalf("Register: %v", err)
	}
	msg := []byte("block header preimage")
	sig := kp.Sign(msg)
	if err := ring.Verify(kp.ID, msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	kp := Deterministic(1, 99)
	ring, err := RingFor([]KeyPair{kp})
	if err != nil {
		t.Fatal(err)
	}
	sig := kp.Sign([]byte("original"))
	if err := ring.Verify(1, []byte("tampered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	a, b := Deterministic(1, 5), Deterministic(2, 5)
	ring, err := RingFor([]KeyPair{a, b})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("who signed this")
	if err := ring.Verify(2, msg, a.Sign(msg)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyUnknownNode(t *testing.T) {
	ring := NewRing()
	if err := ring.Verify(42, []byte("m"), make([]byte, SignatureSize)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if _, err := ring.Lookup(42); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	kp := Deterministic(3, 1)
	imp := Deterministic(3, 2) // attacker's key for the same ID
	ring := NewRing()
	if err := ring.Register(kp.ID, kp.Public); err != nil {
		t.Fatal(err)
	}
	if err := ring.Register(imp.ID, imp.Public); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("Sybil re-registration accepted: %v", err)
	}
}

func TestRegisterMalformedKey(t *testing.T) {
	ring := NewRing()
	if err := ring.Register(1, []byte("short")); !errors.Is(err, ErrShortKey) {
		t.Fatalf("want ErrShortKey, got %v", err)
	}
}

func TestDeregister(t *testing.T) {
	kp := Deterministic(9, 9)
	ring, _ := RingFor([]KeyPair{kp})
	if err := ring.Deregister(9); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 0 {
		t.Fatal("ring not empty after deregister")
	}
	if err := ring.Deregister(9); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("double deregister: %v", err)
	}
}

func TestDeterministicReproducible(t *testing.T) {
	a := Deterministic(5, 77)
	b := Deterministic(5, 77)
	c := Deterministic(6, 77)
	d := Deterministic(5, 78)
	if string(a.Public) != string(b.Public) {
		t.Fatal("deterministic keys differ for same (id, seed)")
	}
	if string(a.Public) == string(c.Public) || string(a.Public) == string(d.Public) {
		t.Fatal("deterministic keys collide across ids/seeds")
	}
}

func TestIDsSorted(t *testing.T) {
	ring, err := RingFor([]KeyPair{Deterministic(9, 1), Deterministic(2, 1), Deterministic(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ids := ring.IDs()
	want := []NodeID{2, 5, 9}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func TestRingForDuplicateFails(t *testing.T) {
	_, err := RingFor([]KeyPair{Deterministic(1, 1), Deterministic(1, 2)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	kp := Deterministic(4, 4)
	ring, _ := RingFor([]KeyPair{kp})
	pub, err := ring.Lookup(4)
	if err != nil {
		t.Fatal(err)
	}
	pub[0] ^= 0xFF // mutate the returned slice
	if err := ring.Verify(4, []byte("m"), kp.Sign([]byte("m"))); err != nil {
		t.Fatal("mutating Lookup result corrupted the ring")
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(17).String() != "n17" {
		t.Fatalf("NodeID.String = %q", NodeID(17).String())
	}
}

func TestQuickSignVerify(t *testing.T) {
	kp := Deterministic(11, 123)
	ring, _ := RingFor([]KeyPair{kp})
	f := func(msg []byte) bool {
		return ring.Verify(11, msg, kp.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
