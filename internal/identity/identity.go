// Package identity provides node identifiers, Ed25519 key pairs and a
// thread-safe public-key registry for 2LDAG networks.
//
// The paper assumes (Sec. III-A, IV-D) that node registration is handled
// out of band and that "nodes are aware of the topology and each other's
// public key"; the Ring type is that shared registry. Header signatures
// (paper Eq. 6) are produced with a node's private key and checked by
// validators against the ring, which is what defeats Sybil and
// man-in-the-middle attackers (Sec. IV-D3/D4).
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/twoldag/twoldag/internal/digest"
)

// NodeID identifies a physical IoT node (the index i ∈ V of the paper).
type NodeID uint32

// String renders the ID as "n<index>".
func (id NodeID) String() string {
	return fmt.Sprintf("n%d", uint32(id))
}

// SignatureSize is the size in bytes of a real Ed25519 signature. Note
// the paper's analytic size model uses f_s = 256 bits; the harness
// accounts with the model while the runtime carries real signatures.
const SignatureSize = ed25519.SignatureSize

// Sentinel errors for ring operations.
var (
	ErrUnknownNode  = errors.New("identity: unknown node")
	ErrDuplicateKey = errors.New("identity: node already registered")
	ErrBadSignature = errors.New("identity: signature verification failed")
	ErrShortKey     = errors.New("identity: malformed public key")
)

// KeyPair is a node's signing identity.
type KeyPair struct {
	ID      NodeID
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Generate creates a key pair for id using entropy from rng (nil means
// crypto/rand.Reader).
func Generate(id NodeID, rng io.Reader) (KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return KeyPair{}, fmt.Errorf("identity: generating key for %v: %w", id, err)
	}
	return KeyPair{ID: id, Public: pub, private: priv}, nil
}

// Deterministic derives a reproducible key pair from (seed, id). Used by
// the simulator so experiment runs are bit-for-bit repeatable.
func Deterministic(id NodeID, seed int64) KeyPair {
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint32(buf[8:], uint32(id))
	d := digest.Sum([]byte("2ldag/keyseed"), buf[:])
	priv := ed25519.NewKeyFromSeed(d[:])
	return KeyPair{ID: id, Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs msg with the node's private key.
func (kp KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(kp.private, msg)
}

// Valid reports whether the key pair holds usable key material.
func (kp KeyPair) Valid() bool {
	return len(kp.Public) == ed25519.PublicKeySize && len(kp.private) == ed25519.PrivateKeySize
}

// Ring is a concurrency-safe registry mapping node IDs to public keys.
// The zero value is ready to use.
type Ring struct {
	mu   sync.RWMutex
	keys map[NodeID]ed25519.PublicKey
}

// NewRing returns an empty registry.
func NewRing() *Ring {
	return &Ring{}
}

// Register adds a node's public key. Registering an already-known node
// fails with ErrDuplicateKey: re-keying requires explicit Deregister,
// which keeps a Sybil attacker from silently replacing identities.
func (r *Ring) Register(id NodeID, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: %d bytes", ErrShortKey, len(pub))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.keys == nil {
		r.keys = make(map[NodeID]ed25519.PublicKey)
	}
	if _, ok := r.keys[id]; ok {
		return fmt.Errorf("%w: %v", ErrDuplicateKey, id)
	}
	r.keys[id] = append(ed25519.PublicKey(nil), pub...)
	return nil
}

// Deregister removes a node (dynamic-membership support; paper Sec. VII).
func (r *Ring) Deregister(id NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.keys[id]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	delete(r.keys, id)
	return nil
}

// Lookup returns the public key registered for id.
func (r *Ring) Lookup(id NodeID) (ed25519.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	return append(ed25519.PublicKey(nil), pub...), nil
}

// Verify checks sig over msg against id's registered key.
func (r *Ring) Verify(id NodeID, msg, sig []byte) error {
	r.mu.RLock()
	pub, ok := r.keys[id]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	if len(sig) != ed25519.SignatureSize || !ed25519.Verify(pub, msg, sig) {
		return fmt.Errorf("%w: node %v", ErrBadSignature, id)
	}
	return nil
}

// Len returns the number of registered nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// IDs returns all registered node IDs in ascending order.
func (r *Ring) IDs() []NodeID {
	r.mu.RLock()
	ids := make([]NodeID, 0, len(r.keys))
	for id := range r.keys {
		ids = append(ids, id)
	}
	r.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RingFor builds a ring from a set of key pairs, failing on duplicates.
func RingFor(pairs []KeyPair) (*Ring, error) {
	r := NewRing()
	for _, kp := range pairs {
		if err := r.Register(kp.ID, kp.Public); err != nil {
			return nil, err
		}
	}
	return r, nil
}
