package attack

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func sampleHeader(t *testing.T) *block.Header {
	t.Helper()
	p := block.DefaultParams()
	p.Difficulty = 2
	b, err := p.Build(identity.Deterministic(1, 1), 0, 0, []byte("data"), []block.DigestRef{
		{Node: 1, Digest: digest.Sum([]byte("prev"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &b.Header
}

func TestHonestPassthrough(t *testing.T) {
	h := sampleHeader(t)
	got, err := Honest{}.OnChildRequest(0, 1, digest.Digest{}, h, nil)
	if err != nil || got != h {
		t.Fatal("honest behavior altered the reply")
	}
	if !(Honest{}).Responds() {
		t.Fatal("honest must respond")
	}
}

func TestSilentDropsEverything(t *testing.T) {
	h := sampleHeader(t)
	if _, err := (Silent{}).OnChildRequest(0, 1, digest.Digest{}, h, nil); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("silent behavior replied")
	}
	if _, err := (Silent{}).OnBlockRequest(0, 1, &block.Block{}, nil); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("silent behavior served a block")
	}
	if (Silent{}).Responds() {
		t.Fatal("silent must not respond")
	}
}

func TestCorruptForgesButStillResponds(t *testing.T) {
	h := sampleHeader(t)
	got, err := (Corrupt{}).OnChildRequest(0, 1, digest.Digest{}, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() == h.Hash() {
		t.Fatal("corrupt behavior did not alter the header")
	}
	if h.Digests[0].Digest == got.Digests[0].Digest {
		t.Fatal("corruption should flip a digest")
	}
	if !(Corrupt{}).Responds() {
		t.Fatal("corrupt nodes still transmit")
	}
	// Errors pass through untouched.
	if _, err := (Corrupt{}).OnChildRequest(0, 1, digest.Digest{}, nil, core.ErrNoChild); !errors.Is(err, core.ErrNoChild) {
		t.Fatal("corrupt should preserve upstream errors")
	}
}

func TestCorruptForgesBlocks(t *testing.T) {
	b := &block.Block{Header: *sampleHeader(t), Body: []byte("honest body")}
	got, err := (Corrupt{}).OnBlockRequest(0, 1, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Body[0] == b.Body[0] {
		t.Fatal("corrupt behavior did not alter the body")
	}
	if b.Body[0] != 'h' {
		t.Fatal("corruption mutated the caller's block")
	}
}

func TestSelfishUnlocksAfterCredits(t *testing.T) {
	s := &Selfish{CreditsNeeded: 2}
	h := sampleHeader(t)
	if _, err := s.OnChildRequest(0, 1, digest.Digest{}, h, nil); err == nil {
		t.Fatal("selfish node cooperated without credits")
	}
	if s.Responds() {
		t.Fatal("selfish node should be silent pre-credit")
	}
	s.Credit()
	s.Credit()
	got, err := s.OnChildRequest(0, 1, digest.Digest{}, h, nil)
	if err != nil || got != h {
		t.Fatal("selfish node refused after credits")
	}
	if !s.Responds() {
		t.Fatal("selfish node should respond post-credit")
	}
}

func TestEclipseFiltersByValidator(t *testing.T) {
	e := Eclipse{Allow: map[identity.NodeID]bool{7: true}}
	h := sampleHeader(t)
	if _, err := e.OnChildRequest(7, 1, digest.Digest{}, h, nil); err != nil {
		t.Fatal("allowed validator was eclipsed")
	}
	if _, err := e.OnChildRequest(8, 1, digest.Digest{}, h, nil); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("disallowed validator got a reply")
	}
	if _, err := e.OnBlockRequest(8, 1, &block.Block{}, nil); !errors.Is(err, core.ErrTimeout) {
		t.Fatal("disallowed validator got a block")
	}
}

func TestFlooderAnnouncements(t *testing.T) {
	if (Flooder{}).Announcements() != 1 {
		t.Fatal("zero flooder must announce once")
	}
	if (Flooder{BlocksPerSlot: 50}).Announcements() != 50 {
		t.Fatal("flooder rate wrong")
	}
}

func TestNewByKind(t *testing.T) {
	if _, ok := New(KindSilent).(Silent); !ok {
		t.Fatal("KindSilent wrong type")
	}
	if _, ok := New(KindCorrupt).(Corrupt); !ok {
		t.Fatal("KindCorrupt wrong type")
	}
	if _, ok := New(KindSelfish).(*Selfish); !ok {
		t.Fatal("KindSelfish wrong type")
	}
	if _, ok := New(KindEclipse).(Eclipse); !ok {
		t.Fatal("KindEclipse wrong type")
	}
	if _, ok := New("unknown").(Honest); !ok {
		t.Fatal("unknown kind must default to honest")
	}
}

func TestAssign(t *testing.T) {
	ids := []identity.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	rng := rand.New(rand.NewSource(5))
	m := Assign(ids, 4, KindSilent, rng)
	if len(m) != 4 {
		t.Fatalf("assigned %d, want 4", len(m))
	}
	for id := range m {
		found := false
		for _, x := range ids {
			if x == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("assigned unknown node %v", id)
		}
	}
	if len(Assign(ids, 0, KindSilent, rng)) != 0 {
		t.Fatal("zero assignment must be empty")
	}
	if got := Assign(ids, 99, KindSilent, rng); len(got) != len(ids) {
		t.Fatalf("over-assignment = %d, want %d", len(got), len(ids))
	}
}

func TestAssignDeterministicPerSeed(t *testing.T) {
	ids := []identity.NodeID{0, 1, 2, 3, 4}
	a := Assign(ids, 2, KindSilent, rand.New(rand.NewSource(1)))
	b := Assign(ids, 2, KindSilent, rand.New(rand.NewSource(1)))
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for id := range a {
		if _, ok := b[id]; !ok {
			t.Fatal("same seed produced different assignments")
		}
	}
}
