// Package attack models the adversarial behaviors analyzed in the
// paper's security discussion (Sec. IV-D): silent nodes, header
// corruption (man-in-the-middle), selfish refusal, eclipse filtering
// and DoS flooding. Behaviors intercept a responder's honest reply on
// its way to a validator; the simulator and the live runtime both
// inject them behind the core.Fetcher seam, so the validator code under
// test is exactly the production code.
package attack

import (
	"math/rand"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Behavior rewrites (or suppresses) one node's responder traffic.
type Behavior interface {
	// OnChildRequest intercepts the reply node j would send to
	// validator for REQ_CHILD(target). h/err is the honest outcome.
	OnChildRequest(validator, j identity.NodeID, target digest.Digest, h *block.Header, err error) (*block.Header, error)
	// OnBlockRequest intercepts full-block retrievals served by node j.
	OnBlockRequest(validator, j identity.NodeID, b *block.Block, err error) (*block.Block, error)
	// Responds reports whether the node transmits anything at all for
	// the given request outcome; used by cost accounting (a silent node
	// sends no bits).
	Responds() bool
}

// Honest passes traffic through unchanged. The zero value is ready.
type Honest struct{}

// OnChildRequest implements Behavior.
func (Honest) OnChildRequest(_, _ identity.NodeID, _ digest.Digest, h *block.Header, err error) (*block.Header, error) {
	return h, err
}

// OnBlockRequest implements Behavior.
func (Honest) OnBlockRequest(_, _ identity.NodeID, b *block.Block, err error) (*block.Block, error) {
	return b, err
}

// Responds implements Behavior.
func (Honest) Responds() bool { return true }

// Silent never answers any PoP request — the malicious model of the
// paper's Fig. 5 and the consensus experiments (Sec. VI-C). The zero
// value is ready.
type Silent struct{}

// OnChildRequest implements Behavior.
func (Silent) OnChildRequest(_, _ identity.NodeID, _ digest.Digest, _ *block.Header, _ error) (*block.Header, error) {
	return nil, core.ErrTimeout
}

// OnBlockRequest implements Behavior.
func (Silent) OnBlockRequest(_, _ identity.NodeID, _ *block.Block, _ error) (*block.Block, error) {
	return nil, core.ErrTimeout
}

// Responds implements Behavior.
func (Silent) Responds() bool { return false }

// Corrupt answers with forged headers/blocks: one Δ digest (or body
// byte) is flipped, modeling a captured node serving tampered data
// (Sec. IV-D4). Signature checks at the validator catch it.
type Corrupt struct{}

// OnChildRequest implements Behavior.
func (Corrupt) OnChildRequest(_, _ identity.NodeID, _ digest.Digest, h *block.Header, err error) (*block.Header, error) {
	if err != nil || h == nil {
		return h, err
	}
	forged := h.Clone()
	if len(forged.Digests) > 0 {
		forged.Digests[0].Digest[0] ^= 0xFF
	} else {
		forged.Root[0] ^= 0xFF
	}
	return forged, nil
}

// OnBlockRequest implements Behavior.
func (Corrupt) OnBlockRequest(_, _ identity.NodeID, b *block.Block, err error) (*block.Block, error) {
	if err != nil || b == nil {
		return b, err
	}
	forged := b.Clone()
	if len(forged.Body) > 0 {
		forged.Body[0] ^= 0xFF
	}
	return forged, nil
}

// Responds implements Behavior.
func (Corrupt) Responds() bool { return true }

// Selfish refuses to serve until it has been credited enough times —
// the behavior the blacklist mechanism of Sec. IV-D6 penalizes. It is
// concurrency-safe.
type Selfish struct {
	mu sync.Mutex
	// CreditsNeeded is how many Credit calls unlock cooperation.
	CreditsNeeded int
	credits       int
}

// Credit records that the network helped this node (e.g. forwarded its
// blocks); after CreditsNeeded credits it starts cooperating.
func (s *Selfish) Credit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.credits++
}

func (s *Selfish) cooperating() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.credits >= s.CreditsNeeded
}

// OnChildRequest implements Behavior.
func (s *Selfish) OnChildRequest(_, _ identity.NodeID, _ digest.Digest, h *block.Header, err error) (*block.Header, error) {
	if !s.cooperating() {
		return nil, core.ErrTimeout
	}
	return h, err
}

// OnBlockRequest implements Behavior.
func (s *Selfish) OnBlockRequest(_, _ identity.NodeID, b *block.Block, err error) (*block.Block, error) {
	if !s.cooperating() {
		return nil, core.ErrTimeout
	}
	return b, err
}

// Responds implements Behavior.
func (s *Selfish) Responds() bool { return s.cooperating() }

// Eclipse answers only validators in its allow list, isolating all
// others (Sec. I's eclipse attack). The zero value eclipses everyone.
type Eclipse struct {
	// Allow lists validators that still receive replies.
	Allow map[identity.NodeID]bool
}

// OnChildRequest implements Behavior.
func (e Eclipse) OnChildRequest(validator, _ identity.NodeID, _ digest.Digest, h *block.Header, err error) (*block.Header, error) {
	if !e.Allow[validator] {
		return nil, core.ErrTimeout
	}
	return h, err
}

// OnBlockRequest implements Behavior.
func (e Eclipse) OnBlockRequest(validator, _ identity.NodeID, b *block.Block, err error) (*block.Block, error) {
	if !e.Allow[validator] {
		return nil, core.ErrTimeout
	}
	return b, err
}

// Responds implements Behavior.
func (Eclipse) Responds() bool { return true }

// Flooder models the DoS attacker of Sec. IV-D5: a node attempting to
// generate (and announce) far more blocks per slot than the
// proof-of-work difficulty permits. The defense under test is the
// receiver-side rate check, not this type itself.
type Flooder struct {
	// BlocksPerSlot is how many blocks the attacker tries to announce
	// each slot.
	BlocksPerSlot int
}

// Announcements returns how many digest announcements the flooder emits
// in one slot (at least 1).
func (f Flooder) Announcements() int {
	if f.BlocksPerSlot < 1 {
		return 1
	}
	return f.BlocksPerSlot
}

// Kind identifies a behavior for configuration surfaces (CLI flags,
// experiment configs).
type Kind string

// Known behavior kinds.
const (
	KindHonest  Kind = "honest"
	KindSilent  Kind = "silent"
	KindCorrupt Kind = "corrupt"
	KindSelfish Kind = "selfish"
	KindEclipse Kind = "eclipse"
)

// New constructs a behavior by kind. Unknown kinds yield Honest.
func New(k Kind) Behavior {
	switch k {
	case KindSilent:
		return Silent{}
	case KindCorrupt:
		return Corrupt{}
	case KindSelfish:
		return &Selfish{CreditsNeeded: 1}
	case KindEclipse:
		return Eclipse{}
	default:
		return Honest{}
	}
}

// Assign picks n distinct malicious nodes uniformly from ids using rng
// and returns a behavior map (everyone else implicitly honest).
func Assign(ids []identity.NodeID, n int, k Kind, rng *rand.Rand) map[identity.NodeID]Behavior {
	out := make(map[identity.NodeID]Behavior, n)
	if n <= 0 {
		return out
	}
	perm := rng.Perm(len(ids))
	if n > len(ids) {
		n = len(ids)
	}
	for _, idx := range perm[:n] {
		out[ids[idx]] = New(k)
	}
	return out
}

// Compile-time conformance checks.
var (
	_ Behavior = Honest{}
	_ Behavior = Silent{}
	_ Behavior = Corrupt{}
	_ Behavior = (*Selfish)(nil)
	_ Behavior = Eclipse{}
)
