package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/twoldag/twoldag/internal/identity"
)

// This file holds the sparse topology generators for large-scale
// simulation (10k–100k nodes). The paper's Sec. VI deployment
// (Generate) links by pairwise distance, which costs O(n) per placed
// node — fine at paper scale, quadratic at 100k. The generators here
// build on a zero-range graph with explicit Link calls, so construction
// is O(n·degree) and neighbor lists stay O(degree) regardless of n.
// Both are fully determined by their config (including Seed) and
// connected by construction at every valid parameter choice.

// SmallWorldConfig drives SmallWorld.
type SmallWorldConfig struct {
	Nodes int
	// K is the lattice half-degree: each node starts linked to its K
	// nearest ring successors (so the base degree is 2K). 0 = 3.
	K int
	// Beta is the Watts–Strogatz rewiring probability applied to each
	// lattice edge of offset ≥ 2. Offset-1 ring edges are never rewired,
	// which keeps a Hamiltonian cycle intact — the graph stays connected
	// for every Beta in [0, 1].
	Beta float64
	Seed int64
}

func (c SmallWorldConfig) withDefaults() SmallWorldConfig {
	if c.K == 0 {
		c.K = 3
	}
	return c
}

func (c SmallWorldConfig) validate() error {
	switch {
	case c.Nodes < 3:
		return fmt.Errorf("%w: small-world needs >= 3 nodes, got %d", ErrBadConfig, c.Nodes)
	case c.K < 1 || 2*c.K >= c.Nodes:
		return fmt.Errorf("%w: small-world K=%d out of range for %d nodes", ErrBadConfig, c.K, c.Nodes)
	case c.Beta < 0 || c.Beta > 1:
		return fmt.Errorf("%w: small-world Beta=%v", ErrBadConfig, c.Beta)
	}
	return nil
}

// SmallWorld builds a Watts–Strogatz-style small-world graph: a ring
// lattice where every node links to its K nearest successors, with each
// offset-≥2 lattice edge rewired to a uniform random endpoint with
// probability Beta. Node IDs are 0..Nodes-1; positions lie on a circle
// (for plots and dynamic-join anchoring), but adjacency is purely
// structural — the graph has zero communication range.
func SmallWorld(cfg SmallWorldConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Nodes
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New(0)
	// Circle radius grows with n so typical node spacing stays ~10 m.
	radius := 10 * float64(n) / (2 * math.Pi)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		p := Point{X: radius * (1 + math.Cos(theta)), Y: radius * (1 + math.Sin(theta))}
		if err := g.AddNode(identity.NodeID(i), p); err != nil {
			return nil, err
		}
	}
	// The offset-1 ring: never rewired, guarantees connectivity.
	for i := 0; i < n; i++ {
		if err := g.Link(identity.NodeID(i), identity.NodeID((i+1)%n)); err != nil {
			return nil, err
		}
	}
	for off := 2; off <= cfg.K; off++ {
		for i := 0; i < n; i++ {
			a := identity.NodeID(i)
			b := identity.NodeID((i + off) % n)
			if rng.Float64() < cfg.Beta {
				// Rewire: keep a, pick a fresh endpoint. Bounded retries;
				// on a dense corner case keep the lattice edge instead.
				for try := 0; try < 32; try++ {
					c := identity.NodeID(rng.Intn(n))
					if c != a && !g.IsNeighbor(a, c) {
						b = c
						break
					}
				}
			}
			if b != a && !g.IsNeighbor(a, b) {
				if err := g.Link(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// GeoClusteredConfig drives GeoClustered.
type GeoClusteredConfig struct {
	Nodes int
	// ClusterSize is the target nodes per geographic cluster. 0 = 32.
	ClusterSize int
	// ExtraIntra is how many extra random in-cluster links each node
	// attempts beyond the cluster ring. 0 = 2; -1 = none.
	ExtraIntra int
	// Bridges is how many extra random inter-cluster links each cluster
	// attempts beyond the cluster-ring gateway link. 0 = 1; -1 = none.
	Bridges int
	Seed    int64
}

func (c GeoClusteredConfig) withDefaults() GeoClusteredConfig {
	if c.ClusterSize == 0 {
		c.ClusterSize = 32
	}
	if c.ExtraIntra == 0 {
		c.ExtraIntra = 2
	} else if c.ExtraIntra < 0 {
		c.ExtraIntra = 0
	}
	if c.Bridges == 0 {
		c.Bridges = 1
	} else if c.Bridges < 0 {
		c.Bridges = 0
	}
	return c
}

// GeoClustered builds a geo-clustered sparse graph: nodes are grouped
// into contiguous-ID clusters of ~ClusterSize, each cluster is placed
// on a grid of cluster centers with its members scattered around the
// center, and edges are (a) a ring within each cluster, (b) ExtraIntra
// random in-cluster chords per node, (c) a gateway link from each
// cluster to the next (a ring over clusters), and (d) Bridges extra
// random inter-cluster links per cluster. The intra-cluster rings plus
// the cluster ring make it connected by construction; degrees are
// O(ExtraIntra + Bridges), independent of Nodes.
func GeoClustered(cfg GeoClusteredConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("%w: geo-clustered needs >= 1 node, got %d", ErrBadConfig, cfg.Nodes)
	}
	n := cfg.Nodes
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New(0)

	clusters := (n + cfg.ClusterSize - 1) / cfg.ClusterSize
	grid := int(math.Ceil(math.Sqrt(float64(clusters))))
	const pitch = 500.0 // meters between cluster centers
	const spread = 100.0
	// start/end of cluster c in ID space: contiguous so membership is
	// arithmetic, not a lookup.
	clusterOf := func(i int) int { return i / cfg.ClusterSize }
	start := func(c int) int { return c * cfg.ClusterSize }
	end := func(c int) int { return min((c+1)*cfg.ClusterSize, n) }

	for i := 0; i < n; i++ {
		c := clusterOf(i)
		center := Point{
			X: pitch/2 + float64(c%grid)*pitch,
			Y: pitch/2 + float64(c/grid)*pitch,
		}
		p := Point{
			X: center.X + (rng.Float64()-0.5)*2*spread,
			Y: center.Y + (rng.Float64()-0.5)*2*spread,
		}
		if err := g.AddNode(identity.NodeID(i), p); err != nil {
			return nil, err
		}
	}
	link := func(a, b int) error {
		if a == b || g.IsNeighbor(identity.NodeID(a), identity.NodeID(b)) {
			return nil
		}
		return g.Link(identity.NodeID(a), identity.NodeID(b))
	}
	for c := 0; c < clusters; c++ {
		lo, hi := start(c), end(c)
		size := hi - lo
		// (a) intra-cluster ring (or single edge for 2-node clusters).
		if size > 1 {
			for i := lo; i < hi; i++ {
				next := lo + (i-lo+1)%size
				if err := link(i, next); err != nil {
					return nil, err
				}
			}
		}
		// (b) random in-cluster chords.
		if size > 3 {
			for i := lo; i < hi; i++ {
				for k := 0; k < cfg.ExtraIntra; k++ {
					if err := link(i, lo+rng.Intn(size)); err != nil {
						return nil, err
					}
				}
			}
		}
		// (c) gateway ring over clusters: first member of c to first
		// member of c+1.
		if clusters > 1 {
			if err := link(lo, start((c+1)%clusters)); err != nil {
				return nil, err
			}
		}
		// (d) extra random bridges out of this cluster.
		if clusters > 1 {
			for k := 0; k < cfg.Bridges; k++ {
				oc := rng.Intn(clusters)
				if oc == c {
					continue
				}
				a := lo + rng.Intn(size)
				b := start(oc) + rng.Intn(end(oc)-start(oc))
				if err := link(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
