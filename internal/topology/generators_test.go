package topology

import (
	"reflect"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
)

// graphsEqual compares node sets, positions, and every adjacency list.
func graphsEqual(t *testing.T, a, b *Graph) bool {
	t.Helper()
	an, bn := a.Nodes(), b.Nodes()
	if !reflect.DeepEqual(an, bn) {
		return false
	}
	for _, id := range an {
		pa, _ := a.Position(id)
		pb, _ := b.Position(id)
		if pa != pb {
			return false
		}
		if !reflect.DeepEqual(a.Neighbors(id), b.Neighbors(id)) {
			return false
		}
	}
	return true
}

func TestSmallWorldSeededDeterminism(t *testing.T) {
	cfg := SmallWorldConfig{Nodes: 400, Beta: 0.1, Seed: 7}
	g1, err := SmallWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := SmallWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(t, g1, g2) {
		t.Fatal("same seed must produce identical small-world graphs")
	}
	cfg.Seed = 8
	g3, err := SmallWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if graphsEqual(t, g1, g3) {
		t.Fatal("different seeds should produce different rewirings")
	}
}

func TestGeoClusteredSeededDeterminism(t *testing.T) {
	cfg := GeoClusteredConfig{Nodes: 400, Seed: 7}
	g1, err := GeoClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GeoClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(t, g1, g2) {
		t.Fatal("same seed must produce identical geo-clustered graphs")
	}
	cfg.Seed = 8
	g3, err := GeoClustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if graphsEqual(t, g1, g3) {
		t.Fatal("different seeds should produce different graphs")
	}
}

func TestSparseGeneratorsConnectedAtDefaults(t *testing.T) {
	for _, n := range []int{3, 10, 200, 2000} {
		g, err := SmallWorld(SmallWorldConfig{Nodes: n, K: 1, Beta: 0.2, Seed: int64(n)})
		if n < 3 {
			continue
		}
		if err != nil {
			t.Fatalf("SmallWorld(%d): %v", n, err)
		}
		if !g.Connected() {
			t.Fatalf("SmallWorld(%d) disconnected", n)
		}
	}
	for _, n := range []int{1, 2, 31, 200, 2000} {
		g, err := GeoClustered(GeoClusteredConfig{Nodes: n, Seed: int64(n)})
		if err != nil {
			t.Fatalf("GeoClustered(%d): %v", n, err)
		}
		if !g.Connected() {
			t.Fatalf("GeoClustered(%d) disconnected", n)
		}
	}
}

// TestSparseGeneratorsDegreeBounds: the whole point of the sparse
// generators is that degree does not grow with n — check min-degree
// floors (connectivity margin) and that max degree is flat across a
// 10x size jump.
func TestSparseGeneratorsDegreeBounds(t *testing.T) {
	maxDeg := func(g *Graph) int {
		m := 0
		for _, id := range g.Nodes() {
			if d := g.Degree(id); d > m {
				m = d
			}
		}
		return m
	}
	minDeg := func(g *Graph) int {
		m := int(^uint(0) >> 1)
		for _, id := range g.Nodes() {
			if d := g.Degree(id); d < m {
				m = d
			}
		}
		return m
	}

	for _, n := range []int{500, 5000} {
		sw, err := SmallWorld(SmallWorldConfig{Nodes: n, K: 3, Beta: 0.1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// The untouched offset-1 ring guarantees degree >= 2; the lattice
		// adds at most K-1 more per side plus rewired strays. Edges never
		// exceed n*K, so average degree <= 2K.
		if d := minDeg(sw); d < 2 {
			t.Fatalf("small-world n=%d min degree %d < 2", n, d)
		}
		if e := sw.EdgeCount(); e > n*3 {
			t.Fatalf("small-world n=%d has %d edges, want <= %d", n, e, n*3)
		}
		if d := maxDeg(sw); d > 20 {
			t.Fatalf("small-world n=%d max degree %d grew past the O(K) regime", n, d)
		}

		gc, err := GeoClustered(GeoClusteredConfig{Nodes: n, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if d := minDeg(gc); d < 2 {
			t.Fatalf("geo-clustered n=%d min degree %d < 2", n, d)
		}
		// Ring (2) + ExtraIntra chords from both ends + gateway/bridge
		// links: a fixed budget independent of n.
		if d := maxDeg(gc); d > 24 {
			t.Fatalf("geo-clustered n=%d max degree %d grew past the O(1) regime", n, d)
		}
	}
}

func TestSparseGeneratorConfigValidation(t *testing.T) {
	if _, err := SmallWorld(SmallWorldConfig{Nodes: 2}); err == nil {
		t.Fatal("want error for 2-node small-world")
	}
	if _, err := SmallWorld(SmallWorldConfig{Nodes: 10, K: 5}); err == nil {
		t.Fatal("want error for 2K >= Nodes")
	}
	if _, err := SmallWorld(SmallWorldConfig{Nodes: 10, Beta: 1.5}); err == nil {
		t.Fatal("want error for Beta > 1")
	}
	if _, err := GeoClustered(GeoClusteredConfig{Nodes: 0}); err == nil {
		t.Fatal("want error for empty geo-clustered")
	}
}

// The generators must keep IDs dense 0..n-1 — the simulator's ordinal
// indexing depends on it.
func TestSparseGeneratorsDenseIDs(t *testing.T) {
	sw, err := SmallWorld(SmallWorldConfig{Nodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := GeoClustered(GeoClusteredConfig{Nodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Graph{sw, gc} {
		ids := g.Nodes()
		if len(ids) != 100 {
			t.Fatalf("want 100 nodes, got %d", len(ids))
		}
		for i, id := range ids {
			if id != identity.NodeID(i) {
				t.Fatalf("IDs not dense at %d: %v", i, id)
			}
		}
	}
}
