package topology

import (
	"fmt"

	"github.com/twoldag/twoldag/internal/identity"
)

// FromEdges builds a graph over nodes 0..n-1 with the given explicit
// edges and no positional adjacency. This is the workhorse for unit
// tests replaying the paper's worked examples.
func FromEdges(n int, edges [][2]identity.NodeID) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadConfig, n)
	}
	g := New(0)
	for i := 0; i < n; i++ {
		if err := g.AddNode(identity.NodeID(i), Point{X: float64(i)}); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := g.Link(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Line builds the path topology 0-1-2-...-(n-1).
func Line(n int) (*Graph, error) {
	edges := make([][2]identity.NodeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]identity.NodeID{identity.NodeID(i), identity.NodeID(i + 1)})
	}
	return FromEdges(n, edges)
}

// Ring builds the cycle topology 0-1-...-(n-1)-0.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: ring needs at least 3 nodes", ErrBadConfig)
	}
	edges := make([][2]identity.NodeID, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]identity.NodeID{identity.NodeID(i), identity.NodeID((i + 1) % n)})
	}
	return FromEdges(n, edges)
}

// Complete builds the fully connected topology on n nodes.
func Complete(n int) (*Graph, error) {
	var edges [][2]identity.NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]identity.NodeID{identity.NodeID(i), identity.NodeID(j)})
		}
	}
	return FromEdges(n, edges)
}

// PaperFig3 reproduces the four-node example of the paper's Fig. 3:
// N(A)={B}, N(B)={A,C,D}, N(C)={B,D}, N(D)={B,C} with A=0, B=1, C=2,
// D=3.
func PaperFig3() *Graph {
	g, err := FromEdges(4, [][2]identity.NodeID{{0, 1}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		panic("topology: PaperFig3 fixture: " + err.Error()) // static fixture cannot fail
	}
	return g
}

// PaperFig4 reproduces the five-node PoP example of Fig. 4: B, C, D are
// mutual neighbors; A connects only to B; E connects only to D. IDs:
// A=0, B=1, C=2, D=3, E=4.
func PaperFig4() *Graph {
	g, err := FromEdges(5, [][2]identity.NodeID{{0, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	if err != nil {
		panic("topology: PaperFig4 fixture: " + err.Error())
	}
	return g
}

// PaperFig6 reproduces the three-node micro-loop example of Fig. 6:
// a chain A-B-C (A=0, B=1, C=2).
func PaperFig6() *Graph {
	g, err := FromEdges(3, [][2]identity.NodeID{{0, 1}, {1, 2}})
	if err != nil {
		panic("topology: PaperFig6 fixture: " + err.Error())
	}
	return g
}
