// Package topology models the physical layer of 2LDAG (paper Sec. III-A):
// a static IoT radio network G(V, E) with undirected links. Every node is
// assumed to know the full topology (the paper's standing assumption),
// which the Proof-of-Path validator relies on when steering path
// construction.
//
// The generator reproduces the deployment of Sec. VI: nodes are placed
// one by one, each uniformly at random within communication range of an
// already-placed node, which guarantees a connected network by
// construction. Deterministic helper topologies (line, ring, complete,
// explicit edge lists) support unit tests that replay the paper's worked
// examples (Figs. 3–6).
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/twoldag/twoldag/internal/identity"
)

// Sentinel errors.
var (
	ErrUnknownNode   = errors.New("topology: unknown node")
	ErrDuplicateNode = errors.New("topology: node already present")
	ErrBadConfig     = errors.New("topology: invalid configuration")
	ErrNoPath        = errors.New("topology: nodes not connected")
	ErrPlacement     = errors.New("topology: placement failed")
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Graph is a concurrency-safe undirected radio graph. Build one with
// Generate or one of the deterministic constructors. The zero value is
// an empty graph with zero communication range; use New for an explicit
// range.
type Graph struct {
	mu     sync.RWMutex
	rangeM float64 // communication range in meters; 0 = adjacency is manual
	pos    map[identity.NodeID]Point
	adj    map[identity.NodeID][]identity.NodeID // sorted neighbor lists
}

// New returns an empty graph whose adjacency is derived from positions
// and the given communication range.
func New(commRange float64) *Graph {
	return &Graph{rangeM: commRange}
}

// Config drives the Sec. VI random deployment.
type Config struct {
	Nodes int
	// Width and Height of the deployment area, meters.
	Width, Height float64
	// Range is the radio communication range, meters.
	Range float64
	Seed  int64
	// MaxAttempts bounds per-node placement retries (0 = 1000).
	MaxAttempts int
}

// DefaultConfig is the paper's Sec. VI deployment: 50 nodes, 50 m range,
// read as a 1000 m × 1000 m area (see DESIGN.md on the "1000 square
// meters" reading).
func DefaultConfig(seed int64) Config {
	return Config{Nodes: 50, Width: 1000, Height: 1000, Range: 50, Seed: seed}
}

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("%w: %d nodes", ErrBadConfig, c.Nodes)
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("%w: area %.1f x %.1f", ErrBadConfig, c.Width, c.Height)
	case c.Range <= 0:
		return fmt.Errorf("%w: range %.1f", ErrBadConfig, c.Range)
	}
	return nil
}

// Deployment generates the standard n-node deployment graph for a
// seed: the paper's evaluation density (1000 m side per 50 nodes,
// range side/5) scaled down so small clusters stay multi-hop but
// connected, with floors of 200 m and 60 m. Every process of a
// cross-host cluster derives its shared world this way — same
// (n, seed), same graph, no topology exchange needed.
func Deployment(n int, seed int64) (*Graph, error) {
	side := math.Max(200, 1000*float64(n)/50)
	return Generate(Config{
		Nodes: n, Width: side, Height: side,
		Range: math.Max(60, side/5), Seed: seed,
	})
}

// Generate places cfg.Nodes nodes with IDs 0..Nodes-1 using the paper's
// sequential connected placement: the first node sits at the center of
// the area, and every subsequent node is dropped uniformly at random
// within communication range of a uniformly chosen existing node
// (clamped to the area), so the result is connected by construction.
func Generate(cfg Config) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New(cfg.Range)
	if err := g.AddNode(0, Point{X: cfg.Width / 2, Y: cfg.Height / 2}); err != nil {
		return nil, err
	}
	placed := []identity.NodeID{0}
	for i := 1; i < cfg.Nodes; i++ {
		id := identity.NodeID(i)
		ok := false
		for try := 0; try < attempts; try++ {
			anchor := placed[rng.Intn(len(placed))]
			ap, _ := g.Position(anchor)
			// Uniform point in the disc of radius Range around anchor.
			r := cfg.Range * math.Sqrt(rng.Float64())
			theta := rng.Float64() * 2 * math.Pi
			p := Point{X: ap.X + r*math.Cos(theta), Y: ap.Y + r*math.Sin(theta)}
			if p.X < 0 || p.X > cfg.Width || p.Y < 0 || p.Y > cfg.Height {
				continue
			}
			if err := g.AddNode(id, p); err != nil {
				return nil, err
			}
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("%w: node %v after %d attempts", ErrPlacement, id, attempts)
		}
		placed = append(placed, id)
	}
	return g, nil
}

// AddNode inserts a node at position p, linking it to every existing
// node within communication range (dynamic join; paper Sec. VII).
func (g *Graph) AddNode(id identity.NodeID, p Point) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pos == nil {
		g.pos = make(map[identity.NodeID]Point)
		g.adj = make(map[identity.NodeID][]identity.NodeID)
	}
	if _, ok := g.pos[id]; ok {
		return fmt.Errorf("%w: %v", ErrDuplicateNode, id)
	}
	g.pos[id] = p
	g.adj[id] = nil
	if g.rangeM > 0 {
		for other, op := range g.pos {
			if other == id {
				continue
			}
			if p.Distance(op) <= g.rangeM {
				g.linkLocked(id, other)
			}
		}
	}
	return nil
}

// RemoveNode deletes a node and all its links (dynamic leave).
func (g *Graph) RemoveNode(id identity.NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.pos[id]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	for _, nb := range g.adj[id] {
		g.adj[nb] = removeSorted(g.adj[nb], id)
	}
	delete(g.adj, id)
	delete(g.pos, id)
	return nil
}

// Link manually connects two nodes (used by deterministic topologies).
func (g *Graph) Link(a, b identity.NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.pos[a]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, a)
	}
	if _, ok := g.pos[b]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, b)
	}
	if a == b {
		return fmt.Errorf("%w: self link %v", ErrBadConfig, a)
	}
	g.linkLocked(a, b)
	return nil
}

func (g *Graph) linkLocked(a, b identity.NodeID) {
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
}

func insertSorted(s []identity.NodeID, id identity.NodeID) []identity.NodeID {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

func removeSorted(s []identity.NodeID, id identity.NodeID) []identity.NodeID {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// CommRange returns the radio communication range used for automatic
// adjacency (0 for manually linked graphs).
func (g *Graph) CommRange() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rangeM
}

// Len returns the number of nodes |V|.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.pos)
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []identity.NodeID {
	g.mu.RLock()
	ids := make([]identity.NodeID, 0, len(g.pos))
	for id := range g.pos {
		ids = append(ids, id)
	}
	g.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Has reports whether id is part of the graph.
func (g *Graph) Has(id identity.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.pos[id]
	return ok
}

// Position returns a node's coordinates.
func (g *Graph) Position(id identity.NodeID) (Point, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.pos[id]
	return p, ok
}

// Degree returns |N(i)|.
func (g *Graph) Degree(id identity.NodeID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[id])
}

// Neighbors returns a copy of N(i) in ascending order.
func (g *Graph) Neighbors(id identity.NodeID) []identity.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]identity.NodeID(nil), g.adj[id]...)
}

// AppendNeighbors appends N(i) to dst and returns it, avoiding an
// allocation on hot paths.
func (g *Graph) AppendNeighbors(dst []identity.NodeID, id identity.NodeID) []identity.NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append(dst, g.adj[id]...)
}

// IsNeighbor reports whether edge (a, b) exists.
func (g *Graph) IsNeighbor(a, b identity.NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := g.adj[a]
	i := sort.Search(len(s), func(k int) bool { return s[k] >= b })
	return i < len(s) && s[i] == b
}

// EdgeCount returns |E|.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// BFSDistances returns hop counts from src to every reachable node.
func (g *Graph) BFSDistances(src identity.NodeID) (map[identity.NodeID]int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.pos[src]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, src)
	}
	dist := map[identity.NodeID]int{src: 0}
	queue := []identity.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist, nil
}

// ShortestPath returns a minimum-hop path from a to b, inclusive. It
// prefers lower node IDs on ties, making results deterministic.
func (g *Graph) ShortestPath(a, b identity.NodeID) ([]identity.NodeID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.pos[a]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, a)
	}
	if _, ok := g.pos[b]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, b)
	}
	if a == b {
		return []identity.NodeID{a}, nil
	}
	prev := map[identity.NodeID]identity.NodeID{a: a}
	queue := []identity.NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				return rebuild(prev, a, b), nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("%w: %v to %v", ErrNoPath, a, b)
}

func rebuild(prev map[identity.NodeID]identity.NodeID, a, b identity.NodeID) []identity.NodeID {
	var rev []identity.NodeID
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]identity.NodeID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}

// Connected reports whether the graph is a single component.
func (g *Graph) Connected() bool {
	ids := g.Nodes()
	if len(ids) <= 1 {
		return true
	}
	dist, err := g.BFSDistances(ids[0])
	if err != nil {
		return false
	}
	return len(dist) == len(ids)
}

// Stats summarizes the graph for experiment logs.
type Stats struct {
	Nodes     int
	Edges     int
	MinDegree int
	MaxDegree int
	AvgDegree float64
	Diameter  int
	Connected bool
}

// Summary computes graph statistics. Diameter is -1 for disconnected
// graphs.
func (g *Graph) Summary() Stats {
	ids := g.Nodes()
	s := Stats{Nodes: len(ids), Edges: g.EdgeCount(), MinDegree: math.MaxInt, Connected: true}
	if len(ids) == 0 {
		s.MinDegree = 0
		return s
	}
	totalDeg := 0
	for _, id := range ids {
		d := g.Degree(id)
		totalDeg += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.AvgDegree = float64(totalDeg) / float64(len(ids))
	for _, id := range ids {
		dist, err := g.BFSDistances(id)
		if err != nil || len(dist) != len(ids) {
			s.Connected = false
			s.Diameter = -1
			return s
		}
		for _, d := range dist {
			if d > s.Diameter {
				s.Diameter = d
			}
		}
	}
	return s
}
