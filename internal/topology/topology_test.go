package topology

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/identity"
)

func TestGenerateDefaultIsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := Generate(DefaultConfig(seed))
		if err != nil {
			t.Fatalf("Generate(seed=%d): %v", seed, err)
		}
		if g.Len() != 50 {
			t.Fatalf("want 50 nodes, got %d", g.Len())
		}
		if !g.Connected() {
			t.Fatalf("seed %d produced a disconnected graph", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Nodes() {
		pa, _ := a.Position(id)
		pb, _ := b.Position(id)
		if pa != pb {
			t.Fatalf("positions differ for %v with same seed", id)
		}
	}
	c, err := Generate(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, id := range a.Nodes() {
		pa, _ := a.Position(id)
		pc, _ := c.Position(id)
		if pa != pc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestGenerateAdjacencyRespectsRange(t *testing.T) {
	cfg := DefaultConfig(7)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.Nodes()
	for _, a := range ids {
		pa, _ := g.Position(a)
		for _, b := range ids {
			if a >= b {
				continue
			}
			pb, _ := g.Position(b)
			inRange := pa.Distance(pb) <= cfg.Range
			if g.IsNeighbor(a, b) != inRange {
				t.Fatalf("adjacency(%v,%v)=%v but distance %.2f (range %.1f)",
					a, b, g.IsNeighbor(a, b), pa.Distance(pb), cfg.Range)
			}
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Width: 10, Height: 10, Range: 5},
		{Nodes: 5, Width: 0, Height: 10, Range: 5},
		{Nodes: 5, Width: 10, Height: -1, Range: 5},
		{Nodes: 5, Width: 10, Height: 10, Range: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestPaperFig3Neighbors(t *testing.T) {
	g := PaperFig3()
	want := map[identity.NodeID][]identity.NodeID{
		0: {1},       // N(A) = {B}
		1: {0, 2, 3}, // N(B) = {A, C, D}
		2: {1, 3},    // N(C) = {B, D}
		3: {1, 2},    // N(D) = {B, C}
	}
	for id, nbs := range want {
		got := g.Neighbors(id)
		if len(got) != len(nbs) {
			t.Fatalf("N(%v) = %v, want %v", id, got, nbs)
		}
		for i := range nbs {
			if got[i] != nbs[i] {
				t.Fatalf("N(%v) = %v, want %v", id, got, nbs)
			}
		}
	}
}

func TestPaperFig4Structure(t *testing.T) {
	g := PaperFig4()
	if g.Degree(0) != 1 || g.Degree(4) != 1 {
		t.Fatal("A and E must be leaves")
	}
	if !g.IsNeighbor(1, 2) || !g.IsNeighbor(1, 3) || !g.IsNeighbor(2, 3) {
		t.Fatal("B, C, D must form a triangle")
	}
	if !g.Connected() {
		t.Fatal("Fig. 4 graph must be connected")
	}
}

func TestShortestPathLine(t *testing.T) {
	g, err := Line(6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.ShortestPath(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 {
		t.Fatalf("path length %d, want 6", len(p))
	}
	for i, id := range p {
		if id != identity.NodeID(i) {
			t.Fatalf("path %v not the straight line", p)
		}
	}
	if _, err := g.ShortestPath(0, 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	self, err := g.ShortestPath(3, 3)
	if err != nil || len(self) != 1 {
		t.Fatalf("self path = %v, %v", self, err)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g, err := FromEdges(4, [][2]identity.NodeID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(0, 3); !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	if g.Connected() {
		t.Fatal("graph should report disconnected")
	}
}

func TestBFSDistancesRing(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.BFSDistances(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[4] != 4 || dist[7] != 1 || dist[1] != 1 {
		t.Fatalf("ring distances wrong: %v", dist)
	}
}

func TestAddRemoveNodeDynamic(t *testing.T) {
	g, err := Line(3)
	if err != nil {
		t.Fatal(err)
	}
	// Join: new node 3 linked manually to 2.
	if err := g.AddNode(3, Point{X: 99}); err != nil {
		t.Fatal(err)
	}
	if err := g.Link(2, 3); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("graph should be connected after join")
	}
	// Leave: removing 1 splits the line.
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("removing the bridge should disconnect")
	}
	if g.Has(1) || g.Degree(0) != 0 {
		t.Fatal("stale adjacency after removal")
	}
	if err := g.RemoveNode(1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestAddNodeWithinRangeAutolinks(t *testing.T) {
	g := New(10)
	if err := g.AddNode(0, Point{}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(1, Point{X: 5}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(2, Point{X: 50}); err != nil {
		t.Fatal(err)
	}
	if !g.IsNeighbor(0, 1) || g.IsNeighbor(0, 2) {
		t.Fatal("range-based autolinking wrong")
	}
}

func TestDuplicateAndSelfLinkErrors(t *testing.T) {
	g := New(0)
	if err := g.AddNode(0, Point{}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(0, Point{}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := g.Link(0, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("self link: %v", err)
	}
	if err := g.Link(0, 9); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("link unknown: %v", err)
	}
}

func TestSummary(t *testing.T) {
	g, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Summary()
	if s.Nodes != 5 || s.Edges != 5 || s.MinDegree != 2 || s.MaxDegree != 2 {
		t.Fatalf("ring summary wrong: %+v", s)
	}
	if s.Diameter != 2 || !s.Connected {
		t.Fatalf("ring diameter = %d, want 2", s.Diameter)
	}
	d, _ := FromEdges(4, [][2]identity.NodeID{{0, 1}})
	ds := d.Summary()
	if ds.Connected || ds.Diameter != -1 {
		t.Fatalf("disconnected summary wrong: %+v", ds)
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	g := PaperFig3()
	nbs := g.Neighbors(1)
	nbs[0] = 99
	if g.Neighbors(1)[0] == 99 {
		t.Fatal("Neighbors leaked internal slice")
	}
}

func TestCompleteGraph(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.EdgeCount())
	}
	if g.Summary().Diameter != 1 {
		t.Fatal("K6 diameter must be 1")
	}
}

func TestQuickGeneratedAlwaysConnected(t *testing.T) {
	f := func(seedRaw uint32, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		cfg := Config{Nodes: n, Width: 500, Height: 500, Range: 60, Seed: int64(seedRaw)}
		g, err := Generate(cfg)
		if err != nil {
			// Placement can legitimately fail in tiny pathological
			// areas; config here is generous, so treat as failure.
			return false
		}
		return g.Connected() && g.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShortestPathIsValidWalk(t *testing.T) {
	g, err := Generate(Config{Nodes: 30, Width: 400, Height: 400, Range: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint8) bool {
		a := identity.NodeID(aRaw % 30)
		b := identity.NodeID(bRaw % 30)
		p, err := g.ShortestPath(a, b)
		if err != nil {
			return false
		}
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.IsNeighbor(p[i], p[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
