package sim

import (
	"reflect"
	"testing"

	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// churnRun drives the pipelined scheduler through a run with mid-run
// membership churn: a stretch of slots, then a Silence and a JoinNode
// (both of which drain the pipeline), then more slots.
func churnRun(t *testing.T, depth, workers int) *Report {
	t.Helper()
	cfg := smallConfig(42)
	cfg.Malicious = 2
	cfg.Behavior = attack.KindSilent
	cfg.RetainVerifiedBlocks = true
	cfg.Workers = workers
	cfg.PipelineDepth = depth
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunSlots(14); err != nil {
		t.Fatal(err)
	}
	// Silence the first honest node (deterministic across runs: ids are
	// in construction order and the behavior assignment is seeded).
	var victim identity.NodeID
	found := false
	for _, id := range s.ids {
		if !s.IsMalicious(id) {
			victim, found = id, true
			break
		}
	}
	if !found {
		t.Fatal("no honest node to silence")
	}
	if err := s.Silence(victim); err != nil {
		t.Fatal(err)
	}
	// Join a fresh node next to the newest device, mirroring the public
	// facade's joiner placement.
	g := s.Graph()
	joiner := s.ids[len(s.ids)-1] + 1
	for g.Has(joiner) {
		joiner++
	}
	anchor := s.ids[len(s.ids)-1]
	ap, _ := g.Position(anchor)
	if err := g.AddNode(joiner, topology.Point{X: ap.X + g.CommRange()/2, Y: ap.Y}); err != nil {
		t.Fatal(err)
	}
	if g.Degree(joiner) == 0 {
		if err := g.Link(anchor, joiner); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.JoinNode(joiner); err != nil {
		t.Fatal(err)
	}
	if err := s.RunSlots(16); err != nil {
		t.Fatal(err)
	}
	return s.Finalize()
}

// TestPipelinedSchedulerIsDeterministic asserts the pipelined
// scheduler's acceptance criterion: for the same Seed, the Report —
// every storage/comm/consensus series and per-node sample — is
// byte-identical across pipeline depths and worker counts, including
// with malicious nodes, retention accounting, and mid-run
// Silence/JoinNode churn. Depth 1 × workers 1 is the fully barriered
// serial schedule; every other combination must reproduce it exactly,
// which pins the whole immutable-prefix contract (store fences,
// per-node RNG ordering via audGate, in-order slot retirement with
// boundary-frozen sums).
func TestPipelinedSchedulerIsDeterministic(t *testing.T) {
	want := churnRun(t, 1, 1)
	for _, depth := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			if depth == 1 && workers == 1 {
				continue
			}
			got := churnRun(t, depth, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("depth=%d workers=%d diverged from the barriered serial run:\nbarriered: %+v\npipelined: %+v",
					depth, workers, want, got)
			}
		}
	}
}

// TestPipelinedAuditsOverlapGeneration runs a deep pipeline with a
// multi-worker pool long enough that slot-t audits overlap slot-t+1
// generation on the shared stores. Under -race this drives concurrent
// Store.Append (generation) against fenced responder reads
// (ledger.View through the audit fetcher), pinning the
// immutable-prefix view's safety end to end.
func TestPipelinedAuditsOverlapGeneration(t *testing.T) {
	cfg := smallConfig(99)
	cfg.Slots = 40
	cfg.VerifyLag = 6
	cfg.Workers = 4
	cfg.PipelineDepth = 4
	cfg.RetainVerifiedBlocks = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audits == 0 {
		t.Fatal("no audits ran")
	}
	if rep.Failures != 0 {
		t.Fatalf("%d/%d honest audits failed on a healthy network", rep.Failures, rep.Audits)
	}
}

// TestPipelineDepthValidation rejects a negative depth; 0 and 1 both
// mean the barriered schedule.
func TestPipelineDepthValidation(t *testing.T) {
	bad := smallConfig(12)
	bad.PipelineDepth = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative pipeline depth accepted")
	}
	ok := smallConfig(12)
	ok.PipelineDepth = 1
	s, err := New(ok)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Step(); err == nil {
		t.Fatal("Step on a closed simulation succeeded")
	}
}
