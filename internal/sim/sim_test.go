package sim

import (
	"testing"

	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/dag"
	"github.com/twoldag/twoldag/internal/topology"
)

// smallConfig is a fast 12-node network for unit tests.
func smallConfig(seed int64) Config {
	return Config{
		Topo:      topology.Config{Nodes: 12, Width: 300, Height: 300, Range: 90, Seed: seed},
		Seed:      seed,
		Slots:     30,
		BodyBytes: 1000,
		Gamma:     3,
		VerifyLag: 12,
	}
}

func TestRunBasics(t *testing.T) {
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Prop. 1 with unit rates: |B| = nodes × slots.
	if rep.Blocks != 12*30 {
		t.Fatalf("blocks = %d, want %d", rep.Blocks, 12*30)
	}
	if rep.Audits == 0 {
		t.Fatal("no audits ran")
	}
	if rep.Failures != 0 {
		t.Fatalf("%d/%d honest audits failed", rep.Failures, rep.Audits)
	}
	if len(rep.AvgStorageBits) != 30 || len(rep.AvgCommBits) != 30 {
		t.Fatal("series lengths wrong")
	}
	if len(rep.NodeStorageBits) != 12 || len(rep.NodeCommBits) != 12 {
		t.Fatal("per-node sample counts wrong")
	}
}

func TestStorageGrowsLinearly(t *testing.T) {
	s, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Storage is cumulative and roughly linear: the last point must be
	// close to slots × per-slot block cost.
	first := rep.AvgStorageBits[0]
	last := rep.AvgStorageBits[len(rep.AvgStorageBits)-1]
	if last <= first {
		t.Fatal("storage did not grow")
	}
	ratio := float64(last) / float64(first)
	if ratio < 25 || ratio > 60 { // 30 slots of S_i, plus H_i audit-cache growth
		t.Fatalf("growth ratio %.1f implausible for 30 slots", ratio)
	}
}

func TestCommSplitConstructionVsConsensus(t *testing.T) {
	s, err := New(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	lastConstr := rep.AvgConstructionBits[len(rep.AvgConstructionBits)-1]
	lastCons := rep.AvgConsensusBits[len(rep.AvgConsensusBits)-1]
	if lastConstr == 0 {
		t.Fatal("no construction traffic recorded")
	}
	if lastCons == 0 {
		t.Fatal("no consensus traffic recorded")
	}
	// Fig. 8(b) vs 8(c): consensus traffic (headers) dominates
	// construction traffic (digests).
	if lastCons <= lastConstr {
		t.Fatalf("consensus %d ≤ construction %d bits", lastCons, lastConstr)
	}
	// Before the verify lag elapses, consensus traffic must be zero
	// (Fig. 8(a)'s flat prefix).
	if rep.AvgConsensusBits[5] != 0 {
		t.Fatalf("consensus traffic before lag: %d", rep.AvgConsensusBits[5])
	}
	total := rep.AvgCommBits[len(rep.AvgCommBits)-1]
	if total != lastConstr+lastCons {
		t.Fatal("total comm must equal construction + consensus")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Audits != rb.Audits || ra.Failures != rb.Failures {
		t.Fatal("same seed, different audit outcomes")
	}
	for i := range ra.NodeCommBits {
		if ra.NodeCommBits[i] != rb.NodeCommBits[i] {
			t.Fatal("same seed, different comm")
		}
	}
}

func TestLogicalLayerIsAcyclicDAG(t *testing.T) {
	s, err := New(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g := dag.FromStores(s.Stores())
	if g.Len() != s.BlockCount() {
		t.Fatalf("DAG has %d blocks, log has %d", g.Len(), s.BlockCount())
	}
	if !g.IsAcyclic() {
		t.Fatal("logical layer has a cycle")
	}
}

func TestMaliciousAssignment(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Malicious = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.MaliciousNodes()); got != 4 {
		t.Fatalf("malicious count = %d, want 4", got)
	}
	for _, id := range s.MaliciousNodes() {
		if !s.IsMalicious(id) {
			t.Fatal("IsMalicious inconsistent")
		}
	}
}

func TestAuditsFailUnderHeavyAttack(t *testing.T) {
	// With γ close to n and many silent nodes, audits must start
	// failing — the consensus stress regime of Fig. 9(d).
	cfg := smallConfig(7)
	cfg.Gamma = 8
	cfg.Malicious = 6
	cfg.Behavior = attack.KindSilent
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audits == 0 {
		t.Fatal("no audits")
	}
	if rep.Failures == 0 {
		t.Fatal("expected failures with 6/12 silent nodes and γ=8")
	}
}

func TestCorruptAttackersAreDetected(t *testing.T) {
	// Corrupt responders are detected and routed around: audits of
	// honest-origin blocks still succeed, while audits that target a
	// corrupt node's own (tampered) block correctly fail the Merkle
	// check — those "failures" are the tamper detections the protocol
	// exists for. With 3/12 corrupt nodes, the failure share must sit
	// near the corrupt-target share, far below a consensus collapse.
	cfg := smallConfig(8)
	cfg.Gamma = 2
	cfg.Malicious = 3
	cfg.Behavior = attack.KindCorrupt
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audits == 0 {
		t.Fatal("no audits")
	}
	share := float64(rep.Failures) / float64(rep.Audits)
	if share == 0 {
		t.Fatal("corrupt-origin targets must be detected as failures")
	}
	if share > 0.45 {
		t.Fatalf("failure share %.2f exceeds plausible corrupt-target share", share)
	}
}

func TestRetainVerifiedBlocksIncreasesStorage(t *testing.T) {
	base := smallConfig(9)
	s1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	retained := base
	retained.RetainVerifiedBlocks = true
	s2, err := New(retained)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	l1 := r1.AvgStorageBits[len(r1.AvgStorageBits)-1]
	l2 := r2.AvgStorageBits[len(r2.AvgStorageBits)-1]
	if l2 <= l1 {
		t.Fatalf("retention did not increase storage: %d vs %d", l2, l1)
	}
}

func TestDisableTrustIncreasesTraffic(t *testing.T) {
	base := smallConfig(10)
	s1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	noTrust := base
	noTrust.DisableTrust = true
	s2, err := New(noTrust)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	c1 := r1.AvgConsensusBits[len(r1.AvgConsensusBits)-1]
	c2 := r2.AvgConsensusBits[len(r2.AvgConsensusBits)-1]
	if c2 <= c1 {
		t.Fatalf("TPS ablation should cost more traffic: with=%d without=%d", c1, c2)
	}
}

func TestRandomPeriodsReduceBlockCount(t *testing.T) {
	cfg := smallConfig(11)
	cfg.RandomPeriodMax = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks >= 12*30 {
		t.Fatal("random periods should reduce the block count")
	}
	if rep.Blocks <= 12*30/3 {
		t.Fatalf("block count %d too low for periods in {1,2}", rep.Blocks)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := smallConfig(12)
	bad.BodyBytes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero body accepted")
	}
	bad = smallConfig(12)
	bad.Gamma = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative gamma accepted")
	}
	bad = smallConfig(12)
	bad.Malicious = -2
	if _, err := New(bad); err == nil {
		t.Fatal("negative malicious accepted")
	}
}

func TestSeriesRendering(t *testing.T) {
	s, err := New(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []int{rep.StorageSeries("s").Len(), rep.CommSeries("c").Len(),
		rep.ConstructionSeries("b").Len(), rep.ConsensusSeries("d").Len()} {
		if series != 30 {
			t.Fatalf("series length %d, want 30", series)
		}
	}
}

func TestProbeGammaSmall(t *testing.T) {
	cfg := ProbeConfig{
		Base: Config{
			Topo:            topology.Config{Nodes: 12, Width: 300, Height: 300, Range: 90, Seed: 21},
			Seed:            21,
			BodyBytes:       1000,
			Gamma:           3,
			RandomPeriodMax: 2,
		},
		MaxSlots: 20,
		Trials:   3,
		Stride:   2,
	}
	rep, err := RunProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 10 {
		t.Fatalf("probe points = %d, want 10", len(rep.Slots))
	}
	// Early slots must fail (no descendants yet); late slots succeed.
	if rep.FailureProb[0] != 1 {
		t.Fatalf("first probe failure prob = %v, want 1", rep.FailureProb[0])
	}
	if rep.SlotsToConsensus == -1 {
		t.Fatal("consensus never reached for γ=3 on a healthy network")
	}
	last := rep.FailureProb[len(rep.FailureProb)-1]
	if last != 0 {
		t.Fatalf("final failure prob %v, want 0", last)
	}
}

func TestProbeMoreMaliciousSlowsConsensus(t *testing.T) {
	// γ close to the honest population: with 5/14 silent nodes the
	// validator must reach 8 of the 9 remaining honest nodes, which is
	// much slower than the attack-free case (the Fig. 9(d) regime).
	base := Config{
		Topo:            topology.Config{Nodes: 14, Width: 300, Height: 300, Range: 90, Seed: 31},
		Seed:            31,
		BodyBytes:       1000,
		Gamma:           7,
		RandomPeriodMax: 2,
	}
	clean, err := RunProbe(ProbeConfig{Base: base, MaxSlots: 40, Trials: 4, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	dirty := base
	dirty.Malicious = 5
	attacked, err := RunProbe(ProbeConfig{Base: dirty, MaxSlots: 40, Trials: 4, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if clean.SlotsToConsensus == -1 {
		t.Fatal("clean network never converged")
	}
	// Cumulative failure mass must not be lower under attack.
	sum := func(xs []float64) float64 {
		total := 0.0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(attacked.FailureProb) < sum(clean.FailureProb) {
		t.Fatalf("attack made consensus easier: %v < %v",
			sum(attacked.FailureProb), sum(clean.FailureProb))
	}
}

func TestProbeValidation(t *testing.T) {
	if _, err := RunProbe(ProbeConfig{Base: smallConfig(1), MaxSlots: 0}); err == nil {
		t.Fatal("MaxSlots 0 accepted")
	}
}
