package sim

import (
	"os"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/topology"
)

// TestScaleRun10k is the ROADMAP item 5 acceptance run: a seeded
// 10k-node small-world network driven for 500 slots with audit duty
// live, on the arena-backed compact stores and chunked phases. It
// asserts the run completes with bounded memory and logs the headline
// numbers (blocks, audits, wall-clock, heap per node). The run takes
// ~20 minutes on one core, so it is opt-in:
//
//	TWOLDAG_SCALE_RUN=1 go test -run TestScaleRun10k -timeout 60m ./internal/sim/
func TestScaleRun10k(t *testing.T) {
	if os.Getenv("TWOLDAG_SCALE_RUN") == "" {
		t.Skip("set TWOLDAG_SCALE_RUN=1 to run the ~20-minute scale acceptance run")
	}
	g, err := topology.SmallWorld(topology.SmallWorldConfig{
		Nodes: 10_000, K: 3, Beta: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Graph:          g,
		Seed:           1,
		Slots:          500,
		BodyBytes:      100_000,
		Gamma:          8,
		VerifyLag:     8,
		PipelineDepth: 2,
		ChunkSize:     256,
		// Bounded H_i: 4.2M audits retain ~9 chain headers each, so the
		// unbounded default would grow past this container's RAM; the
		// cap keeps the 500-slot horizon at a steady-state footprint.
		TrustCap:       1024,
		SampleMemStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	rep, err := s.Run()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 10_000*500 {
		t.Fatalf("blocks = %d, want %d", rep.Blocks, 10_000*500)
	}
	if rep.Audits == 0 {
		t.Fatal("no audits ran")
	}
	if rep.Mem == nil {
		t.Fatal("no memory sample")
	}
	// Bounded memory: the 5M sealed blocks live once in the arena;
	// anything past ~10 MB/node would mean per-node state regressed to
	// pre-arena duplication.
	if rep.Mem.BytesPerNode > 10<<20 {
		t.Fatalf("heap = %d bytes/node, want < 10 MB/node", rep.Mem.BytesPerNode)
	}
	t.Logf("10k nodes x 500 slots: %d blocks, %d audits (%d failures), %.0fs wall, %.0f KB heap/node (%.1f GB total)",
		rep.Blocks, rep.Audits, rep.Failures, elapsed.Seconds(),
		float64(rep.Mem.BytesPerNode)/1024, float64(rep.Mem.HeapInuseBytes)/(1<<30))
}
