// Package sim is the slotted-time simulator behind every figure in the
// paper's evaluation (Sec. VI).
//
// Time is divided into slots. Each node generates at most one block per
// slot (at its configured period), announces the header digest to its
// radio neighbors, and — once the network is older than |V| slots —
// audits one past block per generated block by running the real PoP
// validator (internal/core) over an in-process fetcher that accounts
// every transmission with the paper's analytic size model and injects
// the configured attack behaviors.
//
// Storage accounting per node = S_i (own blocks, Eq. 2) + H_i (verified
// headers, Prop. 2) + optionally the full blocks retained from
// successful audits (see DESIGN.md on the Fig. 7 calibration).
//
// # Pipelined slot execution
//
// The slotted scheduler can run as a bounded-depth pipeline
// (Config.PipelineDepth): once slot t's generation and announcement
// flush have committed — the existing atomic sealed-delivery point —
// slot t's audit duty is handed to a persistent audit stage while the
// main loop proceeds to slot t+1 generation. Correctness rests on the
// immutable-prefix contract:
//
//   - audits in slot t read every responder's store through a
//     ledger.View fenced at the slot-t boundary, so they never observe
//     blocks appended by slot t+1 generation (generation only appends
//     blocks newer than the fence);
//   - a node's slot-t+1 generation waits for that node's slot-t audit
//     duty (audGate), because both draw from the node's single random
//     stream and the barriered draw order must be preserved;
//   - audit slots retire strictly in order on the stage, and each
//     slot's report snapshot combines boundary-frozen store and
//     construction sums with post-audit trust/retention/consensus
//     state.
//
// Together these make the Report a pure function of the Config —
// byte-identical across every pipeline depth and worker count for the
// same Seed.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/metrics"
	"github.com/twoldag/twoldag/internal/par"
	"github.com/twoldag/twoldag/internal/pow"
	"github.com/twoldag/twoldag/internal/topology"
)

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("sim: invalid config")

// Config parameterizes one simulation run.
type Config struct {
	// Graph is the physical topology; when nil, Topo generates one.
	Graph *topology.Graph
	// Topo is used when Graph is nil.
	Topo topology.Config
	// Seed drives every random choice (placement uses Topo.Seed).
	Seed int64
	// Slots is the horizon T.
	Slots int
	// BodyBytes is C in bytes (0.1/0.5/1 MB in the paper).
	BodyBytes int
	// Gamma is the tolerated malicious count γ.
	Gamma int
	// Malicious is how many nodes actually behave maliciously.
	Malicious int
	// Behavior is the malicious behavior kind (default silent).
	Behavior attack.Kind
	// RandomPeriodMax ≥ 2 draws each node's generation period uniformly
	// from {1..RandomPeriodMax}; otherwise every node generates each
	// slot.
	RandomPeriodMax int
	// Strategy overrides WPS (ablations).
	Strategy core.SelectionStrategy
	// DisableTrust turns off H_i caching (TPS ablation).
	DisableTrust bool
	// TrustCap bounds each validator's H_i to this many headers with
	// deterministic oldest-first eviction (ledger.TrustStore.SetCap).
	// 0 (the default) keeps H_i unbounded — the paper's behavior and
	// the live driver's. Scale runs set it: with every node auditing
	// every slot, unbounded trust retention is the dominant memory
	// term past a few thousand nodes.
	TrustCap int
	// DisableAudits turns off per-generation audits (used by the
	// consensus-probe experiment, which runs its own verifications).
	DisableAudits bool
	// RetainVerifiedBlocks adds retrieved blocks to storage accounting.
	RetainVerifiedBlocks bool
	// VerifyLag is the minimum age (slots) of auditable blocks;
	// 0 means |V| per Sec. VI.
	VerifyLag int
	// Difficulty is the PoW difficulty ρ; simulations default to 0 so
	// runs stay fast (cost accounting never depends on ρ).
	Difficulty pow.Difficulty
	// SyntheticBodyBytes is the materialized body size (the accounted
	// size is always BodyBytes); 0 means 32.
	SyntheticBodyBytes int
	// StepBudget caps per-audit probing (0 = core default).
	StepBudget int
	// Workers bounds the goroutines running per-slot generation and
	// audits: 0 uses GOMAXPROCS, 1 forces the serial scheduler. Every
	// random choice inside a slot draws from a per-node stream, so a
	// given Seed produces an identical Report for any worker count.
	Workers int
	// ChunkSize sets how many nodes one worker claims at a time inside
	// the per-slot phases. At 10k–100k nodes, one pool task per node
	// spends more time on dispatch (an atomic claim per index) than on
	// the work; range-chunked tasks amortize that to one claim per
	// ChunkSize nodes and let each worker reuse its scratch across the
	// chunk. 0 picks a size from the worker count. Chunking only
	// changes which worker runs which node — every per-node draw still
	// comes from that node's private stream — so the Report is
	// byte-identical for any (Workers, PipelineDepth, ChunkSize).
	ChunkSize int
	// SampleMemStats fills Report.Mem with process heap statistics at
	// Finalize (runtime.ReadMemStats). Off by default: the sample
	// reflects the whole process, not just this run, and it is the one
	// Report field that is NOT a pure function of the Config — leave it
	// off where reports are compared across runs.
	SampleMemStats bool
	// PipelineDepth bounds how many slots of audit duty may be in
	// flight behind generation: at depth d the slotted scheduler moves
	// on to slot t+1 generation while up to d audit slots are still
	// verifying on a persistent audit stage, under the
	// immutable-prefix contract (see the package doc). 0 or 1 (the
	// default) runs the fully barriered schedule. Any depth produces a
	// byte-identical Report for the same Seed.
	PipelineDepth int
	// Observer, when non-nil, receives the typed event stream
	// (internal/events): block seals, digest deliveries, audit hops and
	// outcomes. Generation and audit phases run on a worker pool, so
	// the observer must be safe for concurrent use; with
	// PipelineDepth > 1, slot t's audit events may additionally
	// interleave with slot t+1's generation events. The Report stays a
	// pure function of the Config regardless of observer behavior.
	Observer events.Observer
}

func (c Config) validate() error {
	if c.Slots < 0 {
		return fmt.Errorf("%w: %d slots", ErrBadConfig, c.Slots)
	}
	if c.PipelineDepth < 0 {
		return fmt.Errorf("%w: pipeline depth %d", ErrBadConfig, c.PipelineDepth)
	}
	if c.BodyBytes <= 0 {
		return fmt.Errorf("%w: body %d bytes", ErrBadConfig, c.BodyBytes)
	}
	if c.Gamma < 0 {
		return fmt.Errorf("%w: gamma %d", ErrBadConfig, c.Gamma)
	}
	if c.Malicious < 0 {
		return fmt.Errorf("%w: malicious %d", ErrBadConfig, c.Malicious)
	}
	if c.ChunkSize < 0 {
		return fmt.Errorf("%w: chunk size %d", ErrBadConfig, c.ChunkSize)
	}
	if c.TrustCap < 0 {
		return fmt.Errorf("%w: trust cap %d", ErrBadConfig, c.TrustCap)
	}
	return nil
}

// loggedBlock records one generated block for audit-target selection.
type loggedBlock struct {
	ref  block.Ref
	slot int
}

// nodeSeed derives node id's private RNG stream from the run seed with
// golden-ratio mixing so nearby seeds decorrelate.
func nodeSeed(seed int64, id identity.NodeID) int64 {
	return seed ^ int64(uint64(id+1)*0x9E3779B97F4A7C15)
}

// commCell is one node's transmission counter. Fields are atomic so
// parallel audits can charge arbitrary responders concurrently; atomic
// addition is commutative, which keeps totals independent of audit
// scheduling order.
type commCell struct {
	construction atomic.Int64
	consensus    atomic.Int64
}

func (c *commCell) add(p metrics.Purpose, bits int64) {
	if p == metrics.Construction {
		c.construction.Add(bits)
	} else {
		c.consensus.Add(bits)
	}
}

func (c *commCell) totalBits() int64 {
	return c.construction.Load() + c.consensus.Load()
}

// Sim is a running simulation. Build with New; Step/Run must not be
// called concurrently (each Step fans its per-node work out over a
// persistent worker pool, and with PipelineDepth > 1 hands audit duty
// to a persistent audit stage). Call Close when done to release the
// scheduler's goroutines.
type Sim struct {
	cfg     Config
	graph   *topology.Graph
	model   block.SizeModel
	params  block.Params
	ring    *identity.Ring
	rng     *rand.Rand
	workers int

	// pool runs the main loop's parallel phases (generation,
	// announcement, and — when the pipeline is off — audits). audPool
	// is the audit stage's own worker set: audit tasks must never share
	// workers with generation tasks, which block on audGate.
	pool    *par.Pool
	audPool *par.Pool

	// Pipeline state (PipelineDepth > 1 only). jobs carries one audit
	// job per committed slot to the audit stage (capacity depth-1, so
	// at most depth slots are in flight counting the one executing);
	// acks posts one token per retired job back to the main loop;
	// inFlight is the main loop's count of unretired jobs. audGate[i]
	// tracks node i's outstanding audit duties so slot t+1 generation
	// cannot overtake the node's slot-t audit on its random stream.
	jobs      chan *auditJob
	acks      chan struct{}
	stageDone chan struct{}
	inFlight  int
	audGate   []*sync.WaitGroup
	closed    bool

	// Per-node state is ordinal-indexed: ids assigns each node a dense
	// ordinal at join, idx inverts it, and everything else is a slice
	// over ordinals — at 10k–100k nodes, slice indexing replaces a map
	// probe on every hot-path touch and the per-node bookkeeping costs
	// a few words instead of map buckets. engines[i]/validators[i] are
	// nil for silenced nodes, behaviors[i] is nil for honest ones.
	ids        []identity.NodeID
	idx        map[identity.NodeID]int
	engines    []*core.Engine
	validators []*core.Validator
	behaviors  []attack.Behavior
	periods    []int
	// arena holds every sealed block in the run exactly once,
	// content-addressed; per-node stores are compact indexes over it
	// (ledger.NewStoreInArena). vcache is the one process-wide
	// header-verification cache every validator shares.
	arena  *ledger.Arena
	vcache *block.VerifyCache
	// chunk is the resolved phase chunk size (Config.ChunkSize or auto).
	chunk int
	// nodeRNG[i] is node i's private random stream; all of a node's
	// per-slot draws (body bytes, audit target, selection tie-breaks)
	// come from it, so slot outcomes are independent of worker
	// scheduling.
	nodeRNG []*rand.Rand
	// vmu[i] serializes externally driven audits per validator
	// (AuditFrom): a validator's RNG stream is not safe for concurrent
	// draws.
	vmu []*sync.Mutex
	// fenceFree recycles audit-job fence slices between the main loop
	// and the audit stage (the channel provides the happens-before
	// edge), so pipelined slots at 10k nodes stop allocating an
	// O(nodes) view slice each.
	fenceFree chan []ledger.View

	comm         []*commCell
	retainedBits []int64
	blockLog     []loggedBlock
	slot         int
	// storeBits[i] is node i's running S_i footprint under the size
	// model, maintained at append time by the main loop so the slot
	// boundary can freeze Σ storeBits without touching store locks
	// while pipelined audits read them.
	storeBits []int64
	// eligibleHi memoizes eligibleTargets' scan frontier (the cutoff is
	// monotone in the slot, so the prefix only ever grows).
	eligibleHi int

	// Announcement scratch, reused across flushes so the batched
	// phase 2 allocates nothing per slot: annSenders/annDigests hold
	// one flush's (sender, digest) pairs in slot order; annFrom[j] and
	// annDigs[j] are receiver j's batch columns; annRecvs lists the
	// receivers touched by the current flush and annErrs their
	// per-receiver delivery errors.
	annSenders []identity.NodeID
	annDigests []digest.Digest
	annFrom    [][]identity.NodeID
	annDigs    [][]digest.Digest
	annRecvs   []int
	annErrs    []error
	annNbs     []identity.NodeID

	// counters aggregates audit outcomes from the typed event stream —
	// the Report's Audits/Failures derive from it rather than from
	// ad-hoc tallies. obs additionally fans events out to the
	// user-configured observer; it is never nil (it always wraps
	// counters at least).
	counters *metrics.EventCounters
	obs      events.Observer

	// snappedSlot is the newest slot already appended to the report
	// series, making snapshot idempotent per slot: the slotted
	// scheduler snapshots at the end of every Step, the external drive
	// on AdvanceSlot, and Finalize closes a still-open final slot.
	snappedSlot int

	report *Report
}

// Report accumulates the per-slot series and final per-node samples the
// figures need.
type Report struct {
	// AvgStorageBits[s] is the mean per-node storage after slot s+1.
	AvgStorageBits []int64
	// AvgCommBits / AvgConstructionBits / AvgConsensusBits are mean
	// cumulative per-node transmissions after each slot.
	AvgCommBits         []int64
	AvgConstructionBits []int64
	AvgConsensusBits    []int64
	// Final per-node samples (CDF inputs).
	NodeStorageBits []int64
	NodeCommBits    []int64
	// Audits/Failures count PoP verifications run as audit duty.
	Audits, Failures int
	// Blocks is the total generated block count (Prop. 1's |B|).
	Blocks int
	// Mem holds the end-of-run heap sample when Config.SampleMemStats is
	// set; nil otherwise. It is process-level observability, not part of
	// the deterministic report surface.
	Mem *MemReport
}

// MemReport is the heap footprint sampled at Finalize
// (runtime.ReadMemStats), for scaling runs that report memory alongside
// time: bytes/node vs n is the headline curve of the scaling
// experiment.
type MemReport struct {
	// HeapInuseBytes is spans-in-use; HeapAllocBytes live objects.
	HeapInuseBytes  uint64
	HeapAllocBytes  uint64
	TotalAllocBytes uint64
	NumGC           uint32
	// BytesPerNode is HeapInuseBytes / |V|.
	BytesPerNode uint64
}

// New builds a simulation.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := cfg.Graph
	if g == nil {
		var err error
		g, err = topology.Generate(cfg.Topo)
		if err != nil {
			return nil, fmt.Errorf("sim: generating topology: %w", err)
		}
	}
	if cfg.SyntheticBodyBytes <= 0 {
		cfg.SyntheticBodyBytes = 32
	}
	if cfg.VerifyLag <= 0 {
		cfg.VerifyLag = g.Len()
	}
	if cfg.Behavior == "" {
		cfg.Behavior = attack.KindSilent
	}

	params := block.Params{
		Version:    block.CurrentVersion,
		Difficulty: cfg.Difficulty,
		LeafSize:   1024,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := g.Nodes()
	counters := &metrics.EventCounters{}
	s := &Sim{
		cfg:          cfg,
		graph:        g,
		model:        block.DefaultSizeModel(cfg.BodyBytes),
		params:       params,
		rng:          rng,
		workers:      workers,
		chunk:        cfg.ChunkSize,
		ids:          ids,
		idx:          make(map[identity.NodeID]int, len(ids)),
		engines:      make([]*core.Engine, len(ids)),
		validators:   make([]*core.Validator, len(ids)),
		behaviors:    make([]attack.Behavior, len(ids)),
		vmu:          make([]*sync.Mutex, len(ids)),
		arena:        ledger.NewArena(),
		vcache:       block.NewVerifyCache(),
		nodeRNG:      make([]*rand.Rand, len(ids)),
		comm:         make([]*commCell, len(ids)),
		retainedBits: make([]int64, len(ids)),
		storeBits:    make([]int64, len(ids)),
		periods:      make([]int, len(ids)),
		counters:     counters,
		obs:          events.Multi(counters, cfg.Observer),
		report:       &Report{},
	}
	var pairs []identity.KeyPair
	for i, id := range ids {
		s.idx[id] = i
		key := identity.Deterministic(id, cfg.Seed)
		pairs = append(pairs, key)
		// Every engine stores through the shared content-addressed arena
		// (bodies held once, per-node compact indexes) and shares the
		// process-wide verification cache — the memory shape that fits
		// 10k–100k ledgers in one process.
		eng, err := core.NewEngineWith(key, params, g, core.EngineOptions{
			Store:       ledger.NewStoreInArena(id, s.arena),
			VerifyCache: s.vcache,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: engine %v: %w", id, err)
		}
		s.engines[i] = eng
		s.comm[i] = &commCell{}
		// A fixed per-node stream, derived from the run seed and the
		// node ID with golden-ratio mixing so nearby seeds decorrelate.
		s.nodeRNG[i] = rand.New(rand.NewSource(nodeSeed(cfg.Seed, id)))
		s.vmu[i] = &sync.Mutex{}
		s.periods[i] = 1
		if cfg.RandomPeriodMax >= 2 {
			s.periods[i] = 1 + rng.Intn(cfg.RandomPeriodMax)
		}
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		return nil, fmt.Errorf("sim: building ring: %w", err)
	}
	s.ring = ring
	for id, b := range attack.Assign(ids, cfg.Malicious, cfg.Behavior, rng) {
		s.behaviors[s.idx[id]] = b
	}
	for i, id := range ids {
		v, err := s.newValidator(id, i)
		if err != nil {
			return nil, fmt.Errorf("sim: validator %v: %w", id, err)
		}
		s.validators[i] = v
	}
	s.pool = par.NewPool(workers)
	if cfg.PipelineDepth > 1 {
		s.audPool = par.NewPool(workers)
		s.jobs = make(chan *auditJob, cfg.PipelineDepth-1)
		s.acks = make(chan struct{}, cfg.PipelineDepth)
		s.stageDone = make(chan struct{})
		s.fenceFree = make(chan []ledger.View, cfg.PipelineDepth+1)
		s.audGate = make([]*sync.WaitGroup, len(ids))
		for i := range s.audGate {
			s.audGate[i] = &sync.WaitGroup{}
		}
		go s.auditStage()
	}
	return s, nil
}

// newValidator builds node id's persistent validator over the shared
// ring, topology and verification cache.
func (s *Sim) newValidator(id identity.NodeID, i int) (*core.Validator, error) {
	trust := s.engines[i].Trust()
	if s.cfg.DisableTrust {
		trust = nil
	} else if s.cfg.TrustCap > 0 {
		trust.SetCap(s.cfg.TrustCap)
	}
	return core.NewValidator(core.ValidatorConfig{
		Self:        id,
		Gamma:       s.cfg.Gamma,
		Params:      s.params,
		Ring:        s.ring,
		Topo:        s.graph,
		Trust:       trust,
		Strategy:    s.cfg.Strategy,
		RNG:         s.nodeRNG[i],
		StepBudget:  s.cfg.StepBudget,
		VerifyCache: s.engines[i].VerifyCache(),
	})
}

// engineOf resolves a node ID to its live engine; ok is false for
// unknown and silenced nodes alike.
func (s *Sim) engineOf(id identity.NodeID) (*core.Engine, bool) {
	i, known := s.idx[id]
	if !known || s.engines[i] == nil {
		return nil, false
	}
	return s.engines[i], true
}

// behaviorOf returns node id's attack behavior (Honest for everyone
// not assigned one).
func (s *Sim) behaviorOf(id identity.NodeID) attack.Behavior {
	if i, known := s.idx[id]; known && s.behaviors[i] != nil {
		return s.behaviors[i]
	}
	return attack.Honest{}
}

// Close drains any in-flight audit slots and releases the scheduler's
// persistent goroutines (worker pools and the audit stage). The
// accumulated report stays readable through Finalize; Step, Run and
// the external-drive verbs must not be called afterwards. Idempotent.
func (s *Sim) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.drain()
	if s.jobs != nil {
		close(s.jobs)
		<-s.stageDone
	}
	s.pool.Close()
	s.audPool.Close()
}

// Graph returns the physical topology.
func (s *Sim) Graph() *topology.Graph { return s.graph }

// Ring returns the shared public-key registry.
func (s *Sim) Ring() *identity.Ring { return s.ring }

// Model returns the analytic size model in use.
func (s *Sim) Model() block.SizeModel { return s.model }

// Stores returns every live node's block store (for DAG analysis).
func (s *Sim) Stores() map[identity.NodeID]*ledger.Store {
	s.drain()
	out := make(map[identity.NodeID]*ledger.Store, len(s.ids))
	for i, id := range s.ids {
		if s.engines[i] != nil {
			out[id] = s.engines[i].Store()
		}
	}
	return out
}

// MaliciousNodes returns the IDs assigned a malicious behavior, in
// arbitrary order.
func (s *Sim) MaliciousNodes() []identity.NodeID {
	var out []identity.NodeID
	for i, id := range s.ids {
		if s.behaviors[i] != nil {
			out = append(out, id)
		}
	}
	return out
}

// Slot returns the number of completed slots.
func (s *Sim) Slot() int { return s.slot }

// headerModelBits is f_c + f_H·|Δ| for a concrete header.
func (s *Sim) headerModelBits(h *block.Header) int64 {
	return int64(s.model.ConstantBits() + s.model.FH*len(h.Digests))
}

// blockModelBits adds the C-bit body (Eq. 2).
func (s *Sim) blockModelBits(h *block.Header) int64 {
	return s.headerModelBits(h) + int64(s.model.C)
}

// Step advances one slot in three phases:
//
//  1. Generation — every node due this slot mines its block from its
//     start-of-slot digest cache, in parallel (a node's generation only
//     touches its own engine and RNG stream).
//  2. Announcement — the slot's digests are grouped by receiver and
//     ingested as one per-receiver batch (Engine.OnDigestBatch) on the
//     worker pool: each receiver's A_i is touched by exactly one
//     goroutine, so delivery parallelizes without contention. Inside a
//     batch the (sender, digest) pairs keep slot order — the order the
//     serial scheduler would have applied them — so cache contents are
//     bit-identical to singleton delivery.
//  3. Audit duty — each generating honest node runs one PoP audit, in
//     parallel; responder comm charges are atomic, and all random
//     draws come from the auditing node's own stream.
//
// Every slot keeps synchronous semantics: blocks generated in slot t
// reference digests announced in slots < t, and audits in slot t see
// all blocks through slot t. With PipelineDepth ≤ 1 the phases run
// under full barriers. With a deeper pipeline, phase 3 is packaged as
// an audit job at the slot boundary — target eligibility, per-store
// fences (ledger.View) and the boundary's frozen storage/construction
// sums — and handed to the persistent audit stage, letting Step return
// and the next slot generate while the job verifies; per-node audGate
// ordering keeps each node's random stream in barriered draw order.
// Either way the report is a pure function of the Config, independent
// of worker count and pipeline depth.
func (s *Sim) Step() error {
	if s.closed {
		return fmt.Errorf("%w: Step on a closed simulation", ErrBadConfig)
	}
	s.slot++
	var gens []int
	for i := range s.ids {
		if s.engines[i] == nil {
			continue // silenced via dynamic membership
		}
		if (s.slot-1)%s.periods[i] == 0 {
			gens = append(gens, i)
		}
	}

	// Phase 1: parallel block generation, chunked so each worker claims
	// a contiguous range of generators and reuses one body buffer across
	// it (Engine's Build copies the body out). Which worker generates
	// which node is irrelevant to the outcome: every draw comes from the
	// node's own stream.
	type genResult struct {
		ref  block.Ref
		dig  digest.Digest
		bits int64
		err  error
	}
	results := make([]genResult, len(gens))
	s.pool.RunChunked(len(gens), s.chunk, func(lo, hi int) {
		body := make([]byte, s.cfg.SyntheticBodyBytes)
		for k := lo; k < hi; k++ {
			i := gens[k]
			id := s.ids[i]
			if s.audGate != nil {
				// Pipelined: the node's outstanding audit duties draw from
				// the same random stream — let them finish first so the
				// stream keeps its barriered order.
				s.audGate[i].Wait()
			}
			s.nodeRNG[i].Read(body)
			b, d, err := s.engines[i].Generate(uint32(s.slot), body)
			if err != nil {
				results[k] = genResult{err: fmt.Errorf("sim: slot %d: %w", s.slot, err)}
				continue
			}
			// DAG construction traffic: one digest per neighbor (Sec. III-D).
			deg := s.graph.Degree(id)
			s.comm[i].add(metrics.Construction, int64(deg)*int64(s.model.DigestBits()))
			s.obs.OnBlockSealed(events.BlockSealed{
				Node: id, Ref: b.Header.Ref(), Digest: d, Slot: uint32(s.slot),
			})
			results[k] = genResult{ref: b.Header.Ref(), dig: d, bits: s.blockModelBits(&b.Header)}
		}
	})

	// Phase 2: bookkeeping in node order, then receiver-centric batched
	// announcement on the worker pool. The whole slot's generation must
	// validate before anything is announced (sealed-delivery contract:
	// a slot's announcements flush atomically or not at all).
	senders := s.annSenders[:0]
	digs := s.annDigests[:0]
	for k, i := range gens {
		r := results[k]
		if r.err != nil {
			return r.err
		}
		senders = append(senders, s.ids[i])
		digs = append(digs, r.dig)
		s.storeBits[i] += r.bits
		s.blockLog = append(s.blockLog, loggedBlock{ref: r.ref, slot: s.slot})
		s.report.Blocks++
	}
	s.annSenders, s.annDigests = senders, digs
	if err := s.deliverBatched(senders, digs); err != nil {
		return err
	}

	// Phase 3: audit duty for honest generators, packaged as one job
	// per slot. Barriered mode runs it inline; pipelined mode hands it
	// to the audit stage and lets the next slot generate meanwhile.
	job := s.buildAuditJob(gens)
	if s.jobs != nil {
		for _, i := range job.auditors {
			s.audGate[i].Add(1)
		}
		s.reapAcks()
		s.jobs <- job
		s.inFlight++
	} else {
		s.runAuditJob(job)
	}
	return nil
}

// auditJob is one slot's audit duty plus everything the audit stage
// needs to execute and retire it without touching in-flight main-loop
// state: the slot-boundary fences over every store, the frozen
// eligible-target prefix, and the boundary's storage/construction
// sums for the slot's report snapshot.
type auditJob struct {
	slot     int
	auditors []int
	// targets is the block log as of the slot boundary; only indexes
	// below eligible are read (later appends land beyond them).
	targets  []loggedBlock
	eligible int
	// fence[i] is node i's immutable-prefix store view at the slot
	// boundary; nil (barriered mode) reads live stores, which phase
	// barriers already freeze.
	fence []ledger.View
	// storeSum is Σ live-node S_i model bits and constrSum the total
	// construction traffic at the slot boundary, both frozen by the
	// main loop because slot t+1 generation mutates them while this
	// slot's audits run.
	storeSum  int64
	constrSum int64
}

// buildAuditJob freezes slot s.slot's audit duty at the generation/
// announcement commit point.
func (s *Sim) buildAuditJob(gens []int) *auditJob {
	job := &auditJob{slot: s.slot}
	if !s.cfg.DisableAudits {
		for _, i := range gens {
			if s.behaviors[i] == nil {
				job.auditors = append(job.auditors, i)
			}
		}
	}
	job.eligible = s.eligibleTargets()
	job.targets = s.blockLog
	if s.jobs != nil {
		// Fence slices recycle through fenceFree once their slot
		// retires; every entry is rewritten here (zero View for
		// silenced nodes), so a recycled slice carries no stale state.
		select {
		case job.fence = <-s.fenceFree:
		default:
		}
		if cap(job.fence) < len(s.ids) {
			job.fence = make([]ledger.View, len(s.ids))
		}
		job.fence = job.fence[:len(s.ids)]
		for i := range s.ids {
			if eng := s.engines[i]; eng != nil {
				job.fence[i] = eng.Store().View()
			} else {
				job.fence[i] = ledger.View{}
			}
		}
	}
	for i := range s.ids {
		if s.engines[i] != nil {
			job.storeSum += s.storeBits[i]
		}
		job.constrSum += s.comm[i].construction.Load()
	}
	return job
}

// runAuditJob executes one slot's audits on the audit stage's pool
// (or the main pool in barriered mode) and retires the slot into the
// report. Jobs run strictly in slot order, so the post-audit state it
// reads (trust stores, retained bits, consensus traffic) is exactly
// the barriered schedule's end-of-slot state. Audits are chunked like
// the other phases; every audit draws only from its own node's stream
// and charges comm atomically, so the partition is outcome-neutral.
func (s *Sim) runAuditJob(job *auditJob) {
	pool := s.audPool
	if pool == nil {
		pool = s.pool
	}
	pool.RunChunked(len(job.auditors), s.chunk, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := job.auditors[k]
			s.auditDuty(i, job)
			if s.audGate != nil {
				s.audGate[i].Done()
			}
		}
	})
	s.snapshotSlot(job)
}

// auditStage is the pipeline's persistent audit goroutine: it executes
// queued audit jobs FIFO and posts one ack per retired slot.
func (s *Sim) auditStage() {
	for job := range s.jobs {
		s.runAuditJob(job)
		if job.fence != nil {
			select {
			case s.fenceFree <- job.fence:
			default:
			}
		}
		s.acks <- struct{}{}
	}
	close(s.stageDone)
}

// reapAcks consumes completion acks the audit stage already posted,
// without blocking.
func (s *Sim) reapAcks() {
	for s.inFlight > 0 {
		select {
		case <-s.acks:
			s.inFlight--
		default:
			return
		}
	}
}

// drain blocks until every enqueued audit job has retired. The
// external-drive and inspection verbs call it so anything observed
// outside Step — reports, stores, membership — reflects a fully
// settled pipeline; at depth ≤ 1 (or on a pure external-drive Sim) it
// is a no-op.
func (s *Sim) drain() {
	for s.inFlight > 0 {
		<-s.acks
		s.inFlight--
	}
}

// announce delivers a freshly sealed digest to every live neighbor's
// A_i cache, emitting the receiver-side DigestAnnounced event. It is
// the singleton shim over the batched delivery path (deliverBatched),
// kept for one-at-a-time external drive (SubmitAs/AnnounceAs).
func (s *Sim) announce(id identity.NodeID, d digest.Digest) error {
	s.annNbs = s.graph.AppendNeighbors(s.annNbs[:0], id)
	for _, nb := range s.annNbs {
		eng, live := s.engineOf(nb)
		if !live {
			continue // silenced neighbors miss the announcement
		}
		if err := eng.OnDigest(id, d); err != nil {
			return fmt.Errorf("sim: announcing %v -> %v: %w", id, nb, err)
		}
		s.obs.OnDigestAnnounced(events.DigestAnnounced{From: id, To: nb, Digest: d})
	}
	return nil
}

// deliverBatched is the receiver-centric announcement path: one
// flush's (froms[i] announced ds[i]) pairs are grouped by receiving
// neighbor and ingested as one Engine.OnDigestBatch call per receiver
// on the worker pool. Each receiver's cache is touched by exactly one
// goroutine, so the phase parallelizes contention-free, and every
// batch keeps its pairs in flush order — bit-identical cache contents
// to serial singleton delivery, for any worker count. Silenced
// neighbors miss the flush, like a dead radio. The per-receiver
// scratch columns are reused across flushes, so a full slot's
// delivery allocates nothing.
func (s *Sim) deliverBatched(froms []identity.NodeID, ds []digest.Digest) error {
	for len(s.annFrom) < len(s.ids) {
		s.annFrom = append(s.annFrom, nil)
		s.annDigs = append(s.annDigs, nil)
	}
	recvs := s.annRecvs[:0]
	for k, from := range froms {
		nbs := s.graph.AppendNeighbors(s.annNbs[:0], from)
		s.annNbs = nbs
		for _, nb := range nbs {
			j, known := s.idx[nb]
			if !known || s.engines[j] == nil {
				continue // silenced neighbors miss the announcement
			}
			if len(s.annFrom[j]) == 0 {
				recvs = append(recvs, j)
			}
			s.annFrom[j] = append(s.annFrom[j], from)
			s.annDigs[j] = append(s.annDigs[j], ds[k])
		}
	}
	s.annRecvs = recvs
	errs := s.annErrs[:0]
	for range recvs {
		errs = append(errs, nil)
	}
	s.annErrs = errs
	s.pool.RunChunked(len(recvs), s.chunk, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			j := recvs[k]
			to := s.ids[j]
			if err := s.engines[j].OnDigestBatch(s.annFrom[j], s.annDigs[j]); err != nil {
				errs[k] = fmt.Errorf("sim: delivering batch to %v: %w", to, err)
				continue
			}
			s.obs.OnDigestBatchDelivered(events.DigestBatchDelivered{
				To: to, From: s.annFrom[j], Digests: s.annDigs[j],
			})
		}
	})
	var first error
	for _, err := range errs {
		if err != nil {
			first = err
			break
		}
	}
	for _, j := range recvs {
		s.annFrom[j] = s.annFrom[j][:0]
		s.annDigs[j] = s.annDigs[j][:0]
	}
	return first
}

// auditDuty runs one PoP verification of a random sufficiently old
// block (Sec. VI: a node acts as validator whenever it generates).
// Outcomes flow through the typed event stream; retained-storage
// accounting goes straight to the auditor's own slot.
func (s *Sim) auditDuty(i int, job *auditJob) {
	id := s.ids[i]
	target, ok := s.pickTarget(i, job)
	if !ok {
		return
	}
	f := &simFetcher{sim: s, validator: id, fence: job.fence}
	res, err := s.validators[i].Verify(context.Background(), target, f)
	s.observeOutcome(id, target, res, err)
	if err == nil && res.Consensus && s.cfg.RetainVerifiedBlocks {
		// The validator holds on to the retrieved block (header+body).
		s.retainedBits[i] += s.blockModelBits(res.Path[0].Header)
	}
}

// observeOutcome emits the terminal audit event for a verification.
func (s *Sim) observeOutcome(v identity.NodeID, target block.Ref, res *core.Result, err error) {
	if err == nil && res.Consensus {
		s.obs.OnConsensusReached(events.ConsensusReached{
			Validator: v, Target: target, Vouchers: res.Vouchers,
			PathLen: len(res.Path), Messages: res.MessagesSent + res.MessagesReceived,
			TrustHits: res.TrustHits,
		})
		return
	}
	s.obs.OnAuditFailed(events.AuditFailed{Validator: v, Target: target, Err: err})
}

// eligibleTargets returns the length of the blockLog prefix old enough
// to audit this slot (blockLog is sorted by slot). The cutoff is
// monotone in the slot, so the scan resumes from the last frontier.
func (s *Sim) eligibleTargets() int {
	cutoff := s.slot - s.cfg.VerifyLag
	if cutoff < 1 {
		return 0
	}
	hi := s.eligibleHi
	for hi < len(s.blockLog) && s.blockLog[hi].slot <= cutoff {
		hi++
	}
	s.eligibleHi = hi
	return hi
}

// pickTarget selects a uniformly random eligible block not generated by
// the validator itself, drawing from the validator's own RNG stream.
// Candidates come from the job's boundary-frozen log prefix.
func (s *Sim) pickTarget(i int, job *auditJob) (block.Ref, bool) {
	if job.eligible == 0 {
		return block.Ref{}, false
	}
	validator := s.ids[i]
	for tries := 0; tries < 8; tries++ {
		cand := job.targets[s.nodeRNG[i].Intn(job.eligible)]
		if cand.ref.Node != validator {
			return cand.ref, true
		}
	}
	return block.Ref{}, false
}

// snapshotSlot retires one slot into the report: storage combines the
// boundary-frozen store sum with post-audit retention and trust
// state, and communication combines the boundary-frozen construction
// sum with post-audit consensus traffic. Because audit jobs retire
// strictly in slot order, these reads equal the barriered schedule's
// end-of-slot values bit for bit.
func (s *Sim) snapshotSlot(job *auditJob) {
	if s.snappedSlot >= job.slot {
		return
	}
	s.snappedSlot = job.slot
	storage := job.storeSum
	var cons int64
	for i := range s.ids {
		if eng := s.engines[i]; eng != nil {
			storage += s.retainedBits[i]
			if !s.cfg.DisableTrust {
				storage += eng.Trust().ModelBits(s.model)
			}
		}
		cons += s.comm[i].consensus.Load()
	}
	n := int64(len(s.ids))
	r := s.report
	r.AvgStorageBits = append(r.AvgStorageBits, storage/n)
	r.AvgCommBits = append(r.AvgCommBits, (job.constrSum+cons)/n)
	r.AvgConstructionBits = append(r.AvgConstructionBits, job.constrSum/n)
	r.AvgConsensusBits = append(r.AvgConsensusBits, cons/n)
}

// snapshot appends the current slot's aggregate points to the report,
// at most once per slot — the external-drive flavor (AdvanceSlot,
// Finalize) that reads everything live; the slotted scheduler retires
// slots through snapshotSlot instead.
func (s *Sim) snapshot() {
	if s.slot == 0 || s.snappedSlot >= s.slot {
		return
	}
	s.snappedSlot = s.slot
	var storage, comm, constr, cons int64
	for i, id := range s.ids {
		storage += s.storageBits(id)
		comm += s.comm[i].totalBits()
		constr += s.comm[i].construction.Load()
		cons += s.comm[i].consensus.Load()
	}
	n := int64(len(s.ids))
	r := s.report
	r.AvgStorageBits = append(r.AvgStorageBits, storage/n)
	r.AvgCommBits = append(r.AvgCommBits, comm/n)
	r.AvgConstructionBits = append(r.AvgConstructionBits, constr/n)
	r.AvgConsensusBits = append(r.AvgConsensusBits, cons/n)
}

// storageBits is the node's total footprint under the size model.
// Silenced nodes contribute nothing (their state left the network).
func (s *Sim) storageBits(id identity.NodeID) int64 {
	eng, live := s.engineOf(id)
	if !live {
		return 0
	}
	total := eng.Store().ModelBits(s.model) + s.retainedBits[s.idx[id]]
	if !s.cfg.DisableTrust {
		total += eng.Trust().ModelBits(s.model)
	}
	return total
}

// Run executes cfg.Slots steps and finalizes the report.
func (s *Sim) Run() (*Report, error) {
	for s.slot < s.cfg.Slots {
		if err := s.Step(); err != nil {
			s.drain()
			return nil, err
		}
	}
	return s.Finalize(), nil
}

// RunSlots advances the slotted scheduler n more slots (n Step calls)
// without finalizing, so callers that reach the Sim through the public
// Runtime facade can drive the same generation/announcement/audit
// schedule the figures use and read the report with Finalize. Slots
// pipeline freely inside one call (PipelineDepth); the pipeline is
// drained before returning, so whatever follows — more RunSlots,
// membership changes, audits — observes fully settled state. Do not
// mix RunSlots with the external-drive verbs (SubmitAs, AuditFrom) on
// the same Sim.
func (s *Sim) RunSlots(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			s.drain()
			return err
		}
	}
	s.drain()
	return nil
}

// Finalize fills the per-node samples and returns the report. Audit
// totals come from the event counters, so externally driven audits
// (AuditFrom) count alongside per-slot audit duty; an externally
// driven run's still-open final slot is snapshotted here. In-flight
// pipelined audit slots retire first.
func (s *Sim) Finalize() *Report {
	s.drain()
	s.snapshot()
	r := s.report
	r.Audits, r.Failures = int(s.counters.Audits()), int(s.counters.AuditsFailed())
	r.NodeStorageBits = make([]int64, len(s.ids))
	r.NodeCommBits = make([]int64, len(s.ids))
	for i, id := range s.ids {
		r.NodeStorageBits[i] = s.storageBits(id)
		r.NodeCommBits[i] = s.comm[i].totalBits()
	}
	if s.cfg.SampleMemStats && r.Mem == nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Mem = &MemReport{
			HeapInuseBytes:  ms.HeapInuse,
			HeapAllocBytes:  ms.HeapAlloc,
			TotalAllocBytes: ms.TotalAlloc,
			NumGC:           ms.NumGC,
			BytesPerNode:    ms.HeapInuse / uint64(len(s.ids)),
		}
	}
	return r
}

// The methods below drive a Sim externally, one protocol verb at a
// time, instead of via the slotted Step schedule. They power the
// public Runtime facade's deterministic-simulator driver: the same
// engines, fetcher accounting and attack behaviors, but generation and
// audits happen exactly when the caller says so. Do not mix external
// drive with Step on the same Sim, and do not call membership methods
// (JoinNode, Silence) concurrently with submissions or audits. Every
// verb below first drains in-flight pipelined audit slots, so a
// RunSlots phase may be followed by external drive or membership
// changes — the pipeline settles at the hand-off, keeping the run
// equivalent to the barriered schedule.

// AdvanceSlot closes the current logical slot — appending its
// aggregate storage/comm sample to the report, mirroring Step's
// per-slot snapshot — and begins the next one. Blocks submitted
// afterwards carry the new slot in their Time field.
func (s *Sim) AdvanceSlot() {
	s.drain()
	s.snapshot()
	s.slot++
}

// SubmitAs makes node id seal body into its next block and announce
// the digest to its live neighbors, charging construction traffic to
// the size model exactly as the slotted scheduler does.
func (s *Sim) SubmitAs(id identity.NodeID, body []byte) (block.Ref, error) {
	ref, d, err := s.GenerateAs(id, body)
	if err != nil {
		return block.Ref{}, err
	}
	if err := s.AnnounceAs(id, d); err != nil {
		return block.Ref{}, err
	}
	return ref, nil
}

// GenerateAs seals node id's next block from body without announcing
// it, returning the block ref and the digest to announce. Batch
// submitters generate a whole slot's blocks first and then flush all
// announcements with AnnounceAs, mirroring the slotted scheduler's
// generation/announcement phase split.
func (s *Sim) GenerateAs(id identity.NodeID, body []byte) (block.Ref, digest.Digest, error) {
	s.drain()
	i, known := s.idx[id]
	if !known || s.engines[i] == nil {
		return block.Ref{}, digest.Digest{}, fmt.Errorf("sim: unknown or silenced node %v", id)
	}
	eng := s.engines[i]
	b, d, err := eng.Generate(uint32(s.slot), body)
	if err != nil {
		return block.Ref{}, digest.Digest{}, fmt.Errorf("sim: slot %d: %w", s.slot, err)
	}
	s.storeBits[i] += s.blockModelBits(&b.Header)
	s.comm[i].add(metrics.Construction, int64(s.graph.Degree(id))*int64(s.model.DigestBits()))
	s.obs.OnBlockSealed(events.BlockSealed{
		Node: id, Ref: b.Header.Ref(), Digest: d, Slot: uint32(s.slot),
	})
	s.blockLog = append(s.blockLog, loggedBlock{ref: b.Header.Ref(), slot: s.slot})
	s.report.Blocks++
	return b.Header.Ref(), d, nil
}

// AnnounceAs delivers a digest returned by GenerateAs to id's live
// neighbors, one at a time (the singleton path; batch submitters use
// AnnounceBatch).
func (s *Sim) AnnounceAs(id identity.NodeID, d digest.Digest) error {
	s.drain()
	return s.announce(id, d)
}

// AnnounceBatch flushes a whole batch of digests returned by
// GenerateAs — froms[i] announced ds[i] — through the same
// receiver-centric delivery the slotted scheduler uses: grouped by
// receiving neighbor, one batch ingest per receiver on the worker
// pool, pairs in flush order. This is the external-drive verb behind
// the public SubmitBatch.
func (s *Sim) AnnounceBatch(froms []identity.NodeID, ds []digest.Digest) error {
	s.drain()
	if len(froms) != len(ds) {
		return fmt.Errorf("sim: announce batch length mismatch: %d senders, %d digests", len(froms), len(ds))
	}
	for _, id := range froms {
		if _, live := s.engineOf(id); !live {
			return fmt.Errorf("sim: unknown or silenced node %v", id)
		}
	}
	return s.deliverBatched(froms, ds)
}

// BlockOf fetches a block from its origin's store (display and sample
// proofs). The result is shared sealed store state — read-only.
func (s *Sim) BlockOf(ref block.Ref) (*block.Block, error) {
	s.drain()
	eng, live := s.engineOf(ref.Node)
	if !live {
		return nil, fmt.Errorf("sim: unknown or silenced node %v", ref.Node)
	}
	return eng.Store().Get(ref.Seq)
}

// AuditFrom runs a PoP verification from the given validator's
// persistent validator (H_i and the verification cache carry over
// between audits, as on a live node). Safe for concurrent use across
// distinct validators; audits from the same validator serialize on a
// per-validator mutex because its RNG stream is not concurrency-safe.
func (s *Sim) AuditFrom(ctx context.Context, validator identity.NodeID, target block.Ref) (*core.Result, error) {
	s.drain()
	i, known := s.idx[validator]
	if !known || s.validators[i] == nil {
		return nil, fmt.Errorf("sim: unknown or silenced validator %v", validator)
	}
	v := s.validators[i]
	mu := s.vmu[i]
	mu.Lock()
	res, err := v.Verify(ctx, target, &simFetcher{sim: s, validator: validator})
	mu.Unlock()
	s.observeOutcome(validator, target, res, err)
	return res, err
}

// JoinNode registers a node that was already added to the shared
// topology: deterministic identity from the run seed, a fresh engine
// and persistent validator, and zeroed accounting. The id must be new
// to the simulation.
func (s *Sim) JoinNode(id identity.NodeID) error {
	s.drain()
	if _, known := s.idx[id]; known {
		return fmt.Errorf("sim: node %v already known", id)
	}
	if !s.graph.Has(id) {
		return fmt.Errorf("sim: joiner %v not in topology", id)
	}
	key := identity.Deterministic(id, s.cfg.Seed)
	if err := s.ring.Register(key.ID, key.Public); err != nil {
		return fmt.Errorf("sim: registering joiner: %w", err)
	}
	eng, err := core.NewEngineWith(key, s.params, s.graph, core.EngineOptions{
		Store:       ledger.NewStoreInArena(id, s.arena),
		VerifyCache: s.vcache,
	})
	if err != nil {
		return fmt.Errorf("sim: joiner engine: %w", err)
	}
	i := len(s.ids)
	s.idx[id] = i
	s.ids = append(s.ids, id)
	s.engines = append(s.engines, eng)
	s.behaviors = append(s.behaviors, nil)
	s.comm = append(s.comm, &commCell{})
	s.retainedBits = append(s.retainedBits, 0)
	s.storeBits = append(s.storeBits, 0)
	s.periods = append(s.periods, 1)
	s.nodeRNG = append(s.nodeRNG, rand.New(rand.NewSource(nodeSeed(s.cfg.Seed, id))))
	s.vmu = append(s.vmu, &sync.Mutex{})
	if s.audGate != nil {
		s.audGate = append(s.audGate, &sync.WaitGroup{})
	}
	v, err := s.newValidator(id, i)
	if err != nil {
		return fmt.Errorf("sim: joiner validator: %w", err)
	}
	s.validators = append(s.validators, v)
	return nil
}

// Silenced reports whether id is known to the simulation but no
// longer live (its engine was removed by Silence).
func (s *Sim) Silenced(id identity.NodeID) bool {
	i, known := s.idx[id]
	return known && s.engines[i] == nil
}

// Silence takes a node offline: its engine and validator leave the
// network, so PoP requests to it time out (the silent-attack shape)
// and subsequent audits must route around it. The node stays in the
// topology, exactly like a crashed radio.
func (s *Sim) Silence(id identity.NodeID) error {
	s.drain()
	i, known := s.idx[id]
	if !known || s.engines[i] == nil {
		return fmt.Errorf("sim: unknown or already silenced node %v", id)
	}
	s.engines[i] = nil
	s.validators[i] = nil
	return nil
}

// Verify runs a one-off PoP verification from the given validator with
// a fresh, cache-less validator instance (used by the consensus-probe
// experiment so probes stay independent).
func (s *Sim) Verify(validator identity.NodeID, target block.Ref) (*core.Result, error) {
	s.drain()
	v, err := core.NewValidator(core.ValidatorConfig{
		Self:       validator,
		Gamma:      s.cfg.Gamma,
		Params:     s.params,
		Ring:       s.ring,
		Topo:       s.graph,
		Strategy:   s.cfg.Strategy,
		RNG:        s.rng,
		StepBudget: s.cfg.StepBudget,
	})
	if err != nil {
		return nil, err
	}
	return v.Verify(context.Background(), target, &simFetcher{sim: s, validator: validator})
}

// BlockAt returns the ref of the i-th generated block and its slot.
func (s *Sim) BlockAt(i int) (block.Ref, int, error) {
	s.drain()
	if i < 0 || i >= len(s.blockLog) {
		return block.Ref{}, 0, fmt.Errorf("%w: block index %d of %d", ErrBadConfig, i, len(s.blockLog))
	}
	lb := s.blockLog[i]
	return lb.ref, lb.slot, nil
}

// BlockCount returns the number of generated blocks.
func (s *Sim) BlockCount() int { return len(s.blockLog) }

// IsMalicious reports whether id carries a malicious behavior.
func (s *Sim) IsMalicious(id identity.NodeID) bool {
	i, known := s.idx[id]
	return known && s.behaviors[i] != nil
}

// simFetcher resolves PoP requests against the simulation state,
// applying attack behaviors and charging every transmission to the
// paper's size model.
type simFetcher struct {
	sim       *Sim
	validator identity.NodeID
	// fence, when non-nil, bounds every responder read at the audit's
	// slot boundary (fence[idx] is node idx's immutable-prefix store
	// view), so pipelined audits never observe blocks the next slot's
	// generation is appending concurrently. Nil reads live stores —
	// the barriered schedule, where phase barriers freeze them.
	fence []ledger.View
}

var _ core.Fetcher = (*simFetcher)(nil)

func (f *simFetcher) behavior(j identity.NodeID) attack.Behavior {
	return f.sim.behaviorOf(j)
}

// RequestChild implements core.Fetcher with Algorithm 4 semantics.
func (f *simFetcher) RequestChild(_ context.Context, j identity.NodeID, target digest.Digest) (*block.Header, error) {
	s := f.sim
	s.obs.OnAuditHop(events.AuditHop{Validator: f.validator, Responder: j, Target: target})
	// Validator transmits REQ_CHILD (a digest-sized request).
	s.comm[s.idx[f.validator]].add(metrics.Consensus, int64(s.model.DigestBits()))

	var h *block.Header
	var err error
	eng, live := s.engineOf(j)
	if live {
		if f.fence != nil {
			h, err = core.NewResponder(f.fence[s.idx[j]]).ChildFor(target)
		} else {
			h, err = core.NewResponder(eng.Store()).ChildFor(target)
		}
	} else {
		err = core.ErrTimeout
	}
	beh := f.behavior(j)
	h, err = beh.OnChildRequest(f.validator, j, target, h, err)
	if beh.Responds() && live {
		if h != nil {
			// Responder transmits RPY_CHILD with the header.
			s.comm[s.idx[j]].add(metrics.Consensus, s.headerModelBits(h))
		} else {
			// Negative reply: digest-sized NAK.
			s.comm[s.idx[j]].add(metrics.Consensus, int64(s.model.DigestBits()))
		}
	}
	return h, err
}

// FetchBlock implements core.Fetcher.
func (f *simFetcher) FetchBlock(_ context.Context, ref block.Ref) (*block.Block, error) {
	s := f.sim
	s.comm[s.idx[f.validator]].add(metrics.Consensus, int64(s.model.DigestBits()))

	var b *block.Block
	var err error
	eng, live := s.engineOf(ref.Node)
	if live {
		if f.fence != nil {
			b, err = core.NewResponder(f.fence[s.idx[ref.Node]]).Block(ref)
		} else {
			b, err = core.NewResponder(eng.Store()).Block(ref)
		}
	} else {
		err = core.ErrTimeout
	}
	beh := f.behavior(ref.Node)
	b, err = beh.OnBlockRequest(f.validator, ref.Node, b, err)
	if beh.Responds() && live {
		if b != nil {
			s.comm[s.idx[ref.Node]].add(metrics.Consensus, s.blockModelBits(&b.Header))
		} else {
			s.comm[s.idx[ref.Node]].add(metrics.Consensus, int64(s.model.DigestBits()))
		}
	}
	return b, err
}

// StorageSeries renders per-slot average storage in MB.
func (r *Report) StorageSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgStorageBits {
		s.Append(float64(i+1), metrics.BitsToMB(bits))
	}
	return s
}

// CommSeries renders per-slot average cumulative total transmissions in
// Mb.
func (r *Report) CommSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgCommBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}

// ConstructionSeries renders the Fig. 8(b) line.
func (r *Report) ConstructionSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgConstructionBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}

// ConsensusSeries renders the Fig. 8(c) line.
func (r *Report) ConsensusSeries(name string) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, bits := range r.AvgConsensusBits {
		s.Append(float64(i+1), metrics.BitsToMb(bits))
	}
	return s
}
