package sim

import (
	"reflect"
	"testing"

	"github.com/twoldag/twoldag/internal/attack"
	"github.com/twoldag/twoldag/internal/topology"
)

// TestParallelSchedulerIsDeterministic asserts the acceptance criterion
// of the parallel slot scheduler: the same Seed must produce an
// identical Report — every storage/comm/consensus series and per-node
// sample — for any (workers, pipeline depth, chunk size) combination,
// including the serial fallback, and on sparse generated topologies as
// well as the default random-geometric one. All three slot phases run
// range-chunked on the worker pool, so this covers the receiver-batched
// announcement phase too: per-receiver batches keep (sender,
// slot-order) ordering, making cache contents — and hence the Report —
// independent of delivery scheduling and chunk geometry.
func TestParallelSchedulerIsDeterministic(t *testing.T) {
	topos := []struct {
		name  string
		graph func(t *testing.T) *topology.Graph
	}{
		{"geometric", func(t *testing.T) *topology.Graph { return nil }}, // smallConfig's Topo
		{"smallworld", func(t *testing.T) *topology.Graph {
			g, err := topology.SmallWorld(topology.SmallWorldConfig{Nodes: 12, K: 2, Beta: 0.3, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"geoclustered", func(t *testing.T) *topology.Graph {
			g, err := topology.GeoClustered(topology.GeoClusteredConfig{Nodes: 12, ClusterSize: 4, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers, depth, chunk int) *Report {
				t.Helper()
				cfg := smallConfig(42)
				cfg.Graph = tc.graph(t)
				cfg.Malicious = 2
				cfg.Behavior = attack.KindSilent
				cfg.RetainVerifiedBlocks = true
				cfg.Workers = workers
				cfg.PipelineDepth = depth
				cfg.ChunkSize = chunk
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}

			serial := run(1, 0, 0)
			for _, workers := range []int{2, 8} {
				for _, depth := range []int{0, 2} {
					for _, chunk := range []int{0, 1, 5, 100} {
						if got := run(workers, depth, chunk); !reflect.DeepEqual(serial, got) {
							t.Fatalf("Workers=%d Depth=%d Chunk=%d diverged from serial run:\nserial:   %+v\nparallel: %+v",
								workers, depth, chunk, serial, got)
						}
					}
				}
			}
		})
	}
}

// TestParallelSchedulerRepeatable runs the default (GOMAXPROCS) worker
// pool twice: scheduling jitter must never leak into the report.
func TestParallelSchedulerRepeatable(t *testing.T) {
	run := func() *Report {
		t.Helper()
		cfg := smallConfig(7)
		cfg.RandomPeriodMax = 2
		// Capped H_i: eviction order must be as repeatable as insertion.
		cfg.TrustCap = 8
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}
