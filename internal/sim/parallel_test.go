package sim

import (
	"reflect"
	"testing"

	"github.com/twoldag/twoldag/internal/attack"
)

// TestParallelSchedulerIsDeterministic asserts the acceptance criterion
// of the parallel slot scheduler: the same Seed must produce an
// identical Report — every storage/comm/consensus series and per-node
// sample — for any worker count, including the serial fallback. All
// three slot phases run on the worker pool, so this covers the
// receiver-batched announcement phase too: per-receiver batches keep
// (sender, slot-order) ordering, making cache contents — and hence the
// Report — independent of delivery scheduling.
func TestParallelSchedulerIsDeterministic(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		cfg := smallConfig(42)
		cfg.Malicious = 2
		cfg.Behavior = attack.KindSilent
		cfg.RetainVerifiedBlocks = true
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	serial := run(1)
	for _, workers := range []int{2, 8} {
		parallel := run(workers)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("Workers=%d diverged from serial run:\nserial:   %+v\nparallel: %+v",
				workers, serial, parallel)
		}
	}
}

// TestParallelSchedulerRepeatable runs the default (GOMAXPROCS) worker
// pool twice: scheduling jitter must never leak into the report.
func TestParallelSchedulerRepeatable(t *testing.T) {
	run := func() *Report {
		t.Helper()
		cfg := smallConfig(7)
		cfg.RandomPeriodMax = 2
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}
