package sim

import (
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// BenchmarkAnnounceBatch isolates the announcement phase at the
// paper's 50-node scale: one op delivers a full slot's digests (one
// per node) to every live neighbor's A_i cache. "batched" is the
// receiver-centric path phase 2 rides — grouped by receiver, one
// Engine.OnDigestBatch per receiver on the worker pool, zero
// allocations per flush — and "singleton" the per-edge OnDigest loop
// it replaced.
func BenchmarkAnnounceBatch(b *testing.B) {
	newSim := func(b *testing.B) (*Sim, []identity.NodeID, []digest.Digest) {
		b.Helper()
		cfg := topology.DefaultConfig(1)
		cfg.Nodes = 50
		s, err := New(Config{Topo: cfg, Seed: 1, Slots: 1, BodyBytes: 500_000})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(s.Close)
		froms := make([]identity.NodeID, len(s.ids))
		ds := make([]digest.Digest, len(s.ids))
		for i, id := range s.ids {
			froms[i] = id
			ds[i] = digest.Sum([]byte(fmt.Sprintf("slot digest %v", id)))
		}
		return s, froms, ds
	}
	b.Run("batched", func(b *testing.B) {
		s, froms, ds := newSim(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.deliverBatched(froms, ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("singleton", func(b *testing.B) {
		s, froms, ds := newSim(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k, id := range froms {
				if err := s.announce(id, ds[k]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkHotpathSimStep measures one full simulated run (generation,
// announcement, audits) under the serial scheduler and the parallel
// worker pool. Both produce byte-identical reports (see
// TestParallelSchedulerIsDeterministic); the difference is wall clock.
// The n=10k variant is the scale benchmark behind ROADMAP item 5: a
// 10k-node small-world network stepping three slots with audits live
// (VerifyLag below the horizon) on the chunked phases and arena-backed
// compact stores, so ns/op tracks per-slot cost at scale.
func BenchmarkHotpathSimStep(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := New(Config{
					Topo:      topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1},
					Seed:      1,
					Slots:     30,
					BodyBytes: 500_000,
					Gamma:     5,
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, err = s.Run()
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("n=10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := topology.SmallWorld(topology.SmallWorldConfig{
				Nodes: 10_000, K: 3, Beta: 0.2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(Config{
				Graph:         g,
				Seed:          1,
				Slots:         3,
				BodyBytes:     100_000,
				Gamma:         8,
				VerifyLag:     1,
				PipelineDepth: 2,
				ChunkSize:     256,
				TrustCap:      1024,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := s.Run()
			s.Close()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Blocks != 30_000 {
				b.Fatalf("blocks = %d, want 30000", rep.Blocks)
			}
		}
	})
}

// BenchmarkHotpathPipeline measures the full slotted run (generation,
// announcement, audits) across pipeline depths and worker counts. All
// four variants produce byte-identical reports
// (TestPipelinedSchedulerIsDeterministic); depth 2 lets slot t's
// audits overlap slot t+1's generation on the audit stage, so on
// multi-core hardware the deeper pipeline trades idle barrier time
// for wall clock. On a single CPU the variants should match.
func BenchmarkHotpathPipeline(b *testing.B) {
	for _, tc := range []struct {
		name           string
		depth, workers int
	}{
		{"depth=1_workers=1", 1, 1},
		{"depth=2_workers=1", 2, 1},
		{"depth=1_workers=4", 1, 4},
		{"depth=2_workers=4", 2, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := New(Config{
					Topo:          topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1},
					Seed:          1,
					Slots:         30,
					BodyBytes:     500_000,
					Gamma:         5,
					Workers:       tc.workers,
					PipelineDepth: tc.depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkHotpathAuditRepeat isolates the repeat-audit path: one
// validator re-auditing the same aged block, so trust hits, memoized
// hashes and the validation cache all engage.
func BenchmarkHotpathAuditRepeat(b *testing.B) {
	s, err := New(Config{
		Topo:      topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1},
		Seed:      1,
		Slots:     20,
		BodyBytes: 500_000,
		Gamma:     5,
		Workers:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	target, _, err := s.BlockAt(0)
	if err != nil {
		b.Fatal(err)
	}
	validator := s.ids[len(s.ids)-1]
	if validator == target.Node {
		validator = s.ids[len(s.ids)-2]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Verify(validator, target)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consensus {
			b.Fatal(fmt.Errorf("no consensus auditing %v", target))
		}
	}
}
