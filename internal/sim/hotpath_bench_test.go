package sim

import (
	"fmt"
	"testing"

	"github.com/twoldag/twoldag/internal/topology"
)

// BenchmarkHotpathSimStep measures one full simulated run (generation,
// announcement, audits) under the serial scheduler and the parallel
// worker pool. Both produce byte-identical reports (see
// TestParallelSchedulerIsDeterministic); the difference is wall clock.
func BenchmarkHotpathSimStep(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := New(Config{
					Topo:      topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1},
					Seed:      1,
					Slots:     30,
					BodyBytes: 500_000,
					Gamma:     5,
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotpathAuditRepeat isolates the repeat-audit path: one
// validator re-auditing the same aged block, so trust hits, memoized
// hashes and the validation cache all engage.
func BenchmarkHotpathAuditRepeat(b *testing.B) {
	s, err := New(Config{
		Topo:      topology.Config{Nodes: 16, Width: 320, Height: 320, Range: 100, Seed: 1},
		Seed:      1,
		Slots:     20,
		BodyBytes: 500_000,
		Gamma:     5,
		Workers:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	target, _, err := s.BlockAt(0)
	if err != nil {
		b.Fatal(err)
	}
	validator := s.ids[len(s.ids)-1]
	if validator == target.Node {
		validator = s.ids[len(s.ids)-2]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Verify(validator, target)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consensus {
			b.Fatal(fmt.Errorf("no consensus auditing %v", target))
		}
	}
}
