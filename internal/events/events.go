// Package events defines the typed observation stream of a running
// 2LDAG deployment. Every driver — the live node-per-device cluster
// and the deterministic slot simulator — emits the same six event
// kinds at the same protocol moments, so metrics aggregation, test
// instrumentation and user dashboards are written once against this
// vocabulary instead of per-driver ad-hoc counters:
//
//   - BlockSealed          — a node sealed its next data block (Sec. III-D).
//   - DigestAnnounced      — a neighbor ingested a single header-digest
//     announcement into its A_i cache (receiver side, so the event
//     doubles as a delivery acknowledgement).
//   - DigestBatchDelivered — a neighbor ingested a whole batch of
//     announcements in one receiver-side pass (the batched delivery
//     path; one event per receiver per flush instead of one per edge).
//   - AuditHop             — a PoP validator issued one REQ_CHILD probe
//     (Sec. IV, Algorithm 3 line 17).
//   - ConsensusReached     — an audit collected γ+1 distinct vouchers.
//   - AuditFailed          — an audit ended without consensus.
//
// The robustness substrate adds four fault-path kinds, emitted only
// when something goes wrong on the wire (zero events on the fault-free
// hot path):
//
//   - MessageDropped — a frame was lost: inbox backpressure, a send
//     error to an unreachable peer, or an injected fault
//     (internal/faults).
//   - RetryAttempted — a sender re-issued an announcement frame or a
//     PoP RPC after a failed or unacknowledged attempt.
//   - PeerSuspected  — a node's health tracker opened the circuit on a
//     peer after consecutive transport failures; audits route around
//     it until a recovery probe succeeds.
//   - PeerRecovered  — a recovery probe succeeded and the peer was
//     re-admitted.
//
// Observers may be invoked concurrently from generation and audit
// worker pools; implementations must be safe for concurrent use.
// Observer calls sit on protocol hot paths — keep them cheap and
// non-blocking (count, sample or enqueue; never do I/O inline).
package events

import (
	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// BlockSealed reports that Node sealed (mined, signed, appended) its
// block Ref at logical time Slot; Digest is H(b^h), the identity its
// neighbors will learn.
type BlockSealed struct {
	Node   identity.NodeID
	Ref    block.Ref
	Digest digest.Digest
	Slot   uint32
}

// DigestAnnounced reports that To ingested From's announcement of
// Digest into its neighbor cache A_i. It fires on the receiver, after
// the DoS guard and the neighbor check accepted the announcement, so a
// sender observing the event knows the digest truly landed.
type DigestAnnounced struct {
	From, To identity.NodeID
	Digest   digest.Digest
}

// DigestBatchDelivered reports that To ingested a whole batch of
// announcements — From[i] announced Digests[i] — into its neighbor
// cache A_i in one receiver-side pass. It fires once per receiver per
// flush (a simulator slot, or one wire.DigestBatch frame), after every
// entry cleared the neighbor check, so a sender observing the event
// knows its digests truly landed. The slices are shared with the
// delivery path and only valid for the duration of the call: copy
// them to retain, never mutate.
type DigestBatchDelivered struct {
	To      identity.NodeID
	From    []identity.NodeID
	Digests []digest.Digest
}

// AuditHop reports one REQ_CHILD probe: Validator asked Responder for
// a block whose Δ contains Target.
type AuditHop struct {
	Validator, Responder identity.NodeID
	Target               digest.Digest
}

// ConsensusReached reports a successful PoP audit of Target by
// Validator. Vouchers is shared with the audit result — treat it as
// read-only.
type ConsensusReached struct {
	Validator identity.NodeID
	Target    block.Ref
	Vouchers  []identity.NodeID
	PathLen   int
	Messages  int
	TrustHits int
}

// AuditFailed reports a PoP audit of Target by Validator that ended
// without γ+1 vouchers; Err carries the terminal error when one
// surfaced (e.g. core.ErrNoConsensus, a root mismatch, or a canceled
// context).
type AuditFailed struct {
	Validator identity.NodeID
	Target    block.Ref
	Err       error
}

// DropReason classifies why a frame was lost.
type DropReason uint8

const (
	// DropBackpressure: the receiver's inbox was full (transport
	// ErrBackpressure, on either fabric).
	DropBackpressure DropReason = iota + 1
	// DropUnreachable: the send failed outright — a dead dial target, a
	// reset connection, or a closed transport.
	DropUnreachable
	// DropInjected: an injected fault (internal/faults drop rate).
	DropInjected
	// DropPartition: an injected per-slot partition cut the link.
	DropPartition
	// DropCrash: the sender or receiver was inside an injected crash
	// window.
	DropCrash
)

// String names the reason for logs and metrics.
func (r DropReason) String() string {
	switch r {
	case DropBackpressure:
		return "backpressure"
	case DropUnreachable:
		return "unreachable"
	case DropInjected:
		return "injected"
	case DropPartition:
		return "partition"
	case DropCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// MessageDropped reports one lost frame: From never reached To. It
// fires on whichever side observed the loss — the sender for send
// errors and injected faults, the receiver for inbound backpressure —
// so a frame is counted once per loss, and a retried frame that is
// lost again counts again.
type MessageDropped struct {
	From, To identity.NodeID
	// Kind is the wire kind of the lost frame (wire.Kind values; kept
	// as a raw byte so the event vocabulary stays codec-independent).
	Kind   uint8
	Reason DropReason
}

// RetryAttempted reports that Node re-issued traffic to Peer after a
// failed or unacknowledged attempt: an announcement frame (Announce
// true) or a PoP request. Attempt counts from 2 — the first try is not
// an event.
type RetryAttempted struct {
	Node, Peer identity.NodeID
	Announce   bool
	Attempt    int
}

// PeerSuspected reports that Node's health tracker opened the circuit
// on Peer after Failures consecutive transport failures; Node's audits
// route around Peer until a recovery probe succeeds.
type PeerSuspected struct {
	Node, Peer identity.NodeID
	Failures   int
}

// PeerRecovered reports that a recovery probe from Node to Peer
// succeeded and Peer was re-admitted to Node's routing.
type PeerRecovered struct {
	Node, Peer identity.NodeID
}

// Observer receives the typed event stream. Implementations must be
// safe for concurrent use; embed Nop to only handle the kinds you care
// about.
type Observer interface {
	OnBlockSealed(BlockSealed)
	OnDigestAnnounced(DigestAnnounced)
	OnDigestBatchDelivered(DigestBatchDelivered)
	OnAuditHop(AuditHop)
	OnConsensusReached(ConsensusReached)
	OnAuditFailed(AuditFailed)
	OnMessageDropped(MessageDropped)
	OnRetryAttempted(RetryAttempted)
	OnPeerSuspected(PeerSuspected)
	OnPeerRecovered(PeerRecovered)
}

// Nop is an Observer that ignores every event. Embed it to implement
// only a subset of the interface.
type Nop struct{}

func (Nop) OnBlockSealed(BlockSealed)                   {}
func (Nop) OnDigestAnnounced(DigestAnnounced)           {}
func (Nop) OnDigestBatchDelivered(DigestBatchDelivered) {}
func (Nop) OnAuditHop(AuditHop)                         {}
func (Nop) OnConsensusReached(ConsensusReached)         {}
func (Nop) OnAuditFailed(AuditFailed)                   {}
func (Nop) OnMessageDropped(MessageDropped)             {}
func (Nop) OnRetryAttempted(RetryAttempted)             {}
func (Nop) OnPeerSuspected(PeerSuspected)               {}
func (Nop) OnPeerRecovered(PeerRecovered)               {}

// multi fans one event stream out to several observers, in order.
type multi []Observer

func (m multi) OnBlockSealed(e BlockSealed) {
	for _, o := range m {
		o.OnBlockSealed(e)
	}
}

func (m multi) OnDigestAnnounced(e DigestAnnounced) {
	for _, o := range m {
		o.OnDigestAnnounced(e)
	}
}

func (m multi) OnDigestBatchDelivered(e DigestBatchDelivered) {
	for _, o := range m {
		o.OnDigestBatchDelivered(e)
	}
}

func (m multi) OnAuditHop(e AuditHop) {
	for _, o := range m {
		o.OnAuditHop(e)
	}
}

func (m multi) OnConsensusReached(e ConsensusReached) {
	for _, o := range m {
		o.OnConsensusReached(e)
	}
}

func (m multi) OnAuditFailed(e AuditFailed) {
	for _, o := range m {
		o.OnAuditFailed(e)
	}
}

func (m multi) OnMessageDropped(e MessageDropped) {
	for _, o := range m {
		o.OnMessageDropped(e)
	}
}

func (m multi) OnRetryAttempted(e RetryAttempted) {
	for _, o := range m {
		o.OnRetryAttempted(e)
	}
}

func (m multi) OnPeerSuspected(e PeerSuspected) {
	for _, o := range m {
		o.OnPeerSuspected(e)
	}
}

func (m multi) OnPeerRecovered(e PeerRecovered) {
	for _, o := range m {
		o.OnPeerRecovered(e)
	}
}

// Multi combines observers into one, dropping nils. It returns nil
// when nothing remains (callers treat a nil Observer as "no
// observation"), and the sole survivor unwrapped when only one does.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}
