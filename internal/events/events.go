// Package events defines the typed observation stream of a running
// 2LDAG deployment. Every driver — the live node-per-device cluster
// and the deterministic slot simulator — emits the same six event
// kinds at the same protocol moments, so metrics aggregation, test
// instrumentation and user dashboards are written once against this
// vocabulary instead of per-driver ad-hoc counters:
//
//   - BlockSealed          — a node sealed its next data block (Sec. III-D).
//   - DigestAnnounced      — a neighbor ingested a single header-digest
//     announcement into its A_i cache (receiver side, so the event
//     doubles as a delivery acknowledgement).
//   - DigestBatchDelivered — a neighbor ingested a whole batch of
//     announcements in one receiver-side pass (the batched delivery
//     path; one event per receiver per flush instead of one per edge).
//   - AuditHop             — a PoP validator issued one REQ_CHILD probe
//     (Sec. IV, Algorithm 3 line 17).
//   - ConsensusReached     — an audit collected γ+1 distinct vouchers.
//   - AuditFailed          — an audit ended without consensus.
//
// Observers may be invoked concurrently from generation and audit
// worker pools; implementations must be safe for concurrent use.
// Observer calls sit on protocol hot paths — keep them cheap and
// non-blocking (count, sample or enqueue; never do I/O inline).
package events

import (
	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// BlockSealed reports that Node sealed (mined, signed, appended) its
// block Ref at logical time Slot; Digest is H(b^h), the identity its
// neighbors will learn.
type BlockSealed struct {
	Node   identity.NodeID
	Ref    block.Ref
	Digest digest.Digest
	Slot   uint32
}

// DigestAnnounced reports that To ingested From's announcement of
// Digest into its neighbor cache A_i. It fires on the receiver, after
// the DoS guard and the neighbor check accepted the announcement, so a
// sender observing the event knows the digest truly landed.
type DigestAnnounced struct {
	From, To identity.NodeID
	Digest   digest.Digest
}

// DigestBatchDelivered reports that To ingested a whole batch of
// announcements — From[i] announced Digests[i] — into its neighbor
// cache A_i in one receiver-side pass. It fires once per receiver per
// flush (a simulator slot, or one wire.DigestBatch frame), after every
// entry cleared the neighbor check, so a sender observing the event
// knows its digests truly landed. The slices are shared with the
// delivery path and only valid for the duration of the call: copy
// them to retain, never mutate.
type DigestBatchDelivered struct {
	To      identity.NodeID
	From    []identity.NodeID
	Digests []digest.Digest
}

// AuditHop reports one REQ_CHILD probe: Validator asked Responder for
// a block whose Δ contains Target.
type AuditHop struct {
	Validator, Responder identity.NodeID
	Target               digest.Digest
}

// ConsensusReached reports a successful PoP audit of Target by
// Validator. Vouchers is shared with the audit result — treat it as
// read-only.
type ConsensusReached struct {
	Validator identity.NodeID
	Target    block.Ref
	Vouchers  []identity.NodeID
	PathLen   int
	Messages  int
	TrustHits int
}

// AuditFailed reports a PoP audit of Target by Validator that ended
// without γ+1 vouchers; Err carries the terminal error when one
// surfaced (e.g. core.ErrNoConsensus, a root mismatch, or a canceled
// context).
type AuditFailed struct {
	Validator identity.NodeID
	Target    block.Ref
	Err       error
}

// Observer receives the typed event stream. Implementations must be
// safe for concurrent use; embed Nop to only handle the kinds you care
// about.
type Observer interface {
	OnBlockSealed(BlockSealed)
	OnDigestAnnounced(DigestAnnounced)
	OnDigestBatchDelivered(DigestBatchDelivered)
	OnAuditHop(AuditHop)
	OnConsensusReached(ConsensusReached)
	OnAuditFailed(AuditFailed)
}

// Nop is an Observer that ignores every event. Embed it to implement
// only a subset of the interface.
type Nop struct{}

func (Nop) OnBlockSealed(BlockSealed)                   {}
func (Nop) OnDigestAnnounced(DigestAnnounced)           {}
func (Nop) OnDigestBatchDelivered(DigestBatchDelivered) {}
func (Nop) OnAuditHop(AuditHop)                         {}
func (Nop) OnConsensusReached(ConsensusReached)         {}
func (Nop) OnAuditFailed(AuditFailed)                   {}

// multi fans one event stream out to several observers, in order.
type multi []Observer

func (m multi) OnBlockSealed(e BlockSealed) {
	for _, o := range m {
		o.OnBlockSealed(e)
	}
}

func (m multi) OnDigestAnnounced(e DigestAnnounced) {
	for _, o := range m {
		o.OnDigestAnnounced(e)
	}
}

func (m multi) OnDigestBatchDelivered(e DigestBatchDelivered) {
	for _, o := range m {
		o.OnDigestBatchDelivered(e)
	}
}

func (m multi) OnAuditHop(e AuditHop) {
	for _, o := range m {
		o.OnAuditHop(e)
	}
}

func (m multi) OnConsensusReached(e ConsensusReached) {
	for _, o := range m {
		o.OnConsensusReached(e)
	}
}

func (m multi) OnAuditFailed(e AuditFailed) {
	for _, o := range m {
		o.OnAuditFailed(e)
	}
}

// Multi combines observers into one, dropping nils. It returns nil
// when nothing remains (callers treat a nil Observer as "no
// observation"), and the sole survivor unwrapped when only one does.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}
