package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"github.com/twoldag/twoldag/internal/wire"
)

// Bootstrap performs the joiner's discovery exchange: dial addr raw,
// send one frame (conventionally a Hello with From=wire.BootstrapID),
// and read the single reply frame written back on the same connection
// by the member's bootstrap handler. It is the only way to talk to a
// cluster before having an identity and a directory — everything after
// it flows through a TCPNode.
//
// The context bounds the whole exchange (dial, write, read).
func Bootstrap(ctx context.Context, addr string, msg *wire.Message) (*wire.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: bootstrap dial %s: %v", ErrPeerUnreachable, addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	out := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+msg.WireSize()), uint32(msg.WireSize()))
	if _, err := conn.Write(msg.AppendEncode(out)); err != nil {
		return nil, fmt.Errorf("%w: bootstrap write to %s: %v", ErrPeerUnreachable, addr, err)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: bootstrap read from %s: %v", ErrPeerUnreachable, addr, err)
	}
	size := binary.LittleEndian.Uint32(lenBuf[:])
	if size > maxFrame {
		return nil, fmt.Errorf("bootstrap reply from %s: %w", addr, ErrFrameTooLarge)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, fmt.Errorf("%w: bootstrap read from %s: %v", ErrPeerUnreachable, addr, err)
	}
	reply, err := wire.Decode(frame)
	if err != nil {
		return nil, fmt.Errorf("bootstrap reply from %s: %w", addr, err)
	}
	return reply, nil
}
