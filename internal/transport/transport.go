// Package transport carries 2LDAG wire messages between nodes. Two
// implementations are provided: an in-memory network with injectable
// latency, loss and partitions (deterministic tests, single-process
// deployments) and a TCP transport with length-prefixed frames (real
// distributed deployments). An RPC layer adds request/response
// correlation with timeouts τ on top of either, which is what the PoP
// validator's REQ_CHILD exchange (Algorithm 3 line 19) requires.
package transport

import (
	"context"
	"errors"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// Sentinel errors.
var (
	ErrClosed        = errors.New("transport: closed")
	ErrUnknownPeer   = errors.New("transport: unknown peer")
	ErrDuplicatePeer = errors.New("transport: peer already registered")
	ErrBackpressure  = errors.New("transport: peer inbox full, message dropped")
)

// Envelope is a received message with its link-layer sender.
type Envelope struct {
	From identity.NodeID
	Msg  *wire.Message
}

// Transport sends and receives wire messages for one node.
type Transport interface {
	// Self returns the local node ID.
	Self() identity.NodeID
	// Send delivers msg to the peer. Delivery is best-effort: lossy
	// networks may drop (ErrBackpressure) and radio neighbors may be
	// unreachable.
	Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error
	// Inbox streams received messages until the transport closes.
	Inbox() <-chan Envelope
	// Close releases resources and closes the inbox.
	Close() error
}
