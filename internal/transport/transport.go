// Package transport carries 2LDAG wire messages between nodes. Two
// implementations are provided: an in-memory network with injectable
// latency, loss and partitions (deterministic tests, single-process
// deployments) and a TCP transport with length-prefixed frames (real
// distributed deployments). An RPC layer adds request/response
// correlation with timeouts τ on top of either, which is what the PoP
// validator's REQ_CHILD exchange (Algorithm 3 line 19) requires.
package transport

import (
	"context"
	"errors"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// Sentinel errors.
var (
	ErrClosed        = errors.New("transport: closed")
	ErrUnknownPeer   = errors.New("transport: unknown peer")
	ErrDuplicatePeer = errors.New("transport: peer already registered")
	ErrBackpressure  = errors.New("transport: peer inbox full, message dropped")
	// ErrPeerUnreachable reports a peer that could not be reached at
	// the link layer: a failed dial, a reset connection, a dead
	// listener. Unlike ErrUnknownPeer (a directory miss, permanent
	// until registration) it is transient — retry policies treat it as
	// retryable and health trackers count it toward suspicion.
	ErrPeerUnreachable = errors.New("transport: peer unreachable")
)

// Envelope is a received message with its link-layer sender.
type Envelope struct {
	From identity.NodeID
	Msg  *wire.Message
}

// Transport sends and receives wire messages for one node.
//
// Retry/idempotency contract: Send is best-effort and at-most-once at
// this layer — a nil return means the frame was handed to the fabric,
// not that the peer processed it, and an error return may still have
// delivered (a TCP write can fail after bytes left the host). Callers
// that need delivery therefore retry at the protocol layer, which is
// safe because every 2LDAG receive path is idempotent: digest
// announcements dedup on the digest before any side effect (see
// node.AnnounceBatch), and request/response exchanges correlate by ID
// so a re-sent request at worst produces an ignored duplicate reply.
// Implementations must serialize msg before Send returns and never
// retain it — callers may immediately reuse or retarget the message.
type Transport interface {
	// Self returns the local node ID.
	Self() identity.NodeID
	// Send delivers msg to the peer. Delivery is best-effort: lossy
	// networks may drop (ErrBackpressure), radio neighbors may be
	// unreachable (ErrPeerUnreachable), and silent in-flight loss
	// reports nothing at all.
	Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error
	// Inbox streams received messages until the transport closes.
	Inbox() <-chan Envelope
	// Close releases resources and closes the inbox.
	Close() error
}
