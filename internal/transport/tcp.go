package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// maxFrame bounds accepted frame sizes, matching the wire decoder
// limit.
const maxFrame = wire.MaxPayload + 1024

// ErrFrameTooLarge reports an oversized incoming frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds limit")

// TCPNode is a Transport over real TCP connections with 4-byte
// length-prefixed frames. Peers are dialed lazily from a directory of
// addresses; inbound connections are identified by the From field of
// their messages (every message is independently authenticated at
// higher layers via signatures, per the paper's Sec. IV-D threat
// model).
type TCPNode struct {
	self identity.NodeID
	ln   net.Listener

	mu      sync.Mutex
	addrs   map[identity.NodeID]string
	conns   map[identity.NodeID]*lockedConn
	inbound map[net.Conn]struct{}

	inbox chan Envelope

	stateMu sync.RWMutex
	closed  bool
	onDrop  func(Envelope)

	wg sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// lockedConn serializes frame writes on a shared connection.
type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

// ListenTCP starts a node listening on addr. The directory maps peers
// to their dial addresses and may be extended later with AddPeer.
func ListenTCP(self identity.NodeID, addr string, directory map[identity.NodeID]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		self:    self,
		ln:      ln,
		addrs:   make(map[identity.NodeID]string, len(directory)),
		conns:   make(map[identity.NodeID]*lockedConn),
		inbound: make(map[net.Conn]struct{}),
		inbox:   make(chan Envelope, inboxCapacity),
	}
	for id, a := range directory {
		n.addrs[id] = a
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// AddPeer registers or updates a peer's dial address.
func (n *TCPNode) AddPeer(id identity.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// SetDropHandler installs a callback invoked for each inbound frame
// lost to a full inbox (receiver-side backpressure, which TCP cannot
// report to the sender). The envelope is only valid for the duration
// of the call. Must be set before traffic flows; the handler runs on
// read-loop goroutines and must be cheap and non-blocking.
func (n *TCPNode) SetDropHandler(f func(Envelope)) {
	n.stateMu.Lock()
	defer n.stateMu.Unlock()
	n.onDrop = f
}

// Self implements Transport.
func (n *TCPNode) Self() identity.NodeID { return n.self }

// Inbox implements Transport.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.stateMu.RLock()
		closed := n.closed
		n.stateMu.RUnlock()
		if closed {
			conn.Close()
			return
		}
		n.mu.Lock()
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one connection into the inbox.
func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	var lenBuf [4]byte
	buf := getFrame()
	defer putFrame(buf)
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > maxFrame {
			return // hostile peer; drop the connection
		}
		if cap(*buf) < int(size) {
			*buf = make([]byte, size)
		}
		frame := (*buf)[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		// Decode copies the payload out, so frame is reusable next loop.
		msg, err := wire.Decode(frame)
		if err != nil {
			continue // skip malformed frames, keep the connection
		}
		n.stateMu.RLock()
		if n.closed {
			n.stateMu.RUnlock()
			return
		}
		select {
		case n.inbox <- Envelope{From: msg.From, Msg: msg}:
		default:
			// Lossy under overload, like the in-memory fabric; the drop
			// handler lets the node surface it as a MessageDropped event.
			if n.onDrop != nil {
				n.onDrop(Envelope{From: msg.From, Msg: msg})
			}
		}
		n.stateMu.RUnlock()
	}
}

// Send implements Transport, dialing the peer on first use.
func (n *TCPNode) Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.stateMu.RLock()
	closed := n.closed
	n.stateMu.RUnlock()
	if closed {
		return ErrClosed
	}
	lc, err := n.conn(ctx, to)
	if err != nil {
		return err
	}
	// Assemble length prefix and frame in one pooled buffer: a single
	// Write per message (half the syscalls) and no per-message encode
	// allocation.
	buf := getFrame()
	defer putFrame(buf)
	b := binary.LittleEndian.AppendUint32(*buf, uint32(msg.WireSize()))
	b = msg.AppendEncode(b)
	*buf = b
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if _, err := lc.c.Write(b); err != nil {
		n.dropConn(to)
		return fmt.Errorf("%w: writing to %v: %v", ErrPeerUnreachable, to, err)
	}
	return nil
}

func (n *TCPNode) conn(ctx context.Context, to identity.NodeID) (*lockedConn, error) {
	n.mu.Lock()
	if lc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return lc, nil
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dialing %v at %s: %w", to, addr, ctx.Err())
		}
		return nil, fmt.Errorf("%w: dialing %v at %s: %v", ErrPeerUnreachable, to, addr, err)
	}
	lc := &lockedConn{c: c}
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[to] = lc
	n.mu.Unlock()
	// Read replies arriving on the outbound connection too.
	n.wg.Add(1)
	go n.readLoop(c)
	return lc, nil
}

func (n *TCPNode) dropConn(to identity.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if lc, ok := n.conns[to]; ok {
		lc.c.Close()
		delete(n.conns, to)
	}
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.stateMu.Lock()
	if n.closed {
		n.stateMu.Unlock()
		return nil
	}
	n.closed = true
	n.stateMu.Unlock()
	err := n.ln.Close()
	n.mu.Lock()
	for id, lc := range n.conns {
		lc.c.Close()
		delete(n.conns, id)
	}
	for conn := range n.inbound {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	close(n.inbox)
	return err
}
