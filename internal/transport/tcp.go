package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// maxFrame bounds accepted frame sizes, matching the wire decoder
// limit.
const maxFrame = wire.MaxPayload + 1024

// ErrFrameTooLarge reports an oversized incoming frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds limit")

// TCPNode is a Transport over real TCP connections with 4-byte
// length-prefixed frames. Peers are dialed lazily from a directory of
// addresses; inbound connections are identified by the From field of
// their messages (every message is independently authenticated at
// higher layers via signatures, per the paper's Sec. IV-D threat
// model).
type TCPNode struct {
	self      identity.NodeID
	ln        net.Listener
	advertise string

	mu      sync.Mutex
	addrs   map[identity.NodeID]string
	conns   map[identity.NodeID]*lockedConn
	inbound map[net.Conn]struct{}

	inbox chan Envelope

	stateMu     sync.RWMutex
	closed      bool
	onDrop      func(Envelope)
	onBootstrap func(*wire.Message) *wire.Message

	wg sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// lockedConn serializes frame writes on a shared connection.
type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

// TCPOption tunes ListenTCP.
type TCPOption func(*TCPNode)

// WithAdvertiseAddr sets the address the node announces to peers
// instead of the bound listener address — a node bound to ":0" (or
// behind NAT-style address rewriting) stays reachable by handing out
// an address that routes to it.
func WithAdvertiseAddr(addr string) TCPOption {
	return func(n *TCPNode) { n.advertise = addr }
}

// ListenTCP starts a node listening on addr. The directory maps peers
// to their dial addresses; SetPeer/RemovePeer update it while the node
// runs.
func ListenTCP(self identity.NodeID, addr string, directory map[identity.NodeID]string, opts ...TCPOption) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		self:    self,
		ln:      ln,
		addrs:   make(map[identity.NodeID]string, len(directory)),
		conns:   make(map[identity.NodeID]*lockedConn),
		inbound: make(map[net.Conn]struct{}),
		inbox:   make(chan Envelope, inboxCapacity),
	}
	for id, a := range directory {
		n.addrs[id] = a
	}
	for _, opt := range opts {
		opt(n)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// AdvertiseAddr returns the address this node announces to peers: the
// WithAdvertiseAddr override when set, the bound address otherwise.
func (n *TCPNode) AdvertiseAddr() string {
	if n.advertise != "" {
		return n.advertise
	}
	return n.ln.Addr().String()
}

// AddPeer registers or updates a peer's dial address.
// Deprecated-in-spirit alias of SetPeer, kept for existing callers.
func (n *TCPNode) AddPeer(id identity.NodeID, addr string) { n.SetPeer(id, addr) }

// SetPeer registers or updates a peer's dial address. When the address
// changes, any cached connection to the peer is dropped so the next
// Send dials the new address.
func (n *TCPNode) SetPeer(id identity.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.addrs[id]; ok && prev != addr {
		if lc, ok := n.conns[id]; ok {
			lc.c.Close()
			delete(n.conns, id)
		}
	}
	n.addrs[id] = addr
}

// RemovePeer forgets a peer: its directory entry is deleted and any
// cached connection closed. Subsequent Sends fail with ErrUnknownPeer
// until SetPeer re-registers it.
func (n *TCPNode) RemovePeer(id identity.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.addrs, id)
	if lc, ok := n.conns[id]; ok {
		lc.c.Close()
		delete(n.conns, id)
	}
}

// Peer looks up a peer's registered dial address.
func (n *TCPNode) Peer(id identity.NodeID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	return addr, ok
}

// SetDropHandler installs a callback invoked for each inbound frame
// lost to a full inbox (receiver-side backpressure, which TCP cannot
// report to the sender). The envelope is only valid for the duration
// of the call. Must be set before traffic flows; the handler runs on
// read-loop goroutines and must be cheap and non-blocking.
func (n *TCPNode) SetDropHandler(f func(Envelope)) {
	n.stateMu.Lock()
	defer n.stateMu.Unlock()
	n.onDrop = f
}

// SetBootstrapHandler installs the discovery responder: a frame whose
// From is wire.BootstrapID comes from a joiner that has no identity or
// directory yet (see Bootstrap), so instead of entering the inbox the
// handler's reply is written straight back on the same connection.
// A nil handler (the default) drops such frames. The handler runs on
// read-loop goroutines and must be safe for concurrent use.
func (n *TCPNode) SetBootstrapHandler(f func(*wire.Message) *wire.Message) {
	n.stateMu.Lock()
	defer n.stateMu.Unlock()
	n.onBootstrap = f
}

// Self implements Transport.
func (n *TCPNode) Self() identity.NodeID { return n.self }

// Inbox implements Transport.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.stateMu.RLock()
		closed := n.closed
		n.stateMu.RUnlock()
		if closed {
			conn.Close()
			return
		}
		n.mu.Lock()
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one connection into the inbox.
func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	var lenBuf [4]byte
	buf := getFrame()
	defer putFrame(buf)
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > maxFrame {
			return // hostile peer; drop the connection
		}
		if cap(*buf) < int(size) {
			*buf = make([]byte, size)
		}
		frame := (*buf)[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		// Decode copies the payload out, so frame is reusable next loop.
		msg, err := wire.Decode(frame)
		if err != nil {
			continue // skip malformed frames, keep the connection
		}
		if msg.From == wire.BootstrapID {
			// Discovery exchange: reply on this connection (the sender has
			// no listener registered anywhere yet) and keep the frame out
			// of the inbox. Writes are safe unlocked — inbound connections
			// are only ever written from their own read loop.
			n.stateMu.RLock()
			handler := n.onBootstrap
			n.stateMu.RUnlock()
			if handler == nil {
				continue
			}
			reply := handler(msg)
			if reply == nil {
				continue
			}
			out := binary.LittleEndian.AppendUint32(nil, uint32(reply.WireSize()))
			if _, err := conn.Write(reply.AppendEncode(out)); err != nil {
				return
			}
			continue
		}
		n.stateMu.RLock()
		if n.closed {
			n.stateMu.RUnlock()
			return
		}
		select {
		case n.inbox <- Envelope{From: msg.From, Msg: msg}:
		default:
			// Lossy under overload, like the in-memory fabric; the drop
			// handler lets the node surface it as a MessageDropped event.
			if n.onDrop != nil {
				n.onDrop(Envelope{From: msg.From, Msg: msg})
			}
		}
		n.stateMu.RUnlock()
	}
}

// Send implements Transport, dialing the peer on first use.
// Self-sends short-circuit into the local inbox without touching the
// network — parity with the in-memory fabric, which PoP relies on when
// the validator itself is a digest holder on the audited path.
func (n *TCPNode) Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.stateMu.RLock()
	closed := n.closed
	n.stateMu.RUnlock()
	if closed {
		return ErrClosed
	}
	if to == n.self {
		return n.deliverLocal(msg)
	}
	lc, err := n.conn(ctx, to)
	if err != nil {
		return err
	}
	// Assemble length prefix and frame in one pooled buffer: a single
	// Write per message (half the syscalls) and no per-message encode
	// allocation.
	buf := getFrame()
	defer putFrame(buf)
	b := binary.LittleEndian.AppendUint32(*buf, uint32(msg.WireSize()))
	b = msg.AppendEncode(b)
	*buf = b
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if _, err := lc.c.Write(b); err != nil {
		n.dropConn(to)
		return fmt.Errorf("%w: writing to %v: %v", ErrPeerUnreachable, to, err)
	}
	return nil
}

// deliverLocal enqueues a self-addressed frame, deep-copying through
// the codec so sender and receiver never share memory (the same
// guarantee a socket round trip gives).
func (n *TCPNode) deliverLocal(msg *wire.Message) error {
	buf := getFrame()
	b := msg.AppendEncode(*buf)
	cp, err := wire.Decode(b)
	*buf = b
	putFrame(buf)
	if err != nil {
		return fmt.Errorf("transport: message not encodable: %w", err)
	}
	n.stateMu.RLock()
	defer n.stateMu.RUnlock()
	if n.closed {
		return ErrClosed
	}
	select {
	case n.inbox <- Envelope{From: n.self, Msg: cp}:
		return nil
	default:
		// The sender IS the receiver, so the overflow is reportable as a
		// send error, exactly like the in-memory fabric's.
		return fmt.Errorf("%w: to %v", ErrBackpressure, n.self)
	}
}

func (n *TCPNode) conn(ctx context.Context, to identity.NodeID) (*lockedConn, error) {
	n.mu.Lock()
	if lc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return lc, nil
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dialing %v at %s: %w", to, addr, ctx.Err())
		}
		return nil, fmt.Errorf("%w: dialing %v at %s: %v", ErrPeerUnreachable, to, addr, err)
	}
	lc := &lockedConn{c: c}
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[to] = lc
	n.mu.Unlock()
	// Read replies arriving on the outbound connection too.
	n.wg.Add(1)
	go n.readLoop(c)
	return lc, nil
}

func (n *TCPNode) dropConn(to identity.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if lc, ok := n.conns[to]; ok {
		lc.c.Close()
		delete(n.conns, to)
	}
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.stateMu.Lock()
	if n.closed {
		n.stateMu.Unlock()
		return nil
	}
	n.closed = true
	n.stateMu.Unlock()
	err := n.ln.Close()
	n.mu.Lock()
	for id, lc := range n.conns {
		lc.c.Close()
		delete(n.conns, id)
	}
	for conn := range n.inbound {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	close(n.inbox)
	return err
}
