package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// ErrRPCTimeout reports an expired request timeout τ (Algorithm 3
// line 19).
var ErrRPCTimeout = errors.New("transport: request timed out")

// DefaultRPCTimeout is the default τ.
const DefaultRPCTimeout = 2 * time.Second

// Handler consumes unsolicited (non-response) messages.
type Handler func(Envelope)

// RPC multiplexes request/response exchanges over a Transport. It owns
// the transport's inbox: responses are matched to pending calls by
// correlation ID; everything else goes to the handler. Close the RPC
// (not the transport directly) to shut down.
type RPC struct {
	tr      Transport
	handler Handler
	timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan *wire.Message

	corr  atomic.Uint64
	nonce atomic.Uint64

	wg sync.WaitGroup
}

// NewRPC wraps a transport. handler may be nil when the node only
// issues requests. timeout 0 means DefaultRPCTimeout.
func NewRPC(tr Transport, handler Handler, timeout time.Duration) *RPC {
	if timeout <= 0 {
		timeout = DefaultRPCTimeout
	}
	r := &RPC{
		tr:      tr,
		handler: handler,
		timeout: timeout,
		pending: make(map[uint64]chan *wire.Message),
	}
	r.wg.Add(1)
	go r.dispatch()
	return r
}

// Transport exposes the wrapped transport (for broadcasts).
func (r *RPC) Transport() Transport { return r.tr }

// NextNonce returns a fresh anti-replay nonce.
func (r *RPC) NextNonce() uint64 { return r.nonce.Add(1) }

func (r *RPC) dispatch() {
	defer r.wg.Done()
	for env := range r.tr.Inbox() {
		if env.Msg.Kind.IsResponse() && env.Msg.Corr != 0 {
			r.mu.Lock()
			ch, ok := r.pending[env.Msg.Corr]
			if ok {
				delete(r.pending, env.Msg.Corr)
			}
			r.mu.Unlock()
			if ok {
				ch <- env.Msg // buffered; never blocks
				continue
			}
			// Unmatched response (late or replayed): drop.
			continue
		}
		if r.handler != nil {
			r.handler(env)
		}
	}
}

// Call sends the message produced by build (which receives a fresh
// correlation ID and nonce) and waits for the matching response.
func (r *RPC) Call(ctx context.Context, to identity.NodeID, build func(corr, nonce uint64) *wire.Message) (*wire.Message, error) {
	corr := r.corr.Add(1)
	ch := make(chan *wire.Message, 1)
	r.mu.Lock()
	r.pending[corr] = ch
	r.mu.Unlock()
	cleanup := func() {
		r.mu.Lock()
		delete(r.pending, corr)
		r.mu.Unlock()
	}

	msg := build(corr, r.NextNonce())
	if err := r.tr.Send(ctx, to, msg); err != nil {
		cleanup()
		return nil, err
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp == nil {
			return nil, ErrClosed // RPC shut down mid-call
		}
		return resp, nil
	case <-timer.C:
		cleanup()
		return nil, fmt.Errorf("%w: %v after %v", ErrRPCTimeout, to, r.timeout)
	case <-ctx.Done():
		cleanup()
		return nil, ctx.Err()
	}
}

// Reply sends a response message (correlation already set by the
// response constructors in package wire).
func (r *RPC) Reply(ctx context.Context, to identity.NodeID, msg *wire.Message) error {
	return r.tr.Send(ctx, to, msg)
}

// Close shuts down the transport and waits for the dispatch loop.
func (r *RPC) Close() error {
	err := r.tr.Close()
	r.wg.Wait()
	// Fail any still-pending calls.
	r.mu.Lock()
	for corr, ch := range r.pending {
		close(ch)
		delete(r.pending, corr)
	}
	r.mu.Unlock()
	return err
}
