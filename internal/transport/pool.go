package transport

import "sync"

// framePool recycles frame buffers across sends and reads. TCP framing
// and the in-memory fabric's deep copy both encode every message into
// a scratch buffer whose contents do not outlive the call —
// wire.Decode copies the payload out — so buffers can be pooled
// instead of allocated per message (a ROADMAP hot-path item: blocks
// carry up to ~1 MB bodies, and per-message allocation dominated
// transport CPU).
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFrame returns a pooled buffer with length 0 and whatever capacity
// the pool had on hand.
func getFrame() *[]byte {
	return framePool.Get().(*[]byte)
}

// putFrame recycles a buffer. Callers must not retain references into
// it afterwards.
func putFrame(b *[]byte) {
	*b = (*b)[:0]
	framePool.Put(b)
}
