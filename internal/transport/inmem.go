package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

// inboxCapacity bounds each endpoint's receive queue. A full inbox
// drops the message (radio networks are lossy; upper layers retry).
const inboxCapacity = 256

// Network is an in-memory message fabric connecting Endpoints. It
// supports latency and loss injection for protocol testing. The zero
// value is not usable; call NewNetwork.
type Network struct {
	mu      sync.RWMutex
	eps     map[identity.NodeID]*Endpoint
	latency func(from, to identity.NodeID) time.Duration
	drop    func(from, to identity.NodeID, m *wire.Message) bool
	closed  bool
	wg      sync.WaitGroup
}

// NewNetwork creates an empty fabric with zero latency and no loss.
func NewNetwork() *Network {
	return &Network{eps: make(map[identity.NodeID]*Endpoint)}
}

// SetLatency installs a per-link latency function (nil = instant).
func (n *Network) SetLatency(f func(from, to identity.NodeID) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// SetDrop installs a loss function returning true to drop a message
// (nil = lossless). Partitions are expressed as drop rules.
func (n *Network) SetDrop(f func(from, to identity.NodeID, m *wire.Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drop = f
}

// Endpoint creates and registers the endpoint for a node.
func (n *Network) Endpoint(id identity.NodeID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.eps[id]; ok {
		return nil, fmt.Errorf("%w: %v", ErrDuplicatePeer, id)
	}
	ep := &Endpoint{net: n, id: id, inbox: make(chan Envelope, inboxCapacity), done: make(chan struct{})}
	n.eps[id] = ep
	return ep, nil
}

// Remove detaches and closes a node's endpoint (dynamic leave).
func (n *Network) Remove(id identity.NodeID) error {
	n.mu.Lock()
	ep, ok := n.eps[id]
	if ok {
		delete(n.eps, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownPeer, id)
	}
	return ep.Close()
}

// Close shuts the fabric down, closing every endpoint after in-flight
// delayed deliveries settle.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[identity.NodeID]*Endpoint)
	n.mu.Unlock()
	n.wg.Wait()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// deliver enqueues an envelope at the target, dropping on overflow.
func (n *Network) deliver(to identity.NodeID, env Envelope) error {
	n.mu.RLock()
	ep, ok := n.eps[to]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	ep.stateMu.RLock()
	defer ep.stateMu.RUnlock()
	if ep.closed {
		return fmt.Errorf("%w: %v", ErrClosed, to)
	}
	select {
	case ep.inbox <- env:
		return nil
	default:
		return fmt.Errorf("%w: to %v", ErrBackpressure, to)
	}
}

// Endpoint is one node's attachment to a Network.
type Endpoint struct {
	net   *Network
	id    identity.NodeID
	inbox chan Envelope

	// stateMu guards closed so no delivery can race the inbox close.
	stateMu sync.RWMutex
	closed  bool
	done    chan struct{}
}

var _ Transport = (*Endpoint)(nil)

// Self implements Transport.
func (e *Endpoint) Self() identity.NodeID { return e.id }

// Inbox implements Transport.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

// Send implements Transport, applying the fabric's loss and latency
// rules. The message is deep-copied so sender and receiver never share
// memory.
func (e *Endpoint) Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	e.net.mu.RLock()
	drop, lat := e.net.drop, e.net.latency
	closed := e.net.closed
	e.net.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if drop != nil && drop(e.id, to, msg) {
		return nil // silently lost, like a radio frame
	}
	// Deep-copy through the codec using a pooled encode buffer: Decode
	// copies the payload out, so the scratch frame never escapes.
	buf := getFrame()
	b := msg.AppendEncode(*buf)
	cp, err := wire.Decode(b)
	*buf = b
	putFrame(buf)
	if err != nil {
		return fmt.Errorf("transport: message not encodable: %w", err)
	}
	env := Envelope{From: e.id, Msg: cp}
	if lat == nil {
		return e.net.deliver(to, env)
	}
	d := lat(e.id, to)
	if d <= 0 {
		return e.net.deliver(to, env)
	}
	e.net.wg.Add(1)
	timer := time.AfterFunc(d, func() {
		defer e.net.wg.Done()
		_ = e.net.deliver(to, env) // late loss is indistinguishable from drop
	})
	_ = timer
	return nil
}

// Close implements Transport.
func (e *Endpoint) Close() error {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.done)
	close(e.inbox)
	return nil
}
