package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

func announce(from, to identity.NodeID, tag string) *wire.Message {
	return wire.NewDigestAnnounce(from, to, digest.Sum([]byte(tag)), 1)
}

func TestInmemDelivery(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	env := <-b.Inbox()
	if env.From != 1 || env.Msg.Kind != wire.KindDigestAnnounce {
		t.Fatalf("wrong envelope: %+v", env)
	}
}

func TestInmemDuplicateEndpoint(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Endpoint(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint(1); !errors.Is(err, ErrDuplicatePeer) {
		t.Fatalf("want ErrDuplicatePeer, got %v", err)
	}
}

func TestInmemUnknownPeer(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	if err := a.Send(context.Background(), 9, announce(1, 9, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestInmemDropRule(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	n.SetDrop(func(from, to identity.NodeID, m *wire.Message) bool { return to == 2 })
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatalf("dropped send must not error: %v", err)
	}
	select {
	case env := <-b.Inbox():
		t.Fatalf("dropped message delivered: %+v", env)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestInmemLatency(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	n.SetLatency(func(from, to identity.NodeID) time.Duration { return 40 * time.Millisecond })
	start := time.Now()
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestInmemMessageIsolation(t *testing.T) {
	// Receiver must not share memory with the sender's message.
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	msg := announce(1, 2, "x")
	if err := a.Send(context.Background(), 2, msg); err != nil {
		t.Fatal(err)
	}
	msg.Digest[0] ^= 0xFF
	env := <-b.Inbox()
	if env.Msg.Digest == msg.Digest {
		t.Fatal("message memory shared across the fabric")
	}
}

func TestInmemRemoveAndClosed(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Endpoint(1)
	if _, err := n.Endpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := n.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer after removal, got %v", err)
	}
	if err := n.Remove(2); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("double remove: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 1, announce(1, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := n.Endpoint(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("endpoint on closed network: %v", err)
	}
}

func TestInmemBackpressureDrops(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	if _, err := n.Endpoint(2); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var lastErr error
	for i := 0; i < inboxCapacity+10; i++ {
		if err := a.Send(ctx, 2, announce(1, 2, "x")); err != nil {
			lastErr = err
		}
	}
	if !errors.Is(lastErr, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure on overflow, got %v", lastErr)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)

	// Node 2 answers every REQ_CHILD with NOT_FOUND.
	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()

	caller := NewRPC(a, nil, time.Second)
	defer caller.Close()
	resp, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Kind != wire.KindNotFound {
		t.Fatalf("resp kind %v", resp.Kind)
	}
}

func TestRPCTimeout(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	silent := NewRPC(b, func(Envelope) {}, time.Second) // never replies
	defer silent.Close()
	caller := NewRPC(a, nil, 50*time.Millisecond)
	defer caller.Close()
	_, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want ErrRPCTimeout, got %v", err)
	}
}

func TestRPCContextCancel(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	silent := NewRPC(b, func(Envelope) {}, time.Second)
	defer silent.Close()
	caller := NewRPC(a, nil, 10*time.Second)
	defer caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := caller.Call(ctx, 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()
	caller := NewRPC(a, nil, time.Second)
	defer caller.Close()

	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
				return wire.NewReqChild(1, 2, digest.Sum([]byte{byte(i)}), corr, nonce)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())

	if err := a.Send(context.Background(), 2, announce(1, 2, "hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		if env.From != 1 || env.Msg.Kind != wire.KindDigestAnnounce {
			t.Fatalf("wrong envelope: %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP delivery timed out")
	}
}

func TestTCPRPC(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())

	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()
	caller := NewRPC(a, nil, 2*time.Second)
	defer caller.Close()

	resp, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if err != nil {
		t.Fatalf("Call over TCP: %v", err)
	}
	if resp.Kind != wire.KindNotFound {
		t.Fatalf("resp kind %v", resp.Kind)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), 5, announce(1, 5, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestTCPDialDeadPeer(t *testing.T) {
	// A directory entry pointing at a dead listener must fail the dial
	// with the typed transient error, not hang or panic.
	dead, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := ListenTCP(1, "127.0.0.1:0", map[identity.NodeID]string{2: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	err = a.Send(context.Background(), 2, announce(1, 2, "x"))
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("want ErrPeerUnreachable dialing dead peer, got %v", err)
	}
}

func TestTCPMidStreamReset(t *testing.T) {
	// A peer dying after the connection is established must surface as
	// ErrPeerUnreachable on a subsequent write — possibly after one
	// buffered write that the kernel accepts before the RST lands.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	if err := a.Send(context.Background(), 2, announce(1, 2, "warm")); err != nil {
		t.Fatalf("warm-up send: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := a.Send(context.Background(), 2, announce(1, 2, "x"))
		if errors.Is(err, ErrPeerUnreachable) {
			return
		}
		if err != nil {
			t.Fatalf("want ErrPeerUnreachable after reset, got %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("writes to a dead peer kept succeeding")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPInboundDropHandler(t *testing.T) {
	// Receiver-side backpressure is invisible to a TCP sender; the drop
	// handler must surface each frame lost to a full inbox.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	dropped := make(chan Envelope, 1)
	b.SetDropHandler(func(env Envelope) {
		select {
		case dropped <- env:
		default:
		}
	})
	// Nobody drains b's inbox, so sends past its capacity must invoke
	// the handler.
	ctx := context.Background()
	for i := 0; i < inboxCapacity+16; i++ {
		if err := a.Send(ctx, 2, announce(1, 2, "flood")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	select {
	case env := <-dropped:
		if env.From != 1 {
			t.Fatalf("dropped envelope from %v, want 1", env.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no inbound drop reported")
	}
}
