package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/wire"
)

func announce(from, to identity.NodeID, tag string) *wire.Message {
	return wire.NewDigestAnnounce(from, to, digest.Sum([]byte(tag)), 1)
}

func TestInmemDelivery(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	env := <-b.Inbox()
	if env.From != 1 || env.Msg.Kind != wire.KindDigestAnnounce {
		t.Fatalf("wrong envelope: %+v", env)
	}
}

func TestInmemDuplicateEndpoint(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Endpoint(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint(1); !errors.Is(err, ErrDuplicatePeer) {
		t.Fatalf("want ErrDuplicatePeer, got %v", err)
	}
}

func TestInmemUnknownPeer(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	if err := a.Send(context.Background(), 9, announce(1, 9, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestInmemDropRule(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	n.SetDrop(func(from, to identity.NodeID, m *wire.Message) bool { return to == 2 })
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatalf("dropped send must not error: %v", err)
	}
	select {
	case env := <-b.Inbox():
		t.Fatalf("dropped message delivered: %+v", env)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestInmemLatency(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	n.SetLatency(func(from, to identity.NodeID) time.Duration { return 40 * time.Millisecond })
	start := time.Now()
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestInmemMessageIsolation(t *testing.T) {
	// Receiver must not share memory with the sender's message.
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	msg := announce(1, 2, "x")
	if err := a.Send(context.Background(), 2, msg); err != nil {
		t.Fatal(err)
	}
	msg.Digest[0] ^= 0xFF
	env := <-b.Inbox()
	if env.Msg.Digest == msg.Digest {
		t.Fatal("message memory shared across the fabric")
	}
}

func TestInmemRemoveAndClosed(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Endpoint(1)
	if _, err := n.Endpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := n.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer after removal, got %v", err)
	}
	if err := n.Remove(2); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("double remove: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 1, announce(1, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := n.Endpoint(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("endpoint on closed network: %v", err)
	}
}

func TestInmemBackpressureDrops(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	if _, err := n.Endpoint(2); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var lastErr error
	for i := 0; i < inboxCapacity+10; i++ {
		if err := a.Send(ctx, 2, announce(1, 2, "x")); err != nil {
			lastErr = err
		}
	}
	if !errors.Is(lastErr, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure on overflow, got %v", lastErr)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)

	// Node 2 answers every REQ_CHILD with NOT_FOUND.
	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()

	caller := NewRPC(a, nil, time.Second)
	defer caller.Close()
	resp, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Kind != wire.KindNotFound {
		t.Fatalf("resp kind %v", resp.Kind)
	}
}

func TestRPCTimeout(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	silent := NewRPC(b, func(Envelope) {}, time.Second) // never replies
	defer silent.Close()
	caller := NewRPC(a, nil, 50*time.Millisecond)
	defer caller.Close()
	_, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want ErrRPCTimeout, got %v", err)
	}
}

func TestRPCContextCancel(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	silent := NewRPC(b, func(Envelope) {}, time.Second)
	defer silent.Close()
	caller := NewRPC(a, nil, 10*time.Second)
	defer caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := caller.Call(ctx, 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()
	caller := NewRPC(a, nil, time.Second)
	defer caller.Close()

	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
				return wire.NewReqChild(1, 2, digest.Sum([]byte{byte(i)}), corr, nonce)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())

	if err := a.Send(context.Background(), 2, announce(1, 2, "hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		if env.From != 1 || env.Msg.Kind != wire.KindDigestAnnounce {
			t.Fatalf("wrong envelope: %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP delivery timed out")
	}
}

func TestTCPRPC(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())

	var responder *RPC
	responder = NewRPC(b, func(env Envelope) {
		_ = responder.Reply(context.Background(), env.From, wire.NewNotFound(env.Msg))
	}, time.Second)
	defer responder.Close()
	caller := NewRPC(a, nil, 2*time.Second)
	defer caller.Close()

	resp, err := caller.Call(context.Background(), 2, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(1, 2, digest.Sum([]byte("t")), corr, nonce)
	})
	if err != nil {
		t.Fatalf("Call over TCP: %v", err)
	}
	if resp.Kind != wire.KindNotFound {
		t.Fatalf("resp kind %v", resp.Kind)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), 5, announce(1, 5, "x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := a.Send(context.Background(), 2, announce(1, 2, "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestTCPDialDeadPeer(t *testing.T) {
	// A directory entry pointing at a dead listener must fail the dial
	// with the typed transient error, not hang or panic.
	dead, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := ListenTCP(1, "127.0.0.1:0", map[identity.NodeID]string{2: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	err = a.Send(context.Background(), 2, announce(1, 2, "x"))
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("want ErrPeerUnreachable dialing dead peer, got %v", err)
	}
}

func TestTCPMidStreamReset(t *testing.T) {
	// A peer dying after the connection is established must surface as
	// ErrPeerUnreachable on a subsequent write — possibly after one
	// buffered write that the kernel accepts before the RST lands.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	if err := a.Send(context.Background(), 2, announce(1, 2, "warm")); err != nil {
		t.Fatalf("warm-up send: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := a.Send(context.Background(), 2, announce(1, 2, "x"))
		if errors.Is(err, ErrPeerUnreachable) {
			return
		}
		if err != nil {
			t.Fatalf("want ErrPeerUnreachable after reset, got %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("writes to a dead peer kept succeeding")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPInboundDropHandler(t *testing.T) {
	// Receiver-side backpressure is invisible to a TCP sender; the drop
	// handler must surface each frame lost to a full inbox.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	dropped := make(chan Envelope, 1)
	b.SetDropHandler(func(env Envelope) {
		select {
		case dropped <- env:
		default:
		}
	})
	// Nobody drains b's inbox, so sends past its capacity must invoke
	// the handler.
	ctx := context.Background()
	for i := 0; i < inboxCapacity+16; i++ {
		if err := a.Send(ctx, 2, announce(1, 2, "flood")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	select {
	case env := <-dropped:
		if env.From != 1 {
			t.Fatalf("dropped envelope from %v, want 1", env.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no inbound drop reported")
	}
}

func TestTCPSetPeerRedirects(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	ctx := context.Background()
	a.SetPeer(2, b1.Addr())
	if err := a.Send(ctx, 2, announce(1, 2, "first")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b1.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("delivery to the first address timed out")
	}

	// Updating the address must drop the cached connection so the next
	// send dials the new listener.
	a.SetPeer(2, b2.Addr())
	if addr, ok := a.Peer(2); !ok || addr != b2.Addr() {
		t.Fatalf("Peer(2) = %q, %v", addr, ok)
	}
	if err := a.Send(ctx, 2, announce(1, 2, "second")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b2.Inbox():
		if env.Msg.Digest != digest.Sum([]byte("second")) {
			t.Fatal("wrong frame at the new address")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery to the updated address timed out")
	}
	select {
	case env := <-b1.Inbox():
		t.Fatalf("stale address still receiving: %+v", env)
	default:
	}
}

func TestTCPRemovePeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	a.SetPeer(2, b.Addr())
	if err := a.Send(ctx, 2, announce(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	a.RemovePeer(2)
	if err := a.Send(ctx, 2, announce(1, 2, "y")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer after RemovePeer, got %v", err)
	}
	// Re-registering restores the route.
	a.SetPeer(2, b.Addr())
	if err := a.Send(ctx, 2, announce(1, 2, "z")); err != nil {
		t.Fatalf("send after re-register: %v", err)
	}
}

func TestTCPDirectoryUpdatesUnderConcurrentSends(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// Drain both inboxes so sends never hit backpressure.
	done := make(chan struct{})
	go func() {
		for range b1.Inbox() {
		}
		close(done)
	}()
	go func() {
		for range b2.Inbox() {
		}
	}()

	ctx := context.Background()
	a.SetPeer(2, b1.Addr())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Sends may fail transiently when SetPeer yanks the cached
				// connection mid-write; the race detector is the assertion.
				_ = a.Send(ctx, 2, announce(1, 2, "c"))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				a.SetPeer(2, b2.Addr())
			} else {
				a.SetPeer(2, b1.Addr())
			}
		}
	}()
	wg.Wait()
	b1.Close()
	<-done
}

func TestTCPAdvertiseAddr(t *testing.T) {
	plain, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.AdvertiseAddr() != plain.Addr() {
		t.Fatalf("default advertise %q != bound %q", plain.AdvertiseAddr(), plain.Addr())
	}
	if unreachable, err := ListenTCP(3, "127.0.0.1:0", nil, WithAdvertiseAddr("10.9.9.9:1")); err != nil {
		t.Fatal(err)
	} else {
		got := unreachable.AdvertiseAddr()
		unreachable.Close()
		if got != "10.9.9.9:1" {
			t.Fatalf("advertise override lost: %q", got)
		}
	}

	// NAT-style rewrite: the node binds 127.0.0.1:0 but advertises a
	// hostname that resolves back to the same listener; a peer told only
	// the advertised address must still reach it.
	svc, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, port, err := net.SplitHostPort(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	plain.SetPeer(2, net.JoinHostPort("localhost", port))
	if err := plain.Send(context.Background(), 2, announce(1, 2, "via-advertised")); err != nil {
		t.Fatalf("send via advertised address: %v", err)
	}
	select {
	case <-svc.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("delivery via advertised address timed out")
	}
}

func TestBootstrapExchange(t *testing.T) {
	member, err := ListenTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()
	entries := []wire.PeerEntry{{ID: 0, Live: true, Anchor: wire.NoAnchor, Addr: member.Addr()}}
	member.SetBootstrapHandler(func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindHello {
			return nil
		}
		return wire.NewPeerList(m, entries)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hello := wire.NewHello(wire.BootstrapID, 0, wire.HelloInfo{Anchor: wire.NoAnchor}, 1, 1)
	reply, err := Bootstrap(ctx, member.Addr(), hello)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	got, err := reply.DecodePeerListPayload()
	if err != nil {
		t.Fatalf("reply payload: %v", err)
	}
	if len(got) != 1 || got[0].Addr != member.Addr() {
		t.Fatalf("wrong peer list: %+v", got)
	}
	// The discovery frame must never surface in the inbox.
	select {
	case env := <-member.Inbox():
		t.Fatalf("bootstrap frame leaked into the inbox: %+v", env)
	default:
	}
}

func TestBootstrapWithoutHandlerTimesOut(t *testing.T) {
	member, err := ListenTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	hello := wire.NewHello(wire.BootstrapID, 0, wire.HelloInfo{Anchor: wire.NoAnchor}, 1, 1)
	if _, err := Bootstrap(ctx, member.Addr(), hello); err == nil {
		t.Fatal("bootstrap against a handler-less node must fail, not hang")
	}
	// The unanswered discovery frame must not surface in the inbox
	// either: BootstrapID is not a routable identity.
	select {
	case env := <-member.Inbox():
		t.Fatalf("bootstrap frame leaked into the inbox: %+v", env)
	default:
	}
}
