package node

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// delivery is one observed digest ingest: from announced d, to cached
// it.
type delivery struct {
	from, to identity.NodeID
	d        digest.Digest
}

// deliveryLog is the event-driven replacement for the old sleep-poll
// deadline loops: it records every receiver-side ingest event
// (DigestAnnounced fires after A_i accepted the digest) and lets tests
// block until a specific delivery happened, woken by the event itself
// instead of a timer.
type deliveryLog struct {
	events.Nop
	mu     sync.Mutex
	seen   map[delivery]struct{}
	signal chan struct{}
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{seen: make(map[delivery]struct{}), signal: make(chan struct{})}
}

func (l *deliveryLog) OnDigestAnnounced(e events.DigestAnnounced) {
	l.record(delivery{e.From, e.To, e.Digest})
}

func (l *deliveryLog) OnDigestBatchDelivered(e events.DigestBatchDelivered) {
	for i := range e.Digests {
		l.record(delivery{e.From[i], e.To, e.Digests[i]})
	}
}

func (l *deliveryLog) record(d delivery) {
	l.mu.Lock()
	l.seen[d] = struct{}{}
	close(l.signal) // wake every waiter; each re-checks and re-arms
	l.signal = make(chan struct{})
	l.mu.Unlock()
}

// wait blocks until from's announcement of d was ingested by to.
func (l *deliveryLog) wait(t *testing.T, from, to identity.NodeID, d digest.Digest) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		l.mu.Lock()
		_, ok := l.seen[delivery{from, to, d}]
		sig := l.signal
		l.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-sig:
		case <-deadline:
			t.Fatalf("digest from %v never reached %v", from, to)
		}
	}
}

// cluster spins up a live in-memory 2LDAG network over the given
// topology.
type cluster struct {
	t     *testing.T
	net   *transport.Network
	nodes map[identity.NodeID]*Node
	topo  *topology.Graph
	log   *deliveryLog
	slot  uint32
}

func newCluster(t *testing.T, g *topology.Graph, gamma int) *cluster {
	t.Helper()
	params := block.DefaultParams()
	params.Difficulty = 2
	var pairs []identity.KeyPair
	for _, id := range g.Nodes() {
		pairs = append(pairs, identity.Deterministic(id, 500))
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{t: t, net: transport.NewNetwork(), nodes: make(map[identity.NodeID]*Node), topo: g, log: newDeliveryLog()}
	for _, kp := range pairs {
		ep, err := c.net.Endpoint(kp.ID)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Key:            kp,
			Params:         params,
			Topo:           g,
			Ring:           ring,
			Transport:      ep,
			Gamma:          gamma,
			RequestTimeout: 500 * time.Millisecond,
			Observer:       c.log,
		})
		if err != nil {
			t.Fatal(err)
		}
		slot := &c.slot
		n.SetClock(func() uint32 { return *slot })
		c.nodes[kp.ID] = n
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			_ = n.Close()
		}
		_ = c.net.Close()
	})
	return c
}

// generate makes a node produce a block and waits briefly for the
// digest announcements to land.
func (c *cluster) generate(id identity.NodeID) *block.Block {
	c.t.Helper()
	b, err := c.nodes[id].Generate(context.Background(), []byte(fmt.Sprintf("body %v %d", id, c.slot)))
	if err != nil {
		c.t.Fatalf("Generate(%v): %v", id, err)
	}
	c.waitForDigest(id, b.Header.Hash())
	return b
}

// waitForDigest blocks until every neighbor's ingest event fired for
// the announcement (event-driven; no cache polling).
func (c *cluster) waitForDigest(id identity.NodeID, d digest.Digest) {
	c.t.Helper()
	for _, nb := range c.topo.Neighbors(id) {
		c.log.wait(c.t, id, nb, d)
	}
}

func (c *cluster) runSlot(order ...identity.NodeID) {
	c.t.Helper()
	c.slot++
	for _, id := range order {
		c.generate(id)
	}
}

// TestLiveAuditPaperFig4 runs the Fig. 4 scenario over real message
// passing: validator A audits B1 and reaches γ=2 consensus.
func TestLiveAuditPaperFig4(t *testing.T) {
	c := newCluster(t, topology.PaperFig4(), 2)
	c.runSlot(0, 1, 2, 3, 4) // genesis
	c.runSlot(1, 3, 4)       // B1, D1 (child of B1), E1 (child of D1)

	res, err := c.nodes[0].Audit(context.Background(), block.Ref{Node: 1, Seq: 1})
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus over the live transport")
	}
	if len(res.Vouchers) < 3 {
		t.Fatalf("vouchers %v", res.Vouchers)
	}
}

// TestLiveAuditDetectsTamper mutates a stored block body behind the
// runtime's back; a live audit must fail the root check.
func TestLiveAuditDetectsTamper(t *testing.T) {
	c := newCluster(t, topology.PaperFig4(), 2)
	c.runSlot(0, 1, 2, 3, 4)
	c.runSlot(1, 3, 4)

	// The verifier serves a tampered copy: simulate by auditing a
	// nonexistent seq first (NotFound path), then tamper via a direct
	// store overwrite is impossible (stores copy); instead verify the
	// NotFound path degrades cleanly.
	_, err := c.nodes[0].Audit(context.Background(), block.Ref{Node: 1, Seq: 99})
	if err == nil {
		t.Fatal("audit of a nonexistent block succeeded")
	}
}

// TestLiveAuditSurvivesSilentNode closes one node's transport; audits
// still succeed around it.
func TestLiveAuditSurvivesSilentNode(t *testing.T) {
	c := newCluster(t, topology.PaperFig4(), 2)
	c.runSlot(0, 1, 2, 3, 4)
	for s := 0; s < 3; s++ {
		c.runSlot(1, 2, 3, 4, 0)
	}
	// Node C (2) goes dark.
	if err := c.nodes[2].Close(); err != nil {
		t.Fatal(err)
	}
	delete(c.nodes, 2)
	if err := c.net.Remove(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.nodes[0].Audit(context.Background(), block.Ref{Node: 1, Seq: 1})
	if err != nil {
		t.Fatalf("audit with dark node: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus despite honest majority")
	}
	for _, v := range res.Vouchers {
		if v == 2 {
			t.Fatal("dark node vouched")
		}
	}
}

// TestTrustCacheAcrossLiveAudits: the second audit of the same block
// uses H_i instead of network requests.
func TestTrustCacheAcrossLiveAudits(t *testing.T) {
	c := newCluster(t, topology.PaperFig4(), 2)
	c.runSlot(0, 1, 2, 3, 4)
	c.runSlot(1, 3, 4)
	ref := block.Ref{Node: 1, Seq: 1}
	first, err := c.nodes[0].Audit(context.Background(), ref)
	if err != nil || !first.Consensus {
		t.Fatalf("first audit: %v", err)
	}
	second, err := c.nodes[0].Audit(context.Background(), ref)
	if err != nil || !second.Consensus {
		t.Fatalf("second audit: %v", err)
	}
	if second.TrustHits == 0 || second.HeadersFetched != 0 {
		t.Fatalf("TPS not used on repeat audit: %+v", second)
	}
}

// TestDoSFlooderGetsBanned: a neighbor announcing digests far above
// the rate limit is banned and its announcements ignored.
func TestDoSFlooderGetsBanned(t *testing.T) {
	g := topology.PaperFig6() // A-B-C chain
	params := block.DefaultParams()
	params.Difficulty = 2
	kpA := identity.Deterministic(0, 1)
	kpB := identity.Deterministic(1, 1)
	kpC := identity.Deterministic(2, 1)
	ring, err := identity.RingFor([]identity.KeyPair{kpA, kpB, kpC})
	if err != nil {
		t.Fatal(err)
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	log := newDeliveryLog()
	epB, _ := netw.Endpoint(1)
	nodeB, err := New(Config{
		Key: kpB, Params: params, Topo: g, Ring: ring, Transport: epB,
		Gamma: 1, AnnounceWindow: time.Second, AnnounceLimit: 5,
		Observer: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	// The flooder (node A) blasts 50 digests directly.
	epA, _ := netw.Endpoint(0)
	defer epA.Close()
	epC, _ := netw.Endpoint(2)
	defer epC.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		msg := wire.NewDigestAnnounce(0, 1, digest.Sum([]byte{byte(i)}), uint64(i))
		if err := epA.Send(ctx, 1, msg); err != nil {
			t.Fatal(err)
		}
	}
	// Sentinel: C (B's other neighbor) announces after the flood. The
	// inbox is FIFO and dispatch is serial, so once the sentinel is
	// ingested every flood frame has been judged — no ban polling.
	sentinel := digest.Sum([]byte("sentinel 1"))
	if err := epC.Send(ctx, 1, wire.NewDigestAnnounce(2, 1, sentinel, 100)); err != nil {
		t.Fatal(err)
	}
	log.wait(t, 2, 1, sentinel)
	if !nodeB.Blacklist().Banned(0) {
		t.Fatal("flooder never banned")
	}
	// Post-ban announcements must not update A_i; a second sentinel
	// bounds the wait the same way.
	final := digest.Sum([]byte("post-ban"))
	if err := epA.Send(ctx, 1, wire.NewDigestAnnounce(0, 1, final, 99)); err != nil {
		t.Fatal(err)
	}
	sentinel2 := digest.Sum([]byte("sentinel 2"))
	if err := epC.Send(ctx, 1, wire.NewDigestAnnounce(2, 1, sentinel2, 101)); err != nil {
		t.Fatal(err)
	}
	log.wait(t, 2, 1, sentinel2)
	if got, ok := nodeB.Engine().Cache().Get(0); ok && got == final {
		t.Fatal("banned flooder still updates the digest cache")
	}
}

// TestNonNeighborAnnouncementIgnored: digests from nodes without a
// radio link never enter A_i (Sec. IV-D5 filtering).
func TestNonNeighborAnnouncementIgnored(t *testing.T) {
	c := newCluster(t, topology.PaperFig4(), 1)
	// E (4) is not A's (0) neighbor; forge a direct announcement.
	ep, err := c.net.Endpoint(99)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	d := digest.Sum([]byte("forged"))
	msg := wire.NewDigestAnnounce(4, 0, d, 1)
	ctx := context.Background()
	if err := ep.Send(ctx, 0, msg); err != nil {
		t.Fatal(err)
	}
	// Sentinel: a real neighbor announces after the forgery; FIFO
	// dispatch means its ingest event proves the forged frame was
	// already judged.
	nb := c.topo.Neighbors(0)[0]
	sentinel := digest.Sum([]byte("sentinel"))
	c.nodes[nb].AnnounceTo(ctx, 0, sentinel)
	c.log.wait(t, nb, 0, sentinel)
	if _, ok := c.nodes[0].Engine().Cache().Get(4); ok {
		t.Fatal("non-neighbor digest accepted")
	}
}

// TestLiveClusterOverTCP runs the Fig. 4 audit over real TCP sockets.
func TestLiveClusterOverTCP(t *testing.T) {
	g := topology.PaperFig4()
	params := block.DefaultParams()
	params.Difficulty = 2
	var pairs []identity.KeyPair
	for _, id := range g.Nodes() {
		pairs = append(pairs, identity.Deterministic(id, 900))
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Listen first, then wire the directory.
	tcps := make(map[identity.NodeID]*transport.TCPNode)
	for _, kp := range pairs {
		tn, err := transport.ListenTCP(kp.ID, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		tcps[kp.ID] = tn
	}
	for id, tn := range tcps {
		for other, otherTn := range tcps {
			if id != other {
				tn.AddPeer(other, otherTn.Addr())
			}
		}
	}
	log := newDeliveryLog()
	nodes := make(map[identity.NodeID]*Node)
	var slot uint32
	for _, kp := range pairs {
		n, err := New(Config{
			Key: kp, Params: params, Topo: g, Ring: ring,
			Transport: tcps[kp.ID], Gamma: 2, RequestTimeout: time.Second,
			Observer: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.SetClock(func() uint32 { return slot })
		nodes[kp.ID] = n
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	ctx := context.Background()
	gen := func(id identity.NodeID) {
		t.Helper()
		b, err := nodes[id].Generate(ctx, []byte(fmt.Sprintf("tcp body %v %d", id, slot)))
		if err != nil {
			t.Fatal(err)
		}
		// Wait for the ingest events to fire over real sockets.
		for _, nb := range g.Neighbors(id) {
			log.wait(t, id, nb, b.Header.Hash())
		}
	}
	slot = 1
	for _, id := range g.Nodes() {
		gen(id)
	}
	slot = 2
	gen(1)
	gen(3)
	gen(4)

	res, err := nodes[0].Audit(ctx, block.Ref{Node: 1, Seq: 1})
	if err != nil {
		t.Fatalf("TCP audit: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus over TCP")
	}
}

// TestNodeConfigValidation covers constructor errors.
func TestNodeConfigValidation(t *testing.T) {
	g := topology.PaperFig3()
	ring := identity.NewRing()
	if _, err := New(Config{Topo: g, Ring: ring}); err == nil {
		t.Fatal("missing transport accepted")
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep, _ := netw.Endpoint(0)
	if _, err := New(Config{Topo: g, Transport: ep}); err == nil {
		t.Fatal("missing ring accepted")
	}
}

// ackCounter tallies the delivery events a submitter-side observer
// receives; with AnnounceAcks on, those are synthesized from DigestAck
// frames rather than observed at the receiver.
type ackCounter struct {
	events.Nop
	mu      sync.Mutex
	singles int
	batched int
	signal  chan struct{}
}

func newAckCounter() *ackCounter { return &ackCounter{signal: make(chan struct{})} }

func (c *ackCounter) OnDigestAnnounced(events.DigestAnnounced) {
	c.mu.Lock()
	c.singles++
	close(c.signal)
	c.signal = make(chan struct{})
	c.mu.Unlock()
}

func (c *ackCounter) OnDigestBatchDelivered(e events.DigestBatchDelivered) {
	c.mu.Lock()
	c.batched += len(e.Digests)
	close(c.signal)
	c.signal = make(chan struct{})
	c.mu.Unlock()
}

func (c *ackCounter) wait(t *testing.T, cond func(singles, batched int) bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		ok := cond(c.singles, c.batched)
		sig := c.signal
		c.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-sig:
		case <-deadline:
			c.mu.Lock()
			t.Fatalf("ack events never arrived: singles=%d batched=%d", c.singles, c.batched)
		}
	}
}

// TestAnnounceAcksSynthesizeDeliveryEvents pins the cross-process ack
// contract: with AnnounceAcks on, the announcer's own observer sees
// the delivery events (synthesized from wire-level DigestAcks), and a
// re-announced digest is re-acked so a lost first ack cannot stall a
// retrying submitter.
func TestAnnounceAcksSynthesizeDeliveryEvents(t *testing.T) {
	g := topology.New(10)
	g.AddNode(1, topology.Point{X: 0, Y: 0})
	g.AddNode(2, topology.Point{X: 1, Y: 0})

	params := block.DefaultParams()
	params.Difficulty = 2
	pairs := []identity.KeyPair{identity.Deterministic(1, 500), identity.Deterministic(2, 500)}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		t.Fatal(err)
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	counter := newAckCounter()
	nodes := make(map[identity.NodeID]*Node, 2)
	for _, kp := range pairs {
		ep, err := netw.Endpoint(kp.ID)
		if err != nil {
			t.Fatal(err)
		}
		var obs events.Observer
		if kp.ID == 1 {
			obs = counter // only the announcer's observer counts
		}
		n, err := New(Config{
			Key: kp, Params: params, Topo: g, Ring: ring, Transport: ep,
			Gamma: 1, RequestTimeout: 500 * time.Millisecond,
			Observer: obs, AnnounceAcks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[kp.ID] = n
		defer n.Close()
	}

	ctx := context.Background()
	_, d, err := nodes[1].GenerateLocal([]byte("acked"))
	if err != nil {
		t.Fatal(err)
	}
	nodes[1].AnnounceTo(ctx, 2, d)
	counter.wait(t, func(s, b int) bool { return s >= 1 })

	// Retry of the same digest: the receiver dedups the ingest but must
	// re-ack, or a submitter whose first ack was lost waits forever.
	nodes[1].AnnounceTo(ctx, 2, d)
	counter.wait(t, func(s, b int) bool { return s >= 2 })

	// Batch path: one coalesced frame, one ack carrying both digests.
	_, d2, err := nodes[1].GenerateLocal([]byte("acked-2"))
	if err != nil {
		t.Fatal(err)
	}
	_, d3, err := nodes[1].GenerateLocal([]byte("acked-3"))
	if err != nil {
		t.Fatal(err)
	}
	nodes[1].AnnounceBatch(ctx, []digest.Digest{d2, d3})
	counter.wait(t, func(s, b int) bool { return b >= 2 })

	// Pure-duplicate batch: every digest already ingested, full re-ack.
	nodes[1].AnnounceBatch(ctx, []digest.Digest{d2, d3})
	counter.wait(t, func(s, b int) bool { return b >= 4 })
}
