// Package node is the live 2LDAG runtime: one Node per IoT device,
// combining the core engine (block generation, digest cache), the
// Algorithm 4 responder, a PoP validator and a transport. Nodes
// exchange real wire messages — digest announcements on generation
// (Sec. III-D), singly or coalesced into one DigestBatch frame per
// neighbor per flush (AnnounceBatch), REQ_CHILD/RPY_CHILD and block
// retrievals during PoP (Sec. IV) — over either the in-memory fabric
// or TCP.
//
// The runtime also enforces the receiver-side DoS defense of Sec.
// IV-D5: a neighbor announcing blocks faster than the proof-of-work
// difficulty plausibly allows is banned and its digests are discarded.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// Config assembles a node.
type Config struct {
	// Key is the node's signing identity.
	Key identity.KeyPair
	// Params are the shared consensus constants.
	Params block.Params
	// Topo is the shared physical topology.
	Topo *topology.Graph
	// Ring is the shared public-key registry.
	Ring *identity.Ring
	// Transport carries this node's traffic (ownership passes to the
	// node; Close closes it).
	Transport transport.Transport
	// Gamma is the PoP consensus threshold γ.
	Gamma int
	// RequestTimeout is τ for PoP requests (0 = transport default).
	RequestTimeout time.Duration
	// Strategy overrides WPS.
	Strategy core.SelectionStrategy
	// AnnounceWindow and AnnounceLimit bound per-neighbor digest
	// announcements: more than AnnounceLimit digests within
	// AnnounceWindow bans the sender (0 values disable the guard).
	AnnounceWindow time.Duration
	AnnounceLimit  int
	// Retry bounds re-transmission of PoP requests (REQ_CHILD,
	// GET_BLOCK): each failed call backs off and retries up to
	// Retry.MaxAttempts before the validator gives up on the peer. The
	// zero value disables retries — the baseline behavior, where one
	// timeout moves the validator to the next candidate.
	Retry faults.RetryPolicy
	// Health, when non-nil, is the node's per-peer circuit breaker:
	// transport failures feed it, audits route around peers it
	// suspects, and any later success re-admits them.
	Health *faults.Health
	// Observer, when non-nil, receives the node's typed event stream
	// (block seals, accepted digest deliveries, audit hops and
	// outcomes). Called from transport and audit goroutines — must be
	// safe for concurrent use and cheap.
	Observer events.Observer
	// Control, when non-nil, receives membership-plane frames (Hello,
	// PeerList pushes, Leave) that the data-plane node does not
	// interpret itself — the cluster host owning this node handles
	// directory state there. Runs on the dispatch goroutine; must not
	// block.
	Control func(transport.Envelope)
	// State, when non-nil, is the recovered ledger state
	// (snapshot + WAL replay) the node resumes from instead of empty
	// structures. Its store must be owned by Key.ID.
	State *ledger.NodeState
	// TrustCap, when > 0, bounds H_i (FIFO eviction). Applied on top
	// of any recovered state.
	TrustCap int
	// Backend, when non-nil, journals every ledger mutation for crash
	// recovery. The node attaches it after restoring State (recovery
	// is never re-journaled) but does not own it: the caller that
	// opened the backend syncs and closes it after node.Close.
	Backend ledger.Backend
	// AnnounceAcks switches delivery acknowledgement to the wire: each
	// ingested announcement (and each pure re-delivery, whose original
	// ack may have been lost) is answered with a DigestAck frame, and
	// incoming DigestAcks synthesize the receiver-side delivery events
	// on this node's observer. In-process clusters leave this off — the
	// receiver's own observer events reach the submitter's ack tracker
	// directly. Cross-process clusters need it: events don't cross
	// process boundaries.
	AnnounceAcks bool
}

// Node is a running 2LDAG participant.
type Node struct {
	cfg    Config
	engine *core.Engine
	rpc    *transport.RPC
	bl     *ledger.Blacklist

	mu       sync.Mutex
	lastAnns map[identity.NodeID][]time.Time

	// batchFrom is the scratch sender column for DigestBatchDelivered
	// events on single-sender wire batches. It is only touched from
	// the RPC dispatch goroutine (handle runs serially), so no lock is
	// needed, and the event contract lets observers see it only for
	// the duration of the call.
	batchFrom []identity.NodeID

	// seen is the idempotent-receive guard: per sender, the recent
	// digests already ingested into A_i. A re-delivered digest —
	// a retry, an injected duplicate, a delayed copy arriving after
	// newer announcements — is discarded before the DoS guard charges
	// the sender and before the latest-wins cache could regress to a
	// stale entry. Like batchFrom it is only touched from the dispatch
	// goroutine, so no lock is needed.
	seen map[identity.NodeID]*seenRing

	slot func() uint32

	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// New builds and starts a node's message loop. The node serves
// responder traffic immediately.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, errors.New("node: Config.Transport is required")
	}
	if cfg.Ring == nil {
		return nil, errors.New("node: Config.Ring is required")
	}
	engOpts := core.EngineOptions{TrustCap: cfg.TrustCap, Backend: cfg.Backend}
	if cfg.State != nil {
		engOpts.Store = cfg.State.Store
		engOpts.Trust = cfg.State.Trust
		engOpts.Cache = cfg.State.Cache
	}
	eng, err := core.NewEngineWith(cfg.Key, cfg.Params, cfg.Topo, engOpts)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	n := &Node{
		cfg:      cfg,
		engine:   eng,
		bl:       ledger.NewBlacklist(0, 0),
		lastAnns: make(map[identity.NodeID][]time.Time),
		seen:     make(map[identity.NodeID]*seenRing),
		slot:     wallClockSlot,
	}
	n.rpc = transport.NewRPC(cfg.Transport, n.handle, cfg.RequestTimeout)
	return n, nil
}

// wallClockSlot stamps blocks with Unix seconds.
func wallClockSlot() uint32 { return uint32(time.Now().Unix()) }

// SetClock overrides the block timestamp source (tests, simulations).
func (n *Node) SetClock(f func() uint32) {
	if f != nil {
		n.slot = f
	}
}

// ID returns the node's identity.
func (n *Node) ID() identity.NodeID { return n.cfg.Key.ID }

// Engine exposes the node's 2LDAG state machine.
func (n *Node) Engine() *core.Engine { return n.engine }

// CommitJournal closes the durability backend's open WAL commit
// window (see core.Engine.CommitJournal). Drivers call it at the
// flush boundary when the backend runs a batched sync policy; a no-op
// for in-memory nodes.
func (n *Node) CommitJournal() error { return n.engine.CommitJournal() }

// Blacklist exposes the node's penalty book (Sec. IV-D6).
func (n *Node) Blacklist() *ledger.Blacklist { return n.bl }

// dedupWindow bounds the per-sender idempotent-receive memory. A
// duplicate can only trail its original by the fabric's maximum delay,
// during which a sender seals at most a handful of digests, so a short
// window suffices; the window only needs to outlive the oldest copy
// still in flight.
const dedupWindow = 64

// seenRing remembers the last dedupWindow digests ingested from one
// sender: O(1) membership via the index map, O(1) eviction via the
// ring.
type seenRing struct {
	ring [dedupWindow]digest.Digest
	idx  map[digest.Digest]struct{}
	n    int
}

func newSeenRing() *seenRing {
	return &seenRing{idx: make(map[digest.Digest]struct{}, dedupWindow)}
}

func (r *seenRing) has(d digest.Digest) bool {
	_, ok := r.idx[d]
	return ok
}

func (r *seenRing) add(d digest.Digest) {
	if r.has(d) {
		return
	}
	slot := r.n % dedupWindow
	if r.n >= dedupWindow {
		delete(r.idx, r.ring[slot])
	}
	r.ring[slot] = d
	r.idx[d] = struct{}{}
	r.n++
}

// seenBefore reports whether from already delivered d.
func (n *Node) seenBefore(from identity.NodeID, d digest.Digest) bool {
	r, ok := n.seen[from]
	return ok && r.has(d)
}

// markSeen records d as ingested from from.
func (n *Node) markSeen(from identity.NodeID, d digest.Digest) {
	r, ok := n.seen[from]
	if !ok {
		r = newSeenRing()
		n.seen[from] = r
	}
	r.add(d)
}

// handle serves unsolicited messages: digest announcements and
// responder duties.
func (n *Node) handle(env transport.Envelope) {
	msg := env.Msg
	ctx := context.Background()
	switch msg.Kind {
	case wire.KindDigestAnnounce:
		n.onAnnounce(ctx, msg)
	case wire.KindDigestBatch:
		n.onAnnounceBatch(ctx, msg)
	case wire.KindDigestAck:
		n.onDigestAck(msg)
	case wire.KindHello, wire.KindPeerList, wire.KindLeave:
		if c := n.cfg.Control; c != nil {
			c(env)
		}
	case wire.KindReqChild:
		if h, err := n.engine.Responder().ChildFor(msg.Digest); err == nil {
			_ = n.rpc.Reply(ctx, msg.From, wire.NewRpyChild(msg, h))
		} else {
			_ = n.rpc.Reply(ctx, msg.From, wire.NewNotFound(msg))
		}
	case wire.KindGetBlock:
		if b, err := n.engine.Responder().Block(msg.Ref); err == nil {
			_ = n.rpc.Reply(ctx, msg.From, wire.NewBlockResp(msg, b))
		} else {
			_ = n.rpc.Reply(ctx, msg.From, wire.NewNotFound(msg))
		}
	default:
		// Unknown unsolicited kinds are dropped (authenticated peers
		// never send them).
	}
}

// ack answers an ingested (or already-ingested) announcement with a
// wire-level DigestAck when the node runs in AnnounceAcks mode. Losses
// are tolerated: the sender's retry re-announces, the receiver dedups
// and re-acks.
func (n *Node) ack(ctx context.Context, msg *wire.Message) {
	if !n.cfg.AnnounceAcks {
		return
	}
	_ = n.rpc.Reply(ctx, msg.From, wire.NewDigestAck(msg))
}

// onAnnounce ingests a digest announcement: idempotent-receive dedup
// first (re-deliveries are free and side-effect-less), then the DoS
// rate guard, then A_i.
func (n *Node) onAnnounce(ctx context.Context, msg *wire.Message) {
	from := msg.From
	if n.seenBefore(from, msg.Digest) {
		// Duplicate or retry of an ingested digest. Re-ack it: the
		// retry means the original ack may have been lost, and without
		// a fresh one the sender's pending wait never resolves.
		n.ack(ctx, msg)
		return
	}
	if !n.announceAllowed(from, 1) {
		return // banned or flooding senders get no acknowledgement
	}
	if err := n.engine.OnDigest(from, msg.Digest); err != nil {
		return // non-neighbors rejected inside
	}
	n.markSeen(from, msg.Digest)
	if obs := n.cfg.Observer; obs != nil {
		// Receiver-side event: the digest is now in A_i, so the sender
		// can treat this as a delivery acknowledgement.
		obs.OnDigestAnnounced(events.DigestAnnounced{From: from, To: n.ID(), Digest: msg.Digest})
	}
	n.ack(ctx, msg)
}

// onAnnounceBatch ingests a coalesced announcement frame: the DoS
// guard charges the sender one announcement per carried digest, then
// the whole batch enters A_i in one engine pass and is acknowledged
// with a single receiver-side DigestBatchDelivered event. A flush
// that would cross AnnounceLimit is dropped whole — unlike the
// singleton flood, no under-limit prefix lands: a frame flooding past
// the PoW-plausible rate is hostile end to end, and announcement loss
// is tolerated anyway (neighbors pick up the next digest).
func (n *Node) onAnnounceBatch(ctx context.Context, msg *wire.Message) {
	from := msg.From
	if n.bl.Banned(from) {
		return // cheap pre-check: banned peers don't get a decode
	}
	ds, err := msg.DecodeDigestBatchPayload()
	if err != nil || len(ds) == 0 {
		return // malformed or empty frames are dropped
	}
	// Idempotent receive: drop already-ingested digests from the frame
	// (in place, preserving seal order) so a re-delivered batch neither
	// re-charges the rate guard nor regresses the latest-wins cache.
	fresh := ds[:0]
	for _, d := range ds {
		if !n.seenBefore(from, d) {
			fresh = append(fresh, d)
		}
	}
	if len(fresh) == 0 {
		// Pure duplicate frame: every carried digest is already in A_i,
		// so re-ack the whole frame (the retry implies a lost ack).
		n.ack(ctx, msg)
		return
	}
	if !n.announceAllowed(from, len(fresh)) {
		return // banned or flooding senders get no acknowledgement
	}
	if err := n.engine.OnDigestsFrom(from, fresh); err != nil {
		return // non-neighbors rejected inside
	}
	for _, d := range fresh {
		n.markSeen(from, d)
	}
	if obs := n.cfg.Observer; obs != nil {
		froms := n.batchFrom[:0]
		for range fresh {
			froms = append(froms, from)
		}
		n.batchFrom = froms
		obs.OnDigestBatchDelivered(events.DigestBatchDelivered{To: n.ID(), From: froms, Digests: fresh})
	}
	// Note: the decode above consumed msg's payload copy, but NewDigestAck
	// echoes the original payload bytes, so the ack still carries the
	// full digest run — including any previously-seen suffix whose
	// earlier ack may have been lost.
	n.ack(ctx, msg)
}

// onDigestAck turns a wire-level delivery acknowledgement back into
// the receiver-side observer events the ack tracker understands: the
// peer at msg.From has the acknowledged digests in its A_i, exactly as
// if this process had observed the ingest directly.
func (n *Node) onDigestAck(msg *wire.Message) {
	obs := n.cfg.Observer
	if obs == nil || !n.cfg.AnnounceAcks {
		return
	}
	ds, err := msg.DecodeDigestAckPayload()
	if err != nil {
		return
	}
	if ds == nil {
		// Singleton announcement ack.
		obs.OnDigestAnnounced(events.DigestAnnounced{From: n.ID(), To: msg.From, Digest: msg.Digest})
		return
	}
	froms := n.batchFrom[:0]
	for range ds {
		froms = append(froms, n.ID())
	}
	n.batchFrom = froms
	obs.OnDigestBatchDelivered(events.DigestBatchDelivered{To: msg.From, From: froms, Digests: ds})
}

// announceAllowed applies the receiver-side DoS defense of Sec. IV-D5
// for count announcements arriving from one neighbor at once: a
// banned sender is ignored, and a sender exceeding AnnounceLimit
// digests within AnnounceWindow is banned (flooding faster than the
// PoW difficulty plausibly allows — "a node may ban a neighbor that
// generates blocks quicker than the expected time to solve the
// puzzle").
func (n *Node) announceAllowed(from identity.NodeID, count int) bool {
	if n.bl.Banned(from) {
		return false
	}
	if n.cfg.AnnounceWindow <= 0 || n.cfg.AnnounceLimit <= 0 {
		return true
	}
	now := time.Now()
	n.mu.Lock()
	keep := n.lastAnns[from][:0]
	for _, t := range n.lastAnns[from] {
		if now.Sub(t) <= n.cfg.AnnounceWindow {
			keep = append(keep, t)
		}
	}
	for i := 0; i < count; i++ {
		keep = append(keep, now)
	}
	n.lastAnns[from] = keep
	over := len(keep) > n.cfg.AnnounceLimit
	n.mu.Unlock()
	if over {
		for !n.bl.Banned(from) {
			n.bl.ReportFailure(from)
		}
		return false
	}
	return true
}

// Generate produces the node's next block from body and announces its
// digest to every neighbor. Equivalent to GenerateLocal followed by
// Announce; callers that need to observe the announcement (e.g. an
// event-driven delivery ack) use the two halves directly.
func (n *Node) Generate(ctx context.Context, body []byte) (*block.Block, error) {
	b, d, err := n.GenerateLocal(body)
	if err != nil {
		return nil, err
	}
	n.Announce(ctx, d)
	return b, nil
}

// GenerateLocal seals the node's next block from body — mined, signed
// and appended to S_i — without announcing it, and returns the block
// together with the digest to announce.
func (n *Node) GenerateLocal(body []byte) (*block.Block, digest.Digest, error) {
	slot := n.slot()
	b, d, err := n.engine.Generate(slot, body)
	if err != nil {
		return nil, digest.Digest{}, err
	}
	if obs := n.cfg.Observer; obs != nil {
		obs.OnBlockSealed(events.BlockSealed{Node: n.ID(), Ref: b.Header.Ref(), Digest: d, Slot: slot})
	}
	return b, d, nil
}

// sendAnnounce pushes one announcement frame to nb, feeding the
// health tracker and surfacing the loss as a MessageDropped event when
// the fabric reports one (sender-side backpressure or an unreachable
// peer). Caller cancellation is not a peer failure.
func (n *Node) sendAnnounce(ctx context.Context, nb identity.NodeID, msg *wire.Message) {
	err := n.rpc.Transport().Send(ctx, nb, msg)
	if err == nil {
		n.cfg.Health.ReportSuccess(nb)
		return
	}
	if ctx.Err() != nil {
		return
	}
	n.cfg.Health.ReportFailure(nb)
	if obs := n.cfg.Observer; obs != nil {
		reason := events.DropUnreachable
		if errors.Is(err, transport.ErrBackpressure) {
			reason = events.DropBackpressure
		}
		obs.OnMessageDropped(events.MessageDropped{
			From: n.ID(), To: nb, Kind: uint8(msg.Kind), Reason: reason,
		})
	}
}

// Announce broadcasts a sealed block's digest to every radio neighbor
// (Sec. III-D). Losses are tolerated: neighbors that miss the digest
// pick up the next one (A_i keeps only the latest anyway).
func (n *Node) Announce(ctx context.Context, d digest.Digest) {
	for _, nb := range n.cfg.Topo.Neighbors(n.ID()) {
		n.AnnounceTo(ctx, nb, d)
	}
}

// AnnounceTo sends one digest announcement to a single neighbor — the
// targeted re-transmission path: a retrying submitter re-announces
// only to the neighbors whose acknowledgement is still missing.
// Receivers dedup on the digest, so re-sending an already-delivered
// digest is free and side-effect-less.
func (n *Node) AnnounceTo(ctx context.Context, nb identity.NodeID, d digest.Digest) {
	n.sendAnnounce(ctx, nb, wire.NewDigestAnnounce(n.ID(), nb, d, n.rpc.NextNonce()))
}

// AnnounceBatch broadcasts a run of sealed digests (in seal order) to
// every radio neighbor, coalesced into one DigestBatch frame per
// neighbor — one frame per (sender, receiver) pair per flush instead
// of one per digest. A single digest falls back to the singleton
// DigestAnnounce frame. Losses are tolerated exactly as with
// Announce.
//
// Retry/idempotency contract: announcement delivery is at-least-once
// when a caller retries (AnnounceTo) and exactly-once in effect —
// every receiver dedups on the digest before any side effect, so a
// re-sent or duplicated frame never double-charges the Sec. IV-D5
// rate guard, never regresses A_i's latest-wins entry, and never
// re-fires the delivery acknowledgement event.
func (n *Node) AnnounceBatch(ctx context.Context, ds []digest.Digest) {
	switch len(ds) {
	case 0:
		return
	case 1:
		n.Announce(ctx, ds[0])
		return
	}
	// One frame shared across neighbors: the digest concatenation is
	// built once and only To/Nonce are retargeted per send — safe
	// because both transports serialize the message inside Send and
	// never retain it.
	msg := wire.NewDigestBatch(n.ID(), 0, ds, 0)
	for _, nb := range n.cfg.Topo.Neighbors(n.ID()) {
		msg.To = nb
		msg.Nonce = n.rpc.NextNonce()
		n.sendAnnounce(ctx, nb, msg)
	}
}

// Call runs one request/response exchange with peer — the
// membership-plane RPC path (Hello → PeerList). build receives a fresh
// correlation ID and anti-replay nonce.
func (n *Node) Call(ctx context.Context, peer identity.NodeID, build func(corr, nonce uint64) *wire.Message) (*wire.Message, error) {
	return n.rpc.Call(ctx, peer, build)
}

// Send pushes one fire-and-forget frame to peer — the membership-plane
// broadcast path (PeerList pushes, Leave).
func (n *Node) Send(ctx context.Context, peer identity.NodeID, msg *wire.Message) error {
	return n.rpc.Transport().Send(ctx, peer, msg)
}

// NextNonce returns a fresh anti-replay nonce for control frames.
func (n *Node) NextNonce() uint64 { return n.rpc.NextNonce() }

// Audit verifies the given block via PoP over the live network and
// returns the consensus result.
func (n *Node) Audit(ctx context.Context, ref block.Ref) (*core.Result, error) {
	v, err := n.engine.Validator(n.cfg.Gamma, n.cfg.Ring, func(c *core.ValidatorConfig) {
		c.Strategy = n.cfg.Strategy
		c.Blacklist = n.bl
		if h := n.cfg.Health; h != nil {
			// Route around peers the circuit breaker suspects; the
			// filter is advisory (suspects remain last-resort
			// candidates, which doubles as the recovery probe).
			c.Avoid = h.Suspected
		}
	})
	if err != nil {
		return nil, err
	}
	res, err := v.Verify(ctx, ref, &rpcFetcher{node: n})
	if obs := n.cfg.Observer; obs != nil {
		if err == nil && res.Consensus {
			obs.OnConsensusReached(events.ConsensusReached{
				Validator: n.ID(), Target: ref, Vouchers: res.Vouchers,
				PathLen: len(res.Path), Messages: res.MessagesSent + res.MessagesReceived,
				TrustHits: res.TrustHits,
			})
		} else {
			obs.OnAuditFailed(events.AuditFailed{Validator: n.ID(), Target: ref, Err: err})
		}
	}
	return res, err
}

// Close stops serving and releases the transport.
func (n *Node) Close() error {
	n.closeMu.Lock()
	defer n.closeMu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	err := n.rpc.Close()
	n.wg.Wait()
	return err
}

// rpcFetcher adapts the RPC layer to the core.Fetcher seam.
type rpcFetcher struct {
	node *Node
}

var _ core.Fetcher = (*rpcFetcher)(nil)

// call runs one PoP request against peer with the node's retry policy:
// failed calls back off (exponential, deterministic jitter) and retry
// up to Retry.MaxAttempts, feeding the health tracker on every
// outcome. Safe to repeat because PoP requests are read-only and
// correlation IDs are fresh per attempt — a late reply to an abandoned
// attempt is dropped by the RPC layer.
func (f *rpcFetcher) call(ctx context.Context, peer identity.NodeID, build func(corr, nonce uint64) *wire.Message) (*wire.Message, error) {
	n := f.node
	attempts := n.cfg.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		resp, err := n.rpc.Call(ctx, peer, build)
		if err == nil {
			n.cfg.Health.ReportSuccess(peer)
			return resp, nil
		}
		if ctx.Err() == nil {
			n.cfg.Health.ReportFailure(peer)
		}
		if attempt >= attempts || ctx.Err() != nil {
			return nil, err
		}
		if wait := n.cfg.Retry.Backoff(attempt+1, uint64(peer)); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, err
			case <-timer.C:
			}
		}
		if obs := n.cfg.Observer; obs != nil {
			obs.OnRetryAttempted(events.RetryAttempted{
				Node: n.ID(), Peer: peer, Announce: false, Attempt: attempt + 1,
			})
		}
	}
}

// RequestChild implements core.Fetcher over REQ_CHILD/RPY_CHILD.
func (f *rpcFetcher) RequestChild(ctx context.Context, j identity.NodeID, target digest.Digest) (*block.Header, error) {
	self := f.node.ID()
	if obs := f.node.cfg.Observer; obs != nil {
		obs.OnAuditHop(events.AuditHop{Validator: self, Responder: j, Target: target})
	}
	resp, err := f.call(ctx, j, func(corr, nonce uint64) *wire.Message {
		return wire.NewReqChild(self, j, target, corr, nonce)
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrTimeout, err)
	}
	if resp.Kind != wire.KindRpyChild {
		return nil, core.ErrNoChild
	}
	h, err := resp.DecodeHeaderPayload()
	if err != nil {
		return nil, fmt.Errorf("node: bad RPY_CHILD from %v: %w", j, err)
	}
	return h, nil
}

// FetchBlock implements core.Fetcher over GET_BLOCK/BLOCK_RESP.
func (f *rpcFetcher) FetchBlock(ctx context.Context, ref block.Ref) (*block.Block, error) {
	self := f.node.ID()
	resp, err := f.call(ctx, ref.Node, func(corr, nonce uint64) *wire.Message {
		return wire.NewGetBlock(self, ref.Node, ref, corr, nonce)
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrTimeout, err)
	}
	if resp.Kind != wire.KindBlockResp {
		return nil, ledger.ErrNotFound
	}
	b, err := resp.DecodeBlockPayload()
	if err != nil {
		return nil, fmt.Errorf("node: bad BLOCK_RESP from %v: %w", ref.Node, err)
	}
	return b, nil
}
