package node

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// batchRecorder captures receiver-side batch deliveries (copying the
// shared slices, as the event contract requires) and signals each one
// so tests can wait event-driven instead of polling caches.
type batchRecorder struct {
	events.Nop
	mu      sync.Mutex
	batches map[identity.NodeID][][]digest.Digest // by receiver
	ch      chan identity.NodeID
}

func newBatchRecorder() *batchRecorder {
	return &batchRecorder{ch: make(chan identity.NodeID, 64)}
}

func (r *batchRecorder) OnDigestBatchDelivered(e events.DigestBatchDelivered) {
	r.mu.Lock()
	if r.batches == nil {
		r.batches = make(map[identity.NodeID][][]digest.Digest)
	}
	r.batches[e.To] = append(r.batches[e.To], append([]digest.Digest(nil), e.Digests...))
	r.mu.Unlock()
	r.ch <- e.To
}

// TestAnnounceBatchCoalesces seals a run of blocks on one node and
// flushes them with AnnounceBatch: every neighbor must receive one
// DigestBatch frame carrying all digests in seal order, and its A_i
// must end on the newest digest.
func TestAnnounceBatchCoalesces(t *testing.T) {
	g := topology.PaperFig6() // A-B-C chain
	params := block.DefaultParams()
	params.Difficulty = 2
	var pairs []identity.KeyPair
	for _, id := range g.Nodes() {
		pairs = append(pairs, identity.Deterministic(id, 500))
	}
	ring, err := identity.RingFor(pairs)
	if err != nil {
		t.Fatal(err)
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	rec := newBatchRecorder()
	nodes := make(map[identity.NodeID]*Node)
	for _, kp := range pairs {
		ep, err := netw.Endpoint(kp.ID)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Key: kp, Params: params, Topo: g, Ring: ring, Transport: ep,
			Gamma: 1, Observer: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[kp.ID] = n
	}

	// B (node 1) seals three blocks, then flushes once.
	origin := identity.NodeID(1)
	var ds []digest.Digest
	for i := 0; i < 3; i++ {
		_, d, err := nodes[origin].GenerateLocal([]byte(fmt.Sprintf("body %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}
	nodes[origin].AnnounceBatch(context.Background(), ds)

	// Event-driven wait: one DigestBatchDelivered per neighbor. The
	// event fires after the batch entered A_i, so by the time both
	// arrive the caches are already final.
	for pending := len(g.Neighbors(origin)); pending > 0; pending-- {
		select {
		case <-rec.ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d neighbors ingested the batch", len(g.Neighbors(origin))-pending, len(g.Neighbors(origin)))
		}
	}
	newest := ds[len(ds)-1]
	for _, nb := range g.Neighbors(origin) {
		if got, ok := nodes[nb].Engine().Cache().Get(origin); !ok || got != newest {
			t.Fatalf("receiver %v cache did not end on the newest digest", nb)
		}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, nb := range g.Neighbors(origin) {
		got := rec.batches[nb]
		if len(got) != 1 {
			t.Fatalf("receiver %v saw %d batch deliveries, want 1 coalesced frame", nb, len(got))
		}
		if len(got[0]) != len(ds) {
			t.Fatalf("receiver %v batch carried %d digests, want %d", nb, len(got[0]), len(ds))
		}
		for i := range ds {
			if got[0][i] != ds[i] {
				t.Fatalf("receiver %v digest %d out of seal order", nb, i)
			}
		}
	}
}

// TestBatchCountsAgainstRateGuard pins the DoS defense on the batched
// path: a single frame carrying more digests than AnnounceLimit bans
// the sender just like the equivalent singleton flood.
func TestBatchCountsAgainstRateGuard(t *testing.T) {
	g := topology.PaperFig6()
	params := block.DefaultParams()
	params.Difficulty = 2
	kpA := identity.Deterministic(0, 1)
	kpB := identity.Deterministic(1, 1)
	kpC := identity.Deterministic(2, 1)
	ring, err := identity.RingFor([]identity.KeyPair{kpA, kpB, kpC})
	if err != nil {
		t.Fatal(err)
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	log := newDeliveryLog()
	epB, _ := netw.Endpoint(1)
	nodeB, err := New(Config{
		Key: kpB, Params: params, Topo: g, Ring: ring, Transport: epB,
		Gamma: 1, AnnounceWindow: time.Second, AnnounceLimit: 5,
		Observer: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	epA, _ := netw.Endpoint(0)
	defer epA.Close()
	epC, _ := netw.Endpoint(2)
	defer epC.Close()
	ctx := context.Background()
	var flood []digest.Digest
	for i := 0; i < 50; i++ {
		flood = append(flood, digest.Sum([]byte{byte(i)}))
	}
	msg := wire.NewDigestBatch(0, 1, flood, 1)
	if err := epA.Send(ctx, 1, msg); err != nil {
		t.Fatal(err)
	}
	// Sentinel from B's other neighbor: FIFO inbox plus serial dispatch
	// means its ingest event proves the flood frame was already judged.
	sentinel := digest.Sum([]byte("batch sentinel"))
	if err := epC.Send(ctx, 1, wire.NewDigestAnnounce(2, 1, sentinel, 2)); err != nil {
		t.Fatal(err)
	}
	log.wait(t, 2, 1, sentinel)
	if !nodeB.Blacklist().Banned(0) {
		t.Fatal("batch flooder never banned")
	}
	if _, ok := nodeB.Engine().Cache().Get(0); ok {
		t.Fatal("over-limit batch still updated the digest cache")
	}
}
