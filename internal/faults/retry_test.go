package faults_test

import (
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/faults"
)

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p faults.RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero policy invalid: %v", err)
	}
	if d := p.Backoff(5, 1); d != 0 {
		t.Fatalf("disabled policy backs off %v", d)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    faults.RetryPolicy
	}{
		{"zero base delay", faults.RetryPolicy{MaxAttempts: 3}},
		{"negative max delay", faults.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: -1}},
		{"jitter above one", faults.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 1.5}},
		{"negative jitter", faults.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -0.1}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the policy", tc.name)
		}
	}
	if err := faults.DefaultRetryPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
}

func TestBackoffExponentialAndCapped(t *testing.T) {
	p := faults.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 0, // first try never waits
		2: 10 * time.Millisecond,
		3: 20 * time.Millisecond,
		4: 40 * time.Millisecond,
		5: 80 * time.Millisecond,
	} {
		if got := p.Backoff(attempt, 1); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	p.MaxDelay = 25 * time.Millisecond
	for _, attempt := range []int{4, 5, 8} {
		if got := p.Backoff(attempt, 1); got != 25*time.Millisecond {
			t.Errorf("capped Backoff(%d) = %v, want 25ms", attempt, got)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := faults.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: 0.5, Seed: 42}
	// Same (seed, key, attempt) — same wait, every time.
	if a, b := p.Backoff(3, 7), p.Backoff(3, 7); a != b {
		t.Fatalf("jitter nondeterministic: %v vs %v", a, b)
	}
	// Full backoff for attempt 3 is 20ms; jitter 0.5 keeps the wait in
	// [10ms, 20ms].
	lo, hi := 10*time.Millisecond, 20*time.Millisecond
	varied := false
	var prev time.Duration
	for key := uint64(0); key < 16; key++ {
		d := p.Backoff(3, key)
		if d < lo || d > hi {
			t.Fatalf("Backoff(3, %d) = %v outside [%v, %v]", key, d, lo, hi)
		}
		if key > 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jitter identical across 16 keys — streams not decorrelated")
	}
}
