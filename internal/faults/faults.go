// Package faults is the deterministic fault-injection fabric: a
// seeded Plan that wraps any transport.Transport with frame drops,
// delays, duplicates, per-slot partitions and peer crash windows, so
// the same chaos replays identically over the in-memory network and
// TCP. It also houses the recovery half of the robustness substrate:
// RetryPolicy (exponential backoff with deterministic jitter, bounded
// attempts) and Health (a per-peer consecutive-failure circuit
// breaker).
//
// Every per-frame decision — drop, delay, duplicate — is a pure
// function of (Plan.Seed, sender, receiver, the link's send ordinal),
// not of shared RNG state or wall-clock time. Two runs that issue the
// same sequence of sends on a link therefore suffer the same injected
// faults, on either fabric; only delivery timing differs. Partitions
// and crash windows key on the deployment's logical slot instead, so
// a schedule written against the drive loop ("cut {1,2}|{3,4} during
// slots 3–5") holds regardless of how fast the run executes.
//
// A worked plan:
//
//	plan := faults.Plan{
//		Seed:          42,
//		DropRate:      0.15,                  // lose ~15% of frames
//		DuplicateRate: 0.10,                  // re-deliver ~10% of frames
//		MaxDelay:      5 * time.Millisecond,  // uniform [0, 5ms) delivery delay
//		Partitions: []faults.Partition{{
//			From: 3, Until: 5,                 // heals at slot 5
//			SideA: []identity.NodeID{1, 2}, SideB: []identity.NodeID{3, 4},
//		}},
//		Crashes: []faults.CrashWindow{{Node: 2, From: 6, Until: 8}},
//	}
//	ft := faults.Wrap(endpoint, plan, cluster.Slot, observer)
//
// Wrapping the same plan around every node of a deployment reproduces
// the same chaos on every run with that seed — the property the chaos
// equivalence suite builds on: a plan within the protocol's tolerance
// (recoverable drops, partitions and crashes confined to audit-only
// slots) must leave sealed-header hashes and audit outcomes identical
// to the fault-free run.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// Partition cuts every link between SideA and SideB for logical slots
// in [From, Until) — the partition heals when the deployment reaches
// slot Until. Traffic within a side is unaffected.
type Partition struct {
	From, Until uint32
	SideA       []identity.NodeID
	SideB       []identity.NodeID
}

// cuts reports whether the partition severs the (a, b) link at slot s.
func (p Partition) cuts(a, b identity.NodeID, s uint32) bool {
	if s < p.From || s >= p.Until {
		return false
	}
	return (contains(p.SideA, a) && contains(p.SideB, b)) ||
		(contains(p.SideB, a) && contains(p.SideA, b))
}

func contains(ids []identity.NodeID, id identity.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// CrashWindow takes Node off the air for slots in [From, Until): every
// frame it sends or should receive is dropped, as if the device lost
// power. The node's state survives — at slot Until it "restarts" with
// its stores intact and traffic flows again.
type CrashWindow struct {
	Node        identity.NodeID
	From, Until uint32
}

// Plan is a seeded fault schedule. The zero value injects nothing
// (Active reports false); every field composes independently.
type Plan struct {
	// Seed anchors every per-frame decision. Same plan, same seed, same
	// send sequence — same faults.
	Seed int64
	// DropRate is the per-frame loss probability in [0, 1].
	DropRate float64
	// DuplicateRate is the per-frame probability in [0, 1] that a frame
	// is delivered twice (the copy draws its own delay, so duplicates
	// double as reordering).
	DuplicateRate float64
	// MaxDelay delays each delivered frame uniformly in [0, MaxDelay).
	// Delayed frames overtake each other freely — reordering is implied.
	MaxDelay time.Duration
	// Partitions is the per-slot partition schedule.
	Partitions []Partition
	// Crashes is the per-slot peer crash/restart schedule.
	Crashes []CrashWindow
}

// Active reports whether the plan can inject any fault at all.
func (p Plan) Active() bool {
	return p.DropRate > 0 || p.DuplicateRate > 0 || p.MaxDelay > 0 ||
		len(p.Partitions) > 0 || len(p.Crashes) > 0
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("faults: DropRate %v outside [0, 1]", p.DropRate)
	}
	if p.DuplicateRate < 0 || p.DuplicateRate > 1 {
		return fmt.Errorf("faults: DuplicateRate %v outside [0, 1]", p.DuplicateRate)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative MaxDelay %v", p.MaxDelay)
	}
	for i, part := range p.Partitions {
		if part.Until <= part.From {
			return fmt.Errorf("faults: partition %d never active (From %d, Until %d)", i, part.From, part.Until)
		}
		if len(part.SideA) == 0 || len(part.SideB) == 0 {
			return fmt.Errorf("faults: partition %d has an empty side", i)
		}
	}
	for i, cw := range p.Crashes {
		if cw.Until <= cw.From {
			return fmt.Errorf("faults: crash window %d never active (From %d, Until %d)", i, cw.From, cw.Until)
		}
	}
	return nil
}

// crashed reports whether id is inside a crash window at slot s.
func (p Plan) crashed(id identity.NodeID, s uint32) bool {
	for _, cw := range p.Crashes {
		if cw.Node == id && s >= cw.From && s < cw.Until {
			return true
		}
	}
	return false
}

// partitioned reports whether any scheduled partition cuts (a, b) at
// slot s.
func (p Plan) partitioned(a, b identity.NodeID, s uint32) bool {
	for _, part := range p.Partitions {
		if part.cuts(a, b, s) {
			return true
		}
	}
	return false
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over
// uint64, the primitive behind every seeded per-frame decision.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream is a splitmix64 sequence keyed by one frame's identity.
type stream struct{ s uint64 }

// frameStream keys the decision stream for the n-th frame ever sent
// from 'from' to 'to' under seed.
func frameStream(seed int64, from, to identity.NodeID, n uint64) stream {
	s := mix64(uint64(seed) ^ 0x2545f4914f6cdd1d)
	s = mix64(s ^ uint64(from))
	s = mix64(s ^ uint64(to)<<32)
	s = mix64(s ^ n)
	return stream{s: s}
}

func (st *stream) next() uint64 {
	st.s += 0x9e3779b97f4a7c15
	return mix64(st.s)
}

// float returns a uniform float64 in [0, 1).
func (st *stream) float() float64 { return float64(st.next()>>11) / (1 << 53) }

// Transport wraps an inner transport with a Plan. It implements
// transport.Transport; receive and close pass straight through, Send
// applies the plan. Safe for concurrent use like the fabrics it wraps.
type Transport struct {
	inner transport.Transport
	plan  Plan
	slot  func() uint32
	obs   events.Observer

	mu     sync.Mutex
	seq    map[identity.NodeID]uint64
	closed bool
}

var _ transport.Transport = (*Transport)(nil)

// Wrap applies plan to every frame inner sends. slot supplies the
// deployment's logical slot for partition and crash schedules (nil
// pins slot 0, which still activates windows covering slot 0). obs,
// when non-nil, receives a MessageDropped event per injected loss.
func Wrap(inner transport.Transport, plan Plan, slot func() uint32, obs events.Observer) *Transport {
	if slot == nil {
		slot = func() uint32 { return 0 }
	}
	return &Transport{
		inner: inner,
		plan:  plan,
		slot:  slot,
		obs:   obs,
		seq:   make(map[identity.NodeID]uint64),
	}
}

// Self implements transport.Transport.
func (t *Transport) Self() identity.NodeID { return t.inner.Self() }

// Inbox implements transport.Transport.
func (t *Transport) Inbox() <-chan transport.Envelope { return t.inner.Inbox() }

// Close implements transport.Transport. Frames still sitting in an
// injected delay are abandoned (a delayed frame racing a shutdown is
// indistinguishable from a drop, exactly like the in-memory fabric's
// late losses).
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.inner.Close()
}

// nextSeq returns the send ordinal for the link to 'to', starting at 0.
func (t *Transport) nextSeq(to identity.NodeID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq[to]
	t.seq[to] = n + 1
	return n
}

// drop records one injected loss.
func (t *Transport) drop(to identity.NodeID, kind wire.Kind, why events.DropReason) {
	if t.obs != nil {
		t.obs.OnMessageDropped(events.MessageDropped{
			From: t.Self(), To: to, Kind: uint8(kind), Reason: why,
		})
	}
}

// Send implements transport.Transport: schedule and seeded per-frame
// decisions first, then the surviving copies flow to the inner
// transport. Injected losses return nil — a radio frame lost mid-air
// reports nothing to the sender — while real inner-transport errors
// (unknown peer, backpressure, closed) surface unchanged on the
// undelayed path.
func (t *Transport) Send(ctx context.Context, to identity.NodeID, msg *wire.Message) error {
	self := t.Self()
	s := t.slot()
	switch {
	case t.plan.crashed(self, s), t.plan.crashed(to, s):
		t.drop(to, msg.Kind, events.DropCrash)
		return nil
	case t.plan.partitioned(self, to, s):
		t.drop(to, msg.Kind, events.DropPartition)
		return nil
	}
	st := frameStream(t.plan.Seed, self, to, t.nextSeq(to))
	if t.plan.DropRate > 0 && st.float() < t.plan.DropRate {
		t.drop(to, msg.Kind, events.DropInjected)
		return nil
	}
	delay := time.Duration(0)
	if t.plan.MaxDelay > 0 {
		delay = time.Duration(st.float() * float64(t.plan.MaxDelay))
	}
	var dupDelay time.Duration
	dup := t.plan.DuplicateRate > 0 && st.float() < t.plan.DuplicateRate
	if dup && t.plan.MaxDelay > 0 {
		dupDelay = time.Duration(st.float() * float64(t.plan.MaxDelay))
	}
	var err error
	if delay > 0 {
		t.sendLater(to, msg, delay)
	} else {
		err = t.inner.Send(ctx, to, msg)
	}
	if dup {
		if dupDelay > 0 {
			t.sendLater(to, msg, dupDelay)
		} else if cp, cerr := cloneMessage(msg); cerr == nil {
			// Idempotent receive upstream makes the copy harmless.
			_ = t.inner.Send(ctx, to, cp)
		}
	}
	return err
}

// sendLater delivers a copy of msg after d. The copy is taken now:
// callers may retarget or reuse msg the moment Send returns (the
// transport contract), so a delayed send cannot retain it.
func (t *Transport) sendLater(to identity.NodeID, msg *wire.Message, d time.Duration) {
	cp, err := cloneMessage(msg)
	if err != nil {
		t.drop(to, msg.Kind, events.DropInjected)
		return
	}
	kind := cp.Kind
	time.AfterFunc(d, func() {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if err := t.inner.Send(context.Background(), to, cp); err != nil &&
			!errors.Is(err, transport.ErrClosed) {
			t.drop(to, kind, events.DropUnreachable)
		}
	})
}

// cloneMessage deep-copies a message through the codec, the same trick
// the in-memory fabric uses to keep sender and receiver memory
// disjoint.
func cloneMessage(msg *wire.Message) (*wire.Message, error) {
	return wire.Decode(msg.AppendEncode(make([]byte, 0, msg.WireSize())))
}
