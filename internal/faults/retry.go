package faults

import (
	"fmt"
	"time"
)

// RetryPolicy bounds re-transmission of announcement frames and PoP
// requests: exponential backoff from BaseDelay, capped at MaxDelay,
// with deterministic jitter. The zero value disables retries entirely
// — the protocol's baseline behavior, where announcement loss is
// tolerated (neighbors pick up the next digest) and a PoP timeout
// moves the validator to another candidate.
//
// Retries are only safe because receive is idempotent: every
// announcement ingest dedups on the digest (a re-delivered digest is
// discarded before the Sec. IV-D5 DoS guard charges the sender), and
// PoP requests are read-only with per-call correlation IDs, so a
// duplicated or re-sent frame can never corrupt A_i nor double-charge
// a rate guard.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the wait before the second attempt; attempt k waits
	// BaseDelay << (k-1), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
	// Jitter is the fraction of each backoff drawn uniformly at random
	// in [0, 1]: wait = backoff × (1 − Jitter + Jitter·u). Jitter is
	// deterministic in (Seed, key, attempt), so identical runs back off
	// identically.
	Jitter float64
	// Seed anchors the jitter stream.
	Seed int64
}

// DefaultRetryPolicy is a sane starting point for lossy deployments:
// four attempts backing off 20ms → 40ms → 80ms with half-width jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.5}
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Validate checks the policy's parameters.
func (p RetryPolicy) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.BaseDelay <= 0 {
		return fmt.Errorf("faults: retry BaseDelay %v must be positive", p.BaseDelay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative retry MaxDelay %v", p.MaxDelay)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("faults: retry Jitter %v outside [0, 1]", p.Jitter)
	}
	return nil
}

// Backoff returns the wait before attempt number attempt (counting
// from 2; attempt 1 is the initial try and never waits). key
// distinguishes concurrent retry streams — e.g. a digest prefix or the
// peer ID — so their jitters decorrelate.
func (p RetryPolicy) Backoff(attempt int, key uint64) time.Duration {
	if attempt < 2 || !p.Enabled() {
		return 0
	}
	d := p.BaseDelay
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		st := frameStream(p.Seed, 0, 0, key^uint64(attempt)<<56)
		u := st.float()
		d = time.Duration(float64(d) * (1 - p.Jitter + p.Jitter*u))
	}
	return d
}
