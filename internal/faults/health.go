package faults

import (
	"sync"

	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
)

// DefaultSuspectThreshold is the consecutive-failure count that opens
// a peer's circuit. It is deliberately below the blacklist's ban
// threshold (3 strikes, Sec. IV-D6): a flaky-but-honest peer gets
// routed around before it can accumulate enough audit timeouts to be
// banned outright, and bans are what the protocol reserves for
// adversarial behavior.
const DefaultSuspectThreshold = 2

// Health is one node's per-peer circuit breaker. Transport failures
// (send errors, PoP timeouts) count consecutively per peer; crossing
// the threshold marks the peer suspected, and audits route around
// suspected peers (core.ValidatorConfig.Avoid) while announcements
// keep flowing to them — broadcast digests are cheap, and each one
// doubles as a recovery probe. Any subsequent success (a send that
// goes through, a PoP reply) closes the circuit and re-admits the
// peer.
//
// Suspicion is local, advisory state: it never feeds the blacklist,
// never blocks inbound traffic, and resets on the first success, so a
// healthy network converges back to full routing with no operator
// action.
type Health struct {
	node      identity.NodeID
	threshold int
	obs       events.Observer

	mu       sync.Mutex
	failures map[identity.NodeID]int
	suspects map[identity.NodeID]struct{}
}

// NewHealth builds the tracker for node. threshold <= 0 selects
// DefaultSuspectThreshold. obs, when non-nil, receives PeerSuspected
// and PeerRecovered transitions.
func NewHealth(node identity.NodeID, threshold int, obs events.Observer) *Health {
	if threshold <= 0 {
		threshold = DefaultSuspectThreshold
	}
	return &Health{
		node:      node,
		threshold: threshold,
		obs:       obs,
		failures:  make(map[identity.NodeID]int),
		suspects:  make(map[identity.NodeID]struct{}),
	}
}

// ReportFailure records one failed interaction with peer. Crossing the
// consecutive-failure threshold opens the circuit (emitting
// PeerSuspected once per opening).
func (h *Health) ReportFailure(peer identity.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	n := h.failures[peer] + 1
	h.failures[peer] = n
	opened := false
	if _, sus := h.suspects[peer]; !sus && n >= h.threshold {
		h.suspects[peer] = struct{}{}
		opened = true
	}
	h.mu.Unlock()
	if opened && h.obs != nil {
		h.obs.OnPeerSuspected(events.PeerSuspected{Node: h.node, Peer: peer, Failures: n})
	}
}

// ReportSuccess records one successful interaction with peer, clearing
// its failure streak and closing its circuit (emitting PeerRecovered
// when it was open).
func (h *Health) ReportSuccess(peer identity.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	recovered := false
	if _, sus := h.suspects[peer]; sus {
		delete(h.suspects, peer)
		recovered = true
	}
	if h.failures[peer] != 0 {
		delete(h.failures, peer)
	}
	h.mu.Unlock()
	if recovered && h.obs != nil {
		h.obs.OnPeerRecovered(events.PeerRecovered{Node: h.node, Peer: peer})
	}
}

// Suspect force-opens peer's circuit immediately, regardless of its
// failure streak — for out-of-band knowledge that the peer is gone (a
// Leave broadcast, an operator command). Emits PeerSuspected when the
// circuit was closed; a later success still re-admits the peer as
// usual.
func (h *Health) Suspect(peer identity.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	_, already := h.suspects[peer]
	if !already {
		h.suspects[peer] = struct{}{}
	}
	n := h.failures[peer]
	h.mu.Unlock()
	if !already && h.obs != nil {
		h.obs.OnPeerSuspected(events.PeerSuspected{Node: h.node, Peer: peer, Failures: n})
	}
}

// Suspected reports whether peer's circuit is open. Safe to pass as
// core.ValidatorConfig.Avoid.
func (h *Health) Suspected(peer identity.NodeID) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	_, sus := h.suspects[peer]
	h.mu.Unlock()
	return sus
}

// SuspectCount returns the number of currently open circuits.
func (h *Health) SuspectCount() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.suspects)
}
