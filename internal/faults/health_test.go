package faults_test

import (
	"testing"

	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
)

func TestHealthCircuitOpensAtThreshold(t *testing.T) {
	rec := &recorder{}
	h := faults.NewHealth(1, 0, rec) // 0 selects DefaultSuspectThreshold (2)

	h.ReportFailure(9)
	if h.Suspected(9) {
		t.Fatal("suspected after one failure")
	}
	h.ReportFailure(9)
	if !h.Suspected(9) {
		t.Fatal("not suspected after threshold failures")
	}
	if h.SuspectCount() != 1 {
		t.Fatalf("SuspectCount = %d, want 1", h.SuspectCount())
	}
	// Further failures keep the circuit open without re-announcing it.
	h.ReportFailure(9)
	rec.mu.Lock()
	suspects := append([]events.PeerSuspected(nil), rec.suspects...)
	rec.mu.Unlock()
	if len(suspects) != 1 {
		t.Fatalf("PeerSuspected fired %d times, want once", len(suspects))
	}
	if suspects[0] != (events.PeerSuspected{Node: 1, Peer: 9, Failures: 2}) {
		t.Fatalf("PeerSuspected = %+v", suspects[0])
	}

	h.ReportSuccess(9)
	if h.Suspected(9) || h.SuspectCount() != 0 {
		t.Fatal("success did not close the circuit")
	}
	rec.mu.Lock()
	recovers := append([]events.PeerRecovered(nil), rec.recovers...)
	rec.mu.Unlock()
	if len(recovers) != 1 || recovers[0] != (events.PeerRecovered{Node: 1, Peer: 9}) {
		t.Fatalf("PeerRecovered = %+v, want one {1 9}", recovers)
	}
	// A success on a healthy peer stays silent.
	h.ReportSuccess(9)
	rec.mu.Lock()
	n := len(rec.recovers)
	rec.mu.Unlock()
	if n != 1 {
		t.Fatalf("PeerRecovered fired %d times, want once", n)
	}
}

func TestHealthSuccessResetsFailureStreak(t *testing.T) {
	h := faults.NewHealth(1, 2, nil)
	h.ReportFailure(5)
	h.ReportSuccess(5)
	h.ReportFailure(5)
	if h.Suspected(5) {
		t.Fatal("non-consecutive failures opened the circuit")
	}
	h.ReportFailure(5)
	if !h.Suspected(5) {
		t.Fatal("consecutive failures after a reset did not open the circuit")
	}
}

func TestHealthTracksPeersIndependently(t *testing.T) {
	h := faults.NewHealth(1, 2, nil)
	for i := 0; i < 2; i++ {
		h.ReportFailure(5)
		h.ReportFailure(6)
	}
	if !h.Suspected(5) || !h.Suspected(6) || h.SuspectCount() != 2 {
		t.Fatal("both peers should be suspected")
	}
	h.ReportSuccess(5)
	if h.Suspected(5) || !h.Suspected(6) || h.SuspectCount() != 1 {
		t.Fatal("recovery of one peer leaked to the other")
	}
}

func TestHealthNilReceiverIsSafe(t *testing.T) {
	var h *faults.Health
	h.ReportFailure(1)
	h.ReportSuccess(1)
	h.Suspect(1)
	if h.Suspected(1) {
		t.Fatal("nil tracker suspects")
	}
	if h.SuspectCount() != 0 {
		t.Fatal("nil tracker counts suspects")
	}
}

func TestHealthSuspectForcesOpen(t *testing.T) {
	rec := &recorder{}
	h := faults.NewHealth(1, 0, rec)

	h.Suspect(9)
	if !h.Suspected(9) {
		t.Fatal("Suspect did not open the circuit")
	}
	// Re-suspecting an open circuit stays silent.
	h.Suspect(9)
	rec.mu.Lock()
	n := len(rec.suspects)
	rec.mu.Unlock()
	if n != 1 {
		t.Fatalf("PeerSuspected fired %d times, want once", n)
	}
	// The usual recovery path still re-admits the peer.
	h.ReportSuccess(9)
	if h.Suspected(9) {
		t.Fatal("success did not close a force-opened circuit")
	}
}
