package faults_test

import (
	"context"
	"encoding/binary"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/node"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
)

// batchAck signals every receiver-side batch ingest.
type batchAck struct {
	events.Nop
	ch chan struct{}
}

func (a *batchAck) OnDigestBatchDelivered(events.DigestBatchDelivered) {
	a.ch <- struct{}{}
}

// BenchmarkHotpathFaultFree measures the live announcement round trip
// in the fault-free configuration every deployment runs by default: no
// fault plan (the transport stays unwrapped — WithFaults' zero plan
// adds no layer), a zero retry policy, and the health tracker attached.
// One op is an 8-digest AnnounceBatch from a node to its neighbor,
// awaited until the receiver ingests the batch into A_i — the path the
// idempotent-receive dedup and health bookkeeping sit on, so this is
// the number that proves the robustness substrate costs nothing when
// nothing fails.
func BenchmarkHotpathFaultFree(b *testing.B) {
	g := topology.PaperFig6() // chain 0-1-2: node 0 announces to its one neighbor
	params := block.DefaultParams()
	kp0 := identity.Deterministic(0, 700)
	kp1 := identity.Deterministic(1, 700)
	ring, err := identity.RingFor([]identity.KeyPair{kp0, kp1})
	if err != nil {
		b.Fatal(err)
	}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep0, _ := netw.Endpoint(0)
	ep1, _ := netw.Endpoint(1)
	ack := &batchAck{ch: make(chan struct{}, 1)}
	sender, err := node.New(node.Config{
		Key: kp0, Params: params, Topo: g, Ring: ring, Transport: ep0,
		Health: faults.NewHealth(0, 0, nil),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	receiver, err := node.New(node.Config{
		Key: kp1, Params: params, Topo: g, Ring: ring, Transport: ep1,
		Health:   faults.NewHealth(1, 0, nil),
		Observer: ack,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer receiver.Close()

	ctx := context.Background()
	ds := make([]digest.Digest, 8)
	var ctr [8]byte
	seq := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ds {
			seq++
			binary.LittleEndian.PutUint64(ctr[:], seq)
			ds[j] = digest.Sum(ctr[:])
		}
		sender.AnnounceBatch(ctx, ds)
		select {
		case <-ack.ch:
		case <-time.After(5 * time.Second):
			b.Fatal("batch never ingested")
		}
	}
}
