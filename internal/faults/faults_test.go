package faults_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// recorder captures fault-layer events for assertions.
type recorder struct {
	events.Nop
	mu        sync.Mutex
	drops     []events.MessageDropped
	suspects  []events.PeerSuspected
	recovers  []events.PeerRecovered
	retries   []events.RetryAttempted
}

func (r *recorder) OnMessageDropped(e events.MessageDropped) {
	r.mu.Lock()
	r.drops = append(r.drops, e)
	r.mu.Unlock()
}

func (r *recorder) OnPeerSuspected(e events.PeerSuspected) {
	r.mu.Lock()
	r.suspects = append(r.suspects, e)
	r.mu.Unlock()
}

func (r *recorder) OnPeerRecovered(e events.PeerRecovered) {
	r.mu.Lock()
	r.recovers = append(r.recovers, e)
	r.mu.Unlock()
}

func (r *recorder) OnRetryAttempted(e events.RetryAttempted) {
	r.mu.Lock()
	r.retries = append(r.retries, e)
	r.mu.Unlock()
}

func (r *recorder) dropReasons() []events.DropReason {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]events.DropReason, len(r.drops))
	for i, d := range r.drops {
		out[i] = d.Reason
	}
	return out
}

// announce builds a distinct digest announcement for ordinal i.
func announce(from, to identity.NodeID, i uint64) *wire.Message {
	return wire.NewDigestAnnounce(from, to, digest.Sum([]byte{byte(i), byte(i >> 8)}), i)
}

// collectNonces drains an inbox until it stays quiet, returning the
// nonce sequence of delivered frames.
func collectNonces(inbox <-chan transport.Envelope, quiet time.Duration) []uint64 {
	var nonces []uint64
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return nonces
			}
			nonces = append(nonces, env.Msg.Nonce)
		case <-time.After(quiet):
			return nonces
		}
	}
}

func TestPlanZeroValueIsInactive(t *testing.T) {
	var p faults.Plan
	if p.Active() {
		t.Fatal("zero plan reports active")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero plan invalid: %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan faults.Plan
	}{
		{"negative drop rate", faults.Plan{DropRate: -0.1}},
		{"drop rate above one", faults.Plan{DropRate: 1.5}},
		{"negative duplicate rate", faults.Plan{DuplicateRate: -0.1}},
		{"duplicate rate above one", faults.Plan{DuplicateRate: 2}},
		{"negative delay", faults.Plan{MaxDelay: -time.Millisecond}},
		{"empty partition window", faults.Plan{Partitions: []faults.Partition{
			{From: 5, Until: 5, SideA: []identity.NodeID{1}, SideB: []identity.NodeID{2}},
		}}},
		{"empty partition side", faults.Plan{Partitions: []faults.Partition{
			{From: 1, Until: 2, SideA: []identity.NodeID{1}},
		}}},
		{"empty crash window", faults.Plan{Crashes: []faults.CrashWindow{
			{Node: 1, From: 3, Until: 3},
		}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
		}
	}
}

// TestSeededDropsReplayIdentically: two independent runs of the same
// plan over the same send sequence lose exactly the same frames.
func TestSeededDropsReplayIdentically(t *testing.T) {
	plan := faults.Plan{Seed: 7, DropRate: 0.5}
	run := func() []uint64 {
		netw := transport.NewNetwork()
		defer netw.Close()
		ep1, _ := netw.Endpoint(1)
		ep2, _ := netw.Endpoint(2)
		ft := faults.Wrap(ep1, plan, nil, nil)
		ctx := context.Background()
		for i := uint64(0); i < 200; i++ {
			if err := ft.Send(ctx, 2, announce(1, 2, i)); err != nil {
				t.Fatal(err)
			}
		}
		return collectNonces(ep2.Inbox(), 50*time.Millisecond)
	}
	first, second := run(), run()
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("drop rate 0.5 delivered %d of 200 frames", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("replay diverged: %d vs %d deliveries", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at delivery %d: nonce %d vs %d", i, first[i], second[i])
		}
	}
}

// TestSeededDropsReplayAcrossFabrics: the same plan injects the same
// losses whether the wrapped transport is the in-memory fabric or TCP.
func TestSeededDropsReplayAcrossFabrics(t *testing.T) {
	plan := faults.Plan{Seed: 11, DropRate: 0.4}
	ctx := context.Background()

	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ep2, _ := netw.Endpoint(2)
	ftMem := faults.Wrap(ep1, plan, nil, nil)
	for i := uint64(0); i < 200; i++ {
		if err := ftMem.Send(ctx, 2, announce(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	mem := collectNonces(ep2.Inbox(), 50*time.Millisecond)

	tn1, err := transport.ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tn1.Close()
	tn2, err := transport.ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Close()
	tn1.AddPeer(2, tn2.Addr())
	ftTCP := faults.Wrap(tn1, plan, nil, nil)
	for i := uint64(0); i < 200; i++ {
		if err := ftTCP.Send(ctx, 2, announce(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	tcp := collectNonces(tn2.Inbox(), 200*time.Millisecond)

	if len(mem) != len(tcp) {
		t.Fatalf("fabrics diverged: inmem delivered %d, tcp %d", len(mem), len(tcp))
	}
	for i := range mem {
		if mem[i] != tcp[i] {
			t.Fatalf("fabrics diverged at delivery %d: nonce %d vs %d", i, mem[i], tcp[i])
		}
	}
}

// TestPartitionCutsAndHeals: a scheduled partition drops cross-side
// frames exactly during [From, Until), leaves intra-side traffic
// alone, and heals at Until.
func TestPartitionCutsAndHeals(t *testing.T) {
	var slot atomic.Uint32
	rec := &recorder{}
	plan := faults.Plan{Partitions: []faults.Partition{
		{From: 1, Until: 2, SideA: []identity.NodeID{1}, SideB: []identity.NodeID{2}},
	}}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ep2, _ := netw.Endpoint(2)
	ep3, _ := netw.Endpoint(3)
	ft := faults.Wrap(ep1, plan, slot.Load, rec)
	ctx := context.Background()

	send := func(to identity.NodeID, i uint64) {
		t.Helper()
		if err := ft.Send(ctx, to, announce(1, to, i)); err != nil {
			t.Fatal(err)
		}
	}
	send(2, 0) // slot 0: before the partition
	slot.Store(1)
	send(2, 1) // slot 1: cut
	send(3, 2) // slot 1: node 3 is on neither side — unaffected
	slot.Store(2)
	send(2, 3) // slot 2: healed

	got := collectNonces(ep2.Inbox(), 50*time.Millisecond)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("partitioned link delivered nonces %v, want [0 3]", got)
	}
	side := collectNonces(ep3.Inbox(), 50*time.Millisecond)
	if len(side) != 1 || side[0] != 2 {
		t.Fatalf("intra-side link delivered nonces %v, want [2]", side)
	}
	reasons := rec.dropReasons()
	if len(reasons) != 1 || reasons[0] != events.DropPartition {
		t.Fatalf("drop reasons %v, want one DropPartition", reasons)
	}
}

// TestCrashWindowSilencesBothDirections: a crashed node neither sends
// nor receives during its window and resumes afterwards with no
// residue.
func TestCrashWindowSilencesBothDirections(t *testing.T) {
	var slot atomic.Uint32
	rec := &recorder{}
	plan := faults.Plan{Crashes: []faults.CrashWindow{{Node: 2, From: 1, Until: 2}}}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ep2, _ := netw.Endpoint(2)
	ft1 := faults.Wrap(ep1, plan, slot.Load, rec)
	ft2 := faults.Wrap(ep2, plan, slot.Load, rec)
	ctx := context.Background()

	slot.Store(1)
	if err := ft1.Send(ctx, 2, announce(1, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := ft2.Send(ctx, 1, announce(2, 1, 20)); err != nil {
		t.Fatal(err)
	}
	slot.Store(2)
	if err := ft1.Send(ctx, 2, announce(1, 2, 11)); err != nil {
		t.Fatal(err)
	}
	if err := ft2.Send(ctx, 1, announce(2, 1, 21)); err != nil {
		t.Fatal(err)
	}

	to2 := collectNonces(ep2.Inbox(), 50*time.Millisecond)
	if len(to2) != 1 || to2[0] != 11 {
		t.Fatalf("crashed receiver got nonces %v, want [11]", to2)
	}
	to1 := collectNonces(ep1.Inbox(), 50*time.Millisecond)
	if len(to1) != 1 || to1[0] != 21 {
		t.Fatalf("crashed sender delivered nonces %v, want [21]", to1)
	}
	reasons := rec.dropReasons()
	if len(reasons) != 2 {
		t.Fatalf("drops %v, want two DropCrash", reasons)
	}
	for _, r := range reasons {
		if r != events.DropCrash {
			t.Fatalf("drop reason %v, want DropCrash", r)
		}
	}
}

// TestDuplicateRateDeliversTwice: DuplicateRate 1 with no delay turns
// every send into exactly two identical deliveries.
func TestDuplicateRateDeliversTwice(t *testing.T) {
	plan := faults.Plan{Seed: 3, DuplicateRate: 1}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ep2, _ := netw.Endpoint(2)
	ft := faults.Wrap(ep1, plan, nil, nil)
	ctx := context.Background()
	for i := uint64(0); i < 5; i++ {
		if err := ft.Send(ctx, 2, announce(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collectNonces(ep2.Inbox(), 50*time.Millisecond)
	want := []uint64{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery sequence %v, want %v", got, want)
		}
	}
}

// TestDelayedFramesAllArrive: a pure-delay plan reorders but never
// loses — every frame lands within the delay bound.
func TestDelayedFramesAllArrive(t *testing.T) {
	plan := faults.Plan{Seed: 5, MaxDelay: 3 * time.Millisecond}
	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ep2, _ := netw.Endpoint(2)
	ft := faults.Wrap(ep1, plan, nil, nil)
	ctx := context.Background()
	const n = 50
	for i := uint64(0); i < n; i++ {
		if err := ft.Send(ctx, 2, announce(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool, n)
	deadline := time.After(2 * time.Second)
	for len(seen) < n {
		select {
		case env := <-ep2.Inbox():
			seen[env.Msg.Nonce] = true
		case <-deadline:
			t.Fatalf("only %d of %d delayed frames arrived", len(seen), n)
		}
	}
}

// TestWrapperPassesInnerErrors: real transport errors on the undelayed
// path surface unchanged through the fault layer.
func TestWrapperPassesInnerErrors(t *testing.T) {
	netw := transport.NewNetwork()
	defer netw.Close()
	ep1, _ := netw.Endpoint(1)
	ft := faults.Wrap(ep1, faults.Plan{Seed: 1}, nil, nil)
	err := ft.Send(context.Background(), 99, announce(1, 99, 0))
	if !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("unknown peer error = %v, want ErrUnknownPeer", err)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	err = ft.Send(context.Background(), 1, announce(1, 1, 1))
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}
