// Package digest provides the 256-bit hash primitive used throughout 2LDAG.
//
// The paper (Sec. III-B) fixes the hash size f_H to 256 bits and uses a
// single hash function H(.) for block-header digests, proof-of-work
// preimages and signature preimages. This package pins H to SHA-256 and
// wraps it in a comparable value type so digests can key maps and be
// copied without aliasing.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
)

// Size is the digest length in bytes (f_H = 256 bits in the paper).
const Size = sha256.Size

// Bits is the digest length in bits.
const Bits = Size * 8

// ErrBadHex reports that a hex string cannot be decoded into a Digest.
var ErrBadHex = errors.New("digest: malformed hex digest")

// Digest is a 256-bit SHA-256 hash value. The zero value is the all-zero
// digest, which never results from hashing data and therefore doubles as
// a "no digest" sentinel (see IsZero).
type Digest [Size]byte

// Sum hashes the concatenation of parts and returns the digest.
func Sum(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p) // sha256 never returns an error
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// SumString hashes a string without forcing callers to convert to []byte.
func SumString(s string) Digest {
	return sha256.Sum256([]byte(s))
}

// FromHex parses a 64-character hex string into a Digest.
func FromHex(s string) (Digest, error) {
	var d Digest
	if len(s) != Size*2 {
		return d, fmt.Errorf("%w: length %d, want %d", ErrBadHex, len(s), Size*2)
	}
	if _, err := hex.Decode(d[:], []byte(s)); err != nil {
		return d, fmt.Errorf("%w: %v", ErrBadHex, err)
	}
	return d, nil
}

// Hex returns the full lowercase hex encoding.
func (d Digest) Hex() string {
	return hex.EncodeToString(d[:])
}

// Short returns the first 8 hex characters, for logs and error messages.
func (d Digest) Short() string {
	return hex.EncodeToString(d[:4])
}

// String implements fmt.Stringer with the short form.
func (d Digest) String() string {
	return d.Short()
}

// IsZero reports whether d is the all-zero sentinel digest.
func (d Digest) IsZero() bool {
	return d == Digest{}
}

// Compare orders digests lexicographically: -1 if d < other, 0 if equal,
// +1 if d > other.
func (d Digest) Compare(other Digest) int {
	for i := range d {
		switch {
		case d[i] < other[i]:
			return -1
		case d[i] > other[i]:
			return 1
		}
	}
	return 0
}

// LeadingZeroBits counts the number of leading zero bits, interpreting the
// digest as a big-endian 256-bit integer. Used by the proof-of-work check
// (paper Eq. 5): requiring k leading zeros is equivalent to requiring the
// digest value to be at most 2^(256-k)-1.
func (d Digest) LeadingZeroBits() int {
	n := 0
	for _, b := range d {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}
