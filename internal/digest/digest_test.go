package digest

import (
	"crypto/sha256"
	"strings"
	"testing"
	"testing/quick"
)

func TestSumMatchesSHA256(t *testing.T) {
	data := []byte("2ldag proof of path")
	want := sha256.Sum256(data)
	got := Sum(data)
	if got != Digest(want) {
		t.Fatalf("Sum mismatch: got %s want %x", got.Hex(), want)
	}
}

func TestSumConcatenation(t *testing.T) {
	a, b := []byte("hello "), []byte("world")
	joined := Sum(append(append([]byte{}, a...), b...))
	parts := Sum(a, b)
	if joined != parts {
		t.Fatalf("Sum(a||b) != Sum(a, b)")
	}
}

func TestSumStringAgrees(t *testing.T) {
	if SumString("abc") != Sum([]byte("abc")) {
		t.Fatal("SumString disagrees with Sum")
	}
}

func TestHexRoundTrip(t *testing.T) {
	d := Sum([]byte("round trip"))
	back, err := FromHex(d.Hex())
	if err != nil {
		t.Fatalf("FromHex: %v", err)
	}
	if back != d {
		t.Fatalf("round trip mismatch: %s vs %s", back.Hex(), d.Hex())
	}
}

func TestFromHexErrors(t *testing.T) {
	cases := []string{
		"",
		"abcd",
		strings.Repeat("z", 64),
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
	}
	for _, c := range cases {
		if _, err := FromHex(c); err == nil {
			t.Errorf("FromHex(%q) succeeded, want error", c)
		}
	}
}

func TestIsZero(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest not reported as zero")
	}
	if Sum([]byte("x")).IsZero() {
		t.Fatal("hash of data reported as zero")
	}
}

func TestCompare(t *testing.T) {
	a := Digest{0x01}
	b := Digest{0x02}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare ordering wrong")
	}
}

func TestLeadingZeroBits(t *testing.T) {
	cases := []struct {
		d    Digest
		want int
	}{
		{Digest{0x80}, 0},
		{Digest{0x40}, 1},
		{Digest{0x01}, 7},
		{Digest{0x00, 0x80}, 8},
		{Digest{0x00, 0x00, 0x01}, 23},
		{Digest{}, 256},
	}
	for _, c := range cases {
		if got := c.d.LeadingZeroBits(); got != c.want {
			t.Errorf("LeadingZeroBits(%s) = %d, want %d", c.d.Hex(), got, c.want)
		}
	}
}

func TestShortAndString(t *testing.T) {
	d := Sum([]byte("short"))
	if len(d.Short()) != 8 {
		t.Fatalf("Short length %d, want 8", len(d.Short()))
	}
	if d.String() != d.Short() {
		t.Fatal("String should equal Short")
	}
}

func TestQuickHexRoundTrip(t *testing.T) {
	f := func(raw [Size]byte) bool {
		d := Digest(raw)
		back, err := FromHex(d.Hex())
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistency(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		da, db := Digest(a), Digest(b)
		c := da.Compare(db)
		switch {
		case da == db:
			return c == 0
		case c == 0:
			return false
		default:
			return c == -db.Compare(da)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
