package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/identity"
)

// Snapshot persistence: IoT devices reboot, and a 2LDAG node that loses
// S_i loses the data only it stores (the whole point of the
// architecture is that nobody else holds it). WriteSnapshot/ReadSnapshot
// serialize a store as a stream of length-prefixed block encodings with
// a magic header, so deployments can persist to flash and resume.

// snapshotMagic identifies store snapshot streams ("2LDG" + version 1).
var snapshotMagic = [8]byte{'2', 'L', 'D', 'G', 'S', 'N', 'P', 1}

// Snapshot errors.
var (
	ErrBadSnapshot = errors.New("ledger: malformed snapshot")
	ErrWrongOwner  = errors.New("ledger: snapshot belongs to another node")
)

// maxSnapshotBlock bounds one serialized block in a snapshot.
const maxSnapshotBlock = block.MaxBodyLen + 1<<20

// WriteSnapshot serializes the store: magic, owner, block count, then
// each block length-prefixed in sequence order.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("ledger: writing snapshot header: %w", err)
	}
	var meta [8]byte
	binary.LittleEndian.PutUint32(meta[:4], uint32(s.owner))
	binary.LittleEndian.PutUint32(meta[4:], uint32(len(s.blocks)))
	if _, err := bw.Write(meta[:]); err != nil {
		return fmt.Errorf("ledger: writing snapshot meta: %w", err)
	}
	for _, b := range s.blocks {
		enc := block.Encode(b)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("ledger: writing block length: %w", err)
		}
		if _, err := bw.Write(enc); err != nil {
			return fmt.Errorf("ledger: writing block: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a store from a snapshot stream, rebuilding
// every index and re-validating the chain structure (sequence numbers
// and ownership). Cryptographic validity is the caller's concern (use
// block.Params.Validate when restoring from untrusted media).
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var meta [8]byte
	if _, err := io.ReadFull(br, meta[:]); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	owner := identity.NodeID(binary.LittleEndian.Uint32(meta[:4]))
	count := binary.LittleEndian.Uint32(meta[4:])
	s := NewStore(owner)
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: block %d length: %v", ErrBadSnapshot, i, err)
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > maxSnapshotBlock {
			return nil, fmt.Errorf("%w: block %d size %d", ErrBadSnapshot, i, size)
		}
		enc := make([]byte, size)
		if _, err := io.ReadFull(br, enc); err != nil {
			return nil, fmt.Errorf("%w: block %d body: %v", ErrBadSnapshot, i, err)
		}
		b, err := block.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
		if err := s.Append(b); err != nil {
			if errors.Is(err, ErrWrongOrigin) {
				return nil, fmt.Errorf("%w: block %d origin %v", ErrWrongOwner, i, b.Header.Origin)
			}
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
	}
	return s, nil
}
