package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/par"
)

// Snapshot persistence: IoT devices reboot, and a 2LDAG node that loses
// S_i loses the data only it stores (the whole point of the
// architecture is that nobody else holds it). WriteSnapshot/ReadSnapshot
// serialize a store as a stream of length-prefixed block encodings with
// a magic header, so deployments can persist to flash and resume.
//
// Two stream versions exist:
//
//   - v1 (Store.WriteSnapshot / ReadSnapshot): S_i only — magic, owner,
//     block count, length-prefixed blocks.
//   - v2 (NodeState.WriteSnapshot / ReadSnapshotState): the whole node —
//     v1's block section plus the trust store's headers (H_i, insertion
//     order), the digest cache (A_i, node-sorted), the trust cap, and a
//     trailing CRC-32C sealing the stream. This is what FileBackend
//     compacts to, so recovery restores the whole node, not just S_i.
//
// The v2 read path accepts v1 streams (empty H_i/A_i), so pre-existing
// snapshots stay readable.

// snapshotMagic identifies store snapshot streams ("2LDG" + version 1).
var snapshotMagic = [8]byte{'2', 'L', 'D', 'G', 'S', 'N', 'P', 1}

// snapshotMagicV2 identifies whole-node snapshot streams (version 2).
var snapshotMagicV2 = [8]byte{'2', 'L', 'D', 'G', 'S', 'N', 'P', 2}

// Snapshot errors.
var (
	ErrBadSnapshot = errors.New("ledger: malformed snapshot")
	ErrWrongOwner  = errors.New("ledger: snapshot belongs to another node")
)

// maxSnapshotBlock bounds one serialized block in a snapshot.
const maxSnapshotBlock = block.MaxBodyLen + 1<<20

// WriteSnapshot serializes the store: magic, owner, block count, then
// each block length-prefixed in sequence order.
//
// Both index modes snapshot identically: an arena-backed compact store
// (NewStoreInArena) shares its *blocks* with the arena but still owns
// the ordered log slice — only the responder index is externalized —
// so serializing the log needs no arena access and the result is
// byte-identical to a sharded store holding the same blocks
// (TestSnapshotArenaStore pins this).
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("ledger: writing snapshot header: %w", err)
	}
	var meta [8]byte
	binary.LittleEndian.PutUint32(meta[:4], uint32(s.owner))
	binary.LittleEndian.PutUint32(meta[4:], uint32(len(s.blocks)))
	if _, err := bw.Write(meta[:]); err != nil {
		return fmt.Errorf("ledger: writing snapshot meta: %w", err)
	}
	for _, b := range s.blocks {
		enc := block.Encode(b)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("ledger: writing block length: %w", err)
		}
		if _, err := bw.Write(enc); err != nil {
			return fmt.Errorf("ledger: writing block: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a store from a snapshot stream, rebuilding
// every index and re-validating the chain structure (sequence numbers
// and ownership). Cryptographic validity is the caller's concern (use
// block.Params.Validate when restoring from untrusted media).
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var meta [8]byte
	if _, err := io.ReadFull(br, meta[:]); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	owner := identity.NodeID(binary.LittleEndian.Uint32(meta[:4]))
	count := binary.LittleEndian.Uint32(meta[4:])
	s := NewStore(owner)
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: block %d length: %v", ErrBadSnapshot, i, err)
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > maxSnapshotBlock {
			return nil, fmt.Errorf("%w: block %d size %d", ErrBadSnapshot, i, size)
		}
		enc := make([]byte, size)
		if _, err := io.ReadFull(br, enc); err != nil {
			return nil, fmt.Errorf("%w: block %d body: %v", ErrBadSnapshot, i, err)
		}
		b, err := block.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
		if err := s.Append(b); err != nil {
			if errors.Is(err, ErrWrongOrigin) {
				return nil, fmt.Errorf("%w: block %d origin %v", ErrWrongOwner, i, b.Header.Origin)
			}
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
	}
	return s, nil
}

// crcWriter tracks a CRC-32C over everything written, so the v2 writer
// can seal the stream with a trailing checksum.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, walTable, p[:n])
	return n, err
}

// writeU32 writes one little-endian uint32.
func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// writeU64 writes one little-endian uint64.
func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// writeFramed writes a length-prefixed byte string.
func writeFramed(w io.Writer, p []byte) error {
	if err := writeU32(w, uint32(len(p))); err != nil {
		return err
	}
	_, err := w.Write(p)
	return err
}

// WriteSnapshot serializes the whole node state as a v2 stream:
//
//	magic(8) | owner(4) | trustCap(4)
//	| blockCount(4)  | { len(4) | block.Encode }…
//	| trustInserted(8)                                   (lifetime H_i Adds)
//	| headerCount(4) | { len(4) | block.EncodeHeader }…  (insertion order)
//	| entryCount(4)  | { node(4) | digest(32) }…         (node-sorted)
//	| crc32c(4) over everything above
//
// Each structure is serialized under its own read lock; the writer must
// exclude mutations (or rely on WAL-replay idempotency, as FileBackend
// compaction does) for the stream to be a consistent cut.
func (st *NodeState) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(snapshotMagicV2[:]); err != nil {
		return fmt.Errorf("ledger: writing snapshot header: %w", err)
	}
	if err := writeU32(cw, uint32(st.Store.Owner())); err != nil {
		return fmt.Errorf("ledger: writing snapshot meta: %w", err)
	}
	if err := writeU32(cw, uint32(st.TrustCap)); err != nil {
		return fmt.Errorf("ledger: writing snapshot meta: %w", err)
	}
	if err := st.Store.writeSnapshotBlocks(cw); err != nil {
		return err
	}
	if err := st.Trust.writeSnapshotHeaders(cw); err != nil {
		return err
	}
	if err := st.Cache.writeSnapshotEntries(cw); err != nil {
		return err
	}
	if err := writeU32(bw, cw.crc); err != nil {
		return fmt.Errorf("ledger: writing snapshot CRC: %w", err)
	}
	return bw.Flush()
}

// writeSnapshotBlocks writes the block section (count + blocks) under
// the store's read lock.
func (s *Store) writeSnapshotBlocks(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := writeU32(w, uint32(len(s.blocks))); err != nil {
		return fmt.Errorf("ledger: writing block count: %w", err)
	}
	for _, b := range s.blocks {
		if err := writeFramed(w, block.Encode(b)); err != nil {
			return fmt.Errorf("ledger: writing block: %w", err)
		}
	}
	return nil
}

// snapSource is a cursor over a snapshot stream body: in-memory
// (snapReader) or file-backed (snapStream). take's result is only
// valid until the next take — decoders copy what they keep
// (block.Decode and block.DecodeHeader copy body and signature).
type snapSource interface {
	take(n int) ([]byte, error)
	leftover() int
}

// snapReader is a cursor over an in-memory snapshot stream.
type snapReader struct {
	buf []byte
	off int
}

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, io.ErrUnexpectedEOF
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *snapReader) leftover() int { return len(r.buf) - r.off }

// snapStream is a cursor over a file-backed snapshot stream: reads go
// through a bufio.Reader into one reusable, growable scratch buffer,
// so a cold start never materializes the whole snapshot in memory.
// rem bounds the body (it excludes any trailing CRC), so an oversized
// length field cannot read past the validated region.
type snapStream struct {
	r   *bufio.Reader
	rem int
	buf []byte
}

func (s *snapStream) take(n int) ([]byte, error) {
	if n < 0 || n > s.rem {
		return nil, io.ErrUnexpectedEOF
	}
	if cap(s.buf) < n {
		s.buf = make([]byte, n+n/4)
	}
	p := s.buf[:n]
	if _, err := io.ReadFull(s.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	s.rem -= n
	return p, nil
}

func (s *snapStream) leftover() int { return s.rem }

func snapU32(r snapSource) (uint32, error) {
	p, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func snapU64(r snapSource) (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func snapFramed(r snapSource, limit uint32) ([]byte, error) {
	n, err := snapU32(r)
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, fmt.Errorf("record size %d exceeds limit %d", n, limit)
	}
	return r.take(int(n))
}

// ReadSnapshotState reconstructs a whole-node state from an in-memory
// snapshot stream, accepting both v1 (store-only) and v2. Blocks are
// re-sealed through opts.Params.SealBlock and — when opts.Ring is set
// — re-verified with opts.Params.Validate; trust headers are
// re-sealed. The stream must belong to opts.Owner (ErrWrongOwner
// otherwise). The trust cap in force is opts.TrustCap when positive,
// else the v2 stream's recorded cap; it is applied before H_i is
// restored so FIFO bounds hold immediately. Verification parallelism
// follows opts.Workers.
func ReadSnapshotState(data []byte, opts RecoverOptions) (*NodeState, error) {
	pool := par.NewPool(opts.Workers)
	defer pool.Close()
	r := &snapReader{buf: data}
	magic, err := r.take(8)
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	var v2 bool
	switch {
	case [8]byte(magic) == snapshotMagicV2:
		v2 = true
	case [8]byte(magic) == snapshotMagic:
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v2 {
		// The trailing CRC seals everything before it; check it before
		// trusting any length field.
		if len(data) < 12 {
			return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		body, tail := data[:len(data)-4], data[len(data)-4:]
		if crc32.Checksum(body, walTable) != binary.LittleEndian.Uint32(tail) {
			return nil, fmt.Errorf("%w: CRC mismatch", ErrBadSnapshot)
		}
		r.buf = body
	}
	return readSnapshotBody(r, v2, opts, pool)
}

// readSnapshotStream is the file-backed counterpart Recover uses: one
// fixed-buffer pass checksums a v2 stream, then the body is decoded
// through snapStream's reusable scratch — the snapshot is never
// materialized whole. f must be positioned at the start.
func readSnapshotStream(f *os.File, opts RecoverOptions, pool *par.Pool) (*NodeState, error) {
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	var v2 bool
	switch magic {
	case snapshotMagicV2:
		v2 = true
	case snapshotMagic:
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ledger: statting snapshot: %w", err)
	}
	size := info.Size()
	body := size - 8
	if v2 {
		// The trailing CRC seals everything before it; check it before
		// trusting any length field.
		if size < 12 {
			return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		body = size - 12
		crc := crc32.Checksum(magic[:], walTable)
		buf := make([]byte, 64<<10)
		for remain := body; remain > 0; {
			n := int64(len(buf))
			if remain < n {
				n = remain
			}
			if _, err := io.ReadFull(f, buf[:n]); err != nil {
				return nil, fmt.Errorf("ledger: reading snapshot: %w", err)
			}
			crc = crc32.Update(crc, walTable, buf[:n])
			remain -= n
		}
		var tail [4]byte
		if _, err := io.ReadFull(f, tail[:]); err != nil {
			return nil, fmt.Errorf("ledger: reading snapshot: %w", err)
		}
		if crc != binary.LittleEndian.Uint32(tail[:]) {
			return nil, fmt.Errorf("%w: CRC mismatch", ErrBadSnapshot)
		}
		if _, err := f.Seek(8, io.SeekStart); err != nil {
			return nil, fmt.Errorf("ledger: seeking snapshot: %w", err)
		}
	}
	src := &snapStream{r: bufio.NewReaderSize(f, 64<<10), rem: int(body)}
	return readSnapshotBody(src, v2, opts, pool)
}

// readSnapshotBody reads everything after the magic. The sequential
// scan does all decoding and structural checking and queues each
// block's re-seal/re-verify on the pool (recoverVerifier); blocks then
// retire into the store in order, so state, errors, and error order
// are byte-identical to the serial path regardless of pool width.
func readSnapshotBody(r snapSource, v2 bool, opts RecoverOptions, pool *par.Pool) (*NodeState, error) {
	verify := recoverVerifier{opts: opts, pool: pool}
	st, scanErr := scanSnapshotBody(r, v2, opts, &verify)
	// Every queued block precedes the scan's stopping point, so the
	// first verification failure outranks scanErr — exactly the error
	// the serial loop would have hit first.
	if err := verify.run(func(i int, err error) error {
		return fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
	}); err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	for i, b := range verify.blocks {
		if err := st.Store.Append(b); err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, verify.labels[i], err)
		}
	}
	return st, nil
}

// scanSnapshotBody is readSnapshotBody's sequential pass: meta, block
// section (decode + structure, verification queued), and for v2 the
// trust and cache sections. On error the returned state is partial and
// the caller discards it.
func scanSnapshotBody(r snapSource, v2 bool, opts RecoverOptions, verify *recoverVerifier) (*NodeState, error) {
	ownerWord, err := snapU32(r)
	if err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
	}
	owner := identity.NodeID(ownerWord)
	if owner != opts.Owner {
		return nil, fmt.Errorf("%w: snapshot owner %v, recovering %v", ErrWrongOwner, owner, opts.Owner)
	}
	trustCap := opts.TrustCap
	if v2 {
		recorded, err := snapU32(r)
		if err != nil {
			return nil, fmt.Errorf("%w: meta: %v", ErrBadSnapshot, err)
		}
		if trustCap <= 0 {
			trustCap = int(recorded)
		}
	}
	st := NewNodeState(owner, trustCap)

	blockCount, err := snapU32(r)
	if err != nil {
		return st, fmt.Errorf("%w: block count: %v", ErrBadSnapshot, err)
	}
	for i := uint32(0); i < blockCount; i++ {
		enc, err := snapFramed(r, maxSnapshotBlock)
		if err != nil {
			return st, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
		b, err := block.Decode(enc)
		if err != nil {
			return st, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i, err)
		}
		if b.Header.Origin != owner {
			return st, fmt.Errorf("%w: block %d origin %v", ErrWrongOwner, i, b.Header.Origin)
		}
		// Queue before the sequence check: a block that fails both has
		// its verification failure reported, like the serial loop, which
		// seals and validates before Store.Append can reject the seq.
		verify.add(b, int(i))
		if int64(b.Header.Seq) != int64(i) {
			// Mirrors Store.Append's rejection so the scan can stop
			// without appending anything yet.
			return st, fmt.Errorf("%w: block %d: %v", ErrBadSnapshot, i,
				fmt.Errorf("%w: seq %d, want %d", ErrBadSeq, b.Header.Seq, i))
		}
	}
	if !v2 {
		return st, nil
	}
	trustInserted, err := snapU64(r)
	if err != nil {
		return st, fmt.Errorf("%w: trust insertion count: %v", ErrBadSnapshot, err)
	}
	headerCount, err := snapU32(r)
	if err != nil {
		return st, fmt.Errorf("%w: header count: %v", ErrBadSnapshot, err)
	}
	if trustInserted > uint64(1)<<62 || trustInserted < uint64(headerCount) {
		return st, fmt.Errorf("%w: trust insertion count %d with %d headers", ErrBadSnapshot, trustInserted, headerCount)
	}
	for i := uint32(0); i < headerCount; i++ {
		enc, err := snapFramed(r, maxSnapshotBlock)
		if err != nil {
			return st, fmt.Errorf("%w: trust header %d: %v", ErrBadSnapshot, i, err)
		}
		h, err := block.DecodeHeader(enc)
		if err != nil {
			return st, fmt.Errorf("%w: trust header %d: %v", ErrBadSnapshot, i, err)
		}
		h.Seal()
		st.Trust.Add(h)
	}
	// The recorded count, not the restored Adds, is the replay horizon:
	// it includes headers inserted and since evicted before the gather.
	st.Trust.setInsertions(int64(trustInserted))
	entryCount, err := snapU32(r)
	if err != nil {
		return st, fmt.Errorf("%w: cache entry count: %v", ErrBadSnapshot, err)
	}
	for i := uint32(0); i < entryCount; i++ {
		p, err := r.take(4 + digest.Size)
		if err != nil {
			return st, fmt.Errorf("%w: cache entry %d: %v", ErrBadSnapshot, i, err)
		}
		from := identity.NodeID(binary.LittleEndian.Uint32(p[:4]))
		var d digest.Digest
		copy(d[:], p[4:])
		st.Cache.Update(from, d)
	}
	if n := r.leftover(); n != 0 {
		return st, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, n)
	}
	return st, nil
}
