package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/par"
)

// Write-ahead-log record codec. One record per durable mutation, in a
// compact fixed-layout binary encoding:
//
//	kind    uint8      — walKindBlock | walKindTrust | walKindDigest
//	length  uint32 LE  — payload byte count
//	payload [length]   — see the per-kind layouts below
//	crc     uint32 LE  — CRC-32C over kind, length, and payload
//
// The CRC closes each record, so a torn tail — a crash mid-write
// leaves a prefix of the final record — is detected and the log is
// readable up to the last complete record. Replay treats exactly that
// as the recovery point (see replayWAL); everything before a torn or
// corrupt record is state the node durably owned.

// WAL record kinds.
const (
	walKindBlock  = 1 // payload: block.Encode(b)
	walKindTrust  = 2 // payload: insertion index uint64 LE + block.EncodeHeader(h)
	walKindDigest = 3 // payload: sender uint32 LE + digest [digest.Size]byte
	walKindForget = 4 // payload: sender uint32 LE
)

// walTrustPrefix is the insertion-index prefix of a trust payload.
const walTrustPrefix = 8

// walHeaderLen is kind + length; walCRCLen trails every record.
const (
	walHeaderLen = 1 + 4
	walCRCLen    = 4
)

// maxWALPayload bounds one record payload — same bound as a snapshot
// block record, which dominates the header and digest payloads.
const maxWALPayload = maxSnapshotBlock

// walTable is the CRC-32C (Castagnoli) table; hardware-accelerated on
// every platform Go supports.
var walTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadWALRecord marks a structurally invalid record during replay —
// reported with the byte offset so operators can see how much of a
// damaged log was recoverable.
var ErrBadWALRecord = errors.New("ledger: malformed WAL record")

// appendWALRecord appends one framed record to dst and returns the
// extended slice.
func appendWALRecord(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], walTable)
	binary.LittleEndian.PutUint32(lenBuf[:], crc)
	return append(dst, lenBuf[:]...)
}

// appendWALTrust appends a trust record payload: the header's lifetime
// insertion index in H_i followed by its encoding. The index lets
// replay skip Adds the snapshot already accounts for — re-adding a
// header a capped store had since evicted would evict a different live
// header and break byte-identical recovery.
func appendWALTrust(dst []byte, inserted int64, h *block.Header) []byte {
	var idx [walTrustPrefix]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(inserted))
	dst = append(dst, idx[:]...)
	return append(dst, block.EncodeHeader(h)...)
}

// appendWALDigest appends a digest-cache record payload.
func appendWALDigest(dst []byte, from identity.NodeID, d digest.Digest) []byte {
	var node [4]byte
	binary.LittleEndian.PutUint32(node[:], uint32(from))
	dst = append(dst, node[:]...)
	return append(dst, d[:]...)
}

// walRecord is one decoded WAL record.
type walRecord struct {
	kind    byte
	payload []byte // aliases the input buffer
}

// scanWALRecord decodes the record at the head of buf. It returns the
// record, the number of bytes consumed, and an error. A clean torn
// tail (buf is a proper prefix of a record: too short, or the CRC
// bytes themselves are incomplete) returns io.ErrUnexpectedEOF; a CRC
// mismatch or oversized length returns ErrBadWALRecord. Empty input
// returns io.EOF.
func scanWALRecord(buf []byte) (walRecord, int, error) {
	if len(buf) == 0 {
		return walRecord{}, 0, io.EOF
	}
	if len(buf) < walHeaderLen {
		return walRecord{}, 0, io.ErrUnexpectedEOF
	}
	size := binary.LittleEndian.Uint32(buf[1:walHeaderLen])
	if size > maxWALPayload {
		return walRecord{}, 0, fmt.Errorf("%w: payload size %d", ErrBadWALRecord, size)
	}
	total := walHeaderLen + int(size) + walCRCLen
	if len(buf) < total {
		return walRecord{}, 0, io.ErrUnexpectedEOF
	}
	body := buf[:walHeaderLen+int(size)]
	want := binary.LittleEndian.Uint32(buf[walHeaderLen+int(size) : total])
	if crc32.Checksum(body, walTable) != want {
		return walRecord{}, 0, fmt.Errorf("%w: CRC mismatch", ErrBadWALRecord)
	}
	return walRecord{kind: buf[0], payload: body[walHeaderLen:]}, total, nil
}

// walReplayStats reports what one log contributed during recovery.
type walReplayStats struct {
	// valid is the byte length of the intact record prefix — the
	// offset a torn log may safely be truncated to.
	valid int
	// torn reports whether the log ended in an incomplete or corrupt
	// record that was discarded.
	torn bool
	// blocks counts block records applied (not skipped as duplicates).
	blocks int
}

// replayWAL applies every intact record in buf to st. With allowTorn
// set it stops silently at the first torn or corrupt record (a crash
// mid-write is the expected way for the *current* WAL generation to
// end); without it a torn record fails recovery — a rotated generation
// (wal.old) is synced and repaired before rotation, so damage there is
// real corruption, and tolerating it would silently drop every record
// after it. Records replay idempotently — blocks already present
// (sequence below the log length) are skipped, trust records below the
// store's insertion horizon are skipped, digest upserts are
// latest-wins — so a WAL generation that overlaps the snapshot it
// preceded is harmless.
//
// Blocks are re-sealed through opts.Params.SealBlock and, when
// opts.Ring is set, re-verified with opts.Params.Validate before they
// re-enter the store — that verification fans out on pool (nil or
// width 1 runs inline) via recoverVerifier while this scan stays
// sequential. Structural violations that cannot come from a torn
// write — wrong owner, a sequence gap — fail recovery rather than
// truncate it.
func replayWAL(st *NodeState, buf []byte, opts RecoverOptions, allowTorn bool, pool *par.Pool) (walReplayStats, error) {
	var stats walReplayStats
	verify := recoverVerifier{opts: opts, pool: pool}
	// have is the store length as if queued blocks were already
	// appended, so the duplicate/gap checks see what the serial,
	// append-as-you-go loop saw.
	have := st.Store.Len()
	off := 0
	// The scan stops at its first error, like the serial loop — but
	// queued verification hasn't run yet, so the error is only recorded
	// here; a verification failure at an earlier position outranks it.
	var scanErr error
scan:
	for {
		rec, n, err := scanWALRecord(buf[off:])
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: the intact prefix is the durable
			// state; the rest never finished writing.
			stats.torn = true
			if !allowTorn {
				scanErr = fmt.Errorf("%w: record at offset %d in a rotated generation: %v", ErrBadWALRecord, off, err)
			}
			break
		}
		switch rec.kind {
		case walKindBlock:
			b, err := block.Decode(rec.payload)
			if err != nil {
				scanErr = fmt.Errorf("%w: block at offset %d: %v", ErrBadWALRecord, off, err)
				break scan
			}
			if b.Header.Origin != opts.Owner {
				scanErr = fmt.Errorf("%w: block at offset %d origin %v", ErrWrongOwner, off, b.Header.Origin)
				break scan
			}
			switch seq := int(b.Header.Seq); {
			case seq < have:
				// Already restored by the snapshot (or an earlier WAL
				// generation): the record predates the last compaction.
			case seq > have:
				scanErr = fmt.Errorf("%w: block at offset %d seq %d, store has %d", ErrBadWALRecord, off, seq, have)
				break scan
			default:
				verify.add(b, off)
				have++
			}
		case walKindTrust:
			if len(rec.payload) < walTrustPrefix {
				scanErr = fmt.Errorf("%w: trust record at offset %d: %d bytes", ErrBadWALRecord, off, len(rec.payload))
				break scan
			}
			idx := int64(binary.LittleEndian.Uint64(rec.payload[:walTrustPrefix]))
			h, err := block.DecodeHeader(rec.payload[walTrustPrefix:])
			if err != nil {
				scanErr = fmt.Errorf("%w: header at offset %d: %v", ErrBadWALRecord, off, err)
				break scan
			}
			// Skip insertions the snapshot already accounts for: the
			// header may have been FIFO-evicted since, and re-adding it
			// would evict a different live header instead. At or above
			// the horizon the Add replays with the exact state it saw
			// live, so its evictions replay identically too.
			if idx >= st.Trust.Insertions() {
				h.Seal()
				st.Trust.Add(h)
			}
		case walKindDigest:
			if len(rec.payload) != 4+digest.Size {
				scanErr = fmt.Errorf("%w: digest record at offset %d: %d bytes", ErrBadWALRecord, off, len(rec.payload))
				break scan
			}
			from := identity.NodeID(binary.LittleEndian.Uint32(rec.payload[:4]))
			var d digest.Digest
			copy(d[:], rec.payload[4:])
			st.Cache.Update(from, d)
		case walKindForget:
			if len(rec.payload) != 4 {
				scanErr = fmt.Errorf("%w: forget record at offset %d: %d bytes", ErrBadWALRecord, off, len(rec.payload))
				break scan
			}
			st.Cache.Forget(identity.NodeID(binary.LittleEndian.Uint32(rec.payload[:4])))
		default:
			scanErr = fmt.Errorf("%w: unknown kind %d at offset %d", ErrBadWALRecord, rec.kind, off)
			break scan
		}
		off += n
		stats.valid = off
	}
	// Every queued block precedes scanErr's position, so reporting the
	// first verification failure before scanErr reproduces the serial
	// error order exactly. (Recovery discards state and stats on error,
	// so trust/digest records applied past a failing block are moot.)
	if err := verify.run(func(off int, err error) error {
		return fmt.Errorf("%w: block at offset %d: %v", ErrBadWALRecord, off, err)
	}); err != nil {
		return stats, err
	}
	if scanErr != nil {
		return stats, scanErr
	}
	for _, b := range verify.blocks {
		if err := st.Store.Append(b); err != nil {
			return stats, fmt.Errorf("ledger: WAL replay append: %w", err)
		}
		stats.blocks++
	}
	return stats, nil
}
