package ledger

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// walState builds an empty state for owner 1 with the test params, the
// starting point every replay test applies records to.
func walState() *NodeState { return NewNodeState(1, 0) }

func walOpts() RecoverOptions {
	return RecoverOptions{Owner: 1, Params: testParams()}
}

// TestWALRecordGolden pins the record framing byte for byte: kind,
// little-endian length, payload, CRC-32C over all three. A layout
// change breaks every WAL already on disk, so this must fail loudly.
func TestWALRecordGolden(t *testing.T) {
	rec := appendWALRecord(nil, walKindForget, []byte{7, 0, 0, 0})
	want := []byte{
		4,          // kind: forget
		4, 0, 0, 0, // length: 4 LE
		7, 0, 0, 0, // payload: node 7 LE
		0x37, 0x90, 0x37, 0x5d, // CRC-32C LE over the 9 bytes above
	}
	if !bytes.Equal(rec, want) {
		t.Fatalf("record = %#v, want %#v", rec, want)
	}
	got, n, err := scanWALRecord(rec)
	if err != nil || n != len(rec) {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
	if got.kind != walKindForget || !bytes.Equal(got.payload, []byte{7, 0, 0, 0}) {
		t.Fatalf("decoded %d %v", got.kind, got.payload)
	}
}

func TestWALScanEdges(t *testing.T) {
	rec := appendWALRecord(nil, walKindDigest, appendWALDigest(nil, 3, digest.Sum([]byte("d"))))
	if _, _, err := scanWALRecord(nil); err != io.EOF {
		t.Fatalf("empty: %v", err)
	}
	// Every strict prefix of a record is a clean torn tail.
	for cut := 1; cut < len(rec); cut++ {
		if _, _, err := scanWALRecord(rec[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
	// Any single flipped byte must trip the CRC (or, in the length
	// field, the size bound or a short read).
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0xFF
		if _, _, err := scanWALRecord(bad); err == nil {
			t.Fatalf("flip %d: corrupt record accepted", i)
		}
	}
	// Oversized length is corruption, not a torn tail.
	huge := []byte{1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := scanWALRecord(huge); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestWALReplayAllKinds(t *testing.T) {
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 2, nil)
	nb := chainFor(t, identity.Deterministic(9, 1), 1, nil)[0]
	d := digest.Sum([]byte("latest"))

	var log []byte
	for _, b := range blocks {
		log = appendWALRecord(log, walKindBlock, block.Encode(b))
	}
	log = appendWALRecord(log, walKindTrust, appendWALTrust(nil, 0, &nb.Header))
	log = appendWALRecord(log, walKindDigest, appendWALDigest(nil, 9, d))
	log = appendWALRecord(log, walKindDigest, appendWALDigest(nil, 8, d))
	log = appendWALRecord(log, walKindForget, []byte{8, 0, 0, 0})

	st := walState()
	stats, err := replayWAL(st, log, walOpts(), true, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.torn || stats.blocks != 2 || stats.valid != len(log) {
		t.Fatalf("stats = %+v", stats)
	}
	if st.Store.Len() != 2 {
		t.Fatalf("store has %d blocks", st.Store.Len())
	}
	got, _ := st.Store.Get(1)
	if !got.Sealed() || got.Header.Hash() != blocks[1].Header.Hash() {
		t.Fatal("replayed block not sealed or wrong")
	}
	if !st.Trust.Has(nb.Header.Hash()) {
		t.Fatal("trust header lost")
	}
	if gd, ok := st.Cache.Get(9); !ok || gd != d {
		t.Fatal("digest entry lost")
	}
	if _, ok := st.Cache.Get(8); ok {
		t.Fatal("forgotten neighbor resurrected")
	}
}

// TestWALReplayTornTail checks the crash-mid-write path: the intact
// prefix applies, the tail is silently discarded, stats report it.
func TestWALReplayTornTail(t *testing.T) {
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 2, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[0]))
	prefix := len(log)
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[1]))

	for _, cut := range []int{prefix + 1, prefix + walHeaderLen, len(log) - 1} {
		st := walState()
		stats, err := replayWAL(st, log[:cut], walOpts(), true, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !stats.torn || stats.valid != prefix || stats.blocks != 1 {
			t.Fatalf("cut %d: stats = %+v", cut, stats)
		}
		if st.Store.Len() != 1 {
			t.Fatalf("cut %d: store has %d blocks", cut, st.Store.Len())
		}
	}
	// A corrupt (not just short) tail record is tolerated the same way.
	bad := append([]byte(nil), log...)
	bad[len(bad)-1] ^= 0xFF
	st := walState()
	stats, err := replayWAL(st, bad, walOpts(), true, nil)
	if err != nil || !stats.torn || st.Store.Len() != 1 {
		t.Fatalf("corrupt tail: stats=%+v err=%v len=%d", stats, err, st.Store.Len())
	}
}

// TestWALReplayStructuralViolations: damage that cannot come from a
// torn write fails recovery instead of truncating it.
func TestWALReplayStructuralViolations(t *testing.T) {
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 2, nil)
	foreign := chainFor(t, identity.Deterministic(2, 1), 1, nil)[0]

	wrongOwner := appendWALRecord(nil, walKindBlock, block.Encode(foreign))
	if _, err := replayWAL(walState(), wrongOwner, walOpts(), true, nil); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("wrong owner: %v", err)
	}

	gap := appendWALRecord(nil, walKindBlock, block.Encode(blocks[1]))
	if _, err := replayWAL(walState(), gap, walOpts(), true, nil); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("seq gap: %v", err)
	}

	unknown := appendWALRecord(nil, 99, nil)
	if _, err := replayWAL(walState(), unknown, walOpts(), true, nil); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("unknown kind: %v", err)
	}

	shortDigest := appendWALRecord(nil, walKindDigest, []byte{1, 2, 3})
	if _, err := replayWAL(walState(), shortDigest, walOpts(), true, nil); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("short digest: %v", err)
	}
}

// TestWALReplayIdempotent: a record set replayed over state that
// already contains a prefix (the snapshot-overlap case rotation-based
// compaction produces) applies cleanly and changes nothing twice.
func TestWALReplayIdempotent(t *testing.T) {
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 3, nil)
	var log []byte
	for _, b := range blocks {
		log = appendWALRecord(log, walKindBlock, block.Encode(b))
	}
	st := walState()
	for _, b := range blocks[:2] { // "snapshot" already holds two
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := replayWAL(st, log, walOpts(), true, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.blocks != 1 || st.Store.Len() != 3 {
		t.Fatalf("overlap replay: stats=%+v len=%d", stats, st.Store.Len())
	}
}

// TestWALReplayVerifiesWithRing: with a Ring, a forged block that
// decodes fine but fails PoW/signature checks fails recovery.
func TestWALReplayVerifiesWithRing(t *testing.T) {
	key := identity.Deterministic(1, 1)
	b := chainFor(t, key, 1, nil)[0].Clone()
	b.Body[0] ^= 0xFF // body no longer matches the signed root
	log := appendWALRecord(nil, walKindBlock, block.Encode(b))
	ring := identity.NewRing()
	if err := ring.Register(key.ID, key.Public); err != nil {
		t.Fatal(err)
	}
	opts := walOpts()
	opts.Ring = ring
	if _, err := replayWAL(walState(), log, opts, true, nil); err == nil {
		t.Fatal("forged block accepted with Ring set")
	}
}

// FuzzWALReplay: arbitrary bytes must never panic and never corrupt
// the state invariants — either replay succeeds with a consistent
// store, or it errors.
func FuzzWALReplay(f *testing.F) {
	key := identity.Deterministic(1, 1)
	p := testParams()
	b, err := p.Build(key, 0, 0, []byte("fuzz"), []block.DigestRef{{Node: 1}})
	if err != nil {
		f.Fatal(err)
	}
	var good []byte
	good = appendWALRecord(good, walKindBlock, block.Encode(b))
	good = appendWALRecord(good, walKindDigest, appendWALDigest(nil, 9, digest.Sum([]byte("x"))))
	good = appendWALRecord(good, walKindForget, []byte{9, 0, 0, 0})
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{walKindBlock, 0xFF, 0xFF, 0xFF, 0xFF})
	// A batched commit window: consecutive block records interleaved
	// with lazy-tier records, exactly as SyncBatch stages them between
	// two fsyncs.
	b1, err := p.Build(key, 1, 1, []byte("fuzz2"), []block.DigestRef{{Node: 1, Digest: b.Header.Hash()}})
	if err != nil {
		f.Fatal(err)
	}
	var window []byte
	window = appendWALRecord(window, walKindBlock, block.Encode(b))
	window = appendWALRecord(window, walKindDigest, appendWALDigest(nil, 7, digest.Sum([]byte("w"))))
	window = appendWALRecord(window, walKindBlock, block.Encode(b1))
	window = appendWALRecord(window, walKindTrust, appendWALTrust(nil, 0, &b1.Header))
	f.Add(window)
	// Torn mid-window tails: the crash landed between the stage and the
	// fsync, cutting inside the second block record and inside the
	// trailing trust record.
	f.Add(window[:len(window)/2])
	f.Add(window[:len(window)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewNodeState(1, 0)
		stats, err := replayWAL(st, data, RecoverOptions{Owner: 1, Params: p}, true, nil)
		if err != nil {
			return
		}
		if stats.blocks != st.Store.Len() {
			t.Fatalf("blocks=%d store=%d", stats.blocks, st.Store.Len())
		}
		if stats.valid > len(data) {
			t.Fatalf("valid=%d > input %d", stats.valid, len(data))
		}
	})
}

// TestWALGroupCommitWindowGolden pins the on-disk image of a
// multi-record committed window byte for byte: records staged between
// two fsyncs are laid out back to back with no window framing of their
// own — the window exists only in the acknowledgement protocol, so a
// WAL written under SyncBatch is indistinguishable from one written
// record-at-a-time and every already-deployed replay can read it.
func TestWALGroupCommitWindowGolden(t *testing.T) {
	d := digest.Sum([]byte("2ldag"))
	var win []byte
	win = appendWALRecord(win, walKindDigest, appendWALDigest(nil, 3, d))
	win = appendWALRecord(win, walKindForget, []byte{3, 0, 0, 0})
	win = appendWALRecord(win, walKindDigest, appendWALDigest(nil, 5, d))
	const want = "03240000000300000099c40c59e749d56f24ecdd01951a85380b258e9a17b498e31292c2aa6530efcb3bfaf689" + // digest node 3
		"040400000003000000c4a11526" + // forget node 3
		"03240000000500000099c40c59e749d56f24ecdd01951a85380b258e9a17b498e31292c2aa6530efcbb3635d21" // digest node 5
	if got := hex.EncodeToString(win); got != want {
		t.Fatalf("window image diverged from golden bytes:\n got %s\nwant %s", got, want)
	}
	// The whole window replays: node 3's entry was upserted then
	// forgotten, node 5's survives.
	st := walState()
	stats, err := replayWAL(st, win, walOpts(), true, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.torn || stats.valid != len(win) {
		t.Fatalf("stats = %+v", stats)
	}
	if _, ok := st.Cache.Get(3); ok {
		t.Fatal("forgotten neighbor survived the window")
	}
	if got, ok := st.Cache.Get(5); !ok || got != d {
		t.Fatal("digest entry lost from the window")
	}
}

// TestWALReplayStrict: a rotated generation was repaired and synced
// before its rename, so strict replay (allowTorn=false) treats a torn
// record as corruption instead of silently dropping the tail.
func TestWALReplayStrict(t *testing.T) {
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 2, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[0]))
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[1]))

	torn := log[:len(log)-3]
	if _, err := replayWAL(walState(), torn, walOpts(), false, nil); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("strict replay of a torn log: %v", err)
	}
	// The intact log passes strict replay unchanged.
	st := walState()
	if stats, err := replayWAL(st, log, walOpts(), false, nil); err != nil || stats.blocks != 2 {
		t.Fatalf("strict replay of an intact log: stats=%+v err=%v", stats, err)
	}
}

// TestWALReplayTrustHorizon: trust records carry their insertion
// index; replay applies only those at or past the store's current
// horizon, so records the snapshot already accounted for (including
// ones whose headers were since evicted) cannot re-enter a capped
// store. A record too short to carry the index is corruption.
func TestWALReplayTrustHorizon(t *testing.T) {
	nb := chainFor(t, identity.Deterministic(9, 1), 5, nil)
	var log []byte
	for i, b := range nb {
		log = appendWALRecord(log, walKindTrust, appendWALTrust(nil, int64(i), &b.Header))
	}

	st := walState()
	st.Trust.setInsertions(3)
	if _, err := replayWAL(st, log, walOpts(), true, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	for i, b := range nb {
		if got := st.Trust.Has(b.Header.Hash()); got != (i >= 3) {
			t.Errorf("header %d stored = %v, horizon is 3", i, got)
		}
	}
	if st.Trust.Insertions() != 5 {
		t.Fatalf("inserted = %d, want 5", st.Trust.Insertions())
	}

	short := appendWALRecord(nil, walKindTrust, []byte{1, 2, 3})
	if _, err := replayWAL(walState(), short, walOpts(), true, nil); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("short trust record: %v", err)
	}
}
