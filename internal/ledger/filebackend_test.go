package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// openBackend opens and recovers a backend in dir, returning both.
func openBackend(t *testing.T, dir string, opts RecoverOptions) (*FileBackend, *NodeState) {
	t.Helper()
	fb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	st, err := fb.Recover(opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.Attach(fb)
	return fb, st
}

// driveState pushes a representative workload through an attached
// state: n own blocks, a neighbor header, digest churn and a forget.
func driveState(t *testing.T, st *NodeState, n int) {
	t.Helper()
	key := identity.Deterministic(st.Store.Owner(), 4)
	have := st.Store.Len()
	for _, b := range chainFor(t, key, have+n, nil)[have:] {
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	nb := identity.Deterministic(9, 4)
	for _, b := range chainFor(t, nb, 2, nil) {
		st.Trust.Add(b.Header.Clone())
	}
	st.Cache.Update(9, digest.Sum([]byte("a")))
	st.Cache.Update(9, digest.Sum([]byte("b")))
	st.Cache.Update(8, digest.Sum([]byte("c")))
	st.Cache.Forget(8)
}

// TestFileBackendRecoverEquivalence is the backend-level crash proof:
// a state driven through a journaling backend, abandoned without any
// graceful shutdown (only LogBlock's own fsyncs), recovers
// byte-identical on reopen.
func TestFileBackendRecoverEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}

	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 3)
	want := stateBytes(t, st)
	// Simulate a crash: no Sync, no Close — just drop the handle. The
	// trust/digest tail is made durable by the block fsyncs interleaved
	// with it (file writes already hit the OS; fsync matters only for
	// power loss, which a test cannot simulate).
	_ = fb

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("recovered state differs from the pre-crash state")
	}
	// Recovery normalized the dir: fresh snapshot, empty WAL.
	if fb2.PendingBlocks() != 0 {
		t.Fatal("recovery left pending WAL blocks")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("no snapshot after recovery: %v", err)
	}
	// And the recovered node keeps working: more appends, another
	// recovery, still equivalent.
	driveState(t, st2, 2)
	want = stateBytes(t, st2)
	if err := fb2.Close(); err != nil {
		t.Fatal(err)
	}
	fb3, st3 := openBackend(t, dir, opts)
	defer fb3.Close()
	if !bytes.Equal(stateBytes(t, st3), want) {
		t.Fatal("second recovery differs")
	}
}

func TestFileBackendFreshDir(t *testing.T) {
	fb, st := openBackend(t, t.TempDir(), RecoverOptions{Owner: 7, Params: testParams()})
	defer fb.Close()
	if st.Store.Len() != 0 || st.Store.Owner() != 7 {
		t.Fatal("fresh recover not empty")
	}
	if _, err := fb.Recover(RecoverOptions{Owner: 7}); err == nil {
		t.Fatal("second Recover must fail")
	}
}

// TestFileBackendTornTail: a crash mid-record (the WAL ends in a
// partial frame) recovers everything before the tear.
func TestFileBackendTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	// Fold the two blocks into the snapshot so the hand-crafted WAL
	// below continues from them.
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Write two block records and tear the second.
	key := identity.Deterministic(4, 4)
	blocks := chainFor(t, key, 4, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[2]))
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[3]))
	if err := os.WriteFile(filepath.Join(dir, walFileName), log[:len(log)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if st2.Store.Len() != 3 {
		t.Fatalf("recovered %d blocks, want 3 (2 snapshot + 1 intact WAL)", st2.Store.Len())
	}
	if b, _ := st2.Store.Get(2); b.Header.Hash() != blocks[2].Header.Hash() {
		t.Fatal("intact WAL record not applied")
	}
}

// TestFileBackendCompaction: rotation folds the WAL into the snapshot,
// logging continues, and every crash-window leftover (wal.old,
// snapshot.tmp) recovers.
func TestFileBackendCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 3)
	if fb.PendingBlocks() != 3 {
		t.Fatalf("pending = %d, want 3", fb.PendingBlocks())
	}
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if fb.PendingBlocks() != 0 {
		t.Fatal("compaction did not reset pending")
	}
	if _, err := os.Stat(filepath.Join(dir, walOldFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("wal.old survived a completed compaction")
	}
	// Post-compaction appends land in the new generation…
	driveState(t, st, 1)
	if fb.PendingBlocks() != 1 {
		t.Fatalf("pending = %d after post-compaction append", fb.PendingBlocks())
	}
	want := stateBytes(t, st)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	// …and recovery reads snapshot + new WAL.
	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("post-compaction recovery differs")
	}
}

// TestFileBackendCrashedCompaction: a compaction interrupted between
// rotation and snapshot commit leaves wal.old (and possibly
// snapshot.tmp); recovery replays snapshot + wal.old + wal.log and
// discards the tmp.
func TestFileBackendCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	want := stateBytes(t, st)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft the crash window: the WAL generation renamed to
	// wal.old, an empty current WAL, and a garbage snapshot.tmp.
	if err := os.Rename(filepath.Join(dir, walFileName), filepath.Join(dir, walOldFileName)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotTmpName), []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("crashed-compaction recovery differs")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.tmp survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, walOldFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("wal.old survived recovery")
	}
}

func TestFileBackendWrongOwner(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 1)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if _, err := fb2.Recover(RecoverOptions{Owner: 5, Params: testParams()}); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("foreign data dir: %v", err)
	}
}

func TestFileBackendClosed(t *testing.T) {
	fb, st := openBackend(t, t.TempDir(), RecoverOptions{Owner: 4, Params: testParams()})
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	key := identity.Deterministic(4, 4)
	b := chainFor(t, key, 1, nil)[0]
	// A block append against a closed backend must fail — write-ahead
	// means no journal, no accept.
	if err := st.Store.Append(b); err == nil || !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if st.Store.Len() != 0 {
		t.Fatal("block accepted without a journal record")
	}
	// Non-critical journal calls fail too, but quietly (sticky path).
	if err := fb.LogDigest(9, digest.Digest{}); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("LogDigest after close: %v", err)
	}
	if err := fb.Sync(); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := fb.Close(); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("double Close: %v", err)
	}
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Compact after close: %v", err)
	}
}

// TestFileBackendRing: recovery with a Ring re-verifies every block;
// flipping one byte in the stored snapshot is caught by its CRC, and a
// validly-framed but forged WAL block is caught by Validate.
func TestFileBackendRing(t *testing.T) {
	dir := t.TempDir()
	key := identity.Deterministic(4, 4)
	ring := identity.NewRing()
	if err := ring.Register(key.ID, key.Public); err != nil {
		t.Fatal(err)
	}
	opts := RecoverOptions{Owner: 4, Params: testParams(), Ring: ring}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a WAL block: right owner and sequence, corrupted body,
	// valid frame CRC (the frame protects against disk errors, the
	// Ring against forgery).
	forged := chainFor(t, key, 3, nil)[2].Clone()
	forged.Body[0] ^= 0xFF
	log := appendWALRecord(nil, walKindBlock, block.Encode(forged))
	if err := os.WriteFile(filepath.Join(dir, walFileName), log, 0o644); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if _, err := fb2.Recover(opts); err == nil {
		t.Fatal("forged WAL block recovered with Ring set")
	}
}

// TestFileBackendPartialWriteRepair: a failed write can leave a
// partial frame mid-WAL (os.File.Write errors after writing some
// bytes, e.g. ENOSPC). The generation is poisoned; the next write
// truncates back to the last intact record, so blocks fsynced after
// the failure are never stranded behind garbage that replay would
// stop at.
func TestFileBackendPartialWriteRepair(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)

	// Inject the failure aftermath exactly as logLocked records it:
	// bytes on disk past goodOff, dirty set. (Half a frame header is as
	// ugly as it gets — replay could not even skip it as a bad record.)
	fb.mu.Lock()
	if _, err := fb.f.Write([]byte{walKindTrust, 0xFF, 0xFF}); err != nil {
		fb.mu.Unlock()
		t.Fatal(err)
	}
	fb.dirty = true
	fb.mu.Unlock()

	// Logging continues: the next append must repair first, then the
	// block fsync acknowledges it.
	driveState(t, st, 1)
	want := stateBytes(t, st)

	// The on-disk generation is clean again: replaying it from scratch
	// finds no tear and every block record.
	buf, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := replayWAL(NewNodeState(4, 0), buf, opts, true, nil)
	if err != nil {
		t.Fatalf("replaying repaired WAL: %v", err)
	}
	if stats.torn || stats.blocks != 3 {
		t.Fatalf("repaired WAL stats = %+v, want 3 intact blocks, no tear", stats)
	}

	// Crash (drop the handle) and recover: every acknowledged block —
	// including the one appended after the failure — survives.
	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("recovery after a repaired partial write differs")
	}
}

// TestFileBackendPartialWriteRepairOnRotate: rotation must not rename
// a poisoned generation — wal.old carrying a partial frame would turn
// recovery's strict old-generation replay into a spurious failure.
func TestFileBackendPartialWriteRepairOnRotate(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)

	fb.mu.Lock()
	if _, err := fb.f.Write([]byte("torn frame")); err != nil {
		fb.mu.Unlock()
		t.Fatal(err)
	}
	fb.dirty = true
	fb.mu.Unlock()

	// Compact rotates (repairing first), then snapshots and deletes
	// wal.old — simulate the compaction crash window by checking the
	// rotated file directly before the gather callback runs.
	var rotated []byte
	if err := fb.Compact(func() (*NodeState, error) {
		var err error
		rotated, err = os.ReadFile(filepath.Join(dir, walOldFileName))
		return st, err
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats, err := replayWAL(NewNodeState(4, 0), rotated, opts, false, nil); err != nil {
		t.Fatalf("rotated generation fails strict replay: %v", err)
	} else if stats.blocks != 2 {
		t.Fatalf("rotated generation holds %d blocks, want 2", stats.blocks)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileBackendTornOldWAL: wal.old is synced and repaired before its
// rotation rename, so a torn record there is corruption — recovery
// must refuse rather than silently drop every record after the tear.
func TestFileBackendTornOldWAL(t *testing.T) {
	dir := t.TempDir()
	key := identity.Deterministic(4, 4)
	blocks := chainFor(t, key, 2, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[0]))
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[1]))
	if err := os.WriteFile(filepath.Join(dir, walOldFileName), log[:len(log)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	fb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if _, err := fb.Recover(RecoverOptions{Owner: 4, Params: testParams()}); !errors.Is(err, ErrBadWALRecord) {
		t.Fatalf("torn wal.old recovered: %v", err)
	}
}

// TestFileBackendRecoveryReport: the report counts snapshot blocks,
// replayed WAL blocks and bytes, and surfaces a discarded torn tail.
func TestFileBackendRecoveryReport(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// One intact block record, then a torn one.
	key := identity.Deterministic(4, 4)
	blocks := chainFor(t, key, 4, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[2]))
	intact := len(log)
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[3]))
	torn := log[:len(log)-3]
	if err := os.WriteFile(filepath.Join(dir, walFileName), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	rep := fb2.RecoveryReport()
	want := RecoveryReport{
		SnapshotBlocks: 2,
		WALBlocks:      1,
		WALBytes:       intact,
		TornTail:       true,
		TornBytes:      len(torn) - intact,
	}
	if rep.Duration <= 0 {
		t.Fatalf("report duration %v, want > 0", rep.Duration)
	}
	rep.Duration = 0 // wall time; everything else must match exactly
	if rep != want {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
	if st2.Store.Len() != 3 {
		t.Fatalf("recovered %d blocks, want 3", st2.Store.Len())
	}
}

// TestFileBackendTrustEvictionHorizon is the reviewer's capped-trust
// scenario: a snapshot taken after FIFO evictions, with the pre-
// eviction trust records still in a not-yet-deleted wal.old (the
// compaction crash window). Replaying those records must not re-add
// evicted headers — each carries its insertion index, and the
// snapshot's recorded insertion count is the replay horizon.
func TestFileBackendTrustEvictionHorizon(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams(), TrustCap: 2}
	fb, st := openBackend(t, dir, opts)

	nb := chainFor(t, identity.Deterministic(9, 4), 6, nil)
	for _, b := range nb {
		st.Trust.Add(b.Header.Clone())
	}
	if st.Trust.Len() != 2 || st.Trust.Insertions() != 6 {
		t.Fatalf("live: len=%d inserted=%d", st.Trust.Len(), st.Trust.Insertions())
	}
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the crash window: snapshot committed, wal.old (with
	// every pre-snapshot trust record) not yet deleted, plus one
	// post-snapshot insertion in wal.log.
	extra := chainFor(t, identity.Deterministic(8, 4), 1, nil)[0]
	var old []byte
	for i, b := range nb {
		old = appendWALRecord(old, walKindTrust, appendWALTrust(nil, int64(i), &b.Header))
	}
	if err := os.WriteFile(filepath.Join(dir, walOldFileName), old, 0o644); err != nil {
		t.Fatal(err)
	}
	cur := appendWALRecord(nil, walKindTrust, appendWALTrust(nil, 6, &extra.Header))
	if err := os.WriteFile(filepath.Join(dir, walFileName), cur, 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	// Records 0..5 are below the horizon (skipped); record 6 applies,
	// evicting the oldest live header exactly as it would have live.
	ref := NewNodeState(4, 2)
	for _, b := range nb {
		ref.Trust.Add(b.Header.Clone())
	}
	ref.Trust.Add(extra.Header.Clone())
	if !bytes.Equal(stateBytes(t, st2), stateBytes(t, ref)) {
		t.Fatal("capped trust store diverged across the compaction crash window")
	}
	if st2.Trust.Insertions() != 7 {
		t.Fatalf("inserted = %d, want 7", st2.Trust.Insertions())
	}

	// Replant the stale generation against the normalized snapshot
	// (horizon now 7): every record is below it, so recovery changes
	// nothing.
	want := stateBytes(t, st2)
	if err := fb2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walOldFileName), old, 0o644); err != nil {
		t.Fatal(err)
	}
	fb3, st3 := openBackend(t, dir, opts)
	defer fb3.Close()
	if !bytes.Equal(stateBytes(t, st3), want) {
		t.Fatal("stale trust records re-entered the capped store")
	}
}
