package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// openBackend opens and recovers a backend in dir, returning both.
func openBackend(t *testing.T, dir string, opts RecoverOptions) (*FileBackend, *NodeState) {
	t.Helper()
	fb, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	st, err := fb.Recover(opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.Attach(fb)
	return fb, st
}

// driveState pushes a representative workload through an attached
// state: n own blocks, a neighbor header, digest churn and a forget.
func driveState(t *testing.T, st *NodeState, n int) {
	t.Helper()
	key := identity.Deterministic(st.Store.Owner(), 4)
	have := st.Store.Len()
	for _, b := range chainFor(t, key, have+n, nil)[have:] {
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	nb := identity.Deterministic(9, 4)
	for _, b := range chainFor(t, nb, 2, nil) {
		st.Trust.Add(b.Header.Clone())
	}
	st.Cache.Update(9, digest.Sum([]byte("a")))
	st.Cache.Update(9, digest.Sum([]byte("b")))
	st.Cache.Update(8, digest.Sum([]byte("c")))
	st.Cache.Forget(8)
}

// TestFileBackendRecoverEquivalence is the backend-level crash proof:
// a state driven through a journaling backend, abandoned without any
// graceful shutdown (only LogBlock's own fsyncs), recovers
// byte-identical on reopen.
func TestFileBackendRecoverEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}

	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 3)
	want := stateBytes(t, st)
	// Simulate a crash: no Sync, no Close — just drop the handle. The
	// trust/digest tail is made durable by the block fsyncs interleaved
	// with it (file writes already hit the OS; fsync matters only for
	// power loss, which a test cannot simulate).
	_ = fb

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("recovered state differs from the pre-crash state")
	}
	// Recovery normalized the dir: fresh snapshot, empty WAL.
	if fb2.PendingBlocks() != 0 {
		t.Fatal("recovery left pending WAL blocks")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("no snapshot after recovery: %v", err)
	}
	// And the recovered node keeps working: more appends, another
	// recovery, still equivalent.
	driveState(t, st2, 2)
	want = stateBytes(t, st2)
	if err := fb2.Close(); err != nil {
		t.Fatal(err)
	}
	fb3, st3 := openBackend(t, dir, opts)
	defer fb3.Close()
	if !bytes.Equal(stateBytes(t, st3), want) {
		t.Fatal("second recovery differs")
	}
}

func TestFileBackendFreshDir(t *testing.T) {
	fb, st := openBackend(t, t.TempDir(), RecoverOptions{Owner: 7, Params: testParams()})
	defer fb.Close()
	if st.Store.Len() != 0 || st.Store.Owner() != 7 {
		t.Fatal("fresh recover not empty")
	}
	if _, err := fb.Recover(RecoverOptions{Owner: 7}); err == nil {
		t.Fatal("second Recover must fail")
	}
}

// TestFileBackendTornTail: a crash mid-record (the WAL ends in a
// partial frame) recovers everything before the tear.
func TestFileBackendTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	// Fold the two blocks into the snapshot so the hand-crafted WAL
	// below continues from them.
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Write two block records and tear the second.
	key := identity.Deterministic(4, 4)
	blocks := chainFor(t, key, 4, nil)
	var log []byte
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[2]))
	log = appendWALRecord(log, walKindBlock, block.Encode(blocks[3]))
	if err := os.WriteFile(filepath.Join(dir, walFileName), log[:len(log)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if st2.Store.Len() != 3 {
		t.Fatalf("recovered %d blocks, want 3 (2 snapshot + 1 intact WAL)", st2.Store.Len())
	}
	if b, _ := st2.Store.Get(2); b.Header.Hash() != blocks[2].Header.Hash() {
		t.Fatal("intact WAL record not applied")
	}
}

// TestFileBackendCompaction: rotation folds the WAL into the snapshot,
// logging continues, and every crash-window leftover (wal.old,
// snapshot.tmp) recovers.
func TestFileBackendCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 3)
	if fb.PendingBlocks() != 3 {
		t.Fatalf("pending = %d, want 3", fb.PendingBlocks())
	}
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if fb.PendingBlocks() != 0 {
		t.Fatal("compaction did not reset pending")
	}
	if _, err := os.Stat(filepath.Join(dir, walOldFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("wal.old survived a completed compaction")
	}
	// Post-compaction appends land in the new generation…
	driveState(t, st, 1)
	if fb.PendingBlocks() != 1 {
		t.Fatalf("pending = %d after post-compaction append", fb.PendingBlocks())
	}
	want := stateBytes(t, st)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	// …and recovery reads snapshot + new WAL.
	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("post-compaction recovery differs")
	}
}

// TestFileBackendCrashedCompaction: a compaction interrupted between
// rotation and snapshot commit leaves wal.old (and possibly
// snapshot.tmp); recovery replays snapshot + wal.old + wal.log and
// discards the tmp.
func TestFileBackendCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	want := stateBytes(t, st)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft the crash window: the WAL generation renamed to
	// wal.old, an empty current WAL, and a garbage snapshot.tmp.
	if err := os.Rename(filepath.Join(dir, walFileName), filepath.Join(dir, walOldFileName)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotTmpName), []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, opts)
	defer fb2.Close()
	if !bytes.Equal(stateBytes(t, st2), want) {
		t.Fatal("crashed-compaction recovery differs")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.tmp survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, walOldFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("wal.old survived recovery")
	}
}

func TestFileBackendWrongOwner(t *testing.T) {
	dir := t.TempDir()
	opts := RecoverOptions{Owner: 4, Params: testParams()}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 1)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if _, err := fb2.Recover(RecoverOptions{Owner: 5, Params: testParams()}); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("foreign data dir: %v", err)
	}
}

func TestFileBackendClosed(t *testing.T) {
	fb, st := openBackend(t, t.TempDir(), RecoverOptions{Owner: 4, Params: testParams()})
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	key := identity.Deterministic(4, 4)
	b := chainFor(t, key, 1, nil)[0]
	// A block append against a closed backend must fail — write-ahead
	// means no journal, no accept.
	if err := st.Store.Append(b); err == nil || !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if st.Store.Len() != 0 {
		t.Fatal("block accepted without a journal record")
	}
	// Non-critical journal calls fail too, but quietly (sticky path).
	if err := fb.LogDigest(9, digest.Digest{}); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("LogDigest after close: %v", err)
	}
	if err := fb.Sync(); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := fb.Close(); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("double Close: %v", err)
	}
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Compact after close: %v", err)
	}
}

// TestFileBackendRing: recovery with a Ring re-verifies every block;
// flipping one byte in the stored snapshot is caught by its CRC, and a
// validly-framed but forged WAL block is caught by Validate.
func TestFileBackendRing(t *testing.T) {
	dir := t.TempDir()
	key := identity.Deterministic(4, 4)
	ring := identity.NewRing()
	if err := ring.Register(key.ID, key.Public); err != nil {
		t.Fatal(err)
	}
	opts := RecoverOptions{Owner: 4, Params: testParams(), Ring: ring}
	fb, st := openBackend(t, dir, opts)
	driveState(t, st, 2)
	if err := fb.Compact(func() (*NodeState, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a WAL block: right owner and sequence, corrupted body,
	// valid frame CRC (the frame protects against disk errors, the
	// Ring against forgery).
	forged := chainFor(t, key, 3, nil)[2].Clone()
	forged.Body[0] ^= 0xFF
	log := appendWALRecord(nil, walKindBlock, block.Encode(forged))
	if err := os.WriteFile(filepath.Join(dir, walFileName), log, 0o644); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if _, err := fb2.Recover(opts); err == nil {
		t.Fatal("forged WAL block recovered with Ring set")
	}
}
