package ledger

import (
	"bytes"
	"errors"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// populatedState builds a node state with blocks, trust headers from a
// neighbor, digest-cache entries, and the given cap — a representative
// cut of everything snapshot v2 must carry.
func populatedState(t *testing.T, trustCap int) *NodeState {
	t.Helper()
	st := NewNodeState(4, trustCap)
	key := identity.Deterministic(4, 4)
	for _, b := range chainFor(t, key, 4, nil) {
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	nb := identity.Deterministic(9, 4)
	for _, b := range chainFor(t, nb, 3, nil) {
		st.Trust.Add(b.Header.Clone())
	}
	st.Cache.Update(9, digest.Sum([]byte("nine")))
	st.Cache.Update(2, digest.Sum([]byte("two")))
	return st
}

func stateOpts() RecoverOptions {
	return RecoverOptions{Owner: 4, Params: testParams()}
}

// stateBytes serializes st as a v2 snapshot — also the byte-identity
// probe the equivalence tests use.
func stateBytes(t *testing.T, st *NodeState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotV2RoundTrip(t *testing.T) {
	st := populatedState(t, 0)
	raw := stateBytes(t, st)
	got, err := ReadSnapshotState(raw, stateOpts())
	if err != nil {
		t.Fatalf("ReadSnapshotState: %v", err)
	}
	// Byte-identity is the real contract: re-serializing the restored
	// state must reproduce the stream exactly (insertion order of H_i,
	// node order of A_i, every seal intact).
	if !bytes.Equal(stateBytes(t, got), raw) {
		t.Fatal("restored state re-serializes differently")
	}
	if got.Store.Len() != 4 || got.Trust.Len() != 3 || got.Cache.Len() != 2 {
		t.Fatalf("restored sizes: %d blocks, %d headers, %d entries",
			got.Store.Len(), got.Trust.Len(), got.Cache.Len())
	}
	b, _ := got.Store.Get(0)
	if !b.Sealed() {
		t.Fatal("restored block not fully sealed")
	}
	if d, ok := got.Cache.Get(9); !ok || d != digest.Sum([]byte("nine")) {
		t.Fatal("cache entry lost")
	}
}

// TestSnapshotV2TrustCap: the recorded cap restores by default; a
// positive RecoverOptions.TrustCap overrides it (redeployment wins).
func TestSnapshotV2TrustCap(t *testing.T) {
	st := populatedState(t, 5)
	raw := stateBytes(t, st)

	got, err := ReadSnapshotState(raw, stateOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got.TrustCap != 5 || got.Trust.Cap() != 5 {
		t.Fatalf("recorded cap not adopted: %d/%d", got.TrustCap, got.Trust.Cap())
	}

	opts := stateOpts()
	opts.TrustCap = 2
	got, err = ReadSnapshotState(raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrustCap != 2 || got.Trust.Cap() != 2 {
		t.Fatalf("override cap not applied: %d/%d", got.TrustCap, got.Trust.Cap())
	}
	// The cap was in force during the restore: only the 2 newest of the
	// 3 recorded headers survive, FIFO order preserved.
	if got.Trust.Len() != 2 {
		t.Fatalf("capped restore kept %d headers", got.Trust.Len())
	}
}

// TestSnapshotV2CapEvictionOrder: a capped store snapshots its live
// FIFO window, and a restore replays Adds in insertion order so the
// next eviction hits the same header it would have live.
func TestSnapshotV2CapEvictionOrder(t *testing.T) {
	st := NewNodeState(4, 2)
	nb := identity.Deterministic(9, 4)
	blocks := chainFor(t, nb, 4, nil)
	for _, b := range blocks {
		st.Trust.Add(b.Header.Clone()) // cap 2: ends with headers 2,3
	}
	got, err := ReadSnapshotState(stateBytes(t, st), stateOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Trust.Has(blocks[2].Header.Hash()) || !got.Trust.Has(blocks[3].Header.Hash()) {
		t.Fatal("live FIFO window lost")
	}
	// One more Add must evict header 2 — the oldest of the restored
	// window — exactly as it would have without the restart.
	extra := chainFor(t, nb, 5, nil)[4]
	got.Trust.Add(extra.Header.Clone())
	if got.Trust.Has(blocks[2].Header.Hash()) || !got.Trust.Has(blocks[3].Header.Hash()) {
		t.Fatal("restored FIFO evicts in the wrong order")
	}
}

// TestSnapshotV2ReadsV1: version skew — a pre-existing store-only
// snapshot restores into a state with empty H_i/A_i.
func TestSnapshotV2ReadsV1(t *testing.T) {
	s := snapshotStore(t, 3)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadSnapshotState(buf.Bytes(), stateOpts())
	if err != nil {
		t.Fatalf("v1 stream: %v", err)
	}
	if st.Store.Len() != 3 || st.Trust.Len() != 0 || st.Cache.Len() != 0 {
		t.Fatal("v1 restore wrong")
	}
}

func TestSnapshotV2RejectsCorruption(t *testing.T) {
	raw := stateBytes(t, populatedState(t, 0))

	// Any single flipped byte trips the stream CRC.
	for _, i := range []int{8, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xFF
		if _, err := ReadSnapshotState(bad, stateOpts()); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("flip %d: %v", i, err)
		}
	}
	// So does truncation — including cutting into the trailing CRC.
	for _, cut := range []int{0, 7, 11, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadSnapshotState(raw[:cut], stateOpts()); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

func TestSnapshotV2WrongOwner(t *testing.T) {
	raw := stateBytes(t, populatedState(t, 0))
	opts := stateOpts()
	opts.Owner = 5
	if _, err := ReadSnapshotState(raw, opts); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("wrong owner: %v", err)
	}
}

// TestSnapshotArenaStore pins satellite invariant: an arena-backed
// compact store serializes byte-identically to a sharded store holding
// the same blocks — WriteSnapshot never needs the arena.
func TestSnapshotArenaStore(t *testing.T) {
	key := identity.Deterministic(4, 4)
	blocks := chainFor(t, key, 5, nil)

	sharded := NewStore(4)
	arena := NewArena()
	compact := NewStoreInArena(4, arena)
	for _, b := range blocks {
		if err := sharded.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := compact.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	var a, b bytes.Buffer
	if err := sharded.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := compact.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("arena-backed snapshot differs from sharded snapshot")
	}
	// And the v2 path sees the same equivalence.
	stA := &NodeState{Store: sharded, Trust: NewTrustStore(), Cache: NewDigestCache()}
	stB := &NodeState{Store: compact, Trust: NewTrustStore(), Cache: NewDigestCache()}
	if !bytes.Equal(stateBytes(t, stA), stateBytes(t, stB)) {
		t.Fatal("v2 snapshot differs between index modes")
	}
	// Round-trip restores a fully indexed, sealed store.
	restored, err := ReadSnapshotState(stateBytes(t, stB), stateOpts())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Store.Len() != 5 {
		t.Fatal("arena snapshot lost blocks")
	}
	if _, ok := restored.Store.OldestContaining(blocks[0].Header.Hash()); !ok {
		t.Fatal("restored store lost the digest index")
	}
}

// FuzzReadSnapshotState: arbitrary bytes must never panic; on success
// the state must be consistent and re-serializable.
func FuzzReadSnapshotState(f *testing.F) {
	st := NewNodeState(4, 3)
	key := identity.Deterministic(4, 4)
	p := testParams()
	b, err := p.Build(key, 0, 0, []byte("fuzz"), []block.DigestRef{{Node: 4}})
	if err != nil {
		f.Fatal(err)
	}
	if err := st.Store.Append(b); err != nil {
		f.Fatal(err)
	}
	st.Cache.Update(9, digest.Sum([]byte("n")))
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-2])
	f.Add(append([]byte("2LDGSNP\x02"), 4, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshotState(data, RecoverOptions{Owner: 4, Params: p})
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteSnapshot(&out); err != nil {
			t.Fatalf("restored state does not re-serialize: %v", err)
		}
	})
}
