package ledger

import (
	"sync"

	"github.com/twoldag/twoldag/internal/identity"
)

// Blacklist implements the selfish-attack penalty of Sec. IV-D6: nodes
// that repeatedly fail to answer REQ_CHILD messages are banned; banned
// nodes earn their way back by helping transmit blocks (redemption
// credits), which incentivizes re-connected nodes to participate.
type Blacklist struct {
	mu         sync.Mutex
	strikes    map[identity.NodeID]int
	redemption map[identity.NodeID]int // remaining credits before unban

	banThreshold    int
	redemptionQuota int
}

// DefaultBanThreshold is how many unanswered requests ban a peer.
const DefaultBanThreshold = 3

// DefaultRedemptionQuota is how many helpful transmissions lift a ban.
const DefaultRedemptionQuota = 5

// NewBlacklist creates a blacklist; non-positive arguments take the
// defaults.
func NewBlacklist(banThreshold, redemptionQuota int) *Blacklist {
	if banThreshold <= 0 {
		banThreshold = DefaultBanThreshold
	}
	if redemptionQuota <= 0 {
		redemptionQuota = DefaultRedemptionQuota
	}
	return &Blacklist{
		strikes:         make(map[identity.NodeID]int),
		redemption:      make(map[identity.NodeID]int),
		banThreshold:    banThreshold,
		redemptionQuota: redemptionQuota,
	}
}

// ReportFailure records an unanswered or invalid reply from id and
// returns true if the node is now banned.
func (b *Blacklist) ReportFailure(id identity.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, banned := b.redemption[id]; banned {
		return true
	}
	b.strikes[id]++
	if b.strikes[id] >= b.banThreshold {
		b.redemption[id] = b.redemptionQuota
		delete(b.strikes, id)
		return true
	}
	return false
}

// ReportSuccess clears accumulated strikes after a valid reply.
func (b *Blacklist) ReportSuccess(id identity.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.strikes, id)
}

// Credit records that a banned node helped transmit a block; after
// enough credits the ban lifts. Credits for non-banned nodes are no-ops.
func (b *Blacklist) Credit(id identity.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	left, banned := b.redemption[id]
	if !banned {
		return
	}
	left--
	if left <= 0 {
		delete(b.redemption, id)
		return
	}
	b.redemption[id] = left
}

// Banned reports whether id is currently blacklisted.
func (b *Blacklist) Banned(id identity.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, banned := b.redemption[id]
	return banned
}

// BannedCount returns how many nodes are currently banned.
func (b *Blacklist) BannedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.redemption)
}
