package ledger

import (
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
)

// arenaShardCount shards the arena's digest-keyed index so concurrent
// appenders (parallel slot generation) and readers (audit fan-out)
// spread across locks. Power of two; header digests are uniform
// hashes, so the first byte balances shards.
const arenaShardCount = 64

type arenaShard struct {
	mu     sync.RWMutex
	byHash map[digest.Digest]*block.Block
}

// Arena is a content-addressed block store shared by many ledgers: each
// sealed block is held exactly once, keyed by its header hash, in the
// spirit of fixed-path byte-tree storage where bodies are stored once
// and addressed by content. Per-node Stores built with NewStoreInArena
// become lightweight index structures (an ordered log of shared
// references plus a compact child index) over the arena instead of
// carrying private digest-keyed maps each — the storage shape that lets
// the simulator hold 10k–100k node ledgers in one process.
//
// Blocks must be sealed before Put (their header hash is the arena
// key, so it must be frozen); the arena hands them back by shared
// reference and they must be treated as read-only, exactly like Store
// reads. Safe for concurrent use.
type Arena struct {
	shards [arenaShardCount]arenaShard
	n      int64
	nmu    sync.Mutex
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	a := &Arena{}
	for i := range a.shards {
		a.shards[i].byHash = make(map[digest.Digest]*block.Block)
	}
	return a
}

func (a *Arena) shard(d digest.Digest) *arenaShard {
	return &a.shards[d[0]&(arenaShardCount-1)]
}

// Put registers a sealed block under its header hash and returns that
// hash. Content addressing makes Put idempotent: a block whose digest
// is already present is not stored again (the first copy wins, and
// equal digests imply equal content).
func (a *Arena) Put(b *block.Block) digest.Digest {
	d := b.Header.Hash()
	sh := a.shard(d)
	sh.mu.Lock()
	_, dup := sh.byHash[d]
	if !dup {
		sh.byHash[d] = b
	}
	sh.mu.Unlock()
	if !dup {
		a.nmu.Lock()
		a.n++
		a.nmu.Unlock()
	}
	return d
}

// Get returns the (sealed, read-only) block whose header hashes to d.
func (a *Arena) Get(d digest.Digest) (*block.Block, bool) {
	sh := a.shard(d)
	sh.mu.RLock()
	b, ok := sh.byHash[d]
	sh.mu.RUnlock()
	return b, ok
}

// Len returns the number of distinct blocks stored.
func (a *Arena) Len() int {
	a.nmu.Lock()
	defer a.nmu.Unlock()
	return int(a.n)
}
