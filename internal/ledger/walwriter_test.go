package ledger

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// openBackendWith mirrors openBackend with backend options (sync
// policy, commit observer).
func openBackendWith(t *testing.T, dir string, opts RecoverOptions, bopts ...BackendOption) (*FileBackend, *NodeState) {
	t.Helper()
	fb, err := OpenFileBackend(dir, bopts...)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	st, err := fb.Recover(opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.Attach(fb)
	return fb, st
}

func TestSyncPolicyParseStringRoundtrip(t *testing.T) {
	for _, s := range []string{"always", "batch", "interval=50ms"} {
		p, err := ParseSyncPolicy(s)
		if err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("ParseSyncPolicy(%q).String() = %q", s, p.String())
		}
		q, err := ParseSyncPolicy(p.String())
		if err != nil || q != p {
			t.Errorf("roundtrip of %q: %v %v", s, q, err)
		}
	}
	// The empty string and the zero value are the per-block default.
	if p, err := ParseSyncPolicy(""); err != nil || !p.PerBlock() {
		t.Fatalf("empty policy: %v %v", p, err)
	}
	var zero SyncPolicy
	if !zero.PerBlock() || zero.Validate() != nil || zero.String() != "always" {
		t.Fatal("zero SyncPolicy is not SyncAlways")
	}
	if SyncBatch().PerBlock() || !SyncBatch().Batched() {
		t.Fatal("SyncBatch predicates wrong")
	}
	if SyncInterval(time.Second).Every() != time.Second || SyncAlways().Every() != 0 {
		t.Fatal("Every() wrong")
	}
	for _, s := range []string{"sometimes", "interval=", "interval=-5ms", "interval=0"} {
		if _, err := ParseSyncPolicy(s); err == nil {
			t.Errorf("ParseSyncPolicy(%q) accepted", s)
		}
	}
	if err := SyncInterval(0).Validate(); err == nil {
		t.Fatal("SyncInterval(0) validated")
	}
}

// commitLog is a test CommitObserver recording every window.
type commitLog struct {
	mu      sync.Mutex
	windows []int
	bytes   int64
}

func (c *commitLog) OnWALCommit(blocks int, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows = append(c.windows, blocks)
	c.bytes += n
}

// TestRecoveryGroupCommitBatchWindow pins the SyncBatch contract: a
// whole window of staged block records is acknowledged by exactly one
// fsync at Commit, the observer sees the window, an empty Commit is
// free, and everything committed survives a reopen.
func TestRecoveryGroupCommitBatchWindow(t *testing.T) {
	dir := t.TempDir()
	obs := &commitLog{}
	fb, st := openBackendWith(t, dir, walOpts(), WithSyncPolicy(SyncBatch()), WithCommitObserver(obs))
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 5, nil)
	for _, b := range blocks {
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if stats := fb.WALStats(); stats.Fsyncs != 0 {
		t.Fatalf("%d fsyncs before Commit under SyncBatch", stats.Fsyncs)
	}
	if fb.PendingBlocks() != 5 {
		t.Fatalf("pending = %d, want 5", fb.PendingBlocks())
	}
	if err := fb.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	stats := fb.WALStats()
	if stats.Fsyncs != 1 {
		t.Fatalf("%d fsyncs for one 5-block window, want 1", stats.Fsyncs)
	}
	if stats.BytesCommitted == 0 {
		t.Fatal("no bytes accounted to the window")
	}
	obs.mu.Lock()
	windows, obsBytes := append([]int(nil), obs.windows...), obs.bytes
	obs.mu.Unlock()
	if len(windows) != 1 || windows[0] != 5 || obsBytes != stats.BytesCommitted {
		t.Fatalf("observer saw windows=%v bytes=%d, stats=%+v", windows, obsBytes, stats)
	}
	// Nothing staged: Commit is a no-op, not another fsync.
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := fb.WALStats().Fsyncs; got != 1 {
		t.Fatalf("empty Commit fsynced (%d total)", got)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, walOpts())
	defer fb2.Close()
	if st2.Store.Len() != 5 {
		t.Fatalf("recovered %d blocks, want 5", st2.Store.Len())
	}
}

// TestRecoveryGroupCommitConcurrentAlways hammers the SyncAlways path
// with concurrent LogBlock callers: every caller must be acknowledged
// (its record fsync-covered) and the backend must stay recoverable.
// The callers all log the same seq-0 block, so replay idempotency
// collapses them to one stored block — WAL order is irrelevant.
func TestRecoveryGroupCommitConcurrentAlways(t *testing.T) {
	dir := t.TempDir()
	fb, _ := openBackendWith(t, dir, walOpts())
	key := identity.Deterministic(1, 1)
	b0 := chainFor(t, key, 1, nil)[0]

	const workers, per = 4, 8
	errs := make(chan error, workers*per)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				errs <- fb.LogBlock(b0)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := fb.WALStats()
	if stats.Fsyncs < 1 || stats.Fsyncs > workers*per {
		t.Fatalf("fsyncs = %d for %d acknowledged records", stats.Fsyncs, workers*per)
	}
	t.Logf("group commit: %d records acknowledged by %d fsyncs", workers*per, stats.Fsyncs)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, st2 := openBackend(t, dir, walOpts())
	defer fb2.Close()
	if st2.Store.Len() != 1 {
		t.Fatalf("recovered %d blocks, want 1", st2.Store.Len())
	}
}

// TestRecoveryUnackedDiscardAfterCrash is the batched-policy crash
// proof. A SIGKILL cannot evict the page cache, so the on-disk image a
// test reads back always contains staged-but-unacknowledged records;
// the power-loss outcome is emulated by copying the WAL and cutting it
// inside the open window (anywhere past the last fsync acknowledgement
// is fair game for real loss). Recovery must keep every acknowledged
// block, account the discarded tail, and produce a state byte-identical
// to an uninterrupted run over the surviving prefix.
func TestRecoveryUnackedDiscardAfterCrash(t *testing.T) {
	dir := t.TempDir()
	fb, st := openBackendWith(t, dir, walOpts(), WithSyncPolicy(SyncBatch()))
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 5, nil)
	for _, b := range blocks[:3] {
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := fb.Commit(); err != nil { // acknowledgement point: 3 blocks durable
		t.Fatal(err)
	}
	for _, b := range blocks[3:] { // staged, never acknowledged
		if err := st.Store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	fb.mu.Lock()
	synced, good := fb.syncedOff, fb.goodOff
	fb.mu.Unlock()
	if synced >= good || synced%3 != 0 {
		t.Fatalf("offsets synced=%d good=%d", synced, good)
	}
	recLen := synced / 3 // three identical committed records
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != good {
		t.Fatalf("wal.log holds %d bytes, staged %d", len(raw), good)
	}

	// Oracle states: an uninterrupted node that only ever sealed the
	// first k blocks.
	oracle := func(k int) []byte {
		st := walState()
		for _, b := range blocks[:k] {
			if err := st.Store.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		return stateBytes(t, st)
	}

	for _, tc := range []struct {
		name       string
		cut        int64
		wantBlocks int
		torn       bool
		tornBytes  int64
	}{
		// Mid-record cuts discard the tear; the acknowledged prefix is
		// the floor, intact unacknowledged records above it may survive.
		{"mid-first-unacked", synced + 1, 3, true, 1},
		{"mid-last-record", good - 1, 4, true, recLen - 1},
		{"window-boundary", good, 5, false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, walFileName), raw[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			fb2, st2 := openBackend(t, cdir, walOpts())
			defer fb2.Close()
			if st2.Store.Len() != tc.wantBlocks {
				t.Fatalf("recovered %d blocks, want %d", st2.Store.Len(), tc.wantBlocks)
			}
			rep := fb2.RecoveryReport()
			if rep.TornTail != tc.torn || int64(rep.TornBytes) != tc.tornBytes {
				t.Fatalf("report torn=%v bytes=%d, want torn=%v bytes=%d",
					rep.TornTail, rep.TornBytes, tc.torn, tc.tornBytes)
			}
			if rep.WALBlocks != tc.wantBlocks {
				t.Fatalf("report WALBlocks = %d, want %d", rep.WALBlocks, tc.wantBlocks)
			}
			if !bytes.Equal(stateBytes(t, st2), oracle(tc.wantBlocks)) {
				t.Fatal("recovered state differs from an uninterrupted run over the same prefix")
			}
		})
	}
	_ = fb.Close()
}

// TestRecoveryIntervalPolicyCommits: under SyncInterval the committer's
// ticker closes windows without any caller involvement — a staged
// block becomes durable within the interval (bounded staleness).
func TestRecoveryIntervalPolicyCommits(t *testing.T) {
	dir := t.TempDir()
	fb, st := openBackendWith(t, dir, walOpts(), WithSyncPolicy(SyncInterval(2*time.Millisecond)))
	key := identity.Deterministic(1, 1)
	if err := st.Store.Append(chainFor(t, key, 1, nil)[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for fb.WALStats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval committer never closed the window")
		}
		time.Sleep(time.Millisecond)
	}
	if stats := fb.WALStats(); stats.BytesCommitted == 0 {
		t.Fatalf("fsync with no bytes accounted: %+v", stats)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, st2 := openBackend(t, dir, walOpts())
	defer fb2.Close()
	if st2.Store.Len() != 1 {
		t.Fatalf("recovered %d blocks, want 1", st2.Store.Len())
	}
}

// TestRecoveryParallelSerialEquivalence is the tentpole equivalence
// proof for parallel replay: over clean, torn, forged, gapped and
// wrong-owner fixtures — WAL-heavy and snapshot-heavy — Recover with
// Workers=1 and Workers=4 must return byte-identical states, identical
// reports, and identical error strings. Parallelism may never change
// what recovery accepts, rejects, or says.
func TestRecoveryParallelSerialEquivalence(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ring := identity.NewRing()
	if err := ring.Register(key.ID, key.Public); err != nil {
		t.Fatal(err)
	}
	opts := RecoverOptions{Owner: 1, Params: testParams(), Ring: ring}
	blocks := chainFor(t, key, 6, nil)

	// cleanDir: six own blocks plus lazy-tier records, all in wal.log.
	cleanDir := func(t *testing.T) string {
		dir := t.TempDir()
		fb, st := openBackendWith(t, dir, opts, WithSyncPolicy(SyncBatch()))
		for _, b := range blocks {
			if err := st.Store.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range chainFor(t, identity.Deterministic(9, 1), 2, nil) {
			st.Trust.Add(b.Header.Clone())
		}
		st.Cache.Update(9, digest.Sum([]byte("nine")))
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	walOnly := func(t *testing.T, recs ...[]byte) string {
		dir := t.TempDir()
		var log []byte
		for _, r := range recs {
			log = appendWALRecord(log, walKindBlock, r)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), log, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	fixtures := []struct {
		name string
		mk   func(t *testing.T) string
	}{
		{"wal", cleanDir},
		{"snapshot", func(t *testing.T) string {
			dir := cleanDir(t)
			fb, _ := openBackendWith(t, dir, opts) // Recover normalizes: snapshot + empty WAL
			if err := fb.Close(); err != nil {
				t.Fatal(err)
			}
			return dir
		}},
		{"torn-tail", func(t *testing.T) string {
			dir := cleanDir(t)
			path := filepath.Join(dir, walFileName)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
				t.Fatal(err)
			}
			return dir
		}},
		{"forged-block", func(t *testing.T) string {
			forged := blocks[1].Clone()
			forged.Body[0] ^= 0xFF // valid frame CRC, fails Ring verification
			return walOnly(t, block.Encode(blocks[0]), block.Encode(forged))
		}},
		{"seq-gap", func(t *testing.T) string {
			return walOnly(t, block.Encode(blocks[1]))
		}},
		{"wrong-owner", func(t *testing.T) string {
			foreign := chainFor(t, identity.Deterministic(2, 1), 1, nil)[0]
			return walOnly(t, block.Encode(foreign))
		}},
		{"forged-snapshot-block", func(t *testing.T) string {
			// Tamper a block *after* it entered the store, then snapshot:
			// the CRC covers the tampered bytes (so it passes), and only
			// the cryptographic re-verification can catch it.
			st := walState()
			for _, b := range blocks[:3] {
				if err := st.Store.Append(b); err != nil {
					t.Fatal(err)
				}
			}
			tampered, err := st.Store.Get(1)
			if err != nil {
				t.Fatal(err)
			}
			tampered.Body[0] ^= 0xFF
			dir := t.TempDir()
			var buf bytes.Buffer
			if err := st.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, snapshotFileName), buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			tampered.Body[0] ^= 0xFF // restore the shared fixture block
			return dir
		}},
	}

	type outcome struct {
		err    string
		state  []byte
		report RecoveryReport
	}
	recoverWith := func(t *testing.T, src string, workers int) outcome {
		cdir := t.TempDir()
		copyLedgerDir(t, src, cdir) // Recover normalizes the dir; keep the fixture pristine
		fb, err := OpenFileBackend(cdir)
		if err != nil {
			t.Fatal(err)
		}
		defer fb.Close()
		o := opts
		o.Workers = workers
		st, err := fb.Recover(o)
		if err != nil {
			return outcome{err: err.Error()}
		}
		rep := fb.RecoveryReport()
		rep.Duration = 0 // wall time; everything else must match exactly
		return outcome{state: stateBytes(t, st), report: rep}
	}

	for _, fix := range fixtures {
		t.Run(fix.name, func(t *testing.T) {
			dir := fix.mk(t)
			serial := recoverWith(t, dir, 1)
			parallel := recoverWith(t, dir, 4)
			if serial.err != parallel.err {
				t.Fatalf("error diverged:\n  serial:   %q\n  parallel: %q", serial.err, parallel.err)
			}
			if serial.err != "" {
				return
			}
			if !bytes.Equal(serial.state, parallel.state) {
				t.Fatal("recovered states diverged between serial and parallel replay")
			}
			if serial.report != parallel.report {
				t.Fatalf("reports diverged:\n  serial:   %+v\n  parallel: %+v", serial.report, parallel.report)
			}
		})
	}
}
