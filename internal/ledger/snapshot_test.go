package ledger

import (
	"bytes"
	"errors"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func snapshotStore(t *testing.T, n int) *Store {
	t.Helper()
	key := identity.Deterministic(4, 4)
	s := NewStore(4)
	extra := []block.DigestRef{{Node: 9, Digest: digest.Sum([]byte("nb"))}}
	for _, b := range chainFor(t, key, n, extra) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snapshotStore(t, 5)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if restored.Owner() != s.Owner() || restored.Len() != s.Len() {
		t.Fatal("snapshot lost owner or blocks")
	}
	for seq := uint32(0); seq < uint32(s.Len()); seq++ {
		a, err := s.Get(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Get(seq)
		if err != nil {
			t.Fatal(err)
		}
		if a.Header.Hash() != b.Header.Hash() || !bytes.Equal(a.Body, b.Body) {
			t.Fatalf("block %d differs after restore", seq)
		}
	}
	// Indexes must be rebuilt: responder queries still work.
	first, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	child, ok := restored.OldestContaining(first.Header.Hash())
	if !ok || child.Header.Seq != 1 {
		t.Fatal("restored store lost the digest index")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewStore(7)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 || restored.Owner() != 7 {
		t.Fatal("empty snapshot wrong")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	s := snapshotStore(t, 3)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{9, 17, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("cut %d: want ErrBadSnapshot, got %v", cut, err)
		}
	}
}

func TestSnapshotDetectsCorruptChain(t *testing.T) {
	// Flipping a byte inside a block encoding breaks either the decode
	// or the append invariants.
	s := snapshotStore(t, 3)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Offset 28 is the first block's Origin field (8 magic + 8 meta +
	// 4 length + version + time): changing it must trip ErrWrongOwner.
	raw[28] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}
