package ledger

import (
	"errors"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func testParams() block.Params {
	p := block.DefaultParams()
	p.Difficulty = 2
	return p
}

// chainFor builds a small log of n blocks for node id, where every block
// after genesis references the previous one plus extra neighbor refs.
func chainFor(t testing.TB, key identity.KeyPair, n int, extra []block.DigestRef) []*block.Block {
	t.Helper()
	p := testParams()
	var out []*block.Block
	prev := digest.Digest{}
	for i := 0; i < n; i++ {
		refs := append([]block.DigestRef{{Node: key.ID, Digest: prev}}, extra...)
		b, err := p.Build(key, uint32(i), uint32(i), []byte{byte(i)}, refs)
		if err != nil {
			t.Fatalf("Build %d: %v", i, err)
		}
		out = append(out, b)
		prev = b.Header.Hash()
	}
	return out
}

func TestStoreAppendGetLatest(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	blocks := chainFor(t, key, 3, nil)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if s.Len() != 3 || s.Owner() != 1 {
		t.Fatalf("Len/Owner wrong: %d %v", s.Len(), s.Owner())
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Seq != 1 {
		t.Fatal("Get(1) returned wrong block")
	}
	if s.Latest().Header.Seq != 2 {
		t.Fatal("Latest wrong")
	}
	if s.BodyBytes() != 3 {
		t.Fatalf("BodyBytes = %d, want 3", s.BodyBytes())
	}
}

func TestStoreRejectsWrongOriginAndSeq(t *testing.T) {
	key := identity.Deterministic(2, 1)
	s := NewStore(1)
	b := chainFor(t, key, 1, nil)[0]
	if err := s.Append(b); !errors.Is(err, ErrWrongOrigin) {
		t.Fatalf("want ErrWrongOrigin, got %v", err)
	}
	own := identity.Deterministic(1, 1)
	blocks := chainFor(t, own, 2, nil)
	if err := s.Append(blocks[1]); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("want ErrBadSeq, got %v", err)
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Get(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if s.Latest() != nil {
		t.Fatal("Latest on empty store should be nil")
	}
}

func TestStoreByHashAndOldestContaining(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	target := digest.Sum([]byte("neighbor block"))
	// Two blocks reference target; the oldest must win (Eq. 11).
	blocks := chainFor(t, key, 3, []block.DigestRef{{Node: 9, Digest: target}})
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.ByHash(blocks[1].Header.Hash()); !ok || got.Header.Seq != 1 {
		t.Fatal("ByHash lookup failed")
	}
	if _, ok := s.ByHash(digest.Sum([]byte("missing"))); ok {
		t.Fatal("ByHash hit for unknown digest")
	}
	oldest, ok := s.OldestContaining(target)
	if !ok || oldest.Header.Seq != 0 {
		t.Fatalf("OldestContaining returned seq %d, want 0", oldest.Header.Seq)
	}
	if s.CountContaining(target) != 3 {
		t.Fatalf("CountContaining = %d, want 3", s.CountContaining(target))
	}
	// Chain links: block 1's Δ contains block 0's hash.
	child, ok := s.OldestContaining(blocks[0].Header.Hash())
	if !ok || child.Header.Seq != 1 {
		t.Fatal("chain child lookup failed")
	}
}

func TestStoreSharedSealedReads(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	b := chainFor(t, key, 1, nil)[0]
	if err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	// Reads share one sealed block — no per-read body copy.
	got, _ := s.Get(0)
	again, _ := s.Get(0)
	if got != again {
		t.Fatal("Get must return the shared sealed block, not a copy")
	}
	if !got.Sealed() || !got.Header.Sealed() {
		t.Fatal("stored blocks must be sealed")
	}
	// Mutators work on clones, which never touch the stored block.
	mut := got.Clone()
	mut.Body[0] ^= 0xFF
	fresh, _ := s.Get(0)
	if fresh.Body[0] == mut.Body[0] {
		t.Fatal("clone aliases the stored body")
	}
}

func TestStoreAppendCopiesUnsealedBlocks(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	// A decode round-trip produces an unsealed block, as from a snapshot
	// or the wire; Append must defensively copy it.
	sealed := chainFor(t, key, 1, nil)[0]
	unsealed, err := block.Decode(block.Encode(sealed))
	if err != nil {
		t.Fatal(err)
	}
	if unsealed.Sealed() {
		t.Fatal("decoded block should start unsealed")
	}
	if err := s.Append(unsealed); err != nil {
		t.Fatal(err)
	}
	unsealed.Body[0] ^= 0xFF // caller keeps mutating its copy
	got, _ := s.Get(0)
	if got.Body[0] == unsealed.Body[0] {
		t.Fatal("Append shared memory with an unsealed caller block")
	}
	if !got.Header.Sealed() {
		t.Fatal("stored copy must be header-sealed")
	}
}

func TestStoreAppendPreservesFullSeal(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	// A restorer that knows the Params can fully seal a decoded block
	// before Append, carrying the body-root memo into the store.
	decoded, err := block.Decode(block.Encode(chainFor(t, key, 1, nil)[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := testParams().SealBlock(decoded); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(decoded); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(0)
	if !got.Sealed() {
		t.Fatal("fully sealed block lost its seal through Append")
	}
	if root, ok := got.CachedBodyRoot(testParams().LeafSize); !ok || root != got.Header.Root {
		t.Fatal("body-root memo missing or wrong after SealBlock + Append")
	}
}

func TestStoreModelBits(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	extra := []block.DigestRef{{Node: 5, Digest: digest.Sum([]byte("x"))}, {Node: 6, Digest: digest.Sum([]byte("y"))}}
	for _, b := range chainFor(t, key, 4, extra) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	m := block.DefaultSizeModel(100) // C = 800 bits
	// Each block: Δ has 3 entries (own prev + 2 neighbors) → matches
	// Eq. 2 with n = 2 neighbors: f_c + f_H*3 + C.
	want := int64(4) * int64(608+256*3+800)
	if got := s.ModelBits(m); got != want {
		t.Fatalf("ModelBits = %d, want %d", got, want)
	}
}

func TestDigestCache(t *testing.T) {
	c := NewDigestCache()
	d1, d2 := digest.Sum([]byte("b1")), digest.Sum([]byte("b2"))
	c.Update(5, d1)
	if got, ok := c.Get(5); !ok || got != d1 {
		t.Fatal("Get after Update failed")
	}
	c.Update(5, d2) // replaces, per Sec. III-D
	if got, _ := c.Get(5); got != d2 {
		t.Fatal("Update did not replace")
	}
	if c.Len() != 1 {
		t.Fatal("Len wrong")
	}
	c.Forget(5)
	if _, ok := c.Get(5); ok {
		t.Fatal("Forget failed")
	}
}

func TestDigestCacheSnapshot(t *testing.T) {
	c := NewDigestCache()
	dA, dB := digest.Sum([]byte("a")), digest.Sum([]byte("b"))
	c.Update(2, dA)
	c.Update(3, dB)
	prev := digest.Sum([]byte("prev"))
	refs := c.Snapshot(1, prev, []identity.NodeID{2, 3, 4})
	if len(refs) != 4 {
		t.Fatalf("snapshot size %d, want 4", len(refs))
	}
	if refs[0].Node != 1 || refs[0].Digest != prev {
		t.Fatal("own-previous entry must come first")
	}
	if refs[1].Digest != dA || refs[2].Digest != dB {
		t.Fatal("neighbor digests in wrong order")
	}
	if !refs[3].Digest.IsZero() {
		t.Fatal("unknown neighbor must contribute a zero placeholder")
	}
}

func TestTrustStoreAddAndChildOf(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	blocks := chainFor(t, key, 3, nil)
	h1 := blocks[1].Header.Clone()
	if !ts.Add(h1) {
		t.Fatal("first Add returned false")
	}
	if ts.Add(h1) {
		t.Fatal("duplicate Add returned true")
	}
	if ts.Len() != 1 {
		t.Fatal("Len wrong")
	}
	if !ts.Has(h1.Hash()) {
		t.Fatal("Has false for stored header")
	}
	// h1's Δ contains block 0's hash → h1 is a child of block 0.
	child, ok := ts.ChildOf(blocks[0].Header.Hash())
	if !ok || child.Hash() != h1.Hash() {
		t.Fatal("ChildOf failed for stored child")
	}
	if _, ok := ts.ChildOf(blocks[1].Header.Hash()); ok {
		t.Fatal("ChildOf hit for digest with no stored child")
	}
	if _, ok := ts.ChildOf(digest.Digest{}); ok {
		t.Fatal("ChildOf must never match zero digest")
	}
}

func TestTrustStoreSharedSealedReads(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	h := chainFor(t, key, 1, nil)[0].Header.Clone()
	ts.Add(h)
	// The store keeps its own sealed copy: the caller's header stays
	// mutable, and readers share the stored reference.
	got, ok := ts.Get(h.Hash())
	if !ok {
		t.Fatal("Get miss")
	}
	if !got.Sealed() {
		t.Fatal("stored headers must be sealed")
	}
	h.Signature[0] ^= 0xFF // caller mutates its own copy
	again, _ := ts.Get(got.Hash())
	if again != got {
		t.Fatal("Get must return the shared sealed header")
	}
	if again.Signature[0] == h.Signature[0] {
		t.Fatal("TrustStore aliases the caller's header")
	}
}

// TestTrustStoreSealedHeadersShared pins the scale-mode contract:
// a header that is already sealed is stored by reference, not cloned,
// so thousands of validators index one arena-resident header.
func TestTrustStoreSealedHeadersShared(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	h := &chainFor(t, key, 1, nil)[0].Header
	if !h.Sealed() {
		t.Fatal("built header should be sealed")
	}
	ts.Add(h)
	got, ok := ts.Get(h.Hash())
	if !ok {
		t.Fatal("Get miss")
	}
	if got != h {
		t.Fatal("sealed header was cloned instead of shared")
	}
}

// TestTrustStoreCapEvictsFIFO checks the bounded mode scale runs use:
// oldest-inserted headers leave first, both indexes shrink with them,
// and evicted headers can be re-learned.
func TestTrustStoreCapEvictsFIFO(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	ts.SetCap(2)
	blocks := chainFor(t, key, 4, nil)
	hs := make([]*block.Header, 4)
	for i := range blocks {
		hs[i] = &blocks[i].Header
	}
	ts.Add(hs[0])
	ts.Add(hs[1])
	ts.Add(hs[2]) // evicts hs[0]
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	if ts.Has(hs[0].Hash()) {
		t.Fatal("oldest header not evicted")
	}
	if !ts.Has(hs[1].Hash()) || !ts.Has(hs[2].Hash()) {
		t.Fatal("newer headers evicted")
	}
	// hs[1]'s Δ contains hs[0]'s hash, so the child index still answers
	// for the evicted block's digest; hs[0] itself was genesis (zero
	// prev), so its eviction removed no child entries... but adding
	// hs[3] must evict hs[1] and with it the child entry for hs[0].
	if _, ok := ts.ChildOf(hs[0].Hash()); !ok {
		t.Fatal("child index lost a live entry")
	}
	ts.Add(hs[3]) // evicts hs[1]
	if _, ok := ts.ChildOf(hs[0].Hash()); ok {
		t.Fatal("child index kept an evicted entry")
	}
	// Accounting shrinks with evictions: two live headers, one real
	// ref each (hs[2]'s prev, hs[3]'s prev).
	m := block.DefaultSizeModel(100)
	if got, want := ts.ModelBits(m), int64(2)*608+int64(2)*256; got != want {
		t.Fatalf("ModelBits = %d, want %d", got, want)
	}
	// An evicted header can be re-learned.
	if !ts.Add(hs[1]) {
		t.Fatal("re-adding evicted header failed")
	}
	if !ts.Has(hs[1].Hash()) {
		t.Fatal("re-added header missing")
	}
}

func TestTrustStoreModelBits(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	extra := []block.DigestRef{{Node: 7, Digest: digest.Sum([]byte("n"))}}
	blocks := chainFor(t, key, 2, extra)
	ts.Add(blocks[0].Header.Clone()) // genesis: own-prev zero (skipped) + 1 real ref
	ts.Add(blocks[1].Header.Clone()) // 2 real refs
	m := block.DefaultSizeModel(100)
	// headers*f_c + totalRefs*f_H; refs counted = 1 + 2 = 3.
	want := int64(2)*608 + int64(3)*256
	if got := ts.ModelBits(m); got != want {
		t.Fatalf("ModelBits = %d, want %d", got, want)
	}
}

func TestBlacklistBanAndRedemption(t *testing.T) {
	bl := NewBlacklist(2, 2)
	if bl.Banned(9) {
		t.Fatal("fresh node banned")
	}
	if bl.ReportFailure(9) {
		t.Fatal("first strike should not ban")
	}
	if !bl.ReportFailure(9) {
		t.Fatal("second strike should ban")
	}
	if !bl.Banned(9) || bl.BannedCount() != 1 {
		t.Fatal("ban not recorded")
	}
	// Redemption: two credits lift the ban.
	bl.Credit(9)
	if !bl.Banned(9) {
		t.Fatal("ban lifted too early")
	}
	bl.Credit(9)
	if bl.Banned(9) {
		t.Fatal("ban not lifted after quota")
	}
}

func TestBlacklistSuccessResetsStrikes(t *testing.T) {
	bl := NewBlacklist(2, 1)
	bl.ReportFailure(3)
	bl.ReportSuccess(3)
	if bl.ReportFailure(3) {
		t.Fatal("strikes should have been reset by success")
	}
}

func TestBlacklistCreditNonBannedNoop(t *testing.T) {
	bl := NewBlacklist(0, 0) // defaults
	bl.Credit(4)
	if bl.Banned(4) {
		t.Fatal("credit must not ban")
	}
	for i := 0; i < DefaultBanThreshold; i++ {
		bl.ReportFailure(4)
	}
	if !bl.Banned(4) {
		t.Fatal("default threshold did not ban")
	}
	// Failure reports while banned stay banned.
	if !bl.ReportFailure(4) {
		t.Fatal("banned node should remain banned")
	}
}
