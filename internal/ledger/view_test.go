package ledger

import (
	"errors"
	"sync"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
)

// TestViewImmutablePrefix pins the fence semantics: a view captured at
// length n answers Get/OldestContaining exactly as the store did when
// it held n blocks, no matter what is appended afterwards.
func TestViewImmutablePrefix(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	blocks := chainFor(t, key, 4, nil)
	for _, b := range blocks[:2] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	v := s.View()
	if v.Len() != 2 || v.Owner() != 1 {
		t.Fatalf("Len/Owner = %d/%v, want 2/1", v.Len(), v.Owner())
	}
	// blocks[2]'s Δ contains blocks[1]'s hash; before it is appended,
	// neither the store nor the view knows a child for blocks[1].
	d1 := blocks[1].Header.Hash()
	if _, ok := v.OldestContaining(d1); ok {
		t.Fatal("view found a child that does not exist yet")
	}
	for _, b := range blocks[2:] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// The live store sees the new child; the fenced view must not.
	if b, ok := s.OldestContaining(d1); !ok || b.Header.Seq != 2 {
		t.Fatalf("live store OldestContaining = %v, %v; want seq 2", b, ok)
	}
	if _, ok := v.OldestContaining(d1); ok {
		t.Fatal("fenced view observed a post-fence append")
	}
	// In-fence children stay visible.
	if b, ok := v.OldestContaining(blocks[0].Header.Hash()); !ok || b.Header.Seq != 1 {
		t.Fatalf("in-fence OldestContaining = %v, %v; want seq 1", b, ok)
	}
	// Get is fenced the same way.
	if _, err := v.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get beyond fence = %v, want ErrNotFound", err)
	}
	if b, err := v.Get(1); err != nil || b.Header.Seq != 1 {
		t.Fatalf("Get(1) = %v, %v", b, err)
	}
	// A fresh view sees everything.
	if got := s.View().Len(); got != 4 {
		t.Fatalf("fresh view Len = %d, want 4", got)
	}
}

// TestViewRaceWithAppends models the pipelined slot hand-off: audits
// of slot t read a responder's store through a view fenced at the
// slot boundary while the owner (slot t+1 generation) keeps
// appending. Run under -race this pins the immutable-prefix read
// path; the assertions pin that the fenced answers never change while
// appends land.
func TestViewRaceWithAppends(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	blocks := chainFor(t, key, 24, nil)
	for _, b := range blocks[:12] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	v := s.View()
	preFence := blocks[4].Header.Hash()   // child (seq 5) is in-fence
	lastFence := blocks[11].Header.Hash() // child (seq 12) arrives post-fence

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 300; n++ {
				if b, ok := v.OldestContaining(preFence); !ok || b.Header.Seq != 5 {
					t.Errorf("fenced child moved: %v, %v", b, ok)
					return
				}
				if _, ok := v.OldestContaining(lastFence); ok {
					t.Error("fenced view observed an in-flight append")
					return
				}
				if b, err := v.Get(11); err != nil || b.Header.Seq != 11 {
					t.Errorf("fenced Get(11) = %v, %v", b, err)
					return
				}
				if _, err := v.Get(12); err == nil {
					t.Error("fenced Get crossed the fence")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range blocks[12:] {
			if err := s.Append(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Len() != 24 || v.Len() != 12 {
		t.Fatalf("Len store/view = %d/%d, want 24/12", s.Len(), v.Len())
	}
}
