package ledger

import (
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/pow"
)

// BenchmarkHotpathStoreOldestContaining measures the REQ_CHILD
// responder lookup (Alg. 4) with MB-scale bodies — the call that used
// to deep-copy the whole block per hop and now returns a shared sealed
// reference.
// BenchmarkHotpathWALAppend prices durability on the seal path, layer
// by layer: record is the pure codec (frame + CRC-32C into a reused
// buffer), buffered is a journaled trust write (no fsync — the lazy
// tier), fsync is LogBlock, the full write-ahead append whose fsync
// gates Store.Append publishing a sealed block. The in-memory default
// (no backend attached) is a nil-journal branch, i.e. free — that
// claim is guarded by BenchmarkHotpathFaultFree and
// BenchmarkHotpathSimStep running without a data dir.
func BenchmarkHotpathWALAppend(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	blk, err := p.Build(key, 0, 0, make([]byte, 256), []block.DigestRef{{Node: 1}})
	if err != nil {
		b.Fatal(err)
	}
	enc := block.Encode(blk)
	open := func(b *testing.B) *FileBackend {
		b.Helper()
		fb, err := OpenFileBackend(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fb.Recover(RecoverOptions{Owner: 1, Params: p}); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = fb.Close() })
		return fb
	}

	b.Run("record", func(b *testing.B) {
		buf := make([]byte, 0, walHeaderLen+len(enc)+walCRCLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendWALRecord(buf[:0], walKindBlock, enc)
		}
	})
	b.Run("buffered", func(b *testing.B) {
		fb := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fb.LogTrust(&blk.Header, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fsync", func(b *testing.B) {
		fb := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fb.LogBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHotpathStoreOldestContaining(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	s := NewStore(1)
	target := digest.Sum([]byte("parent header"))
	body := make([]byte, 1_000_000) // 1 MB, the paper's largest C
	prev := digest.Digest{}
	for i := 0; i < 8; i++ {
		refs := []block.DigestRef{{Node: 1, Digest: prev}, {Node: 9, Digest: target}}
		blk, err := p.Build(key, uint32(i), uint32(i), body, refs)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
		prev = blk.Header.Hash()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.OldestContaining(target); !ok {
			b.Fatal("lookup miss")
		}
	}
}
