package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/pow"
)

// BenchmarkHotpathStoreOldestContaining measures the REQ_CHILD
// responder lookup (Alg. 4) with MB-scale bodies — the call that used
// to deep-copy the whole block per hop and now returns a shared sealed
// reference.
// BenchmarkHotpathWALAppend prices durability on the seal path, layer
// by layer: record is the pure codec (frame + CRC-32C into a reused
// buffer), buffered is a journaled trust write (no fsync — the lazy
// tier), fsync is LogBlock, the full write-ahead append whose fsync
// gates Store.Append publishing a sealed block. The in-memory default
// (no backend attached) is a nil-journal branch, i.e. free — that
// claim is guarded by BenchmarkHotpathFaultFree and
// BenchmarkHotpathSimStep running without a data dir.
func BenchmarkHotpathWALAppend(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	blk, err := p.Build(key, 0, 0, make([]byte, 256), []block.DigestRef{{Node: 1}})
	if err != nil {
		b.Fatal(err)
	}
	enc := block.Encode(blk)
	open := func(b *testing.B) *FileBackend {
		b.Helper()
		fb, err := OpenFileBackend(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fb.Recover(RecoverOptions{Owner: 1, Params: p}); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = fb.Close() })
		return fb
	}

	b.Run("record", func(b *testing.B) {
		buf := make([]byte, 0, walHeaderLen+len(enc)+walCRCLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendWALRecord(buf[:0], walKindBlock, enc)
		}
	})
	b.Run("buffered", func(b *testing.B) {
		fb := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fb.LogTrust(&blk.Header, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fsync", func(b *testing.B) {
		fb := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fb.LogBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHotpathWALGroupCommit prices the durable seal path under
// the batched sync policy: LogBlock stages records without blocking
// and one Commit fsync acknowledges the whole window, so the
// per-block cost is the codec plus 1/batch of an fsync. batch=1 is
// the group-commit writer doing SyncAlways-shaped work (one window
// per block, the ~185 µs fsync baseline of
// BenchmarkHotpathWALAppend/fsync); batch=64 must amortize the fsync
// to noise — the durable path converging on the memory path.
func BenchmarkHotpathWALGroupCommit(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	blk, err := p.Build(key, 0, 0, make([]byte, 256), []block.DigestRef{{Node: 1}})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			fb, err := OpenFileBackend(b.TempDir(), WithSyncPolicy(SyncBatch()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fb.Recover(RecoverOptions{Owner: 1, Params: p}); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = fb.Close() })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fb.LogBlock(blk); err != nil {
					b.Fatal(err)
				}
				if (i+1)%batch == 0 {
					if err := fb.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// copyLedgerDir clones a fixture data dir file by file, so each
// recovery iteration gets a pristine copy (Recover normalizes the dir
// it runs on: a WAL-heavy fixture would become snapshot-heavy after
// the first iteration).
func copyLedgerDir(b testing.TB, src, dst string) {
	b.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverCold measures the cold start: open a data dir and
// rebuild the node state, with full cryptographic re-verification
// (Ring set: PoW + ed25519 per block). The snapshot fixture holds all
// blocks in snapshot v2; the wal fixture holds the same blocks as raw
// WAL records. serial pins Workers=1, parallel uses GOMAXPROCS — on
// this 1-CPU container the two match by construction (the win is
// multi-core-free: identical state, report and errors at any width),
// so the parallel rows exist to price the fan-out overhead and to
// show the speedup on real hardware.
func BenchmarkRecoverCold(b *testing.B) {
	const n = 512
	key := identity.Deterministic(1, 4)
	ring := identity.NewRing()
	if err := ring.Register(key.ID, key.Public); err != nil {
		b.Fatal(err)
	}
	opts := RecoverOptions{Owner: 1, Params: testParams(), Ring: ring}

	// Build the WAL-heavy fixture: every block staged through the
	// journal, one commit window, no compaction.
	walDir := b.TempDir()
	fb, err := OpenFileBackend(walDir, WithSyncPolicy(SyncBatch()))
	if err != nil {
		b.Fatal(err)
	}
	st, err := fb.Recover(opts)
	if err != nil {
		b.Fatal(err)
	}
	st.Attach(fb)
	for _, blk := range chainFor(b, key, n, nil) {
		if err := st.Store.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
	if err := fb.Close(); err != nil {
		b.Fatal(err)
	}
	// The snapshot-heavy fixture is the same dir after one recovery
	// normalized it (fresh snapshot, empty WAL).
	snapDir := b.TempDir()
	copyLedgerDir(b, walDir, snapDir)
	fb2, err := OpenFileBackend(snapDir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fb2.Recover(opts); err != nil {
		b.Fatal(err)
	}
	if err := fb2.Close(); err != nil {
		b.Fatal(err)
	}

	for _, fix := range []struct{ name, dir string }{
		{"snapshot", snapDir},
		{"wal", walDir},
	} {
		for _, par := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel", 0},
		} {
			b.Run(fix.name+"/"+par.name, func(b *testing.B) {
				o := opts
				o.Workers = par.workers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					dir := b.TempDir()
					copyLedgerDir(b, fix.dir, dir)
					b.StartTimer()
					rfb, err := OpenFileBackend(dir)
					if err != nil {
						b.Fatal(err)
					}
					rst, err := rfb.Recover(o)
					if err != nil {
						b.Fatal(err)
					}
					if rst.Store.Len() != n {
						b.Fatalf("recovered %d blocks, want %d", rst.Store.Len(), n)
					}
					b.StopTimer()
					if err := rfb.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

func BenchmarkHotpathStoreOldestContaining(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	s := NewStore(1)
	target := digest.Sum([]byte("parent header"))
	body := make([]byte, 1_000_000) // 1 MB, the paper's largest C
	prev := digest.Digest{}
	for i := 0; i < 8; i++ {
		refs := []block.DigestRef{{Node: 1, Digest: prev}, {Node: 9, Digest: target}}
		blk, err := p.Build(key, uint32(i), uint32(i), body, refs)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
		prev = blk.Header.Hash()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.OldestContaining(target); !ok {
			b.Fatal("lookup miss")
		}
	}
}
