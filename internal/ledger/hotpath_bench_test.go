package ledger

import (
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/pow"
)

// BenchmarkHotpathStoreOldestContaining measures the REQ_CHILD
// responder lookup (Alg. 4) with MB-scale bodies — the call that used
// to deep-copy the whole block per hop and now returns a shared sealed
// reference.
func BenchmarkHotpathStoreOldestContaining(b *testing.B) {
	key := identity.Deterministic(1, 1)
	p := block.DefaultParams()
	p.Difficulty = pow.Difficulty(0)
	s := NewStore(1)
	target := digest.Sum([]byte("parent header"))
	body := make([]byte, 1_000_000) // 1 MB, the paper's largest C
	prev := digest.Digest{}
	for i := 0; i < 8; i++ {
		refs := []block.DigestRef{{Node: 1, Digest: prev}, {Node: 9, Digest: target}}
		blk, err := p.Build(key, uint32(i), uint32(i), body, refs)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
		prev = blk.Header.Hash()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.OldestContaining(target); !ok {
			b.Fatal("lookup miss")
		}
	}
}
