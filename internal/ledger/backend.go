package ledger

import (
	"errors"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Durable persistence (paper motivation: each device is the *sole*
// holder of its own ledger S_i — a node that reboots and loses state
// loses data nobody else stores). The ledger structures stay in-memory
// and index-rich; durability is layered underneath them through a
// Journal that observes every mutation, and a Backend that can compact
// the journal into a snapshot and recover the whole node state after a
// crash.
//
// # Sealed-immutability contract
//
// Every value handed to a Journal is sealed and immutable by the
// codebase-wide contract (see the block package doc): Store.Append
// seals before logging, TrustStore.Add stores sealed headers, and
// digests are values. A Backend must treat them as read-only — it may
// retain references across calls (they never mutate), and it must
// never hand a logged block or header to anything that writes to it.
// Conversely, everything a Backend returns from Recover must be fully
// sealed again: replay decodes wire bytes, so RecoverOptions.Params is
// used to re-seal (block.Params.SealBlock) and — when a Ring is given
// — re-verify each block before it re-enters a Store.

// Backend errors.
var (
	// ErrBackendClosed is returned by journal and lifecycle calls on a
	// backend that has already been closed.
	ErrBackendClosed = errors.New("ledger: backend closed")
)

// Journal receives every durable mutation of a node's ledger state, in
// the mutating goroutine, inside the owning structure's write lock —
// so the journal order is exactly the apply order, and replaying the
// journal reproduces the state byte for byte. Implementations must
// therefore be fast (buffered writes; only LogBlock is expected to
// fsync) and must not call back into the ledger structures.
//
// A nil Journal (the default on every structure) is the in-memory
// no-op backend: no call sites pay more than a nil check.
type Journal interface {
	// LogBlock records a sealed block appended to the owner's S_i. An
	// error fails the append: durability is write-ahead, a block that
	// cannot be logged is not accepted.
	LogBlock(b *block.Block) error
	// LogTrust records a sealed header added to H_i. inserted is the
	// header's zero-based index in H_i's lifetime insertion sequence
	// (TrustStore.Insertions at Add time); recovery uses it to skip
	// records a snapshot already accounts for, FIFO evictions included.
	LogTrust(h *block.Header, inserted int64) error
	// LogDigest records a digest-cache upsert: from's latest digest.
	LogDigest(from identity.NodeID, d digest.Digest) error
	// LogForget records a digest-cache entry removal (dynamic leave),
	// so a recovered cache does not resurrect departed neighbors.
	LogForget(from identity.NodeID) error
}

// NodeState is the whole recoverable state of one node's ledger: the
// own-block log S_i, the PoP trust store H_i (with its FIFO cap), and
// the neighbor digest cache A_i. It is what snapshot v2 serializes and
// what Backend.Recover returns.
type NodeState struct {
	Store *Store
	Trust *TrustStore
	Cache *DigestCache
	// TrustCap is the H_i FIFO bound in force (0 = unbounded). It is
	// persisted so a capped node keeps its bound across restarts.
	TrustCap int
}

// NewNodeState returns an empty state for the given owner with the
// given trust cap.
func NewNodeState(owner identity.NodeID, trustCap int) *NodeState {
	st := &NodeState{
		Store:    NewStore(owner),
		Trust:    NewTrustStore(),
		Cache:    NewDigestCache(),
		TrustCap: trustCap,
	}
	if trustCap > 0 {
		st.Trust.SetCap(trustCap)
	}
	return st
}

// Attach installs j as the journal on every structure of the state.
// Call after recovery, never before (replay must not re-journal).
func (st *NodeState) Attach(j Journal) {
	st.Store.SetJournal(j)
	st.Trust.SetJournal(j)
	st.Cache.SetJournal(j)
}

// RecoverOptions parameterizes Backend.Recover.
type RecoverOptions struct {
	// Owner is the recovering node; a snapshot or WAL belonging to a
	// different node fails recovery with ErrWrongOwner.
	Owner identity.NodeID
	// Params re-seals replayed blocks and headers
	// (block.Params.SealBlock), so everything Recover returns honors
	// the sealed contract.
	Params block.Params
	// Ring, when non-nil, cryptographically re-verifies every replayed
	// block (block.Params.Validate): PoW, signature, structure. Use it
	// when the data dir is untrusted media.
	Ring *identity.Ring
	// TrustCap, when > 0, overrides the snapshot's recorded cap (a
	// redeployment with a new -trust-cap wins); 0 adopts the recorded
	// cap so the bound survives restarts unconfigured.
	TrustCap int
	// Workers bounds the verification parallelism of replay: the
	// re-seal (and, with a Ring, signature/PoW) checks of snapshot and
	// WAL blocks fan out on a pool this wide while decoding and all
	// structural checks stay sequential. 0 uses GOMAXPROCS; 1 runs
	// fully serial. The recovered state, RecoveryReport, and every
	// error are identical at any width.
	Workers int
}

// Backend is the pluggable durability layer under a node's ledger: a
// Journal plus snapshot/recovery lifecycle. The in-memory default is
// simply the absence of one (nil journal everywhere); FileBackend is
// the file-backed implementation (append-only WAL + snapshot-v2
// compaction).
type Backend interface {
	Journal

	// Recover rebuilds the node state recorded so far: snapshot first,
	// then WAL replay (torn tails tolerated). On a fresh backend it
	// returns an empty state. Call once, before attaching the backend
	// as journal and before the node sees traffic.
	Recover(opts RecoverOptions) (*NodeState, error)

	// Compact folds the journal into a fresh snapshot. gather is
	// called after the WAL has been rotated and must return a
	// consistent view of the current state; mutations logged while the
	// snapshot is written land in the new WAL generation and replay
	// idempotently over the snapshot on recovery.
	Compact(gather func() (*NodeState, error)) error

	// PendingBlocks reports how many block records the current WAL
	// generation holds — the compaction trigger.
	PendingBlocks() int

	// Commit closes the current commit window, fsyncing every staged
	// block record: the acknowledgement point drivers invoke at their
	// flush boundary under a batched SyncPolicy. A no-op when nothing
	// is staged.
	Commit() error

	// Sync flushes and fsyncs everything logged so far, and surfaces
	// any deferred journal error (trust/digest records are buffered;
	// their write errors are sticky and reported here and on Close).
	Sync() error

	// Close syncs and releases the backend. Journal calls after Close
	// return ErrBackendClosed.
	Close() error
}
