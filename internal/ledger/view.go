package ledger

import (
	"fmt"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// View is an immutable-prefix read view of a Store: it exposes only
// the blocks with Seq < Len(), the store's length at the moment the
// view was captured. Because a Store is append-only and its blocks are
// sealed, everything inside the prefix is frozen — a reader holding a
// View observes exactly the store state of the capture point no matter
// how many blocks the owner appends concurrently.
//
// This is the slot-fenced accessor behind the simulator's pipelined
// audits: a view captured at the end of slot t answers responder
// queries (Get, OldestContaining) as if no slot-(t+1) generation had
// happened yet, so audits of slot t stay byte-identical to a fully
// barriered schedule even while the next slot's blocks are being
// appended. Views are small values; copy them freely.
type View struct {
	store *Store
	limit uint32
}

// ViewAt captures an immutable-prefix view of the store's first n
// blocks. n beyond the current length is allowed (the view simply ends
// at whatever the fence says exists); negative n yields an empty view.
func (s *Store) ViewAt(n int) View {
	if n < 0 {
		n = 0
	}
	return View{store: s, limit: uint32(n)}
}

// View captures an immutable-prefix view of the store's current
// contents.
func (s *Store) View() View {
	return s.ViewAt(s.Len())
}

// Owner returns the owning node's ID.
func (v View) Owner() identity.NodeID { return v.store.owner }

// Len returns the number of blocks inside the prefix fence.
func (v View) Len() int { return int(v.limit) }

// Get returns the (sealed, read-only) block with the given sequence
// number, or ErrNotFound when it sits beyond the fence.
func (v View) Get(seq uint32) (*block.Block, error) {
	if seq >= v.limit {
		return nil, fmt.Errorf("%w: %v#%d", ErrNotFound, v.store.owner, seq)
	}
	return v.store.Get(seq)
}

// OldestContaining answers the responder's selection rule (Alg. 4,
// Eq. 10–11) restricted to the prefix: among the owner's first Len()
// blocks whose Δ contains d, return the oldest. Both index modes append
// in ascending sequence order, so the oldest in-fence match is the
// index head whenever it predates the fence — the fence check alone
// keeps views exact in compact (arena-backed) stores too.
func (v View) OldestContaining(d digest.Digest) (*block.Block, bool) {
	return v.store.oldestContainingAt(d, v.limit)
}
