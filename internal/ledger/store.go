// Package ledger holds the per-node state of 2LDAG (paper Sec. III):
//
//   - Store — S_i, the append-only log of the node's own data blocks.
//     2LDAG nodes never store other nodes' blocks, which is the source
//     of its storage advantage over chain/DAG blockchains.
//   - DigestCache — A_i, the latest header digest received from each
//     neighbor, merged into the Δ field of the next block.
//   - TrustStore — H_i, headers the node has already verified via PoP,
//     indexed so the Trust Path Selection algorithm (Alg. 2) can extend
//     paths without any network traffic.
//   - Blacklist — the selfish-attack penalty mechanism of Sec. IV-D6.
//
// # Shared-reference reads
//
// Store and TrustStore hold immutable, header-sealed blocks and
// headers (see the block package doc) and hand them out by shared
// reference: Get, Latest, ByHash, OldestContaining, Headers,
// TrustStore.Get and ChildOf return pointers into the store, not
// copies. Callers must treat the results as read-only; anyone who
// needs to mutate one (e.g. the attack library forging a reply) must
// take a block.Clone/Header.Clone first. This removes the O(C) body
// copy that used to sit on every REQ_CHILD/GetBlock hop.
//
// Blocks built by block.Params.Build are fully sealed (body root
// memoized too). A block appended unsealed — e.g. restored from a
// snapshot — keeps only the header seal, because the store does not
// know the Merkle leaf size; callers that hold the Params can run
// Params.SealBlock before Append to memoize the body root as well.
//
// # Immutable-prefix views
//
// Store is append-only, so any prefix of it is immutable forever.
// Store.ViewAt captures that as a first-class read view: a View fenced
// at length n answers Get/OldestContaining exactly as the store did
// when it held n blocks, regardless of concurrent appends. This is the
// contract the simulator's pipelined slot execution leans on — audits
// of slot t read every responder's store through a view captured at
// the slot-t boundary while slot t+1 generation keeps appending, and
// still observe precisely the barriered-schedule state (see View).
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Sentinel errors.
var (
	ErrWrongOrigin = errors.New("ledger: block origin does not match store owner")
	ErrBadSeq      = errors.New("ledger: block sequence out of order")
	ErrNotFound    = errors.New("ledger: block not found")
)

// storeShardCount shards the digest-keyed indexes by digest prefix so
// concurrent audit fan-out (AuditMany, parallel simulator slots)
// querying one responder's store does not serialize on a single
// RWMutex. Power of two; header digests are uniform hashes, so the
// first byte balances shards.
const storeShardCount = 16

// storeShard holds the digest-keyed lookup state for one prefix class.
// Values are block pointers (not log indexes) so lookups never touch
// the main log lock.
type storeShard struct {
	mu       sync.RWMutex
	byHash   map[digest.Digest]*block.Block
	contains map[digest.Digest][]*block.Block // ascending seq = oldest first
}

// containsEntry is the compact-mode responder index record for one
// referenced digest: only the oldest matching sequence (Alg. 4 wants
// exactly that block) and the match count (|C_j'(b)|, Prop. 5) are ever
// queried, so the full ascending list the sharded index keeps is
// unnecessary.
type containsEntry struct {
	oldest uint32
	count  uint32
}

// Store is S_i: the append-only log of one node's own blocks, with an
// index answering the responder query of Algorithm 4 — "the oldest of my
// blocks whose Δ contains digest d".
//
// A store runs in one of two index modes, chosen at construction:
//
//   - Sharded (NewStore): the digest-keyed indexes are sharded by digest
//     prefix so responder lookups from many concurrent audits spread
//     across locks. This is the live-node mode, sized for one node per
//     process.
//   - Compact (NewStoreInArena): sealed blocks are published to a shared
//     content-addressed Arena and the store keeps only the ordered log of
//     references plus a single {oldest, count} map, built lazily on the
//     first responder query. This is the simulator mode: with 10k–100k
//     stores in one process, 32 eagerly-allocated maps per store dwarf
//     the data they index, and zero-audit scaling runs never pay for a
//     responder index at all.
type Store struct {
	mu        sync.RWMutex
	owner     identity.NodeID
	blocks    []*block.Block
	bodyBytes int64
	refCount  int64 // Σ len(Header.Digests) over the log, for O(1) ModelBits

	// Compact mode (arena != nil): contains is nil until the first
	// responder query builds it; Append keeps it current afterwards.
	arena    *Arena
	indexed  bool
	contains map[digest.Digest]containsEntry

	// Sharded mode (arena == nil).
	shards [storeShardCount]storeShard

	// journal, when set, durably records every append before it is
	// published (write-ahead). nil = in-memory only.
	journal Journal
}

// NewStore creates an empty log owned by the given node, with the
// sharded digest indexes suited to a single node per process.
func NewStore(owner identity.NodeID) *Store {
	s := &Store{owner: owner}
	for i := range s.shards {
		s.shards[i].byHash = make(map[digest.Digest]*block.Block)
		s.shards[i].contains = make(map[digest.Digest][]*block.Block)
	}
	return s
}

// NewStoreInArena creates an empty log owned by the given node in
// compact mode: appended blocks are also published to the shared
// content-addressed arena, hash lookups are answered by the arena, and
// the responder index is a single lazily-built compact map. Many stores
// may share one arena; this is the representation that lets the
// simulator hold tens of thousands of ledgers in one process.
func NewStoreInArena(owner identity.NodeID, a *Arena) *Store {
	return &Store{owner: owner, arena: a}
}

func (s *Store) shard(d digest.Digest) *storeShard {
	return &s.shards[d[0]&(storeShardCount-1)]
}

// Owner returns the owning node's ID.
func (s *Store) Owner() identity.NodeID { return s.owner }

// SetJournal installs a durability journal: every subsequent Append
// logs the sealed block (and fsyncs, for FileBackend) before the block
// becomes visible, and a journal error fails the append. Install
// before the store sees traffic; blocks appended earlier are the
// recovery layer's concern (snapshot), not the journal's.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Append adds the node's next block. The block must belong to the owner
// and continue the sequence (genesis = 0).
//
// A sealed block (block.Params.Build output) is stored by reference —
// the caller keeps read access but must not mutate it afterwards. An
// unsealed block (e.g. decoded from a snapshot) is defensively copied
// and header-sealed, so the caller's value stays mutable; run
// block.Params.SealBlock first to carry a body-root memo too.
func (s *Store) Append(b *block.Block) error {
	if b.Header.Origin != s.owner {
		return fmt.Errorf("%w: %v vs %v", ErrWrongOrigin, b.Header.Origin, s.owner)
	}
	cp := b
	if !b.Sealed() {
		cp = b.Clone()
	}
	// Seal outside the lock: the memoizing Hash call must not race with
	// readers of already-stored blocks, and cp is still private here.
	hh := cp.Header.Seal()
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(cp.Header.Seq) != len(s.blocks) {
		return fmt.Errorf("%w: seq %d, want %d", ErrBadSeq, cp.Header.Seq, len(s.blocks))
	}
	// Write-ahead: the block is durable (logged + fsynced) before it
	// becomes visible to any reader. Logging under s.mu makes journal
	// order exactly apply order, which is what lets WAL replay
	// reconstruct the log byte for byte.
	if s.journal != nil {
		if err := s.journal.LogBlock(cp); err != nil {
			return fmt.Errorf("ledger: journaling block %v#%d: %w", s.owner, cp.Header.Seq, err)
		}
	}
	s.blocks = append(s.blocks, cp)
	s.bodyBytes += int64(len(cp.Body))
	s.refCount += int64(len(cp.Header.Digests))
	if s.arena != nil {
		s.arena.Put(cp)
		// The compact responder index is lazy: until the first
		// OldestContaining/CountContaining builds it, appends cost
		// nothing here; afterwards they keep it current.
		if s.indexed {
			s.indexContains(cp)
		}
		return nil
	}
	// Index updates take the shard locks while still holding the main
	// lock: appends are serialized anyway (the seq check demands it), and
	// publishing under the shard lock keeps each index internally
	// consistent for lock-free-of-main readers.
	hs := s.shard(hh)
	hs.mu.Lock()
	hs.byHash[hh] = cp
	hs.mu.Unlock()
	for _, ref := range cp.Header.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		cs := s.shard(ref.Digest)
		cs.mu.Lock()
		cs.contains[ref.Digest] = append(cs.contains[ref.Digest], cp)
		cs.mu.Unlock()
	}
	return nil
}

// indexContains folds one block into the compact responder index.
// Caller holds s.mu for writing.
func (s *Store) indexContains(b *block.Block) {
	for _, ref := range b.Header.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		e, ok := s.contains[ref.Digest]
		if !ok {
			e.oldest = b.Header.Seq
		}
		e.count++
		s.contains[ref.Digest] = e
	}
}

// ensureIndexed builds the compact responder index from the log on the
// first query. Double-checked so steady-state queries stay on the read
// lock.
func (s *Store) ensureIndexed() {
	s.mu.RLock()
	done := s.indexed
	s.mu.RUnlock()
	if done {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexed {
		return
	}
	s.contains = make(map[digest.Digest]containsEntry)
	for _, b := range s.blocks {
		s.indexContains(b)
	}
	s.indexed = true
}

// Len returns |S_i|.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Get returns the (sealed, read-only) block with the given sequence
// number.
func (s *Store) Get(seq uint32) (*block.Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(seq) >= len(s.blocks) {
		return nil, fmt.Errorf("%w: %v#%d", ErrNotFound, s.owner, seq)
	}
	return s.blocks[seq], nil
}

// Latest returns the (sealed, read-only) most recent block, or nil for
// an empty store.
func (s *Store) Latest() *block.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1]
}

// ByHash returns the (sealed, read-only) block whose header hashes to d.
func (s *Store) ByHash(d digest.Digest) (*block.Block, bool) {
	if s.arena != nil {
		// The arena is shared across many owners: membership in *this*
		// store means the arena's block occupies its sequence slot in
		// the log.
		b, ok := s.arena.Get(d)
		if !ok || b.Header.Origin != s.owner {
			return nil, false
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		if int(b.Header.Seq) >= len(s.blocks) || s.blocks[b.Header.Seq] != b {
			return nil, false
		}
		return b, true
	}
	sh := s.shard(d)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b, ok := sh.byHash[d]
	return b, ok
}

// oldestContainingAt answers the responder's selection rule restricted
// to the first limit blocks (limit = MaxUint32 for the whole log). Both
// index modes append in ascending sequence order, so the oldest
// in-fence match is the index head whenever it predates the fence.
func (s *Store) oldestContainingAt(d digest.Digest, limit uint32) (*block.Block, bool) {
	if s.arena != nil {
		s.ensureIndexed()
		s.mu.RLock()
		defer s.mu.RUnlock()
		e, ok := s.contains[d]
		if !ok || e.oldest >= limit {
			return nil, false
		}
		return s.blocks[e.oldest], true
	}
	sh := s.shard(d)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	bs := sh.contains[d]
	if len(bs) == 0 || bs[0].Header.Seq >= limit {
		return nil, false
	}
	return bs[0], true
}

// OldestContaining implements the responder's selection rule (Alg. 4,
// Eq. 10–11): among the owner's blocks whose Δ contains d, return the
// oldest (sealed, read-only). The second result is false when no block
// matches.
func (s *Store) OldestContaining(d digest.Digest) (*block.Block, bool) {
	return s.oldestContainingAt(d, ^uint32(0))
}

// CountContaining returns |C_j'(b)|: how many of the owner's blocks
// reference digest d. Exposed for the micro-loop analysis tests
// (Prop. 5).
func (s *Store) CountContaining(d digest.Digest) int {
	if s.arena != nil {
		s.ensureIndexed()
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int(s.contains[d].count)
	}
	sh := s.shard(d)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.contains[d])
}

// BodyBytes returns the cumulative body payload stored, in bytes.
func (s *Store) BodyBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bodyBytes
}

// ModelBits returns the storage footprint of S_i under the paper's size
// model: Σ_blocks f_c + f_H·(|Δ|) + C, where |Δ| counts the digest
// entries (own-previous plus neighbors), matching Eq. 2's f_H·(n+1)
// term.
func (s *Store) ModelBits(m block.SizeModel) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// The per-block terms only depend on each block's digest count, so
	// the running refCount makes this O(1) — scaling experiments call it
	// per node per sample point.
	return int64(len(s.blocks))*int64(m.ConstantBits()+m.C) + int64(m.FH)*s.refCount
}

// Headers returns the stored (sealed, read-only) headers in sequence
// order.
func (s *Store) Headers() []*block.Header {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*block.Header, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = &b.Header
	}
	return out
}
