// Package ledger holds the per-node state of 2LDAG (paper Sec. III):
//
//   - Store — S_i, the append-only log of the node's own data blocks.
//     2LDAG nodes never store other nodes' blocks, which is the source
//     of its storage advantage over chain/DAG blockchains.
//   - DigestCache — A_i, the latest header digest received from each
//     neighbor, merged into the Δ field of the next block.
//   - TrustStore — H_i, headers the node has already verified via PoP,
//     indexed so the Trust Path Selection algorithm (Alg. 2) can extend
//     paths without any network traffic.
//   - Blacklist — the selfish-attack penalty mechanism of Sec. IV-D6.
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// Sentinel errors.
var (
	ErrWrongOrigin = errors.New("ledger: block origin does not match store owner")
	ErrBadSeq      = errors.New("ledger: block sequence out of order")
	ErrNotFound    = errors.New("ledger: block not found")
)

// Store is S_i: the append-only log of one node's own blocks, with an
// index answering the responder query of Algorithm 4 — "the oldest of my
// blocks whose Δ contains digest d".
type Store struct {
	mu        sync.RWMutex
	owner     identity.NodeID
	blocks    []*block.Block
	byHash    map[digest.Digest]int
	contains  map[digest.Digest][]int // ascending seq = oldest first
	bodyBytes int64
}

// NewStore creates an empty log owned by the given node.
func NewStore(owner identity.NodeID) *Store {
	return &Store{
		owner:    owner,
		byHash:   make(map[digest.Digest]int),
		contains: make(map[digest.Digest][]int),
	}
}

// Owner returns the owning node's ID.
func (s *Store) Owner() identity.NodeID { return s.owner }

// Append adds the node's next block. The block must belong to the owner
// and continue the sequence (genesis = 0).
func (s *Store) Append(b *block.Block) error {
	if b.Header.Origin != s.owner {
		return fmt.Errorf("%w: %v vs %v", ErrWrongOrigin, b.Header.Origin, s.owner)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(b.Header.Seq) != len(s.blocks) {
		return fmt.Errorf("%w: seq %d, want %d", ErrBadSeq, b.Header.Seq, len(s.blocks))
	}
	cp := b.Clone()
	idx := len(s.blocks)
	s.blocks = append(s.blocks, cp)
	s.byHash[cp.Header.Hash()] = idx
	for _, ref := range cp.Header.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		s.contains[ref.Digest] = append(s.contains[ref.Digest], idx)
	}
	s.bodyBytes += int64(len(cp.Body))
	return nil
}

// Len returns |S_i|.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Get returns a copy of the block with the given sequence number.
func (s *Store) Get(seq uint32) (*block.Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(seq) >= len(s.blocks) {
		return nil, fmt.Errorf("%w: %v#%d", ErrNotFound, s.owner, seq)
	}
	return s.blocks[seq].Clone(), nil
}

// Latest returns a copy of the most recent block, or nil for an empty
// store.
func (s *Store) Latest() *block.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1].Clone()
}

// ByHash returns a copy of the block whose header hashes to d.
func (s *Store) ByHash(d digest.Digest) (*block.Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.byHash[d]
	if !ok {
		return nil, false
	}
	return s.blocks[idx].Clone(), true
}

// OldestContaining implements the responder's selection rule (Alg. 4,
// Eq. 10–11): among the owner's blocks whose Δ contains d, return the
// oldest. The second result is false when no block matches.
func (s *Store) OldestContaining(d digest.Digest) (*block.Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.contains[d]
	if len(idxs) == 0 {
		return nil, false
	}
	return s.blocks[idxs[0]].Clone(), true
}

// CountContaining returns |C_j'(b)|: how many of the owner's blocks
// reference digest d. Exposed for the micro-loop analysis tests
// (Prop. 5).
func (s *Store) CountContaining(d digest.Digest) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.contains[d])
}

// BodyBytes returns the cumulative body payload stored, in bytes.
func (s *Store) BodyBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bodyBytes
}

// ModelBits returns the storage footprint of S_i under the paper's size
// model: Σ_blocks f_c + f_H·(|Δ|) + C, where |Δ| counts the digest
// entries (own-previous plus neighbors), matching Eq. 2's f_H·(n+1)
// term.
func (s *Store) ModelBits(m block.SizeModel) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(0)
	for _, b := range s.blocks {
		total += int64(m.ConstantBits() + m.FH*len(b.Header.Digests) + m.C)
	}
	return total
}

// Headers returns copies of all stored headers in sequence order.
func (s *Store) Headers() []*block.Header {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*block.Header, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = b.Header.Clone()
	}
	return out
}
