package ledger

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// DigestCache is A_i: the latest block-header digest received from each
// neighbor (paper Sec. III-D). When neighbor j announces a new digest,
// it replaces j's previous entry.
//
// The representation is a pair of parallel slices sorted by node ID
// rather than a map: a cache entry costs 4+32 bytes plus slice
// bookkeeping instead of ~100+ bytes of map machinery, which is what
// lets a 10k–100k-node simulation keep one cache per node. The neighbor
// set is effectively fixed after the first slot (inserts are rare;
// steady-state updates are in-place by binary search), so the sorted
// representation is also no slower on the announcement hot path.
type DigestCache struct {
	mu      sync.RWMutex
	nodes   []identity.NodeID // sorted ascending
	digests []digest.Digest   // digests[i] belongs to nodes[i]

	// journal, when set, durably records every upsert. nil =
	// in-memory only.
	journal Journal
}

// NewDigestCache returns an empty cache.
func NewDigestCache() *DigestCache {
	return &DigestCache{}
}

// find returns the index of j in c.nodes and whether it is present;
// when absent, the index is where j would be inserted. Caller holds
// c.mu (either mode).
func (c *DigestCache) find(j identity.NodeID) (int, bool) {
	i := sort.Search(len(c.nodes), func(k int) bool { return c.nodes[k] >= j })
	return i, i < len(c.nodes) && c.nodes[i] == j
}

// SetJournal installs a durability journal: every subsequent upsert is
// logged (buffered; see FileBackend's fsync discipline) in apply
// order. Install before the cache sees traffic.
func (c *DigestCache) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// set is the single-entry upsert. Caller holds c.mu for writing.
func (c *DigestCache) set(j identity.NodeID, d digest.Digest) {
	// Journal inside the lock so logged order is apply order; replay
	// is latest-wins, so reproducing the order reproduces the cache.
	// Errors degrade durability only (sticky in the backend).
	if c.journal != nil {
		_ = c.journal.LogDigest(j, d)
	}
	i, ok := c.find(j)
	if ok {
		c.digests[i] = d
		return
	}
	c.nodes = append(c.nodes, 0)
	copy(c.nodes[i+1:], c.nodes[i:])
	c.nodes[i] = j
	c.digests = append(c.digests, digest.Digest{})
	copy(c.digests[i+1:], c.digests[i:])
	c.digests[i] = d
}

// Update records the newest digest announced by node j.
func (c *DigestCache) Update(j identity.NodeID, d digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.set(j, d)
}

// UpdateBatch records from[i]'s announcement of ds[i] for every i, in
// order, under a single lock acquisition — the receiver-side batch
// ingest of a whole slot's announcements. Later entries from the same
// sender win, matching a sequence of Update calls. The slices must be
// the same length; UpdateBatch never retains them.
func (c *DigestCache) UpdateBatch(from []identity.NodeID, ds []digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, j := range from {
		c.set(j, ds[i])
	}
}

// Get returns the cached digest for node j.
func (c *DigestCache) Get(j identity.NodeID) (digest.Digest, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.find(j)
	if !ok {
		return digest.Digest{}, false
	}
	return c.digests[i], true
}

// Forget drops a neighbor's entry (dynamic leave).
func (c *DigestCache) Forget(j identity.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.find(j)
	if !ok {
		return
	}
	if c.journal != nil {
		_ = c.journal.LogForget(j)
	}
	c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
	c.digests = append(c.digests[:i], c.digests[i+1:]...)
}

// Len returns |A_i|.
func (c *DigestCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// writeSnapshotEntries writes the snapshot-v2 cache section (count +
// node-sorted fixed-width entries) under the read lock.
func (c *DigestCache) writeSnapshotEntries(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := writeU32(w, uint32(len(c.nodes))); err != nil {
		return fmt.Errorf("ledger: writing cache count: %w", err)
	}
	var entry [4 + digest.Size]byte
	for i, j := range c.nodes {
		binary.LittleEndian.PutUint32(entry[:4], uint32(j))
		copy(entry[4:], c.digests[i][:])
		if _, err := w.Write(entry[:]); err != nil {
			return fmt.Errorf("ledger: writing cache entry: %w", err)
		}
	}
	return nil
}

// Snapshot assembles the Δ field for a new block (Sec. III-D): the
// owner's previous-header digest first (zero for genesis), then the
// cached digest for each listed neighbor, in the given order. Neighbors
// with no cached digest yet are included with the zero digest so the
// field layout is stable; zero entries never match Contains.
func (c *DigestCache) Snapshot(owner identity.NodeID, prev digest.Digest, neighbors []identity.NodeID) []block.DigestRef {
	return c.AppendSnapshot(make([]block.DigestRef, 0, len(neighbors)+1), owner, prev, neighbors)
}

// AppendSnapshot is Snapshot writing into dst (reusing its capacity),
// for generation hot loops that keep per-worker scratch instead of
// allocating a Δ slice per block. The appended region is copied out by
// block.Params.Build, so dst may be reused immediately after the block
// is built.
func (c *DigestCache) AppendSnapshot(dst []block.DigestRef, owner identity.NodeID, prev digest.Digest, neighbors []identity.NodeID) []block.DigestRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dst = append(dst, block.DigestRef{Node: owner, Digest: prev})
	for _, j := range neighbors {
		var d digest.Digest
		if i, ok := c.find(j); ok {
			d = c.digests[i]
		}
		dst = append(dst, block.DigestRef{Node: j, Digest: d})
	}
	return dst
}
