package ledger

import (
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// DigestCache is A_i: the latest block-header digest received from each
// neighbor (paper Sec. III-D). When neighbor j announces a new digest,
// it replaces j's previous entry.
type DigestCache struct {
	mu     sync.RWMutex
	latest map[identity.NodeID]digest.Digest
}

// NewDigestCache returns an empty cache.
func NewDigestCache() *DigestCache {
	return &DigestCache{latest: make(map[identity.NodeID]digest.Digest)}
}

// Update records the newest digest announced by node j.
func (c *DigestCache) Update(j identity.NodeID, d digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latest[j] = d
}

// UpdateBatch records from[i]'s announcement of ds[i] for every i, in
// order, under a single lock acquisition — the receiver-side batch
// ingest of a whole slot's announcements. Later entries from the same
// sender win, matching a sequence of Update calls. The slices must be
// the same length; UpdateBatch never retains them.
func (c *DigestCache) UpdateBatch(from []identity.NodeID, ds []digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, j := range from {
		c.latest[j] = ds[i]
	}
}

// Get returns the cached digest for node j.
func (c *DigestCache) Get(j identity.NodeID) (digest.Digest, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.latest[j]
	return d, ok
}

// Forget drops a neighbor's entry (dynamic leave).
func (c *DigestCache) Forget(j identity.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.latest, j)
}

// Len returns |A_i|.
func (c *DigestCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.latest)
}

// Snapshot assembles the Δ field for a new block (Sec. III-D): the
// owner's previous-header digest first (zero for genesis), then the
// cached digest for each listed neighbor, in the given order. Neighbors
// with no cached digest yet are included with the zero digest so the
// field layout is stable; zero entries never match Contains.
func (c *DigestCache) Snapshot(owner identity.NodeID, prev digest.Digest, neighbors []identity.NodeID) []block.DigestRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	refs := make([]block.DigestRef, 0, len(neighbors)+1)
	refs = append(refs, block.DigestRef{Node: owner, Digest: prev})
	for _, j := range neighbors {
		refs = append(refs, block.DigestRef{Node: j, Digest: c.latest[j]})
	}
	return refs
}
