package ledger

import (
	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/par"
)

// Parallel replay verification. Recovery's cost is dominated by
// re-sealing every block (hashing + PoW check) and — when a Ring is
// given — re-verifying its ed25519 signature, ~tens of µs per block;
// decode and the structural checks around it are nanoseconds. So the
// sequential scan keeps doing everything order-sensitive (decode,
// owner/seq checks, trust-horizon bookkeeping, error positions) and
// only queues the embarrassingly parallel part here; results retire
// in queue order, so the recovered state, the RecoveryReport, and
// every error are byte-identical to a fully serial pass.

// recoverVerifier queues sealed-contract verification work
// (Params.SealBlock + optional Params.Validate) discovered by a
// sequential scan and fans it out on a pool.
type recoverVerifier struct {
	opts   RecoverOptions
	pool   *par.Pool
	blocks []*block.Block
	labels []int // scan position of each block: WAL offset or snapshot index
}

// add queues one decoded block; label is its position in the scanned
// input, used only for error formatting.
func (v *recoverVerifier) add(b *block.Block, label int) {
	v.blocks = append(v.blocks, b)
	v.labels = append(v.labels, label)
}

// run verifies every queued block on the pool (inline when the pool
// is nil or width 1) and returns the first failure in queue order,
// rendered by errf — exactly the error the serial loop would have hit
// first, since the scan stops queueing at its own first error.
// SealBlock and Validate touch only the block itself and read-only
// ring/params state, so distinct blocks verify concurrently.
func (v *recoverVerifier) run(errf func(label int, err error) error) error {
	n := len(v.blocks)
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	v.pool.RunChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := v.blocks[i]
			if err := v.opts.Params.SealBlock(b); err != nil {
				errs[i] = err
				continue
			}
			if v.opts.Ring != nil {
				if err := v.opts.Params.Validate(b, v.opts.Ring); err != nil {
					errs[i] = err
				}
			}
		}
	})
	for i, err := range errs {
		if err != nil {
			return errf(v.labels[i], err)
		}
	}
	return nil
}
