package ledger

import (
	"sync"
	"testing"

	"github.com/twoldag/twoldag/internal/identity"
)

// TestStoreConcurrentAuditReads models the parallel-audit access
// pattern: many validators read one responder's store (shared sealed
// blocks, memoized hashes) while the owner keeps appending. Run under
// -race this pins the safety of the zero-copy read path.
func TestStoreConcurrentAuditReads(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	blocks := chainFor(t, key, 24, nil)
	for _, b := range blocks[:12] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	target := blocks[0].Header.Hash()

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				if b, ok := s.OldestContaining(target); ok {
					// Typical responder/validator reads on the shared
					// block: memoized identity and header fields.
					_ = b.Header.Hash()
					_ = b.Header.Ref()
				}
				if b, err := s.Get(0); err == nil {
					_ = b.Header.Hash()
				}
				_ = s.Latest()
				_ = s.Headers()
				_ = s.BodyBytes()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range blocks[12:] {
			if err := s.Append(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Len() != 24 {
		t.Fatalf("Len = %d, want 24", s.Len())
	}
}

// TestTrustStoreConcurrentAddAndLookup exercises H_i under concurrent
// Add/ChildOf/Get traffic, the pattern of parallel audits caching
// verified paths.
func TestTrustStoreConcurrentAddAndLookup(t *testing.T) {
	key := identity.Deterministic(1, 1)
	ts := NewTrustStore()
	blocks := chainFor(t, key, 16, nil)

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range blocks {
				ts.Add(&b.Header)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				for _, b := range blocks {
					hh := b.Header.Hash()
					if h, ok := ts.Get(hh); ok {
						_ = h.Hash()
					}
					if h, ok := ts.ChildOf(hh); ok {
						_ = h.Hash()
					}
				}
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 16 {
		t.Fatalf("Len = %d, want 16", ts.Len())
	}
}

// TestStoreSealsOnAppend verifies the seal happens before sharing, so
// later concurrent Hash calls are read-only.
func TestStoreSealsOnAppend(t *testing.T) {
	key := identity.Deterministic(1, 1)
	s := NewStore(1)
	b := chainFor(t, key, 1, nil)[0]
	if err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(0)
	if !got.Header.Sealed() {
		t.Fatal("stored header not sealed at append time")
	}
}
