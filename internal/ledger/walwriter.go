package ledger

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Group commit: the classic storage-engine answer to fsync dominating
// a write-ahead log (etcd, Pebble, every production WAL). Block
// records are staged into wal.log immediately, but the fsync that
// acknowledges them covers a whole *commit window* — every record
// staged since the last fsync — so concurrent and batched writers
// share one disk flush instead of paying one each.
//
// The window is closed by whichever of these the SyncPolicy selects:
//
//   - SyncAlways: a dedicated committer goroutine fsyncs on every
//     staged block record; each LogBlock caller blocks until the fsync
//     covering its record returns. Callers that stage while an fsync
//     is in flight are absorbed into the next window, so the
//     per-block write-ahead contract is preserved exactly while
//     concurrent seal paths amortize the flush.
//   - SyncBatch: LogBlock stages and returns; Commit closes the
//     window explicitly. Drivers call it once per slot flush, before
//     any digest goes on the wire — write-ahead at window granularity
//     (a neighbor never learns of a block that could vanish).
//   - SyncInterval(d): the committer's ticker closes the window every
//     d — bounded staleness for deployments that can afford to lose
//     the last instants of sealed traffic.
//
// Crash safety of an open window: records staged but not yet fsynced
// were never acknowledged. The kernel may persist them out of order,
// but replay stops at the first incomplete or corrupt record, so any
// record the crash orphaned behind a hole is unreachable — recovery
// sees a clean prefix, every fsync-acknowledged record of which is
// intact (they all precede the window). Nothing is ever half-applied.

// syncMode enumerates the window-closing disciplines.
type syncMode uint8

const (
	syncModeAlways syncMode = iota
	syncModeBatch
	syncModeInterval
)

// SyncPolicy selects when WAL block records are fsynced — i.e. what
// closes a commit window. The zero value is SyncAlways, the
// default-compatible per-block discipline.
type SyncPolicy struct {
	mode  syncMode
	every time.Duration
}

// SyncAlways fsyncs every block record before the append is
// acknowledged (the default): nothing sealed is ever lost, and
// concurrent writers group-commit under one flush.
func SyncAlways() SyncPolicy { return SyncPolicy{} }

// SyncBatch stages block records without fsyncing; Commit closes the
// window. A crash inside an open window loses only records that were
// never acknowledged durable — the driver commits before announcing.
func SyncBatch() SyncPolicy { return SyncPolicy{mode: syncModeBatch} }

// SyncInterval fsyncs staged records at most every d — bounded
// staleness: a crash loses at most the last d of sealed traffic.
func SyncInterval(d time.Duration) SyncPolicy {
	return SyncPolicy{mode: syncModeInterval, every: d}
}

// PerBlock reports the SyncAlways discipline.
func (p SyncPolicy) PerBlock() bool { return p.mode == syncModeAlways }

// Batched reports the SyncBatch discipline — the one under which a
// driver must Commit at its flush boundary.
func (p SyncPolicy) Batched() bool { return p.mode == syncModeBatch }

// Every returns the interval of a SyncInterval policy, 0 otherwise.
func (p SyncPolicy) Every() time.Duration {
	if p.mode == syncModeInterval {
		return p.every
	}
	return 0
}

// Validate rejects malformed policies (a non-positive interval).
func (p SyncPolicy) Validate() error {
	if p.mode == syncModeInterval && p.every <= 0 {
		return fmt.Errorf("ledger: SyncInterval(%v): interval must be positive", p.every)
	}
	return nil
}

// String renders the policy in the form ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.mode {
	case syncModeBatch:
		return "batch"
	case syncModeInterval:
		return "interval=" + p.every.String()
	default:
		return "always"
	}
}

// ParseSyncPolicy parses "always", "batch" or "interval=<duration>"
// (e.g. "interval=50ms") — the -sync flag syntax.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "always" || s == "":
		return SyncAlways(), nil
	case s == "batch":
		return SyncBatch(), nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil {
			return SyncPolicy{}, fmt.Errorf("ledger: sync policy %q: %w", s, err)
		}
		p := SyncInterval(d)
		if err := p.Validate(); err != nil {
			return SyncPolicy{}, err
		}
		return p, nil
	default:
		return SyncPolicy{}, fmt.Errorf("ledger: unknown sync policy %q (want always, batch, or interval=<duration>)", s)
	}
}

// CommitObserver receives one callback per WAL commit window, after
// its fsync returned: how many block records the window acknowledged
// and how many WAL bytes it made durable. Implementations must be
// cheap and safe for concurrent use (metrics.EventCounters is one).
type CommitObserver interface {
	OnWALCommit(blocks int, bytes int64)
}

// BackendOption configures OpenFileBackend.
type BackendOption func(*FileBackend)

// WithSyncPolicy selects the backend's commit-window discipline
// (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) BackendOption {
	return func(fb *FileBackend) { fb.policy = p }
}

// WithCommitObserver attaches a per-commit-window callback.
func WithCommitObserver(o CommitObserver) BackendOption {
	return func(fb *FileBackend) { fb.obs = o }
}

// WALStats are the backend's durability counters since open — how
// many fsyncs the commit windows cost and how many bytes they made
// durable. The ratio of blocks logged to Fsyncs is the amortization
// group commit bought.
type WALStats struct {
	Fsyncs         int64
	BytesCommitted int64
}

// WALStats returns the durability counters since open.
func (fb *FileBackend) WALStats() WALStats {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return WALStats{Fsyncs: fb.fsyncs, BytesCommitted: fb.committed}
}

// waiterPool recycles the one-shot acknowledgement channels LogBlock
// blocks on under SyncAlways; each receives exactly one send before
// being returned, so a pooled channel is always empty.
var waiterPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// kickCommitter wakes the committer goroutine without blocking; a
// pending token already covers every staged record.
func (fb *FileBackend) kickCommitter() {
	select {
	case fb.kick <- struct{}{}:
	default:
	}
}

// committer is the dedicated commit goroutine: it closes commit
// windows on demand (SyncAlways kicks) or on a ticker (SyncInterval).
// The fsync runs under fb.mu, which is what forms the window — every
// LogBlock that queued on the mutex while a flush was in flight stages
// into the next window and shares its fsync.
func (fb *FileBackend) committer() {
	defer close(fb.done)
	var tick <-chan time.Time
	if d := fb.policy.Every(); d > 0 {
		t := time.NewTicker(d)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-fb.stop:
			return
		case <-fb.kick:
		case <-tick:
		}
		fb.mu.Lock()
		if !fb.closed {
			err := fb.commitLocked()
			// Interval windows have no waiter to hand the error to; keep
			// it sticky so Sync/Close surface it (SyncAlways errors reach
			// every blocked caller directly).
			if err != nil && fb.policy.Every() > 0 && fb.deferred == nil {
				fb.deferred = err
			}
		}
		fb.mu.Unlock()
	}
}

// commitLocked closes the current commit window: repair any poisoned
// tail, fsync everything staged past syncedOff, and release every
// blocked LogBlock caller. On fsync failure the durability of the
// whole unsynced region is unknown, so it is poisoned wholesale —
// goodOff retreats to the last acknowledged fsync and the next write
// truncates the region away; every waiter fails (their appends fail
// with them), and staged-but-unacknowledged block records leave the
// pending count. Caller holds fb.mu.
func (fb *FileBackend) commitLocked() error {
	rerr := fb.repairLocked()
	if fb.goodOff == fb.syncedOff && len(fb.waiters) == 0 {
		return rerr // nothing staged since the last fsync
	}
	if err := fb.f.Sync(); err != nil {
		err = fmt.Errorf("ledger: syncing WAL: %w", err)
		fb.goodOff = fb.syncedOff
		fb.dirty = true
		fb.pending -= fb.windowBlocks
		fb.windowBlocks = 0
		for _, w := range fb.waiters {
			w <- err
		}
		fb.waiters = fb.waiters[:0]
		return err
	}
	blocks := fb.windowBlocks
	bytes := fb.goodOff - fb.syncedOff
	fb.syncedOff = fb.goodOff
	fb.windowBlocks = 0
	fb.fsyncs++
	fb.committed += bytes
	for _, w := range fb.waiters {
		w <- nil
	}
	fb.waiters = fb.waiters[:0]
	if fb.obs != nil {
		fb.obs.OnWALCommit(blocks, bytes)
	}
	return rerr
}

// Commit closes the current commit window, fsyncing every staged
// record: under SyncBatch this is the acknowledgement point a driver
// invokes once per slot flush; under the other policies it is a cheap
// no-op when nothing is staged. Unlike Sync it does not surface (or
// clear) sticky lazy-tier errors — it is a hot-path call.
func (fb *FileBackend) Commit() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return ErrBackendClosed
	}
	return fb.commitLocked()
}
