package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/par"
)

// FileBackend data-dir layout (one directory per node):
//
//	snapshot.2ldg — last compacted snapshot (snapshot v2: S_i blocks,
//	                H_i headers, A_i entries, trust cap, CRC-sealed).
//	                Always committed by atomic rename; never partial.
//	wal.log       — current WAL generation: every mutation since the
//	                snapshot, one CRC-framed record each (see wal.go).
//	wal.old       — previous generation, present only inside a
//	                compaction window (rotation committed, snapshot
//	                not yet); replayed between snapshot and wal.log.
//	snapshot.tmp  — snapshot being written; garbage after a crash,
//	                deleted on recovery.
//
// Fsync discipline: block records are acknowledged by the fsync of
// the commit window they were staged into (see walwriter.go) — under
// the default SyncAlways policy that fsync happens before Store.Append
// publishes the block (write-ahead — an accepted block survives a
// crash); trust and digest records are written immediately but fsynced
// lazily, piggybacking on the next commit window, Sync, or Close.
// Losing the tail of trust/digest records in a crash costs
// re-auditing, never data.
//
// Torn writes: a crash mid-record leaves wal.log with an incomplete or
// CRC-failing tail. Recovery replays the intact prefix, discards the
// tail, and the post-recovery compaction rewrites a clean snapshot —
// so the node restarts exactly at the last durable record. Only
// wal.log may end torn: a failed write poisons the generation and the
// partial frame is truncated away before any further record (or the
// rotation rename) — so replay never has to skip mid-file garbage, and
// a torn wal.old is treated as corruption, not tolerated.
const (
	snapshotFileName = "snapshot.2ldg"
	walFileName      = "wal.log"
	walOldFileName   = "wal.old"
	snapshotTmpName  = "snapshot.tmp"
)

// FileBackend is the file-backed ledger Backend: an append-only WAL
// plus snapshot-v2 compaction in a single data directory. Safe for
// concurrent journal use; Compact may run concurrently with logging.
type FileBackend struct {
	dir    string
	policy SyncPolicy
	obs    CommitObserver

	mu         sync.Mutex
	f          *os.File // wal.log, append-only
	scratch    []byte   // record frame scratch, reused under mu
	pscratch   []byte   // trust/digest payload scratch, reused under mu
	pending    int      // block records in the current WAL generation
	compacting bool
	closed     bool
	deferred   error // sticky trust/digest journal error (see Sync)
	recovered  bool
	report     RecoveryReport

	// goodOff is the byte length of wal.log's known-intact record
	// prefix; dirty marks that a failed write may have left a partial
	// frame after it. Every write first repairs (truncates back to
	// goodOff), so an fsynced block record is never preceded by garbage
	// — replay stops at the first corrupt record, and a block record
	// stranded behind one would be acknowledged-then-lost.
	goodOff int64
	dirty   bool

	// Commit-window state (see walwriter.go): syncedOff is the prefix
	// the last successful fsync acknowledged; (syncedOff, goodOff] is
	// the open window. windowBlocks counts block records staged in it,
	// waiters the SyncAlways callers blocked on its fsync.
	syncedOff    int64
	windowBlocks int
	waiters      []chan error
	fsyncs       int64 // commit windows closed since open
	committed    int64 // WAL bytes acknowledged durable since open

	kick chan struct{} // wakes the committer (capacity 1, coalescing)
	stop chan struct{} // closed by Close to retire the committer
	done chan struct{} // closed by the committer on exit
}

// RecoveryReport summarizes what the last Recover read from disk, so
// callers can surface how much state replayed and whether a torn WAL
// tail — bytes written but never fsync-acknowledged — was discarded.
type RecoveryReport struct {
	// SnapshotBlocks counts blocks restored from the snapshot.
	SnapshotBlocks int
	// WALBlocks counts block records applied during WAL replay (both
	// generations, duplicates of the snapshot excluded).
	WALBlocks int
	// WALBytes is the intact record prefix replayed across both WAL
	// generations.
	WALBytes int
	// TornTail reports that wal.log ended in an incomplete or corrupt
	// record; TornBytes is the discarded suffix length. Torn tails only
	// ever hold unacknowledged data.
	TornTail  bool
	TornBytes int
	// Duration is the wall time spent reading the snapshot and
	// replaying both WAL generations (normalization excluded).
	Duration time.Duration
}

// OpenFileBackend opens (creating if needed) the data directory and
// its WAL. Call Recover next; journal calls before Recover fail.
func OpenFileBackend(dir string, opts ...BackendOption) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: creating data dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening WAL: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: statting WAL: %w", err)
	}
	fb := &FileBackend{
		dir: dir, f: f,
		goodOff: info.Size(), syncedOff: info.Size(),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, o := range opts {
		o(fb)
	}
	if err := fb.policy.Validate(); err != nil {
		f.Close()
		return nil, err
	}
	go fb.committer()
	return fb, nil
}

// Dir returns the backend's data directory.
func (fb *FileBackend) Dir() string { return fb.dir }

// Recover rebuilds the node state from snapshot + WAL (see Backend).
// It then compacts immediately: the recovered state becomes a fresh
// snapshot and the WAL restarts empty, so a crash loop cannot grow an
// unbounded replay tail.
func (fb *FileBackend) Recover(opts RecoverOptions) (*NodeState, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return nil, ErrBackendClosed
	}
	if fb.recovered {
		return nil, errors.New("ledger: backend already recovered")
	}
	// An interrupted compaction never committed its snapshot.
	_ = os.Remove(filepath.Join(fb.dir, snapshotTmpName))

	// One verification pool serves the snapshot and both WAL
	// generations; decode and structural checks stay sequential, only
	// the per-block re-seal + signature verification fans out (see
	// recoverVerifier), so reports and errors match the serial path
	// byte for byte.
	start := time.Now()
	pool := par.NewPool(opts.Workers)
	defer pool.Close()

	st := NewNodeState(opts.Owner, opts.TrustCap)
	sf, err := os.Open(filepath.Join(fb.dir, snapshotFileName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh data dir.
	case err != nil:
		return nil, fmt.Errorf("ledger: reading snapshot: %w", err)
	default:
		st, err = readSnapshotStream(sf, opts, pool)
		sf.Close()
		if err != nil {
			return nil, err
		}
	}
	report := RecoveryReport{SnapshotBlocks: st.Store.Len()}
	// The trust cap must be in force before replay so FIFO evictions
	// replay exactly as they happened live. A torn tail is tolerated
	// only in wal.log — the generation a crash can tear mid-write;
	// wal.old was synced and repaired before its rotation rename, so a
	// torn record there is corruption that would silently drop every
	// acknowledged record after it.
	for _, gen := range []struct {
		name      string
		allowTorn bool
	}{{walOldFileName, false}, {walFileName, true}} {
		buf, err := os.ReadFile(filepath.Join(fb.dir, gen.name))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("ledger: reading %s: %w", gen.name, err)
		}
		stats, err := replayWAL(st, buf, opts, gen.allowTorn, pool)
		if err != nil {
			return nil, fmt.Errorf("ledger: replaying %s: %w", gen.name, err)
		}
		report.WALBlocks += stats.blocks
		report.WALBytes += stats.valid
		if stats.torn {
			report.TornTail = true
			report.TornBytes = len(buf) - stats.valid
		}
	}
	report.Duration = time.Since(start)
	fb.report = report
	fb.recovered = true
	// Normalize on disk: recovered state → fresh snapshot, empty WAL,
	// no wal.old. Done under mu — nothing else can log yet.
	if err := fb.writeSnapshotFile(st); err != nil {
		return nil, err
	}
	if err := fb.resetWALLocked(); err != nil {
		return nil, err
	}
	_ = os.Remove(filepath.Join(fb.dir, walOldFileName))
	return st, nil
}

// writeSnapshotFile writes st to snapshot.tmp, fsyncs, and commits it
// by rename. The caller must exclude concurrent snapshot writers —
// either by holding fb.mu (Recover) or by owning the compacting flag
// (Compact); the write itself never touches the live WAL handle.
func (fb *FileBackend) writeSnapshotFile(st *NodeState) error {
	tmp := filepath.Join(fb.dir, snapshotTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: creating snapshot: %w", err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(fb.dir, snapshotFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: committing snapshot: %w", err)
	}
	fb.syncDir()
	return nil
}

// resetWALLocked truncates wal.log to empty and resets the pending
// count. Caller holds fb.mu.
func (fb *FileBackend) resetWALLocked() error {
	if err := fb.f.Truncate(0); err != nil {
		return fmt.Errorf("ledger: truncating WAL: %w", err)
	}
	fb.pending = 0
	fb.goodOff = 0
	fb.syncedOff = 0
	fb.windowBlocks = 0
	fb.dirty = false
	return nil
}

// syncDir fsyncs the data directory so renames and truncations are
// durable. Best-effort: some filesystems reject directory fsync.
func (fb *FileBackend) syncDir() {
	if d, err := os.Open(fb.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// repairLocked truncates a poisoned tail — the partial frame a failed
// write may have left past goodOff — back to the last intact record
// boundary. Until it succeeds no further record may be appended: a
// record behind garbage is unreachable to replay, and for a block
// record that would break the write-ahead guarantee (fsync-acknowledged
// yet lost on recovery). Caller holds fb.mu.
func (fb *FileBackend) repairLocked() error {
	if !fb.dirty {
		return nil
	}
	if err := fb.f.Truncate(fb.goodOff); err != nil {
		return fmt.Errorf("ledger: truncating partial WAL record: %w", err)
	}
	fb.dirty = false
	return nil
}

// logLocked frames and writes one record, repairing any poisoned tail
// first. Caller holds fb.mu.
func (fb *FileBackend) logLocked(kind byte, payload []byte) error {
	if fb.closed {
		return ErrBackendClosed
	}
	if err := fb.repairLocked(); err != nil {
		return err
	}
	fb.scratch = appendWALRecord(fb.scratch[:0], kind, payload)
	if _, err := fb.f.Write(fb.scratch); err != nil {
		// os.File.Write can fail after writing some bytes (ENOSPC, I/O
		// error): everything past goodOff is garbage until repaired.
		fb.dirty = true
		return fmt.Errorf("ledger: writing WAL record: %w", err)
	}
	fb.goodOff += int64(len(fb.scratch))
	return nil
}

// LogBlock stages a block record into the current commit window.
// Under SyncAlways (the default) it blocks until the window's fsync
// returns — write-ahead, the block is durable before Store.Append
// publishes it — while concurrent callers share that fsync. Under
// SyncBatch/SyncInterval it returns once staged; Commit or the
// committer's ticker acknowledges the window later. An error here
// fails the append.
func (fb *FileBackend) LogBlock(b *block.Block) error {
	fb.mu.Lock()
	if err := fb.logLocked(walKindBlock, block.Encode(b)); err != nil {
		fb.mu.Unlock()
		return err
	}
	fb.pending++
	fb.windowBlocks++
	if !fb.policy.PerBlock() {
		fb.mu.Unlock()
		return nil
	}
	// The committer fsyncs under fb.mu, so callers that stage while a
	// flush is in flight join the next window — group commit without
	// ever acknowledging before durability.
	w := waiterPool.Get().(chan error)
	fb.waiters = append(fb.waiters, w)
	fb.mu.Unlock()
	fb.kickCommitter()
	err := <-w
	waiterPool.Put(w)
	return err
}

// LogTrust writes a trust-store record (no fsync; see the package
// discipline above). Errors are additionally kept sticky for Sync.
func (fb *FileBackend) LogTrust(h *block.Header, inserted int64) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.pscratch = appendWALTrust(fb.pscratch[:0], inserted, h)
	err := fb.logLocked(walKindTrust, fb.pscratch)
	if err != nil && fb.deferred == nil && !errors.Is(err, ErrBackendClosed) {
		fb.deferred = err
	}
	return err
}

// LogDigest writes a digest-cache record (no fsync). Errors are
// additionally kept sticky for Sync.
func (fb *FileBackend) LogDigest(from identity.NodeID, d digest.Digest) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.pscratch = appendWALDigest(fb.pscratch[:0], from, d)
	err := fb.logLocked(walKindDigest, fb.pscratch)
	if err != nil && fb.deferred == nil && !errors.Is(err, ErrBackendClosed) {
		fb.deferred = err
	}
	return err
}

// LogForget writes a digest-cache removal record (no fsync). Errors
// are additionally kept sticky for Sync.
func (fb *FileBackend) LogForget(from identity.NodeID) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	var node [4]byte
	binary.LittleEndian.PutUint32(node[:], uint32(from))
	err := fb.logLocked(walKindForget, node[:])
	if err != nil && fb.deferred == nil && !errors.Is(err, ErrBackendClosed) {
		fb.deferred = err
	}
	return err
}

// PendingBlocks reports block records in the current WAL generation.
func (fb *FileBackend) PendingBlocks() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.pending
}

// RecoveryReport returns what the last Recover read from disk; the
// zero report before Recover has run.
func (fb *FileBackend) RecoveryReport() RecoveryReport {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.report
}

// Compact rotates the WAL and folds everything into a fresh snapshot:
//
//  1. under mu: fsync wal.log, rename it to wal.old, start an empty
//     generation (pending = 0);
//  2. outside mu: gather the current state and commit it as the new
//     snapshot (tmp + rename);
//  3. delete wal.old.
//
// Logging continues into the new generation throughout. Records
// gathered into the snapshot AND logged to the new generation replay
// idempotently; a crash at any step recovers (wal.old replays between
// snapshot and wal.log; snapshot.tmp is discarded). Concurrent Compact
// calls coalesce: the later call returns nil without compacting.
func (fb *FileBackend) Compact(gather func() (*NodeState, error)) error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return ErrBackendClosed
	}
	if fb.compacting {
		fb.mu.Unlock()
		return nil
	}
	fb.compacting = true
	if err := fb.rotateLocked(); err != nil {
		fb.compacting = false
		fb.mu.Unlock()
		return err
	}
	fb.mu.Unlock()

	finish := func(err error) error {
		fb.mu.Lock()
		fb.compacting = false
		fb.mu.Unlock()
		return err
	}
	st, err := gather()
	if err != nil {
		// The rotation stands: wal.old still replays on recovery.
		return finish(fmt.Errorf("ledger: gathering state for compaction: %w", err))
	}
	if err := fb.writeSnapshotFile(st); err != nil {
		return finish(err)
	}
	if err := os.Remove(filepath.Join(fb.dir, walOldFileName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return finish(fmt.Errorf("ledger: removing rotated WAL: %w", err))
	}
	fb.syncDir()
	return finish(nil)
}

// rotateLocked closes the current WAL generation as wal.old and opens
// a fresh wal.log. The generation is repaired before the rename, so
// wal.old never carries a partial frame — which is what entitles
// recovery to treat a torn wal.old as corruption rather than a crash
// artifact. Caller holds fb.mu with compacting set.
func (fb *FileBackend) rotateLocked() error {
	// Closing the commit window first acknowledges (or fails) every
	// staged record and blocked caller before the generation is sealed
	// as wal.old.
	if err := fb.commitLocked(); err != nil {
		return fmt.Errorf("ledger: syncing WAL for rotation: %w", err)
	}
	if err := fb.f.Close(); err != nil {
		return fmt.Errorf("ledger: closing WAL for rotation: %w", err)
	}
	walPath := filepath.Join(fb.dir, walFileName)
	if err := os.Rename(walPath, filepath.Join(fb.dir, walOldFileName)); err != nil {
		return fmt.Errorf("ledger: rotating WAL: %w", err)
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: opening new WAL generation: %w", err)
	}
	fb.f = f
	fb.pending = 0
	fb.goodOff = 0
	fb.syncedOff = 0
	fb.windowBlocks = 0
	fb.dirty = false
	fb.syncDir()
	return nil
}

// Sync closes the current commit window (fsyncing anything staged)
// and surfaces any sticky trust/digest journal error (clearing it).
func (fb *FileBackend) Sync() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return ErrBackendClosed
	}
	cerr := fb.commitLocked()
	err := fb.deferred
	fb.deferred = nil
	if err == nil {
		err = cerr
	}
	return err
}

// Close commits any open window, closes the WAL, and retires the
// committer goroutine. Further calls return ErrBackendClosed.
func (fb *FileBackend) Close() error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return ErrBackendClosed
	}
	err := fb.commitLocked()
	fb.closed = true
	if cerr := fb.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fb.deferred
	}
	fb.deferred = nil
	fb.mu.Unlock()
	// The committer may be blocked acquiring fb.mu, so stop it only
	// after releasing; closed is set, so a late wakeup is a no-op.
	close(fb.stop)
	<-fb.done
	if err != nil {
		return fmt.Errorf("ledger: closing backend: %w", err)
	}
	return nil
}
