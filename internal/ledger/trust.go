package ledger

import (
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
)

// TrustStore is H_i: block headers a validator has already verified
// through PoP (paper Sec. IV-B). It is indexed two ways:
//
//   - by header hash, to deduplicate; and
//   - by contained digest, so Trust Path Selection (Alg. 2) can answer
//     "do I already hold a child of the block hashing to d?" in O(1).
type TrustStore struct {
	mu      sync.RWMutex
	headers map[digest.Digest]*block.Header // header hash → header
	// children maps a digest d to the hashes of stored headers whose Δ
	// contains d, in insertion order.
	children  map[digest.Digest][]digest.Digest
	totalRefs int64
}

// NewTrustStore returns an empty H_i.
func NewTrustStore() *TrustStore {
	return &TrustStore{
		headers:  make(map[digest.Digest]*block.Header),
		children: make(map[digest.Digest][]digest.Digest),
	}
}

// Add stores a verified header. Duplicates are ignored (and detected
// before any copying). It returns true when the header was newly added.
// The stored copy is sealed; readers receive it by shared reference.
func (t *TrustStore) Add(h *block.Header) bool {
	hh := h.Hash()
	t.mu.RLock()
	_, dup := t.headers[hh]
	t.mu.RUnlock()
	if dup {
		return false
	}
	cp := h.CloneSealed()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.headers[hh]; ok {
		return false
	}
	t.headers[hh] = cp
	for _, ref := range cp.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		t.children[ref.Digest] = append(t.children[ref.Digest], hh)
		t.totalRefs++
	}
	return true
}

// Has reports whether a header with the given hash is stored.
func (t *TrustStore) Has(headerHash digest.Digest) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.headers[headerHash]
	return ok
}

// Get returns the stored (sealed, read-only) header with the given
// hash.
func (t *TrustStore) Get(headerHash digest.Digest) (*block.Header, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, ok := t.headers[headerHash]
	if !ok {
		return nil, false
	}
	return h, true
}

// ChildOf returns a stored (sealed, read-only) header whose Δ contains
// d — the TPS lookup of Eq. 9. When several qualify, the earliest
// inserted wins, which keeps path reconstruction deterministic.
func (t *TrustStore) ChildOf(d digest.Digest) (*block.Header, bool) {
	if d.IsZero() {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	hashes := t.children[d]
	if len(hashes) == 0 {
		return nil, false
	}
	return t.headers[hashes[0]], true
}

// Len returns the number of distinct headers in H_i.
func (t *TrustStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.headers)
}

// ModelBits returns the footprint of H_i under the paper's size model,
// matching Prop. 2's accounting: each header costs f_c + f_H·|Δ|.
func (t *TrustStore) ModelBits(m block.SizeModel) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.headers))*int64(m.ConstantBits()) + t.totalRefs*int64(m.FH)
}
