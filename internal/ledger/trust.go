package ledger

import (
	"fmt"
	"io"
	"sync"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
)

// TrustStore is H_i: block headers a validator has already verified
// through PoP (paper Sec. IV-B). It is indexed two ways:
//
//   - by header hash, to deduplicate; and
//   - by contained digest, so Trust Path Selection (Alg. 2) can answer
//     "do I already hold a child of the block hashing to d?" in O(1).
type TrustStore struct {
	mu      sync.RWMutex
	headers map[digest.Digest]*block.Header // header hash → header
	// children maps a digest d to the hashes of stored headers whose Δ
	// contains d, in insertion order.
	children  map[digest.Digest][]digest.Digest
	totalRefs int64

	// order records insertion order from head onward. It serves two
	// masters: the FIFO bound (capLimit > 0) evicts oldest-inserted
	// first — the scale runs cap H_i so ten-thousand-validator
	// simulations stay bounded — and snapshot v2 serializes headers in
	// insertion order so a restored store reproduces ChildOf's
	// earliest-inserted-wins choices exactly.
	capLimit int
	order    []digest.Digest
	head     int
	// inserted counts successful Adds over the store's lifetime. It is
	// the insertion horizon durability needs: each journaled header
	// carries its index, snapshots record the count at gather time, and
	// WAL replay skips records below it — re-adding a since-evicted
	// header would evict a different live one.
	inserted int64

	// journal, when set, durably records every newly added header.
	// nil = in-memory only.
	journal Journal
}

// NewTrustStore returns an empty H_i.
func NewTrustStore() *TrustStore {
	return &TrustStore{
		headers:  make(map[digest.Digest]*block.Header),
		children: make(map[digest.Digest][]digest.Digest),
	}
}

// SetCap bounds H_i to at most n headers, evicting oldest-inserted
// first. Eviction order is a pure function of insertion order, so a
// capped store stays deterministic. n <= 0 restores the default
// unbounded behavior. Insertion order is always tracked, so a cap set
// on a populated store takes effect from the next Add on, evicting the
// oldest entries first.
func (t *TrustStore) SetCap(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.capLimit = n
}

// Cap returns the FIFO bound in force (0 = unbounded).
func (t *TrustStore) Cap() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.capLimit
}

// SetJournal installs a durability journal: every subsequent newly
// added header is logged (buffered; see FileBackend's fsync
// discipline) in insertion order. Install before the store sees
// traffic.
func (t *TrustStore) SetJournal(j Journal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.journal = j
}

// Add stores a verified header. Duplicates are ignored (and detected
// before any copying). It returns true when the header was newly
// added. Sealed headers — immutable by contract everywhere in this
// codebase — are stored by shared reference, so the thousands of
// validators of a scaled simulation index one arena-resident header
// instead of cloning it apiece; unsealed headers are defensively
// cloned.
func (t *TrustStore) Add(h *block.Header) bool {
	sealed := h.Sealed()
	hh := h.Hash()
	t.mu.RLock()
	_, dup := t.headers[hh]
	t.mu.RUnlock()
	if dup {
		return false
	}
	cp := h
	if !sealed {
		cp = h.CloneSealed()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.headers[hh]; ok {
		return false
	}
	// Journal inside the lock so the logged order is exactly the
	// insertion order replay must reproduce; the index identifies this
	// insertion across snapshot horizons. A journal error degrades
	// durability, never the live store: the backend keeps it sticky
	// and surfaces it on Sync/Close.
	if t.journal != nil {
		_ = t.journal.LogTrust(cp, t.inserted)
	}
	t.inserted++
	t.headers[hh] = cp
	for _, ref := range cp.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		t.children[ref.Digest] = append(t.children[ref.Digest], hh)
		t.totalRefs++
	}
	t.order = append(t.order, hh)
	if t.capLimit > 0 {
		for len(t.headers) > t.capLimit && t.head < len(t.order) {
			t.evictLocked(t.order[t.head])
			t.head++
		}
	}
	// Compact the order slice once the dead prefix dominates, so the
	// backing array doesn't grow with total insertions.
	if t.head > len(t.order)/2 && t.head > t.capLimit && t.head > 64 {
		t.order = append(t.order[:0], t.order[t.head:]...)
		t.head = 0
	}
	return true
}

// Insertions returns the number of successful Adds over the store's
// lifetime (evicted headers included) — the replay horizon recorded in
// snapshots and carried by every journaled trust record.
func (t *TrustStore) Insertions() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.inserted
}

// setInsertions restores the lifetime insertion count from a snapshot.
func (t *TrustStore) setInsertions(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inserted = n
}

// writeSnapshotHeaders writes the snapshot-v2 trust section (insertion
// count + live-header count + headers in insertion order) under the
// read lock.
func (t *TrustStore) writeSnapshotHeaders(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := writeU64(w, uint64(t.inserted)); err != nil {
		return fmt.Errorf("ledger: writing trust insertion count: %w", err)
	}
	// order[head:] holds exactly the live headers: every Add appends
	// one entry and every eviction advances head past one, so the
	// count and the map size agree by construction.
	live := t.order[t.head:]
	if err := writeU32(w, uint32(len(live))); err != nil {
		return fmt.Errorf("ledger: writing trust count: %w", err)
	}
	for _, hh := range live {
		if err := writeFramed(w, block.EncodeHeader(t.headers[hh])); err != nil {
			return fmt.Errorf("ledger: writing trust header: %w", err)
		}
	}
	return nil
}

// evictLocked removes the header with the given hash from both
// indexes. Caller holds t.mu for writing.
func (t *TrustStore) evictLocked(hh digest.Digest) {
	h, ok := t.headers[hh]
	if !ok {
		return
	}
	delete(t.headers, hh)
	for _, ref := range h.Digests {
		if ref.Digest.IsZero() {
			continue
		}
		t.totalRefs--
		list := t.children[ref.Digest]
		for k, x := range list {
			if x == hh {
				list = append(list[:k], list[k+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(t.children, ref.Digest)
		} else {
			t.children[ref.Digest] = list
		}
	}
}

// Has reports whether a header with the given hash is stored.
func (t *TrustStore) Has(headerHash digest.Digest) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.headers[headerHash]
	return ok
}

// Get returns the stored (sealed, read-only) header with the given
// hash.
func (t *TrustStore) Get(headerHash digest.Digest) (*block.Header, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, ok := t.headers[headerHash]
	if !ok {
		return nil, false
	}
	return h, true
}

// ChildOf returns a stored (sealed, read-only) header whose Δ contains
// d — the TPS lookup of Eq. 9. When several qualify, the earliest
// inserted wins, which keeps path reconstruction deterministic.
func (t *TrustStore) ChildOf(d digest.Digest) (*block.Header, bool) {
	if d.IsZero() {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	hashes := t.children[d]
	if len(hashes) == 0 {
		return nil, false
	}
	return t.headers[hashes[0]], true
}

// Len returns the number of distinct headers in H_i.
func (t *TrustStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.headers)
}

// ModelBits returns the footprint of H_i under the paper's size model,
// matching Prop. 2's accounting: each header costs f_c + f_H·|Δ|.
func (t *TrustStore) ModelBits(m block.SizeModel) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.headers))*int64(m.ConstantBits()) + t.totalRefs*int64(m.FH)
}
