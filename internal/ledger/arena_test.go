package ledger

import (
	"testing"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

func TestArenaPutGetDedupe(t *testing.T) {
	a := NewArena()
	key := identity.Deterministic(1, 1)
	blocks := chainFor(t, key, 3, nil)
	for _, b := range blocks {
		d := a.Put(b)
		if d != b.Header.Hash() {
			t.Fatal("Put returned wrong digest")
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	// Content addressing: re-putting an identical block is a no-op.
	a.Put(blocks[0])
	if a.Len() != 3 {
		t.Fatalf("Len after duplicate Put = %d, want 3", a.Len())
	}
	got, ok := a.Get(blocks[1].Header.Hash())
	if !ok || got != blocks[1] {
		t.Fatal("Get did not return the stored block by reference")
	}
	if _, ok := a.Get(digest.Sum([]byte("missing"))); ok {
		t.Fatal("Get hit for unknown digest")
	}
}

// TestCompactStoreMatchesSharded drives identical logs through a
// sharded store and an arena-backed compact store and requires every
// read-side answer to match: the compact representation is a space
// optimization, never a semantic change.
func TestCompactStoreMatchesSharded(t *testing.T) {
	key := identity.Deterministic(1, 1)
	target := digest.Sum([]byte("neighbor block"))
	blocks := chainFor(t, key, 5, []block.DigestRef{{Node: 9, Digest: target}})

	sharded := NewStore(1)
	compact := NewStoreInArena(1, NewArena())
	for _, b := range blocks {
		if err := sharded.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := compact.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	for _, s := range []*Store{sharded, compact} {
		if s.Len() != 5 || s.Owner() != 1 {
			t.Fatalf("Len/Owner wrong: %d %v", s.Len(), s.Owner())
		}
		if got, ok := s.ByHash(blocks[2].Header.Hash()); !ok || got != blocks[2] {
			t.Fatal("ByHash lookup failed")
		}
		if _, ok := s.ByHash(digest.Sum([]byte("missing"))); ok {
			t.Fatal("ByHash hit for unknown digest")
		}
		if oldest, ok := s.OldestContaining(target); !ok || oldest.Header.Seq != 0 {
			t.Fatal("OldestContaining should return the oldest match")
		}
		if s.CountContaining(target) != 5 {
			t.Fatalf("CountContaining = %d, want 5", s.CountContaining(target))
		}
		if _, ok := s.OldestContaining(digest.Sum([]byte("nope"))); ok {
			t.Fatal("OldestContaining hit for unreferenced digest")
		}
	}

	m := block.DefaultSizeModel(100)
	if sharded.ModelBits(m) != compact.ModelBits(m) {
		t.Fatalf("ModelBits diverge: %d vs %d", sharded.ModelBits(m), compact.ModelBits(m))
	}

	// View fences must behave identically, including a fence captured
	// before the first reference to a digest.
	for n := 0; n <= 5; n++ {
		vs, vc := sharded.ViewAt(n), compact.ViewAt(n)
		for _, d := range []digest.Digest{target, blocks[0].Header.Hash(), blocks[3].Header.Hash()} {
			bs, oks := vs.OldestContaining(d)
			bc, okc := vc.OldestContaining(d)
			if oks != okc || bs != bc {
				t.Fatalf("ViewAt(%d).OldestContaining diverges", n)
			}
		}
	}
}

// TestCompactIndexStaysCurrentAfterLazyBuild queries the compact
// responder index early (forcing the lazy build) and then keeps
// appending: post-build appends must land in the index incrementally.
func TestCompactIndexStaysCurrentAfterLazyBuild(t *testing.T) {
	key := identity.Deterministic(1, 1)
	target := digest.Sum([]byte("late ref"))
	blocks := chainFor(t, key, 4, []block.DigestRef{{Node: 9, Digest: target}})

	s := NewStoreInArena(1, NewArena())
	if err := s.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	// Force the lazy build with only one block in the log.
	if s.CountContaining(target) != 1 {
		t.Fatal("index wrong after lazy build")
	}
	for _, b := range blocks[1:] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.CountContaining(target) != 4 {
		t.Fatalf("CountContaining = %d, want 4 after post-build appends", s.CountContaining(target))
	}
	if oldest, ok := s.OldestContaining(blocks[2].Header.Hash()); !ok || oldest.Header.Seq != 3 {
		t.Fatal("post-build append missing from index")
	}
}

// TestCompactByHashScopedToOwner: the arena is shared across owners, but
// each store's ByHash must only answer for its own log.
func TestCompactByHashScopedToOwner(t *testing.T) {
	a := NewArena()
	k1, k2 := identity.Deterministic(1, 1), identity.Deterministic(2, 1)
	s1, s2 := NewStoreInArena(1, a), NewStoreInArena(2, a)
	b1 := chainFor(t, k1, 1, nil)[0]
	b2 := chainFor(t, k2, 1, nil)[0]
	if err := s1.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(b2); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("arena Len = %d, want 2", a.Len())
	}
	if _, ok := s1.ByHash(b2.Header.Hash()); ok {
		t.Fatal("s1 answered for s2's block")
	}
	if got, ok := s2.ByHash(b2.Header.Hash()); !ok || got != b2 {
		t.Fatal("s2 missed its own block")
	}
}

func TestDigestCacheAppendSnapshotReusesScratch(t *testing.T) {
	c := NewDigestCache()
	d1, d2 := digest.Sum([]byte("a")), digest.Sum([]byte("b"))
	c.Update(2, d1)
	c.Update(3, d2)
	scratch := make([]block.DigestRef, 0, 8)
	prev := digest.Sum([]byte("prev"))
	got := c.AppendSnapshot(scratch[:0], 1, prev, []identity.NodeID{3, 2, 7})
	want := c.Snapshot(1, prev, []identity.NodeID{3, 2, 7})
	if len(got) != len(want) {
		t.Fatalf("len mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendSnapshot did not reuse the scratch backing array")
	}
}
