package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
)

// The control protocol drives a serving host over its stdio: one JSON
// object per line in, one per line out, strictly request/response
// after an initial ready event. It exists for harnesses — the e2e
// suite and scripted drivers — so waits are ack-driven end to end: a
// response to flush means every live neighbor acknowledged, a response
// to audit carries the consensus verdict.

// ControlRef is a block reference on the wire.
type ControlRef struct {
	Node uint32 `json:"node"`
	Seq  uint32 `json:"seq"`
}

// ControlRequest is one driver command.
//
// Ops: "slot" (set logical time), "seal" (mine one block from Data),
// "flush" (announce sealed Digests and await acks), "submit"
// (seal+flush one block), "audit" (PoP from this node against Ref),
// "silence" (mark Node dead locally), "info" (identity, address,
// live members), "latest" (ref + digest of the newest own block —
// what a restarted node re-flushes), "state" (canonical digest over
// the whole ledger state, for crash-recovery equivalence checks),
// "compact" (force a WAL compaction), "leave" (graceful shutdown;
// final response, then the loop ends).
type ControlRequest struct {
	Op      string      `json:"op"`
	Slot    uint32      `json:"slot,omitempty"`
	Data    []byte      `json:"data,omitempty"`
	Digests []string    `json:"digests,omitempty"`
	Node    uint32      `json:"node,omitempty"`
	Ref     *ControlRef `json:"ref,omitempty"`
}

// ControlResponse answers one request.
type ControlResponse struct {
	OK        bool        `json:"ok"`
	Err       string      `json:"err,omitempty"`
	ID        uint32      `json:"id,omitempty"`
	Addr      string      `json:"addr,omitempty"`
	Ref       *ControlRef `json:"ref,omitempty"`
	Digest    string      `json:"digest,omitempty"` // sealed header hash
	Consensus *bool       `json:"consensus,omitempty"`
	Vouchers  int         `json:"vouchers,omitempty"`
	Live      []uint32    `json:"live,omitempty"`
}

// ControlReady is the single event line a host emits once it serves.
type ControlReady struct {
	Event string `json:"event"` // "ready"
	ID    uint32 `json:"id"`
	Addr  string `json:"addr"`
}

// ServeControl runs the request/response loop for h over (r, w) until
// a leave op, EOF, or ctx cancellation, then closes the host. The
// driver owns pacing: every response is written (and flushed) before
// the next request is read, so zero polling is ever needed on either
// side.
func ServeControl(ctx context.Context, h *Host, r io.Reader, w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ControlReady{Event: "ready", ID: uint32(h.ID()), Addr: h.Addr()}); err != nil {
		_ = h.Close()
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if ctx.Err() != nil {
			break
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req ControlRequest
		if err := json.Unmarshal(line, &req); err != nil {
			if err := enc.Encode(ControlResponse{Err: fmt.Sprintf("bad request: %v", err)}); err != nil {
				break
			}
			continue
		}
		resp, leave := execControl(ctx, h, &req)
		if err := enc.Encode(resp); err != nil {
			break
		}
		if leave {
			return h.Close()
		}
	}
	_ = h.Close()
	return sc.Err()
}

// execControl dispatches one request.
func execControl(ctx context.Context, h *Host, req *ControlRequest) (ControlResponse, bool) {
	fail := func(err error) ControlResponse { return ControlResponse{Err: err.Error()} }
	switch req.Op {
	case "slot":
		h.SetSlot(req.Slot)
		return ControlResponse{OK: true}, false
	case "seal":
		ref, d, err := h.Seal(req.Data)
		if err != nil {
			return fail(err), false
		}
		return ControlResponse{
			OK:     true,
			Ref:    &ControlRef{Node: uint32(ref.Node), Seq: ref.Seq},
			Digest: d.Hex(),
		}, false
	case "flush":
		ds := make([]digest.Digest, 0, len(req.Digests))
		for _, hex := range req.Digests {
			d, err := digest.FromHex(hex)
			if err != nil {
				return fail(fmt.Errorf("bad digest %q: %w", hex, err)), false
			}
			ds = append(ds, d)
		}
		if err := h.Flush(ctx, ds); err != nil {
			return fail(err), false
		}
		return ControlResponse{OK: true}, false
	case "submit":
		ref, err := h.Submit(ctx, req.Data)
		if err != nil {
			return fail(err), false
		}
		b, err := h.Block(ref)
		if err != nil {
			return fail(err), false
		}
		return ControlResponse{
			OK:     true,
			Ref:    &ControlRef{Node: uint32(ref.Node), Seq: ref.Seq},
			Digest: b.Header.Hash().Hex(),
		}, false
	case "audit":
		if req.Ref == nil {
			return fail(fmt.Errorf("audit needs a ref")), false
		}
		ref := block.Ref{Node: identity.NodeID(req.Ref.Node), Seq: req.Ref.Seq}
		res, err := h.Audit(ctx, ref)
		if res == nil {
			if err == nil {
				err = fmt.Errorf("audit of %v produced no result", ref)
			}
			return fail(err), false
		}
		// A completed audit that misses consensus is a verdict, not a
		// transport failure: report it as such.
		consensus := res.Consensus
		resp := ControlResponse{OK: true, Consensus: &consensus, Vouchers: len(res.Vouchers)}
		if err != nil {
			resp.Err = err.Error()
		}
		return resp, false
	case "silence":
		h.MarkDead(identity.NodeID(req.Node))
		return ControlResponse{OK: true}, false
	case "info":
		live := h.Live()
		ids := make([]uint32, len(live))
		for i, id := range live {
			ids[i] = uint32(id)
		}
		return ControlResponse{OK: true, ID: uint32(h.ID()), Addr: h.Addr(), Live: ids}, false
	case "latest":
		ref, d, ok := h.Latest()
		if !ok {
			return fail(fmt.Errorf("store is empty")), false
		}
		return ControlResponse{
			OK:     true,
			Ref:    &ControlRef{Node: uint32(ref.Node), Seq: ref.Seq},
			Digest: d.Hex(),
		}, false
	case "state":
		d, err := h.StateDigest()
		if err != nil {
			return fail(err), false
		}
		return ControlResponse{OK: true, Digest: d.Hex()}, false
	case "compact":
		if err := h.Compact(); err != nil {
			return fail(err), false
		}
		return ControlResponse{OK: true}, false
	case "leave":
		return ControlResponse{OK: true}, true
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op)), false
	}
}
