package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
	"github.com/twoldag/twoldag/internal/node"
	"github.com/twoldag/twoldag/internal/pow"
	"github.com/twoldag/twoldag/internal/topology"
	"github.com/twoldag/twoldag/internal/transport"
	"github.com/twoldag/twoldag/internal/wire"
)

// ErrClosed reports an operation on a closed Host.
var ErrClosed = errors.New("cluster: host closed")

// Config assembles a single-node Host. Every process of one cluster
// must share Nodes, Seed, Gamma and Difficulty — the planned topology,
// identities and consensus parameters all derive from them.
type Config struct {
	// ID is this process's planned identity (serve mode). Ignored when
	// Join is set — a dynamic joiner's ID comes out of the placement
	// rule.
	ID identity.NodeID
	// Join marks this process a dynamic joiner: it discovers the
	// cluster via JoinAddr, re-anchors to the newest live member, and
	// announces itself to everyone.
	Join bool
	// JoinAddr is a running member's advertised address. Required in
	// Join mode; optional in serve mode, where it bootstraps the peer
	// directory (the first serving process of a cluster leaves it
	// empty).
	JoinAddr string
	// Nodes is the planned cluster size.
	Nodes int
	// Seed anchors placement and identities.
	Seed int64
	// Gamma is the PoP consensus threshold γ.
	Gamma int
	// Difficulty is the proof-of-work level ρ in bits.
	Difficulty uint8
	// Listen is the TCP bind address (default "127.0.0.1:0").
	Listen string
	// Advertise overrides the address announced to peers (NAT-style
	// rewriting, ":0" binds).
	Advertise string
	// RequestTimeout is τ for PoP requests and the acknowledgement
	// deadline fallback (default 2s).
	RequestTimeout time.Duration
	// Retry bounds announcement and PoP re-transmission.
	Retry faults.RetryPolicy
	// Plan, when active, wraps the transport in seeded fault injection.
	Plan faults.Plan
	// Observer, when non-nil, receives the node's event stream.
	Observer events.Observer
	// DataDir, when set, makes the ledger durable: a file-backed
	// WAL + snapshot backend (ledger.FileBackend) opens there, the
	// node recovers its whole prior state (S_i, H_i, A_i) before
	// serving, every sealed block fsyncs before it is acknowledged,
	// and the WAL compacts into a snapshot every CompactEvery blocks.
	// Empty = in-memory only (the no-op backend).
	DataDir string
	// TrustCap bounds H_i to that many headers (FIFO eviction;
	// 0 = unbounded). With DataDir set the cap is persisted in the
	// snapshot and survives restarts even if the flag is dropped.
	TrustCap int
	// CompactEvery is the WAL compaction threshold in block records
	// (default 256; only meaningful with DataDir).
	CompactEvery int
	// Sync is the WAL commit-window policy (only meaningful with
	// DataDir). The zero value is ledger.SyncAlways — fsync per block.
	// Under ledger.SyncBatch the host commits the window once per
	// Flush, before any digest is announced; ledger.SyncInterval(d)
	// bounds staleness to d.
	Sync ledger.SyncPolicy
}

// DefaultCompactEvery is the WAL compaction threshold (in block
// records) when Config.CompactEvery is zero — shared with the facade
// driver so both seal paths bound their replay tails identically.
const DefaultCompactEvery = 256

// member is one directory entry.
type member struct {
	live   bool
	addr   string
	anchor identity.NodeID // wire.NoAnchor for planned members
}

// Host runs one 2LDAG device in this process as part of a cross-host
// cluster: a node over real TCP, a membership directory maintained via
// Hello/PeerList/Leave frames, and the slot/seal/flush/audit verbs a
// distributed driver needs. Verbs are safe for the documented Runtime
// concurrency: audits may run concurrently, membership changes and
// submissions must not race each other.
type Host struct {
	cfg     Config
	id      identity.NodeID
	anchor  identity.NodeID
	pos     topology.Point
	topo    *topology.Graph
	ring    *identity.Ring
	node    *node.Node
	tn      *transport.TCPNode
	tracker *AckTracker
	health  *faults.Health
	obs     events.Observer // merged user observer + tracker
	backend *ledger.FileBackend
	slot    atomic.Uint32

	mu      sync.Mutex
	members map[identity.NodeID]*member
	ids     []identity.NodeID // known devices in join order

	ctx    context.Context
	cancel context.CancelFunc
	// Verb lifecycle: begin registers under verbMu.RLock, so Close can
	// take the write lock to flip closed and know no wg.Add can race
	// its wg.Wait (a bare atomic double-check would let an Add from a
	// zero counter run concurrently with Wait, which WaitGroup forbids).
	verbMu  sync.RWMutex
	wg      sync.WaitGroup // in-flight verbs, drained by Close
	closeMu sync.Mutex
	closed  atomic.Bool
}

// Start builds the host: it derives the shared world from (Nodes,
// Seed), discovers the cluster through JoinAddr when given, computes
// its placement (planned or dynamic), starts listening and announces
// itself to every known live member.
func Start(cfg Config) (*Host, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("cluster: Config.Nodes must be positive")
	}
	if cfg.Join && cfg.JoinAddr == "" {
		return nil, errors.New("cluster: Join mode requires JoinAddr")
	}
	if !cfg.Join && int(cfg.ID) >= cfg.Nodes {
		return nil, fmt.Errorf("cluster: planned ID %v out of range for %d nodes", cfg.ID, cfg.Nodes)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if err := cfg.Sync.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.DataDir == "" && !cfg.Sync.PerBlock() {
		return nil, fmt.Errorf("cluster: sync policy %v requires DataDir", cfg.Sync)
	}

	topo, err := topology.Deployment(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	h := &Host{
		cfg:     cfg,
		id:      cfg.ID,
		anchor:  wire.NoAnchor,
		topo:    topo,
		ring:    identity.NewRing(),
		tracker: NewAckTracker(),
		members: make(map[identity.NodeID]*member, cfg.Nodes),
	}
	if cfg.Join {
		// No identity until placement: park on the bootstrap sentinel so
		// directory merges can't mistake a real member's entry for our
		// own.
		h.id = wire.BootstrapID
	}
	h.ctx, h.cancel = context.WithCancel(context.Background())
	for _, id := range topo.Nodes() {
		kp := identity.Deterministic(id, cfg.Seed)
		if err := h.ring.Register(kp.ID, kp.Public); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		h.members[id] = &member{anchor: wire.NoAnchor}
		h.ids = append(h.ids, id)
	}

	// Discovery: one raw-dial exchange against the bootstrap member
	// yields the current directory — addresses, liveness, and every
	// dynamic join to replay into the planned topology.
	if cfg.JoinAddr != "" {
		bctx, bcancel := context.WithTimeout(h.ctx, cfg.RequestTimeout)
		hello := wire.NewHello(wire.BootstrapID, 0, wire.HelloInfo{Anchor: wire.NoAnchor}, 1, 1)
		reply, err := transport.Bootstrap(bctx, cfg.JoinAddr, hello)
		bcancel()
		if err != nil {
			return nil, fmt.Errorf("cluster: discovering via %s: %w", cfg.JoinAddr, err)
		}
		entries, err := reply.DecodePeerListPayload()
		if err != nil {
			return nil, fmt.Errorf("cluster: bad directory from %s: %w", cfg.JoinAddr, err)
		}
		h.merge(entries)
	}

	// Placement: planned members take their generated position; a
	// joiner runs the shared placement rule against the replayed
	// topology, exactly as the in-process drivers do.
	if cfg.Join {
		h.mu.Lock()
		pl, err := PlanJoin(h.topo, h.ids, func(id identity.NodeID) bool {
			m, ok := h.members[id]
			return ok && m.live
		})
		if err == nil {
			err = pl.Apply(h.topo)
		}
		if err != nil {
			h.mu.Unlock()
			return nil, err
		}
		h.id, h.anchor, h.pos = pl.ID, pl.Anchor, pl.Pos
		kp := identity.Deterministic(h.id, cfg.Seed)
		if rerr := h.ring.Register(kp.ID, kp.Public); rerr != nil {
			h.mu.Unlock()
			return nil, fmt.Errorf("cluster: %w", rerr)
		}
		h.members[h.id] = &member{anchor: h.anchor}
		h.ids = append(h.ids, h.id)
		h.mu.Unlock()
	} else {
		h.pos, _ = topo.Position(h.id)
	}

	if err := h.startNode(); err != nil {
		return nil, err
	}
	if err := h.announceSelf(); err != nil {
		_ = h.node.Close()
		return nil, err
	}
	return h, nil
}

// startNode brings up the transport and node runtime.
func (h *Host) startNode() error {
	var opts []transport.TCPOption
	if h.cfg.Advertise != "" {
		opts = append(opts, transport.WithAdvertiseAddr(h.cfg.Advertise))
	}
	tn, err := transport.ListenTCP(h.id, h.cfg.Listen, nil, opts...)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	h.tn = tn
	h.mu.Lock()
	for id, m := range h.members {
		if id != h.id && m.addr != "" {
			tn.SetPeer(id, m.addr)
		}
	}
	if m := h.members[h.id]; m != nil {
		m.live = true
		m.addr = tn.AdvertiseAddr()
	}
	h.mu.Unlock()

	// User observers run before the tracker: the tracker's ack is what
	// unblocks a waiting Flush, so ordering it last guarantees every
	// user observer has already seen a delivery by the time the
	// submitter returns.
	obs := events.Multi(h.cfg.Observer, h.tracker)
	self := h.id
	tn.SetDropHandler(func(env transport.Envelope) {
		obs.OnMessageDropped(events.MessageDropped{
			From: env.From, To: self, Kind: uint8(env.Msg.Kind),
			Reason: events.DropBackpressure,
		})
	})
	h.obs = obs
	h.health = faults.NewHealth(h.id, 0, obs)

	params := block.DefaultParams()
	params.Difficulty = pow.Difficulty(h.cfg.Difficulty)
	tr := transport.Transport(tn)
	if h.cfg.Plan.Active() {
		slot := &h.slot
		tr = faults.Wrap(tn, h.cfg.Plan, func() uint32 { return slot.Load() }, obs)
	}

	// Durability: open the data dir and recover the whole prior state
	// — snapshot, then WAL replay with cryptographic re-verification
	// against the ring — before the node serves any traffic.
	var state *ledger.NodeState
	var backend ledger.Backend
	if h.cfg.DataDir != "" {
		bopts := []ledger.BackendOption{ledger.WithSyncPolicy(h.cfg.Sync)}
		if co, ok := h.cfg.Observer.(ledger.CommitObserver); ok {
			bopts = append(bopts, ledger.WithCommitObserver(co))
		}
		fb, err := ledger.OpenFileBackend(h.cfg.DataDir, bopts...)
		if err != nil {
			tn.Close()
			return err
		}
		state, err = fb.Recover(ledger.RecoverOptions{
			Owner:    h.id,
			Params:   params,
			Ring:     h.ring,
			TrustCap: h.cfg.TrustCap,
		})
		if err != nil {
			_ = fb.Close()
			tn.Close()
			return fmt.Errorf("cluster: recovering %s: %w", h.cfg.DataDir, err)
		}
		h.backend = fb
		backend = fb
	}

	n, err := node.New(node.Config{
		Key:            identity.Deterministic(h.id, h.cfg.Seed),
		Params:         params,
		Topo:           h.topo,
		Ring:           h.ring,
		Transport:      tr,
		Gamma:          h.cfg.Gamma,
		RequestTimeout: h.cfg.RequestTimeout,
		Retry:          h.cfg.Retry,
		Health:         h.health,
		Observer:       obs,
		Control:        h.onControl,
		State:          state,
		TrustCap:       h.cfg.TrustCap,
		Backend:        backend,
		AnnounceAcks:   true,
	})
	if err != nil {
		if h.backend != nil {
			_ = h.backend.Close()
			h.backend = nil
		}
		tn.Close()
		return fmt.Errorf("cluster: %w", err)
	}
	slot := &h.slot
	n.SetClock(func() uint32 { return slot.Load() })
	h.node = n
	tn.SetBootstrapHandler(h.onBootstrap)
	return nil
}

// announceSelf fans a Hello out to every known live member, merging
// each PeerList reply. Hellos ride the (possibly fault-wrapped)
// transport, so each exchange retries under the configured policy.
func (h *Host) announceSelf() error {
	h.mu.Lock()
	peers := make([]identity.NodeID, 0, len(h.members))
	for id, m := range h.members {
		if id != h.id && m.live && m.addr != "" {
			peers = append(peers, id)
		}
	}
	h.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, peer := range peers {
		if err := h.helloExchange(peer); err != nil {
			return fmt.Errorf("cluster: hello to %v: %w", peer, err)
		}
	}
	return nil
}

// helloExchange runs one Hello → PeerList round trip with bounded
// retry (announcement frames can be dropped by an active fault plan).
func (h *Host) helloExchange(peer identity.NodeID) error {
	kp := identity.Deterministic(h.id, h.cfg.Seed)
	info := wire.HelloInfo{
		Addr:   h.tn.AdvertiseAddr(),
		PubKey: kp.Public,
		Anchor: h.anchor,
		X:      h.pos.X,
		Y:      h.pos.Y,
	}
	attempts := h.cfg.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if wait := h.cfg.Retry.Backoff(attempt, uint64(peer)); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-h.ctx.Done():
					timer.Stop()
					return h.ctx.Err()
				case <-timer.C:
				}
			}
		}
		var resp *wire.Message
		resp, err = h.node.Call(h.ctx, peer, func(corr, nonce uint64) *wire.Message {
			return wire.NewHello(h.id, peer, info, corr, nonce)
		})
		if err != nil {
			continue
		}
		var entries []wire.PeerEntry
		entries, err = resp.DecodePeerListPayload()
		if err != nil {
			continue
		}
		h.merge(entries)
		return nil
	}
	return err
}

// merge folds a directory snapshot into local state: unknown dynamic
// joiners are replayed into the topology and key ring (identities are
// deterministic, so the key derives from the seed rather than trusting
// the carried bytes), and addresses and liveness are adopted.
func (h *Host) merge(entries []wire.PeerEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range entries {
		if e.ID == h.id {
			continue
		}
		m, known := h.members[e.ID]
		if !known {
			if e.Anchor == wire.NoAnchor {
				continue // not planned, not a join record: ignore
			}
			pl := Placement{ID: e.ID, Anchor: e.Anchor, Pos: topology.Point{X: e.X, Y: e.Y}}
			if err := pl.Apply(h.topo); err != nil {
				continue
			}
			kp := identity.Deterministic(e.ID, h.cfg.Seed)
			_ = h.ring.Register(kp.ID, kp.Public)
			m = &member{anchor: e.Anchor}
			h.members[e.ID] = m
			h.ids = append(h.ids, e.ID)
		}
		m.live = e.Live
		if e.Addr != "" {
			m.addr = e.Addr
			if h.tn != nil {
				h.tn.SetPeer(e.ID, e.Addr)
			}
		}
	}
}

// snapshot renders the directory for a PeerList, in join order.
// Callers must not hold h.mu.
func (h *Host) snapshot() []wire.PeerEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	entries := make([]wire.PeerEntry, 0, len(h.ids))
	for _, id := range h.ids {
		m := h.members[id]
		p, _ := h.topo.Position(id)
		entries = append(entries, wire.PeerEntry{
			ID: id, Live: m.live, Anchor: m.anchor,
			X: p.X, Y: p.Y, Addr: m.addr,
		})
	}
	return entries
}

// onBootstrap answers a joiner's anonymous discovery query with the
// directory (reply written straight back on the joiner's connection —
// it has no listener registered anywhere yet).
func (h *Host) onBootstrap(msg *wire.Message) *wire.Message {
	if msg.Kind != wire.KindHello {
		return nil
	}
	return wire.NewPeerList(msg, h.snapshot())
}

// onControl serves membership-plane frames from the node's dispatch
// loop.
func (h *Host) onControl(env transport.Envelope) {
	msg := env.Msg
	switch msg.Kind {
	case wire.KindHello:
		info, err := msg.DecodeHelloPayload()
		if err != nil {
			return
		}
		h.mu.Lock()
		from := msg.From
		m, known := h.members[from]
		if !known {
			if info.Anchor == wire.NoAnchor {
				h.mu.Unlock()
				return // claims planned membership in a different world
			}
			pl := Placement{ID: from, Anchor: info.Anchor, Pos: topology.Point{X: info.X, Y: info.Y}}
			if err := pl.Apply(h.topo); err != nil {
				h.mu.Unlock()
				return
			}
			kp := identity.Deterministic(from, h.cfg.Seed)
			_ = h.ring.Register(kp.ID, kp.Public)
			m = &member{anchor: info.Anchor}
			h.members[from] = m
			h.ids = append(h.ids, from)
		}
		m.live = true
		if info.Addr != "" {
			m.addr = info.Addr
			h.tn.SetPeer(from, info.Addr)
		}
		h.mu.Unlock()
		// A node re-admitting itself clears any open circuit.
		h.health.ReportSuccess(from)
		_ = h.node.Send(h.ctx, from, wire.NewPeerList(msg, h.snapshot()))
	case wire.KindPeerList:
		// Corr≠0 replies route to the RPC pending map; only pushes land
		// here.
		if entries, err := msg.DecodePeerListPayload(); err == nil {
			h.merge(entries)
		}
	case wire.KindLeave:
		h.MarkDead(msg.From)
	}
}

// ID returns this host's device identity.
func (h *Host) ID() identity.NodeID { return h.id }

// Addr returns the address peers are told to dial.
func (h *Host) Addr() string { return h.tn.AdvertiseAddr() }

// Topology exposes the host's view of the radio graph.
func (h *Host) Topology() *topology.Graph { return h.topo }

// SetSlot pins logical time; blocks sealed afterwards carry it.
func (h *Host) SetSlot(s uint32) { h.slot.Store(s) }

// Slot returns the current logical time.
func (h *Host) Slot() uint32 { return h.slot.Load() }

// Live lists the members this host believes are running, ascending.
func (h *Host) Live() []identity.NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]identity.NodeID, 0, len(h.members))
	for id, m := range h.members {
		if m.live {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkDead records a member as stopped: announcements no longer await
// its acknowledgement, audits route around it, and its directory entry
// drops so sends fail fast — the distributed analog of the in-process
// drivers' Silence.
func (h *Host) MarkDead(id identity.NodeID) {
	h.mu.Lock()
	if m, ok := h.members[id]; ok {
		m.live = false
	}
	h.mu.Unlock()
	h.health.Suspect(id)
	h.tn.RemovePeer(id)
}

// liveNeighbors returns this node's radio neighbors believed running.
func (h *Host) liveNeighbors() []identity.NodeID {
	nbs := h.topo.Neighbors(h.id)
	h.mu.Lock()
	defer h.mu.Unlock()
	out := nbs[:0]
	for _, nb := range nbs {
		if m, ok := h.members[nb]; ok && m.live {
			out = append(out, nb)
		}
	}
	return out
}

// begin registers an in-flight verb; Close drains them.
func (h *Host) begin() error {
	h.verbMu.RLock()
	defer h.verbMu.RUnlock()
	if h.closed.Load() {
		return ErrClosed
	}
	h.wg.Add(1)
	return nil
}

// opCtx bounds a verb: the caller's deadline rules when present
// (falling back to the request timeout), and closing the host cancels
// the verb either way.
func (h *Host) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	var cancel context.CancelFunc
	if _, ok := ctx.Deadline(); ok {
		ctx, cancel = context.WithCancel(ctx)
	} else {
		ctx, cancel = context.WithTimeout(ctx, h.cfg.RequestTimeout)
	}
	stop := context.AfterFunc(h.ctx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Seal mines and signs this node's next block from data without
// announcing it, returning the block ref and the digest to flush. The
// seal/flush split lets a distributed driver seal a whole slot across
// all processes before any announcement flows — the same phase order
// the in-process SubmitBatch enforces, which sealed-header equivalence
// depends on (headers embed the A_i snapshot at seal time).
func (h *Host) Seal(data []byte) (block.Ref, digest.Digest, error) {
	if err := h.begin(); err != nil {
		return block.Ref{}, digest.Digest{}, err
	}
	defer h.wg.Done()
	b, d, err := h.node.GenerateLocal(data)
	if err != nil {
		return block.Ref{}, digest.Digest{}, err
	}
	h.maybeCompact()
	return b.Header.Ref(), d, nil
}

// maybeCompact folds the WAL into a snapshot once the block-record
// threshold is reached. Runs inside the Seal verb (h.wg held), so
// Close never races the backend away mid-compaction; concurrent
// compactions coalesce inside the backend.
func (h *Host) maybeCompact() {
	if h.backend == nil {
		return
	}
	every := h.cfg.CompactEvery
	if every <= 0 {
		every = DefaultCompactEvery
	}
	if h.backend.PendingBlocks() < every {
		return
	}
	_ = h.backend.Compact(func() (*ledger.NodeState, error) {
		return h.node.Engine().State(), nil
	})
}

// Compact forces a WAL compaction now (no-op without a data dir) —
// exposed so tests and operators can bound the replay tail on demand.
func (h *Host) Compact() error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.wg.Done()
	if h.backend == nil {
		return nil
	}
	return h.backend.Compact(func() (*ledger.NodeState, error) {
		return h.node.Engine().State(), nil
	})
}

// RecoveryReport returns what startup recovery read from the data dir;
// ok is false without one. A true TornTail means the previous run's
// final, never-acknowledged WAL record was discarded — worth a log
// line, never an error.
func (h *Host) RecoveryReport() (ledger.RecoveryReport, bool) {
	if h.backend == nil {
		return ledger.RecoveryReport{}, false
	}
	return h.backend.RecoveryReport(), true
}

// Latest returns the ref and digest of this node's newest sealed
// block. ok is false for an empty store — a fresh node, or one whose
// data dir held nothing.
func (h *Host) Latest() (ref block.Ref, d digest.Digest, ok bool) {
	b := h.node.Engine().Store().Latest()
	if b == nil {
		return block.Ref{}, digest.Digest{}, false
	}
	return b.Header.Ref(), b.Header.Hash(), true
}

// StateDigest returns a canonical digest over the node's whole ledger
// state — the snapshot-v2 serialization of (S_i, H_i, A_i, trust cap)
// — for byte-identity checks across crash/recovery boundaries.
func (h *Host) StateDigest() (digest.Digest, error) {
	var buf bytes.Buffer
	if err := h.node.Engine().State().WriteSnapshot(&buf); err != nil {
		return digest.Digest{}, err
	}
	return digest.Sum(buf.Bytes()), nil
}

// Flush announces previously sealed digests (in seal order) to every
// radio neighbor and blocks until each live neighbor acknowledged
// every digest — event-driven via wire-level DigestAcks, with the
// configured per-digest retry.
func (h *Host) Flush(ctx context.Context, ds []digest.Digest) error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.wg.Done()
	if len(ds) == 0 {
		return nil
	}
	// Under a batched sync policy this is the commit point: the whole
	// slot's block records become durable in one fsync before any
	// neighbor learns their digests — write-ahead at window
	// granularity. (SyncAlways committed per block at seal time;
	// SyncInterval is deliberately decoupled from flushes.)
	if h.cfg.Sync.Batched() {
		if err := h.node.CommitJournal(); err != nil {
			return err
		}
	}
	nbs := h.liveNeighbors()
	waiters := make([]*Waiter, len(ds))
	for i, d := range ds {
		waiters[i] = h.tracker.Expect(d, nbs)
	}
	actx, cancel := h.opCtx(ctx)
	defer cancel()
	h.node.AnnounceBatch(actx, ds)
	resend := func(ctx context.Context, nb identity.NodeID, d digest.Digest) {
		h.node.AnnounceTo(ctx, nb, d)
	}
	// Await concurrently so every digest's retry clock runs at once.
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i := range ds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = h.tracker.AwaitRetry(actx, h.id, ds[i], waiters[i], h.cfg.Retry, h.obs, resend)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, d := range ds[i:] {
				h.tracker.Cancel(d)
			}
			return err
		}
	}
	return nil
}

// Submit seals and flushes one block — the single-shot verb.
func (h *Host) Submit(ctx context.Context, data []byte) (block.Ref, error) {
	ref, d, err := h.Seal(data)
	if err != nil {
		return block.Ref{}, err
	}
	if err := h.Flush(ctx, []digest.Digest{d}); err != nil {
		return ref, err
	}
	return ref, nil
}

// Audit runs PoP from this node against ref.
func (h *Host) Audit(ctx context.Context, ref block.Ref) (*core.Result, error) {
	if err := h.begin(); err != nil {
		return nil, err
	}
	defer h.wg.Done()
	actx, cancel := h.opCtx(ctx)
	defer cancel()
	return h.node.Audit(actx, ref)
}

// Block fetches a sealed block from this node's own store (read-only).
func (h *Host) Block(ref block.Ref) (*block.Block, error) {
	if ref.Node != h.id {
		return nil, fmt.Errorf("cluster: block %v is not local to %v", ref, h.id)
	}
	return h.node.Engine().Store().Get(ref.Seq)
}

// Close shuts the host down gracefully, in strict order: stop
// accepting verbs, cancel and drain every in-flight one (their retry
// loops are bounded by the policy cap and their contexts are dead),
// flush + fsync and close the durability backend — every accepted
// block is on disk before any peer learns we are leaving — then
// broadcast Leave so peers mark this node dead immediately instead of
// waiting for their health trackers, and finally close the node —
// which closes the RPC layer, the transport and the listener. Journal
// writes from frames that arrive between backend close and node close
// are dropped (ErrBackendClosed): nothing a departing node must keep.
func (h *Host) Close() error {
	h.closeMu.Lock()
	defer h.closeMu.Unlock()
	if h.closed.Load() {
		return nil
	}
	h.verbMu.Lock()
	h.closed.Store(true)
	h.verbMu.Unlock()
	h.cancel()
	h.wg.Wait()
	var backendErr error
	if h.backend != nil {
		if err := h.backend.Sync(); err != nil {
			backendErr = err
		}
		if err := h.backend.Close(); err != nil && backendErr == nil {
			backendErr = err
		}
	}
	lctx, lcancel := context.WithTimeout(context.Background(), h.cfg.RequestTimeout)
	for _, peer := range h.Live() {
		if peer == h.id {
			continue
		}
		_ = h.node.Send(lctx, peer, wire.NewLeave(h.id, peer, h.node.NextNonce()))
	}
	lcancel()
	if err := h.node.Close(); err != nil {
		return err
	}
	return backendErr
}
