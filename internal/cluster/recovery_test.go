package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
)

// recoveryWorkload drives one deterministic slot across hosts: every
// host seals its block first (phase split), then every host flushes.
func recoveryWorkload(t *testing.T, hosts []*Host, slot uint32) {
	t.Helper()
	for _, h := range hosts {
		h.SetSlot(slot)
	}
	type sealed struct {
		h *Host
		d digest.Digest
	}
	var flushes []sealed
	for _, h := range hosts {
		_, d, err := h.Seal([]byte{byte(slot), byte(h.ID())})
		if err != nil {
			t.Fatalf("seal slot %d on %v: %v", slot, h.ID(), err)
		}
		flushes = append(flushes, sealed{h, d})
	}
	for _, f := range flushes {
		if err := f.h.Flush(context.Background(), []digest.Digest{f.d}); err != nil {
			t.Fatalf("flush slot %d on %v: %v", slot, f.h.ID(), err)
		}
	}
}

// recoveryOutcome captures everything the equivalence check compares:
// each node's canonical ledger digest and a subsequent audit verdict.
type recoveryOutcome struct {
	states    map[identity.NodeID]digest.Digest
	consensus bool
	vouchers  int
}

// observeOutcome audits block {0,0} from host 1 and snapshots every
// host's state digest (after the audit, so trust-store growth from the
// audit itself is part of the comparison).
func observeOutcome(t *testing.T, hosts []*Host) recoveryOutcome {
	t.Helper()
	res, err := hosts[1].Audit(context.Background(), block.Ref{Node: 0, Seq: 0})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	out := recoveryOutcome{states: make(map[identity.NodeID]digest.Digest)}
	out.consensus = res.Consensus
	out.vouchers = len(res.Vouchers)
	for _, h := range hosts {
		d, err := h.StateDigest()
		if err != nil {
			t.Fatalf("state digest on %v: %v", h.ID(), err)
		}
		out.states[h.ID()] = d
	}
	return out
}

// TestRecoveryKillRestartEquivalence is the headline crash proof at the
// host level: two identical three-node clusters run the same workload;
// in one of them node 2 is killed mid-slot — after its block hit the
// WAL, before it announced — and restarted from its data dir. The
// restarted cluster must end byte-identical to the uninterrupted one:
// every node's (S_i, H_i, A_i) serialization and the outcome of a
// subsequent audit.
func TestRecoveryKillRestartEquivalence(t *testing.T) {
	const seed = 13
	base := t.TempDir()
	dirs := func(run string) func(id identity.NodeID, cfg *Config) {
		return func(id identity.NodeID, cfg *Config) {
			cfg.DataDir = filepath.Join(base, run, fmt.Sprintf("node-%d", id))
		}
	}

	// Uninterrupted oracle run.
	oracle := startHosts(t, 3, seed, dirs("oracle"))
	recoveryWorkload(t, oracle, 1)
	recoveryWorkload(t, oracle, 2)
	want := observeOutcome(t, oracle)

	// Crash run: slot 1 completes, then in slot 2 every host seals but
	// node 2 dies before flushing — the mid-slot window where its block
	// is fsync'd in the WAL and nowhere else.
	hosts := startHosts(t, 3, seed, dirs("crash"))
	recoveryWorkload(t, hosts, 1)
	for _, h := range hosts {
		h.SetSlot(2)
	}
	var ds [3]digest.Digest
	var refs [3]block.Ref
	for i, h := range hosts {
		ref, d, err := h.Seal([]byte{2, byte(h.ID())})
		if err != nil {
			t.Fatalf("seal on %v: %v", h.ID(), err)
		}
		refs[i], ds[i] = ref, d
	}
	// Kill: the node goes down with no Leave, no backend Sync, no
	// flush. Only LogBlock's own fsync has run.
	_ = hosts[2].node.Close()

	// Restart from the same data dir, re-discovering the cluster
	// through host 0.
	restarted, err := Start(Config{
		ID: 2, Nodes: 3, Seed: seed, Gamma: 1, Difficulty: 2,
		RequestTimeout: 2 * time.Second,
		JoinAddr:       hosts[0].Addr(),
		DataDir:        filepath.Join(base, "crash", "node-2"),
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { _ = restarted.Close() })
	restarted.SetSlot(2)

	// The sealed-but-unannounced block survived the kill.
	ref, d, ok := restarted.Latest()
	if !ok || ref != refs[2] || d != ds[2] {
		t.Fatalf("restarted latest = (%v %v %v), want (%v %v)", ref, d, ok, refs[2], ds[2])
	}

	// Finish the slot: the survivors flush, and the restarted node
	// re-announces its recovered block — the driver-level completion of
	// the interrupted flush.
	for i, h := range []*Host{hosts[0], hosts[1], restarted} {
		if err := h.Flush(context.Background(), []digest.Digest{ds[i]}); err != nil {
			t.Fatalf("flush on %v: %v", h.ID(), err)
		}
	}

	got := observeOutcome(t, []*Host{hosts[0], hosts[1], restarted})
	if got.consensus != want.consensus || got.vouchers != want.vouchers {
		t.Fatalf("audit after recovery = (%v, %d vouchers), oracle (%v, %d)",
			got.consensus, got.vouchers, want.consensus, want.vouchers)
	}
	for id, w := range want.states {
		if got.states[id] != w {
			t.Fatalf("node %v state digest diverged after crash recovery", id)
		}
	}
}

// TestRecoverySyncPolicies proves kill/restart equivalence under every
// commit-window discipline at the host level: a durable single-node
// host seals and flushes across three slots, dies without Leave or any
// graceful host shutdown, and restarts from its data dir. The state
// digest must survive the kill unchanged and — because sealing is
// deterministic — be identical across all three policies: the flush
// boundary is SyncBatch's commit point, the ticker SyncInterval's, and
// the backend close commits whatever is still staged.
func TestRecoverySyncPolicies(t *testing.T) {
	digests := make(map[string]digest.Digest)
	for _, tc := range []struct {
		name   string
		policy ledger.SyncPolicy
	}{
		{"always", ledger.SyncAlways()},
		{"batch", ledger.SyncBatch()},
		{"interval", ledger.SyncInterval(5 * time.Millisecond)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{
				ID: 0, Nodes: 1, Seed: 7, Gamma: 0, Difficulty: 2,
				RequestTimeout: time.Second,
				DataDir:        dir,
				Sync:           tc.policy,
			}
			h, err := Start(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for slot := uint32(1); slot <= 3; slot++ {
				h.SetSlot(slot)
				_, d, err := h.Seal([]byte{byte(slot)})
				if err != nil {
					t.Fatalf("seal slot %d: %v", slot, err)
				}
				if err := h.Flush(context.Background(), []digest.Digest{d}); err != nil {
					t.Fatalf("flush slot %d: %v", slot, err)
				}
			}
			before, err := h.StateDigest()
			if err != nil {
				t.Fatal(err)
			}
			// Kill: close the node directly — no Leave, no host drain.
			_ = h.node.Close()

			h2, err := Start(cfg)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			t.Cleanup(func() { _ = h2.Close() })
			after, err := h2.StateDigest()
			if err != nil {
				t.Fatal(err)
			}
			if after != before {
				t.Fatalf("state digest changed across kill + restart under %s", tc.name)
			}
			digests[tc.name] = after
		})
	}
	if digests["batch"] != digests["always"] || digests["interval"] != digests["always"] {
		t.Fatalf("state digests diverged across sync policies: %v", digests)
	}
}

// TestRecoverySyncPolicyValidation pins the host-level config contract:
// a malformed interval fails Start, and a batched or interval policy
// without a data dir is meaningless (there is no WAL to commit).
func TestRecoverySyncPolicyValidation(t *testing.T) {
	base := Config{ID: 0, Nodes: 1, Seed: 7, Gamma: 0, Difficulty: 2, RequestTimeout: time.Second}

	bad := base
	bad.DataDir = t.TempDir()
	bad.Sync = ledger.SyncInterval(-time.Second)
	if _, err := Start(bad); err == nil {
		t.Fatal("negative sync interval accepted")
	}
	memOnly := base
	memOnly.Sync = ledger.SyncBatch()
	if _, err := Start(memOnly); err == nil {
		t.Fatal("batched sync policy accepted without a data dir")
	}
}

// TestRecoveryCloseMidAppend races Close against a stream of Seals on
// a durable host (mirroring TestHostCloseMidRetry for the backend
// path) and then proves the durability contract: every Seal that
// reported success is recoverable from the data dir, bit for bit.
func TestRecoveryCloseMidAppend(t *testing.T) {
	dir := t.TempDir()
	h, err := Start(Config{
		ID: 0, Nodes: 1, Seed: 7, Gamma: 0, Difficulty: 2,
		RequestTimeout: time.Second,
		DataDir:        dir,
		CompactEvery:   4, // exercise compaction concurrently too
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SetSlot(1)

	type acked struct {
		ref block.Ref
		d   digest.Digest
	}
	sealed := make(chan acked, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			ref, d, err := h.Seal([]byte{byte(i)})
			if err != nil {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("seal: %v", err)
				}
				return
			}
			sealed <- acked{ref, d}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := h.Close(); err != nil {
		t.Fatalf("close mid-append: %v", err)
	}
	<-done
	close(sealed)

	var accepted []acked
	for a := range sealed {
		accepted = append(accepted, a)
	}
	if len(accepted) == 0 {
		t.Fatal("no seals completed before close; nothing proven")
	}

	// Reopen the data dir: every acknowledged block must be there.
	fb, err := ledger.OpenFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	p := block.DefaultParams()
	p.Difficulty = 2
	st, err := fb.Recover(ledger.RecoverOptions{Owner: 0, Params: p})
	if err != nil {
		t.Fatalf("recover after close: %v", err)
	}
	if st.Store.Len() != len(accepted) {
		t.Fatalf("recovered %d blocks, %d were acknowledged", st.Store.Len(), len(accepted))
	}
	for _, a := range accepted {
		b, err := st.Store.Get(a.ref.Seq)
		if err != nil {
			t.Fatalf("acknowledged block %v missing: %v", a.ref, err)
		}
		if b.Header.Hash() != a.d {
			t.Fatalf("block %v digest drifted across recovery", a.ref)
		}
	}
}
