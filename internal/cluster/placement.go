package cluster

import (
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// Placement describes where a dynamic joiner lands: its allocated ID,
// the live device it anchors to, and its position in the radio plane.
// The same placement rule runs everywhere a join happens — the
// in-process drivers, a joining Host, and every member replaying a
// peer's join from its Hello — so all views of the topology agree.
type Placement struct {
	ID     identity.NodeID
	Anchor identity.NodeID
	Pos    topology.Point
}

// PlanJoin computes the next joiner's placement against the current
// topology without mutating it (the paper's Sec. VII
// dynamic-membership extension). ids lists the known devices in join
// order; isLive reports which still run.
func PlanJoin(topo *topology.Graph, ids []identity.NodeID, isLive func(identity.NodeID) bool) (Placement, error) {
	if len(ids) == 0 {
		return Placement{}, errors.New("cluster: cannot join an empty cluster")
	}
	// Collision safety: probe upward from the highest known ID until an
	// ID unused by the graph is found — manually linked graphs may hold
	// arbitrary IDs.
	id := ids[len(ids)-1] + 1
	for topo.Has(id) {
		id++
	}
	// Anchor at the newest still-live device: anchoring at a silenced
	// node would strand the joiner behind a dead radio.
	anchor := ids[len(ids)-1]
	for i := len(ids) - 1; i >= 0; i-- {
		if isLive(ids[i]) {
			anchor = ids[i]
			break
		}
	}
	ap, _ := topo.Position(anchor)
	r := topo.CommRange()
	if r <= 0 {
		r = 2 // manually linked graphs: Apply links to the anchor below
	}
	return Placement{ID: id, Anchor: anchor, Pos: topology.Point{X: ap.X + r/2, Y: ap.Y}}, nil
}

// Apply wires the placement into the radio graph: the joiner is added
// at its position (auto-linking every device in communication range)
// and, on range-less hand-linked graphs, linked to its anchor
// directly.
func (p Placement) Apply(topo *topology.Graph) error {
	if err := topo.AddNode(p.ID, p.Pos); err != nil {
		return fmt.Errorf("cluster: joining: %w", err)
	}
	if topo.Degree(p.ID) == 0 {
		if err := topo.Link(p.Anchor, p.ID); err != nil {
			return fmt.Errorf("cluster: linking joiner: %w", err)
		}
	}
	return nil
}

// PlaceJoiner plans and applies the next join in one step, returning
// the allocated ID — the verb the in-process drivers use.
func PlaceJoiner(topo *topology.Graph, ids []identity.NodeID, isLive func(identity.NodeID) bool) (identity.NodeID, error) {
	p, err := PlanJoin(topo, ids, isLive)
	if err != nil {
		return 0, err
	}
	if err := p.Apply(topo); err != nil {
		return 0, err
	}
	return p.ID, nil
}
