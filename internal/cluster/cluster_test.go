package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/topology"
)

// suspectLog records PeerSuspected events and lets tests block until a
// specific peer's circuit opened — the event-driven way to observe a
// Leave broadcast landing.
type suspectLog struct {
	events.Nop
	mu     sync.Mutex
	seen   map[identity.NodeID]struct{}
	signal chan struct{}
}

func newSuspectLog() *suspectLog {
	return &suspectLog{seen: make(map[identity.NodeID]struct{}), signal: make(chan struct{})}
}

func (l *suspectLog) OnPeerSuspected(e events.PeerSuspected) {
	l.mu.Lock()
	l.seen[e.Peer] = struct{}{}
	close(l.signal)
	l.signal = make(chan struct{})
	l.mu.Unlock()
}

func (l *suspectLog) wait(t *testing.T, peer identity.NodeID) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		l.mu.Lock()
		_, ok := l.seen[peer]
		sig := l.signal
		l.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-sig:
		case <-deadline:
			t.Fatalf("peer %v never suspected", peer)
		}
	}
}

// startHosts brings up an n-node cross-host cluster in this process:
// host 0 serves first, the rest serve joining through host 0's
// address. Real TCP listeners, real discovery.
func startHosts(t *testing.T, n int, seed int64, mutate func(id identity.NodeID, cfg *Config)) []*Host {
	t.Helper()
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			ID: identity.NodeID(i), Nodes: n, Seed: seed,
			Gamma: 1, Difficulty: 2,
			RequestTimeout: 2 * time.Second,
		}
		if i > 0 {
			cfg.JoinAddr = hosts[0].Addr()
		}
		if mutate != nil {
			mutate(identity.NodeID(i), &cfg)
		}
		h, err := Start(cfg)
		if err != nil {
			t.Fatalf("starting host %d: %v", i, err)
		}
		hosts[i] = h
		t.Cleanup(func() { _ = h.Close() })
	}
	return hosts
}

func TestHostDirectoryExchange(t *testing.T) {
	hosts := startHosts(t, 3, 7, nil)
	for _, h := range hosts {
		live := h.Live()
		if len(live) != 3 {
			t.Fatalf("host %v sees live %v, want all of 0..2", h.ID(), live)
		}
	}
	// Cross-host traffic: each node seals a block per slot; the flushes
	// resolve only when every live neighbor acked over the sockets.
	ctx := context.Background()
	for slot := uint32(1); slot <= 2; slot++ {
		for _, h := range hosts {
			h.SetSlot(slot)
		}
		type sealed struct {
			h *Host
			d digest.Digest
		}
		var flushes []sealed
		for _, h := range hosts {
			_, d, err := h.Seal([]byte{byte(slot), byte(h.ID())})
			if err != nil {
				t.Fatalf("seal on %v: %v", h.ID(), err)
			}
			flushes = append(flushes, sealed{h, d})
		}
		for _, f := range flushes {
			if err := f.h.Flush(ctx, []digest.Digest{f.d}); err != nil {
				t.Fatalf("flush on %v: %v", f.h.ID(), err)
			}
		}
	}
	// A flush resolving proves each neighbor ingested the digest into
	// its A_i — the ack is synthesized from the receiver's ingest event.
}

func TestHostDynamicJoinReanchors(t *testing.T) {
	const seed = 11
	hosts := startHosts(t, 3, seed, nil)

	// The in-process placement rule is the oracle: same topology, same
	// liveness, same answer.
	oracle, err := topology.Deployment(3, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlanJoin(oracle, []identity.NodeID{0, 1, 2}, func(identity.NodeID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}

	joiner, err := Start(Config{
		Join: true, JoinAddr: hosts[0].Addr(),
		Nodes: 3, Seed: seed, Gamma: 1, Difficulty: 2,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer joiner.Close()
	if joiner.ID() != want.ID || joiner.anchor != want.Anchor {
		t.Fatalf("joiner placed as (%v anchor %v), want (%v anchor %v)",
			joiner.ID(), joiner.anchor, want.ID, want.Anchor)
	}
	// Every member learned the join (Hello fan-out) and can route to
	// the joiner: the joiner's first submit must collect real acks.
	for _, h := range hosts {
		if !h.Topology().Has(want.ID) {
			t.Fatalf("host %v never learned joiner %v", h.ID(), want.ID)
		}
	}
	for _, h := range append(hosts, joiner) {
		h.SetSlot(1)
	}
	if _, err := joiner.Submit(context.Background(), []byte("joiner-block")); err != nil {
		t.Fatalf("joiner submit: %v", err)
	}
}

func TestHostJoinAnchorsPastDeadMember(t *testing.T) {
	const seed = 7
	hosts := startHosts(t, 3, seed, nil)
	// Member 2 dies without a Leave (crash): survivors are told via the
	// harness's silence verb, exactly as the e2e kill path works.
	_ = hosts[2].node.Close()
	hosts[0].MarkDead(2)
	hosts[1].MarkDead(2)

	oracle, err := topology.Deployment(3, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlanJoin(oracle, []identity.NodeID{0, 1, 2}, func(id identity.NodeID) bool { return id != 2 })
	if err != nil {
		t.Fatal(err)
	}
	if want.Anchor != 1 {
		t.Fatalf("oracle anchor = %v, want 1 (newest live)", want.Anchor)
	}

	joiner, err := Start(Config{
		Join: true, JoinAddr: hosts[0].Addr(),
		Nodes: 3, Seed: seed, Gamma: 1, Difficulty: 2,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer joiner.Close()
	if joiner.ID() != want.ID || joiner.anchor != want.Anchor {
		t.Fatalf("joiner placed as (%v anchor %v), want (%v anchor %v): dead members must not anchor",
			joiner.ID(), joiner.anchor, want.ID, want.Anchor)
	}
}

func TestHostGracefulLeaveMarksDead(t *testing.T) {
	logs := map[identity.NodeID]*suspectLog{0: newSuspectLog(), 1: newSuspectLog()}
	hosts := startHosts(t, 3, 7, func(id identity.NodeID, cfg *Config) {
		if l, ok := logs[id]; ok {
			cfg.Observer = l
		}
	})
	if err := hosts[2].Close(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// The Leave broadcast force-opens 2's circuit on each survivor —
	// no health-tracker failures needed.
	logs[0].wait(t, 2)
	logs[1].wait(t, 2)
	for _, h := range hosts[:2] {
		for _, id := range h.Live() {
			if id == 2 {
				t.Fatalf("host %v still lists 2 live after its leave", h.ID())
			}
		}
	}
}

// TestHostCloseMidRetry closes hosts while announcement retries are in
// flight against a crashed peer and asserts the graceful-shutdown
// ordering drains everything: the flush returns (bounded by the retry
// cap or the close), Close returns, and no goroutine outlives the
// hosts.
func TestHostCloseMidRetry(t *testing.T) {
	baseline := runtime.NumGoroutine()
	retry := faults.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		Jitter:      0.5,
		Seed:        7,
	}
	hosts := startHosts(t, 2, 7, func(id identity.NodeID, cfg *Config) {
		cfg.Retry = retry
		cfg.RequestTimeout = 5 * time.Second
	})
	// Crash host 1 without a Leave: host 0 still believes it live and
	// will retry announcements against the dead listener.
	_ = hosts[1].node.Close()

	_, d, err := hosts[0].Seal([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	flushDone := make(chan error, 1)
	go func() {
		flushDone <- hosts[0].Flush(context.Background(), []digest.Digest{d})
	}()
	// Close while the flush is mid-retry. Close must cancel the
	// in-flight flush, wait for it, then shut the node down.
	if err := hosts[0].Close(); err != nil {
		t.Fatalf("close mid-retry: %v", err)
	}
	select {
	case err := <-flushDone:
		if err == nil {
			t.Fatal("flush against a dead peer reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush still running after Close returned: in-flight verbs not drained")
	}
	// New verbs are refused after close.
	if _, _, err := hosts[0].Seal([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Seal after Close: err = %v, want ErrClosed", err)
	}

	// Manual leak check (no external deps): every transport read loop,
	// dispatch loop and retry timer must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControlProtocol(t *testing.T) {
	h, err := Start(Config{
		ID: 0, Nodes: 1, Seed: 7, Gamma: 0, Difficulty: 2,
		RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ServeControl(context.Background(), h, reqR, respW) }()
	enc := json.NewEncoder(reqW)
	dec := json.NewDecoder(respR)

	var ready ControlReady
	if err := dec.Decode(&ready); err != nil || ready.Event != "ready" || ready.Addr == "" {
		t.Fatalf("ready line = %+v, err %v", ready, err)
	}

	roundTrip := func(req ControlRequest) ControlResponse {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp ControlResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(ControlRequest{Op: "slot", Slot: 3}); !resp.OK {
		t.Fatalf("slot: %+v", resp)
	}
	seal := roundTrip(ControlRequest{Op: "seal", Data: []byte("hello")})
	if !seal.OK || seal.Ref == nil || seal.Ref.Seq != 0 || seal.Digest == "" {
		t.Fatalf("seal: %+v", seal)
	}
	if resp := roundTrip(ControlRequest{Op: "flush", Digests: []string{seal.Digest}}); !resp.OK {
		t.Fatalf("flush: %+v", resp)
	}
	info := roundTrip(ControlRequest{Op: "info"})
	if !info.OK || info.Addr != ready.Addr || len(info.Live) != 1 {
		t.Fatalf("info: %+v", info)
	}
	if resp := roundTrip(ControlRequest{Op: "warp"}); resp.OK || resp.Err == "" {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
	if resp := roundTrip(ControlRequest{Op: "leave"}); !resp.OK {
		t.Fatalf("leave: %+v", resp)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve loop: %v", err)
	}
	// The host is closed by the leave.
	if _, _, err := h.Seal(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("host alive after leave: %v", err)
	}
}
