// Package cluster hosts live 2LDAG deployments: the shared
// announcement acknowledgement tracker and joiner-placement rules used
// by every live driver, and the single-node Host that runs one device
// per OS process in a cross-host cluster — discovering peers over the
// wire (Hello/PeerList), re-anchoring joiners exactly as the
// in-process drivers do, and exposing the slot/seal/flush/audit verbs
// a distributed harness drives over its control protocol.
package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/faults"
	"github.com/twoldag/twoldag/internal/identity"
)

// Waiter tracks one announcement's outstanding neighbor
// acknowledgements.
type Waiter struct {
	pending map[identity.NodeID]struct{}
	done    chan struct{}
}

// Done is closed once every expected neighbor acknowledged.
func (w *Waiter) Done() <-chan struct{} { return w.done }

// AckTracker resolves digest announcements to waiting submitters. It
// observes the receiver-side DigestAnnounced event from every node —
// delivered directly by in-process receivers, or synthesized from
// wire-level DigestAck frames in cross-process clusters — replacing
// sleep-polls over neighbor caches with event-driven acknowledgement.
type AckTracker struct {
	events.Nop
	mu      sync.Mutex
	waiters map[digest.Digest]*Waiter
}

// NewAckTracker builds an empty tracker.
func NewAckTracker() *AckTracker {
	return &AckTracker{waiters: make(map[digest.Digest]*Waiter)}
}

// Expect registers interest in d reaching every listed neighbor. Call
// before announcing so no acknowledgement can be missed.
func (t *AckTracker) Expect(d digest.Digest, neighbors []identity.NodeID) *Waiter {
	w := &Waiter{pending: make(map[identity.NodeID]struct{}, len(neighbors)), done: make(chan struct{})}
	for _, nb := range neighbors {
		w.pending[nb] = struct{}{}
	}
	if len(w.pending) == 0 {
		close(w.done)
		return w
	}
	t.mu.Lock()
	t.waiters[d] = w
	t.mu.Unlock()
	return w
}

// OnDigestAnnounced implements events.Observer: one neighbor cached d.
func (t *AckTracker) OnDigestAnnounced(e events.DigestAnnounced) {
	t.mu.Lock()
	t.resolve(e.Digest, e.To)
	t.mu.Unlock()
}

// OnDigestBatchDelivered implements events.Observer: one neighbor
// ingested a whole coalesced flush, acknowledging every digest it
// carried at once.
func (t *AckTracker) OnDigestBatchDelivered(e events.DigestBatchDelivered) {
	t.mu.Lock()
	for _, d := range e.Digests {
		t.resolve(d, e.To)
	}
	t.mu.Unlock()
}

// resolve marks d acknowledged by neighbor to. Callers hold t.mu.
func (t *AckTracker) resolve(d digest.Digest, to identity.NodeID) {
	if w, ok := t.waiters[d]; ok {
		delete(w.pending, to)
		if len(w.pending) == 0 {
			close(w.done)
			delete(t.waiters, d)
		}
	}
}

// Pending snapshots the neighbors that have not yet acknowledged d
// (nil once the waiter resolved), sorted for reproducible retry
// fan-out.
func (t *AckTracker) Pending(d digest.Digest) []identity.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.waiters[d]
	if !ok {
		return nil
	}
	out := make([]identity.NodeID, 0, len(w.pending))
	for id := range w.pending {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cancel abandons a waiter and reports which neighbors never
// acknowledged (empty when the waiter actually completed).
func (t *AckTracker) Cancel(d digest.Digest) []identity.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.waiters[d]
	if !ok {
		return nil
	}
	delete(t.waiters, d)
	missing := make([]identity.NodeID, 0, len(w.pending))
	for id := range w.pending {
		missing = append(missing, id)
	}
	return missing
}

// Await blocks until every expected neighbor acknowledged d or the
// context expires, reporting the still-missing neighbors on timeout.
func (t *AckTracker) Await(ctx context.Context, origin identity.NodeID, d digest.Digest, w *Waiter) error {
	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		missing := t.Cancel(d)
		if len(missing) == 0 {
			return nil // acknowledged in the same instant
		}
		return fmt.Errorf("cluster: digest %s from %v unacknowledged by %v: %w", d, origin, missing, ctx.Err())
	}
}

// AwaitRetry is Await with a retry policy: each missing
// acknowledgement re-sends the digest — only to the neighbors still
// pending, via the resend callback — after an exponential backoff, up
// to MaxAttempts total announcement rounds. Retries are ack-driven,
// never blind: a loss-free run sends exactly one frame per link and
// takes the plain Await path. obs, when non-nil, sees each
// RetryAttempted.
func (t *AckTracker) AwaitRetry(
	ctx context.Context,
	origin identity.NodeID,
	d digest.Digest,
	w *Waiter,
	retry faults.RetryPolicy,
	obs events.Observer,
	resend func(ctx context.Context, nb identity.NodeID, d digest.Digest),
) error {
	if !retry.Enabled() {
		return t.Await(ctx, origin, d, w)
	}
	key := binary.LittleEndian.Uint64(d[:8])
	for attempt := 2; attempt <= retry.MaxAttempts; attempt++ {
		timer := time.NewTimer(retry.Backoff(attempt, key))
		select {
		case <-w.done:
			timer.Stop()
			return nil
		case <-ctx.Done():
			timer.Stop()
			return t.Await(ctx, origin, d, w) // reports the missing set
		case <-timer.C:
		}
		pending := t.Pending(d)
		if len(pending) == 0 {
			// Resolved in the same instant; the waiter is gone, so done
			// is closed (or about to be).
			return t.Await(ctx, origin, d, w)
		}
		for _, nb := range pending {
			if obs != nil {
				obs.OnRetryAttempted(events.RetryAttempted{
					Node: origin, Peer: nb, Announce: true, Attempt: attempt,
				})
			}
			resend(ctx, nb, d)
		}
	}
	return t.Await(ctx, origin, d, w)
}
