package analysis

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/block"
	"github.com/twoldag/twoldag/internal/core"
	"github.com/twoldag/twoldag/internal/sim"
	"github.com/twoldag/twoldag/internal/topology"
)

func TestTotalBlocksExamples(t *testing.T) {
	// Three nodes, rates 10/20/30 bit/s, C = 100 bits, t = 50 s:
	// ⌊5⌋ + ⌊10⌋ + ⌊15⌋ = 30 blocks.
	got, err := TotalBlocks(50, []float64{10, 20, 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("TotalBlocks = %d, want 30", got)
	}
	if _, err := TotalBlocks(1, []float64{1}, 0); err == nil {
		t.Fatal("zero C accepted")
	}
	if _, err := TotalBlocks(1, []float64{-1}, 10); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestTotalBlocksMatchesSimulator(t *testing.T) {
	// Simulator with unit periods: one block per node per slot; in the
	// proposition's terms r_j = C per slot, so ⌊t·r_j/C⌋ = t.
	cfg := sim.Config{
		Topo:      topology.Config{Nodes: 10, Width: 300, Height: 300, Range: 100, Seed: 4},
		Seed:      4,
		Slots:     15,
		BodyBytes: 500,
		Gamma:     2,
		VerifyLag: 10,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, 10)
	c := float64(cfg.BodyBytes * 8)
	for i := range rates {
		rates[i] = c // one block (C bits) per slot
	}
	want, err := TotalBlocks(float64(cfg.Slots), rates, c)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rep.Blocks) != want {
		t.Fatalf("sim blocks %d != Prop. 1 prediction %d", rep.Blocks, want)
	}
}

func TestStorageBoundDominatesSimulator(t *testing.T) {
	cfg := sim.Config{
		Topo:                 topology.Config{Nodes: 10, Width: 300, Height: 300, Range: 100, Seed: 5},
		Seed:                 5,
		Slots:                20,
		BodyBytes:            500,
		Gamma:                2,
		VerifyLag:            10,
		RetainVerifiedBlocks: false,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	rates := make([]float64, 10)
	for i := range rates {
		rates[i] = float64(m.C) // bits per slot
	}
	for i, got := range rep.NodeStorageBits {
		bound, err := StorageBound(float64(cfg.Slots), rates, i, m)
		if err != nil {
			t.Fatal(err)
		}
		if float64(got) > bound {
			t.Fatalf("node %d storage %d exceeds Prop. 3 bound %.0f", i, got, bound)
		}
	}
}

func TestTrustStoreBoundFormula(t *testing.T) {
	m := block.DefaultSizeModel(1000) // C = 8000 bits
	rates := []float64{8000, 8000, 8000, 8000}
	got, err := TrustStoreBound(10, rates, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	// t(f_c + f_H·|V|)/C · Σ_{j≠0} r_j = 10·(608+1024)/8000·24000
	want := 10.0 * float64(608+256*4) / 8000.0 * 24000.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TrustStoreBound = %v, want %v", got, want)
	}
	if _, err := TrustStoreBound(10, rates, 9, m); err == nil {
		t.Fatal("out-of-range self accepted")
	}
}

func TestMinMessages(t *testing.T) {
	if MinMessages(0) != 2 || MinMessages(10) != 22 {
		t.Fatal("Prop. 4 formula wrong")
	}
	if MinMessages(-5) != 2 {
		t.Fatal("negative gamma must clamp")
	}
}

func TestMicroLoopBoundFig6(t *testing.T) {
	// Fig. 6: M = {A, B} with r_A = r_B = 1 block/slot, C generates at
	// 1/5 (one block in 5 slots): bound = ⌊5⌋+⌊5⌋ = 10 ≥ the observed 5.
	got, err := MicroLoopBound([]float64{1, 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("MicroLoopBound = %d, want 10", got)
	}
	if _, err := MicroLoopBound([]float64{1}, 0); err == nil {
		t.Fatal("zero outside rate accepted")
	}
}

func TestPathLengthAndMessageBounds(t *testing.T) {
	rates := []float64{4, 2, 2, 1, 1} // sorted descending
	pl, err := PathLengthBound(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ⌊4/1⌋ + ⌊2/1⌋ + γ + 1 = 4 + 2 + 3 = 9.
	if pl != 9 {
		t.Fatalf("PathLengthBound = %d, want 9", pl)
	}
	mb, err := MessageUpperBound(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (|V|+γ)·(4+2+3) = 7·9 = 63.
	if mb != 63 {
		t.Fatalf("MessageUpperBound = %v, want 63", mb)
	}
	if _, err := PathLengthBound([]float64{1, 2}, 1); err == nil {
		t.Fatal("unsorted rates accepted")
	}
	if _, err := MessageUpperBound(rates, 9); err == nil {
		t.Fatal("gamma beyond |V| accepted")
	}
}

func TestMessageBoundDominatesHonestSimulator(t *testing.T) {
	// On an attack-free network with unit rates, a deterministic WPS
	// validator's per-audit messages must sit between the Prop. 4 floor
	// and the Prop. 6 ceiling. (Prop. 6 analyzes the deterministic
	// greedy execution; randomized tie-breaking can wander past it.)
	cfg := sim.Config{
		Topo:      topology.Config{Nodes: 12, Width: 300, Height: 300, Range: 100, Seed: 6},
		Seed:      6,
		Slots:     25,
		BodyBytes: 500,
		Gamma:     3,
		VerifyLag: 12,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ref, _, err := s.BlockAt(0)
	if err != nil {
		t.Fatal(err)
	}
	validator := (ref.Node + 1) % 12
	v, err := core.NewValidator(core.ValidatorConfig{
		Self:   validator,
		Gamma:  cfg.Gamma,
		Params: block.Params{Version: block.CurrentVersion, LeafSize: 1024},
		Ring:   s.Ring(),
		Topo:   s.Graph(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Verify(context.Background(), ref, core.NewStoreFetcher(s.Stores()))
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, 12)
	for i := range rates {
		rates[i] = 1
	}
	bound, err := MessageUpperBound(rates, cfg.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.MessagesSent + res.MessagesReceived)
	// Negative reproduction finding (recorded in EXPERIMENTS.md): the
	// paper's Prop. 6 ceiling does NOT hold for equal-rate networks —
	// its Eq. 19 path-length argument bounds micro-loops by rate
	// ratios, but WPS executions revisit node pairs far more often
	// (observed ~1.6× the bound here). We assert a 4× envelope so real
	// regressions still fail, and log when the paper's bound is
	// violated.
	if got > bound {
		t.Logf("Prop. 6 violated as documented: %v messages > bound %v", got, bound)
	}
	if got > 4*bound {
		t.Fatalf("messages %v exceed even 4x the Prop. 6 bound %v", got, bound)
	}
	if int(got) < MinMessages(cfg.Gamma) {
		t.Fatalf("messages %v below Prop. 4 floor %v", got, MinMessages(cfg.Gamma))
	}
}

func TestQuickStorageBoundAboveOwnLog(t *testing.T) {
	// Property: the Prop. 3 bound always dominates the node's own-log
	// term t·r_i alone.
	f := func(tRaw, rRaw uint16, nRaw uint8) bool {
		tt := float64(tRaw%1000) + 1
		n := int(nRaw%20) + 2
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = float64(rRaw%5000) + 1
		}
		m := block.DefaultSizeModel(1000)
		b, err := StorageBound(tt, rates, 0, m)
		if err != nil {
			return false
		}
		return b >= tt*rates[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTotalBlocksMonotoneInTime(t *testing.T) {
	f := func(t1Raw, t2Raw uint16) bool {
		t1 := float64(t1Raw % 1000)
		t2 := t1 + float64(t2Raw%1000)
		rates := []float64{10, 20, 30}
		a, err1 := TotalBlocks(t1, rates, 100)
		b, err2 := TotalBlocks(t2, rates, 100)
		return err1 == nil && err2 == nil && b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
