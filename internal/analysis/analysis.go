// Package analysis encodes the paper's Sec. V performance analysis —
// Propositions 1 through 6 — as executable functions. The test suite
// checks simulated executions against these bounds, which is the
// closest an implementation can get to "reproducing" an analytical
// section.
package analysis

import (
	"errors"
	"math"

	"github.com/twoldag/twoldag/internal/block"
)

// ErrBadInput reports nonsensical parameters (non-positive rates or
// block size).
var ErrBadInput = errors.New("analysis: invalid input")

// TotalBlocks is Proposition 1: the number of data blocks in the whole
// network at time t is Σ_j ⌊t·r_j / C⌋, for per-node generation rates
// r_j (bits/s) and body size C (bits).
func TotalBlocks(t float64, rates []float64, c float64) (int64, error) {
	if c <= 0 || t < 0 {
		return 0, ErrBadInput
	}
	total := int64(0)
	for _, r := range rates {
		if r < 0 {
			return 0, ErrBadInput
		}
		total += int64(math.Floor(t * r / c))
	}
	return total, nil
}

// TrustStoreBound is Proposition 2: |H_i| at time t is at most
// t·(f_c + f_H·|V|)/C · Σ_{j≠i} r_j bits.
func TrustStoreBound(t float64, rates []float64, self int, m block.SizeModel) (float64, error) {
	if m.C <= 0 || t < 0 || self < 0 || self >= len(rates) {
		return 0, ErrBadInput
	}
	sum := 0.0
	for j, r := range rates {
		if r < 0 {
			return 0, ErrBadInput
		}
		if j != self {
			sum += r
		}
	}
	perHeader := float64(m.ConstantBits() + m.FH*len(rates))
	return t * perHeader / float64(m.C) * sum, nil
}

// StorageBound is Proposition 3: total storage at node i at time t is
// at most t·r_i + t·(f_c + f_H·|V|)/C · Σ_j r_j bits.
func StorageBound(t float64, rates []float64, self int, m block.SizeModel) (float64, error) {
	if m.C <= 0 || t < 0 || self < 0 || self >= len(rates) {
		return 0, ErrBadInput
	}
	sum := 0.0
	for _, r := range rates {
		if r < 0 {
			return 0, ErrBadInput
		}
		sum += r
	}
	perHeader := float64(m.ConstantBits() + m.FH*len(rates))
	return t*rates[self] + t*perHeader/float64(m.C)*sum, nil
}

// MinMessages is Proposition 4: a validator with empty H_i emits and
// receives at least 2(γ+1) messages to reach consensus.
func MinMessages(gamma int) int {
	if gamma < 0 {
		gamma = 0
	}
	return 2 * (gamma + 1)
}

// MicroLoopBound is Proposition 5: for a micro-loop traversing the node
// set M, the number of blocks within the loop is at most
// Σ_{i∈M} ⌊r_i / min_{j∉M} r_j⌋.
func MicroLoopBound(loopRates []float64, minOutsideRate float64) (int64, error) {
	if minOutsideRate <= 0 {
		return 0, ErrBadInput
	}
	total := int64(0)
	for _, r := range loopRates {
		if r < 0 {
			return 0, ErrBadInput
		}
		total += int64(math.Floor(r / minOutsideRate))
	}
	return total, nil
}

// PathLengthBound is the intermediate bound inside Proposition 6
// (Eq. 19): |P_i| ≤ Σ_{j=1..γ} ⌊r_j / r_|V|⌋ + γ + 1, with rates sorted
// descending.
func PathLengthBound(sortedRates []float64, gamma int) (int64, error) {
	if len(sortedRates) == 0 || gamma < 0 || gamma > len(sortedRates) {
		return 0, ErrBadInput
	}
	slowest := sortedRates[len(sortedRates)-1]
	if slowest <= 0 {
		return 0, ErrBadInput
	}
	total := int64(gamma + 1)
	for j := 0; j < gamma; j++ {
		if sortedRates[j] < sortedRates[len(sortedRates)-1] {
			return 0, ErrBadInput // not sorted descending
		}
		total += int64(math.Floor(sortedRates[j] / slowest))
	}
	return total, nil
}

// MessageUpperBound is Proposition 6: with no malicious nodes, the
// total messages a validator emits and receives is at most
// (|V| + γ)·(Σ_{j=1..γ} r_j/r_|V| + γ + 1).
func MessageUpperBound(sortedRates []float64, gamma int) (float64, error) {
	if len(sortedRates) == 0 || gamma < 0 || gamma > len(sortedRates) {
		return 0, ErrBadInput
	}
	slowest := sortedRates[len(sortedRates)-1]
	if slowest <= 0 {
		return 0, ErrBadInput
	}
	inner := float64(gamma + 1)
	for j := 0; j < gamma; j++ {
		inner += sortedRates[j] / slowest
	}
	return float64(len(sortedRates)+gamma) * inner, nil
}
