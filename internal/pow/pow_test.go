package pow

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/twoldag/twoldag/internal/digest"
)

func TestMeetsZeroDifficulty(t *testing.T) {
	if !Meets(digest.Sum([]byte("anything")), 0) {
		t.Fatal("zero difficulty must accept every digest")
	}
}

func TestMeetsThreshold(t *testing.T) {
	d := digest.Digest{0x00, 0x7F} // exactly 9 leading zero bits
	if !Meets(d, 9) {
		t.Fatal("digest with 9 zero bits should meet difficulty 9")
	}
	if Meets(d, 10) {
		t.Fatal("digest with 9 zero bits should not meet difficulty 10")
	}
}

func TestSearchAndVerify(t *testing.T) {
	prefix := []byte("block header fields")
	nonce, d, err := SearchPrefix(prefix, 10, 0)
	if err != nil {
		t.Fatalf("SearchPrefix: %v", err)
	}
	if !Meets(d, 10) {
		t.Fatalf("returned digest %s does not meet difficulty", d.Hex())
	}
	if !VerifyPrefix(prefix, nonce, 10) {
		t.Fatal("VerifyPrefix rejected the found nonce")
	}
	if VerifyPrefix(append(prefix, 'x'), nonce, 10) {
		// With overwhelming probability a different prefix fails.
		t.Fatal("VerifyPrefix accepted nonce for a different prefix")
	}
}

func TestSearchReturnsSmallestNonce(t *testing.T) {
	prefix := []byte("smallest")
	nonce, _, err := SearchPrefix(prefix, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint32(0); n < nonce; n++ {
		if VerifyPrefix(prefix, n, 6) {
			t.Fatalf("nonce %d also solves but %d was returned", n, nonce)
		}
	}
}

func TestSearchExhausted(t *testing.T) {
	_, _, err := SearchPrefix([]byte("hard"), 64, 16)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestAppendNonceLittleEndian(t *testing.T) {
	got := AppendNonce([]byte{0xAA}, 0x01020304)
	want := []byte{0xAA, 0x04, 0x03, 0x02, 0x01}
	if string(got) != string(want) {
		t.Fatalf("AppendNonce = %x, want %x", got, want)
	}
}

func TestExpectedTries(t *testing.T) {
	if ExpectedTries(0) != 1 {
		t.Fatal("difficulty 0 should need one expected try")
	}
	if ExpectedTries(8) != 256 {
		t.Fatal("difficulty 8 should need 256 expected tries")
	}
	if ExpectedTries(100) != 1<<63 {
		t.Fatal("expected tries should saturate")
	}
}

func TestQuickSearchSolutionsVerify(t *testing.T) {
	f := func(prefix []byte) bool {
		nonce, d, err := SearchPrefix(prefix, 4, 0)
		if err != nil {
			return false
		}
		return Meets(d, 4) && VerifyPrefix(prefix, nonce, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchPrefixDifficulty8(b *testing.B) {
	prefix := []byte("benchmark prefix for pow search, difficulty 8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prefix[0] = byte(i)
		if _, _, err := SearchPrefix(prefix, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPrefix(b *testing.B) {
	prefix := []byte("benchmark verify")
	nonce, _, err := SearchPrefix(prefix, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyPrefix(prefix, nonce, 8) {
			b.Fatal("verification failed")
		}
	}
}
